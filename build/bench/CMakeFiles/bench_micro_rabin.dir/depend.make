# Empty dependencies file for bench_micro_rabin.
# This may be replaced when dependencies are built.
