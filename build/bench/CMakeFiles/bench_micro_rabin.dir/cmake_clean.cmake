file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rabin.dir/bench_micro_rabin.cc.o"
  "CMakeFiles/bench_micro_rabin.dir/bench_micro_rabin.cc.o.d"
  "bench_micro_rabin"
  "bench_micro_rabin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rabin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
