file(REMOVE_RECURSE
  "CMakeFiles/bench_futurework.dir/bench_futurework.cc.o"
  "CMakeFiles/bench_futurework.dir/bench_futurework.cc.o.d"
  "bench_futurework"
  "bench_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
