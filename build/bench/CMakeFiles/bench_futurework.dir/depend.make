# Empty dependencies file for bench_futurework.
# This may be replaced when dependencies are built.
