# Empty dependencies file for bench_insight.
# This may be replaced when dependencies are built.
