file(REMOVE_RECURSE
  "CMakeFiles/bench_insight.dir/bench_insight.cc.o"
  "CMakeFiles/bench_insight.dir/bench_insight.cc.o.d"
  "bench_insight"
  "bench_insight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
