file(REMOVE_RECURSE
  "CMakeFiles/udp_streaming.dir/udp_streaming.cpp.o"
  "CMakeFiles/udp_streaming.dir/udp_streaming.cpp.o.d"
  "udp_streaming"
  "udp_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
