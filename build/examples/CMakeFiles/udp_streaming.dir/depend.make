# Empty dependencies file for udp_streaming.
# This may be replaced when dependencies are built.
