file(REMOVE_RECURSE
  "CMakeFiles/mobility_handover.dir/mobility_handover.cpp.o"
  "CMakeFiles/mobility_handover.dir/mobility_handover.cpp.o.d"
  "mobility_handover"
  "mobility_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
