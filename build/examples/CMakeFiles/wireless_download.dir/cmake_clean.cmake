file(REMOVE_RECURSE
  "CMakeFiles/wireless_download.dir/wireless_download.cpp.o"
  "CMakeFiles/wireless_download.dir/wireless_download.cpp.o.d"
  "wireless_download"
  "wireless_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
