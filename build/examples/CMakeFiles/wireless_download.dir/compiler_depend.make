# Empty compiler generated dependencies file for wireless_download.
# This may be replaced when dependencies are built.
