# Empty dependencies file for http_fetch.
# This may be replaced when dependencies are built.
