file(REMOVE_RECURSE
  "CMakeFiles/http_fetch.dir/http_fetch.cpp.o"
  "CMakeFiles/http_fetch.dir/http_fetch.cpp.o.d"
  "http_fetch"
  "http_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
