file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_param.dir/tcp_param_test.cc.o"
  "CMakeFiles/test_tcp_param.dir/tcp_param_test.cc.o.d"
  "test_tcp_param"
  "test_tcp_param.pdb"
  "test_tcp_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
