# Empty compiler generated dependencies file for test_tcp_param.
# This may be replaced when dependencies are built.
