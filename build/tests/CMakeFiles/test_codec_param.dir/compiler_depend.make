# Empty compiler generated dependencies file for test_codec_param.
# This may be replaced when dependencies are built.
