file(REMOVE_RECURSE
  "CMakeFiles/test_codec_param.dir/codec_param_test.cc.o"
  "CMakeFiles/test_codec_param.dir/codec_param_test.cc.o.d"
  "test_codec_param"
  "test_codec_param.pdb"
  "test_codec_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
