
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/test_util.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/bc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/bc_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/bc_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rabin/CMakeFiles/bc_rabin.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/bc_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
