file(REMOVE_RECURSE
  "CMakeFiles/test_delack.dir/delack_test.cc.o"
  "CMakeFiles/test_delack.dir/delack_test.cc.o.d"
  "test_delack"
  "test_delack.pdb"
  "test_delack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
