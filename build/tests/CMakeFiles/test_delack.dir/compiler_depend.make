# Empty compiler generated dependencies file for test_delack.
# This may be replaced when dependencies are built.
