# Empty dependencies file for test_futurework.
# This may be replaced when dependencies are built.
