file(REMOVE_RECURSE
  "CMakeFiles/test_futurework.dir/futurework_test.cc.o"
  "CMakeFiles/test_futurework.dir/futurework_test.cc.o.d"
  "test_futurework"
  "test_futurework.pdb"
  "test_futurework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
