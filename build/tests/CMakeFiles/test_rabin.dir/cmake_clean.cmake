file(REMOVE_RECURSE
  "CMakeFiles/test_rabin.dir/rabin_test.cc.o"
  "CMakeFiles/test_rabin.dir/rabin_test.cc.o.d"
  "test_rabin"
  "test_rabin.pdb"
  "test_rabin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rabin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
