# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rabin[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_futurework[1]_include.cmake")
include("/root/repo/build/tests/test_multiflow[1]_include.cmake")
include("/root/repo/build/tests/test_codec_param[1]_include.cmake")
include("/root/repo/build/tests/test_decoder_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_param[1]_include.cmake")
include("/root/repo/build/tests/test_observability[1]_include.cmake")
include("/root/repo/build/tests/test_delack[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_persist[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
