
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/control.cc" "src/core/CMakeFiles/bc_core.dir/control.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/control.cc.o.d"
  "/root/repo/src/core/decoder.cc" "src/core/CMakeFiles/bc_core.dir/decoder.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/decoder.cc.o.d"
  "/root/repo/src/core/encoder.cc" "src/core/CMakeFiles/bc_core.dir/encoder.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/encoder.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/bc_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/factory.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/core/CMakeFiles/bc_core.dir/matcher.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/matcher.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/bc_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/policies.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/bc_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/bc_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rabin/CMakeFiles/bc_rabin.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/bc_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bc_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
