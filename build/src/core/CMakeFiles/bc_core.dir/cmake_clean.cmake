file(REMOVE_RECURSE
  "CMakeFiles/bc_core.dir/control.cc.o"
  "CMakeFiles/bc_core.dir/control.cc.o.d"
  "CMakeFiles/bc_core.dir/decoder.cc.o"
  "CMakeFiles/bc_core.dir/decoder.cc.o.d"
  "CMakeFiles/bc_core.dir/encoder.cc.o"
  "CMakeFiles/bc_core.dir/encoder.cc.o.d"
  "CMakeFiles/bc_core.dir/factory.cc.o"
  "CMakeFiles/bc_core.dir/factory.cc.o.d"
  "CMakeFiles/bc_core.dir/matcher.cc.o"
  "CMakeFiles/bc_core.dir/matcher.cc.o.d"
  "CMakeFiles/bc_core.dir/policies.cc.o"
  "CMakeFiles/bc_core.dir/policies.cc.o.d"
  "CMakeFiles/bc_core.dir/wire.cc.o"
  "CMakeFiles/bc_core.dir/wire.cc.o.d"
  "libbc_core.a"
  "libbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
