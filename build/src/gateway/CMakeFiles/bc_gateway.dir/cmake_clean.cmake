file(REMOVE_RECURSE
  "CMakeFiles/bc_gateway.dir/gateways.cc.o"
  "CMakeFiles/bc_gateway.dir/gateways.cc.o.d"
  "CMakeFiles/bc_gateway.dir/multi_pipeline.cc.o"
  "CMakeFiles/bc_gateway.dir/multi_pipeline.cc.o.d"
  "CMakeFiles/bc_gateway.dir/pipeline.cc.o"
  "CMakeFiles/bc_gateway.dir/pipeline.cc.o.d"
  "libbc_gateway.a"
  "libbc_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
