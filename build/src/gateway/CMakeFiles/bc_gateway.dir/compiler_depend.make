# Empty compiler generated dependencies file for bc_gateway.
# This may be replaced when dependencies are built.
