file(REMOVE_RECURSE
  "libbc_gateway.a"
)
