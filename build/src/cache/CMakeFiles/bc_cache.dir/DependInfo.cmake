
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/byte_cache.cc" "src/cache/CMakeFiles/bc_cache.dir/byte_cache.cc.o" "gcc" "src/cache/CMakeFiles/bc_cache.dir/byte_cache.cc.o.d"
  "/root/repo/src/cache/fingerprint_table.cc" "src/cache/CMakeFiles/bc_cache.dir/fingerprint_table.cc.o" "gcc" "src/cache/CMakeFiles/bc_cache.dir/fingerprint_table.cc.o.d"
  "/root/repo/src/cache/packet_store.cc" "src/cache/CMakeFiles/bc_cache.dir/packet_store.cc.o" "gcc" "src/cache/CMakeFiles/bc_cache.dir/packet_store.cc.o.d"
  "/root/repo/src/cache/persist.cc" "src/cache/CMakeFiles/bc_cache.dir/persist.cc.o" "gcc" "src/cache/CMakeFiles/bc_cache.dir/persist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rabin/CMakeFiles/bc_rabin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
