file(REMOVE_RECURSE
  "libbc_cache.a"
)
