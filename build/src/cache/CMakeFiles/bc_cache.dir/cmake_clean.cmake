file(REMOVE_RECURSE
  "CMakeFiles/bc_cache.dir/byte_cache.cc.o"
  "CMakeFiles/bc_cache.dir/byte_cache.cc.o.d"
  "CMakeFiles/bc_cache.dir/fingerprint_table.cc.o"
  "CMakeFiles/bc_cache.dir/fingerprint_table.cc.o.d"
  "CMakeFiles/bc_cache.dir/packet_store.cc.o"
  "CMakeFiles/bc_cache.dir/packet_store.cc.o.d"
  "CMakeFiles/bc_cache.dir/persist.cc.o"
  "CMakeFiles/bc_cache.dir/persist.cc.o.d"
  "libbc_cache.a"
  "libbc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
