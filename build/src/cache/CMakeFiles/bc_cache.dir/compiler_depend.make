# Empty compiler generated dependencies file for bc_cache.
# This may be replaced when dependencies are built.
