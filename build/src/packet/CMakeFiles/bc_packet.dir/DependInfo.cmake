
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/checksum.cc" "src/packet/CMakeFiles/bc_packet.dir/checksum.cc.o" "gcc" "src/packet/CMakeFiles/bc_packet.dir/checksum.cc.o.d"
  "/root/repo/src/packet/ipv4.cc" "src/packet/CMakeFiles/bc_packet.dir/ipv4.cc.o" "gcc" "src/packet/CMakeFiles/bc_packet.dir/ipv4.cc.o.d"
  "/root/repo/src/packet/packet.cc" "src/packet/CMakeFiles/bc_packet.dir/packet.cc.o" "gcc" "src/packet/CMakeFiles/bc_packet.dir/packet.cc.o.d"
  "/root/repo/src/packet/tcp.cc" "src/packet/CMakeFiles/bc_packet.dir/tcp.cc.o" "gcc" "src/packet/CMakeFiles/bc_packet.dir/tcp.cc.o.d"
  "/root/repo/src/packet/udp.cc" "src/packet/CMakeFiles/bc_packet.dir/udp.cc.o" "gcc" "src/packet/CMakeFiles/bc_packet.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
