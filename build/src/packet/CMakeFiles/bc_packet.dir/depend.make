# Empty dependencies file for bc_packet.
# This may be replaced when dependencies are built.
