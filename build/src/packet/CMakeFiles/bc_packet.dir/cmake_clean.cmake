file(REMOVE_RECURSE
  "CMakeFiles/bc_packet.dir/checksum.cc.o"
  "CMakeFiles/bc_packet.dir/checksum.cc.o.d"
  "CMakeFiles/bc_packet.dir/ipv4.cc.o"
  "CMakeFiles/bc_packet.dir/ipv4.cc.o.d"
  "CMakeFiles/bc_packet.dir/packet.cc.o"
  "CMakeFiles/bc_packet.dir/packet.cc.o.d"
  "CMakeFiles/bc_packet.dir/tcp.cc.o"
  "CMakeFiles/bc_packet.dir/tcp.cc.o.d"
  "CMakeFiles/bc_packet.dir/udp.cc.o"
  "CMakeFiles/bc_packet.dir/udp.cc.o.d"
  "libbc_packet.a"
  "libbc_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
