file(REMOVE_RECURSE
  "libbc_packet.a"
)
