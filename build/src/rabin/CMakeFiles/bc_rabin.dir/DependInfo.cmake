
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rabin/polynomial.cc" "src/rabin/CMakeFiles/bc_rabin.dir/polynomial.cc.o" "gcc" "src/rabin/CMakeFiles/bc_rabin.dir/polynomial.cc.o.d"
  "/root/repo/src/rabin/rabin.cc" "src/rabin/CMakeFiles/bc_rabin.dir/rabin.cc.o" "gcc" "src/rabin/CMakeFiles/bc_rabin.dir/rabin.cc.o.d"
  "/root/repo/src/rabin/window.cc" "src/rabin/CMakeFiles/bc_rabin.dir/window.cc.o" "gcc" "src/rabin/CMakeFiles/bc_rabin.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
