# Empty dependencies file for bc_rabin.
# This may be replaced when dependencies are built.
