file(REMOVE_RECURSE
  "libbc_rabin.a"
)
