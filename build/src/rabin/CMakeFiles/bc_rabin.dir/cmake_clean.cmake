file(REMOVE_RECURSE
  "CMakeFiles/bc_rabin.dir/polynomial.cc.o"
  "CMakeFiles/bc_rabin.dir/polynomial.cc.o.d"
  "CMakeFiles/bc_rabin.dir/rabin.cc.o"
  "CMakeFiles/bc_rabin.dir/rabin.cc.o.d"
  "CMakeFiles/bc_rabin.dir/window.cc.o"
  "CMakeFiles/bc_rabin.dir/window.cc.o.d"
  "libbc_rabin.a"
  "libbc_rabin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_rabin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
