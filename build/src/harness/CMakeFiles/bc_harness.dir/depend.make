# Empty dependencies file for bc_harness.
# This may be replaced when dependencies are built.
