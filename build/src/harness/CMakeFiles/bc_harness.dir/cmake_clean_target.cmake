file(REMOVE_RECURSE
  "libbc_harness.a"
)
