file(REMOVE_RECURSE
  "CMakeFiles/bc_harness.dir/experiment.cc.o"
  "CMakeFiles/bc_harness.dir/experiment.cc.o.d"
  "CMakeFiles/bc_harness.dir/table.cc.o"
  "CMakeFiles/bc_harness.dir/table.cc.o.d"
  "libbc_harness.a"
  "libbc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
