file(REMOVE_RECURSE
  "libbc_tcp.a"
)
