# Empty compiler generated dependencies file for bc_tcp.
# This may be replaced when dependencies are built.
