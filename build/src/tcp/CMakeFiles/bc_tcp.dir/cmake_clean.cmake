file(REMOVE_RECURSE
  "CMakeFiles/bc_tcp.dir/congestion.cc.o"
  "CMakeFiles/bc_tcp.dir/congestion.cc.o.d"
  "CMakeFiles/bc_tcp.dir/receiver.cc.o"
  "CMakeFiles/bc_tcp.dir/receiver.cc.o.d"
  "CMakeFiles/bc_tcp.dir/rto.cc.o"
  "CMakeFiles/bc_tcp.dir/rto.cc.o.d"
  "CMakeFiles/bc_tcp.dir/sender.cc.o"
  "CMakeFiles/bc_tcp.dir/sender.cc.o.d"
  "libbc_tcp.a"
  "libbc_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
