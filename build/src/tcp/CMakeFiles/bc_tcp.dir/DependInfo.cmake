
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/congestion.cc" "src/tcp/CMakeFiles/bc_tcp.dir/congestion.cc.o" "gcc" "src/tcp/CMakeFiles/bc_tcp.dir/congestion.cc.o.d"
  "/root/repo/src/tcp/receiver.cc" "src/tcp/CMakeFiles/bc_tcp.dir/receiver.cc.o" "gcc" "src/tcp/CMakeFiles/bc_tcp.dir/receiver.cc.o.d"
  "/root/repo/src/tcp/rto.cc" "src/tcp/CMakeFiles/bc_tcp.dir/rto.cc.o" "gcc" "src/tcp/CMakeFiles/bc_tcp.dir/rto.cc.o.d"
  "/root/repo/src/tcp/sender.cc" "src/tcp/CMakeFiles/bc_tcp.dir/sender.cc.o" "gcc" "src/tcp/CMakeFiles/bc_tcp.dir/sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/bc_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
