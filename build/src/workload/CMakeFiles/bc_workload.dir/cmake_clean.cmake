file(REMOVE_RECURSE
  "CMakeFiles/bc_workload.dir/analyzer.cc.o"
  "CMakeFiles/bc_workload.dir/analyzer.cc.o.d"
  "CMakeFiles/bc_workload.dir/generators.cc.o"
  "CMakeFiles/bc_workload.dir/generators.cc.o.d"
  "CMakeFiles/bc_workload.dir/text.cc.o"
  "CMakeFiles/bc_workload.dir/text.cc.o.d"
  "libbc_workload.a"
  "libbc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
