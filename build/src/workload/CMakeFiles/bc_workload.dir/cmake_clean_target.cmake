file(REMOVE_RECURSE
  "libbc_workload.a"
)
