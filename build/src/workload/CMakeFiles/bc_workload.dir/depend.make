# Empty dependencies file for bc_workload.
# This may be replaced when dependencies are built.
