file(REMOVE_RECURSE
  "libbc_util.a"
)
