file(REMOVE_RECURSE
  "CMakeFiles/bc_util.dir/crc32.cc.o"
  "CMakeFiles/bc_util.dir/crc32.cc.o.d"
  "CMakeFiles/bc_util.dir/hexdump.cc.o"
  "CMakeFiles/bc_util.dir/hexdump.cc.o.d"
  "CMakeFiles/bc_util.dir/logging.cc.o"
  "CMakeFiles/bc_util.dir/logging.cc.o.d"
  "CMakeFiles/bc_util.dir/rng.cc.o"
  "CMakeFiles/bc_util.dir/rng.cc.o.d"
  "libbc_util.a"
  "libbc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
