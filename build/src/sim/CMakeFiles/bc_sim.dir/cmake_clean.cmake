file(REMOVE_RECURSE
  "CMakeFiles/bc_sim.dir/link.cc.o"
  "CMakeFiles/bc_sim.dir/link.cc.o.d"
  "CMakeFiles/bc_sim.dir/loss_model.cc.o"
  "CMakeFiles/bc_sim.dir/loss_model.cc.o.d"
  "CMakeFiles/bc_sim.dir/pcap.cc.o"
  "CMakeFiles/bc_sim.dir/pcap.cc.o.d"
  "CMakeFiles/bc_sim.dir/simulator.cc.o"
  "CMakeFiles/bc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/bc_sim.dir/trace.cc.o"
  "CMakeFiles/bc_sim.dir/trace.cc.o.d"
  "libbc_sim.a"
  "libbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
