
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/link.cc" "src/sim/CMakeFiles/bc_sim.dir/link.cc.o" "gcc" "src/sim/CMakeFiles/bc_sim.dir/link.cc.o.d"
  "/root/repo/src/sim/loss_model.cc" "src/sim/CMakeFiles/bc_sim.dir/loss_model.cc.o" "gcc" "src/sim/CMakeFiles/bc_sim.dir/loss_model.cc.o.d"
  "/root/repo/src/sim/pcap.cc" "src/sim/CMakeFiles/bc_sim.dir/pcap.cc.o" "gcc" "src/sim/CMakeFiles/bc_sim.dir/pcap.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/bc_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/bc_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/bc_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/bc_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/bc_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
