file(REMOVE_RECURSE
  "CMakeFiles/bc_app.dir/file_transfer.cc.o"
  "CMakeFiles/bc_app.dir/file_transfer.cc.o.d"
  "CMakeFiles/bc_app.dir/http.cc.o"
  "CMakeFiles/bc_app.dir/http.cc.o.d"
  "CMakeFiles/bc_app.dir/http_session.cc.o"
  "CMakeFiles/bc_app.dir/http_session.cc.o.d"
  "CMakeFiles/bc_app.dir/udp_stream.cc.o"
  "CMakeFiles/bc_app.dir/udp_stream.cc.o.d"
  "libbc_app.a"
  "libbc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
