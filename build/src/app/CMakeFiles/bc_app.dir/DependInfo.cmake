
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/file_transfer.cc" "src/app/CMakeFiles/bc_app.dir/file_transfer.cc.o" "gcc" "src/app/CMakeFiles/bc_app.dir/file_transfer.cc.o.d"
  "/root/repo/src/app/http.cc" "src/app/CMakeFiles/bc_app.dir/http.cc.o" "gcc" "src/app/CMakeFiles/bc_app.dir/http.cc.o.d"
  "/root/repo/src/app/http_session.cc" "src/app/CMakeFiles/bc_app.dir/http_session.cc.o" "gcc" "src/app/CMakeFiles/bc_app.dir/http_session.cc.o.d"
  "/root/repo/src/app/udp_stream.cc" "src/app/CMakeFiles/bc_app.dir/udp_stream.cc.o" "gcc" "src/app/CMakeFiles/bc_app.dir/udp_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gateway/CMakeFiles/bc_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/bc_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/bc_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rabin/CMakeFiles/bc_rabin.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
