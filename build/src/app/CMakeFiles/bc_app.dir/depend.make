# Empty dependencies file for bc_app.
# This may be replaced when dependencies are built.
