file(REMOVE_RECURSE
  "libbc_app.a"
)
