// Quickstart: the byte-caching codec in a dozen lines.
//
// Creates an encoder/decoder pair, pushes two packets that share content
// through them, and shows the second packet shrinking on the wire and
// being reconstructed bit-exactly.
//
//   $ ./quickstart
#include <cstdio>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "packet/packet.h"
#include "util/bytes.h"
#include "util/hexdump.h"

using namespace bytecache;

int main() {
  // 1. Configure the codec.  Defaults follow the paper: 16-byte Rabin
  //    windows, 1/16 fingerprint selection, regions encoded when > 14 B.
  core::DreParams params;
  core::Encoder encoder(params,
                        core::make_policy(core::PolicyKind::kCacheFlush, params));
  core::Decoder decoder(params);

  // 2. First packet: a fresh payload.  Nothing to eliminate yet, but both
  //    caches remember it.
  const util::Bytes page = util::to_bytes(
      "<html><head><title>byte caching quickstart</title></head><body>"
      "<nav><a href=/home>Home</a><a href=/news>News</a></nav>"
      "<main>This paragraph travels twice and is eliminated the second "
      "time around by the byte cache; only fresh bytes pay for wire "
      "space.</main></body></html>");
  auto first = packet::make_packet(0x0A000001, 0x0A000101,
                                   packet::IpProto::kUdp, page);
  encoder.process(*first);
  decoder.process(*first);
  std::printf("packet 1: %zu B payload, sent as-is (cold cache)\n",
              first->payload.size());

  // 3. Second packet: same page with a small edit.  The encoder replaces
  //    the repeated regions with 14-byte encoding fields.
  util::Bytes edited = page;
  const char* banner = "**UPDATED** ";
  edited.insert(edited.begin() + 130, banner, banner + 12);
  auto second = packet::make_packet(0x0A000001, 0x0A000101,
                                    packet::IpProto::kUdp, edited);
  const util::Bytes original = second->payload;
  const core::EncodeInfo info = encoder.process(*second);
  std::printf("packet 2: %zu B payload -> %zu B on the wire "
              "(%zu region(s), %.0f%% saved)\n",
              info.original_size, info.sent_size, info.regions,
              100.0 * (1.0 - static_cast<double>(info.sent_size) /
                                 info.original_size));
  std::printf("\nencoded wire form (shim + fields + literals):\n%s\n",
              util::hexdump(second->payload, 96).c_str());

  // 4. The decoder reconstructs the original payload bit-exactly.
  const core::DecodeInfo dinfo = decoder.process(*second);
  if (dinfo.status != core::DecodeStatus::kDecoded ||
      second->payload != original) {
    std::printf("FAILED to reconstruct!\n");
    return 1;
  }
  std::printf("decoder reconstructed all %zu bytes exactly.\n",
              second->payload.size());
  return 0;
}
