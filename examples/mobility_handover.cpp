// Node mobility across a handover (paper Section II).
//
// The paper's argument for IP-level byte caching: a TCP-level transparent
// proxy splits the connection into three TCP legs with independent
// sequence numbers, so when the client moves to a path that bypasses the
// proxy, the server sees acknowledgments from a *different* connection
// and the transfer wedges.  IP-level byte caching preserves TCP's
// end-to-end semantics: after a handover (brief outage + a fresh gateway
// pair with cold caches), the same connection simply keeps going.
//
// This example simulates the IP-level case: mid-download the client
// "moves" — the link blacks out for 400 ms, in-flight packets are lost,
// and both byte-caching caches are replaced by cold ones (a new gateway
// pair on the new path).  The download completes anyway.
//
//   $ ./mobility_handover
#include <cstdio>

#include "app/file_transfer.h"
#include "gateway/pipeline.h"
#include "sim/simulator.h"
#include "workload/generators.h"

using namespace bytecache;

int main() {
  util::Rng rng(99);
  const util::Bytes file = workload::make_file1(rng, 600'000);

  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.005;  // light background loss on the radio link
  cfg.seed = 3;
  gateway::Pipeline pipeline(sim, cfg);

  std::printf("downloading %zu KB with IP-level byte caching "
              "(cache_flush policy)...\n",
              file.size() / 1024);

  // Schedule the handover: cellular -> WiFi at t = 150 ms (mid-download).
  const sim::SimTime handover_at = sim::ms(150);
  const sim::SimTime outage = sim::ms(250);
  sim.at(handover_at, [&] {
    std::printf("[%6.2f s] HANDOVER: client leaves the cellular path — "
                "radio outage, in-flight packets lost\n",
                sim::to_seconds(sim.now()));
    // Total loss during the outage.
    pipeline.forward_link().set_loss(std::make_unique<sim::BernoulliLoss>(1.0));
  });
  sim.at(handover_at + outage, [&] {
    std::printf("[%6.2f s] attached via WiFi: new byte-caching gateway "
                "pair with cold caches takes over\n",
                sim::to_seconds(sim.now()));
    pipeline.forward_link().set_loss(
        std::make_unique<sim::BernoulliLoss>(0.005));
    // New gateways have empty caches on both sides.
    if (auto* enc = pipeline.encoder_gw().encoder()) enc->flush();
    // (The decoder keeps decoding; stale references from the old pair are
    // never emitted because the new encoder cache starts empty, and the
    // CRC check guards against any leftover in-flight packet.)
  });

  app::FileTransfer transfer(sim, pipeline, file, sim::sec(120));
  transfer.run_to_completion();
  const app::TransferResult& r = transfer.result();

  if (r.completed && r.verified) {
    std::printf("[%6.2f s] download complete and verified bit-exact — the "
                "TCP connection survived the handover.\n",
                r.duration_s);
  } else {
    std::printf("transfer FAILED (%.1f%% retrieved) — this should not "
                "happen with IP-level byte caching\n",
                r.percent_retrieved());
    return 1;
  }

  std::printf(
      "\nWhy the TCP-level transparent proxy cannot do this "
      "(paper Fig. 1):\n"
      "  the proxy terminates the client's TCP and opens its own leg to\n"
      "  the server, with an independent initial sequence number (e.g.\n"
      "  client leg at seq 100, server leg at seq 1000).  After the\n"
      "  handover the client's ACK 101 travels directly to the server,\n"
      "  whose connection state expects sequence ~1001: the ACK is\n"
      "  outside the window, the server keeps retransmitting into the\n"
      "  void, and the connection stalls.  IP-level byte caching never\n"
      "  touches TCP state, so mobility (with Mobile IP concealing the\n"
      "  address change) keeps working.\n");
  return 0;
}
