// Renders the inter-packet dependency graph of an encoded transfer as
// Graphviz DOT — the picture behind the paper's Figures 5 and 14
// (circular dependencies / an entire window depending on a lost packet).
//
//   $ ./dependency_graph [policy] [loss%] [packets] > deps.dot
//   $ dot -Tsvg deps.dot -o deps.svg
//
// Nodes are IP packets (uid); an edge a -> b means "a was encoded using
// b".  Lost packets are drawn red; undecodable ones orange.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "app/file_transfer.h"
#include "gateway/pipeline.h"
#include "sim/trace.h"
#include "workload/generators.h"

using namespace bytecache;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "tcp_seq";
  const double loss = (argc > 2 ? std::atof(argv[2]) : 2.0) / 100.0;
  const std::size_t max_packets = argc > 3 ? std::atoi(argv[3]) : 60;

  const auto policy = core::policy_from_string(policy_name);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }

  util::Rng rng(31);
  const util::Bytes file = workload::make_file1(rng, 120'000);

  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = *policy;
  cfg.loss_rate = loss;
  cfg.seed = 4;
  gateway::Pipeline pipeline(sim, cfg);

  sim::Trace trace;
  pipeline.attach_trace(&trace);

  // Every processed data packet reports its uid and the uids of the
  // cached packets it was encoded against.
  std::map<std::uint64_t, std::vector<std::uint64_t>> edges;
  std::vector<std::uint64_t> order;
  pipeline.encoder_gw().set_observer([&](const core::EncodeInfo& info) {
    if (!info.data_packet) return;
    if (order.size() < max_packets) order.push_back(info.uid);
    if (!info.deps.empty()) edges[info.uid] = info.deps;
  });

  app::FileTransfer transfer(sim, pipeline, file, sim::sec(120));
  transfer.run_to_completion();

  // Classify packets from the trace.
  std::set<std::uint64_t> lost, undecodable;
  for (const auto& r : trace.records()) {
    if (r.event == sim::TraceEvent::kLoss) lost.insert(r.packet_uid);
    if (r.event == sim::TraceEvent::kDecodeDrop) {
      undecodable.insert(r.packet_uid);
    }
  }

  std::printf("// policy=%s loss=%.1f%% — %zu packets shown\n",
              policy_name.c_str(), loss * 100, order.size());
  std::printf("digraph deps {\n  rankdir=RL;\n  node [shape=box, "
              "style=filled, fillcolor=white, fontname=\"monospace\"];\n");
  const std::set<std::uint64_t> shown(order.begin(), order.end());
  for (std::uint64_t uid : order) {
    const char* color = lost.count(uid) != 0          ? "#ff8888"
                        : undecodable.count(uid) != 0 ? "#ffcc88"
                                                      : "white";
    std::printf("  p%llu [label=\"IP %llu\", fillcolor=\"%s\"];\n",
                static_cast<unsigned long long>(uid),
                static_cast<unsigned long long>(uid), color);
    for (std::uint64_t dep : edges[uid]) {
      if (shown.count(dep) != 0) {
        std::printf("  p%llu -> p%llu;\n",
                    static_cast<unsigned long long>(uid),
                    static_cast<unsigned long long>(dep));
      }
    }
  }
  std::printf("}\n");
  std::fprintf(stderr,
               "legend: red = lost on the channel, orange = undecodable "
               "at the decoder\n");
  return 0;
}
