// Byte caching on a UDP media stream with the k-distance encoder.
//
// The Cache Flush and TCP Sequence Number encoders need TCP state; the
// k-distance encoder does not (paper Section V-C), so it is the one that
// applies to UDP.  This example streams a redundant "media" object across
// the lossy link and reports the application-level datagram loss with and
// without DRE — showing the bandwidth saved and the bounded loss cascade.
//
//   $ ./udp_streaming [loss%] [k]
#include <cstdio>
#include <cstdlib>

#include "app/udp_stream.h"
#include "gateway/gateways.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "workload/generators.h"

using namespace bytecache;

namespace {

struct StreamOutcome {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t wire_bytes = 0;
  double loss_rate = 0.0;
};

StreamOutcome run_stream(const util::Bytes& media, double loss,
                         std::size_t k, bool with_dre) {
  sim::Simulator sim;
  core::GatewayConfig gw_cfg;
  gw_cfg.params.k_distance = k;
  gw_cfg.policy =
      with_dre ? core::PolicyKind::kKDistance : core::PolicyKind::kNone;
  gateway::EncoderGateway enc(gw_cfg);
  gateway::DecoderGateway dec(gw_cfg);
  sim::LinkConfig lcfg;
  lcfg.queue_packets = 1 << 16;
  sim::Link link(sim, lcfg, std::make_unique<sim::BernoulliLoss>(loss),
                 util::Rng(11));

  app::UdpStreamConfig ucfg;
  app::UdpSink sink(ucfg);
  app::UdpSource source(sim, ucfg,
                        [&](packet::PacketPtr p) { enc.receive(std::move(p)); });
  enc.set_sink([&](packet::PacketPtr p) { link.send(std::move(p)); });
  link.set_sink([&](packet::PacketPtr p) { dec.receive(std::move(p)); });
  dec.set_sink([&](packet::PacketPtr p) { sink.on_packet(*p); });

  source.start(media);
  sim.run();

  StreamOutcome out;
  out.sent = source.datagrams_sent();
  out.received = sink.datagrams_received();
  out.wire_bytes = link.stats().bytes_sent;
  out.loss_rate = sink.loss_rate();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double loss = (argc > 1 ? std::atof(argv[1]) : 5.0) / 100.0;
  const std::size_t k = argc > 2 ? std::atoi(argv[2]) : 8;

  util::Rng rng(4242);
  const util::Bytes media = workload::make_file1(rng, 600'000);

  std::printf("streaming %zu KB of redundant media over UDP, %.1f%% "
              "channel loss\n\n",
              media.size() / 1024, loss * 100);

  const StreamOutcome plain = run_stream(media, loss, k, false);
  const StreamOutcome dre = run_stream(media, loss, k, true);

  std::printf("without DRE:        %6llu/%llu datagrams delivered "
              "(%.1f%% lost), %llu wire bytes\n",
              static_cast<unsigned long long>(plain.received),
              static_cast<unsigned long long>(plain.sent),
              plain.loss_rate * 100,
              static_cast<unsigned long long>(plain.wire_bytes));
  std::printf("k-distance (k=%2zu):  %6llu/%llu datagrams delivered "
              "(%.1f%% lost), %llu wire bytes\n",
              k, static_cast<unsigned long long>(dre.received),
              static_cast<unsigned long long>(dre.sent),
              dre.loss_rate * 100,
              static_cast<unsigned long long>(dre.wire_bytes));
  std::printf("\nbandwidth saved: %.0f%%   extra datagram loss from "
              "undecodable packets: %.1f%% (bounded by k-1 per channel "
              "loss)\n",
              100.0 * (1.0 - static_cast<double>(dre.wire_bytes) /
                                 plain.wire_bytes),
              (dre.loss_rate - plain.loss_rate) * 100);
  return 0;
}
