// A client downloads a file from an HTTP-like server across a 1 MB/s
// wireless link (the paper's Fig. 3 setup), with byte-caching gateways at
// both ends.
//
//   $ ./wireless_download [policy] [loss%] [size_kb] [capture.pcap]
//   policy: none | naive | cache_flush | tcp_seq | k_distance | adaptive
//
// With a fourth argument, the forward-direction wire traffic (including
// the DRE-encoded packets) is saved as a pcap file for Wireshark.
//
// Try `./wireless_download naive 1` to watch the paper's Section IV
// stall happen, and `./wireless_download cache_flush 1` to see the fix.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/file_transfer.h"
#include "gateway/pipeline.h"
#include "sim/pcap.h"
#include "sim/simulator.h"
#include "workload/generators.h"

using namespace bytecache;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "cache_flush";
  const double loss = (argc > 2 ? std::atof(argv[2]) : 1.0) / 100.0;
  const std::size_t size_kb = argc > 3 ? std::atoi(argv[3]) : 574;
  const char* pcap_path = argc > 4 ? argv[4] : nullptr;

  const auto policy = core::policy_from_string(policy_name);
  if (!policy) {
    std::fprintf(stderr,
                 "unknown policy '%s' (try none, naive, cache_flush, "
                 "tcp_seq, k_distance, adaptive)\n",
                 policy_name.c_str());
    return 2;
  }

  util::Rng rng(2026);
  const util::Bytes file = workload::make_file1(rng, size_kb * 1024);

  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = *policy;
  cfg.loss_rate = loss;
  cfg.seed = 7;
  gateway::Pipeline pipeline(sim, cfg);

  sim::PcapWriter pcap;
  if (pcap_path != nullptr) pipeline.attach_pcap(&pcap);

  std::printf("downloading %zu KB over a 1 MB/s link, %.1f%% loss, "
              "policy=%s ...\n",
              size_kb, loss * 100, policy_name.c_str());

  app::FileTransfer transfer(sim, pipeline, file, sim::sec(300));
  transfer.run_to_completion();
  const app::TransferResult& r = transfer.result();

  if (r.completed) {
    std::printf("completed in %.2f s (%s)\n", r.duration_s,
                r.verified ? "verified bit-exact" : "VERIFICATION FAILED");
  } else {
    std::printf("TCP CONNECTION STALLED after %.2f s with %.1f%% of the "
                "file retrieved (%llu / %llu bytes)\n",
                r.duration_s, r.percent_retrieved(),
                static_cast<unsigned long long>(r.delivered_bytes),
                static_cast<unsigned long long>(r.file_size));
  }

  const auto& link = pipeline.forward_link().stats();
  std::printf("\nforward link: %llu packets, %llu bytes on the wire, "
              "%llu channel drops\n",
              static_cast<unsigned long long>(link.packets_offered),
              static_cast<unsigned long long>(link.bytes_sent),
              static_cast<unsigned long long>(link.drops_loss));
  std::printf("decoder: %llu undecodable packets dropped\n",
              static_cast<unsigned long long>(
                  pipeline.decoder_gw().stats().dropped));
  if (const core::Encoder* enc = pipeline.encoder_gw().encoder()) {
    const auto& es = enc->stats();
    std::printf("encoder: %llu/%llu packets encoded, %llu B -> %llu B "
                "payload (%.0f%% saved), %llu flushes, %llu references\n",
                static_cast<unsigned long long>(es.encoded_packets),
                static_cast<unsigned long long>(es.data_packets),
                static_cast<unsigned long long>(es.bytes_in),
                static_cast<unsigned long long>(es.bytes_out),
                es.bytes_in > 0
                    ? 100.0 * es.bytes_saved() / static_cast<double>(es.bytes_in)
                    : 0.0,
                static_cast<unsigned long long>(es.flushes),
                static_cast<unsigned long long>(es.references));
  }
  const auto& ss = pipeline.sender().stats();
  std::printf("tcp: %llu segments, %llu retransmissions, %llu timeouts, "
              "%llu fast retransmits\n",
              static_cast<unsigned long long>(ss.segments_sent),
              static_cast<unsigned long long>(ss.retransmissions),
              static_cast<unsigned long long>(ss.timeouts),
              static_cast<unsigned long long>(ss.fast_retransmits));
  if (pcap_path != nullptr) {
    if (pcap.save(pcap_path)) {
      std::printf("wrote %zu packets to %s\n", pcap.packet_count(),
                  pcap_path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", pcap_path);
    }
  }
  return r.completed ? 0 : 1;
}
