// Command-line experiment runner: the full harness behind one flag set.
//
//   $ ./experiment_cli --policy=cache_flush --loss=5 --trials=10
//         --file=file1 --size-kb=574 --csv
//
// Flags (all optional):
//   --policy=none|naive|cache_flush|tcp_seq|k_distance|adaptive|resilient
//   --loss=<percent>          forward-link loss rate     (default 1)
//   --bursty                  Gilbert-Elliott loss instead of Bernoulli
//   --corrupt=<percent>       corruption probability     (default 0)
//   --reorder=<percent>       reordering probability     (default 0)
//   --file=file1|file2|ebook|video|webpage|@/path/to/file (default file1)
//   --size-kb=<n>             object size                (default 574)
//   --k=<n>                   k-distance parameter       (default 8)
//   --trials=<n>              trials to aggregate        (default 5)
//   --seed=<n>                base seed                  (default 1)
//   --nack                    enable decoder NACK feedback
//   --ack-gated               enable ACK-gated references
//   --epoch-resync            epoch-stamped cache resync (DESIGN.md §9)
//   --coded                   coded repair: FEC generations over the DRE
//                             stream + reorder-tolerant decoding (§13);
//                             implies --epoch-resync (v3 wire needs it)
//   --csv                     machine-readable one-line-per-trial output
//   --json                    one JSON object per trial
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/table.h"
#include "workload/generators.h"

using namespace bytecache;

namespace {

struct Options {
  std::string policy = "cache_flush";
  double loss = 0.01;
  bool bursty = false;
  double corrupt = 0.0;
  double reorder = 0.0;
  std::string file = "file1";
  std::size_t size_kb = 574;
  std::size_t k = 8;
  std::size_t trials = 5;
  std::uint64_t seed = 1;
  bool nack = false;
  bool ack_gated = false;
  bool epoch_resync = false;
  bool coded = false;
  bool csv = false;
  bool json = false;
};

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void usage_error(const char* arg) {
  std::fprintf(stderr, "unknown argument '%s' (see header comment)\n", arg);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (parse_flag(a, "--policy", v)) opt.policy = v;
    else if (parse_flag(a, "--loss", v)) opt.loss = std::atof(v.c_str()) / 100;
    else if (std::strcmp(a, "--bursty") == 0) opt.bursty = true;
    else if (parse_flag(a, "--corrupt", v)) opt.corrupt = std::atof(v.c_str()) / 100;
    else if (parse_flag(a, "--reorder", v)) opt.reorder = std::atof(v.c_str()) / 100;
    else if (parse_flag(a, "--file", v)) opt.file = v;
    else if (parse_flag(a, "--size-kb", v)) opt.size_kb = std::atoi(v.c_str());
    else if (parse_flag(a, "--k", v)) opt.k = std::atoi(v.c_str());
    else if (parse_flag(a, "--trials", v)) opt.trials = std::atoi(v.c_str());
    else if (parse_flag(a, "--seed", v)) opt.seed = std::atoll(v.c_str());
    else if (std::strcmp(a, "--nack") == 0) opt.nack = true;
    else if (std::strcmp(a, "--ack-gated") == 0) opt.ack_gated = true;
    else if (std::strcmp(a, "--epoch-resync") == 0) opt.epoch_resync = true;
    else if (std::strcmp(a, "--coded") == 0) opt.coded = true;
    else if (std::strcmp(a, "--csv") == 0) opt.csv = true;
    else if (std::strcmp(a, "--json") == 0) opt.json = true;
    else usage_error(a);
  }
  return opt;
}

util::Bytes make_object(const Options& opt) {
  util::Rng rng(opt.seed ^ 0xF00D);
  const std::size_t size = opt.size_kb * 1024;
  if (!opt.file.empty() && opt.file[0] == '@') {
    auto loaded = workload::load_file(opt.file.substr(1));
    if (!loaded) {
      std::fprintf(stderr, "cannot read '%s'\n", opt.file.c_str() + 1);
      std::exit(2);
    }
    return *loaded;
  }
  if (opt.file == "file1") return workload::make_file1(rng, size);
  if (opt.file == "file2") return workload::make_file2(rng, size);
  if (opt.file == "ebook") return workload::make_ebook(rng, {.size = size});
  if (opt.file == "video") return workload::make_video(rng, size);
  if (opt.file == "webpage") {
    util::Bytes object;
    while (object.size() < size) {
      util::append(object, workload::make_web_page(rng, {}));
    }
    object.resize(size);
    return object;
  }
  std::fprintf(stderr, "unknown --file '%s'\n", opt.file.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto policy = core::policy_from_string(opt.policy);
  if (!policy) {
    std::fprintf(stderr, "unknown --policy '%s'\n", opt.policy.c_str());
    return 2;
  }

  harness::ExperimentConfig cfg;
  cfg.policy = *policy;
  cfg.loss_rate = opt.loss;
  cfg.bursty_loss = opt.bursty;
  cfg.forward_link.corrupt_prob = opt.corrupt;
  cfg.forward_link.reorder_prob = opt.reorder;
  cfg.dre.k_distance = opt.k;
  cfg.dre.nack_feedback = opt.nack;
  cfg.dre.ack_gated = opt.ack_gated;
  cfg.dre.epoch_resync = opt.epoch_resync || opt.coded;
  cfg.dre.coded_repair = opt.coded;
  cfg.trials = opt.trials;
  cfg.seed = opt.seed;

  const util::Bytes object = make_object(opt);
  const auto agg = harness::run_experiment(cfg, object);

  harness::Table table({"trial", "completed", "duration_s", "wire_bytes",
                        "actual_loss", "perceived_loss", "retrieved_%"});
  for (std::size_t i = 0; i < agg.trials.size(); ++i) {
    const auto& t = agg.trials[i];
    table.add_row({std::to_string(i + 1), t.completed ? "yes" : "NO",
                   harness::Table::num(t.duration_s, 3),
                   std::to_string(t.wire_bytes_forward),
                   harness::Table::num(t.actual_loss * 100, 2),
                   harness::Table::num(t.perceived_loss * 100, 2),
                   harness::Table::num(t.percent_retrieved, 1)});
  }
  if (opt.json) {
    for (const auto& t : agg.trials) {
      std::printf("%s\n", harness::to_json(t).c_str());
    }
    return 0;
  }
  if (opt.csv) {
    std::fputs(table.to_csv().c_str(), stdout);
    return 0;
  }
  std::printf("policy=%s loss=%.1f%% file=%s (%zu KB) trials=%zu\n",
              opt.policy.c_str(), opt.loss * 100, opt.file.c_str(),
              opt.size_kb, opt.trials);
  table.print();
  std::printf("\ncompletion %.0f%%   mean duration %.3f s (+/- %.3f)   "
              "mean wire bytes %.0f   mean perceived loss %.1f%%\n",
              agg.completion_rate * 100, agg.duration_s.mean(),
              agg.duration_s.stddev(), agg.wire_bytes.mean(),
              agg.perceived_loss.mean() * 100);
  return 0;
}
