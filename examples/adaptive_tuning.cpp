// The tune-able byte-caching scheme the paper's conclusion calls for:
// "the need to build a tune-able byte caching scheme that can dynamically
// adapt how aggressively it compresses packets based on the packet loss
// rate in the underlying communication channel."
//
// The AdaptivePolicy estimates the loss rate from observed TCP
// retransmissions (EWMA) and tunes the k-distance reference interval to
// k ~= 1/(2p).  This example runs a download whose channel deteriorates
// mid-transfer and shows the encoder backing off its aggressiveness.
//
//   $ ./adaptive_tuning
#include <cstdio>

#include "app/file_transfer.h"
#include "core/policies.h"
#include "gateway/pipeline.h"
#include "sim/simulator.h"
#include "workload/generators.h"

using namespace bytecache;

namespace {

void run(const char* label, core::PolicyKind kind, std::size_t k = 8) {
  util::Rng rng(77);
  const util::Bytes file = workload::make_file1(rng, 2'000'000);

  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = kind;
  cfg.dre.k_distance = k;
  cfg.loss_rate = 0.0;  // the channel starts clean...
  cfg.seed = 5;
  gateway::Pipeline pipeline(sim, cfg);

  // ...and turns bad at t = 150 ms (the user walks into a stairwell).
  sim.at(sim::ms(150), [&] {
    pipeline.forward_link().set_loss(std::make_unique<sim::BernoulliLoss>(0.08));
  });

  // Periodically report the adaptive encoder's internal state.  The
  // self-rescheduling closure is heap-owned so pending events never
  // outlive it.
  if (kind == core::PolicyKind::kAdaptive) {
    auto report = std::make_shared<std::function<void()>>();
    *report = [&sim, &pipeline, report]() {
      if (auto* enc = pipeline.encoder_gw().encoder()) {
        const auto* adaptive =
            dynamic_cast<const core::AdaptivePolicy*>(&enc->policy());
        if (adaptive != nullptr) {
          std::printf("  [%5.2f s] estimated loss %.1f%%  ->  k = %zu\n",
                      sim::to_seconds(sim.now()),
                      adaptive->estimated_loss() * 100,
                      adaptive->current_k());
        }
      }
      sim.after(sim::ms(400), *report);
    };
    sim.after(sim::ms(100), *report);
  }

  app::FileTransfer transfer(sim, pipeline, file, sim::sec(300));
  transfer.run_to_completion();
  const app::TransferResult& r = transfer.result();
  const auto& link = pipeline.forward_link().stats();
  std::printf("%-22s %s in %6.2f s, %llu wire bytes\n\n", label,
              r.completed ? "completed" : "STALLED", r.duration_s,
              static_cast<unsigned long long>(link.bytes_sent));
}

}  // namespace

int main() {
  std::printf("channel: clean for 150 ms, then 8%% loss\n\n");
  std::printf("adaptive k-distance:\n");
  run("adaptive", core::PolicyKind::kAdaptive);
  run("fixed k-distance (64)", core::PolicyKind::kKDistance, 64);
  run("cache_flush", core::PolicyKind::kCacheFlush);
  run("no DRE", core::PolicyKind::kNone);
  std::printf(
      "the adaptive encoder compresses aggressively while the channel is\n"
      "clean and shortens its reference interval once retransmissions\n"
      "reveal loss — trading compression for a bounded loss cascade.\n");
  return 0;
}
