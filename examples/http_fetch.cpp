// A browsing session through the byte-caching gateways: real HTTP/1.0
// requests and responses over simulated TCP, with the shared cache
// eliminating redundancy across responses (repeated templates, repeated
// objects, repeated header boilerplate).
//
//   $ ./http_fetch [policy] [loss%]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/http_session.h"
#include "sim/simulator.h"
#include "workload/generators.h"
#include "workload/text.h"

using namespace bytecache;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "tcp_seq";
  const double loss = (argc > 2 ? std::atof(argv[2]) : 0.5) / 100.0;
  const auto policy = core::policy_from_string(policy_name);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }

  // A small "site": pages share CSS/nav boilerplate and one page repeats.
  util::Rng rng(2012);
  app::HttpServer server;
  const char* paths[] = {"/", "/news", "/article", "/about"};
  for (const char* path : paths) {
    workload::WebPageParams params;
    params.items = 25;
    server.add_object(path, workload::make_web_page(rng, params));
  }

  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = *policy;
  cfg.loss_rate = loss;
  cfg.seed = 99;
  app::HttpSession session(sim, cfg, std::move(server));

  std::printf("browsing with policy=%s, %.1f%% loss\n\n", policy_name.c_str(),
              loss * 100);
  std::printf("%-10s %-7s %10s %12s %14s\n", "path", "status", "bytes",
              "time (ms)", "wire bytes");

  std::uint64_t last_wire = 0;
  // Browse the site, then revisit the front page (a warm-cache hit).
  const char* visits[] = {"/", "/news", "/article", "/about", "/"};
  for (const char* path : visits) {
    const app::FetchResult r = session.fetch(path);
    const std::uint64_t wire = session.forward_link().stats().bytes_sent;
    if (!r.ok) {
      std::printf("%-10s FAILED (stalled)\n", path);
      return 1;
    }
    std::printf("%-10s %-7d %10zu %12.1f %14llu\n", path, r.status,
                r.response.body.size(), r.duration_s * 1000,
                static_cast<unsigned long long>(wire - last_wire));
    last_wire = wire;
  }

  if (const core::Encoder* enc = session.encoder_gw().encoder()) {
    const auto& s = enc->stats();
    std::printf("\nencoder: %llu B offered, %llu B sent (%.0f%% saved "
                "across the whole session)\n",
                static_cast<unsigned long long>(s.bytes_in),
                static_cast<unsigned long long>(s.bytes_out),
                s.bytes_in > 0
                    ? 100.0 * s.bytes_saved() / static_cast<double>(s.bytes_in)
                    : 0.0);
  }
  std::printf("note how the boilerplate shared between pages and the "
              "revisited front page\ncost a fraction of their first "
              "transfer.\n");
  return 0;
}
