// Section VII insight: why aggressive compression loses.
//
// The paper, at p = 9% on File 1: "the average packet sizes for the cache
// flush algorithm and the k-distance algorithm were 835 bytes and 920
// bytes respectively (while the numbers of packets sent by both the
// algorithms were nearly identical, around 390 packets)"; at k = 50 "the
// average packet size for the k-distance algorithm drops to 634 bytes,
// while the total number of packets ... increases to 430" — more
// aggressive compression raises the perceived loss rate, offsetting its
// savings.
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading(
      "Section VII: aggressive compression vs perceived loss (File 1, 9%)");
  bench::print_paper_note(
      "CacheFlush avg pkt 835 B vs k=8 920 B at ~390 pkts; k=50 drops to "
      "634 B but sends ~430 pkts at a higher perceived loss");

  const auto& file = bench::file1();
  const double loss = 0.09;
  const std::size_t trials = 10;

  harness::Table table({"scheme", "avg packet size (B)", "packets sent",
                        "perceived loss", "download time (s)"});

  auto add_row = [&](const std::string& name, core::PolicyKind kind,
                     std::size_t k) {
    auto cfg = bench::default_config(kind, loss, trials);
    cfg.dre.k_distance = k;
    auto agg = harness::run_experiment(cfg, file);
    table.add_row({name, harness::Table::num(agg.avg_packet_size.mean(), 0),
                   harness::Table::num(agg.packets_forward.mean(), 0),
                   harness::Table::pct(agg.perceived_loss.mean() * 100, 1),
                   harness::Table::num(agg.duration_s.mean(), 2)});
  };
  add_row("Cache Flush", core::PolicyKind::kCacheFlush, 8);
  add_row("k-distance (k=8)", core::PolicyKind::kKDistance, 8);
  add_row("k-distance (k=50)", core::PolicyKind::kKDistance, 50);
  add_row("TCP seq", core::PolicyKind::kTcpSeq, 8);
  table.print();
  return 0;
}
