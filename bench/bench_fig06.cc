// Figure 6: frequency of TCP connection stalls with the naive encoder at
// 1% packet loss.
//
// The paper retrieves a 574 KB e-book 50 times: 49/50 runs stall; the
// mean fraction retrieved is 25.5% (~149,829 bytes ~ 100 packets, the
// reciprocal of the 1% loss rate).
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading(
      "Figure 6: frequency of TCP connection stalls (naive, 1% loss)");
  bench::print_paper_note(
      "49/50 retrievals stall; mean 25.5% of the file (~149,829 bytes) "
      "retrieved before the stall");

  const auto& file = bench::file1();
  harness::Table table({"connection", "% of file retrieved", "stalled"});
  harness::Summary retrieved;
  int stalls = 0;
  const int runs = 50;
  for (int i = 0; i < runs; ++i) {
    auto cfg = bench::default_config(core::PolicyKind::kNaive, 0.01, 1);
    auto r = harness::run_trial(cfg, file, 0xF16 + i);
    retrieved.add(r.percent_retrieved);
    if (r.stalled) ++stalls;
    table.add_row({std::to_string(i + 1),
                   harness::Table::num(r.percent_retrieved, 1),
                   r.stalled ? "yes" : "no"});
  }
  table.print();
  std::printf(
      "\nstalled: %d/%d   mean retrieved: %.1f%% (%.0f bytes)\n", stalls,
      runs, retrieved.mean(),
      retrieved.mean() / 100.0 * static_cast<double>(file.size()));
  return 0;
}
