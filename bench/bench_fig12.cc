// Figure 12: performance of the k-distance algorithm for 5% and 10%
// packet loss on File 1, varying the distance k.
//
// Normalization follows the paper: bytes sent are normalized by the file
// size; delay is normalized by the download time in the absence of packet
// losses.  Paper: k ~= 8 is a reasonable tradeoff (24% byte savings while
// limiting delay); even k = 80 does not reach CacheFlush's savings.
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading("Figure 12: k-distance sweep (File 1)");
  bench::print_paper_note(
      "k~8 gives ~24% byte savings with bounded delay; savings saturate "
      "below CacheFlush even at k=80");

  const auto& file = bench::file1();
  const std::size_t trials = 8;

  // The paper's delay normalizer: download time at zero loss (without DRE).
  auto base_cfg = bench::default_config(core::PolicyKind::kNone, 0.0, trials);
  const double no_loss_delay =
      harness::run_experiment(base_cfg, file).duration_s.mean();

  harness::Table table({"k", "bytes sent (5%)", "delay (5%)",
                        "bytes sent (10%)", "delay (10%)"});
  for (std::size_t k : {2u, 4u, 8u, 16u, 32u, 48u, 64u, 80u}) {
    double bytes_ratio[2], delay_ratio[2];
    int idx = 0;
    for (double loss : {0.05, 0.10}) {
      auto cfg =
          bench::default_config(core::PolicyKind::kKDistance, loss, trials);
      cfg.dre.k_distance = k;
      auto agg = harness::run_experiment(cfg, file);
      bytes_ratio[idx] =
          agg.wire_bytes.mean() / static_cast<double>(file.size());
      delay_ratio[idx] = agg.duration_s.mean() / no_loss_delay;
      ++idx;
    }
    table.add_row({std::to_string(k),
                   harness::Table::num(bytes_ratio[0], 3),
                   harness::Table::num(delay_ratio[0], 2),
                   harness::Table::num(bytes_ratio[1], 3),
                   harness::Table::num(delay_ratio[1], 2)});
  }
  table.print();

  // Reference: CacheFlush at 5% with the same normalization, for the
  // paper's observation that k-distance never catches it.
  auto cf_cfg = bench::default_config(core::PolicyKind::kCacheFlush, 0.05, trials);
  auto cf = harness::run_experiment(cf_cfg, file);
  std::printf("\nCacheFlush at 5%% loss, same normalization: bytes %.3f, "
              "delay %.2f\n",
              cf.wire_bytes.mean() / static_cast<double>(file.size()),
              cf.duration_s.mean() / no_loss_delay);
  return 0;
}
