// Evaluation of the paper's Section VIII "potential approaches", which
// the authors describe but leave unevaluated:
//
//   1. NACK feedback — "having the decoder – upon detecting a missing
//      packet – sending a notification message to the encoder".  The
//      paper speculates "the extra round trip ... can still result in a
//      large number of dependencies affected by the loss".
//   2. ACK-gated references — "not caching a packet until it has been
//      successfully acknowledged as received by the other endpoint".
//
// Both are composed with the *naive* encoder so the comparison isolates
// the feedback mechanisms, with Cache Flush as the paper's best scheme
// for reference.
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading(
      "Section VIII follow-up: NACK feedback and ACK-gated references");
  bench::print_paper_note(
      "unevaluated in the paper; it conjectures NACK's extra round trip "
      "still leaves many dependencies exposed");

  bench::BaselineCache baselines;
  const auto& file = bench::file1();
  const std::size_t trials = 8;

  harness::Table table({"loss %", "scheme", "completion", "bytes ratio",
                        "delay ratio", "perceived loss"});

  for (double loss : {0.01, 0.05, 0.10}) {
    struct Scheme {
      const char* name;
      core::PolicyKind policy;
      bool nack;
      bool ack_gated;
    };
    const Scheme schemes[] = {
        {"naive (paper Fig.2)", core::PolicyKind::kNaive, false, false},
        {"naive + NACK", core::PolicyKind::kNaive, true, false},
        {"naive + ACK-gated", core::PolicyKind::kNaive, false, true},
        {"cache_flush", core::PolicyKind::kCacheFlush, false, false},
    };
    for (const Scheme& s : schemes) {
      auto cfg = bench::default_config(s.policy, loss, trials);
      cfg.dre.nack_feedback = s.nack;
      cfg.dre.ack_gated = s.ack_gated;
      auto agg = harness::run_experiment(cfg, file);
      const auto& base = baselines.get(file, loss, trials);
      table.add_row(
          {harness::Table::num(loss * 100, 0), s.name,
           harness::Table::pct(agg.completion_rate * 100, 0),
           harness::Table::num(agg.wire_bytes.mean() / base.wire_bytes.mean(),
                               3),
           harness::Table::num(agg.duration_s.mean() / base.duration_s.mean(),
                               2),
           harness::Table::pct(agg.perceived_loss.mean() * 100, 1)});
    }
  }
  table.print();
  std::printf(
      "\nNACK feedback repairs the naive encoder's stall (completion back "
      "to 100%%)\nbut pays one round trip per first-reference loss; "
      "ACK-gating eliminates\nundecodable packets entirely (perceived == "
      "actual) at some compression cost.\n");
  return 0;
}
