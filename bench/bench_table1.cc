// Table I: redundancy in web objects for cache windows of k packets.
//
//   k     ebook   video     web page
//   10    0.3%    0.009%    19-42%
//   100   0.7%    0.009%    26-49%
//   1000  1%      1%        26-52%
#include <cstdio>

#include "bench/common.h"
#include "workload/analyzer.h"

using namespace bytecache;

int main() {
  harness::print_heading("Table I: redundancy in web objects");
  bench::print_paper_note(
      "ebook 0.3/0.7/1%, video ~0.009-1%, web page 19-42/26-49/26-52% "
      "for k = 10/100/1000");

  util::Rng rng(0x7AB1E1);
  const auto ebook = workload::make_ebook(rng, {});
  const auto video = workload::make_video(rng, bench::kFileSize);

  // Several pages of one site: ranges across pages, as the paper reports
  // ranges per object class.
  // Pages range from prose-heavy blog posts (low redundancy) to dense
  // listing pages (high redundancy), as real sites do.
  std::vector<util::Bytes> pages;
  for (int i = 0; i < 6; ++i) {
    workload::WebPageParams p;
    p.items = 15 + 9 * i;
    p.sentences_per_item = 6 - i;
    pages.push_back(workload::make_web_page(rng, p));
  }

  harness::Table table({"k", "ebook", "video", "web page"});
  for (std::size_t k : {10u, 100u, 1000u}) {
    const auto eb = workload::redundancy_percent(ebook, k);
    const auto vid = workload::redundancy_percent(video, k);
    double lo = 100.0, hi = 0.0;
    for (const auto& page : pages) {
      const double s = workload::redundancy_percent(page, k).percent_saved;
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    table.add_row({std::to_string(k),
                   harness::Table::pct(eb.percent_saved, 2),
                   harness::Table::pct(vid.percent_saved, 3),
                   harness::Table::pct(lo, 0) + "-" +
                       harness::Table::pct(hi, 0)});
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
