// Microbenchmarks: encoder/decoder throughput and cache operations.
#include <benchmark/benchmark.h>

#include "cache/byte_cache.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "packet/packet.h"
#include "packet/tcp.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

using namespace bytecache;

std::vector<packet::PacketPtr> packets_of(const util::Bytes& object) {
  std::vector<packet::PacketPtr> out;
  std::uint32_t seq = 1000;
  for (std::size_t off = 0; off < object.size(); off += 1460) {
    const std::size_t len = std::min<std::size_t>(1460, object.size() - off);
    packet::TcpHeader h;
    h.seq = seq;
    h.flags = packet::TcpHeader::kAck;
    seq += static_cast<std::uint32_t>(len);
    util::Bytes segment;
    h.serialize(segment, util::BytesView(object.data() + off, len),
                0x0A000001, 0x0A000101);
    out.push_back(packet::make_packet(0x0A000001, 0x0A000101,
                                      packet::IpProto::kTcp,
                                      std::move(segment)));
  }
  return out;
}

const util::Bytes& redundant_object() {
  static const util::Bytes obj = [] {
    util::Rng rng(2);
    return workload::make_file1(rng, 400 * 1460);
  }();
  return obj;
}

void BM_EncodeRedundantStream(benchmark::State& state) {
  const auto& object = redundant_object();
  for (auto _ : state) {
    core::DreParams params;
    core::Encoder enc(params,
                      core::make_policy(core::PolicyKind::kNaive, params));
    for (const auto& pkt : packets_of(object)) {
      auto copy = packet::clone_packet(*pkt);
      benchmark::DoNotOptimize(enc.process(*copy));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          object.size());
}
BENCHMARK(BM_EncodeRedundantStream)->Unit(benchmark::kMillisecond);

void BM_EncodeIncompressibleStream(benchmark::State& state) {
  util::Rng rng(3);
  const auto object = workload::make_video(rng, 400 * 1460);
  for (auto _ : state) {
    core::DreParams params;
    core::Encoder enc(params,
                      core::make_policy(core::PolicyKind::kNaive, params));
    for (const auto& pkt : packets_of(object)) {
      auto copy = packet::clone_packet(*pkt);
      benchmark::DoNotOptimize(enc.process(*copy));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          object.size());
}
BENCHMARK(BM_EncodeIncompressibleStream)->Unit(benchmark::kMillisecond);

void BM_EncodeDecodeRoundTrip(benchmark::State& state) {
  const auto& object = redundant_object();
  for (auto _ : state) {
    core::DreParams params;
    core::Encoder enc(params,
                      core::make_policy(core::PolicyKind::kNaive, params));
    core::Decoder dec(params);
    for (const auto& pkt : packets_of(object)) {
      auto copy = packet::clone_packet(*pkt);
      enc.process(*copy);
      benchmark::DoNotOptimize(dec.process(*copy));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          object.size());
}
BENCHMARK(BM_EncodeDecodeRoundTrip)->Unit(benchmark::kMillisecond);

void BM_CacheUpdate(benchmark::State& state) {
  util::Rng rng(4);
  util::Bytes payload(1480);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  rabin::RabinTables tables(16);
  const auto anchors = rabin::selected_anchors(tables, payload, 4);
  for (auto _ : state) {
    cache::ByteCache cache;
    for (int i = 0; i < 100; ++i) {
      cache.update(payload, anchors, {});
    }
    benchmark::DoNotOptimize(cache);
  }
}
BENCHMARK(BM_CacheUpdate);

void BM_CacheFind(benchmark::State& state) {
  util::Rng rng(5);
  util::Bytes payload(1480);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  rabin::RabinTables tables(16);
  const auto anchors = rabin::selected_anchors(tables, payload, 4);
  cache::ByteCache cache;
  cache.update(payload, anchors, {});
  for (auto _ : state) {
    for (const auto& a : anchors) {
      benchmark::DoNotOptimize(cache.find(a.fp));
    }
  }
}
BENCHMARK(BM_CacheFind);

}  // namespace

BENCHMARK_MAIN();
