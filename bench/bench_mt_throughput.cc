// Multi-shard data-plane throughput: MB/s through the sharded gateways
// (gateway/sharded_gateways.h) at 1, 2, 4, and 8 shards.
//
// Tracked alongside bench_throughput in BENCH_dataplane.json (emitted by
// tools/bench_json.py).  The workload is 8 host-pair flows, each
// streaming File 1 as MSS-sized TCP segments, interleaved round-robin —
// the traffic mix the paper's single middlebox multiplexes.  The driver
// thread submits; each encoder shard's worker encodes and (via the
// worker sink) decodes on its own thread against the shard-twin decoder,
// so N shards keep up to N cores busy.  Every decoded packet is verified
// byte-for-byte against the offered stream.
//
// Like bench_throughput: an untimed warm-up pass populates the caches,
// then the fastest of `passes` timed replays is reported.  The
// `file1_1flow_1shard` entry replays bench_throughput's exact
// single-flow stream through one shard; its wire_ratio must match the
// bench_throughput file1_naive_valuesampling baseline (same packets,
// same codec — sharding must not change a single wire byte).
//
// The scaling curve is machine-dependent: shards beyond the machine's
// core count just time-slice, so the JSON records hardware_concurrency
// next to the shard sweep.  Run with --quick for the CI smoke job.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "gateway/sharded_gateways.h"
#include "packet/ipv4.h"
#include "packet/tcp.h"
#include "rabin/scan_kernel.h"

namespace {

using namespace bytecache;

constexpr std::size_t kMss = 1460;
constexpr std::size_t kFlows = 8;

/// One flow's pre-built segment stream (payload = TCP header + data).
struct FlowStream {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<util::Bytes> segments;
  std::size_t data_bytes = 0;
};

FlowStream make_flow(const util::Bytes& file, std::uint32_t src,
                     std::uint32_t dst) {
  FlowStream s;
  s.src = src;
  s.dst = dst;
  std::uint32_t seq = 1;
  for (std::size_t off = 0; off < file.size(); off += kMss) {
    const std::size_t n = std::min(kMss, file.size() - off);
    packet::TcpHeader h;
    h.src_port = 40000;
    h.dst_port = 5001;
    h.seq = seq;
    h.flags = packet::TcpHeader::kAck;
    util::Bytes payload;
    payload.reserve(packet::TcpHeader::kSize + n);
    h.serialize(payload, util::BytesView(file.data() + off, n), src, dst);
    seq += static_cast<std::uint32_t>(n);
    s.data_bytes += payload.size();
    s.segments.push_back(std::move(payload));
  }
  return s;
}

/// Round-robin interleave: (flow index, segment index) submission order.
std::vector<std::pair<std::size_t, std::size_t>> interleave(
    const std::vector<FlowStream>& flows) {
  std::vector<std::pair<std::size_t, std::size_t>> order;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (i < flows[f].segments.size()) {
        order.emplace_back(f, i);
        any = true;
      }
    }
    if (!any) break;
  }
  return order;
}

/// Per-shard decode verification state, owned by that shard's worker
/// thread (no sharing): each flow's segments must come back bit-identical
/// and in order.
struct ShardVerifier {
  const std::vector<FlowStream>* flows = nullptr;
  std::vector<std::size_t> next_segment;  // per flow
  std::size_t failures = 0;

  void check(const packet::Packet& pkt) {
    for (std::size_t f = 0; f < flows->size(); ++f) {
      const FlowStream& fs = (*flows)[f];
      if (fs.src != pkt.ip.src || fs.dst != pkt.ip.dst) continue;
      const std::size_t i = next_segment[f]++;
      if (i >= fs.segments.size()) {
        ++failures;  // more packets for this flow than were offered
        return;
      }
      const util::Bytes& expect = fs.segments[i];
      if (pkt.payload.size() != expect.size() ||
          std::memcmp(pkt.payload.data(), expect.data(), expect.size()) !=
              0) {
        ++failures;
      }
      return;
    }
    ++failures;  // packet matched no flow
  }
};

struct Result {
  std::string name;
  std::size_t shards = 0;
  double seconds = 0;
  std::size_t packets = 0;
  std::size_t bytes = 0;
  std::size_t encoded = 0;
  std::size_t decode_failures = 0;
  double wire_ratio = 0;

  [[nodiscard]] double mb_per_s() const {
    return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
  }
  [[nodiscard]] double packets_per_s() const {
    return seconds > 0 ? static_cast<double>(packets) / seconds : 0;
  }
};

/// Streams the interleaved flows through an N-shard encoder whose shard
/// workers decode inline against the shard-twin decoder (threads: driver
/// + N workers).  Fastest of `passes` timed replays after one warm-up.
Result run_sharded(const std::string& name, std::size_t shards,
                   const std::vector<FlowStream>& flows, std::size_t passes) {
  Result r;
  r.name = name;
  r.shards = shards;

  core::GatewayConfig enc_cfg;  // paper defaults: w=16, k=4, value sampling
  enc_cfg.policy = core::PolicyKind::kNaive;
  enc_cfg.shards = shards;
  enc_cfg.ring_capacity = 512;
  enc_cfg.threaded = true;
  core::GatewayConfig dec_cfg = enc_cfg;
  dec_cfg.threaded = false;

  gateway::ShardedEncoderGateway enc(enc_cfg);
  gateway::ShardedDecoderGateway dec(dec_cfg);

  // Each encoder worker hands its shard's wire packets straight to the
  // decoder twin; with the decoder non-threaded the decode runs inline on
  // that same worker, so the whole per-shard pipeline shares one thread.
  std::vector<ShardVerifier> verify(shards);
  for (auto& v : verify) {
    v.flows = &flows;
    v.next_segment.assign(flows.size(), 0);
  }
  dec.set_worker_sink([&verify](std::size_t i, packet::PacketPtr pkt) {
    verify[i].check(*pkt);
  });
  enc.set_worker_sink([&dec](std::size_t i, packet::PacketPtr pkt) {
    dec.submit_to_shard(i, std::move(pkt));
  });

  const auto order = interleave(flows);
  std::size_t offered = 0;
  for (const FlowStream& f : flows) offered += f.data_bytes;

  double best = 0;
  std::uint64_t wire_before = 0;
  std::uint64_t wire_pass = 0;
  for (std::size_t pass = 0; pass <= passes; ++pass) {
    const bool timed = pass > 0;  // pass 0 warms caches and buffers
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& [f, i] : order) {
      const FlowStream& fs = flows[f];
      enc.submit(packet::make_packet(fs.src, fs.dst, packet::IpProto::kTcp,
                                     fs.segments[i]));
    }
    enc.drain_until_idle();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t wire_now = enc.stats().wire_bytes_out;
    // wire_size() counts the IP header too; subtract it per packet so the
    // ratio is payload-over-payload like bench_throughput's.
    wire_pass = wire_now - wire_before -
                order.size() * packet::Ipv4Header::kSize;
    wire_before = wire_now;
    if (!timed) {
      // Reset the per-shard cursors: every pass replays the same streams.
      for (auto& v : verify) v.next_segment.assign(flows.size(), 0);
      continue;
    }
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    if (best == 0 || sec < best) best = sec;
    for (auto& v : verify) v.next_segment.assign(flows.size(), 0);
  }
  enc.audit();
  dec.audit();

  r.seconds = best;
  r.packets = order.size();
  r.bytes = offered;
  r.encoded = enc.encoder_stats().encoded_packets / (passes + 1);
  r.wire_ratio =
      offered > 0
          ? static_cast<double>(wire_pass) / static_cast<double>(offered)
          : 0;
  for (const auto& v : verify) r.decode_failures += v.failures;
  r.decode_failures += dec.stats().dropped;
  return r;
}

void print_result(const Result& r, bool last) {
  std::printf(
      "    {\"name\": \"%s\", \"shards\": %zu, \"seconds\": %.6f, "
      "\"packets\": %zu, \"bytes\": %zu, \"decode_failures\": %zu, "
      "\"wire_ratio\": %.4f, \"packets_per_s\": %.0f, "
      "\"mb_per_s\": %.2f}%s\n",
      r.name.c_str(), r.shards, r.seconds, r.packets, r.bytes,
      r.decode_failures, r.wire_ratio, r.packets_per_s(), r.mb_per_s(),
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t passes = 6;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") passes = 2;
  }

  // The wire-identity probe: bench_throughput's exact single-flow stream
  // (same addresses, ports, seq, MSS) through one shard.
  std::vector<FlowStream> one_flow;
  one_flow.push_back(make_flow(bench::file1(), packet::make_ip(10, 0, 0, 1),
                               packet::make_ip(10, 0, 1, 1)));

  // The scaling workload: 8 distinct host pairs, each streaming File 1.
  std::vector<FlowStream> flows;
  for (std::size_t f = 0; f < kFlows; ++f) {
    flows.push_back(
        make_flow(bench::file1(),
                  packet::make_ip(10, 0, 0, static_cast<std::uint8_t>(f + 1)),
                  packet::make_ip(10, 0, 1, static_cast<std::uint8_t>(f + 1))));
  }

  std::vector<Result> results;
  results.push_back(
      run_sharded("file1_1flow_1shard", 1, one_flow, passes));
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    results.push_back(run_sharded(
        "file1_8flows_" + std::to_string(shards) + "shard", shards, flows,
        passes));
  }

  std::size_t failures = 0;
  std::printf(
      "{\n  \"bench\": \"bench_mt_throughput\", \"passes\": %zu,\n"
      "  \"measure\": \"best_of_timed_passes_after_warmup\",\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"kernel\": \"%s\",\n"
      "  \"results\": [\n",
      passes, std::thread::hardware_concurrency(),
      rabin::scan_kernel().name);
  for (std::size_t i = 0; i < results.size(); ++i) {
    print_result(results[i], i + 1 == results.size());
    failures += results[i].decode_failures;
  }
  std::printf("  ]\n}\n");
  return failures == 0 ? 0 : 1;
}
