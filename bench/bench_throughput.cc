// End-to-end data-plane throughput: packets/sec and MB/s through full
// Encoder -> Decoder pipelines over the synthetic trace corpus.
//
// This is the tracked perf baseline (BENCH_dataplane.json, emitted by
// tools/bench_json.py): every data-plane PR reruns it and commits the
// before/after numbers.  Unlike the paper-reproduction benches it measures
// CPU cost, not compression — the simulator, links, and TCP endpoints are
// deliberately absent, so the time measured is exactly
// Encoder::process + Decoder::process.
//
// Each workload streams a dependency-controlled file (bench/common.h's
// File 1 / File 2 equivalents) as MSS-sized TCP segments with real
// serialized headers.  An untimed warm-up pass populates both caches and
// faults every buffer in; the stream is then replayed `passes` more times
// without flushing (fully redundant, match-heavy — the steady state) and
// the FASTEST pass is reported, which keeps the number stable on shared
// or single-core machines where a scheduler hiccup poisons an average.
//
// Output is a single JSON object on stdout so the runner needs no parsing
// heuristics.  Run with --quick for the CI smoke job (fewer passes).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cache/cache_config.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "obs/export.h"
#include "obs/fields.h"
#include "obs/span.h"
#include "packet/ipv4.h"
#include "packet/tcp.h"
#include "rabin/scan_kernel.h"

namespace {

using namespace bytecache;

constexpr std::size_t kMss = 1460;

/// Pre-built TCP segment stream for one file: payload = header + data.
struct SegmentStream {
  std::vector<util::Bytes> segments;
  std::size_t data_bytes = 0;
};

SegmentStream make_stream(const util::Bytes& file, std::uint32_t src_ip,
                          std::uint32_t dst_ip) {
  SegmentStream s;
  std::uint32_t seq = 1;
  for (std::size_t off = 0; off < file.size(); off += kMss) {
    const std::size_t n = std::min(kMss, file.size() - off);
    packet::TcpHeader h;
    h.src_port = 40000;
    h.dst_port = 5001;
    h.seq = seq;
    h.flags = packet::TcpHeader::kAck;
    util::Bytes payload;
    payload.reserve(packet::TcpHeader::kSize + n);
    h.serialize(payload, util::BytesView(file.data() + off, n), src_ip,
                dst_ip);
    seq += static_cast<std::uint32_t>(n);
    s.data_bytes += payload.size();
    s.segments.push_back(std::move(payload));
  }
  return s;
}

struct Result {
  std::string name;
  double seconds = 0;
  std::size_t packets = 0;
  std::size_t bytes = 0;
  std::size_t encoded = 0;
  std::size_t decode_failures = 0;
  double wire_ratio = 0;  // bytes on the wire / bytes offered

  [[nodiscard]] double mb_per_s() const {
    return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
  }
  [[nodiscard]] double packets_per_s() const {
    return seconds > 0 ? static_cast<double>(packets) / seconds : 0;
  }
};

/// Streams `stream` through a fresh Encoder -> Decoder pair: one untimed
/// warm-up pass, then `passes` timed replays (no flush between passes).
/// Reported seconds/bytes/packets are those of the fastest single pass;
/// decode verification covers every pass including the warm-up.
///
/// With `metrics_jsonl` non-null the run is fully instrumented the way a
/// gateway is — codec/cache stats linked into a registry and per-packet
/// encode/decode spans sampled 1-in-64 — and the final snapshot is
/// rendered into *metrics_jsonl.  The telemetry-on/off workload pairs
/// this produces are the <2% overhead gate (tools/bench_json.py): the
/// instrumented run must stay within 2% MB/s of its plain twin with a
/// bit-identical wire_ratio.
Result run_pipeline(const char* name, const SegmentStream& stream,
                    core::PolicyKind policy, const core::DreParams& params,
                    std::size_t passes,
                    const cache::CacheConfig& cache = {},
                    std::string* metrics_jsonl = nullptr) {
  Result r;
  r.name = name;
  core::Encoder enc(params, core::make_policy(policy, params), cache);
  core::Decoder dec(params, cache);

  obs::MetricsRegistry reg;
  obs::SpanSampler encode_span;
  obs::SpanSampler decode_span;
  if (metrics_jsonl != nullptr) {
    obs::link_stats(reg, "encoder", enc.stats());
    obs::link_stats(reg, "encoder.cache", enc.cache().stats());
    obs::link_stats(reg, "decoder", dec.stats());
    obs::link_stats(reg, "decoder.cache", dec.cache().stats());
    encode_span = obs::SpanSampler(reg.histogram("bench.encode_ns"));
    decode_span = obs::SpanSampler(reg.histogram("bench.decode_ns"));
  }

  const std::uint32_t src = packet::make_ip(10, 0, 0, 1);
  const std::uint32_t dst = packet::make_ip(10, 0, 1, 1);
  std::uint64_t wire_bytes = 0;
  std::uint64_t uid = 0;
  double best = 0;

  packet::Packet pkt;
  for (std::size_t pass = 0; pass <= passes; ++pass) {
    const bool timed = pass > 0;  // pass 0 warms caches and buffers
    std::size_t encoded = 0;
    std::uint64_t pass_wire = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const util::Bytes& seg : stream.segments) {
      pkt.ip = packet::Ipv4Header{};
      pkt.ip.src = src;
      pkt.ip.dst = dst;
      pkt.ip.protocol = static_cast<std::uint8_t>(packet::IpProto::kTcp);
      pkt.ip.total_length = static_cast<std::uint16_t>(
          packet::Ipv4Header::kSize + seg.size());
      pkt.payload = seg;  // codec rewrites in place; fresh copy per packet
      pkt.uid = ++uid;

      const auto et = encode_span.begin();
      const core::EncodeInfo ei = enc.process(pkt);
      encode_span.end(et);
      encoded += ei.encoded ? 1 : 0;
      pass_wire += pkt.payload.size();
      // Coded-repair workloads emit repair payloads alongside the data
      // packet; they ride the same wire, so wire_ratio charges them.
      for (const util::Bytes& rp : ei.repairs) pass_wire += rp.size();

      const auto dt = decode_span.begin();
      const core::DecodeInfo di = dec.process(pkt);
      decode_span.end(dt);
      if (core::is_drop(di.status) ||
          pkt.payload.size() != seg.size() ||
          std::memcmp(pkt.payload.data(), seg.data(), seg.size()) != 0) {
        ++r.decode_failures;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (!timed) continue;
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    if (best == 0 || sec < best) best = sec;
    // Steady-state passes are identical, so per-pass counters from the
    // last one describe every timed pass.
    r.encoded = encoded;
    wire_bytes = pass_wire;
  }
  r.seconds = best;
  r.packets = stream.segments.size();
  r.bytes = stream.data_bytes;
  r.wire_ratio = stream.data_bytes > 0
                     ? static_cast<double>(wire_bytes) /
                           static_cast<double>(stream.data_bytes)
                     : 0;
  if (metrics_jsonl != nullptr) {
    obs::Snapshot snap = reg.snapshot();
    snap.add_prefix(name);  // workload-scoped names in the artifact
    *metrics_jsonl = obs::to_jsonl(snap);
  }
  return r;
}

void print_result(const Result& r, bool last) {
  std::printf(
      "    {\"name\": \"%s\", \"seconds\": %.6f, \"packets\": %zu, "
      "\"bytes\": %zu, \"encoded_packets\": %zu, \"decode_failures\": %zu, "
      "\"wire_ratio\": %.4f, \"packets_per_s\": %.0f, \"mb_per_s\": %.2f}%s\n",
      r.name.c_str(), r.seconds, r.packets, r.bytes, r.encoded,
      r.decode_failures, r.wire_ratio, r.packets_per_s(), r.mb_per_s(),
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t passes = 6;
  std::string metrics_out;  // --metrics-out <path>: snapshot artifact
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") passes = 2;
    if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }

  const std::uint32_t src = packet::make_ip(10, 0, 0, 1);
  const std::uint32_t dst = packet::make_ip(10, 0, 1, 1);
  const SegmentStream s1 = make_stream(bench::file1(), src, dst);
  const SegmentStream s2 = make_stream(bench::file2(), src, dst);

  core::DreParams value_sampling;  // paper defaults: w=16, k=4
  core::DreParams maxp = value_sampling;
  maxp.select_mode = core::SelectMode::kMaxp;
  core::DreParams samplebyte = value_sampling;
  samplebyte.select_mode = core::SelectMode::kSampleByte;
  cache::CacheConfig bounded_cache;  // eviction-active configuration
  bounded_cache.l1_bytes = 256 * 1024;
  // Two-tier configuration (DESIGN.md §14): a hot L1 too small for the
  // working set backed by an L2 large enough to hold it, with a
  // per-host-pair budget active.  The tracked numbers are the
  // demotion/promotion CPU cost and the wire ratio the tier recovers
  // relative to file1_naive_bounded256k's flat 256 KiB cache.
  cache::CacheConfig tiered_cache;
  tiered_cache.l1_bytes = 64 * 1024;
  tiered_cache.l2_bytes = 4 * 1024 * 1024;
  tiered_cache.per_host_pair_bytes = 2 * 1024 * 1024;
  core::DreParams resilient = value_sampling;  // full resilience layer on
  resilient.epoch_resync = true;
  core::DreParams coded = value_sampling;  // coded-repair layer (v3 wire)
  coded.epoch_resync = true;
  coded.coded_repair = true;

  // Process-global warm-up: the first workload of a fresh process runs
  // noticeably slower than the rest (frequency ramp, allocator and page
  // warm-up outlast the per-workload warm-up pass), which would penalise
  // whichever workload happens to run first.  Burn that on a throwaway.
  (void)run_pipeline("warmup", s1, core::PolicyKind::kNaive, value_sampling,
                     1);

  std::vector<Result> results;
  results.push_back(
      run_pipeline("file1_naive_valuesampling", s1, core::PolicyKind::kNaive,
                   value_sampling, passes));
  results.push_back(
      run_pipeline("file2_naive_valuesampling", s2, core::PolicyKind::kNaive,
                   value_sampling, passes));
  results.push_back(run_pipeline("file1_naive_maxp", s1,
                                 core::PolicyKind::kNaive, maxp, passes));
  results.push_back(
      run_pipeline("file1_naive_samplebyte", s1, core::PolicyKind::kNaive,
                   samplebyte, passes));
  results.push_back(
      run_pipeline("file1_tcpseq_valuesampling", s1, core::PolicyKind::kTcpSeq,
                   value_sampling, passes));
  results.push_back(
      run_pipeline("file1_naive_bounded256k", s1, core::PolicyKind::kNaive,
                   value_sampling, passes, bounded_cache));
  results.push_back(
      run_pipeline("file1_tiered", s1, core::PolicyKind::kNaive,
                   value_sampling, passes, tiered_cache));
  // Resilience-layer probe: the resilient policy with epoch resync on a
  // lossless in-memory stream.  The estimator sees no loss so the ladder
  // stays on its k-distance rung, whose admit rule refuses same-flow
  // self-matches (see KDistancePolicy::admit) — on this single-flow
  // replay that caps compression, so the tracked number here is CPU cost
  // and the v2 shim overhead, not the naive-policy wire ratio.
  results.push_back(
      run_pipeline("file1_resilient_valuesampling", s1,
                   core::PolicyKind::kResilient, resilient, passes));
  // Coded-repair probe (DESIGN.md §13): every data packet rides the v3
  // shim and each closed generation emits R repair payloads, which
  // wire_ratio charges.  On this lossless replay the tracked number is
  // the FEC cost — GF(256) repair emission per packet plus the v3 shim
  // and repair-packet overhead — not a loss-recovery win.
  results.push_back(run_pipeline("file1_coded", s1, core::PolicyKind::kTcpSeq,
                                 coded, passes));
  // Telemetry twins of the two headline workloads: same codec, same
  // stream, instrumented with the registry + sampled spans.  bench_json
  // gates their MB/s ratio (>= 0.98) and wire_ratio identity against the
  // plain runs above.
  std::string metrics_jsonl1, metrics_jsonl2;
  results.push_back(run_pipeline("file1_naive_valuesampling_telemetry", s1,
                                 core::PolicyKind::kNaive, value_sampling,
                                 passes, {}, &metrics_jsonl1));
  results.push_back(run_pipeline("file2_naive_valuesampling_telemetry", s2,
                                 core::PolicyKind::kNaive, value_sampling,
                                 passes, {}, &metrics_jsonl2));
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::trunc);
    out << metrics_jsonl1 << metrics_jsonl2;
    if (!out.good()) {
      std::fprintf(stderr, "bench_throughput: failed to write %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }

  std::size_t failures = 0;
  std::printf("{\n  \"bench\": \"bench_throughput\", \"passes\": %zu,\n"
              "  \"measure\": \"best_of_timed_passes_after_warmup\",\n"
              "  \"kernel\": \"%s\",\n"
              "  \"results\": [\n",
              passes, rabin::scan_kernel().name);
  for (std::size_t i = 0; i < results.size(); ++i) {
    print_result(results[i], i + 1 == results.size());
    failures += results[i].decode_failures;
  }
  std::printf("  ]\n}\n");
  return failures == 0 ? 0 : 1;
}
