// Microbenchmarks: Rabin fingerprinting throughput.
//
// Fingerprinting dominates the encoder's CPU cost (the paper's Section
// III discusses choosing w and the selection bits k partly for
// performance); these benches quantify the table-driven implementation.
//
// The scan benches come in pairs: the plain name runs whatever kernel
// the runtime dispatch selected (see rabin/scan_kernel.h — the name is
// stamped into the report context as "scan_kernel"), and the `Scalar`
// suffix pins the serial reference so a single run shows the SIMD win
// and regressions in the scalar fallback stay visible.
#include <benchmark/benchmark.h>

#include <vector>

#include "rabin/rabin.h"
#include "rabin/scan_kernel.h"
#include "rabin/window.h"
#include "util/rng.h"

namespace {

using namespace bytecache;

util::Bytes random_payload(std::size_t n) {
  util::Rng rng(1);
  util::Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

void BM_TableConstruction(benchmark::State& state) {
  for (auto _ : state) {
    rabin::RabinTables tables(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(tables);
  }
}
BENCHMARK(BM_TableConstruction)->Arg(16)->Arg(64);

void BM_PushByte(benchmark::State& state) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(4096);
  rabin::Fingerprint fp = 0;
  for (auto _ : state) {
    for (std::uint8_t b : data) fp = tables.push(fp, b);
    benchmark::DoNotOptimize(fp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_PushByte);

// Per-position fingerprint fill through a specific kernel tier — the
// data-plane hot loop (what selected_anchors* run as phase one).
void scan_fill(benchmark::State& state, const rabin::ScanKernel& kernel) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  std::vector<rabin::Fingerprint> fps(data.size() - tables.window() + 1);
  for (auto _ : state) {
    kernel.fill_fingerprints(tables, data.data(), data.size(), fps.data());
    benchmark::DoNotOptimize(fps.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
  state.SetLabel(kernel.name);
}

void BM_RollingScan(benchmark::State& state) {
  scan_fill(state, rabin::scan_kernel());
}
BENCHMARK(BM_RollingScan)->Arg(1460)->Arg(65536);

void BM_RollingScanScalar(benchmark::State& state) {
  scan_fill(state, rabin::scan_kernel(rabin::ScanKernelKind::kScalar));
}
BENCHMARK(BM_RollingScanScalar)->Arg(1460)->Arg(65536);

// The fused single-pass template scan (window.h) — the pre-kernel
// reference path, kept benchmarked so its inlining never regresses.
void BM_RollingScanFused(benchmark::State& state) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // XOR-accumulate every fingerprint so the inlined scan cannot be
    // eliminated as dead code.
    rabin::Fingerprint acc = 0;
    rabin::scan(tables, data,
                [&](std::size_t, rabin::Fingerprint fp) { acc ^= fp; });
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_RollingScanFused)->Arg(1460)->Arg(65536);

// Anchor selection through the public entry points, which dispatch to
// the kernel fill internally; scratch buffers are reused across
// iterations exactly as the encoder reuses its own.
template <typename Select>
void select_anchors(benchmark::State& state, Select&& select) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(1460);
  std::vector<rabin::Anchor> anchors;
  rabin::ScanScratch scratch;
  for (auto _ : state) {
    select(tables, data, anchors, scratch);
    benchmark::DoNotOptimize(anchors.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
  state.SetLabel(rabin::scan_kernel().name);
}

void BM_SelectedAnchors(benchmark::State& state) {
  select_anchors(state, [](const rabin::RabinTables& tables,
                           util::BytesView data,
                           std::vector<rabin::Anchor>& anchors,
                           rabin::ScanScratch& scratch) {
    rabin::selected_anchors_into(tables, data, 4, anchors, scratch);
  });
}
BENCHMARK(BM_SelectedAnchors);

void BM_SelectedAnchorsScalar(benchmark::State& state) {
  rabin::ScopedScanKernel pin(rabin::ScanKernelKind::kScalar);
  BM_SelectedAnchors(state);
}
BENCHMARK(BM_SelectedAnchorsScalar);

void BM_SelectedAnchorsMaxp(benchmark::State& state) {
  rabin::MaxpScratch maxp;
  select_anchors(state, [&maxp](const rabin::RabinTables& tables,
                                util::BytesView data,
                                std::vector<rabin::Anchor>& anchors,
                                rabin::ScanScratch& scratch) {
    rabin::selected_anchors_maxp_into(tables, data, 31, anchors, maxp,
                                      scratch);
  });
}
BENCHMARK(BM_SelectedAnchorsMaxp);

void BM_SelectedAnchorsMaxpScalar(benchmark::State& state) {
  rabin::ScopedScanKernel pin(rabin::ScanKernelKind::kScalar);
  BM_SelectedAnchorsMaxp(state);
}
BENCHMARK(BM_SelectedAnchorsMaxpScalar);

void BM_SelectedAnchorsSampleByte(benchmark::State& state) {
  // EndRE's point: fingerprints only at anchors, not at every position.
  select_anchors(state, [](const rabin::RabinTables& tables,
                           util::BytesView data,
                           std::vector<rabin::Anchor>& anchors,
                           rabin::ScanScratch& scratch) {
    rabin::selected_anchors_samplebyte_into(tables, data, 16, 8, anchors,
                                            scratch);
  });
}
BENCHMARK(BM_SelectedAnchorsSampleByte);

void BM_SelectedAnchorsSampleByteScalar(benchmark::State& state) {
  rabin::ScopedScanKernel pin(rabin::ScanKernelKind::kScalar);
  BM_SelectedAnchorsSampleByte(state);
}
BENCHMARK(BM_SelectedAnchorsSampleByteScalar);

void BM_ScanFromScratch(benchmark::State& state) {
  // The naive alternative to rolling: recompute each window from
  // scratch.  Bytes processed counts *hashed* bytes (windows x w) —
  // each window rereads all w bytes, and reporting payload bytes here,
  // as this bench once did, blended the two and read ~16x low.  The
  // payload-relative rate every other scan bench reports is exposed as
  // the separate payload_mb_per_s counter.
  rabin::RabinTables tables(16);
  const auto data = random_payload(1460);
  const std::size_t windows = data.size() - tables.window() + 1;
  for (auto _ : state) {
    rabin::Fingerprint acc = 0;
    for (std::size_t off = 0; off < windows; ++off) {
      acc ^= tables.of(util::BytesView(data.data() + off, tables.window()));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(windows *
                                                    tables.window()));
  state.counters["payload_mb_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(data.size()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScanFromScratch);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Stamp the dispatched kernel into the report context so bench_json.py
  // can refuse apples-to-oranges comparisons across kernels.
  benchmark::AddCustomContext("scan_kernel", bytecache::rabin::scan_kernel().name);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
