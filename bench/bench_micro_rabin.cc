// Microbenchmarks: Rabin fingerprinting throughput.
//
// Fingerprinting dominates the encoder's CPU cost (the paper's Section
// III discusses choosing w and the selection bits k partly for
// performance); these benches quantify the table-driven implementation.
#include <benchmark/benchmark.h>

#include "rabin/rabin.h"
#include "rabin/window.h"
#include "util/rng.h"

namespace {

using namespace bytecache;

util::Bytes random_payload(std::size_t n) {
  util::Rng rng(1);
  util::Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

void BM_TableConstruction(benchmark::State& state) {
  for (auto _ : state) {
    rabin::RabinTables tables(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(tables);
  }
}
BENCHMARK(BM_TableConstruction)->Arg(16)->Arg(64);

void BM_PushByte(benchmark::State& state) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(4096);
  rabin::Fingerprint fp = 0;
  for (auto _ : state) {
    for (std::uint8_t b : data) fp = tables.push(fp, b);
    benchmark::DoNotOptimize(fp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_PushByte);

void BM_RollingScan(benchmark::State& state) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // XOR-accumulate every fingerprint so the inlined scan cannot be
    // eliminated as dead code.
    rabin::Fingerprint acc = 0;
    rabin::scan(tables, data,
                [&](std::size_t, rabin::Fingerprint fp) { acc ^= fp; });
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_RollingScan)->Arg(1460)->Arg(65536);

void BM_SelectedAnchors(benchmark::State& state) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(1460);
  for (auto _ : state) {
    auto anchors = rabin::selected_anchors(tables, data, 4);
    benchmark::DoNotOptimize(anchors);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_SelectedAnchors);

void BM_SelectedAnchorsMaxp(benchmark::State& state) {
  rabin::RabinTables tables(16);
  const auto data = random_payload(1460);
  for (auto _ : state) {
    auto anchors = rabin::selected_anchors_maxp(tables, data, 31);
    benchmark::DoNotOptimize(anchors);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_SelectedAnchorsMaxp);

void BM_SelectedAnchorsSampleByte(benchmark::State& state) {
  // EndRE's point: fingerprints only at anchors, not at every position.
  rabin::RabinTables tables(16);
  const auto data = random_payload(1460);
  for (auto _ : state) {
    auto anchors = rabin::selected_anchors_samplebyte(tables, data, 16, 8);
    benchmark::DoNotOptimize(anchors);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_SelectedAnchorsSampleByte);

void BM_FromScratchVsRolling(benchmark::State& state) {
  // The naive alternative: recompute each window from scratch.
  rabin::RabinTables tables(16);
  const auto data = random_payload(1460);
  for (auto _ : state) {
    rabin::Fingerprint acc = 0;
    for (std::size_t off = 0; off + 16 <= data.size(); ++off) {
      acc ^= tables.of(util::BytesView(data.data() + off, 16));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size());
}
BENCHMARK(BM_FromScratchVsRolling);

}  // namespace

BENCHMARK_MAIN();
