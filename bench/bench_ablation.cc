// Ablations over the design choices called out in DESIGN.md:
//   1. Rabin window w and selection bits: savings vs fingerprint density
//      (paper Section III-B: "Small values of k and w are more effective
//      ... However, for performance reasons, larger values may need to be
//      selected").
//   2. Adaptive k-distance vs fixed k across loss rates (the tune-able
//      scheme the paper's conclusion calls for).
//   3. Bursty (Gilbert-Elliott) vs independent loss at equal average rate.
#include <cstdio>

#include "bench/common.h"
#include "workload/analyzer.h"

using namespace bytecache;

namespace {

void ablate_window_and_selection() {
  harness::print_heading("Ablation: Rabin window w and selection bits");
  util::Rng rng(0xAB1);
  const auto object = workload::make_file1(rng, 300 * 1460);
  harness::Table table({"w", "select bits", "savings %", "fingerprints"});
  for (std::size_t w : {8u, 16u, 32u, 64u}) {
    for (unsigned bits : {2u, 4u, 6u}) {
      core::DreParams params;
      params.window = w;
      params.select_bits = bits;
      const auto rep = workload::avg_dependencies(object, params);
      // Fingerprint density ~ 1/2^bits of the ~1460 positions per packet.
      table.add_row({std::to_string(w), std::to_string(bits),
                     harness::Table::num(rep.percent_saved, 1),
                     harness::Table::num(1460.0 / (1 << bits), 0)});
    }
  }
  table.print();
}

void ablate_adaptive() {
  harness::print_heading("Ablation: adaptive k-distance vs fixed k");
  const auto& file = bench::file1();
  harness::Table table({"loss %", "fixed k=8 delay", "fixed k=64 delay",
                        "adaptive delay", "adaptive bytes/fixed8 bytes"});
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    auto k8 = bench::default_config(core::PolicyKind::kKDistance, loss, 6);
    k8.dre.k_distance = 8;
    auto k64 = bench::default_config(core::PolicyKind::kKDistance, loss, 6);
    k64.dre.k_distance = 64;
    auto ad = bench::default_config(core::PolicyKind::kAdaptive, loss, 6);
    auto r8 = harness::run_experiment(k8, file);
    auto r64 = harness::run_experiment(k64, file);
    auto ra = harness::run_experiment(ad, file);
    table.add_row({harness::Table::num(loss * 100, 0),
                   harness::Table::num(r8.duration_s.mean(), 2),
                   harness::Table::num(r64.duration_s.mean(), 2),
                   harness::Table::num(ra.duration_s.mean(), 2),
                   harness::Table::num(
                       ra.wire_bytes.mean() / r8.wire_bytes.mean(), 2)});
  }
  table.print();
}

void ablate_burstiness() {
  harness::print_heading(
      "Ablation: bursty (Gilbert-Elliott) vs independent loss, CacheFlush");
  const auto& file = bench::file1();
  harness::Table table({"avg loss %", "bernoulli delay (s)",
                        "bursty delay (s)", "bernoulli perceived",
                        "bursty perceived"});
  for (double loss : {0.02, 0.05, 0.10}) {
    auto bern = bench::default_config(core::PolicyKind::kCacheFlush, loss, 8);
    auto burst = bench::default_config(core::PolicyKind::kCacheFlush, loss, 8);
    burst.bursty_loss = true;
    auto rb = harness::run_experiment(bern, file);
    auto rg = harness::run_experiment(burst, file);
    table.add_row({harness::Table::num(loss * 100, 0),
                   harness::Table::num(rb.duration_s.mean(), 2),
                   harness::Table::num(rg.duration_s.mean(), 2),
                   harness::Table::pct(rb.perceived_loss.mean() * 100, 1),
                   harness::Table::pct(rg.perceived_loss.mean() * 100, 1)});
  }
  table.print();
}

void ablate_selection_mode() {
  harness::print_heading(
      "Ablation: anchor selection — MODP vs MAXP vs SAMPLEBYTE (CacheFlush)");
  const auto& file = bench::file1();
  harness::Table table({"loss %", "MODP bytes", "MAXP bytes",
                        "SAMPLEBYTE bytes", "MODP delay (s)",
                        "MAXP delay (s)", "SAMPLEBYTE delay (s)"});
  for (double loss : {0.0, 0.02, 0.05}) {
    auto modp = bench::default_config(core::PolicyKind::kCacheFlush, loss, 6);
    auto maxp = modp;
    maxp.dre.select_mode = core::SelectMode::kMaxp;
    auto sb = modp;
    sb.dre.select_mode = core::SelectMode::kSampleByte;
    auto a = harness::run_experiment(modp, file);
    auto b = harness::run_experiment(maxp, file);
    auto c = harness::run_experiment(sb, file);
    table.add_row({harness::Table::num(loss * 100, 0),
                   harness::Table::num(a.wire_bytes.mean(), 0),
                   harness::Table::num(b.wire_bytes.mean(), 0),
                   harness::Table::num(c.wire_bytes.mean(), 0),
                   harness::Table::num(a.duration_s.mean(), 2),
                   harness::Table::num(b.duration_s.mean(), 2),
                   harness::Table::num(c.duration_s.mean(), 2)});
  }
  table.print();
  std::printf("(SAMPLEBYTE trades some match coverage for ~3x faster "
              "anchor selection;\nsee bench_micro_rabin)\n");
}

void ablate_tcp_flavour() {
  harness::print_heading(
      "Ablation: TCP flavour and delayed ACKs under DRE (CacheFlush, 5%)");
  const auto& file = bench::file1();
  harness::Table table({"variant", "delay (s)", "timeouts/trial",
                        "fast retx/trial"});
  struct Variant {
    const char* name;
    tcp::CongestionAlgo algo;
    bool delack;
  };
  const Variant variants[] = {
      {"NewReno, immediate ACKs", tcp::CongestionAlgo::kNewReno, false},
      {"NewReno, delayed ACKs", tcp::CongestionAlgo::kNewReno, true},
      {"Tahoe, immediate ACKs", tcp::CongestionAlgo::kTahoe, false},
  };
  for (const Variant& v : variants) {
    auto cfg = bench::default_config(core::PolicyKind::kCacheFlush, 0.05, 8);
    cfg.tcp.algo = v.algo;
    cfg.tcp.delayed_ack = v.delack;
    auto agg = harness::run_experiment(cfg, file);
    double timeouts = 0, fast = 0;
    for (const auto& t : agg.trials) {
      timeouts += static_cast<double>(t.tcp_timeouts);
      fast += static_cast<double>(t.tcp_fast_retransmits);
    }
    table.add_row({v.name, harness::Table::num(agg.duration_s.mean(), 2),
                   harness::Table::num(timeouts / agg.trials.size(), 1),
                   harness::Table::num(fast / agg.trials.size(), 1)});
  }
  table.print();
}

}  // namespace

int main() {
  ablate_window_and_selection();
  ablate_selection_mode();
  ablate_adaptive();
  ablate_burstiness();
  ablate_tcp_flavour();
  return 0;
}
