// Table II: comparison of all three encoding schemes for File 1 at 5% and
// 10% packet loss (k-distance with k = 8).
//
//                      CacheFlush   TCPseq   k-distance
//   Bytes sent (5%)    0.67         0.70     0.76
//   Delay (5%)         1.64         2.88     2.11
//   Bytes sent (10%)   0.74         0.82     0.94
//   Delay (10%)        1.84         3.87     4.01
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading(
      "Table II: all three encoding schemes, File 1, 5% and 10% loss");
  bench::print_paper_note(
      "bytes 0.67/0.70/0.76 and delay 1.64/2.88/2.11 at 5%; bytes "
      "0.74/0.82/0.94 and delay 1.84/3.87/4.01 at 10%");

  bench::BaselineCache baselines;
  const auto& file = bench::file1();
  const std::size_t trials = 10;

  const core::PolicyKind kinds[] = {core::PolicyKind::kCacheFlush,
                                    core::PolicyKind::kTcpSeq,
                                    core::PolicyKind::kKDistance};

  harness::Table table({"metric", "Cache Flush", "TCP seq", "k-distance (k=8)"});
  for (double loss : {0.05, 0.10}) {
    bench::SweepPoint points[3];
    for (int i = 0; i < 3; ++i) {
      points[i] = bench::sweep_point(baselines, kinds[i], file, loss, trials);
    }
    const std::string pct = harness::Table::num(loss * 100, 0);
    table.add_row({"Bytes Sent (" + pct + "% loss)",
                   harness::Table::num(points[0].bytes_ratio, 2),
                   harness::Table::num(points[1].bytes_ratio, 2),
                   harness::Table::num(points[2].bytes_ratio, 2)});
    table.add_row({"Delay (" + pct + "% loss)",
                   harness::Table::num(points[0].delay_ratio, 2),
                   harness::Table::num(points[1].delay_ratio, 2),
                   harness::Table::num(points[2].delay_ratio, 2)});
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
