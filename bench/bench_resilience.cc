// Resilience controller sweep (EXPERIMENTS.md "Figure 13 + controller"):
// the Fig. 13 perceived-loss axis, extended with the adaptive resilience
// layer.  For each actual loss rate it compares the resilient policy
// (perceived-loss estimator + degradation ladder + epoch resync) against
// the fixed rungs it moves between — CacheFlush (always safe), plain
// naive caching (maximal savings, stalls under loss), and pass-through —
// reporting download time, wire bytes, the encoder-side loss estimate,
// and the worst ladder rung the controller reached.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main(int argc, char** argv) {
  std::size_t trials = 6;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") trials = 2;
  }

  harness::print_heading(
      "Resilience sweep: degradation controller vs fixed policies (File 1)");
  bench::print_paper_note(
      "Fig. 13 frames perceived loss; the controller should track the "
      "CacheFlush curve on delay while spending no more bytes than "
      "pass-through at any loss rate");

  const auto& file = bench::file1();
  harness::Table table({"actual loss %", "policy", "completion %",
                        "duration s", "wire MB", "est. loss %", "worst rung",
                        "resyncs"});
  for (double loss : {0.01, 0.02, 0.05, 0.08, 0.10}) {
    for (auto kind : {core::PolicyKind::kResilient,
                      core::PolicyKind::kCacheFlush, core::PolicyKind::kNaive,
                      core::PolicyKind::kNone}) {
      auto cfg = bench::default_config(kind, loss, trials);
      if (kind == core::PolicyKind::kResilient ||
          kind == core::PolicyKind::kNaive) {
        // Naive runs with the resync layer too: the sweep shows epoch
        // recovery turning the paper's Section IV stall into bounded
        // degradation even without the controller.
        cfg.dre.epoch_resync = true;
      }
      auto agg = harness::run_experiment(cfg, file);
      double est_loss = 0.0, resyncs = 0.0;
      const char* rung = "-";
      for (const harness::TrialResult& t : agg.trials) {
        est_loss = std::max(est_loss, t.estimated_loss);
        resyncs += static_cast<double>(t.resyncs_honored);
        if (t.degradation_level[0] != '-') rung = t.degradation_level;
      }
      table.add_row({harness::Table::num(loss * 100, 0),
                     std::string(core::to_string(kind)),
                     harness::Table::pct(agg.completion_rate * 100, 0),
                     harness::Table::num(agg.duration_s.mean(), 2),
                     harness::Table::num(agg.wire_bytes.mean() / 1e6, 2),
                     harness::Table::pct(est_loss * 100, 1), rung,
                     harness::Table::num(resyncs / trials, 1)});
    }
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
