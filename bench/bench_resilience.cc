// Resilience controller sweep (EXPERIMENTS.md "Figure 13 + controller"):
// the Fig. 13 perceived-loss axis, extended with the adaptive resilience
// layer.  For each actual loss rate it compares the resilient policy
// (perceived-loss estimator + degradation ladder + epoch resync) against
// the fixed rungs it moves between — CacheFlush (always safe), plain
// naive caching (maximal savings, stalls under loss), and pass-through —
// reporting download time, wire bytes, the encoder-side loss estimate,
// and the worst ladder rung the controller reached.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main(int argc, char** argv) {
  std::size_t trials = 6;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") trials = 2;
  }

  harness::print_heading(
      "Resilience sweep: degradation controller vs fixed policies (File 1)");
  bench::print_paper_note(
      "Fig. 13 frames perceived loss; the controller should track the "
      "CacheFlush curve on delay while spending no more bytes than "
      "pass-through at any loss rate");

  const auto& file = bench::file1();
  // The row list mixes the PolicyKind rungs with the coded-repair
  // configuration (DESIGN.md §13): TcpSeq caching with FEC generations
  // over the DRE stream, recovering <= R losses per generation without a
  // resync round-trip.
  struct Row {
    const char* name;
    core::PolicyKind kind;
    bool coded;
  };
  const Row rows[] = {
      {"resilient", core::PolicyKind::kResilient, false},
      {"coded", core::PolicyKind::kTcpSeq, true},
      {"cache_flush", core::PolicyKind::kCacheFlush, false},
      {"naive", core::PolicyKind::kNaive, false},
      {"pass-through", core::PolicyKind::kNone, false},
  };
  harness::Table table({"actual loss %", "policy", "completion %",
                        "duration s", "wire MB", "est. loss %", "worst rung",
                        "resyncs", "reconstr."});
  for (double loss : {0.01, 0.02, 0.05, 0.08, 0.10}) {
    for (const Row& row : rows) {
      auto cfg = bench::default_config(row.kind, loss, trials);
      if (row.kind == core::PolicyKind::kResilient ||
          row.kind == core::PolicyKind::kNaive || row.coded) {
        // Naive runs with the resync layer too: the sweep shows epoch
        // recovery turning the paper's Section IV stall into bounded
        // degradation even without the controller.
        cfg.dre.epoch_resync = true;
      }
      cfg.dre.coded_repair = row.coded;
      auto agg = harness::run_experiment(cfg, file);
      double est_loss = 0.0, resyncs = 0.0, reconstructed = 0.0;
      const char* rung = "-";
      for (const harness::TrialResult& t : agg.trials) {
        est_loss = std::max(est_loss, t.estimated_loss);
        resyncs += static_cast<double>(t.resyncs_honored);
        reconstructed += static_cast<double>(t.packets_reconstructed);
        if (t.degradation_level[0] != '-') rung = t.degradation_level;
      }
      table.add_row({harness::Table::num(loss * 100, 0), row.name,
                     harness::Table::pct(agg.completion_rate * 100, 0),
                     harness::Table::num(agg.duration_s.mean(), 2),
                     harness::Table::num(agg.wire_bytes.mean() / 1e6, 2),
                     harness::Table::pct(est_loss * 100, 1), rung,
                     harness::Table::num(resyncs / trials, 1),
                     harness::Table::num(reconstructed / trials, 1)});
    }
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
