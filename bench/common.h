// Shared plumbing for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper; this
// header provides the common workloads, sweep runner, and baseline cache
// (the "no DRE" runs are shared between policies at the same loss rate).
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "harness/experiment.h"
#include "harness/table.h"
#include "workload/generators.h"

namespace bytecache::bench {

/// The paper's e-book size (Section IV-C: 587,567 bytes).
inline constexpr std::size_t kFileSize = 587'567;

/// Seeds fixed so every bench run is reproducible.
inline const util::Bytes& file1() {
  static const util::Bytes f = [] {
    util::Rng rng(0xF11E);
    return workload::make_file1(rng, kFileSize);
  }();
  return f;
}

inline const util::Bytes& file2() {
  static const util::Bytes f = [] {
    util::Rng rng(0xF22E);
    return workload::make_file2(rng, kFileSize);
  }();
  return f;
}

inline harness::ExperimentConfig default_config(core::PolicyKind policy,
                                                double loss,
                                                std::size_t trials = 8) {
  harness::ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.loss_rate = loss;
  cfg.trials = trials;
  cfg.seed = 0xBE7C;
  return cfg;
}

/// Caches "no DRE" aggregates per (file-ptr, loss, trials) so the shared
/// baseline is computed once per sweep.
class BaselineCache {
 public:
  const harness::Aggregate& get(const util::Bytes& file, double loss,
                                std::size_t trials) {
    const auto key = std::make_tuple(&file, loss, trials);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      auto cfg = default_config(core::PolicyKind::kNone, loss, trials);
      it = cache_.emplace(key, harness::run_experiment(cfg, file)).first;
    }
    return it->second;
  }

 private:
  std::map<std::tuple<const util::Bytes*, double, std::size_t>,
           harness::Aggregate>
      cache_;
};

/// One Fig. 10/11-style point using the shared baseline.
struct SweepPoint {
  double loss = 0.0;
  double bytes_ratio = 0.0;
  double delay_ratio = 0.0;
  harness::Aggregate with_dre;
};

inline SweepPoint sweep_point(BaselineCache& baselines,
                              core::PolicyKind policy,
                              const util::Bytes& file, double loss,
                              std::size_t trials = 8) {
  SweepPoint p;
  p.loss = loss;
  auto cfg = default_config(policy, loss, trials);
  p.with_dre = harness::run_experiment(cfg, file);
  const auto& base = baselines.get(file, loss, trials);
  if (base.wire_bytes.mean() > 0) {
    p.bytes_ratio = p.with_dre.wire_bytes.mean() / base.wire_bytes.mean();
  }
  if (base.duration_s.mean() > 0) {
    p.delay_ratio = p.with_dre.duration_s.mean() / base.duration_s.mean();
  }
  return p;
}

inline void print_paper_note(const char* paper_says) {
  std::printf("paper reports: %s\n", paper_says);
}

}  // namespace bytecache::bench
