// Figure 13: perceived packet loss rate vs actual packet loss rate.
//
// Perceived loss aggregates the channel loss and the packets that arrive
// but cannot be decoded (plus corrupted-in-flight drops).  Paper: TcpSeq
// suffers a much higher perceived loss than CacheFlush; k-distance(8)
// tracks CacheFlush closely.
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading("Figure 13: perceived packet loss rate (File 1)");
  bench::print_paper_note(
      "TcpSeq >> CacheFlush ~= k-distance(8); e.g. at 10% actual the "
      "perceived rates are roughly 35% / 22% / 22%");

  const auto& file = bench::file1();
  harness::Table table({"actual loss %", "CacheFlush", "TcpSeq",
                        "k-distance (k=8)"});
  for (double loss : {0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.20}) {
    double perceived[3];
    int idx = 0;
    for (auto kind : {core::PolicyKind::kCacheFlush, core::PolicyKind::kTcpSeq,
                      core::PolicyKind::kKDistance}) {
      auto cfg = bench::default_config(kind, loss, 8);
      cfg.dre.k_distance = 8;
      auto agg = harness::run_experiment(cfg, file);
      perceived[idx++] = agg.perceived_loss.mean() * 100.0;
    }
    table.add_row({harness::Table::num(loss * 100, 0),
                   harness::Table::pct(perceived[0], 1),
                   harness::Table::pct(perceived[1], 1),
                   harness::Table::pct(perceived[2], 1)});
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
