// Multi-connection behaviour of the shared byte cache.
//
// Reproduces two claims the paper makes in passing:
//   - introduction: byte caching "eliminates redundancy both intra-flow
//     and inter-flows" — measured as the marginal wire cost of additional
//     clients fetching the same (incompressible) object;
//   - Section IV-C: after a desynchronization, "not only one TCP
//     connection, but all subsequent connections going through the
//     encoder and decoder may get affected" — measured as the fraction of
//     *companion* connections that stall when the naive encoder meets 1%
//     loss, vs the loss-robust encoders.
#include <cstdio>
#include <memory>

#include "app/file_transfer.h"
#include "bench/common.h"
#include "gateway/multi_pipeline.h"

using namespace bytecache;

namespace {

struct MultiResult {
  double completion_rate = 0.0;
  std::uint64_t wire_bytes = 0;
};

MultiResult run_flows(core::PolicyKind policy, double loss,
                      const std::vector<util::Bytes>& files,
                      std::uint64_t seed) {
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = policy;
  cfg.loss_rate = loss;
  cfg.seed = seed;
  gateway::MultiPipeline pipeline(sim, cfg, files.size());
  std::vector<std::unique_ptr<app::FileTransfer>> transfers;
  for (std::size_t i = 0; i < files.size(); ++i) {
    transfers.push_back(std::make_unique<app::FileTransfer>(
        sim, pipeline.sender(i), pipeline.receiver(i), files[i],
        cfg.reverse_link.propagation_delay, sim::sec(600)));
    sim.at(static_cast<sim::SimTime>(i) * sim::ms(250),
           [t = transfers.back().get()]() { t->start(); });
  }
  sim.run();
  MultiResult r;
  int completed = 0;
  for (const auto& t : transfers) {
    if (t->result().completed) ++completed;
  }
  r.completion_rate = static_cast<double>(completed) / files.size();
  r.wire_bytes = pipeline.forward_link().stats().bytes_sent;
  return r;
}

void inter_flow_savings() {
  harness::print_heading("Inter-flow redundancy elimination");
  util::Rng rng(0x3131);
  // Incompressible object: all savings are across flows.
  const util::Bytes object = workload::make_video(rng, 300'000);
  harness::Table table(
      {"clients", "wire bytes", "bytes per client", "marginal cost"});
  std::uint64_t prev = 0;
  for (std::size_t flows : {1u, 2u, 3u, 4u}) {
    std::vector<util::Bytes> files(flows, object);
    auto r = run_flows(core::PolicyKind::kTcpSeq, 0.0, files, 5);
    table.add_row(
        {std::to_string(flows), std::to_string(r.wire_bytes),
         std::to_string(r.wire_bytes / flows),
         prev == 0 ? std::string("-") : std::to_string(r.wire_bytes - prev)});
    prev = r.wire_bytes;
  }
  table.print();
  std::printf("(marginal cost of each additional client of the same object "
              "is a small\nfraction of the first transfer)\n");
}

void cross_connection_stalls() {
  harness::print_heading(
      "Cross-connection stalls (3 clients, same object, 1% loss)");
  util::Rng rng(0x3232);
  const util::Bytes object = workload::make_video(rng, 200'000);
  std::vector<util::Bytes> files(3, object);
  harness::Table table({"policy", "connections completed"});
  for (auto kind : {core::PolicyKind::kNaive, core::PolicyKind::kCacheFlush,
                    core::PolicyKind::kTcpSeq,
                    core::PolicyKind::kKDistance}) {
    double completion = 0.0;
    const int trials = 10;
    for (int i = 0; i < trials; ++i) {
      completion += run_flows(kind, 0.01, files, 100 + i).completion_rate;
    }
    table.add_row({std::string(core::to_string(kind)),
                   harness::Table::pct(100.0 * completion / trials, 0)});
  }
  table.print();
}

}  // namespace

int main() {
  inter_flow_savings();
  cross_connection_stalls();
  return 0;
}
