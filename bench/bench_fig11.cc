// Figure 11: download times in the presence of packet losses.
//
// y = download time with DRE / download time without DRE, at the same
// loss rate.  Paper: ~0.72 at 0% loss (28% faster); >= 1 already at 1%
// loss; ~2x at 2%; grows toward ~10x at 20%.
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading("Figure 11: download-time ratio vs packet loss");
  bench::print_paper_note(
      "0.72 at 0% loss; 1% loss nullifies the gain (up to +35%); 2% "
      "doubles the delay; up to ~10x at high loss");

  bench::BaselineCache baselines;
  harness::Table table({"loss %", "CacheFlush (File 1)", "TcpSeq (File 1)",
                        "CacheFlush (File 2)", "TcpSeq (File 2)"});
  for (double loss : {0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}) {
    auto cf1 = bench::sweep_point(baselines, core::PolicyKind::kCacheFlush,
                                  bench::file1(), loss);
    auto ts1 = bench::sweep_point(baselines, core::PolicyKind::kTcpSeq,
                                  bench::file1(), loss);
    auto cf2 = bench::sweep_point(baselines, core::PolicyKind::kCacheFlush,
                                  bench::file2(), loss);
    auto ts2 = bench::sweep_point(baselines, core::PolicyKind::kTcpSeq,
                                  bench::file2(), loss);
    table.add_row({harness::Table::num(loss * 100, 0),
                   harness::Table::num(cf1.delay_ratio, 2),
                   harness::Table::num(ts1.delay_ratio, 2),
                   harness::Table::num(cf2.delay_ratio, 2),
                   harness::Table::num(ts2.delay_ratio, 2)});
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
