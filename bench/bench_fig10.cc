// Figure 10: byte savings in the presence of packet losses.
//
// y = bytes sent with DRE / bytes sent without DRE, at the same loss
// rate, for the Cache Flush and TCP Sequence Number encoders on File 1
// (avg 4 dependencies) and File 2 (avg 7).  Paper: ~0.55 at p=0, rising
// with p (File 2 faster), CacheFlush <= TcpSeq throughout.
#include <cstdio>

#include "bench/common.h"

using namespace bytecache;

int main() {
  harness::print_heading("Figure 10: bytes-sent ratio vs packet loss");
  bench::print_paper_note(
      "~0.55 at 0% loss; grows with loss; File 2 more sensitive than "
      "File 1; CacheFlush below TcpSeq");

  bench::BaselineCache baselines;
  harness::Table table({"loss %", "CacheFlush (File 1)", "TcpSeq (File 1)",
                        "CacheFlush (File 2)", "TcpSeq (File 2)"});
  for (double loss : {0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}) {
    auto cf1 = bench::sweep_point(baselines, core::PolicyKind::kCacheFlush,
                                  bench::file1(), loss);
    auto ts1 = bench::sweep_point(baselines, core::PolicyKind::kTcpSeq,
                                  bench::file1(), loss);
    auto cf2 = bench::sweep_point(baselines, core::PolicyKind::kCacheFlush,
                                  bench::file2(), loss);
    auto ts2 = bench::sweep_point(baselines, core::PolicyKind::kTcpSeq,
                                  bench::file2(), loss);
    table.add_row({harness::Table::num(loss * 100, 0),
                   harness::Table::num(cf1.bytes_ratio, 3),
                   harness::Table::num(ts1.bytes_ratio, 3),
                   harness::Table::num(cf2.bytes_ratio, 3),
                   harness::Table::num(ts2.bytes_ratio, 3)});
  }
  table.print();
  std::printf("\n(CSV)\n%s", table.to_csv().c_str());
  return 0;
}
