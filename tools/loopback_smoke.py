#!/usr/bin/env python3
"""Two-process loopback smoke test of the real-I/O gateway (DESIGN.md §12).

Launches a decoder and an encoder `bytecache_gateway` as separate
processes tunneling over 127.0.0.1 UDP, streams a deterministic bench
file through them twice (the second pass is where the byte cache
earns its keep), and asserts:

  * byte-identical delivery: the sink reassembles exactly the sent file;
  * backend equivalence: a third run of the SAME stream through the
    one-process `--backend=sim` gateway produces byte-identical encoder
    counters (bytes_in / bytes_out / encoded_packets — wire_ratio down
    to the integer), the acceptance criterion of the transport seam;
  * the control channel works end to end: ping, live stats snapshot,
    cache flush, policy switch, and shutdown via bytecache_ctl;
  * clean teardown: SIGTERM and the shutdown command both exit 0.

Usage:
  python3 tools/loopback_smoke.py --build build
"""

import argparse
import json
import random
import signal
import socket
import subprocess
import sys
import time

FILE_BYTES = 256 * 1024
CHUNK = 1200          # plain datagram payload (4-byte seq + 1196 data)
DATA_PER_CHUNK = CHUNK - 4
PASSES = 2
WINDOW = 64           # in-flight datagrams before waiting on the sink
DEADLINE_S = 30


def fail(msg):
    sys.exit(f"loopback_smoke: FAIL: {msg}")


def free_port():
    s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def make_file():
    """Deterministic high-entropy content: every run and both backends
    stream identical bytes, so encoder counters are exactly comparable."""
    rng = random.Random(0xB17EC4C8E)
    return bytes(rng.getrandbits(8) for _ in range(FILE_BYTES))


def chunks_of(blob):
    return [blob[i:i + DATA_PER_CHUNK]
            for i in range(0, len(blob), DATA_PER_CHUNK)]


class Ctl:
    """bytecache_ctl wrapper."""

    def __init__(self, exe, port):
        self.exe = exe
        self.addr = f"127.0.0.1:{port}"

    def run(self, *args):
        return subprocess.run([self.exe, f"--server={self.addr}", *args],
                              capture_output=True, text=True)

    def must(self, *args):
        proc = self.run(*args)
        if proc.returncode != 0:
            fail(f"bytecache_ctl {' '.join(args)} -> rc={proc.returncode}: "
                 f"{proc.stderr.strip()}")
        return proc.stdout

    def wait_ready(self, deadline_s=10):
        end = time.monotonic() + deadline_s
        while time.monotonic() < end:
            if self.run("ping").returncode == 0:
                return
            time.sleep(0.05)
        fail(f"gateway at {self.addr} never answered ping")

    def counters(self):
        """Stats snapshot as {name: value} (counters only)."""
        out = {}
        for line in self.must("stats").splitlines():
            entry = json.loads(line)
            if entry.get("type") == "counter":
                out[entry["name"]] = entry["value"]
        return out


def stream_file(blob, ingress_port, sink):
    """Sends the file PASSES times as seq-stamped datagrams with window
    pacing, reassembles from the sink, and checks byte-identical
    delivery of every pass.  Loss is a failure: loopback with paced
    sending and a 4 MiB receive buffer must deliver everything."""
    out = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    pieces = chunks_of(blob)
    total = PASSES * len(pieces)
    received = {}
    deadline = time.monotonic() + DEADLINE_S

    def pump():
        while True:
            try:
                data, _ = sink.recvfrom(65535)
            except (BlockingIOError, socket.timeout):
                return
            seq = int.from_bytes(data[:4], "big")
            received[seq] = data[4:]

    sent = 0
    for p in range(PASSES):
        for i, piece in enumerate(pieces):
            seq = p * len(pieces) + i
            out.sendto(seq.to_bytes(4, "big") + piece,
                       ("127.0.0.1", ingress_port))
            sent += 1
            while len(received) < sent - WINDOW:
                if time.monotonic() > deadline:
                    fail(f"transfer stalled: {len(received)}/{sent} after "
                         f"{DEADLINE_S}s")
                pump()
                time.sleep(0.001)
    while len(received) < total:
        if time.monotonic() > deadline:
            fail(f"transfer incomplete: {len(received)}/{total} datagrams")
        pump()
        time.sleep(0.001)

    for p in range(PASSES):
        got = b"".join(received[p * len(pieces) + i]
                       for i in range(len(pieces)))
        if got != blob:
            fail(f"pass {p} delivered bytes differ from the sent file")


def open_sink():
    sink = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sink.bind(("127.0.0.1", 0))
    sink.setblocking(False)
    return sink, sink.getsockname()[1]


def terminate_clean(proc, name):
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{name} did not exit within 10s of SIGTERM")
    if rc != 0:
        fail(f"{name} exited {rc} on SIGTERM (teardown is not clean)")


def encoder_counters_of_interest(counters):
    keys = ("encoder.bytes_in", "encoder.bytes_out",
            "encoder.encoded_packets", "net.plain.plain_in")
    missing = [k for k in keys if k not in counters]
    if missing:
        fail(f"stats snapshot lacks {missing}; got {sorted(counters)[:10]}...")
    return {k: counters[k] for k in keys}


def run_udp_pair(gw, ctl_exe, blob):
    ingress, enc_tun, dec_tun = free_port(), free_port(), free_port()
    enc_ctl_port, dec_ctl_port = free_port(), free_port()
    sink, sink_port = open_sink()

    dec = subprocess.Popen(
        [gw, "--role=decode", f"--tunnel=127.0.0.1:{dec_tun}",
         f"--egress=127.0.0.1:{sink_port}",
         f"--control=127.0.0.1:{dec_ctl_port}"])
    enc = subprocess.Popen(
        [gw, "--role=encode", f"--ingress=127.0.0.1:{ingress}",
         f"--tunnel=127.0.0.1:{enc_tun}", f"--peer=127.0.0.1:{dec_tun}",
         f"--control=127.0.0.1:{enc_ctl_port}"])
    try:
        enc_ctl = Ctl(ctl_exe, enc_ctl_port)
        dec_ctl = Ctl(ctl_exe, dec_ctl_port)
        enc_ctl.wait_ready()
        dec_ctl.wait_ready()

        stream_file(blob, ingress, sink)
        stats = encoder_counters_of_interest(enc_ctl.counters())

        # Control channel, after the measured transfer (flush and policy
        # switches would perturb the backend comparison).
        if "ok" not in enc_ctl.must("flush"):
            fail("encoder flush did not answer ok")
        dec_ctl.must("flush")
        enc_ctl.must("policy", "k_distance")
        if enc_ctl.run("policy", "no_such_policy").returncode != 1:
            fail("bogus policy name was not refused")
        if dec_ctl.run("policy", "k_distance").returncode != 1:
            fail("decoder accepted a policy switch (it has no policy)")
        post = enc_ctl.counters()
        if post.get("encoder.flushes", 0) < 2:  # explicit flush + switch
            fail(f"flush+switch not visible in stats: {post.get('encoder.flushes')}")

        enc_ctl.must("shutdown")
        if enc.wait(timeout=10) != 0:
            fail("encoder exited non-zero after shutdown command")
        terminate_clean(dec, "decoder")
        return stats
    finally:
        for p in (enc, dec):
            if p.poll() is None:
                p.kill()


def run_sim_backend(gw, ctl_exe, blob):
    ingress, ctl_port = free_port(), free_port()
    sink, sink_port = open_sink()
    proc = subprocess.Popen(
        [gw, "--backend=sim", f"--ingress=127.0.0.1:{ingress}",
         f"--egress=127.0.0.1:{sink_port}", f"--control=127.0.0.1:{ctl_port}"])
    try:
        ctl = Ctl(ctl_exe, ctl_port)
        ctl.wait_ready()
        stream_file(blob, ingress, sink)
        stats = encoder_counters_of_interest(ctl.counters())
        terminate_clean(proc, "sim gateway")
        return stats
    finally:
        if proc.poll() is None:
            proc.kill()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build tree holding src/app/ binaries")
    args = parser.parse_args()
    gw = f"{args.build}/src/app/bytecache_gateway"
    ctl = f"{args.build}/src/app/bytecache_ctl"

    blob = make_file()
    udp = run_udp_pair(gw, ctl, blob)
    sim = run_sim_backend(gw, ctl, blob)

    if udp != sim:
        fail(f"backend counters diverge:\n  udp: {udp}\n  sim: {sim}")
    if udp["encoder.encoded_packets"] == 0:
        fail("no packet was ever encoded — the second pass must compress")
    ratio = udp["encoder.bytes_out"] / udp["encoder.bytes_in"]
    if not ratio < 1.0:
        fail(f"wire_ratio {ratio:.4f} shows no redundancy elimination")
    print(f"loopback_smoke: OK — {PASSES}x {FILE_BYTES // 1024} KiB "
          f"delivered byte-identical; wire_ratio {ratio:.4f} "
          f"({udp['encoder.bytes_out']}/{udp['encoder.bytes_in']} bytes), "
          f"identical across udp/sim backends")


if __name__ == "__main__":
    main()
