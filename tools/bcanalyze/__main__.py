import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from cli import main  # noqa: E402

sys.exit(main())
