"""bcanalyze fixture-corpus selftest (ctest label: analyze).

Walks every .cc/.h under tools/bcanalyze/fixtures/ (plus the shared
suppression-parity corpus under tools/lint_selftest/corpus/), analyzes
each file in isolation, and compares the findings against the file's own
annotations:

  // BC-FIXTURE: path=src/core/whatever.cc
      pretend the file lives at this repo-relative path — checker scopes
      are directory-based, so fixtures must claim a data-plane path.

  ... offending code ...  // EXPECT(bc-rule)
      exactly one finding for bc-rule must land on this line.  EXPECT
      may also sit alone on the line above the offending one.

Every finding must be EXPECTed and every EXPECT must find — extra and
missing findings both fail, so the corpus pins both the true-positive
and the false-positive behaviour of every checker.  EXPECTs for rules
this tool does not implement (e.g. regex-only lint.py rules in the
shared corpus) are ignored.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ir  # noqa: E402
import frontend_fallback  # noqa: E402
from checkers import ALL_RULES  # noqa: E402
from cli import check_project  # noqa: E402

FIXTURE_RE = re.compile(r"BC-FIXTURE:\s*path=(\S+)")
EXPECT_RE = re.compile(r"EXPECT\(([a-z0-9-]+)\)")


def expected_findings(raw_lines):
    """(line, rule) pairs the fixture demands.  An EXPECT on a line with
    code refers to that line; an EXPECT alone in a comment line refers to
    the line below."""
    out = set()
    for i, line in enumerate(raw_lines, start=1):
        for m in EXPECT_RE.finditer(line):
            rule = m.group(1)
            if rule not in ALL_RULES:
                continue  # other tool's rule (shared corpus)
            code = line.split("//")[0].strip()
            out.add((i if code else i + 1, rule))
    return out


def run_fixture(path):
    """Returns a list of error strings (empty = pass)."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    m = FIXTURE_RE.search(text)
    pretend = m.group(1) if m else os.path.basename(path)
    fir = frontend_fallback.load_file(path, repo_rel=pretend, text=text)
    project = ir.ProjectIR(frontend="fallback", files=[fir])
    got = {(fd.line, fd.rule): fd for fd in check_project(project)}
    want = expected_findings(text.splitlines())

    errors = []
    for key in sorted(want - set(got)):
        errors.append(f"{path}:{key[0]}: expected {key[1]} finding "
                      f"did not fire")
    for key in sorted(set(got) - want):
        errors.append(f"{path}:{key[0]}: unexpected finding: "
                      f"{got[key].render()}")
    return errors


def corpus_dirs(root):
    yield os.path.join(root, "tools", "bcanalyze", "fixtures")
    shared = os.path.join(root, "tools", "lint_selftest", "corpus")
    if os.path.isdir(shared):
        yield shared


def main():
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    files = []
    for d in corpus_dirs(root):
        for base, _dirs, names in os.walk(d):
            for name in sorted(names):
                if name.endswith((".cc", ".h")):
                    files.append(os.path.join(base, name))
    if not files:
        print("bcanalyze selftest: no fixtures found", file=sys.stderr)
        return 1
    failures = []
    for path in files:
        failures.extend(run_fixture(path))
    for e in failures:
        print(e)
    print(f"bcanalyze selftest: {len(files)} fixtures, "
          f"{len(failures)} failures", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
