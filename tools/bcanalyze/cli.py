"""bcanalyze command-line driver.

    python3 tools/bcanalyze [paths...] [options]

With no paths, analyzes every .h/.cc under src/.  Findings print as
`path:line: [rule] message` (the same shape tools/lint.py uses) and the
exit code is 1 when any finding survives suppression.  --json emits the
findings as a JSON array for CI to grep/upload.

Frontends: --frontend auto (default) uses libclang when the Python
bindings are importable and working, else the pure-Python structural
frontend.  Both produce the same IR; see frontend_clang.py /
frontend_fallback.py.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ir  # noqa: E402
import suppress  # noqa: E402
import frontend_fallback  # noqa: E402
import frontend_clang  # noqa: E402
from checkers import REGISTRY, ALL_RULES  # noqa: E402


def default_paths(root):
    out = []
    for base, _dirs, files in os.walk(os.path.join(root, "src")):
        for name in files:
            if name.endswith((".h", ".cc")):
                out.append(os.path.relpath(os.path.join(base, name), root))
    return sorted(out)


def build_ir(paths, root, frontend, compile_commands):
    if frontend == "clang" or (frontend == "auto"
                               and frontend_clang.available()):
        try:
            return frontend_clang.load(paths, root,
                                       compile_commands=compile_commands)
        except Exception as e:
            if frontend == "clang":
                raise
            print(f"bcanalyze: libclang frontend failed ({e}); "
                  f"falling back", file=sys.stderr)
    return frontend_fallback.load(paths, root)


def check_project(project, checks=None):
    """Run checkers + suppression over a prebuilt ProjectIR."""
    raw_by_path = {f.path: f.raw_lines for f in project.files}

    findings = []
    for rule, check in REGISTRY:
        if checks and rule not in checks:
            continue
        findings.extend(check(project))

    kept = []
    for fd in findings:
        raw = raw_by_path.get(fd.path, [])
        if not suppress.is_suppressed(raw, fd.rule, fd.line):
            kept.append(fd)

    if not checks or "bc-suppression" in checks:
        for f in project.files:
            for line, rule in suppress.unexplained_markers(f.raw_lines):
                kept.append(ir.Finding(
                    "bc-suppression", f.path, line,
                    f"NOLINT({rule}) carries no reason — add prose in "
                    f"the same comment or the line above saying *why* "
                    f"the rule does not apply here"))
    kept.sort(key=lambda fd: (fd.path, fd.line, fd.rule))
    return kept


def run(paths, root, checks=None, frontend="auto", compile_commands=None):
    """Returns (findings_after_suppression, project_ir)."""
    project = build_ir(paths, root, frontend, compile_commands)
    return check_project(project, checks), project


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="bcanalyze",
        description="semantic lint for the bytecache tree "
                    "(see DESIGN.md §11)")
    ap.add_argument("paths", nargs="*",
                    help="files to analyze (repo-relative; default: src/)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this file)")
    ap.add_argument("--checks", default=None,
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("--frontend", choices=("auto", "fallback", "clang"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang frontend "
                         "(default: build/compile_commands.json if present)")
    ap.add_argument("--json", dest="json_out", default=None, metavar="FILE",
                    help="also write findings as JSON ('-' for stdout)")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for rule in ALL_RULES:
            print(rule)
        return 0

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    paths = []
    for p in (args.paths or default_paths(root)):
        full = os.path.join(root, p)
        if os.path.isdir(full):
            for base, _dirs, files in os.walk(full):
                for name in files:
                    if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                        paths.append(os.path.relpath(
                            os.path.join(base, name), root))
        elif os.path.isfile(full):
            paths.append(p)
    paths = sorted(set(paths))
    checks = set(args.checks.split(",")) if args.checks else None
    cc = args.compile_commands
    if cc is None:
        candidate = os.path.join(root, "build", "compile_commands.json")
        cc = candidate if os.path.isfile(candidate) else None

    findings, project = run(paths, root, checks=checks,
                            frontend=args.frontend, compile_commands=cc)

    for fd in findings:
        print(fd.render())
    if args.json_out:
        payload = json.dumps([fd.as_dict() for fd in findings], indent=2)
        if args.json_out == "-":
            print(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as f:
                f.write(payload + "\n")
    n = len(findings)
    print(f"bcanalyze[{project.frontend}]: {len(paths)} files, "
          f"{n} finding{'s' if n != 1 else ''}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
