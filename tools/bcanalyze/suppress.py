"""NOLINT suppression semantics, shared with tools/lint.py.

A finding on line N of a file is suppressed for rule R when a comment on
line N **or line N-1** contains a `NOLINT(...)` marker whose parenthesised
list names R (comma-separated; whitespace ignored).  tools/lint.py
implements the same contract — tests/test_suppression_parity in the
analyze suite holds the two implementations to it over one corpus.

bcanalyze additionally enforces a policy lint.py cannot: every NOLINT of a
bc-* rule must carry a *reason*.  The reason is prose in the same comment
as the marker or in a comment on the line directly above it; a bare
marker is reported as a `bc-suppression` finding.  Suppressing
bc-suppression itself is not possible — fix the comment instead.
"""

import re

NOLINT_RE = re.compile(r"NOLINT\(([^)]*)\)")
# Fixture annotations (selftest.py) never constitute a human-written
# reason; strip them before judging whether a suppression is explained.
EXPECT_RE = re.compile(r"EXPECT\([^)]*\)")


def parse_markers(line):
    """Rule names mentioned by NOLINT(...) markers on this source line."""
    rules = set()
    for m in NOLINT_RE.finditer(line):
        for name in m.group(1).split(","):
            name = name.strip()
            if name:
                rules.add(name)
    return rules


def suppressed_lines(raw_lines, rule):
    """1-based line numbers on which findings for `rule` are suppressed."""
    out = set()
    for i, line in enumerate(raw_lines, start=1):
        if rule in parse_markers(line):
            out.add(i)       # marker on the offending line itself
            out.add(i + 1)   # marker on the line above the offending line
    return out


def is_suppressed(raw_lines, rule, line):
    return line in suppressed_lines(raw_lines, rule)


def _comment_text(line):
    """Prose content of a line's // comment (or of a pure comment line),
    with NOLINT markers removed."""
    stripped = line.strip()
    if stripped.startswith("//"):
        text = stripped
    else:
        idx = line.find("//")
        text = line[idx:] if idx >= 0 else ""
    text = NOLINT_RE.sub("", text)
    text = EXPECT_RE.sub("", text)
    return text.strip("/ \t*-:")


def unexplained_markers(raw_lines):
    """(line, rule) pairs for bc-* NOLINT markers carrying no reason.

    A reason is any prose (>= 3 chars beyond the marker itself) in the
    marker's own comment or in a comment line immediately above."""
    out = []
    for i, line in enumerate(raw_lines, start=1):
        bc_rules = sorted(r for r in parse_markers(line) if r.startswith("bc-"))
        if not bc_rules:
            continue
        reason = _comment_text(line)
        if len(reason) < 3 and i >= 2:
            above = raw_lines[i - 2].strip()
            if above.startswith("//") or above.startswith("*"):
                reason = _comment_text(above)
        if len(reason) < 3:
            for rule in bc_rules:
                out.append((i, rule))
    return out
