"""Frontend-agnostic program IR consumed by the bcanalyze checkers.

Two frontends produce this IR:

  * frontend_clang.py    — libclang (clang.cindex) over compile_commands.json;
                           used on CI where a pinned libclang wheel exists.
  * frontend_fallback.py — a pure-Python structural parser; used everywhere
                           else (including this repo's own test fixtures) so
                           the analyzer has no hard dependency the container
                           cannot satisfy.

The IR is deliberately small: checkers need declarations with *canonical*
types (aliases resolved), call sites with receivers, comparison operators
with operand types, a statement tree for dominance reasoning, and the
struct/field-table pairs behind the stats system.  Anything a checker does
not consume does not belong here.
"""

from dataclasses import dataclass, field


@dataclass
class Finding:
    rule: str          # e.g. "bc-hotpath-alloc"
    path: str          # repo-relative path
    line: int          # 1-based
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self):
        return {"rule": self.rule, "file": self.path, "line": self.line,
                "message": self.message}


@dataclass
class Decl:
    """A named declaration with a type: local, parameter, or data member."""
    name: str
    type_text: str       # declared type as written ("FlowKey", "SeqNo &")
    canon_type: str      # alias-resolved type ("std::uint32_t &")
    line: int
    is_static: bool = False
    init_text: str = ""  # loose source of the initialiser, "" if none


@dataclass
class Call:
    """A call site.  `callee` is the qualified name as written
    ("util::get_u16", "emplace", "push_back"); `receiver` is the object
    expression before a . or -> ("highest_ack_", "s.in"), empty for free
    calls; `args_text` is the loose source of the argument list."""
    callee: str
    receiver: str
    line: int
    args_text: str = ""


@dataclass
class Compare:
    """A relational/equality comparison with loosely-typed operands."""
    op: str              # < <= > >= == !=
    line: int
    lhs_text: str
    rhs_text: str
    lhs_type: str = ""   # canonical type when resolvable, else ""
    rhs_type: str = ""


@dataclass
class Stmt:
    """Statement-tree node for dominance reasoning (bc-wire-bounds).

    kind: 'block' | 'if' | 'loop' | 'return' | 'stmt'
    For 'if': cond_text/cond_line describe the condition, children[0] is the
    then-branch, children[1] (optional) the else-branch.  For 'loop',
    cond_text is the header and children[0] the body.  reads lists the
    offset-advancing wire reads performed directly by this node (condition
    or plain statement)."""
    kind: str
    line: int
    cond_text: str = ""
    children: list = field(default_factory=list)
    reads: list = field(default_factory=list)   # list[Call]
    exits: bool = False  # a plain statement that leaves the function/loop


@dataclass
class Function:
    """A function or method *definition*."""
    name: str            # unqualified ("drain_some")
    qualname: str        # "bytecache::gateway::ShardedEncoderGateway::drain_some"
    path: str
    line: int
    end_line: int
    params: list = field(default_factory=list)   # list[Decl]
    locals: list = field(default_factory=list)   # list[Decl]
    calls: list = field(default_factory=list)    # list[Call]
    compares: list = field(default_factory=list)  # list[Compare]
    news: list = field(default_factory=list)     # lines of new-expressions
    body: Stmt = None                            # statement tree, or None
    cls: str = ""        # enclosing class name when this is a method
    tparams: list = field(default_factory=list)  # template parameter names

    def decl_of(self, name):
        for d in self.locals:
            if d.name == name:
                return d
        for d in self.params:
            if d.name == name:
                return d
        return None


@dataclass
class Struct:
    name: str            # "EncoderStats"
    qualname: str
    path: str
    line: int
    members: list = field(default_factory=list)  # list[Decl], statics included


@dataclass
class FieldTableEntry:
    display: str         # string shown in stats output ("packets")
    member: str          # &S::packets -> "packets"
    line: int


@dataclass
class FieldTable:
    """An ADL stats_fields(const S*) table (see src/obs/fields.h)."""
    struct_name: str     # "EncoderStats" (last component of the param type)
    path: str
    line: int
    entries: list = field(default_factory=list)  # list[FieldTableEntry]


@dataclass
class FileIR:
    path: str            # repo-relative
    functions: list = field(default_factory=list)
    structs: list = field(default_factory=list)
    field_tables: list = field(default_factory=list)
    aliases: dict = field(default_factory=dict)   # name -> target type text
    raw_lines: list = field(default_factory=list)  # for suppression scanning


@dataclass
class ProjectIR:
    files: list = field(default_factory=list)     # list[FileIR]
    frontend: str = "fallback"                    # "fallback" | "clang"

    def all_functions(self):
        for f in self.files:
            yield from f.functions

    def all_structs(self):
        for f in self.files:
            yield from f.structs

    def all_field_tables(self):
        for f in self.files:
            yield from f.field_tables

    def aliases(self):
        """Project-wide typedef/using map keyed by unqualified name."""
        merged = {}
        for f in self.files:
            merged.update(f.aliases)
        return merged

    def struct_index(self):
        """Structs keyed by unqualified name (later files win on clash)."""
        idx = {}
        for s in self.all_structs():
            idx[s.name] = s
        return idx

    def canon(self, type_text, aliases=None, extra=None):
        """Canonicalise a declared type: strip qualifiers/ref/ptr sigils,
        then chase typedef/using aliases by unqualified name."""
        import re
        aliases = self.aliases() if aliases is None else aliases
        text = re.sub(r"\b(const|volatile|constexpr|mutable|static)\b", " ",
                      type_text)
        text = text.replace(" ", "").strip("&*")
        seen = set()
        while True:
            base = text.split("<")[0].split("::")[-1]
            target = (extra or {}).get(base) or aliases.get(base)
            if target is None or base in seen:
                return text
            seen.add(base)
            text = target.replace(" ", "")
