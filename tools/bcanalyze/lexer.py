"""C++ tokenizer for the bcanalyze fallback frontend.

Produces a flat token stream with line numbers, with comments and
preprocessor directives dropped.  This is not a conforming C++ lexer — it is exactly
strong enough for the semantic layer frontend_fallback.py builds on top
(declarations, call sites, operators, brace structure), which is in turn
exactly what the checkers consume.  When libclang is available the clang
frontend replaces all of this with the real AST.
"""

from dataclasses import dataclass

# Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
]

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int

    def __repr__(self):
        return f"{self.text!r}@{self.line}"


def tokenize(text):
    """Returns a list of Tokens.  Comments, preprocessor lines, and literal
    contents are dropped; line numbers are 1-based."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Comments.
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i += 2
            continue
        # Preprocessor directive: drop the (possibly continued) line.
        if c == "#" and at_line_start:
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        at_line_start = False
        # Raw string literal R"delim( ... )delim".
        if c == "R" and nxt == '"':
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            delim = text[i + 2 : j]
            closer = ")" + delim + '"'
            end = text.find(closer, j)
            if end == -1:
                end = n
            start_line = line
            line += text.count("\n", i, min(end + len(closer), n))
            tokens.append(Token("str", '"' + text[j + 1 : end] + '"',
                                start_line))
            i = end + len(closer)
            continue
        # String / char literal (escapes left raw).
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            tokens.append(Token("str" if quote == '"' else "chr",
                                text[i : j + 1], line))
            i = j + 1
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Number (loose: digits, dots, exponents, hex, suffixes, ').
        if c.isdigit() or (c == "." and nxt.isdigit()):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuator.
        for p in _PUNCTUATORS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def match_brace(tokens, open_index):
    """Index of the token closing the bracket opened at open_index
    (one of {([ ), or len(tokens) when unbalanced."""
    pairs = {"{": "}", "(": ")", "[": "]"}
    opener = tokens[open_index].text
    closer = pairs[opener]
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def text_of(tokens):
    """Loose source text of a token slice (for messages and guard scans)."""
    return " ".join(t.text for t in tokens)
