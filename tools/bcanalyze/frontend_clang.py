"""libclang (clang.cindex) frontend for bcanalyze.

Produces the same ir.py IR as frontend_fallback.py, but from the real
AST: canonical types come from the type system instead of alias-chasing,
call receivers from MEMBER_REF_EXPR bases, and the statement tree from
real IfStmt/ForStmt/WhileStmt/ReturnStmt cursors.  Compilation flags are
taken from compile_commands.json (CMake exports it by default in this
repo — see CMAKE_EXPORT_COMPILE_COMMANDS in the top-level
CMakeLists.txt).

This frontend is optional by design: the container this repo grows in
has no libclang, so `available()` gates it and the CLI falls back to the
structural frontend.  CI installs a pinned libclang wheel (see
.github/workflows/ci.yml, job `analyze`) and runs both frontends; the
checker layer cannot tell them apart.
"""

import os

import ir


def available():
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:
        return False
    return True


def _canon(cursor_type):
    try:
        return cursor_type.get_canonical().spelling.replace(" ", "")
    except Exception:
        return ""


def _tokens_text(cursor):
    try:
        return " ".join(t.spelling for t in cursor.get_tokens())
    except Exception:
        return ""


def _in_file(cursor, abspath):
    loc = cursor.location
    return loc.file is not None and \
        os.path.realpath(loc.file.name) == abspath


def load(paths, root, compile_commands=None):
    """paths: repo-relative files to analyze.  TUs are parsed from
    compile_commands entries; headers are covered by visiting every TU
    and attributing cursors to the header files they live in."""
    import clang.cindex as ci

    proj = ir.ProjectIR(frontend="clang")
    index = ci.Index.create()
    wanted = {os.path.realpath(os.path.join(root, p)): p for p in paths}
    fir_by_real = {}
    for real, rel in wanted.items():
        with open(real, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
        fir = ir.FileIR(path=rel, raw_lines=raw)
        fir_by_real[real] = fir
        proj.files.append(fir)

    ccdb = None
    if compile_commands:
        ccdb = ci.CompilationDatabase.fromDirectory(
            os.path.dirname(os.path.abspath(compile_commands)))

    tus = []
    for real, rel in wanted.items():
        if not real.endswith(".cc"):
            continue
        args = ["-std=c++20", f"-I{os.path.join(root, 'src')}"]
        if ccdb is not None:
            cmds = ccdb.getCompileCommands(real)
            if cmds:
                raw_args = list(cmds[0].arguments)[1:]
                args = [a for a in raw_args
                        if a not in ("-c", "-o") and not a.endswith(".o")
                        and not a.endswith(".cc")]
        tus.append(index.parse(real, args=args))

    visited_functions = set()
    for tu in tus:
        _visit_tu(tu.cursor, fir_by_real, visited_functions)
    return proj


def _visit_tu(cursor, fir_by_real, visited):
    import clang.cindex as ci
    K = ci.CursorKind
    for c in cursor.walk_preorder():
        loc = c.location
        if loc.file is None:
            continue
        real = os.path.realpath(loc.file.name)
        fir = fir_by_real.get(real)
        if fir is None:
            continue
        if c.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                      K.DESTRUCTOR) and c.is_definition():
            key = (fir.path, c.spelling, loc.line)
            if key in visited:
                continue
            visited.add(key)
            fir.functions.append(_function_ir(c, fir.path))
        elif c.kind in (K.STRUCT_DECL, K.CLASS_DECL) and c.is_definition():
            st = ir.Struct(name=c.spelling,
                           qualname=_qualname(c), path=fir.path,
                           line=loc.line)
            for ch in c.get_children():
                if ch.kind == K.FIELD_DECL:
                    st.members.append(ir.Decl(
                        name=ch.spelling,
                        type_text=ch.type.spelling,
                        canon_type=_canon(ch.type),
                        line=ch.location.line))
                elif ch.kind == K.VAR_DECL:  # static data member
                    st.members.append(ir.Decl(
                        name=ch.spelling, type_text=ch.type.spelling,
                        canon_type=_canon(ch.type),
                        line=ch.location.line, is_static=True))
            if not any(s.name == st.name and s.line == st.line
                       for s in fir.structs):
                fir.structs.append(st)
        elif c.kind in (K.TYPE_ALIAS_DECL, K.TYPEDEF_DECL):
            try:
                fir.aliases[c.spelling] = \
                    c.underlying_typedef_type.spelling
            except Exception:
                pass


def _qualname(cursor):
    parts = []
    c = cursor
    while c is not None and c.spelling:
        parts.append(c.spelling)
        c = c.semantic_parent
        if c is not None and c.kind.name == "TRANSLATION_UNIT":
            break
    return "::".join(reversed(parts))


def _function_ir(cursor, path):
    import clang.cindex as ci
    K = ci.CursorKind
    extent = cursor.extent
    fn = ir.Function(
        name=cursor.spelling, qualname=_qualname(cursor), path=path,
        line=extent.start.line, end_line=extent.end.line,
        cls=cursor.semantic_parent.spelling
        if cursor.semantic_parent is not None and
        cursor.semantic_parent.kind in (K.STRUCT_DECL, K.CLASS_DECL)
        else "")
    for arg in cursor.get_arguments():
        fn.params.append(ir.Decl(name=arg.spelling,
                                 type_text=arg.type.spelling,
                                 canon_type=_canon(arg.type),
                                 line=arg.location.line))
    body = None
    for ch in cursor.get_children():
        if ch.kind == K.COMPOUND_STMT:
            body = ch
    if body is None:
        return fn
    for c in body.walk_preorder():
        line = c.location.line
        if c.kind == K.VAR_DECL:
            init = ""
            for ch in c.get_children():
                init = _tokens_text(ch)
            fn.locals.append(ir.Decl(name=c.spelling,
                                     type_text=c.type.spelling,
                                     canon_type=_canon(c.type),
                                     line=line, init_text=init))
        elif c.kind == K.CXX_NEW_EXPR:
            fn.news.append(line)
        elif c.kind in (K.CALL_EXPR,):
            callee = c.spelling or ""
            receiver = ""
            kids = list(c.get_children())
            if kids and kids[0].kind == K.MEMBER_REF_EXPR:
                base = list(kids[0].get_children())
                if base:
                    receiver = _tokens_text(base[0]).replace(" ", "")
            if callee:
                fn.calls.append(ir.Call(callee=callee, receiver=receiver,
                                        line=line,
                                        args_text=_tokens_text(c)))
        elif c.kind == K.BINARY_OPERATOR:
            toks = [t.spelling for t in c.get_tokens()]
            op = next((t for t in toks
                       if t in ("<", "<=", ">", ">=", "==", "!=")), None)
            if op:
                kids = list(c.get_children())
                if len(kids) == 2:
                    fn.compares.append(ir.Compare(
                        op=op, line=line,
                        lhs_text=_tokens_text(kids[0]).replace(" ", ""),
                        rhs_text=_tokens_text(kids[1]).replace(" ", ""),
                        lhs_type=_canon(kids[0].type),
                        rhs_type=_canon(kids[1].type)))
    fn.body = _stmt_tree(body)
    return fn


def _stmt_tree(cursor):
    import clang.cindex as ci
    K = ci.CursorKind
    kind_map = {
        K.IF_STMT: "if",
        K.FOR_STMT: "loop", K.WHILE_STMT: "loop", K.DO_STMT: "loop",
        K.CXX_FOR_RANGE_STMT: "loop", K.SWITCH_STMT: "loop",
        K.RETURN_STMT: "return",
    }

    def reads_of(c):
        reads = []
        for ch in c.walk_preorder():
            if ch.kind == K.CALL_EXPR and \
                    ch.spelling in ("get_u8", "get_u16", "get_u32",
                                    "get_u64"):
                reads.append(ir.Call(callee=ch.spelling, receiver="",
                                     line=ch.location.line,
                                     args_text=_tokens_text(ch)))
        return reads

    def build(c):
        k = kind_map.get(c.kind)
        if c.kind == K.COMPOUND_STMT:
            node = ir.Stmt(kind="block", line=c.location.line)
            for ch in c.get_children():
                node.children.append(build(ch))
            return node
        if k == "if":
            kids = list(c.get_children())
            cond = kids[0] if kids else None
            node = ir.Stmt(kind="if", line=c.location.line,
                           cond_text=_tokens_text(cond) if cond else "",
                           reads=reads_of(cond) if cond else [])
            for branch in kids[1:3]:
                node.children.append(build(branch))
            return node
        if k == "loop":
            kids = list(c.get_children())
            body = kids[-1] if kids else None
            hdr_reads = []
            for h in kids[:-1]:
                hdr_reads.extend(reads_of(h))
            node = ir.Stmt(kind="loop", line=c.location.line,
                           cond_text=" ".join(_tokens_text(h)
                                              for h in kids[:-1]),
                           reads=hdr_reads)
            node.children.append(build(body) if body is not None
                                 else ir.Stmt("block", c.location.line))
            return node
        if k == "return":
            return ir.Stmt(kind="return", line=c.location.line,
                           reads=reads_of(c), exits=True)
        exits = c.kind in (K.BREAK_STMT, K.CONTINUE_STMT, K.GOTO_STMT,
                           K.CXX_THROW_EXPR)
        return ir.Stmt(kind="stmt", line=c.location.line,
                       reads=reads_of(c), exits=exits)

    return build(cursor)
