"""bc-statsfields: every *Stats struct's data members must exactly match
its ADL stats_fields() table (src/obs/fields.h).

The telemetry subsystem (PR 4) drives merge/reset/snapshot generically
from the field table; a counter added to the struct but not the table is
silently dropped from every report, and a renamed display string makes
dashboards lie.  Regex cannot pair a struct's member list with a
constexpr table in another location; the IR can.  Checks, per struct
named `*Stats`:

  * a stats_fields() table exists;
  * table entries and non-static data members agree as ordered lists;
  * each entry's display string equals the member name (the repo
    convention — deviations are almost always copy-paste slips).

Tables naming a struct that does not exist are reported too (stale
table after a rename).
"""

import ir

RULE = "bc-statsfields"


def check(project):
    findings = []
    tables = {}
    for t in project.all_field_tables():
        tables.setdefault(t.struct_name, t)
    structs = {}
    for s in project.all_structs():
        if s.name.endswith("Stats"):
            structs.setdefault(s.name, s)

    for name, s in sorted(structs.items()):
        members = [m.name for m in s.members if not m.is_static]
        if not members:
            continue  # tag/empty structs carry no counters
        t = tables.get(name)
        if t is None:
            findings.append(ir.Finding(
                RULE, s.path, s.line,
                f"struct {name} has {len(members)} counters but no "
                f"stats_fields() table — its values never reach "
                f"merge/snapshot/report (obs/fields.h)"))
            continue
        entry_members = [e.member for e in t.entries]
        missing = [m for m in members if m not in entry_members]
        extra = [m for m in entry_members if m not in members]
        for m in missing:
            findings.append(ir.Finding(
                RULE, t.path, t.line,
                f"stats_fields({name}) is missing member `{m}` — the "
                f"counter exists in the struct but is dropped from every "
                f"merge and report"))
        for e in t.entries:
            if e.member in extra:
                findings.append(ir.Finding(
                    RULE, t.path, e.line,
                    f"stats_fields({name}) names `{e.member}` which is "
                    f"not a data member of {name}"))
        if not missing and not extra and entry_members != members:
            findings.append(ir.Finding(
                RULE, t.path, t.line,
                f"stats_fields({name}) lists the members in a different "
                f"order than the struct declares them — keep the two in "
                f"lockstep so diffs stay reviewable"))
        for e in t.entries:
            if e.member in members and e.display != e.member:
                findings.append(ir.Finding(
                    RULE, t.path, e.line,
                    f"stats_fields({name}) displays `{e.member}` as "
                    f"\"{e.display}\" — display strings must equal the "
                    f"member name"))

    for name, t in sorted(tables.items()):
        if name.endswith("Stats") and name not in structs:
            findings.append(ir.Finding(
                RULE, t.path, t.line,
                f"stats_fields() table refers to struct {name}, which "
                f"does not exist (stale after a rename?)"))
    return findings
