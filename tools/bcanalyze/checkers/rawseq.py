"""bc-rawseq (semantic): raw relational comparison of TCP sequence
numbers, confirmed by canonical type.

TCP sequence numbers wrap modulo 2^32; `a < b` is wrong across the wrap
and must be util::seq_lt / seq_le / seq_gt / seq_ge (src/util/seqcmp.h).
The regex rule in tools/lint.py fires on any *name* containing "seq";
this checker additionally resolves the operand's declared type through
locals, parameters, members, and typedef chains, and only reports when
the seq-named operand really is a 32-bit unsigned — so `seq_len < n` on
a std::size_t no longer needs a suppression, while `hdr.seq < limit`
still fires even when reached through an alias.
"""

from checkers.common import path_in, resolve_type, split_access
import ir

RULE = "bc-rawseq"

DIRS = ("src/",)
EXEMPT = ("src/util/seqcmp.h",)

_REL = {"<", "<=", ">", ">="}
_U32 = {"std::uint32_t", "uint32_t", "u32", "unsignedint", "unsigned int"}


def _seq_named(expr_text):
    segs = split_access(expr_text)
    last = segs[-1] if segs else ""
    return "seq" in last.lower()


def check(project):
    findings = []
    struct_index = project.struct_index()
    aliases = project.aliases()
    for f in project.files:
        if not path_in(f.path, DIRS) or f.path in EXEMPT:
            continue
        for fn in f.functions:
            for cmp_ in fn.compares:
                if cmp_.op not in _REL:
                    continue
                for text, typ in ((cmp_.lhs_text, cmp_.lhs_type),
                                  (cmp_.rhs_text, cmp_.rhs_type)):
                    if not _seq_named(text):
                        continue
                    canon = typ or resolve_type(project, fn, text,
                                                struct_index, aliases)
                    if canon in _U32:
                        findings.append(ir.Finding(
                            RULE, f.path, cmp_.line,
                            f"raw `{cmp_.op}` on sequence number "
                            f"`{text}` (canonical type {canon}): wraps "
                            f"mod 2^32 — use util::seq_lt/le/gt/ge "
                            f"(util/seqcmp.h)"))
                        break
    return findings
