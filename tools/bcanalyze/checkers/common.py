"""Shared helpers for bcanalyze checkers: directory scoping and
expression-type resolution over the frontend-agnostic IR."""


def path_in(path, prefixes):
    p = path.replace("\\", "/")
    return any(p.startswith(pre) for pre in prefixes)


def split_access(expr_text):
    """'hdr.seq' / 'it->second' / 'ack' -> member segments, root first.
    `::`-qualified roots stay one segment ('util::x.y' -> ['util::x','y'])."""
    text = expr_text.replace(" ", "").replace("->", ".")
    return [s for s in text.split(".") if s]


def resolve_type(project, fn, expr_text, struct_index=None, aliases=None):
    """Canonical type of a (possibly member-access) expression, or "" when
    it cannot be resolved from declarations alone."""
    struct_index = struct_index or project.struct_index()
    aliases = aliases if aliases is not None else project.aliases()
    segs = [s for s in split_access(expr_text) if s]
    if not segs:
        return ""
    root = segs[0].split("::")[-1]
    d = fn.decl_of(root)
    if d is None and fn.cls and fn.cls in struct_index:
        for m in struct_index[fn.cls].members:
            if m.name == root:
                d = m
                break
    if d is None:
        return ""
    cur = project.canon(d.type_text, aliases=aliases)
    for member in segs[1:]:
        base = cur.split("<")[0].split("::")[-1]
        st = struct_index.get(base)
        if st is None:
            return ""
        md = next((m for m in st.members if m.name == member), None)
        if md is None:
            return ""
        cur = project.canon(md.type_text, aliases=aliases)
    return cur


def container_base(canon_type):
    """'std::unordered_map<K,V>' -> 'unordered_map'."""
    return canon_type.split("<")[0].split("::")[-1]
