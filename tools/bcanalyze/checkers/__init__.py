"""bcanalyze checker registry.

Each checker module exposes RULE (the bc-* rule name findings carry) and
check(project_ir) -> list[ir.Finding].  To add a checker: create the
module, add it to REGISTRY here, give it a fixtures/<rule>/ corpus, and
document it in DESIGN.md §11.  Suppression (NOLINT) is applied by the
CLI after checking, so checkers always report raw findings.
"""

from checkers import hotpath_alloc, nolock, rawseq, statsfields, wire_bounds

REGISTRY = [
    (hotpath_alloc.RULE, hotpath_alloc.check),
    (nolock.RULE, nolock.check),
    (rawseq.RULE, rawseq.check),
    (statsfields.RULE, statsfields.check),
    (wire_bounds.RULE, wire_bounds.check),
]

ALL_RULES = [rule for rule, _ in REGISTRY] + ["bc-suppression"]
