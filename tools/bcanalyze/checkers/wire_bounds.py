"""bc-wire-bounds: every offset-advancing wire read in a parse/deserialize
function must be dominated by a remaining-length guard.

util::get_u8/u16/u32/u64 (util/bytes.h) advance the caller's offset and
do NOT bounds-check — the contract is that the caller proved the bytes
exist first.  This checker walks each parser's statement tree in order
and requires that, before any read executes, control has passed a
dominating guard:

  * a size guard — an `if` whose condition consults the input's
    size/empty/remaining length (or a k*Bytes/kSize constant) and whose
    then-branch always exits (early-return shape), or whose body
    encloses the reads;
  * a delegated guard — `if (!h) return ...;` where `h` was produced by
    another parse_*/deserialize_* call (that callee did the checking).

Reads in scope: get_uN calls and offset-indexed subscripts, inside
functions named parse* / deserialize* under src/packet/, src/core/,
src/cache/ and src/fec/ (the repair-packet header carries an
attacker-controlled gen_size that sizes the coefficient vector — its
parse path must prove the coefficients exist before touching them).  This is a structured-dominance approximation, not full
dataflow: it accepts the repo's guard idioms (see core/wire.cc) and
rejects read-before-check orderings, which is exactly the bug class the
v1->v2 shim migration produced.
"""

import re

from checkers.common import path_in
import ir

RULE = "bc-wire-bounds"

DIRS = ("src/packet/", "src/core/", "src/cache/", "src/fec/")
NAME_RE = re.compile(r"^(parse|deserialize)")

_SIZE_WORDS = ("size", "empty", "remaining", "avail", "left", "length",
               "ksize", "kwirebytes", "kminbytes", "bytes")


def _has_size_word(text):
    # `std::size_t` in a for-init or lambda parameter is a type name,
    # not a length consultation — drop it before the substring match.
    low = re.sub(r"\bs?size_t\b", "", text.lower())
    return any(w in low for w in _SIZE_WORDS)


def _is_size_guard(cond_text, fn):
    if _has_size_word(cond_text):
        return True
    # The repo's `have(n)` idiom: a local lambda whose body consults the
    # remaining length — `auto have = [&](size_t n) { return
    # view.size() - off >= n; };` then `if (!have(8)) return false;`.
    for name in set(re.findall(r"[A-Za-z_]\w*", cond_text)):
        d = fn.decl_of(name)
        if d and _has_size_word(d.init_text):
            return True
    return False


def _is_delegated_guard(cond_text, fn):
    """`! h` / `h == nullopt`-style condition where h's initialiser ran
    another parse/deserialize function."""
    for name in re.findall(r"[A-Za-z_]\w*", cond_text):
        d = fn.decl_of(name)
        if d and re.search(r"\b(parse|deserialize)\w*\s*\(", d.init_text):
            return True
        if d and ("parse" in d.init_text or "deserialize" in d.init_text):
            return True
    return False


def _always_exits(node):
    if node is None:
        return False
    if node.kind == "return":
        return True
    if node.kind == "stmt":
        return node.exits
    if node.kind == "block":
        return any(_always_exits(c) for c in node.children)
    if node.kind == "if":
        then = node.children[0] if node.children else None
        els = node.children[1] if len(node.children) > 1 else None
        return els is not None and _always_exits(then) and _always_exits(els)
    return False


def _walk(node, guarded, fn, path, findings):
    """Visit children in order; returns the guardedness after the node."""
    if node is None:
        return guarded
    if node.kind == "block":
        g = guarded
        for c in node.children:
            g = _walk(c, g, fn, path, findings)
        return guarded  # block-internal guards do not escape upward...
    if node.kind == "if":
        is_guard = _is_size_guard(node.cond_text, fn) or \
            _is_delegated_guard(node.cond_text, fn)
        # Reads inside a guarding condition are guarded by its own
        # short-circuit (`if (!have(8) || get_u32(...) != magic)`).
        _check_reads(node, guarded or is_guard, path, findings)
        then = node.children[0] if node.children else None
        els = node.children[1] if len(node.children) > 1 else None
        _walk_into(then, guarded or is_guard, fn, path, findings)
        _walk_into(els, guarded, fn, path, findings)
        if is_guard and _always_exits(then):
            return True  # early-exit guard dominates the rest
        return guarded
    if node.kind == "loop":
        _check_reads(node, guarded, path, findings)
        # A size-guarding loop header (`while (have(4))`) dominates its
        # own body; an index-count header (`i < count`) does not.
        body_guarded = guarded or _is_size_guard(node.cond_text, fn)
        _walk_into(node.children[0] if node.children else None,
                   body_guarded, fn, path, findings)
        return guarded
    _check_reads(node, guarded, path, findings)
    return guarded


def _walk_into(node, guarded, fn, path, findings):
    """Like _walk but for a branch body: guards established by earlier
    children of the body do apply to later children of the same body."""
    if node is None:
        return
    if node.kind == "block":
        g = guarded
        for c in node.children:
            g = _walk(c, g, fn, path, findings)
    else:
        _walk(node, guarded, fn, path, findings)


def _check_reads(node, guarded, path, findings):
    if guarded:
        return
    for r in node.reads:
        what = f"util::{r.callee}({r.args_text})" if r.callee != "subscript" \
            else f"{r.receiver}[{r.args_text}]"
        findings.append(ir.Finding(
            RULE, path, r.line,
            f"offset-advancing read {what} is not dominated by a "
            f"remaining-length guard — get_uN does not bounds-check "
            f"(util/bytes.h contract); check size()/remaining before "
            f"reading"))


def check(project):
    findings = []
    for f in project.files:
        if not path_in(f.path, DIRS):
            continue
        for fn in f.functions:
            if not NAME_RE.match(fn.name):
                continue
            if fn.body is None:
                continue
            _walk(fn.body, False, fn, f.path, findings)
    return findings
