"""bc-hotpath-alloc: heap allocation reachable from per-packet functions.

The data plane (src/rabin/, src/cache/, the encode/decode paths of
src/core/, and the coded-repair emit/reconstruct paths of src/fec/)
runs once per packet and once per byte; PR 2 moved it to
preallocated scratch buffers and flat tables precisely so the steady
state allocates nothing.  This checker walks the call graph from every
hot root and reports, with the call chain:

  * operator new / make_unique / make_shared / malloc-family calls;
  * growth of *node-based* containers (map/set/list/deque families) —
    every insert is a heap node;
  * std::function locals/parameters — type-erased, possibly allocating.

Contiguous-container growth (vector/Bytes push_back, reserve, assign) is
deliberately allowed: the scratch-reuse design amortises it to zero in
steady state, and flagging it would bury the real signal.  A function is
a *hot root* unless its name marks it as setup/teardown/diagnostics
(constructors, audit, save/load_state, flush, factories, stats).
"""

from collections import deque

from checkers.common import path_in, container_base
import ir

RULE = "bc-hotpath-alloc"

ROOT_DIRS = ("src/rabin/", "src/cache/", "src/core/", "src/fec/")
SITE_DIRS = ("src/rabin/", "src/cache/", "src/core/", "src/gateway/",
             "src/net/", "src/fec/")

# Burst entry points are hot roots wherever they live: they are the
# batched per-packet path (PR 7), so a gateway or ring function with one
# of these names joins the walk even though its directory is not a
# blanket root dir.
EXTRA_ROOT_NAMES = frozenset({
    "encode_burst", "decode_burst", "probe_batch", "receive_burst",
    "push_burst", "pop_burst",
})

# Name fragments marking a function as off the per-packet path.
COLD_NAME_PARTS = (
    "audit", "save_state", "load_state", "snapshot", "stats", "reset",
    "flush", "to_string", "from_string", "make_", "merge", "configure",
    "set_params", "worst_level", "transitions",
)

NODE_CONTAINERS = {
    "map", "multimap", "unordered_map", "unordered_multimap",
    "set", "multiset", "unordered_set", "unordered_multiset",
    "list", "forward_list", "deque", "priority_queue", "queue", "stack",
}
GROWTH_CALLS = {"insert", "emplace", "emplace_back", "emplace_front",
                "emplace_hint", "push_back", "push_front", "push",
                "try_emplace", "insert_or_assign"}
ALLOC_CALLS = {"malloc", "calloc", "realloc", "strdup", "make_unique",
               "make_shared", "new_handler"}


def _is_cold(fn):
    name = fn.name.lower()
    if fn.cls and fn.name == fn.cls:
        return True  # constructor (destructors parse to the same name)
    return any(part in name for part in COLD_NAME_PARTS)


def _receiver_type(project, fn, receiver, struct_index, aliases):
    from checkers.common import resolve_type
    if not receiver:
        return ""
    return resolve_type(project, fn, receiver, struct_index, aliases)


def _alloc_sites(project, fn, struct_index, aliases):
    """(line, description) pairs for direct allocations inside fn."""
    sites = []
    for line in fn.news:
        sites.append((line, "operator new"))
    for c in fn.calls:
        callee = c.callee.split("::")[-1]
        if callee in ALLOC_CALLS:
            sites.append((c.line, f"call to {c.callee}"))
        elif callee in GROWTH_CALLS and c.receiver:
            canon = _receiver_type(project, fn, c.receiver, struct_index,
                                   aliases)
            base = container_base(canon)
            if base in NODE_CONTAINERS:
                sites.append((c.line,
                              f"`{c.receiver}.{callee}(...)` grows "
                              f"node-based std::{base} (one heap node "
                              f"per insert)"))
    for d in list(fn.locals) + list(fn.params):
        declared_base = d.type_text.replace("&", " ").replace("*", " ") \
            .replace("const", " ").split("<")[0].split("::")[-1].strip()
        if declared_base in fn.tparams:
            continue  # template parameter, not a concrete type
        base = container_base(project.canon(d.type_text, aliases=aliases))
        if base == "function":
            sites.append((d.line,
                          f"std::function `{d.name}` (type-erased, may "
                          f"allocate per target)"))
    return sites


def check(project):
    findings = []
    struct_index = project.struct_index()
    aliases = project.aliases()

    # Index every function defined under src/ by unqualified name.
    by_name = {}
    for fn in project.all_functions():
        by_name.setdefault(fn.name, []).append(fn)

    roots = [fn for f in project.files if path_in(f.path, ROOT_DIRS)
             for fn in f.functions if not _is_cold(fn)]
    roots += [fn for f in project.files if not path_in(f.path, ROOT_DIRS)
              for fn in f.functions if fn.name in EXTRA_ROOT_NAMES]

    # BFS over the call graph from all roots at once, keeping one
    # (shortest) chain per reached function for the report.
    chain = {}  # id(fn) -> (fn, parent_key or None, label)
    work = deque()
    for fn in roots:
        key = (fn.path, fn.qualname, fn.line)
        if key not in chain:
            chain[key] = (fn, None)
            work.append(key)
    while work:
        key = work.popleft()
        fn = chain[key][0]
        for c in fn.calls:
            callee = c.callee.split("::")[-1]
            for target in by_name.get(callee, []):
                if target.name == fn.name and target.path == fn.path and \
                        target.line == fn.line:
                    continue
                tkey = (target.path, target.qualname, target.line)
                if tkey not in chain and not _is_cold(target):
                    chain[tkey] = (target, key)
                    work.append(tkey)

    def chain_text(key):
        parts = []
        while key is not None:
            fn, parent = chain[key]
            parts.append(fn.qualname.split("::")[-1] + "()")
            key = parent
        return " <- ".join(parts)

    seen = set()
    for key, (fn, _parent) in chain.items():
        if not path_in(fn.path, SITE_DIRS):
            continue
        for line, desc in _alloc_sites(project, fn, struct_index, aliases):
            dedup = (fn.path, line)
            if dedup in seen:
                continue
            seen.add(dedup)
            findings.append(ir.Finding(
                RULE, fn.path, line,
                f"{desc} on the per-packet path "
                f"(reached via {chain_text(key)}); preallocate or use a "
                f"flat container (see DESIGN.md §11)"))
    return findings
