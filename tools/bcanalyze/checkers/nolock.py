"""bc-nolock (semantic): blocking-synchronisation types by *canonical*
type anywhere in the data plane (src/rabin/, src/cache/, src/core/) or
the event-loop layer (src/net/).

The regex rule in tools/lint.py catches literal `std::mutex` spellings;
this checker resolves typedef/using aliases first, so hiding a lock
behind `using Guard = std::scoped_lock<...>;` (or a project alias of a
condition variable) is still a finding.  The data plane is sharded
shared-nothing by design (DESIGN.md §7), and src/net/ is single-threaded
by contract — everything runs on the loop thread, with the lone
cross-thread entry point being the async-signal-safe EventLoop::stop()
(atomic flag + eventfd, DESIGN.md §12.1).  A lock anywhere under these
directories is a design violation, not a style nit.
"""

from checkers.common import path_in, container_base
import ir

RULE = "bc-nolock"

DIRS = ("src/rabin/", "src/cache/", "src/core/", "src/net/")

LOCK_TYPES = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard", "scoped_lock",
    "unique_lock", "shared_lock", "condition_variable",
    "condition_variable_any", "counting_semaphore", "binary_semaphore",
    "barrier", "latch", "promise", "future", "shared_future",
}


def _decl_findings(project, path, decls, where, aliases):
    out = []
    for d in decls:
        base = container_base(project.canon(d.type_text, aliases=aliases))
        if base in LOCK_TYPES:
            out.append(ir.Finding(
                RULE, path, d.line,
                f"{where} `{d.name}` has blocking type "
                f"`{d.type_text.strip()}` (canonical: std::{base}) in the "
                f"lock-free data plane; shard state per worker instead "
                f"(DESIGN.md §7)"))
    return out


def check(project):
    findings = []
    aliases = project.aliases()
    for f in project.files:
        if not path_in(f.path, DIRS):
            continue
        for st in f.structs:
            findings.extend(_decl_findings(
                project, f.path, [m for m in st.members if not m.is_static],
                f"member of {st.name}", aliases))
        for fn in f.functions:
            findings.extend(_decl_findings(project, f.path, fn.locals,
                                           f"local in {fn.name}()", aliases))
            findings.extend(_decl_findings(project, f.path, fn.params,
                                           f"parameter of {fn.name}()",
                                           aliases))
    return findings
