"""Pure-Python structural frontend for bcanalyze.

Builds the ir.py program IR from C++ sources without libclang: a
recursive scan over the token stream tracking namespaces, classes,
typedef/using aliases, function definitions, and — inside function
bodies — declarations, call sites (with receivers), comparison
operators, and a statement tree for dominance reasoning.

It is a *structural* parser, not a conforming one: it understands the
shapes this codebase actually uses (see tests under
tools/bcanalyze/fixtures/, which pin its behaviour).  On CI the libclang
frontend (frontend_clang.py) produces the same IR from the real AST; the
checker layer cannot tell the two apart.
"""

import os

from lexer import tokenize, match_brace, text_of
import ir

_STMT_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "try", "catch", "throw",
    "new", "delete", "using", "typedef", "template", "friend", "public",
    "private", "protected", "operator", "sizeof", "alignof", "decltype",
    "static_assert", "co_return", "co_await", "co_yield", "namespace",
    "struct", "class", "enum", "union", "this",
}
_CAST_KEYWORDS = {"static_cast", "dynamic_cast", "const_cast",
                  "reinterpret_cast"}
_TYPE_QUALIFIERS = {"const", "constexpr", "consteval", "constinit",
                    "volatile", "static", "inline", "mutable", "extern",
                    "thread_local", "register", "typename", "unsigned",
                    "signed", "long", "short", "explicit", "virtual"}
_RELOPS = {"<", "<=", ">", ">=", "==", "!="}


def _skip_template_args(tokens, i):
    """tokens[i] == '<'; returns index just past the matching '>'.
    Returns i (unchanged) if this does not look like template args."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}") or tokens[j].kind == "str":
            return i  # not a template argument list
        j += 1
    return i


def _parse_type(tokens, i):
    """Try to read a type at tokens[i].  Returns (type_text, next_index)
    or (None, i).  A type is qualifier* id(::id)*(<args>)? [*&]*."""
    j = i
    words = []
    while j < len(tokens) and tokens[j].text in _TYPE_QUALIFIERS:
        if tokens[j].text not in ("inline", "extern", "explicit", "virtual",
                                  "typename"):
            words.append(tokens[j].text)
        j += 1
    if j >= len(tokens) or tokens[j].kind != "id" or \
            tokens[j].text in _STMT_KEYWORDS or \
            tokens[j].text in _CAST_KEYWORDS:
        # allow builtin combos like "unsigned" alone
        if words and any(w in ("unsigned", "signed", "long", "short")
                         for w in words):
            return " ".join(words), j
        return None, i
    chain = [tokens[j].text]
    j += 1
    while j + 1 < len(tokens) and tokens[j].text == "::" and \
            tokens[j + 1].kind == "id":
        chain.append("::")
        chain.append(tokens[j + 1].text)
        j += 2
    if j < len(tokens) and tokens[j].text == "<":
        end = _skip_template_args(tokens, j)
        if end != j:
            chain.append(text_of(tokens[j:end]))
            j = end
            # templated qualified: std::vector<T>::size_type
            while j + 1 < len(tokens) and tokens[j].text == "::" and \
                    tokens[j + 1].kind == "id":
                chain.append("::")
                chain.append(tokens[j + 1].text)
                j += 2
    while j < len(tokens) and tokens[j].text in ("*", "&", "&&", "const"):
        chain.append(tokens[j].text)
        j += 1
    words.append("".join(c if c in ("::",) else c + " " for c in chain).strip())
    return " ".join(words), j


def _try_parse_decl(tokens, aliases_hint=None):
    """Parse `TYPE NAME [= init | { init } | ( init )] [, ...] ;` from a
    plain-statement token slice.  Returns list[ir.Decl] (usually 0/1)."""
    if not tokens:
        return []
    i = 0
    is_static = False
    while i < len(tokens) and tokens[i].text in ("static", "inline",
                                                 "constexpr", "extern",
                                                 "thread_local", "friend"):
        if tokens[i].text == "static":
            is_static = True
        if tokens[i].text == "friend":
            return []
        i += 1
    if i < len(tokens) and tokens[i].text in _STMT_KEYWORDS and \
            tokens[i].text != "this":
        if tokens[i].text not in ("struct", "class"):  # elaborated type ok
            return []
        i += 1
    type_text, j = _parse_type(tokens, i)
    if type_text is None or j >= len(tokens):
        return []
    if tokens[j].kind != "id" or tokens[j].text in _STMT_KEYWORDS:
        return []
    name = tokens[j].text
    line = tokens[j].line
    k = j + 1
    if k >= len(tokens):
        init = ""
    elif tokens[k].text in ("=", "{", "("):
        opener = tokens[k].text
        if opener == "=":
            init = text_of(tokens[k + 1:]).rstrip("; ")
        else:
            close = match_brace(tokens, k)
            init = text_of(tokens[k + 1:close])
            # `NAME ( ... )` with a type present is a constructor-style
            # init; without a clear type it was probably a call, but
            # _parse_type already required a type before NAME.
    elif tokens[k].text in (";", ","):
        init = ""
    elif tokens[k].text == "[":  # array declarator
        init = ""
    else:
        return []
    return [ir.Decl(name=name, type_text=type_text, canon_type="",
                    line=line, is_static=is_static, init_text=init)]


def _split_top_commas(tokens):
    parts = []
    depth = 0
    cur = []
    for t in tokens:
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == "<":
            depth += 1
        elif t.text == ">":
            depth = max(0, depth - 1)
        elif t.text == ">>":
            depth = max(0, depth - 2)
        if t.text == "," and depth == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        parts.append(cur)
    return parts


def _parse_params(tokens):
    """Parameter list tokens (without outer parens) -> list[ir.Decl]."""
    params = []
    if not tokens or (len(tokens) == 1 and tokens[0].text == "void"):
        return params
    for part in _split_top_commas(tokens):
        if not part or part[0].text == "...":
            continue
        # strip default argument
        for idx, t in enumerate(part):
            if t.text == "=":
                part = part[:idx]
                break
        type_text, j = _parse_type(part, 0)
        if type_text is None:
            continue
        if j < len(part) and part[j].kind == "id":
            params.append(ir.Decl(name=part[j].text, type_text=type_text,
                                  canon_type="", line=part[j].line))
        else:
            params.append(ir.Decl(name="", type_text=type_text,
                                  canon_type="", line=part[0].line))
    return params


def _receiver_of(tokens, i):
    """tokens[i] is the first token of the callee chain; if it is preceded
    by . or ->, walk the postfix expression backwards and return its loose
    text (root object first)."""
    j = i - 1
    if j < 0 or tokens[j].text not in (".", "->"):
        return ""
    parts = []
    while j >= 0 and tokens[j].text in (".", "->"):
        parts.append(tokens[j].text)
        j -= 1
        if j >= 0 and tokens[j].text in (")", "]"):
            # skip a balanced group backwards
            closer = tokens[j].text
            opener = "(" if closer == ")" else "["
            depth = 0
            while j >= 0:
                if tokens[j].text == closer:
                    depth += 1
                elif tokens[j].text == opener:
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            parts.append("()" if closer == ")" else "[]")
            j -= 1
        if j >= 0 and tokens[j].kind == "id":
            chain = [tokens[j].text]
            j -= 1
            while j >= 1 and tokens[j].text == "::" and \
                    tokens[j - 1].kind == "id":
                chain.append("::")
                chain.append(tokens[j - 1].text)
                j -= 2
            parts.append("".join(reversed(chain)))
        elif j >= 0 and tokens[j].text == "this":
            parts.append("this")
            j -= 1
        else:
            break
    text = "".join(reversed(parts))
    return text.rstrip(".").rstrip("->")


def _scan_expressions(tokens, fn):
    """Populate fn.calls, fn.compares, fn.news from a body token slice."""
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.text == "new" and t.kind == "id":
            fn.news.append(t.line)
            continue
        if t.text == "(" and i > 0:
            # callee chain ends at tokens[i-1]
            j = i - 1
            if tokens[j].text == ">":
                # skip template args backwards: find matching '<'
                depth = 0
                while j >= 0:
                    if tokens[j].text in (">", ">>"):
                        depth += 2 if tokens[j].text == ">>" else 1
                    elif tokens[j].text == "<":
                        depth -= 1
                        if depth <= 0:
                            break
                    j -= 1
                j -= 1
            if j < 0 or tokens[j].kind != "id":
                continue
            if tokens[j].text in _STMT_KEYWORDS or \
                    tokens[j].text in _CAST_KEYWORDS:
                continue
            chain = [tokens[j].text]
            start = j
            while start >= 2 and tokens[start - 1].text == "::" and \
                    tokens[start - 2].kind == "id":
                chain.append("::")
                chain.append(tokens[start - 2].text)
                start -= 2
            callee = "".join(reversed(chain))
            receiver = _receiver_of(tokens, start)
            close = match_brace(tokens, i)
            args = text_of(tokens[i + 1:close])
            fn.calls.append(ir.Call(callee=callee, receiver=receiver,
                                    line=t.line, args_text=args))
            continue
        if t.text in _RELOPS and t.kind == "punct":
            lhs = _operand_text(tokens, i, -1)
            rhs = _operand_text(tokens, i, +1)
            if lhs and rhs:
                fn.compares.append(ir.Compare(op=t.text, line=t.line,
                                              lhs_text=lhs, rhs_text=rhs))


def _operand_text(tokens, i, direction):
    """Loose text of the comparison operand next to tokens[i].  Collects a
    postfix chain of ids joined by ./->/:: (plus trailing calls/indexing
    collapsed); returns "" when the neighbour is not operand-ish."""
    if direction < 0:
        j = i - 1
        if j < 0:
            return ""
        if tokens[j].text in (")", "]"):
            return ""  # parenthesised / indexed lhs: give up, stay precise
        if tokens[j].kind not in ("id", "num"):
            return ""
        if tokens[j].kind == "num":
            return tokens[j].text
        chain = [tokens[j].text]
        j -= 1
        while j >= 1 and tokens[j].text in (".", "->", "::") and \
                tokens[j - 1].kind == "id":
            chain.append(tokens[j].text)
            chain.append(tokens[j - 1].text)
            j -= 2
        return "".join(reversed(chain))
    j = i + 1
    if j >= len(tokens):
        return ""
    if tokens[j].kind == "num":
        return tokens[j].text
    if tokens[j].kind != "id" or tokens[j].text in _STMT_KEYWORDS:
        return ""
    chain = [tokens[j].text]
    j += 1
    while j + 1 < len(tokens) and tokens[j].text in (".", "->", "::") and \
            tokens[j + 1].kind == "id":
        chain.append(tokens[j].text)
        chain.append(tokens[j + 1].text)
        j += 2
    if j < len(tokens) and tokens[j].text in ("(", "["):
        return ""  # call / index result: type unknowable here
    return "".join(chain)


_WIRE_READERS = {"get_u8", "get_u16", "get_u32", "get_u64"}


def _reads_in(tokens):
    """Offset-advancing wire reads in a token slice: util::get_uN(...)
    calls and `ident [ ... ]` subscripts followed by ++ inside (heuristic:
    any subscript whose index expression mentions an offset identifier)."""
    reads = []
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.text in _WIRE_READERS and \
                i + 1 < len(tokens) and tokens[i + 1].text == "(":
            close = match_brace(tokens, i + 1)
            reads.append(ir.Call(callee=t.text, receiver="", line=t.line,
                                 args_text=text_of(tokens[i + 2:close])))
        elif t.text == "[" and i > 0 and tokens[i - 1].kind == "id":
            close = match_brace(tokens, i)
            idx = text_of(tokens[i + 1:close])
            if "off" in idx or "pos" in idx or "++" in idx:
                reads.append(ir.Call(callee="subscript",
                                     receiver=tokens[i - 1].text,
                                     line=t.line, args_text=idx))
    return reads


def _parse_stmt_tree(tokens):
    """Build the ir.Stmt tree for a function body token slice."""
    block = ir.Stmt(kind="block",
                    line=tokens[0].line if tokens else 0)
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.text == "{":
            close = match_brace(tokens, i)
            block.children.append(_parse_stmt_tree(tokens[i + 1:close]))
            i = close + 1
        elif t.text == "if":
            # optional: if constexpr
            j = i + 1
            if j < n and tokens[j].text == "constexpr":
                j += 1
            if j >= n or tokens[j].text != "(":
                i += 1
                continue
            cclose = match_brace(tokens, j)
            cond = tokens[j + 1:cclose]
            node = ir.Stmt(kind="if", line=t.line, cond_text=text_of(cond),
                           reads=_reads_in(cond))
            then_node, i2 = _parse_one_stmt(tokens, cclose + 1)
            node.children.append(then_node)
            if i2 < n and tokens[i2].text == "else":
                else_node, i2 = _parse_one_stmt(tokens, i2 + 1)
                node.children.append(else_node)
            block.children.append(node)
            i = i2
        elif t.text in ("for", "while", "switch"):
            j = i + 1
            if j >= n or tokens[j].text != "(":
                i += 1
                continue
            cclose = match_brace(tokens, j)
            hdr = tokens[j + 1:cclose]
            node = ir.Stmt(kind="loop", line=t.line, cond_text=text_of(hdr),
                           reads=_reads_in(hdr))
            body_node, i2 = _parse_one_stmt(tokens, cclose + 1)
            node.children.append(body_node)
            block.children.append(node)
            i = i2
        elif t.text == "do":
            body_node, i2 = _parse_one_stmt(tokens, i + 1)
            node = ir.Stmt(kind="loop", line=t.line)
            node.children.append(body_node)
            # skip `while ( ... ) ;`
            while i2 < n and tokens[i2].text != ";":
                i2 += 1
            block.children.append(node)
            i = i2 + 1
        elif t.text in ("return", "throw", "break", "continue", "goto"):
            j = i
            while j < n and tokens[j].text != ";":
                j += 1
            node = ir.Stmt(kind="return", line=t.line,
                           reads=_reads_in(tokens[i:j]), exits=True)
            block.children.append(node)
            i = j + 1
        elif t.text == "else":  # orphaned (shouldn't happen); skip
            i += 1
        else:
            j = i
            depth = 0
            while j < n:
                tj = tokens[j].text
                if tj in ("(", "[", "{"):
                    depth += 1
                elif tj in (")", "]", "}"):
                    depth -= 1
                elif tj == ";" and depth == 0:
                    break
                j += 1
            node = ir.Stmt(kind="stmt", line=t.line,
                           reads=_reads_in(tokens[i:j]))
            block.children.append(node)
            i = j + 1
    return block


def _parse_one_stmt(tokens, i):
    """Parse a single statement (the body of an if/loop) starting at i.
    Returns (Stmt, next_index)."""
    n = len(tokens)
    if i >= n:
        return ir.Stmt(kind="block", line=0), i
    t = tokens[i]
    if t.text == "{":
        close = match_brace(tokens, i)
        return _parse_stmt_tree(tokens[i + 1:close]), close + 1
    # single statement: delegate to the block parser over a bounded slice.
    if t.text in ("if", "for", "while", "switch", "do"):
        # find the end: parse greedily via the block parser on the rest,
        # then take its first child.  Cheap but correct for our shapes.
        sub = _parse_stmt_tree(tokens[i:])
        first = sub.children[0] if sub.children else ir.Stmt("block", t.line)
        end = _end_of_compound(tokens, i)
        return first, end
    j = i
    depth = 0
    while j < n:
        tj = tokens[j].text
        if tj in ("(", "[", "{"):
            depth += 1
        elif tj in (")", "]", "}"):
            depth -= 1
        elif tj == ";" and depth == 0:
            break
        j += 1
    kind = "return" if t.text in ("return", "throw", "break", "continue",
                                  "goto") else "stmt"
    return ir.Stmt(kind=kind, line=t.line, reads=_reads_in(tokens[i:j]),
                   exits=(kind == "return")), j + 1


def _end_of_compound(tokens, i):
    """Index just past the compound statement starting at tokens[i]
    (an if/for/while/switch/do with arbitrary nesting)."""
    n = len(tokens)
    t = tokens[i].text
    if t == "do":
        end = _end_of_compound(tokens, i + 1) if i + 1 < n else n
        while end < n and tokens[end].text != ";":
            end += 1
        return end + 1
    j = i + 1
    if j < n and tokens[j].text == "constexpr":
        j += 1
    if j < n and tokens[j].text == "(":
        j = match_brace(tokens, j) + 1
    if j < n and tokens[j].text == "{":
        j = match_brace(tokens, j) + 1
    elif j < n and tokens[j].text in ("if", "for", "while", "switch", "do"):
        j = _end_of_compound(tokens, j)
    else:
        while j < n and tokens[j].text != ";":
            j += 1
        j += 1
    if t == "if" and j < n and tokens[j].text == "else":
        j += 1
        if j < n and tokens[j].text == "{":
            j = match_brace(tokens, j) + 1
        elif j < n and tokens[j].text in ("if", "for", "while", "switch"):
            j = _end_of_compound(tokens, j)
        else:
            while j < n and tokens[j].text != ";":
                j += 1
            j += 1
    return j


_CONTROL_STARTS = {"if", "else", "for", "while", "do", "switch", "try",
                   "catch", "case", "default"}


def _collect_locals(tokens, fn):
    """Split a body into plain statements at every depth and try_parse_decl
    each; also harvest function-local using-aliases into fn_aliases.

    A `{` opens a nested *block* only at a statement boundary or after a
    control keyword; mid-statement braces (lambda bodies, braced
    initialisers) stay part of the statement so `auto have = [&](n)
    { ... };` parses as one declaration whose init_text carries the
    lambda body."""
    fn_aliases = {}
    i = 0
    n = len(tokens)
    start = 0
    depth = 0
    while i < n:
        t = tokens[i].text
        if t in ("(", "["):
            depth += 1
        elif t in (")", "]"):
            depth -= 1
        elif t == "{":
            stmt_so_far = tokens[start:i]
            is_block = (not stmt_so_far or
                        stmt_so_far[0].text in _CONTROL_STARTS)
            close = match_brace(tokens, i)
            sub_aliases = _collect_locals(tokens[i + 1:close], fn)
            fn_aliases.update(sub_aliases)
            if is_block:
                i = close
                start = i + 1
                depth = 0
            else:
                i = close  # braces belong to the pending statement
        elif t == ";" and depth == 0:
            stmt = tokens[start:i]
            if stmt and stmt[0].text == "using" and len(stmt) >= 4 and \
                    stmt[2].text == "=":
                fn_aliases[stmt[1].text] = text_of(stmt[3:])
            elif stmt and stmt[0].text == "for":
                pass  # range-for inits handled loosely below
            else:
                for d in _try_parse_decl(stmt):
                    fn.locals.append(d)
            start = i + 1
        i += 1
    return fn_aliases


class _Parser:
    def __init__(self, path, text):
        self.path = path
        self.tokens = tokenize(text)
        self.fir = ir.FileIR(path=path, raw_lines=text.splitlines())
        self._pending_tparams = []

    def parse(self):
        self._scope(0, len(self.tokens), [], "")
        return self.fir

    # -- top-level / namespace / class scope scanning -------------------

    def _scope(self, lo, hi, ns, cls):
        i = lo
        toks = self.tokens
        while i < hi:
            t = toks[i]
            tx = t.text
            if tx == "namespace":
                j = i + 1
                names = []
                while j < hi and toks[j].kind == "id":
                    names.append(toks[j].text)
                    j += 1
                    if j < hi and toks[j].text == "::":
                        j += 1
                if j < hi and toks[j].text == "{":
                    close = match_brace(toks, j)
                    self._scope(j + 1, close, ns + names, cls)
                    i = close + 1
                else:  # using-directive or alias; skip to ;
                    while i < hi and toks[i].text != ";":
                        i += 1
                    i += 1
                continue
            if tx == "template":
                j = i + 1
                if j < hi and toks[j].text == "<":
                    depth = 0
                    start = j
                    while j < hi:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j].text == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                        j += 1
                    # remember `typename T` / `class T` names so the
                    # entity that follows can shield them from project
                    # alias resolution (a template param named like a
                    # using-alias elsewhere must not resolve to it)
                    self._pending_tparams = []
                    for m in range(start, min(j, hi) - 1):
                        if toks[m].text in ("typename", "class") and \
                                toks[m + 1].kind == "id":
                            self._pending_tparams.append(toks[m + 1].text)
                    i = j + 1
                else:
                    i += 1
                continue
            if tx == "using":
                if i + 2 < hi and toks[i + 2].text == "=":
                    j = i + 3
                    start = j
                    while j < hi and toks[j].text != ";":
                        j += 1
                    self.fir.aliases[toks[i + 1].text] = \
                        text_of(toks[start:j])
                    i = j + 1
                else:  # using-declaration
                    while i < hi and toks[i].text != ";":
                        i += 1
                    i += 1
                continue
            if tx == "typedef":
                j = i + 1
                while j < hi and toks[j].text != ";":
                    j += 1
                if j - 1 > i + 1 and toks[j - 1].kind == "id":
                    self.fir.aliases[toks[j - 1].text] = \
                        text_of(toks[i + 1:j - 1])
                i = j + 1
                continue
            if tx in ("struct", "class") and i + 1 < hi and \
                    toks[i + 1].kind == "id":
                name = toks[i + 1].text
                j = i + 2
                while j < hi and toks[j].text not in ("{", ";"):
                    j += 1
                if j < hi and toks[j].text == "{":
                    close = match_brace(toks, j)
                    self._pending_tparams = []
                    self._struct_body(j + 1, close, ns, cls, name,
                                      toks[i + 1].line)
                    i = close + 1
                    # skip trailing `;` / variable declarators
                    while i < hi and toks[i].text != ";":
                        i += 1
                    i += 1
                else:
                    i = j + 1
                continue
            if tx == "enum":
                j = i + 1
                while j < hi and toks[j].text not in ("{", ";"):
                    j += 1
                if j < hi and toks[j].text == "{":
                    j = match_brace(toks, j)
                while j < hi and toks[j].text != ";":
                    j += 1
                i = j + 1
                continue
            if tx == "(":
                fn_end = self._try_function(i, hi, ns, cls)
                if fn_end is not None:
                    i = fn_end
                    continue
                i = match_brace(toks, i) + 1
                continue
            if tx == "{":
                i = match_brace(toks, i) + 1
                continue
            i += 1

    def _struct_body(self, lo, hi, ns, outer_cls, name, line):
        qual = "::".join(ns + ([outer_cls] if outer_cls else []) + [name])
        st = ir.Struct(name=name, qualname=qual, path=self.path, line=line)
        self.fir.structs.append(st)
        # scan members: reuse _scope for methods/nested types, plus a
        # member-decl pass over depth-0 plain statements.
        cls_name = name
        self._scope(lo, hi, ns, cls_name)
        i = lo
        toks = self.tokens
        start = lo
        while i < hi:
            tx = toks[i].text
            if tx in ("{", "("):
                i = match_brace(toks, i)
                # a brace body ends a member-function definition: reset
                if toks[i].text == "}" if i < hi else False:
                    start = i + 1
            elif tx == ":" and i + 1 < hi and \
                    toks[i - 1].text in ("public", "private", "protected"):
                start = i + 1
            elif tx == ";":
                stmt = toks[start:i]
                # drop statements containing parens (methods, using, etc.)
                if stmt and not any(s.text in ("(", ")") for s in stmt) and \
                        stmt[0].text not in ("using", "typedef", "friend",
                                             "struct", "class", "enum",
                                             "public", "private",
                                             "protected", "static_assert"):
                    for d in _try_parse_decl(stmt):
                        st.members.append(d)
                start = i + 1
            i += 1

    # -- function definitions -------------------------------------------

    def _try_function(self, paren_i, hi, ns, cls):
        """toks[paren_i] == '('.  If this opens a function definition,
        build its IR and return the index just past the body; else None."""
        toks = self.tokens
        # name chain walking back from the paren
        j = paren_i - 1
        if j < 0:
            return None
        if toks[j].kind != "id" or toks[j].text in _STMT_KEYWORDS or \
                toks[j].text in _CAST_KEYWORDS:
            return None
        chain = [toks[j].text]
        start = j
        while start >= 2 and toks[start - 1].text == "::" and \
                toks[start - 2].kind == "id":
            chain.append(toks[start - 2].text)
            start -= 2
        chain.reverse()
        pclose = match_brace(toks, paren_i)
        if pclose >= hi:
            return None
        # qualifier run after the params
        k = pclose + 1
        saw_arrow = False
        while k < hi:
            tk = toks[k].text
            if tk in ("const", "noexcept", "override", "final", "mutable",
                      "&", "&&"):
                k += 1
            elif tk.startswith("BC_") and k + 1 < hi and \
                    toks[k + 1].text == "(":
                k = match_brace(toks, k + 1) + 1
            elif tk.startswith("BC_"):
                k += 1
            elif tk == "->":
                saw_arrow = True
                k += 1
            elif saw_arrow and (toks[k].kind == "id" or tk in ("::", "<",
                                                              ">", "*",
                                                              "&")):
                k += 1
            elif tk == "[" and k + 1 < hi and toks[k + 1].text == "[":
                k = match_brace(toks, k) + 1
            else:
                break
        body_open = None
        if k < hi and toks[k].text == "{":
            body_open = k
        elif k < hi and toks[k].text == ":":
            # Constructor init list: `: name_(args), name_{args}, ... {body}`.
            # Scan forward skipping balanced groups.  A `{...}` group
            # followed by `,` is an init item; followed by `{` it was the
            # last init item and the body comes next; followed by anything
            # else the group itself was the body.
            m = k + 1
            while m < hi and body_open is None:
                tm = toks[m].text
                if tm == "(":
                    m = match_brace(toks, m) + 1
                elif tm == "<":
                    m2 = _skip_template_args(toks, m)
                    m = m2 if m2 != m else m + 1
                elif tm == "{":
                    close = match_brace(toks, m)
                    nxt = close + 1
                    if nxt < hi and toks[nxt].text == ",":
                        m = nxt + 1
                    elif nxt < hi and toks[nxt].text == "{":
                        body_open = nxt
                    else:
                        body_open = m
                elif tm == ";":
                    break
                else:
                    m += 1
        elif k < hi and toks[k].text in (";", "=", ","):
            return None  # declaration / deleted / defaulted / init
        if body_open is None:
            return None
        body_close = match_brace(toks, body_open)
        # assemble
        name = chain[-1]
        if name in ("if", "for", "while", "switch", "return"):
            return None
        fn_cls = cls
        if len(chain) >= 2 and not cls:
            fn_cls = chain[-2]
        qual = "::".join(ns + ([fn_cls] if fn_cls else []) + [name])
        fn = ir.Function(name=name, qualname=qual, path=self.path,
                         line=toks[start].line,
                         end_line=toks[body_close].line
                         if body_close < len(toks) else toks[-1].line,
                         cls=fn_cls, tparams=self._pending_tparams)
        self._pending_tparams = []
        fn.params = _parse_params(toks[paren_i + 1:pclose])
        body = toks[body_open + 1:body_close]
        fn_aliases = _collect_locals(body, fn)
        _scan_expressions(body, fn)
        fn.body = _parse_stmt_tree(body)
        self.fir.functions.append(fn)
        # harvest a stats_fields field table
        if name == "stats_fields":
            self._field_table(fn, body, fn_aliases)
        # function-local aliases participate in file-level resolution too
        # (named uniquely enough in practice; S is filtered below)
        for k2, v in fn_aliases.items():
            if len(k2) > 1:
                self.fir.aliases.setdefault(k2, v)
        return body_close + 1

    def _field_table(self, fn, body, fn_aliases):
        if not fn.params:
            return
        ptype = fn.params[0].type_text
        struct_name = ptype.replace("*", " ").replace("const", " ")
        struct_name = struct_name.split("<")[0].split("::")[-1].strip()
        table = ir.FieldTable(struct_name=struct_name, path=self.path,
                              line=fn.line)
        i = 0
        n = len(body)
        while i < n:
            # pattern: { "name" , & S :: member }
            if body[i].text == "{" and i + 1 < n and \
                    body[i + 1].kind == "str":
                close = match_brace(body, i)
                inner = body[i + 1:close]
                if len(inner) >= 5 and inner[1].text == "," and \
                        inner[2].text == "&" and inner[3].kind == "id":
                    member = None
                    if len(inner) >= 6 and inner[4].text == "::" and \
                            inner[5].kind == "id":
                        member = inner[5].text
                    if member:
                        display = inner[0].text.strip('"')
                        table.entries.append(ir.FieldTableEntry(
                            display=display, member=member,
                            line=inner[0].line))
                i = close + 1
                continue
            i += 1
        if table.entries:
            self.fir.field_tables.append(table)


def load_file(path, repo_rel=None, text=None):
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    return _Parser(repo_rel or path, text).parse()


def load(paths, root):
    proj = ir.ProjectIR(frontend="fallback")
    for p in sorted(paths):
        rel = os.path.relpath(p, root) if os.path.isabs(p) else p
        proj.files.append(load_file(os.path.join(root, rel)
                                    if not os.path.isabs(p) else p,
                                    repo_rel=rel))
    return proj
