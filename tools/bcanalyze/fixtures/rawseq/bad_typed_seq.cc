// BC-FIXTURE: path=src/core/fixture_typed_seq.cc
//
// bc-rawseq known-bad: relational comparison on 32-bit sequence
// numbers, including through a member access and a using-alias — both
// need type resolution, which is exactly what the regex rule cannot do.
#include <cstdint>

namespace bytecache::core {

using WireSeq = std::uint32_t;

struct FixtureHdr {
  std::uint32_t seq = 0;
  std::uint32_t len = 0;
};

bool fixture_before(std::uint32_t seq, std::uint32_t limit) {
  return seq < limit;  // EXPECT(bc-rawseq)
}

bool fixture_member(const FixtureHdr& hdr, std::uint32_t limit) {
  return hdr.seq >= limit;  // EXPECT(bc-rawseq)
}

bool fixture_alias(WireSeq base_seq, WireSeq other) {
  return base_seq > other;  // EXPECT(bc-rawseq)
}

}  // namespace bytecache::core
