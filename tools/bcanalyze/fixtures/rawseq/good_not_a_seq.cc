// BC-FIXTURE: path=src/core/fixture_not_a_seq.cc
//
// bc-rawseq known-good: the precision cases the semantic checker buys
// over the regex.  A *size* whose name happens to contain "seq" is not
// a wrapping sequence number; equality tests never wrap; and the
// sanctioned util::seq_lt helpers are obviously fine.
#include <cstddef>
#include <cstdint>

#include "util/seqcmp.h"

namespace bytecache::core {

bool fixture_sizes(std::size_t seq_len, std::size_t budget) {
  return seq_len < budget;  // size_t, not a u32 sequence: no finding
}

bool fixture_equality(std::uint32_t seq, std::uint32_t expected) {
  return seq == expected;  // equality does not wrap: no finding
}

bool fixture_sanctioned(std::uint32_t seq, std::uint32_t limit) {
  return util::seq_lt(seq, limit);  // the fix the checker points at
}

}  // namespace bytecache::core
