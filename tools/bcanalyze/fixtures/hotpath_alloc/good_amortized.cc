// BC-FIXTURE: path=src/cache/fixture_amortized.cc
//
// bc-hotpath-alloc known-good: the allocation shapes the data plane is
// built on.  Contiguous-container growth is amortised-by-design (PR 2
// scratch reuse keeps capacity across packets), cold setup/teardown
// functions may allocate freely, and the FlatMap64 replacement for
// node maps must not fire.
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/flat_map.h"

namespace bytecache::cache {

struct FixtureScratch {
  std::vector<std::uint8_t> bytes;
  FlatMap64<std::uint32_t> index;

  void per_packet(std::uint64_t key, std::uint8_t b) {
    bytes.push_back(b);      // contiguous growth: amortised, no finding
    bytes.reserve(64);       // explicitly allowed
    index.put(key, 1);       // flat map: vector-backed, no finding
  }

  // Cold by name: setup allocating a node-based structure is fine.
  std::unique_ptr<FixtureScratch> make_scratch() {
    return std::make_unique<FixtureScratch>();  // cold path: no finding
  }

  void reset_stats() {
    bytes = std::vector<std::uint8_t>(1024);  // cold path: no finding
  }
};

}  // namespace bytecache::cache
