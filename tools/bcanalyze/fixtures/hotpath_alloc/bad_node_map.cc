// BC-FIXTURE: path=src/core/fixture_node_map.cc
//
// bc-hotpath-alloc known-bad, modelled on the real bug this checker
// caught in Encoder::on_reverse_ack (PR 6): a node-based map growing on
// the per-packet path costs one heap allocation per new key.  Also
// covers a bare new-expression, make_unique, a std::function local, and
// — the part regex cannot do — an allocation reached only *transitively*
// through a helper.
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace bytecache::core {

struct FixtureFeedback {
  std::unordered_map<std::uint64_t, std::uint32_t> highest_ack;

  void on_reverse_ack(std::uint64_t flow_key, std::uint32_t ack) {
    auto it = highest_ack.find(flow_key);
    if (it == highest_ack.end()) {
      highest_ack.emplace(flow_key, ack);  // EXPECT(bc-hotpath-alloc)
    }
  }
};

int* fixture_leaf_alloc(int v) {
  return new int(v);  // EXPECT(bc-hotpath-alloc)
}

std::unique_ptr<int> fixture_make(int v) {
  return std::make_unique<int>(v);  // EXPECT(bc-hotpath-alloc)
}

std::uint32_t fixture_erased(std::uint32_t x) {
  std::function<std::uint32_t(std::uint32_t)> f =  // EXPECT(bc-hotpath-alloc)
      [](std::uint32_t v) { return v + 1; };
  return f(x);
}

// Transitive case: process() itself allocates nothing, but the helper
// it calls does — the finding lands on the helper's line with the call
// chain in the message.
int* fixture_process(int v) { return fixture_leaf_alloc(v); }

}  // namespace bytecache::core
