// BC-FIXTURE: path=src/cache/cache_tier_promote.cc
//
// bc-hotpath-alloc known-bad for the tier promotion path (DESIGN.md
// §14): find() and the deferred-promotion drain run once per packet, so
// a node-map insert per L2 hit or a make_unique per promoted packet is
// exactly the steady-state allocation the tier design forbids (the real
// store parks promotions in a reused vector and moves slab-backed
// packets wholesale).  Contiguous growth of that pending vector is
// amortised and allowed, and the snapshot writer is off the per-packet
// path by name — neither may produce a finding.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace bytecache::cache {

struct FixturePromoteQueue {
  std::map<std::uint64_t, std::uint32_t> hit_index;
  std::vector<std::uint64_t> pending;

  void find(std::uint64_t fp) {
    hit_index.emplace(fp, 1u);  // EXPECT(bc-hotpath-alloc)
    pending.push_back(fp);  // contiguous growth: amortised, no finding
  }

  std::unique_ptr<std::uint64_t> promote_one(std::uint64_t id) {
    return std::make_unique<std::uint64_t>(id);  // EXPECT(bc-hotpath-alloc)
  }

  // Snapshot writing is cold by name: allocation here must stay silent.
  std::uint64_t* snapshot_block(std::uint64_t id) {
    return new std::uint64_t(id);
  }
};

}  // namespace bytecache::cache
