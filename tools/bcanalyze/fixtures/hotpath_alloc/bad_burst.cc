// BC-FIXTURE: path=src/gateway/fixture_burst.cc
//
// bc-hotpath-alloc known-bad for the burst data plane (PR 7): the burst
// entry points (receive_burst / push_burst / encode_burst / probe_batch
// and friends) are hot roots *by name*, wherever they live — a gateway
// is not a blanket root directory, so without the name-based roots an
// allocation behind receive_burst would go unreported.  Covers a
// node-map growth inside the burst function itself, a transitive
// make_unique through a per-packet helper, and the negative case: an
// allocating gateway function that is NOT a burst root (and is not
// reached from one) must stay silent even though the file now sits in
// a site directory.
#include <cstdint>
#include <map>
#include <memory>

namespace bytecache::gateway {

struct FixtureBurstGateway {
  std::map<std::uint64_t, std::uint64_t> per_flow_counts;

  void deliver_one(std::uint64_t flow) {
    per_flow_counts.emplace(flow, 1);  // EXPECT(bc-hotpath-alloc)
  }

  void receive_burst(const std::uint64_t* flows, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) deliver_one(flows[i]);
  }

  std::unique_ptr<std::uint64_t> probe_batch(std::uint64_t fp) {
    return std::make_unique<std::uint64_t>(fp);  // EXPECT(bc-hotpath-alloc)
  }

  // NOT a burst root and reached by none of them: gateway setup code may
  // allocate freely — no finding despite living in a site directory.
  std::uint64_t* start_worker(std::uint64_t id) {
    return new std::uint64_t(id);
  }
};

}  // namespace bytecache::gateway
