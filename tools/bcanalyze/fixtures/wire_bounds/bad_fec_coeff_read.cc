// BC-FIXTURE: path=src/fec/fixture_coeffs.cc
//
// bc-wire-bounds known-bad for the coded-repair surface: the repair
// header's coeff_count byte is attacker-controlled and sizes the
// coefficient vector that follows, so reading coefficients without
// first proving `coeff_count` bytes remain walks off a truncated packet.
// The real parser (fec/wire.cc) guards this; the fixture pins that the
// checker keeps catching the unguarded ordering.
#include <cstdint>

#include "util/bytes.h"

namespace bytecache::fec {

struct FixtureRepair {
  std::uint16_t gen_id = 0;
  std::uint8_t coeff_count = 0;
  std::uint32_t coeff_sum = 0;
};

// Helper shape: the caller peeled the header and passes coeff_count
// through, but this function indexes the vector before proving the
// bytes exist — the guard below the loop is too late.
bool parse_coeff_vector(util::BytesView wire, std::uint8_t coeff_count,
                        FixtureRepair& out) {
  std::size_t off = 0;
  for (std::uint8_t j = 0; j < coeff_count; ++j) {
    out.coeff_sum += wire[off + j];  // EXPECT(bc-wire-bounds)
  }
  if (wire.size() < coeff_count) return false;
  return true;
}

bool parse_coeffs_guarded(util::BytesView wire, FixtureRepair& out) {
  std::size_t off = 0;
  if (wire.size() < 3) return false;
  out.gen_id = util::get_u16(wire, off);
  out.coeff_count = util::get_u8(wire, off);
  if (wire.size() - off < out.coeff_count) return false;
  for (std::uint8_t j = 0; j < out.coeff_count; ++j) {
    out.coeff_sum += wire[off + j];  // guarded: no finding
  }
  return true;
}

}  // namespace bytecache::fec
