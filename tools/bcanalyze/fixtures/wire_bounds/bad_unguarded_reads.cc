// BC-FIXTURE: path=src/packet/fixture_unguarded.cc
//
// bc-wire-bounds known-bad: offset-advancing reads with no dominating
// remaining-length guard.  util::get_uN does not bounds-check (that is
// its documented contract), so each of these walks off the end of a
// short buffer.  Covers the three orderings the v1->v2 shim migration
// actually produced: no guard at all, read-before-check, and a guard
// whose early-exit protects later code but not the loop above it.
#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace bytecache::packet {

struct FixtureShim {
  std::uint16_t magic = 0;
  std::uint32_t len = 0;
};

std::optional<FixtureShim> parse_no_guard(util::BytesView wire) {
  std::size_t off = 0;
  FixtureShim s;
  s.magic = util::get_u16(wire, off);  // EXPECT(bc-wire-bounds)
  s.len = util::get_u32(wire, off);   // EXPECT(bc-wire-bounds)
  return s;
}

std::optional<FixtureShim> parse_check_after_read(util::BytesView wire) {
  std::size_t off = 0;
  FixtureShim s;
  s.magic = util::get_u16(wire, off);  // EXPECT(bc-wire-bounds)
  if (wire.size() < 6) return std::nullopt;  // too late for magic
  s.len = util::get_u32(wire, off);  // this one is guarded: no finding
  return s;
}

std::uint32_t parse_loop_before_guard(util::BytesView wire,
                                      std::size_t count) {
  std::size_t off = 0;
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < count; ++i) {
    sum += util::get_u32(wire, off);  // EXPECT(bc-wire-bounds)
  }
  if (wire.size() < count * 4) return 0;
  return sum;
}

}  // namespace bytecache::packet
