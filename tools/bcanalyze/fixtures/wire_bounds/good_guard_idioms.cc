// BC-FIXTURE: path=src/packet/fixture_guard_idioms.cc
//
// bc-wire-bounds known-good: every guard idiom the tree actually uses.
// A size early-exit (core/wire.cc), reads under the guard's own
// short-circuit, the `have(n)` remaining-length lambda
// (cache/snapshot.h), guards inside loop bodies, and delegation to
// another parse_* function that did the checking (packet/tcp.cc).
#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace bytecache::packet {

struct FixtureHdr {
  std::uint16_t magic = 0;
  std::uint32_t len = 0;
  static constexpr std::size_t kWireBytes = 6;
};

std::optional<FixtureHdr> parse_early_exit(util::BytesView wire) {
  if (wire.size() < FixtureHdr::kWireBytes) return std::nullopt;
  std::size_t off = 0;
  FixtureHdr h;
  h.magic = util::get_u16(wire, off);  // dominated: no finding
  h.len = util::get_u32(wire, off);
  return h;
}

bool parse_have_lambda(util::BytesView wire) {
  std::size_t off = 0;
  auto have = [&](std::size_t n) { return wire.size() - off >= n; };
  if (!have(2) || util::get_u16(wire, off) != 0xD6) return false;
  while (have(4)) {
    if (util::get_u32(wire, off) == 0) break;  // guarded by loop header
  }
  return true;
}

std::uint32_t parse_delegated(util::BytesView wire) {
  auto h = parse_early_exit(wire);
  if (!h) return 0;
  std::size_t off = 2;
  return util::get_u32(wire, off);  // parse_early_exit proved 6 bytes
}

std::uint32_t parse_guard_in_loop(util::BytesView wire, std::size_t n) {
  std::size_t off = 0;
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (wire.size() - off < 4) return sum;
    sum += util::get_u32(wire, off);  // guarded within the iteration
  }
  return sum;
}

}  // namespace bytecache::packet
