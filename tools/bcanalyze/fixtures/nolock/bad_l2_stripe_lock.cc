// BC-FIXTURE: path=src/cache/l2_store_locked.cc
//
// bc-nolock known-bad for the L2 tier (DESIGN.md §14): the stripe read
// path must stay lock-free — reclamation is deferred to epoch
// boundaries precisely so shard workers never block inside find().  A
// reader/writer lock on the stripe index (even behind a project alias)
// is the design violation this rule exists to catch; the epoch counter
// itself is an atomic and must stay silent.
#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace bytecache::cache {

using StripeLock = std::shared_mutex;  // alias must not hide the lock

struct FixtureStripe {
  StripeLock index_lock;  // EXPECT(bc-nolock)
  std::atomic<std::uint64_t> epoch{0};  // lock-free by design: no finding
  int entries = 0;
};

int locked_find(FixtureStripe& s) {
  std::shared_lock<StripeLock> g(s.index_lock);  // EXPECT(bc-nolock)
  return s.entries;
}

}  // namespace bytecache::cache
