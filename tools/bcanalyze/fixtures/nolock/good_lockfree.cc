// BC-FIXTURE: path=src/cache/fixture_lockfree.cc
//
// bc-nolock known-good: the primitives the data plane is *supposed* to
// use — atomics, plain integers, and role capabilities — must not fire,
// and a lock type outside the scoped directories (this file pretends to
// be in src/cache/, so the contrast case lives in good_outside_scope.cc).
#include <atomic>
#include <cstdint>

namespace bytecache::cache {

struct FixtureRing {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::uint64_t cached_head = 0;
};

std::uint64_t depth(const FixtureRing& r) {
  return r.tail.load() - r.head.load();
}

}  // namespace bytecache::cache
