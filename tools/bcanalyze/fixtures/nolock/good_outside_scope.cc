// BC-FIXTURE: path=src/sim/fixture_outside_scope.cc
//
// bc-nolock known-good: the rule is scoped to src/rabin|cache|core; a
// mutex in the simulator layer is allowed (the sim drives threads and
// may synchronise however it likes).
#include <mutex>

namespace bytecache::sim {

struct FixtureDriver {
  std::mutex mu;  // fine here: src/sim/ is not the data plane
  int runs = 0;
};

}  // namespace bytecache::sim
