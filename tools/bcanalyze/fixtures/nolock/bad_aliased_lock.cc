// BC-FIXTURE: path=src/cache/fixture_aliased_lock.cc
//
// bc-nolock known-bad: locks reaching the data plane through typedef /
// using chains that the regex rule in tools/lint.py cannot see.  The
// canonical-type resolution must chase each alias to the underlying
// std:: lock type.
#include <mutex>

namespace bytecache::cache {

using Guard = std::lock_guard<std::mutex>;
typedef std::mutex SlowLock;
using HiddenLock = SlowLock;  // two-level chain

struct FixtureTable {
  SlowLock table_lock;  // EXPECT(bc-nolock)
  int entries = 0;
};

int locked_count(FixtureTable& t) {
  HiddenLock spare;  // EXPECT(bc-nolock)
  Guard g(t.table_lock);  // EXPECT(bc-nolock)
  return t.entries;
}

}  // namespace bytecache::cache
