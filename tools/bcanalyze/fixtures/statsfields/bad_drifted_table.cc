// BC-FIXTURE: path=src/obs/fixture_drifted_table.cc
//
// bc-statsfields known-bad: every way a *Stats struct and its ADL
// stats_fields() table can drift apart.  A dropped member silently
// vanishes from every merge and report; a misspelled display string
// makes dashboards lie; a table for a renamed struct goes stale.
#include <array>
#include <cstdint>

#include "obs/fields.h"

namespace bytecache::obs {

struct FixtureDroppedStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  // missing from the table below
};

// EXPECT(bc-statsfields)
inline constexpr auto stats_fields(const FixtureDroppedStats*) {
  using S = FixtureDroppedStats;
  return std::array{
      Field<S>{"packets", &S::packets},
  };
}

struct FixtureRenamedStats {
  std::uint64_t hits = 0;
};

inline constexpr auto stats_fields(const FixtureRenamedStats*) {
  using S = FixtureRenamedStats;
  return std::array{
      Field<S>{"cache_hits", &S::hits},  // EXPECT(bc-statsfields)
  };
}

struct FixtureTablelessStats {  // EXPECT(bc-statsfields)
  std::uint64_t orphans = 0;
};

}  // namespace bytecache::obs
