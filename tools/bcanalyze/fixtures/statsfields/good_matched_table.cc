// BC-FIXTURE: path=src/obs/fixture_matched_table.cc
//
// bc-statsfields known-good: the repo convention — table entries match
// the struct's data members one-to-one, in declaration order, display
// string equal to the member name.  Static members are not counters and
// stay out of the table.
#include <array>
#include <cstddef>
#include <cstdint>

#include "obs/fields.h"

namespace bytecache::obs {

struct FixtureMatchedStats {
  static constexpr std::size_t kNotACounter = 4;  // statics exempt
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

inline constexpr auto stats_fields(const FixtureMatchedStats*) {
  using S = FixtureMatchedStats;
  return std::array{
      Field<S>{"packets", &S::packets},
      Field<S>{"bytes", &S::bytes},
  };
}

}  // namespace bytecache::obs
