// BC-FIXTURE: path=src/core/fixture_suppression.cc
//
// Suppression semantics, end to end: a NOLINT(bc-*) on the offending
// line or on the line directly above silences the finding; an identical
// unsuppressed violation still fires (proving the suppression is
// line-scoped, not file-scoped); and a bare marker with no reason is
// itself a bc-suppression finding.
#include <cstdint>

namespace bytecache::core {

bool fixture_on_line(std::uint32_t seq, std::uint32_t limit) {
  // Handshake comparison before any wrap is possible.
  return seq < limit;  // NOLINT(bc-rawseq) ISN comparison, pre-wrap only
}

bool fixture_line_above(std::uint32_t seq, std::uint32_t limit) {
  // NOLINT(bc-rawseq) relative sequence, rebased to 0 at capture time
  return seq < limit;
}

bool fixture_unsuppressed(std::uint32_t seq, std::uint32_t limit) {
  return seq < limit;  // EXPECT(bc-rawseq)
}

bool fixture_bare_marker(std::uint32_t seq, std::uint32_t limit) {
  return seq < limit;  // NOLINT(bc-rawseq) EXPECT(bc-suppression)
}

bool fixture_wrong_rule(std::uint32_t seq, std::uint32_t limit) {
  // A marker for a different rule must not silence this one.
  // The reason prose here explains the bc-nolock marker only.
  return seq < limit;  // NOLINT(bc-nolock) not a lock EXPECT(bc-rawseq)
}

}  // namespace bytecache::core
