// BC-FIXTURE: path=src/core/parity_suppression.cc
//
// Suppression-parity corpus: tools/lint.py --corpus and
// tools/bcanalyze/selftest.py both run this file and must agree on
// every line.  It pins the shared NOLINT contract: a marker on the
// offending line or the line directly above silences the finding, the
// parenthesised list is comma-separated, and an identical unsuppressed
// violation still fires (line-scoped, not file-scoped).
#include <cstdint>
#include <mutex>

namespace bytecache::core {

// Case 1: marker on the offending line.
bool parity_on_line(std::uint32_t seq, std::uint32_t limit) {
  return seq < limit;  // NOLINT(bc-rawseq) ISN ordering, pre-wrap only
}

// Case 2: marker on the line directly above.
bool parity_line_above(std::uint32_t seq, std::uint32_t limit) {
  // NOLINT(bc-rawseq) rebased to zero at capture; cannot wrap
  return seq < limit;
}

// Case 3: comma-separated rule list (clang-tidy style).
struct ParityState {
  // NOLINT(bc-nolock, bc-rawseq) exercising the comma-list marker form
  std::mutex m_;
};

// Case 4: an identical, unsuppressed violation still fires in both
// tools -- proof the markers above are line-scoped.
bool parity_unsuppressed(std::uint32_t seq, std::uint32_t limit) {
  return seq < limit;  // EXPECT(bc-rawseq)
}

// Case 5: a marker for a different rule does not silence this one.
bool parity_wrong_rule(std::uint32_t seq, std::uint32_t limit) {
  return seq < limit;  // NOLINT(bc-obs) prints nothing EXPECT(bc-rawseq)
}

}  // namespace bytecache::core
