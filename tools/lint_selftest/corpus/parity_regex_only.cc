// BC-FIXTURE: path=src/core/parity_regex_only.cc
//
// Rules only the regex pre-pass (tools/lint.py) implements: bc-obs and
// bc-wirecast.  bcanalyze's selftest also loads this file but ignores
// EXPECTs for rules it does not know -- it must find nothing here and
// must not trip over the lint-only NOLINT marker (which carries a
// reason, so bc-suppression stays quiet too).
#include <cstdint>
#include <cstdio>

namespace bytecache::core {

struct ParityHeader {
  std::uint8_t version = 0;
};

void parity_print(std::uint64_t n) {
  std::printf("n=%llu\n", (unsigned long long)n);  // EXPECT(bc-obs)
}

const ParityHeader* parity_cast(const std::uint8_t* p) {
  return reinterpret_cast<const ParityHeader*>(p);  // EXPECT(bc-wirecast)
}

void parity_print_suppressed(std::uint64_t n) {
  // NOLINT(bc-obs) fixture exercising the lint-only stdout rule
  std::printf("n=%llu\n", (unsigned long long)n);
}

}  // namespace bytecache::core
