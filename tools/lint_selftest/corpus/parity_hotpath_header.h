// BC-FIXTURE: path=src/cache/parity_hotpath_header.h
//
// bc-hotpath (lint.py regex rule): std::function / std::deque in a
// data-plane header.  bcanalyze's bc-hotpath-alloc covers the deeper
// reachability story; the regex rule stays as the cheap recall net for
// the two container spellings, and this file pins it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace bytecache::cache {

struct ParityHotpath {
  std::function<void(std::uint64_t)> sink_;  // EXPECT(bc-hotpath)
  std::deque<std::uint8_t> window_;          // EXPECT(bc-hotpath)
  std::vector<std::uint8_t> scratch_;        // contiguous: fine
  void (*raw_fn_)(std::uint64_t) = nullptr;  // plain pointer: fine
  // NOLINT(bc-hotpath) deliberate: cold-path config callback, not per-packet
  std::function<void()> on_reconfigure_;
};

}  // namespace bytecache::cache
