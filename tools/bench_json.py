#!/usr/bin/env python3
"""Data-plane benchmark runner: emits / updates BENCH_dataplane.json.

Runs the tracked data-plane benchmarks from a Release build tree:

  bench_throughput       end-to-end Encoder->Decoder packets/sec and MB/s
                         (its own JSON output is embedded verbatim); its
                         *_telemetry workloads gate the observability
                         budget: >= 98% of the plain twin's MB/s and a
                         bit-identical wire_ratio, else this script fails;
                         its file1_tiered row drives the L1/L2 CacheTier
                         (DESIGN.md section 14) and must stay present —
                         the wire gate pins its ratio like every v1/v2 row
  bench_mt_throughput    sharded-gateway scaling sweep (1/2/4/8 shards);
                         embedded verbatim, one entry per shard count plus
                         a single-flow wire-identity probe whose wire_ratio
                         must equal bench_throughput's file1 baseline
  bench_micro_rabin      google-benchmark scan/selection microbenches
                         (bytes_per_second extracted per benchmark)

and merges the numbers into the output JSON under `--label` (default:
"current"), preserving any other labels already present.  The committed
convention (see DESIGN.md "Performance"):

  {
    "baseline": { ... numbers before a data-plane PR ... },
    "current":  { ... numbers after it, same machine ... }
  }

Each entry is stamped with the scan kernel, CPU flags, and hardware
thread count that produced it, and merging refuses to put entries from a
different kernel tier (--allow-kernel-change) or CPU topology
(--allow-topology-change) side by side: such pairs are not comparisons.

`--repeat N` runs each bench binary N times and keeps the fastest
result per benchmark, which (together with bench_throughput's own
warm-up + best-of-passes scheme) makes the numbers reproducible on
shared or single-core machines.

Usage:
  python3 tools/bench_json.py --build build-release --out BENCH_dataplane.json
  python3 tools/bench_json.py --build build-release --label baseline --repeat 5
"""

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

# ISA extensions relevant to the scan-kernel dispatch (rabin/scan_kernel.h)
# — recorded per entry so a number can always be traced to the silicon and
# kernel tier that produced it.
_KERNEL_FLAGS = ("sse2", "avx", "avx2", "avx512f", "bmi2", "neon", "asimd")


def detect_cpu_flags():
    """Returns the dispatch-relevant ISA flags of this machine (Linux:
    parsed from /proc/cpuinfo; elsewhere: empty — the kernel name still
    identifies the tier)."""
    try:
        text = Path("/proc/cpuinfo").read_text()
    except OSError:
        return []
    for line in text.splitlines():
        if line.lower().startswith(("flags", "features")):
            have = set(line.split(":", 1)[1].split())
            return [f for f in _KERNEL_FLAGS if f in have]
    return []


def check_kernel_consistency(entry):
    """All three bench binaries stamp the scan kernel they dispatched; a
    mismatch means the environment changed between runs (e.g. a
    BYTECACHE_SCAN_KERNEL override leaked into one process) and the entry
    would blend incomparable numbers."""
    kernels = {
        name: entry[name].get("kernel", "?")
        for name in ("bench_throughput", "bench_mt_throughput")
    }
    kernels["bench_micro_rabin"] = entry["kernel"]
    if len(set(kernels.values())) != 1:
        sys.exit(f"bench_json: benches disagree on the scan kernel: {kernels}"
                 " — did the environment change between runs?")


def check_kernel_change(doc, label, entry, allow):
    """Refuses to merge an entry next to labels measured under a different
    scan kernel: a before/after pair that silently switched tiers (or
    machines) is not a comparison.  `--allow-kernel-change` overrides for
    the one legitimate case — pinning a scalar `baseline` against a SIMD
    `current` to record the dispatch win itself."""
    for other_label, other in doc.items():
        if other_label == label or not isinstance(other, dict):
            continue
        other_kernel = other.get("kernel")
        if other_kernel is None:  # pre-stamping entry: nothing to compare
            continue
        if other_kernel != entry["kernel"] and not allow:
            sys.exit(
                f"bench_json: label '{other_label}' was measured under the "
                f"'{other_kernel}' kernel but this run dispatched "
                f"'{entry['kernel']}'; cross-kernel numbers are not "
                "comparable — rerun with the same kernel (or pass "
                "--allow-kernel-change if the tier switch is the point)")


def check_topology_change(doc, label, entry, allow):
    """Refuses to merge an entry next to labels measured on a different
    CPU topology: the bench_mt_throughput shard-scaling curve (1/2/4/8
    shards) bends entirely differently on 4 cores than on 32, so a
    before/after pair that silently moved machines (or a container that
    changed its CPU quota) records a scaling regression that is really a
    hardware change.  Entries from before hardware_concurrency stamping
    are skipped, like pre-stamping entries in check_kernel_change.
    `--allow-topology-change` overrides for deliberate cross-machine
    comparisons."""
    for other_label, other in doc.items():
        if other_label == label or not isinstance(other, dict):
            continue
        other_hw = other.get("hardware_concurrency")
        if other_hw is None:  # pre-stamping entry: nothing to compare
            continue
        if other_hw != entry["hardware_concurrency"] and not allow:
            sys.exit(
                f"bench_json: label '{other_label}' was measured with "
                f"{other_hw} hardware threads but this machine has "
                f"{entry['hardware_concurrency']}; shard-curve numbers are "
                "not comparable across topologies — rerun on the same "
                "machine (or pass --allow-topology-change if the "
                "cross-machine comparison is the point)")


def check_wire_ratio_drift(doc, label, entry, allow):
    """Refuses to merge an entry whose v1/v2 wire_ratio differs from any
    label already in the file.  The throughput workloads replay a fixed
    corpus through a deterministic codec, so their wire_ratio is exact
    machine-independent arithmetic: a change means the v1/v2 wire format
    (or the codec's decisions) drifted, and recording the new number next
    to the old would silently bless the drift.  The coded (v3) workload
    is exempt — that format is this PR's to evolve, and its golden
    vectors pin the bytes instead.  `--allow-wire-change` overrides for a
    deliberate format migration."""
    new = {r["name"]: r["wire_ratio"]
           for r in entry.get("bench_throughput", {}).get("results", [])
           if "_coded" not in r["name"]}
    for other_label, other in doc.items():
        if other_label == label or not isinstance(other, dict):
            continue
        for r in other.get("bench_throughput", {}).get("results", []):
            name = r["name"]
            if name not in new or "wire_ratio" not in r:
                continue
            if abs(r["wire_ratio"] - new[name]) > 1e-9 and not allow:
                sys.exit(
                    f"bench_json: workload '{name}' recorded wire_ratio "
                    f"{r['wire_ratio']} under label '{other_label}' but this "
                    f"run produced {new[name]}; the v1/v2 wire format must "
                    "not drift — fix the regression (or pass "
                    "--allow-wire-change if the format migration is the "
                    "point)")


def check_tier_row(entry):
    """The file1_tiered workload replays the file1 stream through the
    L1/L2 CacheTier (DESIGN.md §14); it is the tier's only tracked
    number, and check_wire_ratio_drift pins its wire_ratio across labels
    exactly like the flat rows (the tiered codec is still a
    deterministic function of the corpus).  Refuse to record an entry
    that silently dropped the row — an untracked tier is an ungated
    tier."""
    names = {r["name"]
             for r in entry.get("bench_throughput", {}).get("results", [])}
    if "file1_tiered" not in names:
        sys.exit("bench_json: bench_throughput no longer reports the "
                 "'file1_tiered' workload — the cache-tier row is part of "
                 "the tracked set (DESIGN.md §14); restore it rather than "
                 "dropping the tier's only gated number")


def self_test():
    """Offline check of the merge gates (no bench binaries needed);
    registered as the bench_json_selftest ctest."""
    entry = {"kernel": "avx2", "hardware_concurrency": 8}

    def exits(fn):
        try:
            fn()
        except SystemExit:
            return True
        return False

    doc = {"baseline": {"kernel": "scalar", "hardware_concurrency": 8}}
    assert exits(lambda: check_kernel_change(doc, "current", entry, False)), \
        "kernel gate must refuse a cross-kernel merge"
    check_kernel_change(doc, "current", entry, True)  # override allowed
    check_kernel_change(doc, "baseline", entry, False)  # same label: fine
    check_kernel_change({"baseline": {}}, "current", entry, False)  # legacy

    doc = {"baseline": {"kernel": "avx2", "hardware_concurrency": 32}}
    assert exits(lambda: check_topology_change(doc, "current", entry, False)), \
        "topology gate must refuse a cross-topology merge"
    check_topology_change(doc, "current", entry, True)  # override allowed
    check_topology_change(doc, "baseline", entry, False)  # same label: fine
    check_topology_change({"baseline": {}}, "current", entry, False)  # legacy
    same = {"baseline": {"kernel": "avx2", "hardware_concurrency": 8}}
    check_kernel_change(same, "current", entry, False)
    check_topology_change(same, "current", entry, False)

    def bt(name, ratio):
        return {"bench_throughput": {"results": [
            {"name": name, "wire_ratio": ratio}]}}

    wentry = bt("file1_naive_valuesampling", 0.5)
    doc = {"baseline": bt("file1_naive_valuesampling", 0.6)}
    assert exits(lambda: check_wire_ratio_drift(doc, "current", wentry,
                                                False)), \
        "wire gate must refuse a v1/v2 wire_ratio drift"
    check_wire_ratio_drift(doc, "current", wentry, True)  # override allowed
    check_wire_ratio_drift(doc, "baseline", wentry, False)  # same label: fine
    same = {"baseline": bt("file1_naive_valuesampling", 0.5)}
    check_wire_ratio_drift(same, "current", wentry, False)  # identical: fine
    coded = bt("file1_coded", 0.7)
    check_wire_ratio_drift({"baseline": bt("file1_coded", 0.9)}, "current",
                           coded, False)  # v3 row exempt: free to evolve

    tiered = bt("file1_tiered", 0.55)
    doc = {"baseline": bt("file1_tiered", 0.56)}
    assert exits(lambda: check_wire_ratio_drift(doc, "current", tiered,
                                                False)), \
        "the cache-tier row must be pinned by the wire gate like v1/v2 rows"
    check_wire_ratio_drift({"baseline": bt("file1_tiered", 0.55)}, "current",
                           tiered, False)  # identical: fine
    assert exits(lambda: check_tier_row(bt("file1_naive_valuesampling",
                                           0.5))), \
        "tier gate must refuse an entry that dropped the file1_tiered row"
    check_tier_row(tiered)  # row present: fine

    print("bench_json: self-test passed")


def run_json_bench(build, name, repeat):
    """Runs a bench binary that prints one JSON doc with a `results` list,
    keeping per-workload the run with the higher MB/s (lower noise).
    Returns (best_doc, all_run_docs); the raw runs let gates compare
    workloads pair-wise within one process run instead of across runs."""
    exe = Path(build) / "bench" / name
    if not exe.exists():
        sys.exit(f"bench_json: {exe} not found (build the bench targets)")
    best = None
    runs = []
    for _ in range(repeat):
        proc = subprocess.run([str(exe)], capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"bench_json: {exe} failed (decode failures?):\n"
                     f"{proc.stdout}\n{proc.stderr}")
        doc = json.loads(proc.stdout)
        runs.append(doc)
        if best is None:
            best = json.loads(proc.stdout)
            continue
        for cur, new in zip(best["results"], doc["results"]):
            assert cur["name"] == new["name"]
            if new["mb_per_s"] > cur["mb_per_s"]:
                cur.update(new)
    return best, runs


def check_telemetry_overhead(entry, runs):
    """Gates the telemetry budget: each *_telemetry workload replays its
    plain twin with the metrics registry + sampled spans attached, and
    must keep >= 98% of the twin's MB/s with a bit-identical wire_ratio
    (instrumentation must never change what goes on the wire).

    The MB/s ratio is taken pair-wise within a single process run (twins
    execute back-to-back, so machine-state drift cancels) and the best
    run wins; comparing cross-run best-of numbers would pit a lucky plain
    spike against an unlucky instrumented run and gate on noise.  Records
    the measured ratios under `telemetry_overhead`."""
    by_name = {r["name"]: r for r in entry["bench_throughput"]["results"]}
    overhead = {}
    for name, probe in by_name.items():
        if not name.endswith("_telemetry"):
            continue
        base = by_name.get(name[:-len("_telemetry")])
        if base is None:
            continue
        if abs(probe["wire_ratio"] - base["wire_ratio"]) > 1e-9:
            sys.exit(f"bench_json: telemetry run {name} wire_ratio "
                     f"{probe['wire_ratio']} != plain {base['wire_ratio']}"
                     " — instrumentation changed the wire format")
        ratio = 0.0
        for run in runs:
            run_by_name = {r["name"]: r for r in run["results"]}
            p = run_by_name[name]["mb_per_s"]
            b = run_by_name[base["name"]]["mb_per_s"]
            ratio = max(ratio, p / b if b > 0 else 1.0)
        if ratio < 0.98:
            sys.exit(f"bench_json: telemetry overhead gate failed: {name} "
                     f"ran at {ratio:.3f}x of its plain twin (< 0.98)")
        overhead[name] = {"throughput_ratio": round(ratio, 4)}
    entry["telemetry_overhead"] = overhead


def check_wire_identity(entry):
    """The 1-shard/1-flow sharded run replays bench_throughput's exact
    file1 stream; a wire_ratio mismatch means sharding changed the wire
    format, which the design forbids — fail loudly rather than record it."""
    by_name = {r["name"]: r for r in entry["bench_throughput"]["results"]}
    base = by_name.get("file1_naive_valuesampling")
    probe = {r["name"]: r for r in entry["bench_mt_throughput"]["results"]}
    one = probe.get("file1_1flow_1shard")
    if base is None or one is None:
        return
    if abs(base["wire_ratio"] - one["wire_ratio"]) > 1e-9:
        sys.exit("bench_json: sharded 1-shard wire_ratio "
                 f"{one['wire_ratio']} != plain baseline "
                 f"{base['wire_ratio']} — wire format drifted")


def run_bench_micro_rabin(build, repeat):
    """Returns ({bench_name: numbers}, dispatched_kernel_name).  The
    kernel comes from the report context bench_micro_rabin's main()
    stamps via AddCustomContext."""
    exe = Path(build) / "bench" / "bench_micro_rabin"
    if not exe.exists():
        sys.exit(f"bench_json: {exe} not found (build the bench targets)")
    out = {}
    kernel = "?"
    for _ in range(repeat):
        proc = subprocess.run(
            [str(exe), "--benchmark_format=json", "--benchmark_min_time=0.2"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"bench_json: {exe} failed:\n{proc.stderr}")
        data = json.loads(proc.stdout)
        kernel = data.get("context", {}).get("scan_kernel", kernel)
        for b in data.get("benchmarks", []):
            entry = {"real_time_ns": round(b.get("real_time", 0.0), 1)}
            if "bytes_per_second" in b:
                entry["mb_per_s"] = round(b["bytes_per_second"] / 1e6, 2)
            if "payload_mb_per_s" in b:  # counters surface as plain keys
                entry["payload_mb_per_s"] = round(b["payload_mb_per_s"], 2)
            prev = out.get(b["name"])
            if prev is None or entry["real_time_ns"] < prev["real_time_ns"]:
                out[b["name"]] = entry
    return out, kernel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build tree holding bench/ binaries")
    parser.add_argument("--out", default="BENCH_dataplane.json",
                        help="JSON file to create or merge into")
    parser.add_argument("--label", default="current",
                        help="top-level key to write (baseline/current/...)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each bench N times, keep the fastest")
    parser.add_argument("--allow-kernel-change", action="store_true",
                        help="permit merging next to labels measured under "
                             "a different scan kernel (deliberate "
                             "scalar-vs-SIMD comparisons only)")
    parser.add_argument("--allow-wire-change", action="store_true",
                        help="permit merging next to labels whose v1/v2 "
                             "wire_ratio differs (deliberate wire-format "
                             "migrations only)")
    parser.add_argument("--allow-topology-change", action="store_true",
                        help="permit merging next to labels measured with a "
                             "different hardware thread count (deliberate "
                             "cross-machine comparisons only)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the merge gates offline and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return

    bt_best, bt_runs = run_json_bench(
        args.build, "bench_throughput", args.repeat)
    mt_best, _ = run_json_bench(
        args.build, "bench_mt_throughput", args.repeat)
    micro, micro_kernel = run_bench_micro_rabin(args.build, args.repeat)
    entry = {
        "machine": platform.machine(),
        "kernel": micro_kernel,
        "cpu_flags": detect_cpu_flags(),
        # The shard-scaling curve is only meaningful relative to the
        # core count that produced it (check_topology_change).
        "hardware_concurrency": os.cpu_count(),
        "bench_throughput": bt_best,
        "bench_mt_throughput": mt_best,
        "bench_micro_rabin": micro,
    }
    check_kernel_consistency(entry)
    check_tier_row(entry)
    check_wire_identity(entry)
    check_telemetry_overhead(entry, bt_runs)

    out_path = Path(args.out)
    doc = {}
    if out_path.exists():
        doc = json.loads(out_path.read_text())
    check_kernel_change(doc, args.label, entry, args.allow_kernel_change)
    check_topology_change(doc, args.label, entry, args.allow_topology_change)
    check_wire_ratio_drift(doc, args.label, entry, args.allow_wire_change)
    doc[args.label] = entry
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(f"bench_json: wrote {out_path} [{args.label}] "
          f"(kernel={entry['kernel']})")
    for bench in ("bench_throughput", "bench_mt_throughput"):
        for r in entry[bench]["results"]:
            print(f"  {r['name']:32s} {r['mb_per_s']:8.2f} MB/s "
                  f"{r['packets_per_s']:10.0f} pkt/s")


if __name__ == "__main__":
    main()
