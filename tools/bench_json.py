#!/usr/bin/env python3
"""Data-plane benchmark runner: emits / updates BENCH_dataplane.json.

Runs the tracked data-plane benchmarks from a Release build tree:

  bench_throughput       end-to-end Encoder->Decoder packets/sec and MB/s
                         (its own JSON output is embedded verbatim)
  bench_micro_rabin      google-benchmark scan/selection microbenches
                         (bytes_per_second extracted per benchmark)

and merges the numbers into the output JSON under `--label` (default:
"current"), preserving any other labels already present.  The committed
convention (see DESIGN.md "Performance"):

  {
    "baseline": { ... numbers before a data-plane PR ... },
    "current":  { ... numbers after it, same machine ... }
  }

`--repeat N` runs each bench binary N times and keeps the fastest
result per benchmark, which (together with bench_throughput's own
warm-up + best-of-passes scheme) makes the numbers reproducible on
shared or single-core machines.

Usage:
  python3 tools/bench_json.py --build build-release --out BENCH_dataplane.json
  python3 tools/bench_json.py --build build-release --label baseline --repeat 5
"""

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path


def run_bench_throughput(build, repeat):
    exe = Path(build) / "bench" / "bench_throughput"
    if not exe.exists():
        sys.exit(f"bench_json: {exe} not found (build the bench targets)")
    best = None
    for _ in range(repeat):
        proc = subprocess.run([str(exe)], capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"bench_json: {exe} failed (decode failures?):\n"
                     f"{proc.stdout}\n{proc.stderr}")
        doc = json.loads(proc.stdout)
        if best is None:
            best = doc
            continue
        # Keep, per workload, the run with the higher MB/s (lower noise).
        for cur, new in zip(best["results"], doc["results"]):
            assert cur["name"] == new["name"]
            if new["mb_per_s"] > cur["mb_per_s"]:
                cur.update(new)
    return best


def run_bench_micro_rabin(build, repeat):
    exe = Path(build) / "bench" / "bench_micro_rabin"
    if not exe.exists():
        sys.exit(f"bench_json: {exe} not found (build the bench targets)")
    out = {}
    for _ in range(repeat):
        proc = subprocess.run(
            [str(exe), "--benchmark_format=json", "--benchmark_min_time=0.2"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"bench_json: {exe} failed:\n{proc.stderr}")
        data = json.loads(proc.stdout)
        for b in data.get("benchmarks", []):
            entry = {"real_time_ns": round(b.get("real_time", 0.0), 1)}
            if "bytes_per_second" in b:
                entry["mb_per_s"] = round(b["bytes_per_second"] / 1e6, 2)
            prev = out.get(b["name"])
            if prev is None or entry["real_time_ns"] < prev["real_time_ns"]:
                out[b["name"]] = entry
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build tree holding bench/ binaries")
    parser.add_argument("--out", default="BENCH_dataplane.json",
                        help="JSON file to create or merge into")
    parser.add_argument("--label", default="current",
                        help="top-level key to write (baseline/current/...)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each bench N times, keep the fastest")
    args = parser.parse_args()

    entry = {
        "machine": platform.machine(),
        "bench_throughput": run_bench_throughput(args.build, args.repeat),
        "bench_micro_rabin": run_bench_micro_rabin(args.build, args.repeat),
    }

    out_path = Path(args.out)
    doc = {}
    if out_path.exists():
        doc = json.loads(out_path.read_text())
    doc[args.label] = entry
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    tp = entry["bench_throughput"]["results"]
    print(f"bench_json: wrote {out_path} [{args.label}]")
    for r in tp:
        print(f"  {r['name']:32s} {r['mb_per_s']:8.2f} MB/s "
              f"{r['packets_per_s']:10.0f} pkt/s")


if __name__ == "__main__":
    main()
