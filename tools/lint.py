#!/usr/bin/env python3
"""Project-specific lint checks for bytecache, registered as the `lint` ctest.

Rules (see DESIGN.md "Correctness tooling"):

  bc-rawseq     Raw relational comparison (<, <=, >, >=) on an identifier
                whose name contains "seq".  TCP sequence numbers wrap
                modulo 2^32, so ordinary comparison is wrong across the
                wrap; use util::seq_lt / seq_le / seq_gt / seq_ge from
                src/util/seqcmp.h (the only file exempt from this rule).
                Suppress a deliberate non-wrapping comparison with a
                `NOLINT(bc-rawseq)` comment on the line or the line above.

  bc-wirecast   `reinterpret_cast` involving a wire-header type
                (Ipv4Header, TcpHeader, UdpHeader, or any *Header type)
                outside src/packet/.  Wire parsing must go through the
                packet library's serialize/parse functions, which handle
                endianness and alignment.

  bc-include    Include hygiene: project headers are included with quotes
                using src/-relative paths ("util/seqcmp.h"); angle
                brackets are reserved for system/third-party headers; no
                relative ("../") includes; every header under src/ starts
                with #pragma once; a .cc file under src/ includes its own
                header first.

  bc-hotpath    `std::function` or `std::deque` in a header under
                src/rabin/ or src/cache/.  Those layers are the
                per-packet, per-byte data plane: std::function costs a
                type-erased indirect call (and possibly an allocation) at
                every invocation, and std::deque costs a chunk map
                indirection per access plus chunked allocation.  Use a
                template sink / function_ref-style wrapper / plain
                interface (see rabin/window.h, cache/packet_store.h) and
                contiguous ring buffers instead.  Suppress a deliberate
                use with a `NOLINT(bc-hotpath)` comment on the line or
                the line above.

  bc-nolock     std::mutex (and friends: shared/recursive/timed mutexes,
                lock_guard, scoped_lock, unique_lock, shared_lock,
                condition_variable) anywhere under src/rabin/, src/cache/,
                src/core/, or src/net/.  The first three are the per-shard
                data plane: the sharded gateways guarantee exactly one
                thread touches each Encoder/Decoder and its caches, so a
                lock there is either dead weight on every packet or a sign
                that state is about to be shared across shards — both are
                design bugs.  src/net/ is the single-threaded event loop:
                everything runs on the loop thread, and the only
                cross-thread entry point is EventLoop::stop() (an atomic
                flag plus an eventfd write) — a lock appearing there means
                loop state leaked to another thread.
                Synchronization belongs in src/gateway/ and src/util/
                (SPSC rings, atomics).  Suppress a deliberate use with a
                `NOLINT(bc-nolock)` comment on the line or the line above.

  bc-obs        Ad-hoc stats printing (printf/std::cout/puts or
                fprintf(stdout, ...)) in library code under src/ outside
                src/obs/ and src/harness/.  Components expose numbers by
                linking them into an obs::MetricsRegistry; rendering
                belongs to the obs exporters and the harness tables —
                a layer that prints its own stats bypasses the single
                snapshot surface (DESIGN.md §10).  snprintf (buffer
                formatting) and fprintf(stderr, ...) (diagnostics) are
                fine.  Suppress with NOLINT(bc-obs).

Division of labour with tools/bcanalyze (DESIGN.md §11): this script is
the *fast pre-pass* — pure-regex, no parsing, runs in milliseconds and
catches by-name what it can.  Three rules have deeper *semantic*
counterparts in bcanalyze which judge by canonical type and call graph
rather than spelling:

  bc-rawseq   -> bcanalyze bc-rawseq      (fires only when the operand's
                                           canonical type is uint32_t)
  bc-nolock   -> bcanalyze bc-nolock      (resolves type aliases, so a
                                           `using Guard = std::lock_guard`
                                           cannot smuggle a lock in)
  bc-hotpath  -> bcanalyze bc-hotpath-alloc (call-graph reachability from
                                           per-packet roots, node-container
                                           growth, new/malloc)

Keep both: the regex rules here are the cheap recall net (run on every
ctest invocation), bcanalyze is the precision pass (`ctest -L analyze`).
A construct silenced for one tool is silenced for the other — the NOLINT
contract is shared (see nolint_lines / tools/bcanalyze/suppress.py).

Exit status 0 when clean, 1 when violations were found.  `--self-test`
runs the built-in positive/negative cases instead of scanning the tree.
`--corpus DIR` checks the file-based fixture corpus (BC-FIXTURE /
EXPECT(...) annotations, shared format with bcanalyze's selftest).
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "examples", "bench", "tools")
SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}
# Fixture corpora contain deliberate violations with their own EXPECT
# harnesses (--corpus here, tools/bcanalyze/selftest.py); the tree scan
# must not flag them.
EXCLUDED_DIRS = ("tools/bcanalyze/fixtures/", "tools/lint_selftest/corpus/")

PROJECT_INCLUDE_ROOTS = (
    "util", "rabin", "packet", "cache", "core", "sim", "tcp",
    "gateway", "app", "workload", "harness", "resilience", "obs",
)

# Identifier containing "seq" (any case), optionally a member access,
# followed by a relational operator that is not part of <<, >>, <=>, ->,
# or a template-argument bracket.
RAWSEQ_RE = re.compile(
    r"(?P<id>\b[A-Za-z_]\w*\b)\s*(?P<op><=|>=|<|>)(?P<after>=|<|>)?"
)
# Sequence-named identifier on the right-hand side of a comparison.
RAWSEQ_RHS_RE = re.compile(
    r"(?<![<>=\-])(?P<op><=|>=|<|>)(?!=|<|>)\s*(?P<id>\b[A-Za-z_]\w*\b)"
)
WIRECAST_RE = re.compile(
    r"reinterpret_cast\s*<[^<>]*\b(\w*Header\w*)\b[^<>]*>"
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?P<form>["<])(?P<path>[^">]+)[">]')
HOTPATH_RE = re.compile(r"std\s*::\s*(?P<type>function|deque)\b")
HOTPATH_DIRS = ("src/rabin/", "src/cache/")
NOLOCK_RE = re.compile(
    r"std\s*::\s*(?P<type>mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|scoped_lock|unique_lock|shared_lock|"
    r"condition_variable|condition_variable_any)\b"
)
NOLOCK_DIRS = ("src/rabin/", "src/cache/", "src/core/", "src/net/")
# Stdout printing: bare printf/puts (the lookbehind excludes snprintf,
# fprintf, vprintf...), std::cout, or an explicit fprintf(stdout, ...).
OBS_RE = re.compile(
    r"(?:(?<![\w])printf\s*\(|std\s*::\s*cout\b|(?<![\w])puts\s*\(|"
    r"fprintf\s*\(\s*stdout\b)"
)
OBS_EXEMPT_DIRS = ("src/obs/", "src/harness/")


class Violation:
    def __init__(self, rule, path, lineno, message):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so line numbers stay meaningful.  NOLINT markers inside
    comments are honoured before stripping (see scan_rawseq)."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


NOLINT_RE = re.compile(r"NOLINT\(([^)]*)\)")


def nolint_lines(raw_lines, rule):
    """Line numbers (1-based) suppressed for `rule`: lines carrying a
    NOLINT(...) marker naming the rule (comma-separated list, whitespace
    ignored) plus the line following each (annotation-above style).

    This is the same contract tools/bcanalyze/suppress.py implements;
    the `analyze` ctest suite holds both to it over one shared corpus.
    """
    suppressed = set()
    for idx, line in enumerate(raw_lines, start=1):
        for m in NOLINT_RE.finditer(line):
            names = {n.strip() for n in m.group(1).split(",")}
            if rule in names:
                suppressed.add(idx)
                suppressed.add(idx + 1)
    return suppressed


def scan_rawseq(path, raw_lines, code_lines):
    if path.as_posix().endswith("src/util/seqcmp.h"):
        return []
    suppressed = nolint_lines(raw_lines, "bc-rawseq")
    violations = []
    for lineno, line in enumerate(code_lines, start=1):
        if lineno in suppressed:
            continue
        for m in RAWSEQ_RE.finditer(line):
            if "seq" not in m.group("id").lower():
                continue
            if m.group("after"):  # <<, >>, <=>, >=... already matched ops
                continue
            # Template argument (`vector<SeqEntry>`, `make_unique<TcpSeqPolicy>`):
            # the identifier is introduced by `<` or a `,` inside brackets.
            before = line[: m.start("id")].rstrip()
            if before.endswith("<") or before.endswith(","):
                continue
            # Template close followed by call/statement punctuation
            # (`Foo<BarSeq>(...)`, `Foo<BarSeq>{}`, `Foo<BarSeq>;`).
            rest = line[m.end("op"):].lstrip()
            if m.group("op") == ">" and rest[:1] in ("(", "{", ";", ",", ")", ":", "&", "*", ""):
                continue
            violations.append(Violation(
                "bc-rawseq", path, lineno,
                f"raw `{m.group('id')} {m.group('op')} ...` comparison on a "
                f"sequence-number-like variable; use util::seq_"
                f"{ {'<': 'lt', '<=': 'le', '>': 'gt', '>=': 'ge'}[m.group('op')] }"
                f"() from util/seqcmp.h (wrap-aware), or annotate "
                f"NOLINT(bc-rawseq)"))
        for m in RAWSEQ_RHS_RE.finditer(line):
            ident = m.group("id")
            if "seq" not in ident.lower():
                continue
            if ident[0].isupper():
                continue  # type name in a template argument
            before = line[: m.start("op")]
            if before.count("<") > before.count(">"):
                continue  # this `>` closes a template argument list
            rest = line[m.end("id"):].lstrip()
            if rest[:1] in (">", ","):
                continue  # template argument list (`map<int, seq_t>`)
            if any(v.lineno == lineno and v.rule == "bc-rawseq"
                   for v in violations):
                continue  # already reported via the left-hand side
            violations.append(Violation(
                "bc-rawseq", path, lineno,
                f"raw `... {m.group('op')} {ident}` comparison on a "
                f"sequence-number-like variable; use the wrap-aware "
                f"util::seq_* helpers from util/seqcmp.h, or annotate "
                f"NOLINT(bc-rawseq)"))
    return violations


def scan_wirecast(path, raw_lines, code_lines):
    posix = path.as_posix()
    if "src/packet/" in posix:
        return []
    suppressed = nolint_lines(raw_lines, "bc-wirecast")
    violations = []
    for lineno, line in enumerate(code_lines, start=1):
        if lineno in suppressed:
            continue
        m = WIRECAST_RE.search(line)
        if m:
            violations.append(Violation(
                "bc-wirecast", path, lineno,
                f"reinterpret_cast on wire-header type {m.group(1)} outside "
                f"src/packet/; use the packet library's parse/serialize"))
    return violations


def scan_hotpath(path, raw_lines, code_lines):
    if path.suffix not in (".h", ".hpp"):
        return []
    posix = path.as_posix()
    if not any(posix.startswith(d) or f"/{d}" in posix
               for d in HOTPATH_DIRS):
        return []
    suppressed = nolint_lines(raw_lines, "bc-hotpath")
    violations = []
    for lineno, line in enumerate(code_lines, start=1):
        if lineno in suppressed:
            continue
        m = HOTPATH_RE.search(line)
        if m:
            violations.append(Violation(
                "bc-hotpath", path, lineno,
                f"std::{m.group('type')} in a data-plane header; use a "
                f"template sink, a function_ref-style wrapper, a plain "
                f"interface, or a contiguous ring instead (or annotate "
                f"NOLINT(bc-hotpath))"))
    return violations


def scan_nolock(path, raw_lines, code_lines):
    posix = path.as_posix()
    if not any(posix.startswith(d) or f"/{d}" in posix
               for d in NOLOCK_DIRS):
        return []
    suppressed = nolint_lines(raw_lines, "bc-nolock")
    violations = []
    for lineno, line in enumerate(code_lines, start=1):
        if lineno in suppressed:
            continue
        m = NOLOCK_RE.search(line)
        if m:
            violations.append(Violation(
                "bc-nolock", path, lineno,
                f"std::{m.group('type')} in single-threaded data-plane code; "
                f"each shard owns its codec exclusively — synchronization "
                f"belongs in src/gateway/ or src/util/ (or annotate "
                f"NOLINT(bc-nolock))"))
    return violations


def scan_obs(path, raw_lines, code_lines):
    posix = path.as_posix()
    is_src = "/src/" in f"/{posix}" or posix.startswith("src/")
    if not is_src:
        return []
    if any(posix.startswith(d) or f"/{d}" in posix
           for d in OBS_EXEMPT_DIRS):
        return []
    suppressed = nolint_lines(raw_lines, "bc-obs")
    violations = []
    for lineno, line in enumerate(code_lines, start=1):
        if lineno in suppressed:
            continue
        if OBS_RE.search(line):
            violations.append(Violation(
                "bc-obs", path, lineno,
                "ad-hoc stdout printing in library code; link the value "
                "into an obs::MetricsRegistry and render via the obs "
                "exporters / harness tables (or annotate NOLINT(bc-obs))"))
    return violations


def scan_includes(path, root, raw_lines, code_lines):
    del code_lines  # include paths live inside string-like tokens: use raw
    violations = []
    posix = path.as_posix()
    is_src = "/src/" in f"/{posix}" or posix.startswith("src/")
    own_header = None
    if path.suffix == ".cc" and is_src:
        candidate = path.with_suffix(".h")
        if candidate.exists():
            # src/-relative spelling, e.g. "cache/packet_store.h".
            own_header = candidate.relative_to(root / "src").as_posix()
    first_include = None
    for lineno, line in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        form, inc = m.group("form"), m.group("path")
        if first_include is None:
            first_include = (lineno, form, inc)
        if ".." in inc.split("/"):
            violations.append(Violation(
                "bc-include", path, lineno,
                f'relative include "{inc}"; use a src/-relative path'))
            continue
        root_component = inc.split("/")[0]
        if form == "<" and root_component in PROJECT_INCLUDE_ROOTS:
            violations.append(Violation(
                "bc-include", path, lineno,
                f"project header <{inc}> included with angle brackets; "
                f'use quotes: "{inc}"'))
        if form == '"':
            # Project quoted includes resolve against src/ (library code),
            # the repo root (tests/, bench/), or the including directory.
            resolved = (root / "src" / inc).exists() or \
                       (root / inc).exists() or \
                       (path.parent / inc).exists()
            if not resolved:
                violations.append(Violation(
                    "bc-include", path, lineno,
                    f'quoted include "{inc}" does not resolve against src/ '
                    f"(project includes are src/-relative)"))
    if path.suffix in (".h", ".hpp") and is_src:
        if not any("#pragma once" in line for line in raw_lines[:30]):
            violations.append(Violation(
                "bc-include", path, 1, "header is missing #pragma once"))
    if own_header is not None and first_include is not None:
        _, form, inc = first_include
        if not (form == '"' and inc == own_header):
            violations.append(Violation(
                "bc-include", path, first_include[0],
                f'first include must be the file\'s own header '
                f'"{own_header}" (include-what-you-use ordering)'))
    return violations


def scan_file(path, root):
    rel = path.relative_to(root)
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    violations = []
    violations += scan_rawseq(rel, raw_lines, code_lines)
    violations += scan_wirecast(rel, raw_lines, code_lines)
    violations += scan_hotpath(rel, raw_lines, code_lines)
    violations += scan_nolock(rel, raw_lines, code_lines)
    violations += scan_obs(rel, raw_lines, code_lines)
    violations += scan_includes(root / rel, root, raw_lines, code_lines)
    return violations


def run(root):
    root = Path(root).resolve()
    if not any((root / d).is_dir() for d in SOURCE_DIRS):
        print(f"lint: no source directories under {root} "
              f"(expected one of {', '.join(SOURCE_DIRS)})")
        return 2
    violations = []
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if any(rel.startswith(d) for d in EXCLUDED_DIRS):
                continue
            violations.extend(scan_file(path, root))
    for v in violations:
        print(v)
    if violations:
        print(f"lint: {len(violations)} violation(s)")
        return 1
    print("lint: clean")
    return 0


# ---------------------------------------------------------------- tests --

SELF_TEST_CASES = [
    # (rule, code, expect_violation)
    ("bc-rawseq", "if (a_seq < b_seq) {}", True),
    ("bc-rawseq", "if (tcp_seq <= limit) {}", True),
    ("bc-rawseq", "while (seq >= end_seq) {}", True),
    ("bc-rawseq", "if (util::seq_lt(a, b)) {}", False),
    ("bc-rawseq", "auto p = std::make_unique<TcpSeqPolicy>();", False),
    ("bc-rawseq", "std::vector<SeqEntry> v;", False),
    ("bc-rawseq", "// seq < 100 in a comment", False),
    ("bc-rawseq", "s << seq << other;", False),
    ("bc-rawseq", "if (count < total) {}", False),
    ("bc-rawseq", "if (a_seq < b) {}  // NOLINT(bc-rawseq)", False),
    ("bc-rawseq", "bool r = seq <=> other;", False),
    ("bc-rawseq", "if (limit < next_seq) {}", True),
    ("bc-rawseq", "std::map<int, seq_t> m;", False),
    ("bc-rawseq", "std::unordered_map<std::uint64_t, std::uint32_t> last_seq_;",
     False),
    ("bc-rawseq", "std::optional<std::uint32_t> tcp_seq;", False),
    ("bc-wirecast",
     "auto* h = reinterpret_cast<const Ipv4Header*>(buf);", True),
    ("bc-wirecast",
     "auto* h = reinterpret_cast<packet::TcpHeader*>(p);", True),
    ("bc-wirecast",
     "const char* s = reinterpret_cast<const char*>(b.data());", False),
    ("bc-include", '#include <util/seqcmp.h>', True),
    ("bc-include", '#include <vector>', False),
    ("bc-include", '#include "../cache/packet_store.h"', True),
    ("bc-hotpath", "std::function<void(std::size_t)> sink_;", True),
    ("bc-hotpath", "std::deque<std::uint8_t> window_;", True),
    ("bc-hotpath", "std :: function<void()> cb;", True),
    ("bc-hotpath", "void (*fn_)(void*, std::size_t, Fingerprint);", False),
    ("bc-hotpath", "// std::function is banned here, see bc-hotpath", False),
    ("bc-hotpath",
     "std::function<void()> cb;  // NOLINT(bc-hotpath)", False),
    ("bc-hotpath", "my_function<int> f;", False),
    ("bc-nolock", "std::mutex table_mutex_;", True),
    ("bc-nolock", "std::lock_guard<std::mutex> lk(m_);", True),
    ("bc-nolock", "std::shared_mutex rw_;", True),
    ("bc-nolock", "std::condition_variable cv_;", True),
    ("bc-nolock", "std :: unique_lock<std::mutex> lk(m_);", True),
    ("bc-nolock", "std::atomic<std::uint64_t> completed_{0};", False),
    ("bc-nolock", "// std::mutex would violate bc-nolock here", False),
    ("bc-nolock", "std::mutex m_;  // NOLINT(bc-nolock)", False),
    ("bc-nolock", "my_mutex m_;", False),
    ("bc-obs", 'std::printf("packets=%llu\\n", n);', True),
    ("bc-obs", 'printf("stats\\n");', True),
    ("bc-obs", "std::cout << stats.packets;", True),
    ("bc-obs", 'std::fprintf(stdout, "%llu", n);', True),
    ("bc-obs", 'std::puts("done");', True),
    ("bc-obs", 'std::fprintf(stderr, "bad state\\n");', False),
    ("bc-obs", 'std::snprintf(buf, sizeof buf, "%.2f", v);', False),
    ("bc-obs", "// printf() is banned here, see bc-obs", False),
    ("bc-obs", 'std::printf("x");  // NOLINT(bc-obs)', False),
]


def self_test():
    failures = 0
    root = Path(".")
    for rule, code, expect in SELF_TEST_CASES:
        raw_lines = code.splitlines()
        code_lines = strip_comments_and_strings(code).splitlines()
        path = Path("tests/selftest_snippet.cc")
        if rule == "bc-rawseq":
            found = scan_rawseq(path, raw_lines, code_lines)
        elif rule == "bc-wirecast":
            found = scan_wirecast(path, raw_lines, code_lines)
        elif rule == "bc-hotpath":
            # The rule only fires in data-plane headers.
            found = scan_hotpath(Path("src/cache/selftest_snippet.h"),
                                 raw_lines, code_lines)
        elif rule == "bc-nolock":
            # The rule only fires under the single-threaded codec dirs.
            found = scan_nolock(Path("src/core/selftest_snippet.cc"),
                                raw_lines, code_lines)
        elif rule == "bc-obs":
            # The rule only fires in src/ outside src/obs and src/harness.
            found = scan_obs(Path("src/core/selftest_snippet.cc"),
                             raw_lines, code_lines)
        else:
            # Only the path-independent include checks are testable here.
            found = [v for v in scan_includes(root / path, root, raw_lines,
                                              code_lines)
                     if "own header" not in v.message
                     and "does not resolve" not in v.message
                     and "#pragma once" not in v.message]
        got = any(v.rule == rule for v in found)
        if got != expect:
            print(f"self-test FAIL [{rule}] expected "
                  f"{'violation' if expect else 'clean'}: {code!r}")
            failures += 1
    if failures:
        print(f"lint self-test: {failures} failure(s)")
        return 1
    print(f"lint self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


# File-based fixture corpus, shared with tools/bcanalyze/selftest.py.
# Same annotation format: `// BC-FIXTURE: path=...` claims a pretend
# repo-relative path (rules are directory-scoped), `EXPECT(rule)` on a
# line (or alone on the line above) demands exactly one violation there.
# EXPECTs for rules this script does not implement (bcanalyze-only rules
# like bc-wire-bounds) are ignored; bc-include is excluded because its
# own-header/resolution checks need the real filesystem layout.

CORPUS_FIXTURE_RE = re.compile(r"BC-FIXTURE:\s*path=(\S+)")
CORPUS_EXPECT_RE = re.compile(r"EXPECT\(([a-z0-9-]+)\)")
CORPUS_RULES = {"bc-rawseq", "bc-wirecast", "bc-hotpath", "bc-nolock",
                "bc-obs"}


def corpus_check(corpus_dir):
    corpus_dir = Path(corpus_dir)
    fixtures = [p for p in sorted(corpus_dir.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES and p.is_file()]
    if not fixtures:
        print(f"lint corpus: no fixtures under {corpus_dir}")
        return 1
    failures = 0
    for path in fixtures:
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        m = CORPUS_FIXTURE_RE.search(raw)
        pretend = Path(m.group(1)) if m else Path(path.name)
        code_lines = strip_comments_and_strings(raw).splitlines()
        found = []
        found += scan_rawseq(pretend, raw_lines, code_lines)
        found += scan_wirecast(pretend, raw_lines, code_lines)
        found += scan_hotpath(pretend, raw_lines, code_lines)
        found += scan_nolock(pretend, raw_lines, code_lines)
        found += scan_obs(pretend, raw_lines, code_lines)
        got = {(v.lineno, v.rule) for v in found if v.rule in CORPUS_RULES}
        want = set()
        for lineno, line in enumerate(raw_lines, start=1):
            for em in CORPUS_EXPECT_RE.finditer(line):
                rule = em.group(1)
                if rule not in CORPUS_RULES:
                    continue  # bcanalyze-only rule in the shared corpus
                code = line.split("//")[0].strip()
                want.add((lineno if code else lineno + 1, rule))
        for lineno, rule in sorted(want - got):
            print(f"{path}:{lineno}: expected {rule} violation did not fire")
            failures += 1
        for lineno, rule in sorted(got - want):
            print(f"{path}:{lineno}: unexpected {rule} violation")
            failures += 1
    print(f"lint corpus: {len(fixtures)} fixtures, {failures} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root to scan (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in rule tests and exit")
    parser.add_argument("--corpus", nargs="?", metavar="DIR",
                        const="tools/lint_selftest/corpus",
                        help="check the file-based fixture corpus instead "
                             "of scanning the tree (default DIR: "
                             "tools/lint_selftest/corpus)")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if args.corpus:
        sys.exit(corpus_check(Path(args.root) / args.corpus))
    sys.exit(run(args.root))


if __name__ == "__main__":
    main()
