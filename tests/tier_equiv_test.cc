// Eviction-policy / tier equivalence suite (DESIGN.md §14).
//
// The CacheTier facade must be invisible on the wire whenever the L2
// never comes into play: for every tracked data-plane configuration, a
// codec pair with an attached-but-idle L2 (unbounded L1, so nothing ever
// demotes) must emit byte-identical wire traffic to the plain flat-cache
// codec — the pre-tier behavior, which no-L2 CacheTier *is*.  The same
// holds for the journaling mode knob and for the eviction-policy seam,
// both of which are pure L2 concerns.
//
// Where the L2 does engage (a bounded L1 under an eviction-heavy
// stream), the tier may only help: decode stays lossless and the wire
// never grows, with demotions, L2 hits, and promotions all observed.

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache_config.h"
#include "cache/l2_store.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache {
namespace {

using testutil::random_bytes;
using testutil::segment_stream;
using testutil::test_encoder;
using util::Bytes;
using util::Rng;

struct E2EConfig {
  const char* name;
  core::PolicyKind policy;
  core::SelectMode mode;
  std::size_t cache_bytes;
  bool epoch_resync;
};

// The six tracked data-plane configurations (mirrors
// tests/simd_kernel_test.cc and bench_throughput's workload list).
constexpr E2EConfig kConfigs[] = {
    {"naive_valuesampling", core::PolicyKind::kNaive,
     core::SelectMode::kValueSampling, 0, false},
    {"naive_maxp", core::PolicyKind::kNaive, core::SelectMode::kMaxp, 0,
     false},
    {"naive_samplebyte", core::PolicyKind::kNaive,
     core::SelectMode::kSampleByte, 0, false},
    {"tcpseq_valuesampling", core::PolicyKind::kTcpSeq,
     core::SelectMode::kValueSampling, 0, false},
    {"naive_bounded256k", core::PolicyKind::kNaive,
     core::SelectMode::kValueSampling, 256 * 1024, false},
    {"resilient_valuesampling", core::PolicyKind::kResilient,
     core::SelectMode::kValueSampling, 0, true},
};

/// Encodes `object` under `cfg` with the given cache configuration
/// (optionally tier-backed) and returns the exact wire bytes, verifying
/// lossless decode along the way.  When `cache.has_l2()`, each side gets
/// its own single-stripe store, exactly as a plain gateway provisions.
std::vector<Bytes> wire_bytes_under(const E2EConfig& cfg, const Bytes& object,
                                    const cache::CacheConfig& cache,
                                    cache::TierStats* enc_tier = nullptr) {
  core::DreParams params;
  params.select_mode = cfg.mode;
  params.epoch_resync = cfg.epoch_resync;
  std::unique_ptr<cache::L2Store> enc_l2, dec_l2;
  if (cache.has_l2()) {
    enc_l2 = std::make_unique<cache::L2Store>(cache, 1);
    dec_l2 = std::make_unique<cache::L2Store>(cache, 1);
  }
  core::Encoder enc =
      test_encoder(cfg.policy, params, cache, enc_l2.get());
  core::Decoder dec(params, cache, dec_l2.get());
  std::vector<Bytes> wire;
  for (const auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    enc.process(*pkt);
    wire.push_back(pkt->payload);
    const auto dinfo = dec.process(*pkt);
    EXPECT_FALSE(core::is_drop(dinfo.status)) << cfg.name;
    EXPECT_EQ(pkt->payload, original) << cfg.name;
  }
  enc.audit();
  dec.audit();
  if (enc_tier != nullptr) *enc_tier = enc.cache().tier_stats();
  return wire;
}

/// A redundant stream: repeated Zipf-drawn chunks with noise, sized so
/// the bounded configs see real eviction churn.
Bytes redundant_object(Rng& rng) {
  Bytes object;
  std::vector<Bytes> chunks;
  for (int i = 0; i < 6; ++i) {
    chunks.push_back(random_bytes(rng, 500 + 100 * static_cast<std::size_t>(i)));
  }
  for (int i = 0; i < 100; ++i) {
    const Bytes& c = chunks[rng.zipf(chunks.size(), 1.0)];
    object.insert(object.end(), c.begin(), c.end());
    const Bytes noise = random_bytes(rng, rng.uniform(50, 400));
    object.insert(object.end(), noise.begin(), noise.end());
  }
  return object;
}

/// A cyclic stream: `kCycleChunks` distinct 1 KiB chunks replayed in
/// order `reps` times.  The cycle (~128 KiB) exceeds a small L1, so by
/// the time a chunk recurs its packet has been evicted — while still
/// owning its fingerprints, which is what populates the L2 index.  This
/// is the working set shape the tier exists for; the Zipf-redundant
/// stream above never engages the L2, because its hot fingerprints are
/// perpetually re-owned by fresh L1 insertions.
Bytes cyclic_object(Rng& rng, int reps = 3) {
  constexpr int kCycleChunks = 128;
  std::vector<Bytes> chunks;
  for (int i = 0; i < kCycleChunks; ++i) {
    chunks.push_back(random_bytes(rng, 1024));
  }
  Bytes object;
  for (int r = 0; r < reps; ++r) {
    for (const Bytes& c : chunks) {
      object.insert(object.end(), c.begin(), c.end());
    }
  }
  return object;
}

std::uint64_t total(const std::vector<Bytes>& wire) {
  std::uint64_t n = 0;
  for (const Bytes& b : wire) n += b.size();
  return n;
}

TEST(TierEquiv, IdleL2IsByteTransparentForEveryConfig) {
  Rng rng(testutil::test_seed(301));
  const Bytes object = redundant_object(rng);
  for (const E2EConfig& cfg : kConfigs) {
    if (cfg.cache_bytes != 0) continue;  // bounded: the L2 engages
    cache::CacheConfig flat;  // unbounded L1, no L2: the pre-tier cache
    const std::vector<Bytes> baseline = wire_bytes_under(cfg, object, flat);

    cache::CacheConfig tiered = flat;
    tiered.l2_bytes = 4 * 1024 * 1024;
    tiered.per_host_pair_bytes = 256 * 1024;
    cache::TierStats stats;
    const std::vector<Bytes> wired =
        wire_bytes_under(cfg, object, tiered, &stats);

    // Nothing demoted, so the tier must not have changed a single byte.
    EXPECT_EQ(stats.demotions, 0u) << cfg.name;
    ASSERT_EQ(wired.size(), baseline.size()) << cfg.name;
    for (std::size_t i = 0; i < wired.size(); ++i) {
      ASSERT_EQ(wired[i], baseline[i]) << cfg.name << " packet " << i;
    }
  }
}

TEST(TierEquiv, JournalingModeNeverTouchesTheWire) {
  // The incremental-snapshot journal is bookkeeping only: running the
  // eviction-heavy bounded config with journaling on must reproduce the
  // kFull run byte for byte.
  Rng rng(testutil::test_seed(302));
  const Bytes object = cyclic_object(rng);
  const E2EConfig& bounded = kConfigs[4];

  cache::CacheConfig cc;
  cc.l1_bytes = 64 * 1024;  // smaller than the cycle: the tier engages
  cc.l2_bytes = 1024 * 1024;
  const std::vector<Bytes> full = wire_bytes_under(bounded, object, cc);

  cache::CacheConfig journaled = cc;
  journaled.snapshot_mode = cache::SnapshotMode::kIncremental;
  const std::vector<Bytes> incr = wire_bytes_under(bounded, object, journaled);

  ASSERT_EQ(incr.size(), full.size());
  for (std::size_t i = 0; i < incr.size(); ++i) {
    ASSERT_EQ(incr[i], full[i]) << "packet " << i;
  }
}

TEST(TierEquiv, EvictionPolicyKnobIsInertWithoutAnL2) {
  // The policy seam selects L2 victims only: with no L2 attached the
  // Zipf-aware setting must be bit-identical to LRU.
  Rng rng(testutil::test_seed(303));
  const Bytes object = cyclic_object(rng);
  const E2EConfig& bounded = kConfigs[4];

  cache::CacheConfig lru;
  lru.l1_bytes = 64 * 1024;  // eviction-heavy, so the knob COULD matter
  const std::vector<Bytes> a = wire_bytes_under(bounded, object, lru);

  cache::CacheConfig zipf = lru;
  zipf.eviction = cache::EvictionPolicy::kZipfAware;
  const std::vector<Bytes> b = wire_bytes_under(bounded, object, zipf);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "packet " << i;
  }
}

TEST(TierEquiv, EngagedTierOnlyEverShrinksTheWire) {
  // Under the bounded config the L1 churns; with an L2 behind it the
  // evictees stay reachable, so compression can only improve — and the
  // whole demote/hit/promote cycle must actually run.
  Rng rng(testutil::test_seed(304));
  const Bytes object = cyclic_object(rng);
  const E2EConfig& bounded = kConfigs[4];

  cache::CacheConfig flat;
  flat.l1_bytes = 64 * 1024;  // small enough to churn hard
  const std::vector<Bytes> flat_wire =
      wire_bytes_under(bounded, object, flat);

  cache::CacheConfig tiered = flat;
  tiered.l2_bytes = 4 * 1024 * 1024;
  cache::TierStats stats;
  const std::vector<Bytes> tier_wire =
      wire_bytes_under(bounded, object, tiered, &stats);

  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.l2_hits, 0u);
  EXPECT_GT(stats.promotions, 0u);
  EXPECT_LE(total(tier_wire), total(flat_wire));
}

TEST(TierEquiv, ZipfPolicyStaysLosslessUnderL2Pressure) {
  // A tight L2 share forces stripe evictions through the policy seam on
  // both sides; whatever the victims, decode must stay lossless and the
  // codecs in lockstep (wire_bytes_under asserts both).
  Rng rng(testutil::test_seed(305));
  const Bytes object = cyclic_object(rng);
  const E2EConfig& bounded = kConfigs[4];

  cache::CacheConfig cc;
  cc.l1_bytes = 64 * 1024;
  // Tight: smaller than the cycle, so the stripe share evicts
  // constantly — but L1 + L2 together outlive one cycle, so recurring
  // chunks still hit.
  cc.l2_bytes = 96 * 1024;
  cc.eviction = cache::EvictionPolicy::kZipfAware;
  cache::TierStats stats;
  (void)wire_bytes_under(bounded, object, cc, &stats);
  EXPECT_GT(stats.l2_evictions, 0u);
  EXPECT_GT(stats.l2_hits, 0u);
}

}  // namespace
}  // namespace bytecache
