// SliceArena tests: the carve_area bookkeeping-failure leak regression
// and the cold paths (oversize heap fallback, zero-byte slices, audit
// accounting across carve/evict churn) the data plane never exercises.
#include <cstring>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "cache/slice_arena.h"

namespace bytecache {
namespace {

using cache::SliceArena;

// Regression: carve_area used to aligned_alloc the 2 MiB area FIRST and
// record it in areas_ second — so a throwing vector growth leaked the
// fresh area (~SliceArena frees only recorded areas).  The injected
// bookkeeping failure throws exactly in that window; the alloc/free
// balance across the arena's lifetime is the leak detector.
TEST(SliceArenaTest, BookkeepingFailureDoesNotLeakArea) {
  const SliceArena::TestHooks before = SliceArena::test_hooks;
  {
    SliceArena arena;
    SliceArena::test_hooks.fail_bookkeeping = 1;
    EXPECT_THROW((void)arena.alloc(1000), std::bad_alloc);
    SliceArena::test_hooks.fail_bookkeeping = 0;

    // The failed carve left no trace: nothing reserved, nothing live,
    // and the arena works fine on the next request.
    EXPECT_EQ(arena.bytes_reserved(), 0u);
    EXPECT_EQ(arena.live(), 0u);
    const SliceArena::Slice s = arena.alloc(1000);
    ASSERT_NE(s.data, nullptr);
    arena.free(s);
    arena.audit();
  }
  const SliceArena::TestHooks& after = SliceArena::test_hooks;
  EXPECT_EQ(after.areas_allocated - before.areas_allocated,
            after.areas_freed - before.areas_freed)
      << "an area obtained during a failed carve was never freed";
}

// A later carve (bookkeeping already sized by earlier carves) must obey
// the same ordering: inject the failure on the second carve of a class
// whose first area is exhausted.
TEST(SliceArenaTest, BookkeepingFailureOnLaterCarveDoesNotLeak) {
  const SliceArena::TestHooks before = SliceArena::test_hooks;
  {
    SliceArena arena;
    std::vector<SliceArena::Slice> held;
    const std::size_t per_area =
        SliceArena::kAreaBytes / SliceArena::kMaxSlice;
    for (std::size_t i = 0; i < per_area; ++i)
      held.push_back(arena.alloc(SliceArena::kMaxSlice));
    EXPECT_EQ(arena.bytes_reserved(), SliceArena::kAreaBytes);

    SliceArena::test_hooks.fail_bookkeeping = 1;
    EXPECT_THROW((void)arena.alloc(SliceArena::kMaxSlice), std::bad_alloc);
    SliceArena::test_hooks.fail_bookkeeping = 0;
    EXPECT_EQ(arena.bytes_reserved(), SliceArena::kAreaBytes);

    for (SliceArena::Slice s : held) arena.free(s);
    arena.audit();
  }
  const SliceArena::TestHooks& after = SliceArena::test_hooks;
  EXPECT_EQ(after.areas_allocated - before.areas_allocated,
            after.areas_freed - before.areas_freed);
}

TEST(SliceArenaTest, OversizeFallbackPairsAllocAndFree) {
  SliceArena arena;
  const SliceArena::Slice s = arena.alloc(SliceArena::kMaxSlice + 1);
  ASSERT_NE(s.data, nullptr);
  EXPECT_EQ(s.cls, SliceArena::kHeapClass);
  // Heap fallbacks are invisible to the arena's accounting: no area
  // reserved, no live slice (live() tracks freelist slices only).
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.live(), 0u);
  // The buffer really is usable at the requested size.
  std::memset(s.data, 0xAB, SliceArena::kMaxSlice + 1);
  arena.free(s);  // delete[] path: must pair with the new[] in alloc
  arena.audit();
}

TEST(SliceArenaTest, ZeroByteAllocIsNullSlice) {
  SliceArena arena;
  const SliceArena::Slice s = arena.alloc(0);
  EXPECT_EQ(s.data, nullptr);
  EXPECT_EQ(arena.live(), 0u);
  arena.free(s);  // null slices free harmlessly
  arena.free(SliceArena::Slice{});
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(SliceArenaTest, ClassBoundaries) {
  EXPECT_EQ(SliceArena::class_of(1), 0);
  EXPECT_EQ(SliceArena::class_of(SliceArena::kMinSlice), 0);
  EXPECT_EQ(SliceArena::class_of(SliceArena::kMinSlice + 1), 1);
  EXPECT_EQ(SliceArena::class_of(SliceArena::kMaxSlice),
            SliceArena::kClasses - 1);
  EXPECT_EQ(SliceArena::class_size(SliceArena::kClasses - 1),
            SliceArena::kMaxSlice);
}

// The store/evict churn pattern: interleaved allocs and frees across
// classes, exhausting one class's area so a second is carved, with the
// audit invariants (freelist containment, live+free == carved) checked
// at every phase boundary.
TEST(SliceArenaTest, AuditAccountsAcrossCarveAndChurn) {
  SliceArena arena;
  std::vector<SliceArena::Slice> held;

  const std::size_t per_area = SliceArena::kAreaBytes / SliceArena::kMaxSlice;
  for (std::size_t i = 0; i < per_area + 1; ++i)
    held.push_back(arena.alloc(SliceArena::kMaxSlice));
  EXPECT_EQ(arena.bytes_reserved(), 2 * SliceArena::kAreaBytes);
  EXPECT_EQ(arena.live(), per_area + 1);
  arena.audit();

  // Evict half, in allocation order.
  for (std::size_t i = 0; i < held.size(); i += 2) {
    arena.free(held[i]);
    held[i] = SliceArena::Slice{};
  }
  arena.audit();

  // Re-fill with a different class plus re-use of the freed 64 KiB
  // slices; no third area may appear.
  for (std::size_t i = 0; i < held.size(); i += 2)
    held[i] = arena.alloc(SliceArena::kMaxSlice);
  for (int i = 0; i < 100; ++i) held.push_back(arena.alloc(300));
  EXPECT_EQ(arena.bytes_reserved(), 3 * SliceArena::kAreaBytes);
  arena.audit();

  for (SliceArena::Slice s : held) arena.free(s);
  EXPECT_EQ(arena.live(), 0u);
  arena.audit();
}

}  // namespace
}  // namespace bytecache
