#include <gtest/gtest.h>

#include "packet/checksum.h"
#include "packet/ipv4.h"
#include "packet/packet.h"
#include "packet/tcp.h"
#include "packet/udp.h"
#include "util/rng.h"

namespace bytecache::packet {
namespace {

using util::Bytes;

// ----------------------------------------------------------- checksum --

TEST(Checksum, Rfc1071Example) {
  // Example from RFC 1071 section 3: words 0001 f203 f4f5 f6f7.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, ZeroOverOwnChecksum) {
  // A buffer with its own checksum embedded must sum to zero.
  Bytes data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00,
                0x40, 0x06, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                0x0a, 0x00, 0x01, 0x01};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(data), 0u);
}

TEST(Checksum, OddLength) {
  const Bytes data = {0xAB};
  EXPECT_EQ(internet_checksum(data),
            static_cast<std::uint16_t>(~0xAB00));
}

TEST(Checksum, AddU16AfterOddByteMatchesByteStream) {
  // add_u16 must fold its value exactly as add() would fold the same two
  // big-endian bytes, even with an odd byte pending from a previous add().
  ChecksumAccumulator words;
  words.add(Bytes{0xAB});
  words.add_u16(0x1234);
  words.add(Bytes{0xCD});  // pairs with the pending 0x34

  EXPECT_EQ(words.finish(), internet_checksum(Bytes{0xAB, 0x12, 0x34, 0xCD}));
}

TEST(Checksum, InterleavedAddsMatchByteSerializedReference) {
  // Random interleavings of odd-length add() with add_u16/add_u32 must
  // always equal the checksum of the byte-serialized equivalent.
  util::Rng rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    ChecksumAccumulator acc;
    Bytes flat;
    const int ops = 2 + static_cast<int>(rng.next_u64() % 10);
    for (int op = 0; op < ops; ++op) {
      switch (rng.next_u64() % 3) {
        case 0: {
          Bytes chunk(1 + rng.next_u64() % 9);
          for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
          acc.add(chunk);
          flat.insert(flat.end(), chunk.begin(), chunk.end());
          break;
        }
        case 1: {
          const auto v = static_cast<std::uint16_t>(rng.next_u64());
          acc.add_u16(v);
          flat.push_back(static_cast<std::uint8_t>(v >> 8));
          flat.push_back(static_cast<std::uint8_t>(v));
          break;
        }
        default: {
          const auto v = static_cast<std::uint32_t>(rng.next_u64());
          acc.add_u32(v);
          for (int s = 24; s >= 0; s -= 8) {
            flat.push_back(static_cast<std::uint8_t>(v >> s));
          }
          break;
        }
      }
    }
    EXPECT_EQ(acc.finish(), internet_checksum(flat)) << "trial " << trial;
  }
}

TEST(Checksum, AccumulatorPiecewiseEqualsWhole) {
  util::Rng rng(1);
  Bytes data(101);  // odd length to exercise the pairing logic
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  ChecksumAccumulator acc;
  acc.add(util::BytesView(data.data(), 33));
  acc.add(util::BytesView(data.data() + 33, 30));
  acc.add(util::BytesView(data.data() + 63, 38));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Checksum, AllOnesBuffers) {
  // Even-length all-0xFF: every word is 0xFFFF, the end-around folds keep
  // the sum at 0xFFFF, and the complement is 0.
  for (const std::size_t n : {2u, 4u, 64u, 1500u}) {
    const Bytes data(n, 0xFF);
    EXPECT_EQ(internet_checksum(data), 0u) << "length " << n;
  }
  // Odd-length all-0xFF: the trailing byte pads to 0xFF00, so the folded
  // sum is 0xFFFF + ... + 0xFF00 -> complement 0x00FF.
  for (const std::size_t n : {1u, 3u, 65u, 1501u}) {
    const Bytes data(n, 0xFF);
    EXPECT_EQ(internet_checksum(data), 0x00FFu) << "length " << n;
  }
}

TEST(Checksum, OddLengthMatchesNaiveReference) {
  // Cross-check the accumulator against a direct RFC 1071 fold for a
  // range of odd lengths (pad the final byte as the high half of a word).
  util::Rng rng(3);
  for (const std::size_t n : {1u, 5u, 33u, 99u, 255u}) {
    Bytes data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      sum += static_cast<std::uint16_t>(data[i] << 8 | data[i + 1]);
    }
    sum += static_cast<std::uint16_t>(data[n - 1] << 8);
    while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
    EXPECT_EQ(internet_checksum(data),
              static_cast<std::uint16_t>(~sum)) << "length " << n;
  }
}

TEST(Checksum, AccumulatorOddChunksPairAcrossBoundaries) {
  // Splitting after an odd byte forces the pending-byte pairing path:
  // byte k of one chunk pairs with byte 0 of the next.
  util::Rng rng(4);
  Bytes data(97);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint16_t whole = internet_checksum(data);
  for (const std::size_t cut : {1u, 2u, 7u, 48u, 95u, 96u}) {
    ChecksumAccumulator acc;
    acc.add(util::BytesView(data.data(), cut));
    acc.add(util::BytesView(data.data() + cut, data.size() - cut));
    EXPECT_EQ(acc.finish(), whole) << "cut at " << cut;
  }
  // Byte-at-a-time is the degenerate all-odd-chunks case.
  ChecksumAccumulator bytewise;
  for (std::size_t i = 0; i < data.size(); ++i) {
    bytewise.add(util::BytesView(data.data() + i, 1));
  }
  EXPECT_EQ(bytewise.finish(), whole);
}

TEST(Checksum, DetectsSingleBitFlip) {
  util::Rng rng(2);
  Bytes data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint16_t base = internet_checksum(data);
  data[17] ^= 0x01;
  EXPECT_NE(internet_checksum(data), base);
}

// --------------------------------------------------------------- ipv4 --

TEST(Ipv4, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 1500;
  h.identification = 0xBEEF;
  h.ttl = 61;
  h.protocol = 6;
  h.src = make_ip(192, 168, 1, 10);
  h.dst = make_ip(10, 20, 30, 40);

  Bytes wire;
  h.serialize(wire);
  ASSERT_EQ(wire.size(), Ipv4Header::kSize);

  auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tos, h.tos);
  EXPECT_EQ(parsed->total_length, h.total_length);
  EXPECT_EQ(parsed->identification, h.identification);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->protocol, h.protocol);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4, ParseRejectsCorruptHeader) {
  Ipv4Header h;
  h.src = make_ip(1, 2, 3, 4);
  Bytes wire;
  h.serialize(wire);
  wire[16] ^= 0xFF;  // corrupt dst
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4, ParseRejectsShortInput) {
  Bytes wire(10, 0);
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4, ParseRejectsWrongVersion) {
  Ipv4Header h;
  Bytes wire;
  h.serialize(wire);
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4, IpToString) {
  EXPECT_EQ(ip_to_string(make_ip(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(ip_to_string(make_ip(255, 255, 255, 255)), "255.255.255.255");
}

// ---------------------------------------------------------------- tcp --

TEST(Tcp, SerializeParseRoundTrip) {
  TcpHeader h;
  h.src_port = 80;
  h.dst_port = 43210;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.flags = TcpHeader::kAck | TcpHeader::kPsh;
  h.window = 8192;

  const Bytes data = util::to_bytes("payload bytes here");
  const std::uint32_t src = make_ip(10, 0, 0, 1);
  const std::uint32_t dst = make_ip(10, 0, 1, 1);
  Bytes segment;
  h.serialize(segment, data, src, dst);
  ASSERT_EQ(segment.size(), TcpHeader::kSize + data.size());

  auto parsed = TcpHeader::parse(segment, src, dst);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, h.src_port);
  EXPECT_EQ(parsed->dst_port, h.dst_port);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_EQ(parsed->flags, h.flags);
  EXPECT_EQ(parsed->window, h.window);
}

TEST(Tcp, ChecksumCoversDataAndPseudoHeader) {
  TcpHeader h;
  h.seq = 1;
  const Bytes data = util::to_bytes("abcdef");
  const std::uint32_t src = make_ip(1, 1, 1, 1);
  const std::uint32_t dst = make_ip(2, 2, 2, 2);
  Bytes segment;
  h.serialize(segment, data, src, dst);

  // Flip a payload byte -> checksum fails.
  Bytes bad = segment;
  bad[TcpHeader::kSize + 2] ^= 0x01;
  EXPECT_FALSE(TcpHeader::parse(bad, src, dst).has_value());

  // Same bytes against different pseudo-header -> checksum fails.
  EXPECT_FALSE(TcpHeader::parse(segment, src, make_ip(9, 9, 9, 9)).has_value());
  EXPECT_TRUE(TcpHeader::parse(segment, src, dst).has_value());
}

TEST(Tcp, ParseUncheckedIgnoresChecksum) {
  TcpHeader h;
  h.seq = 77;
  Bytes segment;
  h.serialize(segment, {}, 1, 2);
  segment[16] ^= 0xFF;  // destroy checksum
  auto parsed = TcpHeader::parse_unchecked(segment);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 77u);
}

TEST(Tcp, FlagHelpers) {
  TcpHeader h;
  h.flags = TcpHeader::kSyn | TcpHeader::kAck;
  EXPECT_TRUE(h.syn());
  EXPECT_TRUE(h.has_ack());
  EXPECT_FALSE(h.fin());
  EXPECT_FALSE(h.rst());
}

TEST(Tcp, ParseRejectsShortSegment) {
  Bytes segment(10, 0);
  EXPECT_FALSE(TcpHeader::parse_unchecked(segment).has_value());
}

// ---------------------------------------------------------------- udp --

TEST(Udp, SerializeParseRoundTrip) {
  UdpHeader h;
  h.src_port = 5004;
  h.dst_port = 5006;
  const Bytes data = util::to_bytes("stream data");
  const std::uint32_t src = make_ip(10, 0, 0, 1);
  const std::uint32_t dst = make_ip(10, 0, 1, 1);
  Bytes datagram;
  h.serialize(datagram, data, src, dst);
  ASSERT_EQ(datagram.size(), UdpHeader::kSize + data.size());

  auto parsed = UdpHeader::parse(datagram, src, dst);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, h.src_port);
  EXPECT_EQ(parsed->dst_port, h.dst_port);
}

TEST(Udp, ChecksumDetectsCorruption) {
  UdpHeader h;
  const Bytes data = util::to_bytes("123456");
  Bytes datagram;
  h.serialize(datagram, data, 1, 2);
  datagram[UdpHeader::kSize] ^= 0x80;
  EXPECT_FALSE(UdpHeader::parse(datagram, 1, 2).has_value());
}

TEST(Udp, ParseChecksLength) {
  UdpHeader h;
  Bytes datagram;
  h.serialize(datagram, util::to_bytes("abc"), 1, 2);
  datagram.push_back(0x00);  // trailing garbage changes the length
  EXPECT_FALSE(UdpHeader::parse(datagram, 1, 2).has_value());
}

// ------------------------------------------------------------- packet --

TEST(Packet, MakeAssignsUniqueUids) {
  auto a = make_packet(1, 2, IpProto::kTcp, {});
  auto b = make_packet(1, 2, IpProto::kTcp, {});
  EXPECT_NE(a->uid, b->uid);
}

TEST(Packet, WireSizeIncludesHeader) {
  auto p = make_packet(1, 2, IpProto::kUdp, Bytes(100, 0));
  EXPECT_EQ(p->wire_size(), 120u);
  EXPECT_EQ(p->proto(), IpProto::kUdp);
}

TEST(Packet, CloneKeepsUid) {
  auto p = make_packet(1, 2, IpProto::kTcp, util::to_bytes("data"));
  auto c = clone_packet(*p);
  EXPECT_EQ(c->uid, p->uid);
  EXPECT_EQ(c->payload, p->payload);
}

TEST(Packet, WireRoundTrip) {
  auto p = make_packet(make_ip(10, 0, 0, 1), make_ip(10, 0, 1, 1),
                       IpProto::kTcp, util::to_bytes("hello wire"));
  const Bytes wire = to_wire(*p);
  ASSERT_EQ(wire.size(), p->wire_size());
  auto q = from_wire(wire);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->ip.src, p->ip.src);
  EXPECT_EQ(q->ip.dst, p->ip.dst);
  EXPECT_EQ(q->ip.protocol, p->ip.protocol);
  EXPECT_EQ(q->payload, p->payload);
}

TEST(Packet, FromWireRejectsBadLength) {
  auto p = make_packet(1, 2, IpProto::kTcp, util::to_bytes("xyz"));
  Bytes wire = to_wire(*p);
  wire.push_back(0);  // extra byte: total_length mismatch
  EXPECT_EQ(from_wire(wire), nullptr);
}

}  // namespace
}  // namespace bytecache::packet
