#include <gtest/gtest.h>

#include "core/region.h"
#include "core/wire.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache::core {
namespace {

using util::Bytes;

EncodedPayload sample_payload() {
  EncodedPayload p;
  p.orig_proto = 6;
  p.flags = kFlagFlushEpoch;
  p.epoch = 3;
  p.orig_len = 100;
  p.crc = 0xCAFEBABE;
  p.regions.push_back(EncodedRegion{0x1122334455667788ull, 10, 20, 30});
  p.regions.push_back(EncodedRegion{0x99AABBCCDDEEFF00ull, 60, 0, 40});
  p.literals = Bytes(30, 'L');  // 100 - 30 - 40
  return p;
}

TEST(Wire, RegionWireBytesIsFourteen) {
  // The paper's encoding-field size, and the reason for the len > 14 rule.
  EXPECT_EQ(EncodedRegion::kWireBytes, 14u);
}

TEST(Wire, ShimIsTwelveBytes) { EXPECT_EQ(kShimBytes, 12u); }

TEST(Wire, SerializeParseRoundTrip) {
  const EncodedPayload p = sample_payload();
  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), p.wire_size());
  EXPECT_EQ(wire.size(), 12 + 2 * 14 + 30u);

  auto q = EncodedPayload::parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->orig_proto, p.orig_proto);
  EXPECT_EQ(q->flags, p.flags);
  EXPECT_EQ(q->epoch, p.epoch);
  EXPECT_EQ(q->orig_len, p.orig_len);
  EXPECT_EQ(q->crc, p.crc);
  ASSERT_EQ(q->regions.size(), 2u);
  EXPECT_EQ(q->regions[0], p.regions[0]);
  EXPECT_EQ(q->regions[1], p.regions[1]);
  EXPECT_EQ(q->literals, p.literals);
}

TEST(Wire, ParseRejectsBadMagic) {
  Bytes wire = sample_payload().serialize();
  wire[0] = 0x00;
  EXPECT_FALSE(EncodedPayload::parse(wire).has_value());
}

TEST(Wire, ParseRejectsTruncatedShim) {
  Bytes wire = sample_payload().serialize();
  wire.resize(8);
  EXPECT_FALSE(EncodedPayload::parse(wire).has_value());
}

TEST(Wire, ParseRejectsTruncatedRegions) {
  Bytes wire = sample_payload().serialize();
  wire.resize(kShimBytes + 14);  // second region missing
  EXPECT_FALSE(EncodedPayload::parse(wire).has_value());
}

TEST(Wire, ParseRejectsLiteralCountMismatch) {
  EncodedPayload p = sample_payload();
  p.literals.push_back('X');  // one literal too many
  EXPECT_FALSE(EncodedPayload::parse(p.serialize()).has_value());
  p.literals.resize(28);  // one too few
  EXPECT_FALSE(EncodedPayload::parse(p.serialize()).has_value());
}

TEST(Wire, ParseRejectsOverlappingRegions) {
  EncodedPayload p = sample_payload();
  p.regions[1].offset_new = 35;  // overlaps [10,40)
  EXPECT_FALSE(EncodedPayload::parse(p.serialize()).has_value());
}

TEST(Wire, ParseRejectsOutOfOrderRegions) {
  EncodedPayload p = sample_payload();
  std::swap(p.regions[0], p.regions[1]);
  EXPECT_FALSE(EncodedPayload::parse(p.serialize()).has_value());
}

TEST(Wire, ParseRejectsRegionBeyondOriginal) {
  EncodedPayload p = sample_payload();
  p.regions[1].length = 50;  // 60 + 50 > 100
  p.literals.resize(100 - 30 - 50);  // keep literal count consistent
  EXPECT_FALSE(EncodedPayload::parse(p.serialize()).has_value());
}

TEST(Wire, ParseRejectsZeroLengthRegion) {
  EncodedPayload p = sample_payload();
  p.regions[0].length = 0;
  p.literals.resize(100 - 0 - 40);
  EXPECT_FALSE(EncodedPayload::parse(p.serialize()).has_value());
}

TEST(Wire, NoRegionsAllLiterals) {
  EncodedPayload p;
  p.orig_proto = 17;
  p.orig_len = 5;
  p.literals = util::to_bytes("hello");
  auto q = EncodedPayload::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->regions.empty());
  EXPECT_EQ(q->literals, p.literals);
}

TEST(Wire, FuzzParseNeverCrashes) {
  util::Rng rng(testutil::test_seed(99));
  for (int i = 0; i < 5000; ++i) {
    Bytes junk(rng.uniform(0, 200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    if (!junk.empty() && rng.chance(0.5)) junk[0] = kShimMagic;
    (void)EncodedPayload::parse(junk);  // must not crash or UB
  }
}

TEST(Wire, FuzzMutatedValidPayloadsParseOrReject) {
  util::Rng rng(testutil::test_seed(100));
  const Bytes wire = sample_payload().serialize();
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = wire;
    const std::size_t pos = rng.uniform(0, mutated.size() - 1);
    mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    auto q = EncodedPayload::parse(mutated);  // either outcome is fine
    if (q.has_value()) {
      // Structural invariants must hold even for accepted mutants.
      std::size_t covered = 0;
      for (const auto& r : q->regions) covered += r.length;
      EXPECT_EQ(covered + q->literals.size(), q->orig_len);
    }
  }
}

}  // namespace
}  // namespace bytecache::core
