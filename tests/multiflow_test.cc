// Multiple TCP connections through one gateway pair: inter-flow
// redundancy elimination (paper intro) and cross-connection cache
// poisoning (paper Section IV-C: "not only one TCP connection, but all
// subsequent connections going through the encoder and decoder may get
// affected").
#include <gtest/gtest.h>

#include <memory>

#include "app/file_transfer.h"
#include "gateway/multi_pipeline.h"
#include "workload/generators.h"

namespace bytecache::gateway {
namespace {

using util::Bytes;
using util::Rng;

struct MultiRun {
  sim::Simulator sim;
  std::unique_ptr<MultiPipeline> pipeline;
  std::vector<std::unique_ptr<app::FileTransfer>> transfers;

  MultiRun(core::PolicyKind policy, double loss,
           const std::vector<Bytes>& files, std::uint64_t seed = 1,
           sim::SimTime stagger = sim::ms(50)) {
    PipelineConfig cfg;
    cfg.policy = policy;
    cfg.loss_rate = loss;
    cfg.seed = seed;
    pipeline = std::make_unique<MultiPipeline>(sim, cfg, files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      transfers.push_back(std::make_unique<app::FileTransfer>(
          sim, pipeline->sender(i), pipeline->receiver(i), files[i],
          cfg.reverse_link.propagation_delay, sim::sec(600)));
      // Stagger the starts so the flows overlap but don't synchronize.
      sim.at(static_cast<sim::SimTime>(i) * stagger,
             [t = transfers.back().get()]() { t->start(); });
    }
  }

  void run() { sim.run(); }

  [[nodiscard]] bool all_done() const {
    for (const auto& t : transfers) {
      if (!t->done()) return false;
    }
    return true;
  }
};

TEST(MultiFlow, AllFlowsCompleteWithoutLoss) {
  Rng rng(1);
  std::vector<Bytes> files;
  for (int i = 0; i < 3; ++i) {
    files.push_back(workload::make_file1(rng, 80'000 + 10'000 * i));
  }
  MultiRun run(core::PolicyKind::kCacheFlush, 0.0, files);
  run.run();
  ASSERT_TRUE(run.all_done());
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_TRUE(run.transfers[i]->result().completed) << i;
    EXPECT_TRUE(run.transfers[i]->result().verified) << i;
    EXPECT_EQ(run.transfers[i]->result().delivered_bytes, files[i].size());
  }
}

TEST(MultiFlow, FlowsAreIsolatedAtTheTcpLayer) {
  // Different files per flow: each receiver gets exactly its own bytes.
  Rng rng(2);
  std::vector<Bytes> files = {workload::make_file1(rng, 60'000),
                              workload::make_video(rng, 60'000),
                              workload::make_ebook(rng, {.size = 60'000})};
  MultiRun run(core::PolicyKind::kTcpSeq, 0.0, files);
  run.run();
  for (std::size_t i = 0; i < files.size(); ++i) {
    ASSERT_TRUE(run.transfers[i]->result().completed) << i;
    EXPECT_EQ(run.pipeline->receiver(i).stream(), files[i]) << i;
  }
}

TEST(MultiFlow, InterFlowRedundancyEliminated) {
  // Two clients fetch the SAME object: the second transfer's bytes are
  // mostly eliminated against the first — the inter-flow savings the
  // paper's introduction credits byte caching with.
  Rng rng(3);
  const Bytes file = workload::make_video(rng, 150'000);  // incompressible
  auto wire_bytes = [&](std::size_t flows) {
    std::vector<Bytes> files(flows, file);
    MultiRun run(core::PolicyKind::kTcpSeq, 0.0, files, 7,
                 /*stagger=*/sim::ms(400));
    run.run();
    for (const auto& t : run.transfers) {
      EXPECT_TRUE(t->result().completed);
      EXPECT_TRUE(t->result().verified);
    }
    return run.pipeline->forward_link().stats().bytes_sent;
  };
  const auto one = wire_bytes(1);
  const auto two = wire_bytes(2);
  // The second copy should cost far less than the first (intra-file the
  // object is incompressible, so all savings are inter-flow).
  EXPECT_LT(static_cast<double>(two), 1.35 * static_cast<double>(one));
}

TEST(MultiFlow, NaiveLossPoisonsOtherConnections) {
  // One lossy transfer with the naive encoder wedges: packets of *other*
  // flows that reference the desynchronized cache die too.
  Rng rng(4);
  const Bytes file = workload::make_video(rng, 200'000);
  std::vector<Bytes> files(3, file);  // strong inter-flow coupling
  MultiRun run(core::PolicyKind::kNaive, 0.01, files, 11,
               /*stagger=*/sim::ms(300));
  run.run();
  int stalled = 0;
  for (const auto& t : run.transfers) {
    if (t->result().stalled) ++stalled;
    EXPECT_TRUE(t->result().verified);  // delivered prefixes still exact
  }
  EXPECT_GE(stalled, 2);
}

TEST(MultiFlow, RobustPoliciesSurviveLossAcrossFlows) {
  Rng rng(5);
  std::vector<Bytes> files(3, workload::make_file1(rng, 100'000));
  for (auto kind : {core::PolicyKind::kCacheFlush, core::PolicyKind::kTcpSeq,
                    core::PolicyKind::kKDistance}) {
    MultiRun run(kind, 0.03, files, 13);
    run.run();
    for (std::size_t i = 0; i < files.size(); ++i) {
      EXPECT_TRUE(run.transfers[i]->result().completed)
          << core::to_string(kind) << " flow " << i;
      EXPECT_TRUE(run.transfers[i]->result().verified)
          << core::to_string(kind) << " flow " << i;
    }
  }
}

TEST(MultiFlow, InterleavedFlowsDoNotTriggerSpuriousFlushes) {
  // Cache Flush detects retransmissions per flow; concurrent flows with
  // interleaved (incomparable) sequence numbers must not look like
  // retransmissions of each other.
  Rng rng(6);
  std::vector<Bytes> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(workload::make_file1(rng, 80'000));
  }
  MultiRun run(core::PolicyKind::kCacheFlush, 0.0, files, 17,
               /*stagger=*/sim::ms(5));  // heavy interleaving
  run.run();
  for (const auto& t : run.transfers) {
    ASSERT_TRUE(t->result().completed);
  }
  EXPECT_EQ(run.pipeline->encoder_gw().encoder()->stats().flushes, 0u);
  EXPECT_EQ(run.pipeline->encoder_gw().encoder()->stats().retransmissions,
            0u);
}

TEST(MultiFlow, AckGatedSafeAcrossFlows) {
  // ACK gating keys the gate per flow; cross-flow references must only
  // open after *that* flow's copy is ACKed.  End-to-end: zero undecodable
  // packets under loss, all flows complete.
  Rng rng(7);
  const Bytes file = workload::make_file1(rng, 100'000);
  std::vector<Bytes> files(3, file);
  PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.dre.ack_gated = true;
  cfg.loss_rate = 0.05;
  cfg.seed = 19;
  sim::Simulator sim;
  MultiPipeline pipeline(sim, cfg, files.size());
  std::vector<std::unique_ptr<app::FileTransfer>> transfers;
  for (std::size_t i = 0; i < files.size(); ++i) {
    transfers.push_back(std::make_unique<app::FileTransfer>(
        sim, pipeline.sender(i), pipeline.receiver(i), files[i],
        cfg.reverse_link.propagation_delay, sim::sec(600)));
    sim.at(static_cast<sim::SimTime>(i) * sim::ms(100),
           [t = transfers.back().get()]() { t->start(); });
  }
  sim.run();
  for (const auto& t : transfers) {
    EXPECT_TRUE(t->result().completed);
    EXPECT_TRUE(t->result().verified);
  }
  EXPECT_EQ(pipeline.decoder_gw().stats().dropped, 0u);
}

}  // namespace
}  // namespace bytecache::gateway
