#include <gtest/gtest.h>

#include "cache/byte_cache.h"
#include "cache/fingerprint_table.h"
#include "cache/packet_store.h"
#include "util/rng.h"

namespace bytecache::cache {
namespace {

using util::Bytes;

Bytes payload_of(char c, std::size_t n = 64) { return Bytes(n, c); }

// -------------------------------------------------------- PacketStore --

TEST(PacketStore, InsertAndLookup) {
  PacketStore store;
  PacketMeta meta;
  meta.tcp_seq = 42;
  meta.has_tcp_seq = true;
  const auto id = store.insert(payload_of('a'), meta);
  ASSERT_NE(id, 0u);
  const CachedPacket* p = store.lookup(id);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->payload, payload_of('a'));
  EXPECT_EQ(p->meta.tcp_seq, 42u);
  EXPECT_TRUE(store.contains(id));
}

TEST(PacketStore, IdsAreMonotonic) {
  PacketStore store;
  const auto a = store.insert(payload_of('a'), {});
  const auto b = store.insert(payload_of('b'), {});
  EXPECT_LT(a, b);
}

TEST(PacketStore, LookupAbsentReturnsNull) {
  PacketStore store;
  EXPECT_EQ(store.lookup(12345), nullptr);
  EXPECT_FALSE(store.contains(12345));
}

TEST(PacketStore, BytesUsedTracksPayloads) {
  PacketStore store;
  store.insert(payload_of('a', 100), {});
  store.insert(payload_of('b', 50), {});
  EXPECT_EQ(store.bytes_used(), 150u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(PacketStore, ClearEmpties) {
  PacketStore store;
  const auto id = store.insert(payload_of('a'), {});
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
  EXPECT_EQ(store.lookup(id), nullptr);
}

TEST(PacketStore, EvictsLruWhenOverBudget) {
  PacketStore store(CacheConfig{.l1_bytes = 250});
  const auto a = store.insert(payload_of('a', 100), {});
  const auto b = store.insert(payload_of('b', 100), {});
  // Touch a so b becomes the LRU.
  ASSERT_NE(store.lookup(a), nullptr);
  const auto c = store.insert(payload_of('c', 100), {});
  EXPECT_TRUE(store.contains(a));
  EXPECT_FALSE(store.contains(b));  // evicted
  EXPECT_TRUE(store.contains(c));
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_LE(store.bytes_used(), 250u);
}

TEST(PacketStore, NeverEvictsTheJustInsertedEntry) {
  PacketStore store(CacheConfig{.l1_bytes = 50});  // smaller than one payload
  const auto id = store.insert(payload_of('a', 100), {});
  EXPECT_TRUE(store.contains(id));
}

TEST(PacketStore, UnboundedNeverEvicts) {
  PacketStore store(CacheConfig{.l1_bytes = 0});
  for (int i = 0; i < 1000; ++i) store.insert(payload_of('x', 1000), {});
  EXPECT_EQ(store.size(), 1000u);
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(PacketStore, PeekDoesNotTouchRecency) {
  PacketStore store(CacheConfig{.l1_bytes = 250});
  const auto a = store.insert(payload_of('a', 100), {});
  store.insert(payload_of('b', 100), {});
  ASSERT_NE(store.peek(a), nullptr);  // peek must NOT move a to front
  store.insert(payload_of('c', 100), {});
  EXPECT_FALSE(store.contains(a));  // a was still the LRU
}

// -------------------------------------------------- FingerprintTable --

TEST(FingerprintTable, PutGetErase) {
  FingerprintTable t;
  t.put(0xAB, FpEntry{7, 13});
  auto e = t.get(0xAB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->packet_id, 7u);
  EXPECT_EQ(e->offset, 13u);
  t.erase(0xAB);
  EXPECT_FALSE(t.get(0xAB).has_value());
}

TEST(FingerprintTable, PutOverwrites) {
  FingerprintTable t;
  t.put(0xAB, FpEntry{1, 0});
  t.put(0xAB, FpEntry{2, 5});
  auto e = t.get(0xAB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->packet_id, 2u);  // "replacing the entry from Pstored to Pnew"
  EXPECT_EQ(t.size(), 1u);
}

TEST(FingerprintTable, GetAbsent) {
  FingerprintTable t;
  EXPECT_FALSE(t.get(0x123).has_value());
}

TEST(FingerprintTable, Clear) {
  FingerprintTable t;
  t.put(1, {});
  t.put(2, {});
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

// ---------------------------------------------------------- ByteCache --

std::vector<rabin::Anchor> anchors_at(
    std::initializer_list<std::pair<std::uint16_t, rabin::Fingerprint>> list) {
  std::vector<rabin::Anchor> v;
  for (auto [off, fp] : list) v.push_back(rabin::Anchor{off, fp});
  return v;
}

TEST(ByteCache, UpdateThenFind) {
  ByteCache cache;
  const Bytes payload = payload_of('p', 128);
  cache.update(payload, anchors_at({{10, 0xF0}, {40, 0xE0}}), {});
  auto hit = cache.find(0xF0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->offset, 10u);
  EXPECT_EQ(hit->packet->payload, payload);
  auto hit2 = cache.find(0xE0);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->offset, 40u);
  EXPECT_EQ(hit2->packet->id, hit->packet->id);  // stored once
}

TEST(ByteCache, EmptyAnchorsNotStored) {
  ByteCache cache;
  EXPECT_EQ(cache.update(payload_of('p'), {}, {}), 0u);
  EXPECT_EQ(cache.store().size(), 0u);
}

TEST(ByteCache, FindMiss) {
  ByteCache cache;
  EXPECT_FALSE(cache.find(0x99).has_value());
  EXPECT_EQ(cache.stats().lookups, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ByteCache, NewerPacketOverwritesFingerprint) {
  ByteCache cache;
  cache.update(payload_of('a'), anchors_at({{0, 0xF0}}), {});
  cache.update(payload_of('b'), anchors_at({{5, 0xF0}}), {});
  auto hit = cache.find(0xF0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->packet->payload, payload_of('b'));
  EXPECT_EQ(hit->offset, 5u);
}

TEST(ByteCache, EvictedEntryIsPurgedEagerly) {
  // One 100-byte payload + budget margin.
  ByteCache cache(CacheConfig{.l1_bytes = 150});
  cache.update(payload_of('a', 100), anchors_at({{0, 0xA0}}), {});
  cache.update(payload_of('b', 100), anchors_at({{0, 0xB0}}), {});
  // 'a' was evicted; the eviction hook purged its fingerprint immediately,
  // so the lookup is a clean miss rather than a stale hit.
  auto hit = cache.find(0xA0);
  EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(cache.stats().stale_hits, 0u);
  EXPECT_EQ(cache.stats().fingerprints_purged, 1u);
  EXPECT_EQ(cache.fingerprint_count(), 1u);
  cache.audit();  // asserts zero stale entries survive the purge
}

TEST(ByteCache, FlushClearsEverything) {
  ByteCache cache;
  cache.update(payload_of('a'), anchors_at({{0, 0xA0}}), {});
  cache.flush();
  EXPECT_FALSE(cache.find(0xA0).has_value());
  EXPECT_EQ(cache.store().size(), 0u);
  EXPECT_EQ(cache.fingerprint_count(), 0u);
  EXPECT_EQ(cache.stats().flushes, 1u);
}

TEST(ByteCache, MetaPreserved) {
  ByteCache cache;
  PacketMeta meta;
  meta.tcp_seq = 1234;
  meta.has_tcp_seq = true;
  meta.stream_index = 9;
  meta.epoch = 3;
  meta.src_uid = 77;
  cache.update(payload_of('a'), anchors_at({{0, 0xA0}}), meta);
  auto hit = cache.find(0xA0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->packet->meta.tcp_seq, 1234u);
  EXPECT_TRUE(hit->packet->meta.has_tcp_seq);
  EXPECT_EQ(hit->packet->meta.stream_index, 9u);
  EXPECT_EQ(hit->packet->meta.epoch, 3u);
  EXPECT_EQ(hit->packet->meta.src_uid, 77u);
}

TEST(ByteCache, StatsCountInsertions) {
  ByteCache cache;
  cache.update(payload_of('a'), anchors_at({{0, 1}, {1, 2}, {2, 3}}), {});
  EXPECT_EQ(cache.stats().packets_inserted, 1u);
  EXPECT_EQ(cache.stats().fingerprints_inserted, 3u);
}

}  // namespace
}  // namespace bytecache::cache
