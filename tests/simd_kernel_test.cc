// Equivalence tests for the runtime-dispatched scan kernels
// (rabin/scan_kernel.h): every SIMD tier must be bit-identical to the
// scalar reference — same fingerprints, same anchors, same wire bytes —
// on every input, or the cache contents silently fork between peers.
//
// The size sweeps deliberately hug the seams: payloads at and around
// multiples of the widest vector step (the AVX2 membership path eats 32
// bytes per iteration and writes 64-bit mask words) and around the w-1
// positions at the end where no full window fits, because that is where
// a lane-split or tail loop goes wrong first.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/anchors.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/policies.h"
#include "rabin/scan_kernel.h"
#include "rabin/window.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache {
namespace {

using testutil::random_bytes;
using testutil::segment_stream;
using testutil::test_encoder;
using util::Bytes;
using util::Rng;

std::vector<rabin::ScanKernelKind> available_kernels() {
  std::vector<rabin::ScanKernelKind> out;
  for (const auto kind :
       {rabin::ScanKernelKind::kScalar, rabin::ScanKernelKind::kSse2,
        rabin::ScanKernelKind::kAvx2}) {
    if (rabin::scan_kernel_available(kind)) out.push_back(kind);
  }
  return out;
}

/// Sizes that straddle the interesting boundaries: multiples of the
/// 32/64-byte vector strides (+/- 2) and the window edge, plus a few
/// larger odd sizes so every lane of the block split gets a tail.
std::vector<std::size_t> seam_sizes(std::size_t w) {
  std::vector<std::size_t> sizes = {w, w + 1, w + 2, 2 * w - 1, 2 * w + 1};
  for (const std::size_t base : {std::size_t{64}, std::size_t{128},
                                 std::size_t{256}, std::size_t{1024},
                                 std::size_t{1460}, std::size_t{4096}}) {
    for (std::size_t d = 0; d <= 4; ++d) sizes.push_back(base - 2 + d);
  }
  return sizes;
}

// ------------------------------------------------------- kernel fills --

TEST(ScanKernelEquiv, FillMatchesScalarAtSeamSizes) {
  for (const std::size_t w : {std::size_t{16}, std::size_t{32},
                              std::size_t{64}}) {
    const rabin::RabinTables tables(w);
    const rabin::ScanKernel& scalar =
        rabin::scan_kernel(rabin::ScanKernelKind::kScalar);
    Rng rng(testutil::test_seed(201));
    for (const std::size_t n : seam_sizes(w)) {
      if (n < w) continue;
      const Bytes payload = random_bytes(rng, n);
      std::vector<rabin::Fingerprint> expected(n - w + 1);
      scalar.fill_fingerprints(tables, payload.data(), n, expected.data());
      for (const auto kind : available_kernels()) {
        const rabin::ScanKernel& kernel = rabin::scan_kernel(kind);
        // Poisoned output: a position the kernel forgets to write shows
        // up as the sentinel, not as luckily-matching stale data.
        std::vector<rabin::Fingerprint> got(n - w + 1, 0xDEADDEADDEADDEAD);
        kernel.fill_fingerprints(tables, payload.data(), n, got.data());
        ASSERT_EQ(got, expected) << kernel.name << " w=" << w << " n=" << n;
      }
    }
  }
}

TEST(ScanKernelEquiv, FillMatchesScalarOnRandomSizes) {
  const rabin::RabinTables tables(16);
  const rabin::ScanKernel& scalar =
      rabin::scan_kernel(rabin::ScanKernelKind::kScalar);
  Rng rng(testutil::test_seed(202));
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng.uniform(16, 3000);
    const Bytes payload = random_bytes(rng, n);
    std::vector<rabin::Fingerprint> expected(n - 16 + 1);
    scalar.fill_fingerprints(tables, payload.data(), n, expected.data());
    for (const auto kind : available_kernels()) {
      std::vector<rabin::Fingerprint> got(n - 16 + 1);
      rabin::scan_kernel(kind).fill_fingerprints(tables, payload.data(), n,
                                                 got.data());
      ASSERT_EQ(got, expected)
          << rabin::scan_kernel(kind).name << " n=" << n;
    }
  }
}

TEST(ScanKernelEquiv, MemberMaskMatchesNaiveBitLoop) {
  Rng rng(testutil::test_seed(203));
  for (int trial = 0; trial < 60; ++trial) {
    // Random membership sets, including the empty and full extremes.
    std::array<std::uint64_t, 4> set{};
    if (trial % 10 != 0) {
      for (auto& word : set) word = rng.next_u64();
    }
    if (trial % 10 == 5) set.fill(~std::uint64_t{0});
    const std::size_t n =
        trial < 8 ? static_cast<std::size_t>(trial) : rng.uniform(1, 2000);
    const Bytes payload = random_bytes(rng, n);
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> expected(words, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t b = payload[i];
      if ((set[b >> 6] >> (b & 63u)) & 1u) {
        expected[i >> 6] |= std::uint64_t{1} << (i & 63u);
      }
    }
    for (const auto kind : available_kernels()) {
      // Pre-set garbage: bits past n must come back zero, not survive.
      std::vector<std::uint64_t> got(words, ~std::uint64_t{0});
      rabin::scan_kernel(kind).member_mask(set, payload.data(), n,
                                           got.data());
      ASSERT_EQ(got, expected)
          << rabin::scan_kernel(kind).name << " n=" << n;
    }
  }
}

// --------------------------------------------------- anchor selection --

TEST(ScanKernelEquiv, SelectionIdenticalUnderEveryKernel) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(204));
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = trial < 4 ? static_cast<std::size_t>(trial * 8)
                                    : rng.uniform(1, 2000);
    const Bytes payload = random_bytes(rng, n);
    std::vector<rabin::Anchor> expected_vs;
    std::vector<rabin::Anchor> expected_maxp;
    std::vector<rabin::Anchor> expected_sb;
    {
      rabin::ScopedScanKernel pin(rabin::ScanKernelKind::kScalar);
      expected_vs = rabin::selected_anchors(tables, payload, 4);
      expected_maxp = rabin::selected_anchors_maxp(tables, payload, 31);
      expected_sb =
          rabin::selected_anchors_samplebyte(tables, payload, 16, 8);
    }
    for (const auto kind : available_kernels()) {
      rabin::ScopedScanKernel pin(kind);
      const char* name = rabin::scan_kernel().name;
      ASSERT_EQ(rabin::selected_anchors(tables, payload, 4), expected_vs)
          << name << " n=" << n;
      ASSERT_EQ(rabin::selected_anchors_maxp(tables, payload, 31),
                expected_maxp)
          << name << " n=" << n;
      ASSERT_EQ(rabin::selected_anchors_samplebyte(tables, payload, 16, 8),
                expected_sb)
          << name << " n=" << n;
    }
  }
}

// ------------------------------------------------- end-to-end wire bytes --

struct E2EConfig {
  const char* name;
  core::PolicyKind policy;
  core::SelectMode mode;
  std::size_t cache_bytes;
  bool epoch_resync;
};

// The six tracked data-plane configurations (mirrors bench_throughput's
// workload list): kernel choice must never change a single wire byte in
// any of them.
constexpr E2EConfig kConfigs[] = {
    {"naive_valuesampling", core::PolicyKind::kNaive,
     core::SelectMode::kValueSampling, 0, false},
    {"naive_maxp", core::PolicyKind::kNaive, core::SelectMode::kMaxp, 0,
     false},
    {"naive_samplebyte", core::PolicyKind::kNaive,
     core::SelectMode::kSampleByte, 0, false},
    {"tcpseq_valuesampling", core::PolicyKind::kTcpSeq,
     core::SelectMode::kValueSampling, 0, false},
    {"naive_bounded256k", core::PolicyKind::kNaive,
     core::SelectMode::kValueSampling, 256 * 1024, false},
    {"resilient_valuesampling", core::PolicyKind::kResilient,
     core::SelectMode::kValueSampling, 0, true},
};

/// Encodes `stream` under the pinned kernel and returns every post-encode
/// payload (the exact wire bytes), verifying decode restores the
/// original along the way.
std::vector<Bytes> wire_bytes_under(rabin::ScanKernelKind kind,
                                    const E2EConfig& cfg,
                                    const Bytes& object) {
  rabin::ScopedScanKernel pin(kind);
  core::DreParams params;
  params.select_mode = cfg.mode;
  params.epoch_resync = cfg.epoch_resync;
  cache::CacheConfig cc;
  cc.l1_bytes = cfg.cache_bytes;
  core::Encoder enc = test_encoder(cfg.policy, params, cc);
  core::Decoder dec(params, cc);
  std::vector<Bytes> wire;
  for (const auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    enc.process(*pkt);
    wire.push_back(pkt->payload);
    const auto dinfo = dec.process(*pkt);
    EXPECT_FALSE(core::is_drop(dinfo.status)) << cfg.name;
    EXPECT_EQ(pkt->payload, original) << cfg.name;
  }
  enc.audit();
  dec.audit();
  return wire;
}

TEST(ScanKernelEquiv, WireBytesIdenticalAcrossKernelsForEveryConfig) {
  Rng rng(testutil::test_seed(205));
  // Redundant stream (repeated chunks + noise) so real regions, cache
  // churn, and — under the bounded config — evictions all happen.
  Bytes object;
  std::vector<Bytes> chunks;
  for (int i = 0; i < 6; ++i) {
    chunks.push_back(random_bytes(rng, 500 + 100 * static_cast<std::size_t>(i)));
  }
  for (int i = 0; i < 100; ++i) {
    const Bytes& c = chunks[rng.zipf(chunks.size(), 1.0)];
    object.insert(object.end(), c.begin(), c.end());
    if (i % 7 == 0) {
      const Bytes noise = random_bytes(rng, rng.uniform(50, 400));
      object.insert(object.end(), noise.begin(), noise.end());
    }
  }

  for (const E2EConfig& cfg : kConfigs) {
    const std::vector<Bytes> expected =
        wire_bytes_under(rabin::ScanKernelKind::kScalar, cfg, object);
    for (const auto kind : available_kernels()) {
      if (kind == rabin::ScanKernelKind::kScalar) continue;
      const std::vector<Bytes> got = wire_bytes_under(kind, cfg, object);
      ASSERT_EQ(got.size(), expected.size()) << cfg.name;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << cfg.name << " packet " << i << " under kernel "
            << rabin::scan_kernel(kind).name;
      }
    }
  }
}

// ------------------------------------------------ environment overrides --

/// Restores the scan-kernel environment and re-runs detection on scope
/// exit, so an override cannot leak into later tests in this binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.empty()) {
      ::unsetenv(name_);
    } else {
      ::setenv(name_, saved_.c_str(), 1);
    }
    rabin::refresh_scan_kernel();
  }

 private:
  const char* name_;
  std::string saved_;
};

/// What detection yields under the process's *ambient* environment —
/// the CI scalar-fallback leg runs this whole binary with
/// BYTECACHE_DISABLE_SIMD=1 exported, so "restored" does not always
/// mean "best tier".
rabin::ScanKernelKind ambient_kernel() {
  rabin::refresh_scan_kernel();
  return rabin::scan_kernel().kind;
}

/// What detection falls back to when BYTECACHE_SCAN_KERNEL is absent or
/// unrecognised: the best supported tier, unless the ambient kill switch
/// (same non-empty-and-not-"0" rule as scan_kernel.cc) pins scalar.
rabin::ScanKernelKind detect_fallback() {
  const char* v = std::getenv("BYTECACHE_DISABLE_SIMD");
  if (v != nullptr && v[0] != '\0' && std::string(v) != "0") {
    return rabin::ScanKernelKind::kScalar;
  }
  return available_kernels().back();
}

TEST(ScanKernelEnv, DisableSimdForcesScalar) {
  const auto ambient = ambient_kernel();
  {
    ScopedEnv env("BYTECACHE_DISABLE_SIMD", "1");
    rabin::refresh_scan_kernel();
    EXPECT_EQ(rabin::scan_kernel().kind, rabin::ScanKernelKind::kScalar);
    EXPECT_STREQ(rabin::scan_kernel().name, "scalar");
  }
  // Detection re-ran on scope exit: back to the ambient dispatch.
  EXPECT_EQ(rabin::scan_kernel().kind, ambient);
}

TEST(ScanKernelEnv, KernelPinSelectsRequestedTier) {
  const auto ambient = ambient_kernel();
  {
    ScopedEnv env("BYTECACHE_SCAN_KERNEL", "scalar");
    rabin::refresh_scan_kernel();
    EXPECT_EQ(rabin::scan_kernel().kind, rabin::ScanKernelKind::kScalar);
  }
  // An unknown name is ignored (dispatch falls back to detection).
  {
    ScopedEnv env("BYTECACHE_SCAN_KERNEL", "avx9000");
    rabin::refresh_scan_kernel();
    EXPECT_EQ(rabin::scan_kernel().kind, detect_fallback());
  }
  // The kill switch wins over an explicit pin.
  {
    ScopedEnv outer("BYTECACHE_SCAN_KERNEL", "avx2");
    ScopedEnv env("BYTECACHE_DISABLE_SIMD", "1");
    rabin::refresh_scan_kernel();
    EXPECT_EQ(rabin::scan_kernel().kind, rabin::ScanKernelKind::kScalar);
  }
  EXPECT_EQ(rabin::scan_kernel().kind, ambient);
}

}  // namespace
}  // namespace bytecache
