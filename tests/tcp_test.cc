#include <gtest/gtest.h>

#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "tcp/congestion.h"
#include "tcp/receiver.h"
#include "tcp/rto.h"
#include "tcp/sender.h"
#include "util/rng.h"
#include "workload/text.h"

namespace bytecache::tcp {
namespace {

using sim::ms;
using sim::sec;
using sim::SimTime;
using util::Bytes;

// ---------------------------------------------------------------- rto --

TEST(RttEstimator, InitialRtoUsedBeforeSamples) {
  RttEstimator est(ms(1000), ms(200), sec(60));
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), ms(1000));
}

TEST(RttEstimator, FirstSampleSetsSrttAndVar) {
  RttEstimator est(ms(1000), ms(200), sec(60));
  est.sample(ms(100));
  EXPECT_EQ(est.srtt(), ms(100));
  EXPECT_EQ(est.rttvar(), ms(50));
  EXPECT_EQ(est.rto(), ms(300));  // srtt + 4*var
}

TEST(RttEstimator, SmoothsTowardSamples) {
  RttEstimator est(ms(1000), ms(200), sec(60));
  est.sample(ms(100));
  for (int i = 0; i < 50; ++i) est.sample(ms(100));
  EXPECT_EQ(est.srtt(), ms(100));
  // With constant RTT, var decays and RTO approaches the floor.
  EXPECT_LE(est.rto(), ms(250));
  EXPECT_GE(est.rto(), ms(200));
}

TEST(RttEstimator, MinRtoEnforced) {
  RttEstimator est(ms(1000), ms(200), sec(60));
  for (int i = 0; i < 100; ++i) est.sample(ms(1));
  EXPECT_GE(est.rto(), ms(200));
}

TEST(RttEstimator, BackoffDoublesAndCaps) {
  RttEstimator est(ms(1000), ms(200), sec(8));
  est.sample(ms(100));
  const SimTime base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), base * 2);
  est.backoff();
  EXPECT_EQ(est.rto(), base * 4);
  for (int i = 0; i < 20; ++i) est.backoff();
  EXPECT_EQ(est.rto(), sec(8));  // capped
  est.reset_backoff();
  EXPECT_EQ(est.rto(), base);
}

// --------------------------------------------------------- congestion --

TEST(RenoCongestion, SlowStartDoublesPerRtt) {
  RenoCongestion cc(1000, 2);
  EXPECT_EQ(cc.cwnd(), 2000u);
  EXPECT_TRUE(cc.in_slow_start());
  // Two ACKs of one MSS each: +1000 each.
  cc.on_new_ack(1000);
  cc.on_new_ack(1000);
  EXPECT_EQ(cc.cwnd(), 4000u);
}

TEST(RenoCongestion, CongestionAvoidanceLinear) {
  RenoCongestion cc(1000, 2);
  cc.on_timeout(8000);  // ssthresh = 4000, cwnd = 1000
  EXPECT_EQ(cc.ssthresh(), 4000u);
  EXPECT_EQ(cc.cwnd(), 1000u);
  // Grow past ssthresh via slow start, then verify sub-MSS growth.
  while (cc.in_slow_start()) cc.on_new_ack(1000);
  const std::size_t w = cc.cwnd();
  cc.on_new_ack(1000);
  EXPECT_LT(cc.cwnd() - w, 1000u);
  EXPECT_GT(cc.cwnd(), w);  // fractional accumulation still counts
}

TEST(RenoCongestion, FastRetransmitHalves) {
  RenoCongestion cc(1000, 10);
  cc.on_fast_retransmit(10000);
  EXPECT_EQ(cc.ssthresh(), 5000u);
  EXPECT_EQ(cc.cwnd(), 5000u + 3000u);  // + 3 dupacks inflation
  EXPECT_TRUE(cc.in_fast_recovery());
  cc.on_dup_ack_in_recovery();
  EXPECT_EQ(cc.cwnd(), 9000u);
  cc.on_recovery_exit();
  EXPECT_EQ(cc.cwnd(), 5000u);
  EXPECT_FALSE(cc.in_fast_recovery());
}

TEST(RenoCongestion, SsthreshFloorTwoMss) {
  RenoCongestion cc(1000, 10);
  cc.on_timeout(1000);
  EXPECT_EQ(cc.ssthresh(), 2000u);
  EXPECT_EQ(cc.cwnd(), 1000u);
}

TEST(RenoCongestion, PartialAckDeflatesAndReinflates) {
  RenoCongestion cc(1000, 10);
  cc.on_fast_retransmit(10000);
  const std::size_t before = cc.cwnd();
  cc.on_partial_ack(3000);
  EXPECT_EQ(cc.cwnd(), before - 3000 + 1000);
}

// --------------------------------------- sender/receiver integration --

struct Loop {
  sim::Simulator sim;
  TcpConfig config;
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  explicit Loop(double loss = 0.0, std::uint64_t seed = 1,
                double reorder = 0.0) {
    config.src_ip = 0x0A000001;
    config.dst_ip = 0x0A000101;
    sim::LinkConfig fcfg;
    fcfg.rate_bytes_per_sec = 1e6;
    fcfg.propagation_delay = ms(25);
    fcfg.queue_packets = 1 << 16;
    fcfg.reorder_prob = reorder;
    sim::LinkConfig rcfg;
    rcfg.rate_bytes_per_sec = 1e7;
    rcfg.propagation_delay = ms(25);
    rcfg.queue_packets = 1 << 16;
    fwd = std::make_unique<sim::Link>(
        sim, fcfg,
        loss > 0 ? std::unique_ptr<sim::LossProcess>(
                       std::make_unique<sim::BernoulliLoss>(loss))
                 : std::make_unique<sim::NoLoss>(),
        util::Rng(seed));
    rev = std::make_unique<sim::Link>(sim, rcfg, std::make_unique<sim::NoLoss>(),
                                      util::Rng(seed + 1));
    sender = std::make_unique<TcpSender>(
        sim, config, [this](packet::PacketPtr p) { fwd->send(std::move(p)); });
    receiver = std::make_unique<TcpReceiver>(
        sim, config, [this](packet::PacketPtr p) { rev->send(std::move(p)); });
    fwd->set_sink([this](packet::PacketPtr p) { receiver->on_packet(*p); });
    rev->set_sink([this](packet::PacketPtr p) { sender->on_packet(*p); });
  }
};

Bytes test_file(std::size_t size, std::uint64_t seed = 42) {
  util::Rng rng(seed);
  return workload::random_text(rng, size);
}

TEST(TcpLoop, PerfectLinkDeliversExactly) {
  Loop loop;
  const Bytes file = test_file(100'000);
  loop.sender->start(file);
  loop.sim.run();
  EXPECT_TRUE(loop.sender->completed());
  EXPECT_FALSE(loop.sender->aborted());
  EXPECT_EQ(loop.receiver->stream(), file);
  EXPECT_EQ(loop.sender->stats().retransmissions, 0u);
}

TEST(TcpLoop, SingleSegmentFile) {
  Loop loop;
  const Bytes file = test_file(100);
  loop.sender->start(file);
  loop.sim.run();
  EXPECT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
}

TEST(TcpLoop, EmptyNonMultipleSizes) {
  for (std::size_t size : {1u, 1459u, 1460u, 1461u, 2920u, 10'001u}) {
    Loop loop;
    const Bytes file = test_file(size);
    loop.sender->start(file);
    loop.sim.run();
    EXPECT_TRUE(loop.sender->completed()) << size;
    EXPECT_EQ(loop.receiver->stream(), file) << size;
  }
}

TEST(TcpLoop, ThroughputBoundedByLink) {
  Loop loop;
  const Bytes file = test_file(500'000);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  // 500 KB over a 1 MB/s link cannot take less than 0.5 s.
  EXPECT_GE(loop.sim.now(), ms(500));
  // ...and with working congestion control not more than ~3x that.
  EXPECT_LE(loop.sim.now(), ms(1700));
}

TEST(TcpLoop, RecoversFromLoss) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Loop loop(0.02, seed);
    const Bytes file = test_file(200'000);
    loop.sender->start(file);
    loop.sim.run();
    EXPECT_TRUE(loop.sender->completed()) << seed;
    EXPECT_EQ(loop.receiver->stream(), file) << seed;
    EXPECT_GT(loop.sender->stats().retransmissions, 0u) << seed;
  }
}

TEST(TcpLoop, RecoversFromHeavyLoss) {
  Loop loop(0.15, 7);
  const Bytes file = test_file(50'000);
  loop.sender->start(file);
  loop.sim.run();
  EXPECT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
  EXPECT_GT(loop.sender->stats().timeouts, 0u);
}

TEST(TcpLoop, LossMakesTransfersSlower) {
  Loop clean(0.0, 1);
  Loop lossy(0.05, 1);
  const Bytes file = test_file(200'000);
  clean.sender->start(file);
  clean.sim.run();
  lossy.sender->start(file);
  lossy.sim.run();
  ASSERT_TRUE(clean.sender->completed());
  ASSERT_TRUE(lossy.sender->completed());
  EXPECT_GT(lossy.sim.now(), clean.sim.now());
}

TEST(TcpLoop, ToleratesReordering) {
  Loop loop(0.0, 3, /*reorder=*/0.1);
  const Bytes file = test_file(150'000);
  loop.sender->start(file);
  loop.sim.run();
  EXPECT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
}

TEST(TcpLoop, FastRetransmitEngagesOnIsolatedLoss) {
  Loop loop(0.01, 11);
  const Bytes file = test_file(300'000);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_GT(loop.sender->stats().fast_retransmits, 0u);
}

TEST(TcpLoop, ReceiverCountsOutOfOrderSegments) {
  Loop loop(0.03, 5);
  const Bytes file = test_file(200'000);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_GT(loop.receiver->stats().out_of_order, 0u);
  EXPECT_GT(loop.receiver->stats().acks_sent, 0u);
}

/// A "black hole" from some offset on: models the paper's stall condition
/// where retransmissions can never get through.
TEST(TcpSender, AbortsAfterMaxBackoffs) {
  sim::Simulator sim;
  TcpConfig config;
  config.max_backoffs = 4;
  bool aborted = false;
  std::uint64_t delivered_at_abort = 0;
  int packets_through = 0;
  TcpReceiver* receiver_ptr = nullptr;
  TcpSender sender(sim, config, [&](packet::PacketPtr p) {
    // Deliver only the first 3 data packets, then black-hole everything.
    if (++packets_through <= 3 && receiver_ptr != nullptr) {
      sim.after(ms(1), [&, sp = std::make_shared<packet::PacketPtr>(
                               std::move(p))] { receiver_ptr->on_packet(**sp); });
    }
  });
  TcpReceiver receiver(sim, config, [&](packet::PacketPtr p) {
    sim.after(ms(1), [&, sp = std::make_shared<packet::PacketPtr>(
                             std::move(p))] { sender.on_packet(**sp); });
  });
  receiver_ptr = &receiver;
  sender.set_on_abort([&](std::uint64_t d) {
    aborted = true;
    delivered_at_abort = d;
  });
  sender.start(test_file(100'000));
  sim.run();
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(sender.aborted());
  EXPECT_FALSE(sender.completed());
  EXPECT_EQ(delivered_at_abort, 3u * 1460u);
  EXPECT_EQ(sender.stats().timeouts, 5u);  // 4 backoffs + the fatal one
}

TEST(TcpLoop, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Loop loop(0.05, seed);
    loop.sender->start(test_file(100'000));
    loop.sim.run();
    return std::pair(loop.sim.now(), loop.sender->stats().retransmissions);
  };
  EXPECT_EQ(run_once(9), run_once(9));
}

}  // namespace
}  // namespace bytecache::tcp
