// Tests for the paper's Section VIII "potential approaches", which the
// authors describe but do not evaluate — implemented here as opt-in
// extensions: decoder->encoder NACK feedback (informed marking) and
// ACK-gated references.
#include <gtest/gtest.h>

#include "cache/byte_cache.h"
#include "core/control.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/flow.h"
#include "core/wire.h"
#include "gateway/gateways.h"
#include "harness/experiment.h"
#include "tests/testutil.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using testutil::test_encoder;
using testutil::make_tcp_packet;
using testutil::random_bytes;
using util::Bytes;
using util::Rng;

// ------------------------------------------------------ control format --

TEST(ControlMessage, RoundTrip) {
  core::ControlMessage msg;
  msg.fingerprints = {0x1111222233334444ull, 0xAAAABBBBCCCCDDDDull};
  const Bytes wire = msg.serialize();
  EXPECT_EQ(wire.size(), 3 + 16u);
  auto parsed = core::ControlMessage::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, core::ControlMessage::Type::kNack);
  EXPECT_EQ(parsed->fingerprints, msg.fingerprints);
}

TEST(ControlMessage, ParseRejectsMalformed) {
  EXPECT_FALSE(core::ControlMessage::parse({}).has_value());
  Bytes short_msg = {core::kControlMagic, 1};
  EXPECT_FALSE(core::ControlMessage::parse(short_msg).has_value());
  core::ControlMessage msg;
  msg.fingerprints = {42};
  Bytes wire = msg.serialize();
  wire[0] = 0x00;  // bad magic
  EXPECT_FALSE(core::ControlMessage::parse(wire).has_value());
  wire = msg.serialize();
  wire[1] = 99;  // unknown type
  EXPECT_FALSE(core::ControlMessage::parse(wire).has_value());
  wire = msg.serialize();
  wire.push_back(0);  // length mismatch
  EXPECT_FALSE(core::ControlMessage::parse(wire).has_value());
}

TEST(ControlMessage, EmptyNackAllowed) {
  core::ControlMessage msg;
  auto parsed = core::ControlMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fingerprints.empty());
}

// -------------------------------------------------- cache invalidation --

TEST(ByteCacheInvalidate, RemovesPacketAndAllItsEntries) {
  cache::ByteCache cache;
  std::vector<rabin::Anchor> anchors = {{0, 0xA0}, {10, 0xB0}};
  cache.update(Bytes(64, 'p'), anchors, {});
  ASSERT_TRUE(cache.invalidate(0xA0));
  EXPECT_FALSE(cache.find(0xA0).has_value());
  // The *other* fingerprint of the same packet is now stale too.
  EXPECT_FALSE(cache.find(0xB0).has_value());
  EXPECT_EQ(cache.store().size(), 0u);
}

TEST(ByteCacheInvalidate, UnknownFingerprintIsNoop) {
  cache::ByteCache cache;
  EXPECT_FALSE(cache.invalidate(0x123));
}

// ------------------------------------------------------- NACK feedback --

TEST(NackFeedback, EncoderStopsReferencingNackedPacket) {
  core::DreParams params;
  auto enc = test_encoder(core::PolicyKind::kNaive, params);
  Rng rng(1);
  const Bytes data = random_bytes(rng, 1000);

  auto p1 = make_tcp_packet(data, 1000);
  enc.process(*p1);  // cached; imagine p1 lost on the link

  auto p2 = make_tcp_packet(data, 2000);
  auto info = enc.process(*p2);
  ASSERT_TRUE(info.encoded);  // referenced the lost packet

  // Decoder would NACK the missing fingerprint; replay that to the encoder.
  auto encoded = core::EncodedPayload::parse(p2->payload);
  ASSERT_TRUE(encoded.has_value());
  ASSERT_FALSE(encoded->regions.empty());
  enc.on_nack(encoded->regions[0].fp);
  EXPECT_EQ(enc.stats().nacks_received, 1u);
  EXPECT_EQ(enc.stats().nack_invalidations, 1u);

  // A further repetition cannot reference the invalidated packet...
  auto p3 = make_tcp_packet(data, 3000);
  const auto info3 = enc.process(*p3);
  EXPECT_FALSE(info3.encoded);
  // ...but p3 itself re-primes the cache, so p4 compresses again.
  auto p4 = make_tcp_packet(data, 4000);
  EXPECT_TRUE(enc.process(*p4).encoded);
}

TEST(NackFeedback, DecoderGatewayEmitsNack) {
  core::DreParams params;
  params.nack_feedback = true;
  core::GatewayConfig gw_cfg;
  gw_cfg.params = params;
  gw_cfg.policy = core::PolicyKind::kNaive;
  gateway::EncoderGateway enc_gw(gw_cfg);
  gateway::DecoderGateway dec_gw(gw_cfg);
  Rng rng(2);
  const Bytes data = random_bytes(rng, 1000);

  std::vector<packet::PacketPtr> out;
  enc_gw.set_sink([&](packet::PacketPtr p) { out.push_back(std::move(p)); });
  enc_gw.receive(make_tcp_packet(data, 1000));
  enc_gw.receive(make_tcp_packet(data, 2000));
  ASSERT_EQ(out.size(), 2u);

  packet::PacketPtr nack;
  dec_gw.set_feedback([&](packet::PacketPtr p) { nack = std::move(p); });
  dec_gw.set_sink([](packet::PacketPtr) {});
  // Lose out[0]; the encoded out[1] is undecodable.
  dec_gw.receive(std::move(out[1]));
  ASSERT_NE(nack, nullptr);
  EXPECT_EQ(nack->ip.protocol, core::kControlProto);
  EXPECT_EQ(dec_gw.stats().nacks_sent, 1u);

  // Feed the NACK back: the encoder invalidates the lost packet.
  enc_gw.receive_control(*nack);
  EXPECT_EQ(enc_gw.encoder()->stats().nack_invalidations, 1u);
}

TEST(NackFeedback, RescuesNaiveFromTheStall) {
  // The paper's Section IV stall: naive + 1% loss wedges the connection.
  // With NACK feedback the circular dependency is broken one RTT after it
  // forms, so transfers complete — the informed-marking result.
  Rng rng(3);
  const Bytes file = workload::make_file1(rng, 300'000);
  int plain_stalls = 0;
  int feedback_stalls = 0;
  for (int i = 0; i < 5; ++i) {
    harness::ExperimentConfig cfg;
    cfg.policy = core::PolicyKind::kNaive;
    cfg.loss_rate = 0.01;
    auto plain = harness::run_trial(cfg, file, 500 + i);
    cfg.dre.nack_feedback = true;
    auto rescued = harness::run_trial(cfg, file, 500 + i);
    if (plain.stalled) ++plain_stalls;
    if (rescued.stalled) ++feedback_stalls;
    EXPECT_TRUE(rescued.verified);
  }
  EXPECT_GE(plain_stalls, 4);
  EXPECT_EQ(feedback_stalls, 0);
}

TEST(NackFeedback, WorksUnderHeavyLoss) {
  Rng rng(4);
  const Bytes file = workload::make_file1(rng, 150'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.dre.nack_feedback = true;
  cfg.loss_rate = 0.10;
  auto r = harness::run_trial(cfg, file, 42);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

// ----------------------------------------------------------- ACK gating --

TEST(AckGated, NoReferencesBeforeAnyAck) {
  core::DreParams params;
  params.ack_gated = true;
  auto enc = test_encoder(core::PolicyKind::kNaive, params);
  Rng rng(5);
  const Bytes data = random_bytes(rng, 1000);
  enc.process(*make_tcp_packet(data, 1000));
  auto p2 = make_tcp_packet(data, 2000);
  EXPECT_FALSE(enc.process(*p2).encoded);
  EXPECT_GT(enc.stats().ack_gate_rejections, 0u);
}

TEST(AckGated, ReferencesOpenUpAfterAck) {
  core::DreParams params;
  params.ack_gated = true;
  auto enc = test_encoder(core::PolicyKind::kNaive, params);
  const std::uint64_t flow =
      core::flow_key_of(testutil::kSrcIp, testutil::kDstIp, 80, 40000);
  Rng rng(6);
  const Bytes data = random_bytes(rng, 1000);
  enc.process(*make_tcp_packet(data, 1000));  // covers seq [1000, 1980)

  enc.on_reverse_ack(flow, 1500);  // partial: segment not fully ACKed
  auto p2 = make_tcp_packet(data, 3000);
  EXPECT_FALSE(enc.process(*p2).encoded);
  // The cache-update pass re-pointed the entries at p2 (seq 3000..3980):
  // admission now tracks the *latest* copy, so the gate opens only once
  // that copy is covered by the cumulative ACK.
  enc.on_reverse_ack(flow, 1000 + 1000);
  auto p3 = make_tcp_packet(data, 5000);
  EXPECT_FALSE(enc.process(*p3).encoded);

  enc.on_reverse_ack(flow, 5000 + 1000);  // covers every cached copy
  auto p4 = make_tcp_packet(data, 7000);
  EXPECT_TRUE(enc.process(*p4).encoded);
}

TEST(AckGated, AckRegressionIgnored) {
  core::DreParams params;
  params.ack_gated = true;
  auto enc = test_encoder(core::PolicyKind::kNaive, params);
  const std::uint64_t flow =
      core::flow_key_of(testutil::kSrcIp, testutil::kDstIp, 80, 40000);
  Rng rng(7);
  const Bytes data = random_bytes(rng, 500);
  enc.process(*make_tcp_packet(data, 1000));
  enc.on_reverse_ack(flow, 5000);
  enc.on_reverse_ack(flow, 1200);  // stale ACK must not lower the gate
  auto p2 = make_tcp_packet(data, 9000);
  EXPECT_TRUE(enc.process(*p2).encoded);
}

TEST(AckGated, EliminatesUndecodablePacketsEntirely) {
  // The strong guarantee: every reference points to an ACKed segment,
  // which necessarily passed (and was cached by) the decoder.  No loss
  // pattern can produce an undecodable packet.
  Rng rng(8);
  const Bytes file = workload::make_file1(rng, 300'000);
  for (double loss : {0.02, 0.10}) {
    harness::ExperimentConfig cfg;
    cfg.policy = core::PolicyKind::kNaive;
    cfg.dre.ack_gated = true;
    cfg.loss_rate = loss;
    auto r = harness::run_trial(cfg, file, 77);
    EXPECT_TRUE(r.completed) << loss;
    EXPECT_TRUE(r.verified) << loss;
    EXPECT_EQ(r.decoder_drops, 0u) << loss;
    EXPECT_NEAR(r.perceived_loss, r.actual_loss, 1e-9) << loss;
  }
}

TEST(AckGated, StillSavesBytes) {
  Rng rng(9);
  const Bytes file = workload::make_file1(rng, 300'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.dre.ack_gated = true;
  auto r = harness::run_trial(cfg, file, 78);
  ASSERT_TRUE(r.completed);
  // References lag one RTT, so savings are smaller than unrestricted DRE
  // but must still be substantial on File 1.
  EXPECT_LT(r.payload_bytes_out, r.payload_bytes_in * 9 / 10);
}

}  // namespace
}  // namespace bytecache
