// Delayed-ACK (RFC 1122) receiver behaviour.
#include <gtest/gtest.h>

#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/rng.h"
#include "workload/text.h"

namespace bytecache::tcp {
namespace {

using sim::ms;
using util::Bytes;

struct DelackLoop {
  sim::Simulator sim;
  TcpConfig config;
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  DelackLoop(bool delayed, double loss, std::uint64_t seed) {
    config.delayed_ack = delayed;
    config.src_ip = 1;
    config.dst_ip = 2;
    sim::LinkConfig fcfg;
    fcfg.queue_packets = 1 << 16;
    sim::LinkConfig rcfg;
    rcfg.rate_bytes_per_sec = 1e7;
    rcfg.queue_packets = 1 << 16;
    fwd = std::make_unique<sim::Link>(
        sim, fcfg,
        loss > 0 ? std::unique_ptr<sim::LossProcess>(
                       std::make_unique<sim::BernoulliLoss>(loss))
                 : std::make_unique<sim::NoLoss>(),
        util::Rng(seed));
    rev = std::make_unique<sim::Link>(sim, rcfg,
                                      std::make_unique<sim::NoLoss>(),
                                      util::Rng(seed + 1));
    sender = std::make_unique<TcpSender>(
        sim, config, [this](packet::PacketPtr p) { fwd->send(std::move(p)); });
    receiver = std::make_unique<TcpReceiver>(
        sim, config, [this](packet::PacketPtr p) { rev->send(std::move(p)); });
    fwd->set_sink([this](packet::PacketPtr p) { receiver->on_packet(*p); });
    rev->set_sink([this](packet::PacketPtr p) { sender->on_packet(*p); });
  }
};

Bytes test_file(std::size_t size) {
  util::Rng rng(77);
  return workload::random_text(rng, size);
}

TEST(DelayedAck, TransferCompletesExact) {
  DelackLoop loop(true, 0.0, 1);
  const Bytes file = test_file(150'000);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
}

TEST(DelayedAck, RoughlyHalvesAckCount) {
  const Bytes file = test_file(150'000);
  DelackLoop immediate(false, 0.0, 1);
  immediate.sender->start(file);
  immediate.sim.run();
  DelackLoop delayed(true, 0.0, 1);
  delayed.sender->start(file);
  delayed.sim.run();
  ASSERT_TRUE(immediate.sender->completed());
  ASSERT_TRUE(delayed.sender->completed());
  EXPECT_LT(delayed.receiver->stats().acks_sent,
            immediate.receiver->stats().acks_sent * 3 / 4);
  EXPECT_GE(delayed.receiver->stats().acks_sent,
            immediate.receiver->stats().acks_sent / 3);
}

TEST(DelayedAck, OutOfOrderDataAckedImmediately) {
  // Dup ACKs must still flow so fast retransmit works: a lossy transfer
  // must still complete with fast retransmits engaged.
  DelackLoop loop(true, 0.02, 5);
  const Bytes file = test_file(300'000);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
  EXPECT_GT(loop.sender->stats().fast_retransmits, 0u);
}

TEST(DelayedAck, TimerFlushesLoneSegment) {
  // A single segment (no second one coming) must still be ACKed within
  // the delack timeout, not wait forever.
  DelackLoop loop(true, 0.0, 9);
  const Bytes file = test_file(500);  // one segment
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  // Completion implies the delayed ACK fired; check it was timer-driven:
  // exactly one data segment, exactly one ACK.
  EXPECT_EQ(loop.receiver->stats().acks_sent, 1u);
  // And the completion happened no earlier than the delack timeout.
  EXPECT_GE(loop.sim.now(), loop.config.delack_timeout);
}

TEST(DelayedAck, SurvivesHeavyLoss) {
  DelackLoop loop(true, 0.10, 13);
  const Bytes file = test_file(80'000);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
}

}  // namespace
}  // namespace bytecache::tcp
