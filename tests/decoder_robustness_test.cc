// Adversarial decoder tests: malformed, corrupted, truncated, and
// reordered inputs must produce clean drops — never crashes, never wrong
// bytes.
#include <gtest/gtest.h>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "core/wire.h"
#include "tests/testutil.h"
#include "util/crc32.h"
#include "workload/generators.h"

namespace bytecache::core {
namespace {

using testutil::make_tcp_packet;
using testutil::make_udp_packet;
using testutil::random_bytes;
using testutil::segment_stream;
using util::Bytes;
using util::Rng;

/// An encoder/decoder pair with the decoder's cache warmed by `warm`
/// passthrough payloads.
struct Pair {
  DreParams params;
  Encoder enc;
  Decoder dec;

  Pair() : enc(params, make_policy(PolicyKind::kNaive, params)), dec(params) {}

  /// Runs a payload through both sides as a delivered packet.
  void deliver(const Bytes& payload) {
    auto pkt = make_udp_packet(payload);
    enc.process(*pkt);
    ASSERT_FALSE(is_drop(dec.process(*pkt).status));
  }
};

TEST(DecoderRobustness, HandCraftedRegionBeyondStoredPacket) {
  Pair pair;
  Rng rng(1);
  const Bytes base = random_bytes(rng, 400);
  pair.deliver(base);

  // Encode a second packet legitimately, then enlarge its region so it
  // reaches past the stored payload.
  auto pkt = make_udp_packet(base);
  ASSERT_TRUE(pair.enc.process(*pkt).encoded);
  auto enc = EncodedPayload::parse(pkt->payload);
  ASSERT_TRUE(enc.has_value());
  ASSERT_FALSE(enc->regions.empty());
  // offset_stored close to the end, length unchanged -> out of bounds.
  enc->regions[0].offset_stored = 395;
  pkt->payload = enc->serialize();
  const DecodeInfo info = pair.dec.process(*pkt);
  EXPECT_EQ(info.status, DecodeStatus::kBadRegionBounds);
}

TEST(DecoderRobustness, WrongCrcDropsEvenWhenStructurallyValid) {
  Pair pair;
  Rng rng(2);
  const Bytes base = random_bytes(rng, 400);
  pair.deliver(base);
  auto pkt = make_udp_packet(base);
  ASSERT_TRUE(pair.enc.process(*pkt).encoded);
  auto enc = EncodedPayload::parse(pkt->payload);
  ASSERT_TRUE(enc.has_value());
  enc->crc ^= 0xDEADBEEF;
  pkt->payload = enc->serialize();
  EXPECT_EQ(pair.dec.process(*pkt).status, DecodeStatus::kCrcMismatch);
}

TEST(DecoderRobustness, StaleEntryDifferentContentCaughtByCrc) {
  // The decoder's entry for a fingerprint can legitimately point to a
  // *newer* packet than the encoder referenced if deliveries were
  // reordered.  The reconstruction then splices wrong bytes — the CRC
  // must catch it.
  DreParams params;
  Decoder dec(params);
  Rng rng(3);
  const Bytes a = random_bytes(rng, 400);

  // Build a fake encoded packet referencing fingerprint of a's window,
  // but prime the decoder with a *different* payload that happens to
  // carry the same anchor offsets (simulated by hand).
  rabin::RabinTables tables(params.window, params.poly);
  const auto anchors = rabin::selected_anchors(tables, a, params.select_bits);
  ASSERT_FALSE(anchors.empty());

  // Prime decoder with payload a (passthrough).
  auto warm = make_udp_packet(a);
  dec.process(*warm);

  // Craft an encoded packet claiming its region decodes to random bytes
  // it never sent: CRC of *those* bytes won't match what the cache holds.
  const Bytes pretend_original = random_bytes(rng, 200);
  EncodedPayload enc;
  enc.orig_proto = 17;
  enc.orig_len = static_cast<std::uint16_t>(pretend_original.size());
  enc.crc = util::crc32(pretend_original);
  enc.regions.push_back(EncodedRegion{
      anchors[0].fp, 0, anchors[0].offset,
      static_cast<std::uint16_t>(100)});
  enc.literals.assign(pretend_original.begin() + 100, pretend_original.end());
  auto pkt = packet::make_packet(
      testutil::kSrcIp, testutil::kDstIp,
      static_cast<packet::IpProto>(packet::IpProto::kDre), enc.serialize());
  const DecodeInfo info = dec.process(*pkt);
  EXPECT_TRUE(is_drop(info.status));
}

TEST(DecoderRobustness, TruncationSweepNeverCrashes) {
  Pair pair;
  Rng rng(4);
  const Bytes base = random_bytes(rng, 1000);
  pair.deliver(base);
  auto pkt = make_udp_packet(base);
  ASSERT_TRUE(pair.enc.process(*pkt).encoded);
  const Bytes wire = pkt->payload;
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    auto copy = packet::make_packet(
        testutil::kSrcIp, testutil::kDstIp,
        static_cast<packet::IpProto>(packet::IpProto::kDre),
        Bytes(wire.begin(), wire.begin() + len));
    Decoder dec2(pair.params);
    auto warm = make_udp_packet(base);
    dec2.process(*warm);
    const DecodeInfo info = dec2.process(*copy);
    if (len == wire.size()) {
      EXPECT_EQ(info.status, DecodeStatus::kDecoded);
    } else {
      EXPECT_TRUE(is_drop(info.status)) << "len=" << len;
    }
  }
}

TEST(DecoderRobustness, BitFlipSweepNeverDeliversWrongBytes) {
  Pair pair;
  Rng rng(5);
  const Bytes base = random_bytes(rng, 600);
  pair.deliver(base);
  auto pkt = make_udp_packet(base);
  ASSERT_TRUE(pair.enc.process(*pkt).encoded);
  const Bytes wire = pkt->payload;
  const Bytes original = base;
  int delivered_ok = 0;
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (std::uint8_t bit : {0x01, 0x80}) {
      Bytes mutated = wire;
      mutated[pos] ^= bit;
      auto copy = packet::make_packet(
          testutil::kSrcIp, testutil::kDstIp,
          static_cast<packet::IpProto>(packet::IpProto::kDre),
          std::move(mutated));
      Decoder dec2(pair.params);
      auto warm = make_udp_packet(base);
      dec2.process(*warm);
      const DecodeInfo info = dec2.process(*copy);
      if (!is_drop(info.status) &&
          info.status == DecodeStatus::kDecoded) {
        // Flipping a bit of a region descriptor could in principle yield
        // a different-but-valid reconstruction; the CRC (4 bytes of the
        // shim) makes that a 2^-32 event.  Anything delivered must equal
        // the original.
        ASSERT_EQ(copy->payload, original) << "pos=" << pos;
        ++delivered_ok;
      }
    }
  }
  (void)delivered_ok;  // usually 0; equality asserted above regardless
}

TEST(DecoderRobustness, ReorderedDeliverySafe) {
  // Deliver an encoded stream in a permuted order: drops allowed, wrong
  // bytes not.
  DreParams params;
  Encoder enc(params, make_policy(PolicyKind::kNaive, params));
  Decoder dec(params);
  Rng rng(6);
  const Bytes object = workload::make_file1(rng, 60 * 1460);
  std::vector<packet::PacketPtr> wire;
  std::vector<Bytes> originals;
  for (auto& pkt : segment_stream(object)) {
    originals.push_back(pkt->payload);
    enc.process(*pkt);
    wire.push_back(std::move(pkt));
  }
  // Swap adjacent pairs (a simple but adversarial permutation).
  for (std::size_t i = 0; i + 1 < wire.size(); i += 2) {
    std::swap(wire[i], wire[i + 1]);
    std::swap(originals[i], originals[i + 1]);
  }
  std::size_t drops = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const DecodeInfo info = dec.process(*wire[i]);
    if (is_drop(info.status)) {
      ++drops;
    } else {
      ASSERT_EQ(wire[i]->payload, originals[i]) << i;
    }
  }
  EXPECT_LT(drops, wire.size());  // most still decode
}

TEST(DecoderRobustness, RandomGarbageAsDrePacket) {
  DreParams params;
  Decoder dec(params);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = random_bytes(rng, rng.uniform(0, 100));
    if (!junk.empty() && rng.chance(0.5)) junk[0] = kShimMagic;
    auto pkt = packet::make_packet(
        testutil::kSrcIp, testutil::kDstIp,
        static_cast<packet::IpProto>(packet::IpProto::kDre), std::move(junk));
    const DecodeInfo info = dec.process(*pkt);
    EXPECT_TRUE(is_drop(info.status));
  }
  EXPECT_EQ(dec.stats().decoded, 0u);
}

TEST(DecoderRobustness, DropsDoNotPolluteDecoderCache) {
  Pair pair;
  Rng rng(8);
  const Bytes a = random_bytes(rng, 500);
  pair.deliver(a);
  const std::size_t before = pair.dec.cache().store().size();

  // An undecodable packet (references a fingerprint the decoder lacks).
  DreParams params;
  Encoder enc2(params, make_policy(PolicyKind::kNaive, params));
  const Bytes b = random_bytes(rng, 500);
  auto lost = make_udp_packet(b);
  enc2.process(*lost);  // decoder never sees it
  auto dependent = make_udp_packet(b);
  ASSERT_TRUE(enc2.process(*dependent).encoded);
  ASSERT_TRUE(is_drop(pair.dec.process(*dependent).status));
  EXPECT_EQ(pair.dec.cache().store().size(), before);
}

}  // namespace
}  // namespace bytecache::core
