// Tests for the real-I/O layer (src/net, DESIGN.md §12): event-loop
// lifetime rules, the control-channel protocol, and the transport seam —
// including the acceptance check that the sim backend and the UDP
// loopback backend carry byte-identical wire traffic for the same
// plain-side stream.
#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/control.h"
#include "net/event_loop.h"
#include "net/gateway_tunnel.h"
#include "net/sim_transport.h"
#include "net/udp_socket.h"
#include "net/udp_transport.h"
#include "packet/packet.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache {
namespace {

using namespace std::chrono_literals;

/// Loopback with an ephemeral port.  NOT SocketAddr::parse: port 0 is
/// "unset" and parse rejects it by design.
net::SocketAddr loopback_any() {
  return net::SocketAddr{packet::make_ip(127, 0, 0, 1), 0};
}

// ---------------------------------------------------------- EventLoop --

TEST(EventLoopTest, OneshotTimerFiresOnce) {
  net::EventLoop loop;
  net::Timer timer(loop, [&] { loop.stop(); });
  timer.start_oneshot(1ms);
  EXPECT_TRUE(timer.armed());
  loop.run();
  EXPECT_EQ(timer.fired(), 1u);
  EXPECT_FALSE(timer.armed());
}

TEST(EventLoopTest, PeriodicTimerCancelStops) {
  net::EventLoop loop;
  int fires = 0;
  net::Timer timer(loop, [&] {
    if (++fires == 3) loop.stop();
  });
  timer.start_periodic(1ms);
  loop.run();
  EXPECT_EQ(fires, 3);
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  // A cancelled timer stays quiet through further loop iterations.
  loop.run_once(20);
  EXPECT_EQ(timer.fired(), 3u);
}

// The PR 1 cautionary tale: a callback that destroys its own timer must
// not leave the loop dispatching into freed memory.
TEST(EventLoopTest, TimerDestroyedByOwnCallback) {
  net::EventLoop loop;
  std::unique_ptr<net::Timer> timer;
  timer = std::make_unique<net::Timer>(loop, [&] {
    timer.reset();  // destroys the Timer (and its std::function) mid-fire
    loop.stop();
  });
  timer->start_oneshot(1ms);
  loop.run();
  EXPECT_EQ(timer, nullptr);
  EXPECT_EQ(loop.watched_fds(), 0u);
}

// Two fds ready in the same epoll batch, each handler removing the
// other: exactly one handler may run — the removed registration must be
// skipped even though its event was already harvested.
TEST(EventLoopTest, HandlerRemovedEarlierInBatchIsNotInvoked) {
  net::EventLoop loop;
  int fds_a[2];
  int fds_b[2];
  ASSERT_EQ(::pipe(fds_a), 0);
  ASSERT_EQ(::pipe(fds_b), 0);
  int ran_a = 0;
  int ran_b = 0;
  loop.add_fd(fds_a[0], EPOLLIN, [&](std::uint32_t) {
    ++ran_a;
    loop.remove_fd(fds_b[0]);
  });
  loop.add_fd(fds_b[0], EPOLLIN, [&](std::uint32_t) {
    ++ran_b;
    loop.remove_fd(fds_a[0]);
  });
  ASSERT_EQ(::write(fds_a[1], "x", 1), 1);
  ASSERT_EQ(::write(fds_b[1], "x", 1), 1);
  loop.run_once(100);
  EXPECT_EQ(ran_a + ran_b, 1);
  // The handler that ran removed its counterpart; it itself remains.
  EXPECT_EQ(loop.watched_fds(), 1u);
  for (int fd : {fds_a[0], fds_a[1], fds_b[0], fds_b[1]}) ::close(fd);
}

TEST(EventLoopTest, HandlerMayRemoveItself) {
  net::EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int ran = 0;
  loop.add_fd(fds[0], EPOLLIN, [&](std::uint32_t) {
    ++ran;
    loop.remove_fd(fds[0]);  // yanks this very registration mid-call
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.run_once(100);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.run_once(20);  // no registration left: nothing runs
  EXPECT_EQ(ran, 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, StopIsCrossBatchAndReentrant) {
  net::EventLoop loop;
  net::Timer timer(loop, [&] { loop.stop(); });
  timer.start_periodic(1ms);
  loop.run();  // returns because stop() was called from a handler
  // run() consumed the stop request: a second run with a fresh stop
  // works the same way (the flag does not stay latched).
  loop.run();
  EXPECT_GE(timer.fired(), 2u);
}

// -------------------------------------------------- Control protocol --

TEST(ControlProtocolTest, RequestRoundTrip) {
  net::ControlRequest req;
  req.command = net::ControlCommand::kSwitchPolicy;
  const std::string name = "k_distance";
  req.payload.assign(name.begin(), name.end());
  const util::Bytes wire = req.serialize();
  const auto parsed = net::ControlRequest::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->command, net::ControlCommand::kSwitchPolicy);
  EXPECT_EQ(parsed->payload, req.payload);
}

TEST(ControlProtocolTest, ResponseRoundTrip) {
  net::ControlResponse resp;
  resp.command = net::ControlCommand::kStats;
  resp.ok = true;
  resp.payload = {'p', 'o', 'n', 'g'};
  const util::Bytes wire = resp.serialize();
  const auto parsed = net::ControlResponse::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->command, net::ControlCommand::kStats);
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->payload, resp.payload);
}

TEST(ControlProtocolTest, StrictParseRejectsGarbage) {
  net::ControlRequest req;
  req.command = net::ControlCommand::kPing;
  util::Bytes wire = req.serialize();

  util::Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(net::ControlRequest::parse(bad_magic).has_value());

  const util::Bytes truncated(wire.begin(), wire.begin() + 3);
  EXPECT_FALSE(net::ControlRequest::parse(truncated).has_value());

  util::Bytes trailing = wire;
  trailing.push_back(0);  // length field no longer matches datagram size
  EXPECT_FALSE(net::ControlRequest::parse(trailing).has_value());

  util::Bytes unknown = wire;
  unknown[5] = 0x7F;  // command id nobody speaks
  EXPECT_FALSE(net::ControlRequest::parse(unknown).has_value());

  EXPECT_FALSE(net::ControlRequest::parse(util::Bytes{}).has_value());
  // A response frame is not a request frame.
  net::ControlResponse resp;
  resp.command = net::ControlCommand::kPing;
  EXPECT_FALSE(net::ControlRequest::parse(resp.serialize()).has_value());
}

// ------------------------------------------------------ Transports ----

/// One datagram of the redundant plain-side stream: a fixed random
/// corpus block stamped with the datagram index — high entropy inside
/// each datagram (so anchors exist), high redundancy across datagrams.
std::vector<util::Bytes> redundant_stream(std::size_t count,
                                          std::size_t size) {
  util::Rng rng(0xB17EC4C8Eull);
  util::Bytes base(size, 0);
  for (auto& b : base) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<util::Bytes> out;
  for (std::size_t i = 0; i < count; ++i) {
    util::Bytes d = base;
    d[0] = static_cast<std::uint8_t>(i);
    out.push_back(std::move(d));
  }
  return out;
}

TEST(SimTransportTest, DeliversSerializedPackets) {
  sim::Simulator sim;
  net::SimTransportPair pair(sim, net::SimTransportConfig{});
  std::vector<util::Bytes> received;
  pair.end_b().set_handler([&](util::BytesView wire) {
    received.emplace_back(wire.begin(), wire.end());
  });
  const auto pkt = testutil::make_udp_packet(redundant_stream(1, 400)[0]);
  const util::Bytes wire = packet::to_wire(*pkt);
  EXPECT_TRUE(pair.end_a().send(wire));
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], wire);
  EXPECT_EQ(pair.end_a().stats().datagrams_out, 1u);
  EXPECT_EQ(pair.end_b().stats().datagrams_in, 1u);
}

TEST(SimTransportTest, MalformedSendIsCountedNotDelivered) {
  sim::Simulator sim;
  net::SimTransportPair pair(sim, net::SimTransportConfig{});
  int delivered = 0;
  pair.end_b().set_handler([&](util::BytesView) { ++delivered; });
  const util::Bytes garbage = {1, 2, 3};
  EXPECT_FALSE(pair.end_a().send(garbage));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(pair.malformed_sends(), 1u);
  EXPECT_EQ(pair.end_a().stats().send_failures, 1u);
}

/// Runs `stream` through an encoder/decoder tunnel pair over the sim
/// backend and returns the delivered plain datagrams plus a borrow of
/// the encoder tunnel for stats assertions.
struct SimRun {
  std::vector<util::Bytes> delivered;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t encoded_packets = 0;
};

SimRun run_sim_backend(const std::vector<util::Bytes>& stream) {
  sim::Simulator sim;
  net::SimTransportPair pair(sim, net::SimTransportConfig{});
  net::TunnelConfig tc;
  tc.gateway.policy = core::PolicyKind::kCacheFlush;
  net::EncoderTunnel enc(tc, pair.end_a());
  SimRun run;
  net::DecoderTunnel dec(tc, pair.end_b(), [&](util::BytesView data) {
    run.delivered.emplace_back(data.begin(), data.end());
  });
  for (const util::Bytes& d : stream) {
    enc.on_plain_datagram(d, /*source_key=*/1);
    sim.run();
  }
  const core::EncoderStats& stats = enc.gw().encoder()->stats();
  run.bytes_in = stats.bytes_in;
  run.bytes_out = stats.bytes_out;
  run.encoded_packets = stats.encoded_packets;
  return run;
}

TEST(GatewayTunnelTest, SimBackendDeliversAndCompresses) {
  const auto stream = redundant_stream(32, 1200);
  const SimRun run = run_sim_backend(stream);
  ASSERT_EQ(run.delivered.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i)
    EXPECT_EQ(run.delivered[i], stream[i]) << "datagram " << i;
  EXPECT_GT(run.encoded_packets, 0u);
  EXPECT_LT(run.bytes_out, run.bytes_in);
}

TEST(GatewayTunnelTest, OversizePlainDatagramIsDropped) {
  sim::Simulator sim;
  net::SimTransportPair pair(sim, net::SimTransportConfig{});
  net::TunnelConfig tc;
  net::EncoderTunnel enc(tc, pair.end_a());
  enc.on_plain_datagram(util::Bytes(70000, 0), 1);
  EXPECT_EQ(enc.stats().oversize_dropped, 1u);
  EXPECT_EQ(enc.stats().plain_in, 0u);
}

TEST(GatewayTunnelTest, FlushAndPolicySwitchTakeEffect) {
  sim::Simulator sim;
  net::SimTransportPair pair(sim, net::SimTransportConfig{});
  net::TunnelConfig tc;
  tc.gateway.policy = core::PolicyKind::kCacheFlush;
  net::EncoderTunnel enc(tc, pair.end_a());
  net::DecoderTunnel dec(tc, pair.end_b(), [](util::BytesView) {});

  EXPECT_FALSE(enc.switch_policy("no_such_policy"));
  EXPECT_FALSE(enc.switch_policy("none"));  // cannot switch to no codec
  ASSERT_TRUE(enc.switch_policy("k_distance"));
  const core::EncoderStats& stats = enc.gw().encoder()->stats();
  EXPECT_EQ(stats.flushes, 1u);  // the switch flushed

  for (const util::Bytes& d : redundant_stream(16, 1200)) {
    enc.on_plain_datagram(d, 1);
    sim.run();
  }
  EXPECT_GT(stats.references, 0u);  // k-distance behavior is live

  ASSERT_TRUE(enc.flush_cache());
  ASSERT_TRUE(dec.flush_cache());
  EXPECT_EQ(enc.gw().encoder()->cache().store().entries().size(), 0u);
  // Operator-requested flushes are flush *events*: they must show in the
  // stats snapshot the operator reads next (the loopback smoke pins the
  // same thing across the control channel).
  EXPECT_EQ(stats.flushes, 2u);
}

// ------------------------------------------- UDP loopback backend -----

/// Pumps `loop` until `done()` or ~2 s of wall clock.
void pump_until(net::EventLoop& loop, const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!done() && std::chrono::steady_clock::now() < deadline)
    loop.run_once(10);
}

// The acceptance criterion of DESIGN.md §12: the same plain stream over
// the real-socket backend and the sim backend produces byte-identical
// encoder statistics (wire_ratio down to the integer byte counters).
TEST(GatewayTunnelTest, UdpLoopbackMatchesSimBackendByteForByte) {
  const auto stream = redundant_stream(32, 1200);
  const SimRun sim_run = run_sim_backend(stream);

  net::EventLoop loop;
  // Decoder side binds first (peerless: it learns the encoder's address
  // from the first datagram, the two-process launch-order contract).
  net::UdpTunnelTransport dec_t(loop, loopback_any(), net::SocketAddr{});
  net::UdpTunnelTransport enc_t(loop, loopback_any(), dec_t.local_addr());

  net::TunnelConfig tc;
  tc.gateway.policy = core::PolicyKind::kCacheFlush;
  net::EncoderTunnel enc(tc, enc_t);
  std::vector<util::Bytes> delivered;
  net::DecoderTunnel dec(tc, dec_t, [&](util::BytesView data) {
    delivered.emplace_back(data.begin(), data.end());
  });

  for (std::size_t i = 0; i < stream.size(); ++i) {
    enc.on_plain_datagram(stream[i], /*source_key=*/1);
    pump_until(loop, [&] { return delivered.size() == i + 1; });
  }
  ASSERT_EQ(delivered.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i)
    EXPECT_EQ(delivered[i], stream[i]) << "datagram " << i;

  const core::EncoderStats& stats = enc.gw().encoder()->stats();
  EXPECT_EQ(stats.bytes_in, sim_run.bytes_in);
  EXPECT_EQ(stats.bytes_out, sim_run.bytes_out);
  EXPECT_EQ(stats.encoded_packets, sim_run.encoded_packets);
  EXPECT_GT(stats.encoded_packets, 0u);
}

// ---------------------------------------------------- ControlServer ---

struct ControlFixture {
  net::EventLoop loop;
  bool flushed = false;
  std::string switched_to;
  bool shut_down = false;
  net::ControlServer server;
  net::UdpSocket client;

  ControlFixture()
      : server(loop, loopback_any(),
               net::ControlHandlers{
                   .stats_jsonl = [] { return std::string("{\"x\":1}\n"); },
                   .flush_cache =
                       [this] {
                         flushed = true;
                         return true;
                       },
                   .switch_policy =
                       [this](std::string_view name) {
                         switched_to = name;
                         return name == "k_distance";
                       },
                   .shutdown = [this] { shut_down = true; },
               }) {
    EXPECT_TRUE(client.bind(net::SocketAddr{}));
    loop.add_fd(client.fd(), EPOLLIN, [this](std::uint32_t) {
      client.drain([this](util::BytesView wire, const net::SocketAddr&) {
        if (auto r = net::ControlResponse::parse(wire))
          responses.push_back(std::move(*r));
      });
    });
  }

  std::optional<net::ControlResponse> roundtrip(net::ControlCommand cmd,
                                                std::string_view payload = {}) {
    net::ControlRequest req;
    req.command = cmd;
    req.payload.assign(payload.begin(), payload.end());
    EXPECT_TRUE(client.send_to(server.local_addr(), req.serialize()));
    const std::size_t want = responses.size() + 1;
    pump_until(loop, [&] { return responses.size() >= want; });
    if (responses.size() < want) return std::nullopt;
    return responses.back();
  }

  std::vector<net::ControlResponse> responses;
};

TEST(ControlServerTest, ServesCommands) {
  ControlFixture fx;
  auto pong = fx.roundtrip(net::ControlCommand::kPing);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
  EXPECT_EQ(std::string(pong->payload.begin(), pong->payload.end()), "pong");

  auto stats = fx.roundtrip(net::ControlCommand::kStats);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->ok);
  EXPECT_EQ(std::string(stats->payload.begin(), stats->payload.end()),
            "{\"x\":1}\n");

  auto flush = fx.roundtrip(net::ControlCommand::kFlushCache);
  ASSERT_TRUE(flush.has_value());
  EXPECT_TRUE(flush->ok);
  EXPECT_TRUE(fx.flushed);

  auto good = fx.roundtrip(net::ControlCommand::kSwitchPolicy, "k_distance");
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(good->ok);
  EXPECT_EQ(fx.switched_to, "k_distance");
  auto bad = fx.roundtrip(net::ControlCommand::kSwitchPolicy, "bogus");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->ok);

  auto down = fx.roundtrip(net::ControlCommand::kShutdown);
  ASSERT_TRUE(down.has_value());
  EXPECT_TRUE(down->ok);
  EXPECT_TRUE(fx.shut_down);  // response sent BEFORE the handler ran
  EXPECT_EQ(fx.server.stats().requests, 6u);
}

TEST(ControlServerTest, UnsetHandlerAnswersError) {
  net::EventLoop loop;
  net::ControlServer server(loop, loopback_any(),
                            net::ControlHandlers{});  // nothing wired up
  net::UdpSocket client;
  ASSERT_TRUE(client.bind(net::SocketAddr{}));
  std::optional<net::ControlResponse> response;
  loop.add_fd(client.fd(), EPOLLIN, [&](std::uint32_t) {
    client.drain([&](util::BytesView wire, const net::SocketAddr&) {
      response = net::ControlResponse::parse(wire);
    });
  });
  net::ControlRequest req;
  req.command = net::ControlCommand::kFlushCache;
  ASSERT_TRUE(client.send_to(server.local_addr(), req.serialize()));
  pump_until(loop, [&] { return response.has_value(); });
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ControlServerTest, GarbageIsDroppedSilently) {
  net::EventLoop loop;
  net::ControlServer server(loop, loopback_any(),
                            net::ControlHandlers{});
  net::UdpSocket client;
  ASSERT_TRUE(client.bind(net::SocketAddr{}));
  bool answered = false;
  loop.add_fd(client.fd(), EPOLLIN,
              [&](std::uint32_t) { answered = true; });
  const util::Bytes garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(client.send_to(server.local_addr(), garbage));
  pump_until(loop, [&] { return server.stats().malformed >= 1; });
  loop.run_once(50);  // grace: any (wrong) answer would arrive now
  EXPECT_EQ(server.stats().malformed, 1u);
  EXPECT_FALSE(answered);
}

}  // namespace
}  // namespace bytecache
