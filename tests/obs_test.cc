// Telemetry subsystem tests (ctest label "telemetry"): histogram bucket
// edges, snapshot merge algebra, registry membership kinds, exporter
// golden files (tests/data/, regenerate with BC_REGEN_GOLDEN=1), and the
// sharded-equals-plain snapshot pin that makes cross-shard merging
// trustworthy.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "app/file_transfer.h"
#include "gateway/pipeline.h"
#include "gateway/sharded_gateways.h"
#include "harness/experiment.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "tests/testutil.h"
#include "workload/generators.h"

#ifndef BC_TEST_DATA_DIR
#error "BC_TEST_DATA_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace bytecache {
namespace {

using obs::Histogram;
using obs::MergeOp;
using obs::MetricKind;
using obs::MetricValue;
using obs::Snapshot;

// ---------------------------------------------------- histogram edges --

TEST(ObsHistogram, BucketEdges) {
  // Bucket i is exactly the values of bit width i: 0 -> 0, 1 -> 1,
  // [2^(i-1), 2^i - 1] -> i.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::upper_bound(0), 0u);
  EXPECT_EQ(Histogram::upper_bound(1), 1u);
  EXPECT_EQ(Histogram::upper_bound(2), 3u);
  EXPECT_EQ(Histogram::upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::upper_bound(64), ~std::uint64_t{0});
  // Every value lands within its bucket's bounds.
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_GT(Histogram::upper_bound(i), Histogram::upper_bound(i - 1));
    EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(i)), i);
  }
}

TEST(ObsHistogram, RecordTracksCountSumMax) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(1);
  h.record(1000);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0 + 1 + 1 + 1000 + ~std::uint64_t{0});
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_EQ(h.buckets()[64], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ------------------------------------------------------- merge algebra --

MetricValue counter_value(std::string name, std::uint64_t v) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.counter = v;
  return m;
}

MetricValue gauge_value(std::string name, double v, MergeOp op) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kGauge;
  m.merge = op;
  m.gauge = v;
  return m;
}

MetricValue hist_value(std::string name,
                       const std::vector<std::uint64_t>& samples) {
  Histogram h;
  for (std::uint64_t s : samples) h.record(s);
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kHistogram;
  m.hist.buckets = h.buckets();
  m.hist.count = h.count();
  m.hist.sum = h.sum();
  m.hist.max = h.max();
  return m;
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const MetricValue& x = a.entries()[i];
    const MetricValue& y = b.entries()[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind) << x.name;
    EXPECT_EQ(x.counter, y.counter) << x.name;
    EXPECT_EQ(x.gauge, y.gauge) << x.name;
    EXPECT_EQ(x.hist.count, y.hist.count) << x.name;
    EXPECT_EQ(x.hist.sum, y.hist.sum) << x.name;
    EXPECT_EQ(x.hist.max, y.hist.max) << x.name;
    EXPECT_EQ(x.hist.buckets, y.hist.buckets) << x.name;
  }
}

Snapshot merged(const Snapshot& a, const Snapshot& b) {
  Snapshot out = a;
  out.merge_from(b);
  return out;
}

TEST(ObsSnapshot, MergeIsAssociativeAndCommutative) {
  // Three "shards" with overlapping names and every merge op except
  // kLast (which is deliberately order-dependent).
  Snapshot a, b, c;
  a.add(counter_value("encoder.packets", 10));
  a.add(gauge_value("cache.bytes", 100.0, MergeOp::kSum));
  a.add(gauge_value("loss.max", 0.25, MergeOp::kMax));
  a.add(hist_value("encode_ns", {3, 900}));
  b.add(counter_value("encoder.packets", 5));
  b.add(counter_value("decoder.packets", 7));
  b.add(gauge_value("cache.bytes", 50.0, MergeOp::kSum));
  b.add(gauge_value("loss.max", 0.75, MergeOp::kMax));
  c.add(gauge_value("loss.min", 0.1, MergeOp::kMin));
  c.add(hist_value("encode_ns", {0, 1, 1'000'000}));
  c.add(counter_value("encoder.packets", 1));

  const Snapshot left = merged(merged(a, b), c);
  const Snapshot right = merged(a, merged(b, c));
  expect_snapshots_equal(left, right);
  expect_snapshots_equal(left, merged(merged(c, b), a));

  EXPECT_EQ(left.counter("encoder.packets"), 16u);
  EXPECT_EQ(left.counter("decoder.packets"), 7u);
  EXPECT_EQ(left.gauge("cache.bytes"), 150.0);
  EXPECT_EQ(left.gauge("loss.max"), 0.75);
  EXPECT_EQ(left.gauge("loss.min"), 0.1);
  const obs::HistogramValue* h = left.histogram("encode_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_EQ(h->sum, 3u + 900 + 0 + 1 + 1'000'000);
  EXPECT_EQ(h->max, 1'000'000u);
  // Absent names read as zero / null.
  EXPECT_EQ(left.counter("no.such"), 0u);
  EXPECT_EQ(left.find("no.such"), nullptr);
}

TEST(ObsSnapshot, AddPrefixKeepsLookupsWorking) {
  Snapshot s;
  s.add(counter_value("packets", 3));
  s.add(counter_value("drops", 1));
  s.add_prefix("shard0");
  EXPECT_EQ(s.counter("shard0.packets"), 3u);
  EXPECT_EQ(s.counter("shard0.drops"), 1u);
  EXPECT_EQ(s.find("packets"), nullptr);
}

// ------------------------------------------------------------ registry --

TEST(ObsRegistry, OwnedMetricsAreIdempotentPerName) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("a");
  obs::Counter& c2 = reg.counter("a");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  c2.inc(4);
  EXPECT_EQ(reg.snapshot().counter("a"), 7u);
}

TEST(ObsRegistry, LinkedProbedAndProvidedValuesMergeIntoOneSnapshot) {
  obs::MetricsRegistry reg;
  std::uint64_t flow_a = 10, flow_b = 32;
  // Two links under the same name: snapshot-time merge adds them (the
  // multi-flow "tcp.sender.*" aggregation).
  reg.link_counter("flows.bytes", &flow_a);
  reg.link_counter("flows.bytes", &flow_b);
  reg.probe_counter("probe.count", [] { return std::uint64_t{5}; });
  reg.probe_gauge("probe.level", [] { return 2.5; }, MergeOp::kMax);
  obs::MetricsRegistry child;
  child.counter("child.packets").inc(9);
  reg.add_provider([&child] { return child.snapshot(); });

  Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("flows.bytes"), 42u);
  EXPECT_EQ(snap.counter("probe.count"), 5u);
  EXPECT_EQ(snap.gauge("probe.level"), 2.5);
  EXPECT_EQ(snap.counter("child.packets"), 9u);

  flow_a = 100;  // linked values are read at snapshot time, not copied
  EXPECT_EQ(reg.snapshot().counter("flows.bytes"), 132u);
}

TEST(ObsRegistry, ResetClearsOwnedMetricsOnly) {
  obs::MetricsRegistry reg;
  reg.counter("owned").inc(5);
  std::uint64_t linked = 8;
  reg.link_counter("linked", &linked);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter("owned"), 0u);
  EXPECT_EQ(reg.snapshot().counter("linked"), 8u);
}

// ------------------------------------------------------- span sampler --

TEST(ObsSpan, SampleEveryOneRecordsEverySpan) {
  obs::MetricsRegistry reg;
  obs::SpanSampler span(reg.histogram("ns"), 1);
  for (int i = 0; i < 10; ++i) {
    auto t = span.begin();
    span.end(t);
  }
  EXPECT_EQ(reg.snapshot().histogram("ns")->count, 10u);
}

TEST(ObsSpan, DecimationAndDetachedSampler) {
  obs::MetricsRegistry reg;
  obs::SpanSampler span(reg.histogram("ns"), 64);
  for (int i = 0; i < 65; ++i) {
    auto t = span.begin();
    span.end(t);
  }
  EXPECT_EQ(reg.snapshot().histogram("ns")->count, 2u);  // calls 0 and 64

  obs::SpanSampler off;  // telemetry disabled: no histogram, no clock
  EXPECT_FALSE(off.attached());
  auto t = off.begin();
  EXPECT_FALSE(t.sampled);
  off.end(t);
}

// ------------------------------------------------------------ exporters --

std::string data_path(const char* name) {
  return std::string(BC_TEST_DATA_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("BC_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Compares exporter text against the pinned file, or rewrites the pin
/// when BC_REGEN_GOLDEN is set — same contract as the wire goldens.
void check_golden_text(const char* name, const std::string& produced) {
  const std::string path = data_path(name);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << produced;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    return;
  }
  const std::string pinned = read_text(path);
  ASSERT_FALSE(pinned.empty())
      << path << " is missing or empty; regenerate with BC_REGEN_GOLDEN=1";
  EXPECT_EQ(pinned, produced)
      << "exporter drift in " << name
      << " — if intentional, regenerate goldens with BC_REGEN_GOLDEN=1";
}

/// A fixed snapshot covering all three kinds, a fractional gauge, and a
/// histogram with edge buckets (0, 1, mid, large).
Snapshot golden_snapshot() {
  obs::MetricsRegistry reg;
  reg.counter("encoder.packets").inc(42);
  reg.gauge("resilience.loss.perceived_max", MergeOp::kMax).set(0.0625);
  Histogram& h = reg.histogram("gateway.encoder.encode_ns");
  h.record(0);
  h.record(1);
  h.record(17);
  h.record(1000);
  h.record(1'000'000);
  return reg.snapshot();
}

TEST(ObsExport, JsonLinesMatchesPinnedGolden) {
  check_golden_text("obs_export.jsonl", obs::to_jsonl(golden_snapshot()));
}

TEST(ObsExport, PrometheusMatchesPinnedGolden) {
  check_golden_text("obs_export.prom", obs::to_prometheus(golden_snapshot()));
}

TEST(ObsExport, JsonObjectMatchesPinnedGolden) {
  check_golden_text("obs_export.json", obs::to_json_object(golden_snapshot()));
}

TEST(ObsExport, PrometheusNameMangling) {
  EXPECT_EQ(obs::prometheus_name("encoder.cache.hits"),
            "bc_encoder_cache_hits");
  EXPECT_EQ(obs::prometheus_name("gateway.encoder.encode_ns"),
            "bc_gateway_encoder_encode_ns");
}

// ------------------------------------------- sharded merge equals N=1 --

core::GatewayConfig quiet_cfg(std::size_t shards) {
  core::GatewayConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.shards = shards;
  cfg.threaded = false;
  cfg.span_sample_every = 0;  // no wall-clock histograms: exact equality
  return cfg;
}

std::vector<packet::PacketPtr> deterministic_traffic() {
  util::Rng rng(0x0B5EED);  // fixed: both gateways must see identical bytes
  std::vector<packet::PacketPtr> pkts;
  const util::Bytes d1 = testutil::random_bytes(rng, 900);
  const util::Bytes d2 = testutil::random_bytes(rng, 700);
  std::uint32_t seq = 1000;
  for (int rep = 0; rep < 3; ++rep) {
    pkts.push_back(testutil::make_tcp_packet(d1, seq));
    seq += 2000;
    pkts.push_back(testutil::make_tcp_packet(d2, seq));
    seq += 2000;
  }
  return pkts;
}

TEST(ObsSharded, SingleShardSnapshotEqualsPlainGateway) {
  gateway::EncoderGateway plain(quiet_cfg(1));
  plain.set_sink([](packet::PacketPtr) {});
  for (auto& p : deterministic_traffic()) plain.receive(std::move(p));

  gateway::ShardedEncoderGateway sharded(quiet_cfg(1));
  sharded.set_sink([](packet::PacketPtr) {});
  for (auto& p : deterministic_traffic()) sharded.submit(std::move(p));
  sharded.drain_until_idle();

  expect_snapshots_equal(plain.snapshot(), sharded.snapshot());
  EXPECT_GT(plain.snapshot().counter("encoder.encoded_packets"), 0u);
}

TEST(ObsSharded, MultiShardCountersSumToPlainTotals) {
  gateway::EncoderGateway plain(quiet_cfg(1));
  plain.set_sink([](packet::PacketPtr) {});
  for (auto& p : deterministic_traffic()) plain.receive(std::move(p));

  gateway::ShardedEncoderGateway sharded(quiet_cfg(4));
  sharded.set_sink([](packet::PacketPtr) {});
  for (auto& p : deterministic_traffic()) sharded.submit(std::move(p));
  sharded.drain_until_idle();

  // One host pair: all traffic lands on one shard, and the merged
  // counters equal the plain totals even with idle shards contributing
  // zero entries.
  const Snapshot merged_snap = sharded.snapshot();
  const Snapshot plain_snap = plain.snapshot();
  for (const MetricValue& m : plain_snap.entries()) {
    if (m.kind != MetricKind::kCounter) continue;
    EXPECT_EQ(merged_snap.counter(m.name), m.counter) << m.name;
  }
  EXPECT_EQ(merged_snap.counter("gateway.encoder.packets"),
            plain_snap.counter("gateway.encoder.packets"));
}

// ------------------------------------------------- pipeline integration --

TEST(ObsPipeline, SnapshotReachesEveryLayer) {
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  gateway::Pipeline pipeline(sim, cfg);
  util::Rng rng(7);
  const util::Bytes file = workload::make_file1(rng, 50'000);
  app::FileTransfer transfer(sim, pipeline, file);
  transfer.run_to_completion();
  ASSERT_TRUE(transfer.result().completed);

  const Snapshot snap = pipeline.snapshot();
  // One registry read reaches the codec, cache, gateways, links, and TCP
  // endpoints — the single-surface contract.
  EXPECT_EQ(snap.counter("encoder.packets"),
            pipeline.encoder_gw().encoder()->stats().packets);
  EXPECT_EQ(snap.counter("decoder.packets"),
            pipeline.decoder_gw().decoder()->stats().packets);
  EXPECT_EQ(snap.counter("link.forward.packets_offered"),
            pipeline.forward_link().stats().packets_offered);
  EXPECT_EQ(snap.counter("tcp.sender.bytes_sent"),
            pipeline.sender().stats().bytes_sent);
  EXPECT_EQ(snap.counter("tcp.receiver.acks_sent"),
            pipeline.receiver().stats().acks_sent);
  EXPECT_GT(snap.counter("encoder.cache.packets_inserted"), 0u);
  EXPECT_GT(snap.gauge("encoder.cache.bytes_stored"), 0.0);
  // Spans are on by default and the first packet is always sampled.
  const obs::HistogramValue* enc_ns =
      snap.histogram("gateway.encoder.encode_ns");
  ASSERT_NE(enc_ns, nullptr);
  EXPECT_GT(enc_ns->count, 0u);
}

TEST(ObsPipeline, TrialJsonEmbedsTheFullMetricsObject) {
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  util::Rng rng(3);
  const util::Bytes file = workload::make_file1(rng, 20'000);
  const harness::TrialResult r = harness::run_trial(cfg, file, 1);
  ASSERT_TRUE(r.completed);
  const std::string json = harness::to_json(r);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"encoder.packets\":"), std::string::npos);
  EXPECT_NE(json.find("\"link.forward.bytes_sent\":"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace bytecache
