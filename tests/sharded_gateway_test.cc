// Sharded multi-worker gateways (gateway/sharded_gateways.h): shard-key
// stability, bit-identity of the N=1 configuration with the plain
// gateways, end-to-end correctness across many flows under real worker
// threads (the ThreadSanitizer stress for `ctest -L sanitize`), control
// feedback routing, and bounded-cache churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "gateway/gateways.h"
#include "gateway/sharded_gateways.h"
#include "packet/tcp.h"
#include "tests/testutil.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace bytecache::gateway {
namespace {

using util::Bytes;

/// GatewayConfig shorthand for these tests (the single construction
/// surface; see core/factory.h).
core::GatewayConfig make_cfg(core::PolicyKind kind,
                             const core::DreParams& params,
                             std::size_t shards = 1, bool threaded = true,
                             std::size_t ring_capacity = 1024) {
  core::GatewayConfig cfg;
  cfg.params = params;
  cfg.policy = kind;
  cfg.shards = shards;
  cfg.threaded = threaded;
  cfg.ring_capacity = ring_capacity;
  return cfg;
}

/// A TCP data packet between an arbitrary host pair (testutil's helper
/// pins the addresses; the sharding tests need many distinct pairs).
packet::PacketPtr flow_packet(std::uint32_t src, std::uint32_t dst,
                              util::BytesView data, std::uint32_t seq) {
  packet::TcpHeader h;
  h.src_port = 80;
  h.dst_port = 40000;
  h.seq = seq;
  h.flags = packet::TcpHeader::kAck | packet::TcpHeader::kPsh;
  Bytes segment;
  segment.reserve(packet::TcpHeader::kSize + data.size());
  h.serialize(segment, data, src, dst);
  return packet::make_packet(src, dst, packet::IpProto::kTcp,
                             std::move(segment));
}

/// Segments `object` into MSS-sized packets for one host pair.
std::vector<packet::PacketPtr> flow_stream(std::uint32_t src,
                                           std::uint32_t dst,
                                           util::BytesView object) {
  constexpr std::size_t kMss = 1460;
  std::vector<packet::PacketPtr> out;
  for (std::size_t off = 0; off < object.size(); off += kMss) {
    const std::size_t len = std::min(kMss, object.size() - off);
    out.push_back(flow_packet(src, dst, object.subspan(off, len),
                              1000 + static_cast<std::uint32_t>(off)));
  }
  return out;
}

std::uint64_t pair_id(const packet::Packet& p) {
  return (static_cast<std::uint64_t>(std::min(p.ip.src, p.ip.dst)) << 32) |
         std::max(p.ip.src, p.ip.dst);
}

// ----------------------------------------------------------- shard key --

TEST(ShardKey, SymmetricStableAndNonZero) {
  auto fwd = flow_packet(0x0A000001, 0x0A000101, Bytes(32, 'x'), 1);
  auto rev = flow_packet(0x0A000101, 0x0A000001, Bytes(16, 'y'), 9);
  const std::uint64_t key = shard_key_of(*fwd);
  EXPECT_NE(key, 0u);
  // Reverse direction (ACKs, NACK control) hashes to the same shard.
  EXPECT_EQ(shard_key_of(*rev), key);
  // Encoding rewrites protocol and payload but never the addresses; the
  // key must survive it so the decoder routes to the encoding cache.
  fwd->ip.protocol = static_cast<std::uint8_t>(packet::IpProto::kDre);
  fwd->payload.assign(4, 0);
  EXPECT_EQ(shard_key_of(*fwd), key);

  auto other = flow_packet(0x0A000002, 0x0A000101, Bytes(32, 'x'), 1);
  EXPECT_NE(shard_key_of(*other), key);

  for (std::size_t shards : {1u, 2u, 4u, 7u, 8u}) {
    EXPECT_LT(shard_index_of(key, shards), shards);
  }
}

TEST(ShardKey, SpreadsHostPairsAcrossShards) {
  // splitmix64 over 64 host pairs should leave no shard empty at N=4.
  std::vector<int> counts(4, 0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    auto pkt = flow_packet(0x0A000000 + i, 0x0A010000 + i, Bytes(8, 'z'), 1);
    ++counts[shard_index_of(shard_key_of(*pkt), counts.size())];
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], 0) << "shard " << s << " got no flows";
  }
}

// ------------------------------------------------------ N=1 bit-identity --

void expect_encoder_stats_equal(const core::EncoderStats& a,
                                const core::EncoderStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.encoded_packets, b.encoded_packets);
  EXPECT_EQ(a.references, b.references);
  EXPECT_EQ(a.regions, b.regions);
  EXPECT_EQ(a.bytes_in, b.bytes_in);
  EXPECT_EQ(a.bytes_out, b.bytes_out);
  EXPECT_EQ(a.dependency_links, b.dependency_links);
}

TEST(ShardedEncoderGateway, SingleShardBitIdenticalToPlainGateway) {
  core::DreParams params;
  util::Rng rng(21);
  const Bytes object = workload::make_file1(rng, 120 * 1460);
  const auto packets = testutil::segment_stream(object);

  std::vector<Bytes> plain_wire;
  EncoderGateway plain(make_cfg(core::PolicyKind::kNaive, params));
  plain.set_sink([&](packet::PacketPtr p) {
    plain_wire.push_back(packet::to_wire(*p));
  });
  for (const auto& pkt : packets) plain.receive(packet::clone_packet(*pkt));

  for (bool threaded : {false, true}) {
    ShardedEncoderGateway sharded(
        make_cfg(core::PolicyKind::kNaive, params, /*shards=*/1, threaded));
    std::vector<Bytes> sharded_wire;
    sharded.set_sink([&](packet::PacketPtr p) {
      sharded_wire.push_back(packet::to_wire(*p));
    });
    for (const auto& pkt : packets) sharded.submit(packet::clone_packet(*pkt));
    sharded.drain_until_idle();

    ASSERT_EQ(sharded_wire.size(), plain_wire.size());
    for (std::size_t i = 0; i < plain_wire.size(); ++i) {
      ASSERT_EQ(sharded_wire[i], plain_wire[i])
          << "wire divergence at packet " << i << " threaded=" << threaded;
    }
    EXPECT_EQ(sharded.stats().packets, plain.stats().packets);
    EXPECT_EQ(sharded.stats().wire_bytes_out, plain.stats().wire_bytes_out);
    expect_encoder_stats_equal(sharded.encoder_stats(),
                               plain.encoder()->stats());
    sharded.audit();
  }
}

TEST(ShardedDecoderGateway, SingleShardBitIdenticalToPlainGateway) {
  core::DreParams params;
  util::Rng rng(22);
  const Bytes object = workload::make_file1(rng, 120 * 1460);
  const auto packets = testutil::segment_stream(object);

  // One encoded stream, replayed into both decoders.
  std::vector<packet::PacketPtr> encoded;
  EncoderGateway enc(make_cfg(core::PolicyKind::kNaive, params));
  enc.set_sink([&](packet::PacketPtr p) { encoded.push_back(std::move(p)); });
  for (const auto& pkt : packets) enc.receive(packet::clone_packet(*pkt));

  std::vector<Bytes> plain_wire;
  DecoderGateway plain(make_cfg(core::PolicyKind::kNaive, params));
  plain.set_sink([&](packet::PacketPtr p) {
    plain_wire.push_back(packet::to_wire(*p));
  });
  for (const auto& pkt : encoded) plain.receive(packet::clone_packet(*pkt));

  for (bool threaded : {false, true}) {
    ShardedDecoderGateway sharded(
        make_cfg(core::PolicyKind::kNaive, params, /*shards=*/1, threaded));
    std::vector<Bytes> sharded_wire;
    sharded.set_sink([&](packet::PacketPtr p) {
      sharded_wire.push_back(packet::to_wire(*p));
    });
    for (const auto& pkt : encoded) {
      sharded.submit(packet::clone_packet(*pkt));
    }
    sharded.drain_until_idle();

    ASSERT_EQ(sharded_wire.size(), plain_wire.size());
    for (std::size_t i = 0; i < plain_wire.size(); ++i) {
      ASSERT_EQ(sharded_wire[i], plain_wire[i])
          << "wire divergence at packet " << i << " threaded=" << threaded;
    }
    EXPECT_EQ(sharded.stats().packets, plain.stats().packets);
    EXPECT_EQ(sharded.stats().dropped, plain.stats().dropped);
    EXPECT_EQ(sharded.stats().dropped, 0u);
    sharded.audit();
  }
}

// ------------------------------------------- threaded end-to-end stress --

/// Offered and decoded byte streams per host pair; the decoded stream of
/// every flow must equal what was offered, bit for bit, regardless of how
/// the shards interleave — this is the ThreadSanitizer stress.
struct FlowSet {
  std::vector<std::uint64_t> ids;
  std::map<std::uint64_t, Bytes> offered;
  std::vector<packet::PacketPtr> interleaved;
};

FlowSet make_flows(int flows, std::size_t segments_per_flow,
                   std::uint64_t seed) {
  FlowSet fs;
  util::Rng rng(seed);
  std::vector<std::vector<packet::PacketPtr>> streams;
  for (int f = 0; f < flows; ++f) {
    const std::uint32_t src = 0x0A000001 + static_cast<std::uint32_t>(f);
    const std::uint32_t dst = 0x0A010001 + static_cast<std::uint32_t>(f);
    // Random sizes with internal repetition so encoding really happens.
    const Bytes object =
        workload::make_file1(rng, (segments_per_flow + rng.next_u64() % 7) *
                                      1460);
    auto stream = flow_stream(src, dst, object);
    fs.ids.push_back(pair_id(*stream.front()));
    Bytes& offered = fs.offered[fs.ids.back()];
    for (const auto& pkt : stream) {
      util::append(offered, pkt->payload);
    }
    streams.push_back(std::move(stream));
  }
  // Round-robin interleave so every shard is active concurrently.
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& stream : streams) {
      if (i < stream.size()) {
        fs.interleaved.push_back(std::move(stream[i]));
        any = true;
      }
    }
    if (!any) break;
  }
  return fs;
}

void run_threaded_end_to_end(std::size_t shards, std::size_t cache_bytes,
                             bool worker_sink_chain) {
  core::DreParams params;
  core::GatewayConfig cfg =
      make_cfg(core::PolicyKind::kNaive, params, shards, /*threaded=*/true,
               /*ring_capacity=*/128);
  cfg.cache.l1_bytes = cache_bytes;

  FlowSet fs = make_flows(/*flows=*/3 * static_cast<int>(shards),
                          /*segments_per_flow=*/40, /*seed=*/shards);

  ShardedEncoderGateway enc(cfg);
  ShardedDecoderGateway dec(cfg);

  std::map<std::uint64_t, Bytes> decoded;
  dec.set_sink([&](packet::PacketPtr p) {
    util::append(decoded[pair_id(*p)], p->payload);
  });

  if (worker_sink_chain) {
    // The bench topology: each encoder shard's worker feeds its decoder
    // twin directly, bypassing the encoder's output rings.
    enc.set_worker_sink([&dec](std::size_t i, packet::PacketPtr p) {
      dec.submit_to_shard(i, std::move(p));
    });
  } else {
    // Driver-thread relay: drain() hands encoder output to the decoder.
    enc.set_sink([&dec](packet::PacketPtr p) { dec.submit(std::move(p)); });
  }

  std::size_t submitted = 0;
  for (auto& pkt : fs.interleaved) {
    enc.submit(std::move(pkt));
    ++submitted;
    if (submitted % 16 == 0) {
      enc.drain();
      dec.drain();
    }
  }
  enc.drain_until_idle();
  dec.drain_until_idle();

  EXPECT_EQ(enc.stats().packets, submitted);
  EXPECT_EQ(dec.stats().packets, submitted);
  EXPECT_EQ(dec.stats().dropped, 0u);
  for (std::uint64_t id : fs.ids) {
    ASSERT_EQ(decoded[id].size(), fs.offered[id].size()) << "flow " << id;
    EXPECT_EQ(decoded[id], fs.offered[id]) << "flow " << id;
  }
  // Aggregated codec stats stay consistent under sharding.
  const core::EncoderStats es = enc.encoder_stats();
  EXPECT_EQ(es.packets, submitted);
  EXPECT_GT(es.encoded_packets, 0u);
  const core::DecoderStats ds = dec.decoder_stats();
  EXPECT_EQ(ds.passthrough + ds.decoded, submitted);
  std::uint64_t offered_total = 0;
  for (const auto& [id, bytes] : fs.offered) offered_total += bytes.size();
  EXPECT_EQ(ds.bytes_restored, offered_total);
  enc.audit();
  dec.audit();
}

TEST(ShardedGateways, ThreadedManyFlowsDriverRelay) {
  run_threaded_end_to_end(/*shards=*/4, /*cache_bytes=*/0,
                          /*worker_sink_chain=*/false);
}

TEST(ShardedGateways, ThreadedManyFlowsWorkerSinkChain) {
  run_threaded_end_to_end(/*shards=*/4, /*cache_bytes=*/0,
                          /*worker_sink_chain=*/true);
}

TEST(ShardedGateways, ThreadedBoundedCacheChurn) {
  // A small byte budget forces constant eviction in every shard while
  // the workers run — the hostile case for cache bookkeeping races.
  run_threaded_end_to_end(/*shards=*/4, /*cache_bytes=*/64 * 1024,
                          /*worker_sink_chain=*/false);
}

TEST(ShardedGateways, OddShardCountAndSingleFlowPileUp) {
  // All flows of one host pair land on one shard of three; the others
  // idle — exercises the stop/drain protocol with unbalanced load.
  run_threaded_end_to_end(/*shards=*/3, /*cache_bytes=*/0,
                          /*worker_sink_chain=*/false);
}

// ------------------------------------------------------- control paths --

TEST(ShardedGateways, NackFeedbackRoutesToOwningShard) {
  core::DreParams params;
  params.nack_feedback = true;
  // Inline (non-threaded): deterministic loss injection.
  const core::GatewayConfig cfg = make_cfg(core::PolicyKind::kNaive, params,
                                           /*shards=*/4, /*threaded=*/false);

  ShardedEncoderGateway enc(cfg);
  ShardedDecoderGateway dec(cfg);
  dec.set_feedback([&](packet::PacketPtr p) {
    // The reverse-direction control packet must hash to the shard that
    // owns the forward flow; submit_control asserts nothing, so prove it
    // through the aggregated NACK counter below.
    enc.submit_control(std::move(p));
  });
  std::size_t delivered = 0;
  dec.set_sink([&](packet::PacketPtr) { ++delivered; });

  // Inline mode makes the whole loop synchronous: encode -> (maybe lose)
  // -> decode -> NACK -> encoder invalidation, one packet at a time.
  std::size_t wire_index = 0;
  enc.set_sink([&](packet::PacketPtr p) {
    if (wire_index++ == 0) return;  // the first packet is lost in flight
    dec.submit(std::move(p));
  });

  // A heavily self-similar object: later segments reference the first,
  // which the decoder never received, forcing missing-fingerprint drops
  // and NACKs on that flow's shard.
  util::Rng rng(31);
  const std::uint32_t src = 0x0A000009;
  const std::uint32_t dst = 0x0A010009;
  const Bytes block = testutil::random_bytes(rng, 1460);
  Bytes object;
  for (int i = 0; i < 6; ++i) util::append(object, block);
  for (auto& pkt : flow_stream(src, dst, object)) {
    enc.submit(std::move(pkt));
  }
  EXPECT_GT(dec.stats().dropped, 0u);
  EXPECT_GT(dec.stats().nacks_sent, 0u);
  // The feedback loop reached the encoder that owns the flow: the NACKed
  // control packets were routed by the symmetric key to its shard.
  EXPECT_EQ(enc.encoder_stats().nacks_received, dec.stats().nacks_sent);
  EXPECT_GT(enc.encoder_stats().nack_invalidations, 0u);

  // Fresh content passes through, is cached on BOTH sides, and a repeat
  // of it decodes — the flow recovers after the invalidations.
  const Bytes fresh = workload::make_file1(rng, 10 * 1460);
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& pkt : flow_stream(src, dst, fresh)) {
      enc.submit(std::move(pkt));
    }
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(dec.decoder_stats().decoded, 0u);
  enc.audit();
  dec.audit();
}

TEST(ShardedGateways, ReverseAckRoutesToOwningShardWhenGated) {
  core::DreParams params;
  params.ack_gated = true;
  ShardedEncoderGateway enc(make_cfg(core::PolicyKind::kNaive, params,
                                     /*shards=*/4, /*threaded=*/false));
  std::vector<packet::PacketPtr> encoded;
  enc.set_sink([&](packet::PacketPtr p) { encoded.push_back(std::move(p)); });

  util::Rng rng(33);
  const Bytes block = testutil::random_bytes(rng, 1460);
  Bytes object;
  for (int i = 0; i < 8; ++i) util::append(object, block);
  const std::uint32_t src = 0x0A000005;
  const std::uint32_t dst = 0x0A010005;

  // Without any reverse ACK observed, the gate rejects every reference.
  for (auto& pkt : flow_stream(src, dst, object)) {
    enc.submit(std::move(pkt));
  }
  const std::uint64_t rejected_before = enc.encoder_stats().ack_gate_rejections;
  EXPECT_GT(rejected_before, 0u);
  EXPECT_EQ(enc.encoder_stats().encoded_packets, 0u);

  // A reverse ACK covering the whole stream opens the gate; it must be
  // routed (by the symmetric key) to the shard owning the forward flow.
  packet::TcpHeader ack;
  ack.src_port = 40000;
  ack.dst_port = 80;
  ack.seq = 1;
  ack.ack = 1000 + static_cast<std::uint32_t>(object.size());
  ack.flags = packet::TcpHeader::kAck;
  Bytes segment;
  ack.serialize(segment, {}, dst, src);
  enc.submit_reverse(
      packet::make_packet(dst, src, packet::IpProto::kTcp, std::move(segment)));

  for (auto& pkt : flow_stream(src, dst, object)) {
    enc.submit(std::move(pkt));
  }
  EXPECT_GT(enc.encoder_stats().encoded_packets, 0u);
  enc.audit();
}

}  // namespace
}  // namespace bytecache::gateway
