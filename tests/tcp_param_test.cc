// Parameterized TCP substrate tests: loss/seed sweeps, sequence-number
// wraparound, MSS and window variations.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/rng.h"
#include "workload/text.h"

namespace bytecache::tcp {
namespace {

using sim::ms;
using util::Bytes;

struct LoopFixture {
  sim::Simulator sim;
  TcpConfig config;
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  LoopFixture(const TcpConfig& cfg, double loss, std::uint64_t seed,
              sim::SimTime prop = sim::us(500)) {
    config = cfg;
    config.src_ip = 0x0A000001;
    config.dst_ip = 0x0A000101;
    sim::LinkConfig fcfg;
    fcfg.queue_packets = 1 << 16;
    fcfg.propagation_delay = prop;
    sim::LinkConfig rcfg;
    rcfg.rate_bytes_per_sec = 1e7;
    rcfg.queue_packets = 1 << 16;
    fwd = std::make_unique<sim::Link>(
        sim, fcfg,
        loss > 0 ? std::unique_ptr<sim::LossProcess>(
                       std::make_unique<sim::BernoulliLoss>(loss))
                 : std::make_unique<sim::NoLoss>(),
        util::Rng(seed));
    rev = std::make_unique<sim::Link>(sim, rcfg,
                                      std::make_unique<sim::NoLoss>(),
                                      util::Rng(seed + 1));
    sender = std::make_unique<TcpSender>(
        sim, config, [this](packet::PacketPtr p) { fwd->send(std::move(p)); });
    receiver = std::make_unique<TcpReceiver>(
        sim, config, [this](packet::PacketPtr p) { rev->send(std::move(p)); });
    fwd->set_sink([this](packet::PacketPtr p) { receiver->on_packet(*p); });
    rev->set_sink([this](packet::PacketPtr p) { sender->on_packet(*p); });
  }
};

Bytes test_file(std::size_t size, std::uint64_t seed = 99) {
  util::Rng rng(seed);
  return workload::random_text(rng, size);
}

// ------------------------------------------------- loss x seed sweep --

class TcpLossSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TcpLossSweep, CompletesAndDeliversExactBytes) {
  const double loss = std::get<0>(GetParam()) / 1000.0;
  const std::uint64_t seed = std::get<1>(GetParam());
  LoopFixture loop({}, loss, seed);
  const Bytes file = test_file(120'000, seed * 3 + 1);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed())
      << "loss=" << loss << " seed=" << seed;
  EXPECT_EQ(loop.receiver->stream(), file);
}

INSTANTIATE_TEST_SUITE_P(
    LossSeeds, TcpLossSweep,
    ::testing::Combine(::testing::Values(0, 5, 10, 20, 50, 100, 150),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return "loss" + std::to_string(std::get<0>(info.param)) + "permil_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------- ISN / wrap --

class IsnSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IsnSweep, SequenceWraparoundHandled) {
  TcpConfig cfg;
  cfg.isn = GetParam();
  LoopFixture loop(cfg, 0.02, 5);
  // 200 KB crosses the 2^32 boundary for ISNs near the top.
  const Bytes file = test_file(200'000, 11);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed()) << "isn=" << GetParam();
  EXPECT_EQ(loop.receiver->stream(), file);
}

INSTANTIATE_TEST_SUITE_P(
    Isns, IsnSweep,
    ::testing::Values(0u, 1000u, 0xFFFF0000u, 0xFFFFFFF0u),
    [](const ::testing::TestParamInfo<std::uint32_t>& info) {
      return "isn" + std::to_string(info.param);
    });

// ---------------------------------------------------------- MSS sweep --

class MssSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MssSweep, SegmentationCorrect) {
  TcpConfig cfg;
  cfg.mss = GetParam();
  LoopFixture loop(cfg, 0.0, 3);
  const Bytes file = test_file(50'000, 21);
  loop.sender->start(file);
  loop.sim.run();
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
  // ceil(size/mss) data segments when nothing is lost.
  const auto expected =
      (file.size() + cfg.mss - 1) / cfg.mss;
  EXPECT_EQ(loop.sender->stats().segments_sent, expected);
}

INSTANTIATE_TEST_SUITE_P(Mss, MssSweep,
                         ::testing::Values(536u, 1000u, 1460u, 9000u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "mss" + std::to_string(i.param);
                         });

// ------------------------------------------------------- window sweep --

class WindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowSweep, SenderRespectsReceiveWindow) {
  TcpConfig cfg;
  cfg.rcv_wnd = GetParam();
  LoopFixture loop(cfg, 0.0, 9);
  const Bytes file = test_file(80'000, 31);
  loop.sender->start(file);
  // Step the simulation, sampling the outstanding flight on every event:
  // it must never exceed the advertised window.
  while (loop.sim.step()) {
    ASSERT_LE(loop.sender->in_flight(), cfg.rcv_wnd);
  }
  ASSERT_TRUE(loop.sender->completed());
  EXPECT_EQ(loop.receiver->stream(), file);
}

TEST(WindowThrottling, SmallWindowSlowsTransfer) {
  // On a long-RTT path (25 ms each way) a 2-segment window cannot fill
  // the pipe; a 45-segment window can.
  TcpConfig small;
  small.rcv_wnd = 2 * 1460;
  TcpConfig big;
  big.rcv_wnd = 45 * 1460;
  const Bytes file = test_file(200'000, 41);

  LoopFixture a(small, 0.0, 1, sim::ms(25));
  a.sender->start(file);
  a.sim.run();
  LoopFixture b(big, 0.0, 1, sim::ms(25));
  b.sender->start(file);
  b.sim.run();
  ASSERT_TRUE(a.sender->completed());
  ASSERT_TRUE(b.sender->completed());
  EXPECT_GT(a.sim.now(), b.sim.now());
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1460u, 8 * 1460u, 65535u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "wnd" + std::to_string(i.param);
                         });

// ----------------------------------------------------- reverse losses --

TEST(ReverseLoss, LostAcksDoNotBreakTransfer) {
  sim::Simulator sim;
  TcpConfig config;
  config.src_ip = 1;
  config.dst_ip = 2;
  sim::LinkConfig fcfg;
  fcfg.queue_packets = 1 << 16;
  sim::LinkConfig rcfg;
  rcfg.rate_bytes_per_sec = 1e7;
  rcfg.queue_packets = 1 << 16;
  sim::Link fwd(sim, fcfg, std::make_unique<sim::NoLoss>(), util::Rng(1));
  sim::Link rev(sim, rcfg, std::make_unique<sim::BernoulliLoss>(0.2),
                util::Rng(2));
  TcpSender sender(sim, config,
                   [&](packet::PacketPtr p) { fwd.send(std::move(p)); });
  TcpReceiver receiver(sim, config,
                       [&](packet::PacketPtr p) { rev.send(std::move(p)); });
  fwd.set_sink([&](packet::PacketPtr p) { receiver.on_packet(*p); });
  rev.set_sink([&](packet::PacketPtr p) { sender.on_packet(*p); });

  const Bytes file = test_file(100'000, 51);
  sender.start(file);
  sim.run();
  ASSERT_TRUE(sender.completed());  // cumulative ACKs tolerate ACK loss
  EXPECT_EQ(receiver.stream(), file);
}

}  // namespace
}  // namespace bytecache::tcp
