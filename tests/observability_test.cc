// Tests for the observability substrate: event traces and pcap capture.
#include <gtest/gtest.h>

#include <cstdio>

#include "app/file_transfer.h"
#include "gateway/pipeline.h"
#include "sim/pcap.h"
#include "sim/trace.h"
#include "workload/generators.h"

namespace bytecache::sim {
namespace {

using util::Bytes;
using util::Rng;

// -------------------------------------------------------------- trace --

TEST(Trace, RecordsAndCounts) {
  Trace trace;
  trace.record(ms(1), TraceEvent::kSend, 42, 1500);
  trace.record(ms(2), TraceEvent::kLoss, 42);
  trace.record(ms(3), TraceEvent::kSend, 43, 1500);
  EXPECT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.count(TraceEvent::kSend), 2u);
  EXPECT_EQ(trace.count(TraceEvent::kLoss), 1u);
  EXPECT_EQ(trace.count(TraceEvent::kDecode), 0u);
}

TEST(Trace, RendersHumanReadableAndCsv) {
  Trace trace;
  trace.record(ms(5), TraceEvent::kEncode, 7, 900);
  const std::string text = trace.to_string();
  EXPECT_NE(text.find("encode"), std::string::npos);
  EXPECT_NE(text.find("uid=7"), std::string::npos);
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("time_us,event,uid,aux"), std::string::npos);
  EXPECT_NE(csv.find("5000,encode,7,900"), std::string::npos);
}

TEST(Trace, ClearEmpties) {
  Trace trace;
  trace.record(0, TraceEvent::kSend, 1);
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, EventNamesAreDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(TraceEvent::kNack); ++i) {
    names.insert(to_string(static_cast<TraceEvent>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(TraceEvent::kNack) + 1);
  EXPECT_EQ(names.count("?"), 0u);
}

TEST(Trace, PipelineEmitsConsistentEventFlow) {
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.03;
  cfg.seed = 3;
  gateway::Pipeline pipeline(sim, cfg);
  Trace trace;
  pipeline.attach_trace(&trace);

  Rng rng(1);
  const Bytes file = workload::make_file1(rng, 100'000);
  app::FileTransfer transfer(sim, pipeline, file);
  transfer.run_to_completion();
  ASSERT_TRUE(transfer.result().completed);
  sim.run();  // drain in-flight packets and idle timers

  // Conservation: every send is eventually lost, queue-dropped, or
  // delivered (the simulation was drained above).
  const auto sends = trace.count(TraceEvent::kSend);
  const auto ends = trace.count(TraceEvent::kLoss) +
                    trace.count(TraceEvent::kQueueDrop) +
                    trace.count(TraceEvent::kDeliver);
  EXPECT_EQ(sends, ends);
  EXPECT_GT(trace.count(TraceEvent::kEncode), 0u);
  EXPECT_GT(trace.count(TraceEvent::kLoss), 0u);
  // Decoder events match the gateway stats.
  EXPECT_EQ(trace.count(TraceEvent::kDecodeDrop),
            pipeline.decoder_gw().stats().dropped);
  // CacheFlush flushed at least once under loss.
  EXPECT_GT(trace.count(TraceEvent::kFlush), 0u);
  // Timestamps are monotone.
  SimTime last = 0;
  for (const auto& r : trace.records()) {
    EXPECT_GE(r.time, last);
    last = r.time;
  }
}

// --------------------------------------------------------------- pcap --

TEST(Pcap, GlobalHeaderLayout) {
  PcapWriter pcap;
  const auto& d = pcap.data();
  ASSERT_EQ(d.size(), 24u);
  // Little-endian magic 0xA1B2C3D4.
  EXPECT_EQ(d[0], 0xD4);
  EXPECT_EQ(d[1], 0xC3);
  EXPECT_EQ(d[2], 0xB2);
  EXPECT_EQ(d[3], 0xA1);
  // Version 2.4.
  EXPECT_EQ(d[4], 2);
  EXPECT_EQ(d[6], 4);
  // Linktype RAW = 101 at offset 20.
  EXPECT_EQ(d[20], 101);
}

TEST(Pcap, RecordCarriesWireBytesAndTimestamp) {
  PcapWriter pcap;
  auto pkt = packet::make_packet(0x01020304, 0x05060708,
                                 packet::IpProto::kUdp,
                                 util::to_bytes("payload"));
  pcap.add(*pkt, sec(3) + us(250));
  EXPECT_EQ(pcap.packet_count(), 1u);
  const auto& d = pcap.data();
  const std::size_t rec = 24;
  auto u32le = [&](std::size_t off) {
    return static_cast<std::uint32_t>(d[off]) |
           static_cast<std::uint32_t>(d[off + 1]) << 8 |
           static_cast<std::uint32_t>(d[off + 2]) << 16 |
           static_cast<std::uint32_t>(d[off + 3]) << 24;
  };
  EXPECT_EQ(u32le(rec), 3u);        // seconds
  EXPECT_EQ(u32le(rec + 4), 250u);  // microseconds
  const std::uint32_t len = u32le(rec + 8);
  EXPECT_EQ(len, pkt->wire_size());
  EXPECT_EQ(u32le(rec + 12), len);
  // The record body parses back as our packet.
  const util::BytesView body(d.data() + rec + 16, len);
  auto parsed = packet::from_wire(body);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->ip.src, 0x01020304u);
  EXPECT_EQ(util::to_string(util::BytesView(parsed->payload)), "payload");
}

TEST(Pcap, CapturesPipelineTraffic) {
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kTcpSeq;
  gateway::Pipeline pipeline(sim, cfg);
  PcapWriter pcap;
  pipeline.attach_pcap(&pcap);

  Rng rng(2);
  const Bytes file = workload::make_file1(rng, 60'000);
  app::FileTransfer transfer(sim, pipeline, file);
  transfer.run_to_completion();
  ASSERT_TRUE(transfer.result().completed);
  EXPECT_EQ(pcap.packet_count(),
            pipeline.forward_link().stats().packets_offered);
  EXPECT_GT(pcap.data().size(), 24u);
}

TEST(Pcap, SaveWritesFile) {
  PcapWriter pcap;
  auto pkt = packet::make_packet(1, 2, packet::IpProto::kTcp,
                                 Bytes(64, 'x'));
  pcap.add(*pkt, ms(1));
  const std::string path = ::testing::TempDir() + "bc_pcap_test.pcap";
  ASSERT_TRUE(pcap.save(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<std::size_t>(std::ftell(f)), pcap.data().size());
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Pcap, SaveToInvalidPathFails) {
  PcapWriter pcap;
  EXPECT_FALSE(pcap.save("/nonexistent-dir-xyz/out.pcap"));
}

}  // namespace
}  // namespace bytecache::sim
