// Acceptance test for the resilience layer (ISSUE 4): a chaos sim at
// 1-10% loss with the degradation controller enabled must show
//   1. no flow ever stalls (the resync path breaks every livelock),
//   2. byte savings at least as good as pass-through at every loss rate,
//   3. download time within 5% of the always-safe Cache Flush policy at
//      5% loss (the controller converges to the right rung),
// and a naive encoder with epoch_resync enabled must complete where plain
// naive stalls, because epoch resync bounds how long a desync can last.
// The sweep prints a harness table (the EXPERIMENTS.md Fig. 13 recipe).
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/experiment.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

const Bytes& chaos_file() {
  static const Bytes f = [] {
    Rng rng(0x5E51);
    return workload::make_file1(rng, 160'000);
  }();
  return f;
}

harness::ExperimentConfig resilience_config(core::PolicyKind policy,
                                            double loss,
                                            std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.loss_rate = loss;
  cfg.seed = seed;
  cfg.trials = 1;
  if (policy == core::PolicyKind::kResilient) {
    cfg.dre.epoch_resync = true;
  }
  return cfg;
}

TEST(ResilienceChaos, ControllerSweepNeverStallsAndBeatsPassThrough) {
  std::printf(
      "\n  loss   policy      completed  duration_s  wire_bytes  est_loss "
      " level        resyncs\n");
  for (const double loss : {0.01, 0.03, 0.05, 0.08, 0.10}) {
    harness::TrialResult none;
    for (const core::PolicyKind policy :
         {core::PolicyKind::kNone, core::PolicyKind::kCacheFlush,
          core::PolicyKind::kResilient}) {
      const auto cfg = resilience_config(policy, loss, 77);
      const auto r = harness::run_trial(cfg, chaos_file(), 77);
      std::printf(
          "  %.2f   %-10s  %-9s  %10.3f  %10llu  %7.4f  %-11s  %llu\n",
          loss, std::string(core::to_string(policy)).c_str(),
          r.completed ? "yes" : "NO", r.duration_s,
          static_cast<unsigned long long>(r.wire_bytes_forward),
          r.estimated_loss, r.degradation_level,
          static_cast<unsigned long long>(r.resyncs_honored));
      // (1) nothing stalls, at any loss rate, under any of the three.
      EXPECT_TRUE(r.completed) << core::to_string(policy) << " @ " << loss;
      EXPECT_FALSE(r.stalled) << core::to_string(policy) << " @ " << loss;
      EXPECT_TRUE(r.verified) << core::to_string(policy) << " @ " << loss;
      if (policy == core::PolicyKind::kNone) {
        none = r;
      } else if (policy == core::PolicyKind::kResilient) {
        // (2) the controller never does worse on bytes than giving up on
        // caching entirely (pass-through).
        EXPECT_LE(r.wire_bytes_forward, none.wire_bytes_forward)
            << "resilient wasted bytes vs pass-through @ " << loss;
      }
    }
  }
}

TEST(ResilienceChaos, ResilientMatchesCacheFlushDurationAtFivePercent) {
  // At 5% loss Cache Flush is the paper's safe-and-effective rung; the
  // controller must land close to it.  Average over a few seeds so a
  // single unlucky drop pattern cannot dominate.
  double resilient_total = 0.0, flush_total = 0.0;
  constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14};
  for (const std::uint64_t seed : kSeeds) {
    const auto rr = harness::run_trial(
        resilience_config(core::PolicyKind::kResilient, 0.05, seed),
        chaos_file(), seed);
    const auto fr = harness::run_trial(
        resilience_config(core::PolicyKind::kCacheFlush, 0.05, seed),
        chaos_file(), seed);
    ASSERT_TRUE(rr.completed);
    ASSERT_TRUE(fr.completed);
    resilient_total += rr.duration_s;
    flush_total += fr.duration_s;
  }
  std::printf("  5%% loss: resilient %.3fs vs cache_flush %.3fs (%.1f%%)\n",
              resilient_total, flush_total,
              100.0 * resilient_total / flush_total);
  EXPECT_LE(resilient_total, flush_total * 1.05);
}

TEST(ResilienceChaos, EpochResyncRescuesNaiveFromPermanentDesync) {
  // Plain naive caching stalls under loss (a desynced reference is
  // retransmitted forever).  With epoch resync the decoder detects the
  // desync, requests a flush, and the transfer completes.
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    auto cfg = resilience_config(core::PolicyKind::kNaive, 0.05, seed);
    cfg.dre.epoch_resync = true;
    const auto r = harness::run_trial(cfg, chaos_file(), seed);
    std::printf("  naive+resync seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                harness::to_json(r).c_str());
    EXPECT_TRUE(r.completed) << seed;
    EXPECT_TRUE(r.verified) << seed;
    EXPECT_FALSE(r.stalled) << seed;
  }
}

// ---- Coded-repair rung (ISSUE 9, DESIGN.md §13) -----------------------

/// TCP-seq encoding with the FEC layer always on: the coded rung's
/// behavior isolated from the controller's rung choice.
harness::ExperimentConfig coded_config(double loss, std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kTcpSeq;
  cfg.dre.epoch_resync = true;
  cfg.dre.coded_repair = true;
  cfg.loss_rate = loss;
  cfg.seed = seed;
  cfg.trials = 1;
  return cfg;
}

TEST(ResilienceChaos, CodedSweepNeverStallsUnderLossBurstsAndReorder) {
  // The coded rung across 1-10% loss, under three link shapes: uniform
  // drops, Gilbert-Elliott bursts, and drops plus reordering.  Stall
  // freedom is the hard requirement — the reorder cache's arrival budget
  // and the encoder's close-on-retransmit must break every wedge.
  struct Shape {
    const char* name;
    bool bursty;
    double reorder;
  };
  constexpr Shape kShapes[] = {
      {"uniform", false, 0.0},
      {"bursty", true, 0.0},
      {"reorder", false, 0.05},
  };
  std::printf(
      "\n  loss   link     completed  duration_s  repairs  rebuilt  reseq "
      " resyncs\n");
  for (const double loss : {0.01, 0.03, 0.05, 0.08, 0.10}) {
    for (const Shape& shape : kShapes) {
      auto cfg = coded_config(loss, 177);
      cfg.bursty_loss = shape.bursty;
      cfg.forward_link.reorder_prob = shape.reorder;
      const auto r = harness::run_trial(cfg, chaos_file(), 177);
      std::printf(
          "  %.2f   %-7s  %-9s  %10.3f  %7llu  %7llu  %5llu  %llu\n", loss,
          shape.name, r.completed ? "yes" : "NO", r.duration_s,
          static_cast<unsigned long long>(r.repair_packets_sent),
          static_cast<unsigned long long>(r.packets_reconstructed),
          static_cast<unsigned long long>(r.packets_resequenced),
          static_cast<unsigned long long>(r.resync_requests));
      EXPECT_TRUE(r.completed) << shape.name << " @ " << loss;
      EXPECT_FALSE(r.stalled) << shape.name << " @ " << loss;
      EXPECT_TRUE(r.verified) << shape.name << " @ " << loss;
      EXPECT_GT(r.repair_packets_sent, 0u) << shape.name << " @ " << loss;
      // Losses actually get repaired, not merely survived via TCP.
      EXPECT_GT(r.packets_reconstructed, 0u) << shape.name << " @ " << loss;
    }
  }
}

TEST(ResilienceChaos, CodedReconstructsWithoutResyncAtLowLoss) {
  // At 1% loss with R = 4 repairs per 16-packet generation, more than R
  // losses in one generation is a ~1e-10 event: every hole is patched
  // by the repair rows and the epoch-resync escape hatch stays unused.
  std::uint64_t reconstructed = 0, drops = 0;
  for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
    auto cfg = coded_config(0.01, seed);
    cfg.dre.repair.repair_packets = 4;
    const auto r = harness::run_trial(cfg, chaos_file(), seed);
    EXPECT_TRUE(r.completed) << seed;
    EXPECT_TRUE(r.verified) << seed;
    EXPECT_EQ(r.resync_requests, 0u)
        << "seed " << seed << ": repairable losses forced a cache resync";
    reconstructed += r.packets_reconstructed;
    drops += r.link_drops;
  }
  // Across the seeds some data packets definitely dropped, and every
  // hole was patched from repair rows, not by flushing the cache.  (A
  // single seed can see only ACK or repair-packet losses, so the
  // reconstruction assertion is on the aggregate.)
  EXPECT_GT(drops, 0u);
  EXPECT_GT(reconstructed, 0u);
}

TEST(ResilienceChaos, CodedBeatsCacheFlushCompletionAtFivePercent) {
  // The rung's reason to exist: at 5% loss, repairing holes beats
  // flushing the cache on every drop.  Averaged over seeds; every coded
  // run must finish with zero stalls for the comparison to count.
  double coded_total = 0.0, flush_total = 0.0;
  constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14};
  for (const std::uint64_t seed : kSeeds) {
    const auto cr =
        harness::run_trial(coded_config(0.05, seed), chaos_file(), seed);
    const auto fr = harness::run_trial(
        resilience_config(core::PolicyKind::kCacheFlush, 0.05, seed),
        chaos_file(), seed);
    ASSERT_TRUE(cr.completed && !cr.stalled) << seed;
    ASSERT_TRUE(fr.completed) << seed;
    coded_total += cr.duration_s;
    flush_total += fr.duration_s;
  }
  std::printf("  5%% loss: coded %.3fs vs cache_flush %.3fs (%.1f%%)\n",
              coded_total, flush_total, 100.0 * coded_total / flush_total);
  EXPECT_LT(coded_total, flush_total);
}

TEST(ResilienceChaos, ReorderOnlyLinkNeedsNoResync) {
  // Pure reordering, zero loss: the generation buffer re-sequences the
  // stream so the core decoder sees encoder order, and the resync path
  // is never provoked.  Without the coded layer the same link forces
  // cache desyncs (reordered cache updates), so this is the reorder
  // cache's acceptance gate.
  for (const std::uint64_t seed : {41ull, 42ull, 43ull}) {
    auto cfg = coded_config(0.0, seed);
    cfg.forward_link.reorder_prob = 0.10;
    const auto r = harness::run_trial(cfg, chaos_file(), seed);
    std::printf("  reorder-only seed %llu: reseq=%llu resyncs=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(r.packets_resequenced),
                static_cast<unsigned long long>(r.resync_requests));
    EXPECT_TRUE(r.completed) << seed;
    EXPECT_TRUE(r.verified) << seed;
    EXPECT_FALSE(r.stalled) << seed;
    EXPECT_GT(r.packets_resequenced, 0u) << seed;
    EXPECT_EQ(r.resync_requests, 0u) << seed;
    EXPECT_EQ(r.stale_drops, 0u) << seed;
  }
}

TEST(ResilienceChaos, ControllerSweepWithCodedRungEnabled) {
  // The five-level ladder end to end: the controller with the coded rung
  // compiled in must stay stall-free across the sweep and never do worse
  // on bytes than pass-through (the rung only changes *how* mid-ladder
  // loss is survived).
  for (const double loss : {0.01, 0.05, 0.10}) {
    auto cfg = resilience_config(core::PolicyKind::kResilient, loss, 277);
    cfg.dre.coded_repair = true;
    const auto r = harness::run_trial(cfg, chaos_file(), 277);
    auto none = resilience_config(core::PolicyKind::kNone, loss, 277);
    const auto nr = harness::run_trial(none, chaos_file(), 277);
    EXPECT_TRUE(r.completed) << loss;
    EXPECT_FALSE(r.stalled) << loss;
    EXPECT_TRUE(r.verified) << loss;
    EXPECT_LE(r.wire_bytes_forward, nr.wire_bytes_forward) << loss;
  }
}

TEST(ResilienceChaos, ControllerRunIsDeterministic) {
  const auto cfg = resilience_config(core::PolicyKind::kResilient, 0.07, 21);
  const auto a = harness::run_trial(cfg, chaos_file(), 21);
  const auto b = harness::run_trial(cfg, chaos_file(), 21);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.wire_bytes_forward, b.wire_bytes_forward);
  EXPECT_EQ(a.estimated_loss, b.estimated_loss);
  EXPECT_EQ(a.degradation_transitions, b.degradation_transitions);
}

}  // namespace
}  // namespace bytecache
