// Acceptance test for the resilience layer (ISSUE 4): a chaos sim at
// 1-10% loss with the degradation controller enabled must show
//   1. no flow ever stalls (the resync path breaks every livelock),
//   2. byte savings at least as good as pass-through at every loss rate,
//   3. download time within 5% of the always-safe Cache Flush policy at
//      5% loss (the controller converges to the right rung),
// and a naive encoder with epoch_resync enabled must complete where plain
// naive stalls, because epoch resync bounds how long a desync can last.
// The sweep prints a harness table (the EXPERIMENTS.md Fig. 13 recipe).
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/experiment.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

const Bytes& chaos_file() {
  static const Bytes f = [] {
    Rng rng(0x5E51);
    return workload::make_file1(rng, 160'000);
  }();
  return f;
}

harness::ExperimentConfig resilience_config(core::PolicyKind policy,
                                            double loss,
                                            std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.loss_rate = loss;
  cfg.seed = seed;
  cfg.trials = 1;
  if (policy == core::PolicyKind::kResilient) {
    cfg.dre.epoch_resync = true;
  }
  return cfg;
}

TEST(ResilienceChaos, ControllerSweepNeverStallsAndBeatsPassThrough) {
  std::printf(
      "\n  loss   policy      completed  duration_s  wire_bytes  est_loss "
      " level        resyncs\n");
  for (const double loss : {0.01, 0.03, 0.05, 0.08, 0.10}) {
    harness::TrialResult none;
    for (const core::PolicyKind policy :
         {core::PolicyKind::kNone, core::PolicyKind::kCacheFlush,
          core::PolicyKind::kResilient}) {
      const auto cfg = resilience_config(policy, loss, 77);
      const auto r = harness::run_trial(cfg, chaos_file(), 77);
      std::printf(
          "  %.2f   %-10s  %-9s  %10.3f  %10llu  %7.4f  %-11s  %llu\n",
          loss, std::string(core::to_string(policy)).c_str(),
          r.completed ? "yes" : "NO", r.duration_s,
          static_cast<unsigned long long>(r.wire_bytes_forward),
          r.estimated_loss, r.degradation_level,
          static_cast<unsigned long long>(r.resyncs_honored));
      // (1) nothing stalls, at any loss rate, under any of the three.
      EXPECT_TRUE(r.completed) << core::to_string(policy) << " @ " << loss;
      EXPECT_FALSE(r.stalled) << core::to_string(policy) << " @ " << loss;
      EXPECT_TRUE(r.verified) << core::to_string(policy) << " @ " << loss;
      if (policy == core::PolicyKind::kNone) {
        none = r;
      } else if (policy == core::PolicyKind::kResilient) {
        // (2) the controller never does worse on bytes than giving up on
        // caching entirely (pass-through).
        EXPECT_LE(r.wire_bytes_forward, none.wire_bytes_forward)
            << "resilient wasted bytes vs pass-through @ " << loss;
      }
    }
  }
}

TEST(ResilienceChaos, ResilientMatchesCacheFlushDurationAtFivePercent) {
  // At 5% loss Cache Flush is the paper's safe-and-effective rung; the
  // controller must land close to it.  Average over a few seeds so a
  // single unlucky drop pattern cannot dominate.
  double resilient_total = 0.0, flush_total = 0.0;
  constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14};
  for (const std::uint64_t seed : kSeeds) {
    const auto rr = harness::run_trial(
        resilience_config(core::PolicyKind::kResilient, 0.05, seed),
        chaos_file(), seed);
    const auto fr = harness::run_trial(
        resilience_config(core::PolicyKind::kCacheFlush, 0.05, seed),
        chaos_file(), seed);
    ASSERT_TRUE(rr.completed);
    ASSERT_TRUE(fr.completed);
    resilient_total += rr.duration_s;
    flush_total += fr.duration_s;
  }
  std::printf("  5%% loss: resilient %.3fs vs cache_flush %.3fs (%.1f%%)\n",
              resilient_total, flush_total,
              100.0 * resilient_total / flush_total);
  EXPECT_LE(resilient_total, flush_total * 1.05);
}

TEST(ResilienceChaos, EpochResyncRescuesNaiveFromPermanentDesync) {
  // Plain naive caching stalls under loss (a desynced reference is
  // retransmitted forever).  With epoch resync the decoder detects the
  // desync, requests a flush, and the transfer completes.
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    auto cfg = resilience_config(core::PolicyKind::kNaive, 0.05, seed);
    cfg.dre.epoch_resync = true;
    const auto r = harness::run_trial(cfg, chaos_file(), seed);
    std::printf("  naive+resync seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                harness::to_json(r).c_str());
    EXPECT_TRUE(r.completed) << seed;
    EXPECT_TRUE(r.verified) << seed;
    EXPECT_FALSE(r.stalled) << seed;
  }
}

TEST(ResilienceChaos, ControllerRunIsDeterministic) {
  const auto cfg = resilience_config(core::PolicyKind::kResilient, 0.07, 21);
  const auto a = harness::run_trial(cfg, chaos_file(), 21);
  const auto b = harness::run_trial(cfg, chaos_file(), 21);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.wire_bytes_forward, b.wire_bytes_forward);
  EXPECT_EQ(a.estimated_loss, b.estimated_loss);
  EXPECT_EQ(a.degradation_transitions, b.degradation_transitions);
}

}  // namespace
}  // namespace bytecache
