// Chaos suite: every impairment at once (random loss, bursty loss,
// corruption, reordering), swept across policies, selection modes, and
// seeds.  The system-wide invariants under any combination:
//   1. delivered application bytes are always a correct prefix/copy,
//   2. loss-robust policies always complete,
//   3. the run is deterministic given the seed.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

harness::ExperimentConfig chaos_config(core::PolicyKind policy,
                                       core::SelectMode mode,
                                       std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.dre.select_mode = mode;
  cfg.loss_rate = 0.04;
  cfg.bursty_loss = (seed % 2) == 0;
  cfg.forward_link.corrupt_prob = 0.01;
  cfg.forward_link.reorder_prob = 0.02;
  cfg.forward_link.reorder_extra_delay = sim::ms(3);
  cfg.seed = seed;
  return cfg;
}

const Bytes& chaos_file() {
  static const Bytes f = [] {
    Rng rng(0xC0A5);
    return workload::make_file1(rng, 180'000);
  }();
  return f;
}

using ChaosParams =
    std::tuple<core::PolicyKind, core::SelectMode, std::uint64_t>;

class ChaosSweep : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(ChaosSweep, CompletesVerifiedUnderAllImpairments) {
  const auto [policy, mode, seed] = GetParam();
  auto r = harness::run_trial(chaos_config(policy, mode, seed), chaos_file(),
                              seed);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);  // the invariant that must never break
  EXPECT_GT(r.perceived_loss, 0.0);
}

std::string select_mode_name(core::SelectMode m) {
  switch (m) {
    case core::SelectMode::kValueSampling: return "modp";
    case core::SelectMode::kMaxp: return "maxp";
    case core::SelectMode::kSampleByte: return "samplebyte";
  }
  return "?";
}

INSTANTIATE_TEST_SUITE_P(
    Combos, ChaosSweep,
    ::testing::Combine(
        ::testing::Values(core::PolicyKind::kCacheFlush,
                          core::PolicyKind::kTcpSeq,
                          core::PolicyKind::kKDistance,
                          core::PolicyKind::kAdaptive),
        ::testing::Values(core::SelectMode::kValueSampling,
                          core::SelectMode::kMaxp,
                          core::SelectMode::kSampleByte),
        ::testing::Values(1ull, 2ull)),
    [](const ::testing::TestParamInfo<ChaosParams>& info) {
      return std::string(core::to_string(std::get<0>(info.param))) + "_" +
             select_mode_name(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Chaos, NaiveUnderChaosNeverDeliversWrongBytes) {
  // Naive may (and usually does) stall under chaos; what it may never do
  // is corrupt the delivered prefix.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto r = harness::run_trial(
        chaos_config(core::PolicyKind::kNaive,
                     core::SelectMode::kValueSampling, seed),
        chaos_file(), seed);
    EXPECT_TRUE(r.verified) << seed;
  }
}

TEST(Chaos, FeatureStackUnderChaos) {
  // Everything on at once: NACK feedback + ACK gating + delayed ACKs +
  // Tahoe + MAXP, under all impairments.
  auto cfg = chaos_config(core::PolicyKind::kCacheFlush,
                          core::SelectMode::kMaxp, 3);
  cfg.dre.nack_feedback = true;
  cfg.dre.ack_gated = true;
  cfg.tcp.delayed_ack = true;
  cfg.tcp.algo = tcp::CongestionAlgo::kTahoe;
  auto r = harness::run_trial(cfg, chaos_file(), 3);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  // ACK gating guarantees no loss-induced undecodable packets; the only
  // admissible decoder drops are corrupted-in-flight packets the CRC
  // rejects (inherent to corruption, not a cache desync).
  EXPECT_LE(r.decoder_drops, r.corrupted);
}

TEST(Chaos, DeterministicUnderChaos) {
  const auto cfg = chaos_config(core::PolicyKind::kTcpSeq,
                                core::SelectMode::kValueSampling, 7);
  auto a = harness::run_trial(cfg, chaos_file(), 7);
  auto b = harness::run_trial(cfg, chaos_file(), 7);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.wire_bytes_forward, b.wire_bytes_forward);
  EXPECT_EQ(a.decoder_drops, b.decoder_drops);
  EXPECT_EQ(a.tcp_retransmissions, b.tcp_retransmissions);
  EXPECT_EQ(a.perceived_loss, b.perceived_loss);
}

TEST(Chaos, TinyCachePlusChaos) {
  // Eviction churn on top of every impairment: completion and integrity
  // must still hold (references to evicted packets become clean drops).
  auto cfg = chaos_config(core::PolicyKind::kCacheFlush,
                          core::SelectMode::kValueSampling, 9);
  cfg.cache.l1_bytes = 20 * 1480;  // ~20 packets
  auto r = harness::run_trial(cfg, chaos_file(), 9);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

}  // namespace
}  // namespace bytecache
