#include <gtest/gtest.h>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/matcher.h"
#include "core/policies.h"
#include "tests/testutil.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace bytecache::core {
namespace {

using testutil::test_encoder;
using testutil::make_tcp_packet;
using testutil::random_bytes;
using testutil::segment_stream;
using util::Bytes;
using util::Rng;

// ------------------------------------------------------------ matcher --

TEST(Matcher, VerifiesWindowBytes) {
  const Bytes pnew = util::to_bytes("xxxxABCDEFGHIJKLMNOPyyyy");
  const Bytes stored = util::to_bytes("ABCDEFGHIJKLMNOP");
  auto m = expand_match(pnew, 4, stored, 0, 16, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->new_begin, 4u);
  EXPECT_EQ(m->stored_begin, 0u);
  EXPECT_EQ(m->length, 16u);
}

TEST(Matcher, RejectsCollision) {
  const Bytes pnew = util::to_bytes("AAAAAAAAAAAAAAAA");
  const Bytes stored = util::to_bytes("BBBBBBBBBBBBBBBB");
  EXPECT_FALSE(expand_match(pnew, 0, stored, 0, 16, 0).has_value());
}

TEST(Matcher, ExpandsLeftAndRight) {
  const Bytes pnew = util::to_bytes("..commonABCDEFGHIJKLMNOPtail..");
  const Bytes stored = util::to_bytes("xcommonABCDEFGHIJKLMNOPtailyz");
  // Window at pnew offset 8 ("ABCDEFGHIJKLMNOP"), stored offset 7.
  auto m = expand_match(pnew, 8, stored, 7, 16, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->new_begin, 2u);     // "common..." starts at 2
  EXPECT_EQ(m->stored_begin, 1u);
  EXPECT_EQ(m->length, 6 + 16 + 4u);  // common + window + tail
}

TEST(Matcher, LeftExpansionRespectsMinBegin) {
  const Bytes pnew = util::to_bytes("commonABCDEFGHIJKLMNOP");
  const Bytes stored = util::to_bytes("commonABCDEFGHIJKLMNOP");
  auto m = expand_match(pnew, 6, stored, 6, 16, 4);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->new_begin, 4u);  // stopped by min_new_begin, not content
}

TEST(Matcher, BoundsCheckedAtEdges) {
  const Bytes pnew = util::to_bytes("ABCDEFGHIJKLMNOP");
  const Bytes stored = util::to_bytes("ABCDEFGH");
  EXPECT_FALSE(expand_match(pnew, 0, stored, 0, 16, 0).has_value());
  EXPECT_FALSE(expand_match(pnew, 8, stored, 0, 16, 0).has_value());
}

TEST(Matcher, IdenticalPayloadsFullLength) {
  Rng rng(1);
  const Bytes p = random_bytes(rng, 200);
  auto m = expand_match(p, 100, p, 100, 16, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->new_begin, 0u);
  EXPECT_EQ(m->length, 200u);
}

// ---------------------------------------------- encoder/decoder basics --

TEST(Codec, FirstPacketNeverEncoded) {
  auto enc = test_encoder(PolicyKind::kNaive);
  Rng rng(2);
  auto pkt = make_tcp_packet(random_bytes(rng, 1000), 1000);
  const EncodeInfo info = enc.process(*pkt);
  EXPECT_TRUE(info.data_packet);
  EXPECT_FALSE(info.encoded);
  EXPECT_EQ(pkt->proto(), packet::IpProto::kTcp);
}

TEST(Codec, DuplicatePayloadIsEncodedAndDecodedExactly) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(3);
  const Bytes data = random_bytes(rng, 1000);

  auto p1 = make_tcp_packet(data, 1000);
  const Bytes original1 = p1->payload;
  enc.process(*p1);
  EXPECT_EQ(dec.process(*p1).status, DecodeStatus::kPassthrough);

  auto p2 = make_tcp_packet(data, 2000);  // same app data, later seq
  const Bytes original2 = p2->payload;
  const EncodeInfo info = enc.process(*p2);
  EXPECT_TRUE(info.encoded);
  EXPECT_EQ(p2->proto(), packet::IpProto::kDre);
  EXPECT_LT(p2->payload.size(), original2.size());

  const DecodeInfo dinfo = dec.process(*p2);
  EXPECT_EQ(dinfo.status, DecodeStatus::kDecoded);
  EXPECT_EQ(p2->payload, original2);
  EXPECT_EQ(p2->proto(), packet::IpProto::kTcp);
}

TEST(Codec, SmallPacketsSkipped) {
  auto enc = test_encoder(PolicyKind::kNaive);
  auto pkt = packet::make_packet(1, 2, packet::IpProto::kUdp, Bytes(10, 'a'));
  const EncodeInfo info = enc.process(*pkt);
  EXPECT_FALSE(info.data_packet);
  EXPECT_EQ(enc.stats().data_packets, 0u);
}

TEST(Codec, PureAckSkipped) {
  auto enc = test_encoder(PolicyKind::kNaive);
  // TCP header only, no data.
  packet::TcpHeader h;
  h.seq = 5;
  h.flags = packet::TcpHeader::kAck;
  Bytes segment;
  h.serialize(segment, {}, testutil::kSrcIp, testutil::kDstIp);
  auto pkt = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                                 packet::IpProto::kTcp, std::move(segment));
  const EncodeInfo info = enc.process(*pkt);
  EXPECT_FALSE(info.data_packet);
}

TEST(Codec, IncompressibleStreamNeverEncoded) {
  auto enc = test_encoder(PolicyKind::kNaive);
  Rng rng(4);
  const Bytes object = random_bytes(rng, 50 * 1460);
  for (auto& pkt : segment_stream(object)) {
    const EncodeInfo info = enc.process(*pkt);
    EXPECT_FALSE(info.encoded);
  }
  EXPECT_EQ(enc.stats().encoded_packets, 0u);
}

TEST(Codec, StreamRoundTripBitExact) {
  // Property: for ANY stream, encode->decode in order reproduces every
  // payload bit-exactly.
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(5);
  const Bytes object = workload::make_file1(rng, 200 * 1460);
  std::size_t encoded = 0;
  for (auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    const EncodeInfo einfo = enc.process(*pkt);
    if (einfo.encoded) ++encoded;
    const DecodeInfo dinfo = dec.process(*pkt);
    ASSERT_FALSE(is_drop(dinfo.status));
    ASSERT_EQ(pkt->payload, original);
  }
  EXPECT_GT(encoded, 150u);  // the workload is highly redundant
}

TEST(Codec, RedundantWorkloadSavesBytes) {
  auto enc = test_encoder(PolicyKind::kNaive);
  Rng rng(6);
  const Bytes object = workload::make_file1(rng, 300 * 1460);
  for (auto& pkt : segment_stream(object)) enc.process(*pkt);
  const EncoderStats& s = enc.stats();
  const double saved =
      static_cast<double>(s.bytes_saved()) / static_cast<double>(s.bytes_in);
  EXPECT_GT(saved, 0.30);  // File 1 carries ~50% redundancy
  EXPECT_LT(saved, 0.70);
}

TEST(Codec, DecoderDropsWhenReferenceMissing) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(7);
  const Bytes data = random_bytes(rng, 1000);

  auto p1 = make_tcp_packet(data, 1000);
  enc.process(*p1);
  // p1 is LOST: the decoder never sees it.

  auto p2 = make_tcp_packet(data, 2000);
  const EncodeInfo info = enc.process(*p2);
  ASSERT_TRUE(info.encoded);
  const DecodeInfo dinfo = dec.process(*p2);
  EXPECT_EQ(dinfo.status, DecodeStatus::kMissingFingerprint);
  EXPECT_EQ(dec.stats().drops_missing_fp, 1u);
}

TEST(Codec, CorruptedEncodedPacketDropsNotCorrupts) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(8);
  const Bytes data = random_bytes(rng, 1000);

  auto p1 = make_tcp_packet(data, 1000);
  enc.process(*p1);
  dec.process(*p1);

  auto p2 = make_tcp_packet(data, 2000);
  ASSERT_TRUE(enc.process(*p2).encoded);
  // Corrupt a literal/region byte beyond the shim: the CRC must catch it.
  Rng corrupt(9);
  for (int trial = 0; trial < 20; ++trial) {
    auto copy = packet::clone_packet(*p2);
    const std::size_t pos = corrupt.uniform(4, copy->payload.size() - 1);
    copy->payload[pos] ^= 0x5A;
    Decoder dec2(params);
    // Warm dec2's cache identically.
    auto warm = make_tcp_packet(data, 1000);
    dec2.process(*warm);
    const DecodeInfo dinfo = dec2.process(*copy);
    // Either rejected structurally or caught by CRC — never silently wrong.
    if (!is_drop(dinfo.status)) {
      auto orig = make_tcp_packet(data, 2000);
      EXPECT_EQ(copy->payload, orig->payload);
    }
  }
}

TEST(Codec, EncoderNeverInflatesPayload) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Rng rng(10);
  // A stream with tiny repeated snippets (too small to pay for fields).
  Bytes object;
  while (object.size() < 100 * 1460) {
    util::append(object, random_bytes(rng, 200));
    util::append(object, util::to_bytes("tinyrepeatedbit"));
  }
  for (auto& pkt : segment_stream(object)) {
    const std::size_t before = pkt->payload.size();
    enc.process(*pkt);
    EXPECT_LE(pkt->payload.size(), before);
  }
}

TEST(Codec, MultipleRegionsPerPacket) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(11);
  const Bytes a = random_bytes(rng, 300);
  const Bytes b = random_bytes(rng, 300);
  const Bytes c = random_bytes(rng, 300);

  Bytes first;
  util::append(first, a);
  util::append(first, b);
  util::append(first, c);
  auto p1 = make_tcp_packet(first, 1000);
  enc.process(*p1);
  dec.process(*p1);

  // Second packet interleaves the three known chunks with fresh bytes.
  Bytes second;
  util::append(second, random_bytes(rng, 50));
  util::append(second, a);
  util::append(second, random_bytes(rng, 50));
  util::append(second, b);
  util::append(second, random_bytes(rng, 50));
  util::append(second, c);
  auto p2 = make_tcp_packet(second, 2000);
  const Bytes original = p2->payload;
  const EncodeInfo info = enc.process(*p2);
  ASSERT_TRUE(info.encoded);
  EXPECT_GE(info.regions, 2u);

  const DecodeInfo dinfo = dec.process(*p2);
  ASSERT_EQ(dinfo.status, DecodeStatus::kDecoded);
  EXPECT_EQ(p2->payload, original);
}

TEST(Codec, CachesStayInLockstepOverLongStream) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(12);
  const Bytes object = workload::make_file2(rng, 400 * 1460);
  for (auto& pkt : segment_stream(object)) {
    enc.process(*pkt);
    ASSERT_FALSE(is_drop(dec.process(*pkt).status));
  }
  // Same packets stored on both sides.
  EXPECT_EQ(enc.cache().store().size(), dec.cache().store().size());
  EXPECT_EQ(enc.cache().fingerprint_count(), dec.cache().fingerprint_count());
}

TEST(Codec, UdpPayloadsEncodeToo) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Decoder dec(params);
  Rng rng(13);
  const Bytes data = random_bytes(rng, 800);
  auto p1 = testutil::make_udp_packet(data);
  enc.process(*p1);
  dec.process(*p1);
  auto p2 = testutil::make_udp_packet(data);
  const Bytes original = p2->payload;
  EXPECT_TRUE(enc.process(*p2).encoded);
  EXPECT_EQ(dec.process(*p2).status, DecodeStatus::kDecoded);
  EXPECT_EQ(p2->payload, original);
  EXPECT_EQ(p2->proto(), packet::IpProto::kUdp);  // protocol restored
}

TEST(Codec, DependencyTrackingCountsDistinctSources) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Rng rng(14);
  const Bytes a = random_bytes(rng, 400);
  const Bytes b = random_bytes(rng, 400);
  auto p1 = make_tcp_packet(a, 1000);
  auto p2 = make_tcp_packet(b, 2000);
  enc.process(*p1);
  enc.process(*p2);

  Bytes mixed;
  util::append(mixed, a);
  util::append(mixed, b);
  auto p3 = make_tcp_packet(mixed, 3000);
  const EncodeInfo info = enc.process(*p3);
  ASSERT_TRUE(info.encoded);
  EXPECT_EQ(info.deps.size(), 2u);
  EXPECT_NE(info.deps[0], info.deps[1]);
}

TEST(Codec, FlushPreventsEncodingAgainstPreFlushPackets) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kNaive, params);
  Rng rng(15);
  const Bytes data = random_bytes(rng, 1000);
  auto p1 = make_tcp_packet(data, 1000);
  enc.process(*p1);
  enc.flush();
  auto p2 = make_tcp_packet(data, 2000);
  EXPECT_FALSE(enc.process(*p2).encoded);
  EXPECT_GT(enc.epoch(), 0u);
}

}  // namespace
}  // namespace bytecache::core
