// Shared helpers for the test suite.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "packet/packet.h"
#include "packet/tcp.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace bytecache::testutil {

inline constexpr std::uint32_t kSrcIp = 0x0A000001;  // 10.0.0.1
inline constexpr std::uint32_t kDstIp = 0x0A000101;  // 10.0.1.1

/// Builds a TCP data packet carrying `data` at sequence number `seq`.
inline packet::PacketPtr make_tcp_packet(util::BytesView data,
                                         std::uint32_t seq) {
  packet::TcpHeader h;
  h.src_port = 80;
  h.dst_port = 40000;
  h.seq = seq;
  h.flags = packet::TcpHeader::kAck | packet::TcpHeader::kPsh;
  util::Bytes segment;
  segment.reserve(packet::TcpHeader::kSize + data.size());
  h.serialize(segment, data, kSrcIp, kDstIp);
  return packet::make_packet(kSrcIp, kDstIp, packet::IpProto::kTcp,
                             std::move(segment));
}

/// Builds a UDP-protocol packet with a raw payload (no UDP header needed
/// for codec tests — the codec treats the payload as opaque bytes).
inline packet::PacketPtr make_udp_packet(util::BytesView payload) {
  return packet::make_packet(kSrcIp, kDstIp, packet::IpProto::kUdp,
                             util::Bytes(payload.begin(), payload.end()));
}

/// Segments `object` into MSS-sized TCP packets with consecutive
/// sequence numbers starting at `isn`.
inline std::vector<packet::PacketPtr> segment_stream(util::BytesView object,
                                                     std::size_t mss = 1460,
                                                     std::uint32_t isn = 1000) {
  std::vector<packet::PacketPtr> out;
  for (std::size_t off = 0; off < object.size(); off += mss) {
    const std::size_t len = std::min(mss, object.size() - off);
    out.push_back(make_tcp_packet(object.subspan(off, len),
                                  isn + static_cast<std::uint32_t>(off)));
  }
  return out;
}

/// Seed for randomized tests: the BYTECACHE_TEST_SEED environment
/// variable if set (decimal or 0x-hex), else `fallback`.  Always logs
/// the seed in use so any failure is reproducible with
/// `BYTECACHE_TEST_SEED=<seed> ctest ...`.
inline std::uint64_t test_seed(std::uint64_t fallback) {
  std::uint64_t seed = fallback;
  if (const char* env = std::getenv("BYTECACHE_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') seed = v;
  }
  std::printf("[   SEED   ] %llu (override with BYTECACHE_TEST_SEED)\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

/// Random bytes.
inline util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

/// Creates an encoder with the given policy kind.
inline core::Encoder test_encoder(core::PolicyKind kind,
                                  core::DreParams params = {},
                                  cache::CacheConfig cache = {},
                                  cache::L2Store* l2 = nullptr) {
  return core::Encoder(params, core::make_policy(kind, params), cache, l2);
}

}  // namespace bytecache::testutil
