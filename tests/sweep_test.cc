// Final property sweeps across subsystem combinations: HTTP sessions per
// policy, multi-flow counts, link rates, and feature compositions.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "app/file_transfer.h"
#include "app/http_session.h"
#include "gateway/multi_pipeline.h"
#include "harness/experiment.h"
#include "tests/testutil.h"
#include "workload/generators.h"
#include "workload/text.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

// ------------------------------------------------ HTTP x policy sweep --

class HttpPolicySweep : public ::testing::TestWithParam<core::PolicyKind> {};

TEST_P(HttpPolicySweep, LossyBrowsingSessionSucceeds) {
  sim::Simulator sim;
  Rng rng(17);
  app::HttpServer server;
  workload::WebPageParams params;
  params.items = 30;
  util::Bytes page = workload::make_web_page(rng, params);
  while (page.size() < 30'000) {
    util::append(page, util::to_bytes(workload::make_sentence(rng)));
  }
  server.add_object("/p", page);

  gateway::PipelineConfig cfg;
  cfg.policy = GetParam();
  cfg.loss_rate = 0.02;
  cfg.seed = 21;
  app::HttpSession session(sim, cfg, std::move(server));
  for (int i = 0; i < 3; ++i) {
    app::FetchResult r = session.fetch("/p");
    ASSERT_TRUE(r.ok) << core::to_string(GetParam()) << " fetch " << i;
    EXPECT_EQ(r.response.body, page) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, HttpPolicySweep,
    ::testing::Values(core::PolicyKind::kNone, core::PolicyKind::kCacheFlush,
                      core::PolicyKind::kTcpSeq, core::PolicyKind::kKDistance,
                      core::PolicyKind::kAdaptive),
    [](const ::testing::TestParamInfo<core::PolicyKind>& info) {
      return std::string(core::to_string(info.param));
    });

// ---------------------------------------------- multi-flow count sweep --

class FlowCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowCountSweep, AllFlowsCompleteUnderLoss) {
  const std::size_t flows = GetParam();
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.02;
  cfg.seed = 31 + flows;
  gateway::MultiPipeline pipeline(sim, cfg, flows);
  Rng rng(41);
  std::vector<Bytes> files;
  std::vector<std::unique_ptr<app::FileTransfer>> transfers;
  for (std::size_t i = 0; i < flows; ++i) {
    files.push_back(workload::make_file1(rng, 40'000 + 5'000 * i));
    transfers.push_back(std::make_unique<app::FileTransfer>(
        sim, pipeline.sender(i), pipeline.receiver(i), files.back(),
        cfg.reverse_link.propagation_delay, sim::sec(600)));
    sim.at(static_cast<sim::SimTime>(i) * sim::ms(20),
           [t = transfers.back().get()]() { t->start(); });
  }
  sim.run();
  for (std::size_t i = 0; i < flows; ++i) {
    EXPECT_TRUE(transfers[i]->result().completed) << "flow " << i;
    EXPECT_TRUE(transfers[i]->result().verified) << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, FlowCountSweep,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "flows" + std::to_string(i.param);
                         });

// ------------------------------------------------------ link rate sweep --

class LinkRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinkRateSweep, ThroughputTracksTheShaper) {
  const double rate = GetParam();
  Rng rng(51);
  const Bytes file = workload::make_video(rng, 200'000);  // incompressible
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNone;
  cfg.forward_link.rate_bytes_per_sec = rate;
  auto r = harness::run_trial(cfg, file, 5);
  ASSERT_TRUE(r.completed);
  // Download time is bounded below by wire bytes / rate, and the link
  // should stay mostly saturated (within 3x of the bound at these sizes).
  const double floor_s = static_cast<double>(r.wire_bytes_forward) / rate;
  EXPECT_GE(r.duration_s, floor_s * 0.99);
  EXPECT_LE(r.duration_s, floor_s * 3.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkRateSweep,
                         ::testing::Values(250e3, 1e6, 4e6),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "bps" + std::to_string(
                                              static_cast<long>(i.param));
                         });

// ------------------------------------------- feature composition sweep --

struct Composition {
  bool nack;
  bool ack_gated;
  bool delack;
  tcp::CongestionAlgo algo;
};

class CompositionSweep
    : public ::testing::TestWithParam<std::tuple<int, core::PolicyKind>> {};

TEST_P(CompositionSweep, EveryCombinationCompletesAndVerifies) {
  static const Composition kCompositions[] = {
      {true, false, false, tcp::CongestionAlgo::kNewReno},
      {false, true, false, tcp::CongestionAlgo::kNewReno},
      {true, true, false, tcp::CongestionAlgo::kNewReno},
      {false, true, true, tcp::CongestionAlgo::kTahoe},
      {true, false, true, tcp::CongestionAlgo::kTahoe},
  };
  const Composition& comp = kCompositions[std::get<0>(GetParam())];
  Rng rng(61);
  const Bytes file = workload::make_file1(rng, 100'000);
  harness::ExperimentConfig cfg;
  cfg.policy = std::get<1>(GetParam());
  cfg.dre.nack_feedback = comp.nack;
  cfg.dre.ack_gated = comp.ack_gated;
  cfg.tcp.delayed_ack = comp.delack;
  cfg.tcp.algo = comp.algo;
  cfg.loss_rate = 0.04;
  auto r = harness::run_trial(cfg, file, 71);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, CompositionSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(core::PolicyKind::kCacheFlush,
                                         core::PolicyKind::kTcpSeq,
                                         core::PolicyKind::kKDistance)),
    [](const ::testing::TestParamInfo<std::tuple<int, core::PolicyKind>>& i) {
      return "combo" + std::to_string(std::get<0>(i.param)) + "_" +
             std::string(core::to_string(std::get<1>(i.param)));
    });

// ----------------------------------------------------- workload sweep --

class ObjectKindSweep : public ::testing::TestWithParam<int> {};

TEST_P(ObjectKindSweep, TransfersVerifyForEveryObjectClass) {
  Rng rng(81);
  Bytes object;
  switch (GetParam()) {
    case 0: object = workload::make_ebook(rng, {.size = 120'000}); break;
    case 1: object = workload::make_video(rng, 120'000); break;
    case 2: {
      while (object.size() < 120'000) {
        util::append(object, workload::make_web_page(rng, {}));
      }
      object.resize(120'000);
      break;
    }
    case 3: object = workload::make_file1(rng, 120'000); break;
    case 4: object = workload::make_file2(rng, 120'000); break;
  }
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kTcpSeq;
  cfg.loss_rate = 0.02;
  auto r = harness::run_trial(cfg, object, 91);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

std::string object_kind_name(const ::testing::TestParamInfo<int>& i) {
  static const char* kNames[] = {"ebook", "video", "webpage", "file1",
                                 "file2"};
  return kNames[i.param];
}

INSTANTIATE_TEST_SUITE_P(Kinds, ObjectKindSweep, ::testing::Range(0, 5),
                         object_kind_name);

}  // namespace
}  // namespace bytecache
