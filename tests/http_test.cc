// HTTP message parsing and full exchanges over the DRE pipeline.
#include <gtest/gtest.h>

#include "app/http.h"
#include "app/http_session.h"
#include "workload/generators.h"
#include "workload/text.h"

namespace bytecache::app {
namespace {

using util::Bytes;
using util::Rng;

// ------------------------------------------------------------ messages --

TEST(HttpRequest, SerializeParseRoundTrip) {
  HttpRequest req;
  req.path = "/index.html";
  req.headers = {{"Host", "example.com"}, {"Accept", "*/*"}};
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/index.html");
  ASSERT_EQ(parsed->headers.size(), 2u);
  EXPECT_EQ(parsed->headers[0].first, "Host");
  EXPECT_EQ(parsed->headers[0].second, "example.com");
}

TEST(HttpRequest, IncompleteIsRejected) {
  const Bytes partial = util::to_bytes("GET /x HTTP/1.0\r\nHost: h\r\n");
  EXPECT_FALSE(HttpRequest::parse(partial).has_value());
  EXPECT_FALSE(HttpRequest::parse({}).has_value());
}

TEST(HttpRequest, MalformedStartLineRejected) {
  const Bytes bad = util::to_bytes("GETPATH\r\n\r\n");
  EXPECT_FALSE(HttpRequest::parse(bad).has_value());
  const Bytes not_http = util::to_bytes("GET / FTP/1.0\r\n\r\n");
  EXPECT_FALSE(HttpRequest::parse(not_http).has_value());
}

TEST(HttpResponse, SerializeParseRoundTrip) {
  HttpResponse resp;
  resp.status = 200;
  resp.headers = {{"Content-Type", "text/plain"}};
  resp.body = util::to_bytes("hello body");
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, resp.body);
  EXPECT_EQ(parsed->header("content-type"), "text/plain");  // case-insensitive
  EXPECT_EQ(parsed->header("content-length"),
            std::to_string(resp.body.size()));
}

TEST(HttpResponse, BytesMissingTracksBody) {
  HttpResponse resp;
  resp.body = Bytes(100, 'x');
  const Bytes wire = resp.serialize();
  // Header not complete yet:
  EXPECT_FALSE(
      HttpResponse::bytes_missing(util::BytesView(wire.data(), 10)).has_value());
  // Header complete, 40 body bytes missing:
  const std::size_t head = wire.size() - 100;
  auto missing =
      HttpResponse::bytes_missing(util::BytesView(wire.data(), head + 60));
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(*missing, 40u);
  // Complete:
  missing = HttpResponse::bytes_missing(wire);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(*missing, 0u);
}

TEST(HttpResponse, ParseRequiresFullBody) {
  HttpResponse resp;
  resp.body = Bytes(50, 'b');
  Bytes wire = resp.serialize();
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(HttpResponse::parse(wire).has_value());
}

// -------------------------------------------------------------- server --

TEST(HttpServer, ServesAndRejects) {
  HttpServer server;
  server.add_object("/a", util::to_bytes("AAA"), "text/plain");
  HttpRequest get_a;
  get_a.path = "/a";
  auto resp = server.handle(get_a);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(util::to_string(resp.body), "AAA");
  EXPECT_EQ(resp.header("Content-Type"), "text/plain");

  HttpRequest get_missing;
  get_missing.path = "/nope";
  EXPECT_EQ(server.handle(get_missing).status, 404);

  HttpRequest post;
  post.method = "POST";
  post.path = "/a";
  EXPECT_EQ(server.handle(post).status, 405);
}

// ------------------------------------------------------------- session --

HttpServer make_site(Rng& rng, std::size_t pages, std::size_t page_kb = 40) {
  HttpServer server;
  for (std::size_t i = 0; i < pages; ++i) {
    workload::WebPageParams params;
    params.items = 10 + 3 * static_cast<int>(i);
    util::Bytes page = workload::make_web_page(rng, params);
    // Grow to the requested size with fresh prose (not byte runs, which a
    // value-sampling codec legitimately cannot anchor).
    while (page.size() < page_kb * 1024) {
      util::append(page, util::to_bytes(workload::make_sentence(rng)));
    }
    page.resize(page_kb * 1024);
    server.add_object("/page" + std::to_string(i), std::move(page));
  }
  return server;
}

TEST(HttpSession, FetchesOneObject) {
  sim::Simulator sim;
  Rng rng(1);
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  HttpServer server = make_site(rng, 1);
  HttpRequest probe;
  probe.path = "/page0";
  const Bytes expected = server.handle(probe).body;
  HttpSession session(sim, cfg, std::move(server));
  FetchResult r = session.fetch("/page0");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.response.body, expected);
  EXPECT_GT(r.duration_s, 0.0);
}

TEST(HttpSession, NotFoundStillDelivered) {
  sim::Simulator sim;
  Rng rng(2);
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kTcpSeq;
  HttpSession session(sim, cfg, make_site(rng, 1));
  FetchResult r = session.fetch("/missing");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);
}

TEST(HttpSession, SequentialFetchesShareTheCache) {
  // Fetching the same object twice: the second response is almost
  // entirely eliminated by the byte cache.
  sim::Simulator sim;
  Rng rng(3);
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kTcpSeq;
  HttpSession session(sim, cfg, make_site(rng, 1, 60));

  const std::uint64_t wire0 = 0;
  FetchResult first = session.fetch("/page0");
  ASSERT_TRUE(first.ok);
  const std::uint64_t wire1 = session.forward_link().stats().bytes_sent;
  FetchResult second = session.fetch("/page0");
  ASSERT_TRUE(second.ok);
  const std::uint64_t wire2 = session.forward_link().stats().bytes_sent;
  EXPECT_EQ(second.response.body, first.response.body);
  const std::uint64_t cost1 = wire1 - wire0;
  const std::uint64_t cost2 = wire2 - wire1;
  EXPECT_LT(cost2, cost1 / 3);  // the repeat is mostly references
}

TEST(HttpSession, SurvivesLossyLink) {
  sim::Simulator sim;
  Rng rng(4);
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.03;
  cfg.seed = 9;
  HttpServer server = make_site(rng, 2);
  HttpRequest probe;
  probe.path = "/page1";
  const Bytes expected = server.handle(probe).body;
  HttpSession session(sim, cfg, std::move(server));
  FetchResult r = session.fetch("/page1");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.response.body, expected);
}

TEST(HttpSession, NaiveStallsUnderLossHttpToo) {
  sim::Simulator sim;
  Rng rng(5);
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.loss_rate = 0.02;
  cfg.seed = 3;
  // A large, redundant object: the first loss wedges the response.
  HttpServer server;
  server.add_object("/big", workload::make_file1(rng, 400'000));
  HttpSession session(sim, cfg, std::move(server));
  FetchResult r = session.fetch("/big", sim::sec(150));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.stalled);
}

TEST(HttpSession, ManyObjectsSequentially) {
  sim::Simulator sim;
  Rng rng(6);
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.01;
  HttpSession session(sim, cfg, make_site(rng, 5, 25));
  for (int i = 0; i < 5; ++i) {
    FetchResult r = session.fetch("/page" + std::to_string(i));
    ASSERT_TRUE(r.ok) << i;
    EXPECT_EQ(r.status, 200) << i;
  }
  EXPECT_EQ(session.fetches(), 5u);
}

}  // namespace
}  // namespace bytecache::app
