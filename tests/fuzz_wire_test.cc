// Deterministic fuzz battery for everything that parses wire bytes
// (ISSUE 4 satellite): the shim parser (v1 and v2), the decoder fed
// mutated encodings against a warmed cache, the control-message parser,
// and the encoder gateway's control ingestion.  A seeded mutator applies
// truncation, extension, bit flips, and splices of two valid messages;
// each target must never crash, over-read, or (for the decoder) deliver
// a packet that fails the deep audit.  Runs >= 10k mutated inputs per
// target; ASan/UBSan cover the whole suite via the `sanitize` ctest
// label.  The seed is logged and overridable with BYTECACHE_TEST_SEED.
#include <gtest/gtest.h>

#include "core/control.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "core/flow.h"
#include "core/wire.h"
#include "fec/decoder.h"
#include "fec/wire.h"
#include "gateway/gateways.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache {
namespace {

constexpr int kIterations = 12000;

/// Applies one random mutation drawn from {truncate, extend, bit-flip,
/// byte-rewrite, splice-with-donor} to `wire`.
util::Bytes mutate(util::Rng& rng, util::BytesView wire,
                   util::BytesView donor) {
  util::Bytes out(wire.begin(), wire.end());
  switch (rng.uniform(0, 4)) {
    case 0:  // truncate
      out.resize(out.empty() ? 0 : rng.uniform(0, out.size() - 1));
      break;
    case 1: {  // extend with random bytes
      const std::size_t extra = rng.uniform(1, 32);
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
      break;
    }
    case 2: {  // flip 1..8 random bits
      if (out.empty()) break;
      const int flips = static_cast<int>(rng.uniform(1, 8));
      for (int i = 0; i < flips; ++i) {
        const std::size_t pos = rng.uniform(0, out.size() - 1);
        out[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
      }
      break;
    }
    case 3: {  // rewrite a random byte (targets header fields often)
      if (out.empty()) break;
      const std::size_t pos = rng.uniform(0, out.size() - 1);
      out[pos] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case 4: {  // splice: head of one valid message, tail of another
      if (out.empty() || donor.empty()) break;
      const std::size_t cut = rng.uniform(0, out.size() - 1);
      const std::size_t dcut = rng.uniform(0, donor.size() - 1);
      out.resize(cut);
      out.insert(out.end(), donor.begin() + dcut, donor.end());
      break;
    }
  }
  return out;
}

/// A valid encoded wire image plus the passthrough payloads that warm a
/// decoder cache enough to decode it.
struct EncodedCorpus {
  std::vector<util::Bytes> warmup;  // passthrough payloads, in order
  std::vector<util::Bytes> wires;   // valid encoded payloads
};

EncodedCorpus build_corpus(std::uint64_t seed, bool epoch_resync) {
  core::DreParams params;
  params.epoch_resync = epoch_resync;
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  util::Rng rng(seed);
  EncodedCorpus corpus;
  util::Bytes base = testutil::random_bytes(rng, 1200);
  for (int round = 0; round < 4; ++round) {
    // First occurrence passes through (and is cached); a partial rewrite
    // of it then encodes against the cache.
    auto a = testutil::make_tcp_packet(
        base, 1000 + static_cast<std::uint32_t>(round) * 4000);
    (void)enc.process(*a);
    corpus.warmup.push_back(a->payload);
    util::Bytes variant = base;
    for (int i = 0; i < 30; ++i) {
      variant[rng.uniform(0, variant.size() - 1)] =
          static_cast<std::uint8_t>(rng.next_u64());
    }
    auto b = testutil::make_tcp_packet(
        variant, 3000 + static_cast<std::uint32_t>(round) * 4000);
    if (enc.process(*b).encoded) corpus.wires.push_back(b->payload);
    base = variant;
  }
  return corpus;
}

TEST(FuzzWire, ShimParserNeverCrashesOnMutatedInput) {
  util::Rng rng(testutil::test_seed(0xF0221));
  const EncodedCorpus v1 = build_corpus(11, /*epoch_resync=*/false);
  const EncodedCorpus v2 = build_corpus(12, /*epoch_resync=*/true);
  ASSERT_FALSE(v1.wires.empty());
  ASSERT_FALSE(v2.wires.empty());
  std::size_t accepted = 0;
  for (int i = 0; i < kIterations; ++i) {
    const auto& pool = (i % 2 == 0) ? v1.wires : v2.wires;
    const auto& donor_pool = (i % 2 == 0) ? v2.wires : v1.wires;
    const util::Bytes in =
        mutate(rng, pool[rng.uniform(0, pool.size() - 1)],
               donor_pool[rng.uniform(0, donor_pool.size() - 1)]);
    auto parsed = core::EncodedPayload::parse(in);
    if (!parsed) continue;
    ++accepted;
    // Whatever is accepted must satisfy the structural invariants the
    // decoder relies on: regions ordered, disjoint, inside orig_len, and
    // the literal count exact.
    std::size_t covered = 0, pos = 0;
    for (const auto& r : parsed->regions) {
      EXPECT_GE(static_cast<std::size_t>(r.offset_new), pos);
      pos = static_cast<std::size_t>(r.offset_new) + r.length;
      covered += r.length;
      EXPECT_LE(pos, parsed->orig_len);
    }
    EXPECT_EQ(covered + parsed->literals.size(), parsed->orig_len);
    // Re-serializing an accepted parse must be stable (no lossy fields).
    auto reparsed = core::EncodedPayload::parse(parsed->serialize());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->crc, parsed->crc);
    EXPECT_EQ(reparsed->epoch, parsed->epoch);
    EXPECT_EQ(reparsed->regions.size(), parsed->regions.size());
  }
  // The bit-flip/rewrite arms leave most images structurally valid often
  // enough that acceptance is exercised, not just rejection.
  EXPECT_GT(accepted, 100u);
}

TEST(FuzzWire, DecoderSurvivesMutatedEncodingsAndStaysAuditClean) {
  const std::uint64_t seed = testutil::test_seed(0xF0222);
  util::Rng rng(seed);
  for (const bool epoch_resync : {false, true}) {
    const EncodedCorpus corpus = build_corpus(21, epoch_resync);
    ASSERT_FALSE(corpus.wires.empty());
    core::DreParams params;
    params.epoch_resync = epoch_resync;
    core::Decoder dec(params);
    for (const util::Bytes& w : corpus.warmup) {
      auto p = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                                   packet::IpProto::kTcp, util::Bytes(w));
      (void)dec.process(*p);
    }
    std::uint64_t decoded = 0;
    for (int i = 0; i < kIterations; ++i) {
      const util::Bytes in = mutate(
          rng, corpus.wires[rng.uniform(0, corpus.wires.size() - 1)],
          corpus.wires[rng.uniform(0, corpus.wires.size() - 1)]);
      auto p = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                                   packet::IpProto::kDre, util::Bytes(in));
      const core::DecodeInfo info = dec.process(*p);
      if (!core::is_drop(info.status)) ++decoded;
      if (i % 1024 == 0) dec.audit();
    }
    dec.audit();
    // The CRC must catch essentially everything harmful; some mutants
    // (e.g. flips confined to literals the CRC covers) decode to their
    // mutated-but-consistent original, which is fine — what matters is
    // that nothing crashed and the audit held throughout.
    EXPECT_EQ(dec.stats().packets,
              corpus.warmup.size() + static_cast<std::uint64_t>(kIterations));
    (void)decoded;
  }
}

TEST(FuzzWire, ControlParserNeverCrashesOnMutatedInput) {
  util::Rng rng(testutil::test_seed(0xF0223));
  std::vector<util::Bytes> corpus;
  {
    core::ControlMessage nack;
    nack.fingerprints = {0x1122334455667788ull, 0xAABBCCDDEEFF0011ull};
    corpus.push_back(nack.serialize());
    core::ControlMessage resync;
    resync.type = core::ControlMessage::Type::kResyncRequest;
    resync.epoch = 7;
    corpus.push_back(resync.serialize());
    core::ControlMessage report;
    report.type = core::ControlMessage::Type::kLossReport;
    report.host_key = 0x123456789ABCDEF0ull;
    report.count = 3;
    corpus.push_back(report.serialize());
  }
  std::size_t accepted = 0;
  for (int i = 0; i < kIterations; ++i) {
    const util::Bytes in =
        mutate(rng, corpus[rng.uniform(0, corpus.size() - 1)],
               corpus[rng.uniform(0, corpus.size() - 1)]);
    auto msg = core::ControlMessage::parse(in);
    if (!msg) continue;
    ++accepted;
    // Round-trip stability of accepted messages.
    auto again = core::ControlMessage::parse(msg->serialize());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->type, msg->type);
  }
  EXPECT_GT(accepted, 100u);
}

TEST(FuzzWire, EncoderGatewaySurvivesMutatedControlTraffic) {
  util::Rng rng(testutil::test_seed(0xF0224));
  core::DreParams params;
  params.epoch_resync = true;
  core::GatewayConfig gw_cfg;
  gw_cfg.params = params;
  gw_cfg.policy = core::PolicyKind::kResilient;
  gateway::EncoderGateway gw(gw_cfg);
  std::vector<util::Bytes> corpus;
  {
    core::ControlMessage nack;
    nack.fingerprints = {0x1122334455667788ull};
    corpus.push_back(nack.serialize());
    core::ControlMessage resync;
    resync.type = core::ControlMessage::Type::kResyncRequest;
    corpus.push_back(resync.serialize());
    core::ControlMessage report;
    report.type = core::ControlMessage::Type::kLossReport;
    report.host_key = core::host_key_of(testutil::kSrcIp, testutil::kDstIp);
    report.count = 1;
    corpus.push_back(report.serialize());
  }
  for (int i = 0; i < kIterations; ++i) {
    const util::Bytes in =
        mutate(rng, corpus[rng.uniform(0, corpus.size() - 1)],
               corpus[rng.uniform(0, corpus.size() - 1)]);
    auto p = packet::make_packet(
        testutil::kDstIp, testutil::kSrcIp,
        static_cast<packet::IpProto>(core::kControlProto), util::Bytes(in));
    gw.receive_control(*p);
    if (i % 2048 == 0 && gw.encoder() != nullptr) gw.encoder()->audit();
  }
  ASSERT_NE(gw.encoder(), nullptr);
  gw.encoder()->audit();
  // Mutated resync requests at epoch != current must not have caused a
  // flush storm: honored resyncs are bounded by requests that named the
  // then-current epoch, each of which bumps the epoch away from itself.
  EXPECT_LE(gw.encoder()->stats().resyncs_honored, 0xFFFFull);
}

// ---- Coded-repair wire surface (ISSUE 9, DESIGN.md §13) ---------------

/// Valid v3 data payloads and repair payloads from an encoder running
/// with the coded-repair layer on.
struct CodedCorpus {
  std::vector<util::Bytes> wires;    // v3-shimmed data payloads
  std::vector<util::Bytes> repairs;  // 0xD7 repair payloads
};

CodedCorpus build_coded_corpus(std::uint64_t seed) {
  core::DreParams params;
  params.epoch_resync = true;
  params.coded_repair = true;
  params.repair.generation_packets = 4;  // close often: plenty of repairs
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  util::Rng rng(seed);
  CodedCorpus corpus;
  util::Bytes base = testutil::random_bytes(rng, 1200);
  for (int round = 0; round < 12; ++round) {
    auto p = testutil::make_tcp_packet(
        base, 1000 + static_cast<std::uint32_t>(round) * 4000);
    const core::EncodeInfo info = enc.process(*p);
    corpus.wires.push_back(p->payload);
    for (const util::Bytes& r : info.repairs) corpus.repairs.push_back(r);
    for (int i = 0; i < 30; ++i) {
      base[rng.uniform(0, base.size() - 1)] =
          static_cast<std::uint8_t>(rng.next_u64());
    }
  }
  return corpus;
}

TEST(FuzzWire, RepairParserNeverCrashesOnMutatedInput) {
  util::Rng rng(testutil::test_seed(0xF0225));
  const CodedCorpus corpus = build_coded_corpus(31);
  ASSERT_GE(corpus.repairs.size(), 4u);
  std::size_t accepted = 0;
  fec::RepairPacket parsed;
  util::Bytes wire;
  for (int i = 0; i < kIterations; ++i) {
    // The coefficient+symbol CRC rejects almost every mutant (unlike the
    // shim parser, whose CRC is checked downstream), so every 8th input
    // goes in unmutated to keep the acceptance path genuinely exercised.
    const util::Bytes& pick =
        corpus.repairs[rng.uniform(0, corpus.repairs.size() - 1)];
    const util::Bytes in =
        (i % 8 == 0) ? pick
                     : mutate(rng, pick,
                              corpus.repairs[rng.uniform(
                                  0, corpus.repairs.size() - 1)]);
    if (!fec::RepairPacket::parse_repair_into(in, parsed)) continue;
    ++accepted;
    // Accepted parses satisfy the bounds the decoder indexes by, and
    // re-serialize byte-stably (the CRC pins coefficients + symbol).
    ASSERT_LE(parsed.gen_size, fec::kMaxGenerationPackets);
    ASSERT_LE(parsed.repair_index, fec::kMaxRepairPackets - 1);
    ASSERT_EQ(parsed.coeffs.size(), parsed.gen_size);
    ASSERT_EQ(parsed.symbol.size(), parsed.symbol_len);
    parsed.serialize_into(wire);
    fec::RepairPacket again;
    ASSERT_TRUE(fec::RepairPacket::parse_repair_into(wire, again));
    EXPECT_EQ(again.gen_id, parsed.gen_id);
    EXPECT_EQ(again.repair_index, parsed.repair_index);
    EXPECT_EQ(again.crc, parsed.crc);
    EXPECT_EQ(again.coeffs, parsed.coeffs);
    EXPECT_EQ(again.symbol, parsed.symbol);
  }
  // The CRC rejects most mutants; un-mutated splices and benign flips
  // keep the acceptance path exercised too.
  EXPECT_GT(accepted, 100u);
}

TEST(FuzzWire, GenerationHeaderAndRepairDecoderSurviveMutation) {
  const std::uint64_t seed = testutil::test_seed(0xF0226);
  util::Rng rng(seed);
  const CodedCorpus corpus = build_coded_corpus(32);
  ASSERT_FALSE(corpus.wires.empty());
  ASSERT_FALSE(corpus.repairs.empty());
  fec::RepairConfig cfg;
  cfg.generation_packets = 4;
  fec::RepairDecoder dec(cfg);
  std::vector<fec::RepairDecoder::Released> released;
  std::uint64_t v3_parses = 0;
  for (int i = 0; i < kIterations; ++i) {
    // Mix data and repair mutants, splicing across the two pools so
    // repair headers land on data shims and vice versa — exactly what a
    // corrupted classifier byte produces.
    const bool data = (i % 3) != 0;
    const auto& pool = data ? corpus.wires : corpus.repairs;
    const auto& donor = data ? corpus.repairs : corpus.wires;
    const util::Bytes in =
        mutate(rng, pool[rng.uniform(0, pool.size() - 1)],
               donor[rng.uniform(0, donor.size() - 1)]);
    // The decoder gateway's classification order, verbatim.
    if (fec::is_repair_payload(in)) {
      dec.on_repair(in, released);
    } else {
      std::uint16_t gen_id = 0;
      std::uint8_t gen_seq = 0;
      if (core::peek_gen_tag(in, gen_id, gen_seq)) {
        auto p = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                                     packet::IpProto::kDre, util::Bytes(in));
        dec.on_data(gen_id, gen_seq, std::move(p), released);
      }
    }
    // Whatever a mutated v3 shim parses into must stay inside the tag
    // bounds the full parser enforces.
    core::EncodedPayload payload;
    if (core::EncodedPayload::parse_into(in, payload) &&
        payload.version >= core::kWireVersion3) {
      ++v3_parses;
    }
    released.clear();
    if (i % 1024 == 0) dec.audit();
    if (i % 4096 == 0) dec.drain(released), released.clear();
  }
  dec.drain(released);
  dec.audit();
  // Parse acceptance (CRC-gated) and the decoder's malformed/tag-reject
  // counters must all have been exercised.
  EXPECT_GT(v3_parses, 100u);
  EXPECT_GT(dec.stats().data_packets + dec.stats().repair_packets, 100u);
  EXPECT_GT(dec.stats().repairs_malformed, 0u);
}

}  // namespace
}  // namespace bytecache
