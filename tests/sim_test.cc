#include <gtest/gtest.h>

#include <vector>

#include "packet/packet.h"
#include "sim/link.h"
#include "sim/loss_model.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/check.h"
#include "util/rng.h"

namespace bytecache::sim {
namespace {

using packet::IpProto;
using packet::make_packet;
using packet::PacketPtr;
using util::Bytes;

// ---------------------------------------------------------- simulator --

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(ms(30), [&] { order.push_back(3); });
  sim.at(ms(10), [&] { order.push_back(1); });
  sim.at(ms(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ms(30));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  SimTime fired = -1;
  sim.at(ms(10), [&] {
    sim.after(ms(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, ms(15));
}

TEST(Simulator, PastSchedulingClamps) {
  Simulator sim;
  SimTime fired = -1;
  sim.at(ms(10), [&] {
    sim.at(ms(1), [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, ms(10));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.at(ms(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending(), 7u);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(ms(5), [&] { ++fired; });
  sim.at(ms(50), [&] { ++fired; });
  sim.run_until(ms(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ms(20));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

// --------------------------------------------------------------- time --

TEST(Time, Conversions) {
  EXPECT_EQ(ms(1), 1'000'000);
  EXPECT_EQ(sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_ms(ms(7)), 7.0);
  // 1500 bytes at 1 MB/s = 1.5 ms.
  EXPECT_EQ(tx_time(1500, 1e6), ms(1) + us(500));
}

// --------------------------------------------------------- loss model --

TEST(LossModel, BernoulliRate) {
  BernoulliLoss loss(0.25);
  util::Rng rng(1);
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (loss.drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.01);
}

TEST(LossModel, NoLossNeverDrops) {
  NoLoss loss;
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.drop(rng));
}

TEST(LossModel, GilbertElliottAverageMatchesTarget) {
  for (double target : {0.01, 0.05, 0.10}) {
    auto ge = GilbertElliottLoss::with_average_loss(target);
    EXPECT_NEAR(ge->average_loss(), target, 1e-9);
    util::Rng rng(3);
    int drops = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
      if (ge->drop(rng)) ++drops;
    }
    EXPECT_NEAR(static_cast<double>(drops) / n, target, 0.01);
  }
}

TEST(LossModel, GilbertElliottAverageExactAcrossFullRange) {
  // The constructor used to clamp the stationary Bad fraction and
  // silently deliver less loss than asked above ~47.5%; every target in
  // the supported range must now be met exactly.
  for (double target : {0.0, 0.05, 0.20, 0.40, 0.475, 0.60, 0.90, 0.95}) {
    auto ge = GilbertElliottLoss::with_average_loss(target);
    EXPECT_NEAR(ge->average_loss(), target, 1e-9) << "target " << target;
  }
}

TEST(LossModel, GilbertElliottHighTargetConvergesEmpirically) {
  auto ge = GilbertElliottLoss::with_average_loss(0.40);
  util::Rng rng(5);
  int drops = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    if (ge->drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.40, 0.01);
}

TEST(LossModel, GilbertElliottRejectsOutOfRangeTarget) {
  for (double bad : {-0.01, 0.96, 1.5}) {
    int failures = 0;
    auto prev = util::set_check_failure_handler(
        [&](const util::CheckFailure&) { ++failures; });
    auto ge = GilbertElliottLoss::with_average_loss(bad);
    util::set_check_failure_handler(std::move(prev));
    EXPECT_EQ(failures, 1) << "target " << bad;
    EXPECT_NE(ge, nullptr);
  }
}

TEST(LossModel, GilbertElliottIsBurstier) {
  // Compare the number of loss "runs" at the same average loss: bursty
  // losses form fewer, longer runs.
  const double p = 0.1;
  util::Rng rng1(4), rng2(4);
  BernoulliLoss bern(p);
  auto ge = GilbertElliottLoss::with_average_loss(p);
  auto count_runs = [](auto& model, util::Rng& rng) {
    int runs = 0;
    bool in_run = false;
    for (int i = 0; i < 200000; ++i) {
      const bool d = model.drop(rng);
      if (d && !in_run) ++runs;
      in_run = d;
    }
    return runs;
  };
  const int bern_runs = count_runs(bern, rng1);
  const int ge_runs = count_runs(*ge, rng2);
  EXPECT_LT(ge_runs, bern_runs * 3 / 4);
}

// --------------------------------------------------------------- link --

PacketPtr test_packet(std::size_t payload = 1480) {
  return make_packet(1, 2, IpProto::kTcp, Bytes(payload, 'x'));
}

TEST(Link, DeliversWithSerializationAndPropagation) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate_bytes_per_sec = 1e6;
  cfg.propagation_delay = ms(25);
  Link link(sim, cfg, std::make_unique<NoLoss>(), util::Rng(1));
  SimTime delivered_at = -1;
  link.set_sink([&](PacketPtr) { delivered_at = sim.now(); });
  link.send(test_packet(1480));  // 1500 wire bytes -> 1.5 ms
  sim.run();
  EXPECT_EQ(delivered_at, ms(25) + us(1500));
  EXPECT_EQ(link.stats().packets_delivered, 1u);
  EXPECT_EQ(link.stats().bytes_sent, 1500u);
}

TEST(Link, BackToBackPacketsQueueBehindSerializer) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate_bytes_per_sec = 1e6;
  cfg.propagation_delay = 0;
  Link link(sim, cfg, std::make_unique<NoLoss>(), util::Rng(1));
  std::vector<SimTime> times;
  link.set_sink([&](PacketPtr) { times.push_back(sim.now()); });
  link.send(test_packet(980));  // 1000 wire bytes = 1 ms each
  link.send(test_packet(980));
  link.send(test_packet(980));
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], ms(1));
  EXPECT_EQ(times[1], ms(2));
  EXPECT_EQ(times[2], ms(3));
}

TEST(Link, TailDropWhenQueueFull) {
  Simulator sim;
  LinkConfig cfg;
  cfg.queue_packets = 2;
  Link link(sim, cfg, std::make_unique<NoLoss>(), util::Rng(1));
  int delivered = 0;
  link.set_sink([&](PacketPtr) { ++delivered; });
  for (int i = 0; i < 5; ++i) link.send(test_packet());
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().drops_queue, 3u);
}

TEST(Link, LossRateApplied) {
  Simulator sim;
  LinkConfig cfg;
  cfg.queue_packets = 1 << 20;
  Link link(sim, cfg, std::make_unique<BernoulliLoss>(0.3), util::Rng(7));
  int delivered = 0;
  link.set_sink([&](PacketPtr) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(test_packet(100));
  sim.run();
  EXPECT_NEAR(static_cast<double>(n - delivered) / n, 0.3, 0.02);
  EXPECT_EQ(link.stats().drops_loss, static_cast<std::uint64_t>(n - delivered));
  // Lost packets still consumed wire bytes.
  EXPECT_EQ(link.stats().bytes_sent, static_cast<std::uint64_t>(n) * 120);
}

TEST(Link, CorruptionFlipsBytes) {
  Simulator sim;
  LinkConfig cfg;
  cfg.corrupt_prob = 1.0;
  cfg.queue_packets = 1 << 20;
  Link link(sim, cfg, std::make_unique<NoLoss>(), util::Rng(8));
  int corrupted = 0;
  const Bytes original(1480, 'x');
  link.set_sink([&](PacketPtr p) {
    EXPECT_TRUE(p->corrupted);
    if (p->payload != original) ++corrupted;
  });
  for (int i = 0; i < 50; ++i) link.send(test_packet());
  sim.run();
  EXPECT_EQ(corrupted, 50);
  EXPECT_EQ(link.stats().corrupted, 50u);
}

TEST(Link, ReorderingCausesOvertaking) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate_bytes_per_sec = 1e8;  // serialization negligible
  cfg.propagation_delay = ms(1);
  cfg.reorder_prob = 0.2;
  cfg.reorder_extra_delay = ms(5);
  cfg.queue_packets = 1 << 20;
  Link link(sim, cfg, std::make_unique<NoLoss>(), util::Rng(9));
  std::vector<std::uint64_t> uids_sent, uids_received;
  link.set_sink([&](PacketPtr p) { uids_received.push_back(p->uid); });
  for (int i = 0; i < 200; ++i) {
    auto p = test_packet(100);
    uids_sent.push_back(p->uid);
    link.send(std::move(p));
    sim.run_until(sim.now() + us(100));
  }
  sim.run();
  ASSERT_EQ(uids_received.size(), 200u);
  EXPECT_NE(uids_received, uids_sent);  // some packet was overtaken
  EXPECT_GT(link.stats().reordered, 0u);
}

TEST(Link, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    LinkConfig cfg;
    cfg.queue_packets = 1 << 20;
    Link link(sim, cfg, std::make_unique<BernoulliLoss>(0.2),
              util::Rng(seed));
    std::vector<SimTime> times;
    link.set_sink([&](PacketPtr) { times.push_back(sim.now()); });
    for (int i = 0; i < 500; ++i) link.send(test_packet(200));
    sim.run();
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace bytecache::sim
