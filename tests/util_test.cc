#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <thread>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/hexdump.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/seqcmp.h"
#include "util/spsc_ring.h"
#include "util/worker.h"

namespace bytecache::util {
namespace {

// ------------------------------------------------------------- bytes.h --

TEST(Bytes, RoundTripScalars) {
  Bytes b;
  put_u8(b, 0xAB);
  put_u16(b, 0xCDEF);
  put_u32(b, 0x01234567);
  put_u64(b, 0x89ABCDEF01234567ull);
  ASSERT_EQ(b.size(), 15u);
  std::size_t off = 0;
  EXPECT_EQ(get_u8(b, off), 0xAB);
  EXPECT_EQ(get_u16(b, off), 0xCDEF);
  EXPECT_EQ(get_u32(b, off), 0x01234567u);
  EXPECT_EQ(get_u64(b, off), 0x89ABCDEF01234567ull);
  EXPECT_EQ(off, b.size());
}

TEST(Bytes, BigEndianLayout) {
  Bytes b;
  put_u16(b, 0x1234);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  put_u32(b, 0xA1B2C3D4);
  EXPECT_EQ(b[2], 0xA1);
  EXPECT_EQ(b[5], 0xD4);
}

TEST(Bytes, StringConversions) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, AppendConcatenates) {
  Bytes a = to_bytes("foo");
  append(a, to_bytes("bar"));
  EXPECT_EQ(to_string(a), "foobar");
}

// ------------------------------------------------------------- crc32.h --

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (classic check value).
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, SensitiveToEveryByte) {
  Rng rng(7);
  Bytes data;
  for (int i = 0; i < 256; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  const std::uint32_t base = crc32(data);
  for (std::size_t i = 0; i < data.size(); i += 13) {
    Bytes mutated = data;
    mutated[i] ^= 0x40;
    EXPECT_NE(crc32(mutated), base) << "flip at " << i;
  }
}

TEST(Crc32, SeedContinuation) {
  const Bytes whole = to_bytes("hello world");
  const Bytes a = to_bytes("hello ");
  const Bytes b = to_bytes("world");
  EXPECT_EQ(crc32(b, crc32(a)), crc32(whole));
}

// --------------------------------------------------------------- rng.h --

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform(10, 15);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 15u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(7, 7), 7u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(9);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(100, 1.0)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Rng, ZipfDegenerate) {
  Rng rng(10);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
  EXPECT_EQ(rng.zipf(0, 1.0), 0u);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(11), b(11);
  Rng fa = a.fork(1), fb = b.fork(1), fc = a.fork(2);
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  Rng fa2 = a.fork(1);
  EXPECT_NE(fa2.next_u64(), fc.next_u64());
}

// ------------------------------------------------------------ seqcmp.h --

TEST(SeqCmp, Basic) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_FALSE(seq_lt(2, 1));
  EXPECT_FALSE(seq_lt(2, 2));
  EXPECT_TRUE(seq_le(2, 2));
  EXPECT_TRUE(seq_gt(5, 3));
  EXPECT_TRUE(seq_ge(5, 5));
}

TEST(SeqCmp, Wraparound) {
  const std::uint32_t near_max = 0xFFFFFF00u;
  const std::uint32_t wrapped = 0x00000100u;
  EXPECT_TRUE(seq_lt(near_max, wrapped));   // wrapped is "after"
  EXPECT_FALSE(seq_lt(wrapped, near_max));
  EXPECT_EQ(seq_diff(wrapped, near_max), 0x200u);
}

TEST(SeqCmp, ExactWrapBoundary) {
  // The last and first sequence numbers are adjacent across the 2^32 wrap.
  EXPECT_TRUE(seq_lt(0xFFFFFFFFu, 0x00000000u));
  EXPECT_TRUE(seq_le(0xFFFFFFFFu, 0x00000000u));
  EXPECT_TRUE(seq_gt(0x00000000u, 0xFFFFFFFFu));
  EXPECT_TRUE(seq_ge(0x00000000u, 0xFFFFFFFFu));
  EXPECT_EQ(seq_diff(0x00000000u, 0xFFFFFFFFu), 1u);
}

TEST(SeqCmp, HalfRangeAntipode) {
  // At exactly 2^31 apart the signed distance is INT32_MIN from either
  // direction, so each endpoint compares "before" the other.  Real TCP
  // windows are far below 2^31 bytes, which is why the idiom is safe; the
  // test pins the behaviour so a refactor cannot silently change it.
  EXPECT_TRUE(seq_lt(0u, 0x80000000u));
  EXPECT_TRUE(seq_lt(0x80000000u, 0u));
  // One short of the antipode orders normally from both sides.
  EXPECT_TRUE(seq_lt(0u, 0x7FFFFFFFu));
  EXPECT_FALSE(seq_lt(0x7FFFFFFFu, 0u));
  EXPECT_TRUE(seq_gt(0x80000001u, 0u) == seq_lt(0u, 0x80000001u));
}

TEST(SeqCmp, DiffStraddlingWrapMatchesStreamDistance) {
  // A flight of 0x20 bytes straddling the wrap: end - start must equal
  // the 64-bit stream distance regardless of where the wrap falls.
  for (std::uint32_t start = 0xFFFFFFE0u; start != 0x10u; start += 8) {
    const std::uint32_t end = start + 0x20u;  // wraps for early starts
    EXPECT_EQ(seq_diff(end, start), 0x20u) << "start=" << start;
    EXPECT_TRUE(seq_lt(start, end)) << "start=" << start;
  }
  // Zero distance is reflexive everywhere, including at the wrap.
  EXPECT_EQ(seq_diff(0xFFFFFFFFu, 0xFFFFFFFFu), 0u);
  EXPECT_EQ(seq_diff(0u, 0u), 0u);
}

TEST(SeqCmp, ConstexprUsableInStaticAssertions) {
  static_assert(seq_lt(0xFFFFFFFFu, 0u), "wrap-adjacent ordering");
  static_assert(seq_diff(5u, 0xFFFFFFFBu) == 10u, "wrap-straddling diff");
  static_assert(seq_ge(0u, 0xFFFFFF00u), "wrapped sequence is after");
  SUCCEED();
}

// ----------------------------------------------------------- hexdump.h --

TEST(Hexdump, FormatsRows) {
  const Bytes data = to_bytes("0123456789abcdefXYZ");
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("|0123456789abcdef|"), std::string::npos);
  EXPECT_NE(dump.find("XYZ"), std::string::npos);
}

TEST(Hexdump, TruncatesAtMax) {
  Bytes data(1000, 0x41);
  const std::string dump = hexdump(data, 32);
  EXPECT_NE(dump.find("more bytes"), std::string::npos);
}

TEST(Hexdump, ToHex) {
  EXPECT_EQ(to_hex(Bytes{0xDE, 0xAD, 0xBE, 0xEF}), "deadbeef");
  EXPECT_EQ(to_hex({}), "");
}

// ----------------------------------------------------------- logging.h --

TEST(Logging, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  BC_DEBUG() << "this must not be evaluated at error level";
  set_log_level(before);
}

// --------------------------------------------------------- spsc_ring.h --

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, FifoWithWraparoundAndFullEmptyEdges) {
  SpscRing<int> ring(4);
  // Single-threaded test: this thread plays both ring roles
  // (util/thread_annotations.h — the claims are purely static).
  ScopedRole producer(ring.producer_role);
  ScopedRole consumer(ring.consumer_role);
  int v = 0;
  EXPECT_FALSE(ring.try_pop(v));  // empty
  // Push/pop far past the capacity so the indices wrap the slot array.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    while (true) {
      v = next_in;
      if (!ring.try_push(v)) break;
      ++next_in;
    }
    EXPECT_EQ(ring.size(), ring.capacity());  // full
    v = next_in;
    EXPECT_FALSE(ring.try_push(v));
    EXPECT_EQ(v, next_in);  // a failed push leaves the value untouched
    while (ring.try_pop(v)) {
      EXPECT_EQ(v, next_out);
      ++next_out;
    }
    EXPECT_TRUE(ring.empty());
    ring.audit();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(SpscRing, MovesOwnershipThrough) {
  SpscRing<std::unique_ptr<int>> ring(8);
  ScopedRole producer(ring.producer_role);
  ScopedRole consumer(ring.consumer_role);
  auto p = std::make_unique<int>(41);
  ASSERT_TRUE(ring.try_push(p));
  EXPECT_EQ(p, nullptr);  // moved in
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 41);
}

TEST(SpscRing, CrossThreadTransferPreservesOrder) {
  // One producer thread, one consumer thread (this one), a deliberately
  // tiny ring: every value must arrive exactly once, in order.
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::thread producer([&ring] {
    ScopedRole producer_role(ring.producer_role);
    Backoff backoff;
    for (std::uint64_t i = 0; i < kCount; ++i) {
      std::uint64_t v = i;
      while (!ring.try_push(v)) backoff.pause();
      backoff.reset();
    }
  });
  ScopedRole consumer_role(ring.consumer_role);
  Backoff backoff;
  for (std::uint64_t expect = 0; expect < kCount; ++expect) {
    std::uint64_t v = 0;
    while (!ring.try_pop(v)) backoff.pause();
    backoff.reset();
    ASSERT_EQ(v, expect);
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  ring.audit();
}

}  // namespace
}  // namespace bytecache::util
