// Unit and integration tests for the two-tier cache (DESIGN.md §14):
// CacheTier demotion/promotion mechanics, the per-host-pair admission
// control of the L2 stripe, the eviction-policy seam, the BCT1 tiered
// snapshot, and — at gateway level — the elephant/mouse isolation the
// per-pair budgets exist to provide, with the tier counters surfaced
// through the obs snapshot.
//
// The stale-fingerprint assertions extend the PR-2 eager-purge invariant
// across the tier boundary: after an L1 -> L2 demotion followed by L2
// reclamation (share or host-budget eviction), no fingerprint in either
// tier may name a packet that is no longer resident anywhere.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <vector>

#include "cache/cache_tier.h"
#include "cache/l2_store.h"
#include "cache/snapshot.h"
#include "core/flow.h"
#include "gateway/gateways.h"
#include "packet/packet.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache::cache {
namespace {

using util::Bytes;

Bytes payload_of(char c, std::size_t n = 100) { return Bytes(n, c); }

std::vector<rabin::Anchor> anchors_at(
    std::initializer_list<std::pair<std::uint16_t, rabin::Fingerprint>> list) {
  std::vector<rabin::Anchor> v;
  for (auto [off, fp] : list) v.push_back(rabin::Anchor{off, fp});
  return v;
}

PacketMeta meta_for(std::uint64_t host_key) {
  PacketMeta m;
  m.host_key = host_key;
  return m;
}

/// Counts fingerprints, in either tier, that name a packet no longer
/// resident in that tier.  Must always be zero: the L1 purge is eager
/// (PR-2) and the L2 purge runs inside evict_slot.
std::size_t stale_entries(const CacheTier& tier) {
  std::size_t stale = 0;
  tier.table().for_each([&](rabin::Fingerprint, const FpEntry& e) {
    if (tier.store().peek(e.packet_id) == nullptr) ++stale;
  });
  if (tier.has_l2()) {
    tier.stripe()->for_each_fingerprint(
        [&](std::uint64_t, const FpEntry& e) {
          if (!tier.stripe()->contains(e.packet_id)) ++stale;
        });
  }
  return stale;
}

// --------------------------------------------------- basic mechanics --

TEST(CacheTier, NoL2IsPlainByteCache) {
  CacheTier tier;  // default config: unbounded L1, no L2
  EXPECT_FALSE(tier.has_l2());
  EXPECT_EQ(tier.stripe(), nullptr);
  const Bytes p = payload_of('a');
  tier.update(p, anchors_at({{10, 0xF0}}), {});
  auto hit = tier.find(0xF0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->offset, 10u);
  EXPECT_EQ(tier.tier_stats().l2_hits, 0u);
  EXPECT_EQ(tier.tier_stats().demotions, 0u);
  tier.audit();
}

TEST(CacheTier, L1EvictionDemotesAndL2HitPromotes) {
  CacheConfig cc;
  cc.l1_bytes = 250;  // two 100-byte payloads
  cc.l2_bytes = 64 * 1024;
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);
  ASSERT_TRUE(tier.has_l2());

  const std::uint64_t id_a =
      tier.update(payload_of('a'), anchors_at({{0, 0xA0}}), {});
  const std::uint64_t id_b =
      tier.update(payload_of('b'), anchors_at({{0, 0xB0}}), {});
  // Third insert exceeds the L1 budget: 'a' (the LRU) demotes.
  const std::uint64_t id_c =
      tier.update(payload_of('c'), anchors_at({{0, 0xC0}}), {});
  EXPECT_EQ(tier.tier_stats().demotions, 1u);
  EXPECT_FALSE(tier.store().contains(id_a));
  EXPECT_TRUE(tier.stripe()->contains(id_a));
  tier.audit();

  // The L2 serves the hit immediately (payload intact) and queues the
  // packet for promotion at the next update.
  auto hit = tier.find(0xA0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->packet->id, id_a);
  EXPECT_EQ(hit->packet->payload, util::BytesView(payload_of('a')));
  EXPECT_EQ(tier.tier_stats().l2_hits, 1u);
  EXPECT_TRUE(tier.stripe()->contains(id_a));  // promotion is deferred

  // The next update applies the promotion first: 'a' re-enters the L1
  // just below 'd' in recency, and the displaced 'b'/'c' demote.
  const std::uint64_t id_d =
      tier.update(payload_of('d'), anchors_at({{0, 0xD0}}), {});
  EXPECT_EQ(tier.tier_stats().promotions, 1u);
  EXPECT_FALSE(tier.stripe()->contains(id_a));
  EXPECT_TRUE(tier.store().contains(id_a));
  EXPECT_TRUE(tier.store().contains(id_d));
  EXPECT_TRUE(tier.stripe()->contains(id_b));
  EXPECT_TRUE(tier.stripe()->contains(id_c));
  EXPECT_EQ(tier.tier_stats().demotions, 3u);
  EXPECT_EQ(stale_entries(tier), 0u);
  tier.audit();
}

TEST(CacheTier, OverwrittenFingerprintLeavesExactlyOneOwner) {
  CacheConfig cc;
  cc.l1_bytes = 250;
  cc.l2_bytes = 64 * 1024;
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);

  // 'a' demotes into the L2 holding fingerprint 0xF0 ...
  tier.update(payload_of('a'), anchors_at({{0, 0xF0}}), {});
  tier.update(payload_of('b'), anchors_at({{0, 0xB0}}), {});
  tier.update(payload_of('c'), anchors_at({{0, 0xC0}}), {});
  ASSERT_EQ(tier.stripe()->fingerprints(), 1u);
  // ... then a fresh packet claims 0xF0: the L1 table now owns it and
  // the L2 index entry must be dropped (exactly-one-tier invariant).
  tier.update(payload_of('x'), anchors_at({{5, 0xF0}}), {});
  auto hit = tier.find(0xF0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->offset, 5u);
  EXPECT_EQ(hit->packet->payload, util::BytesView(payload_of('x')));
  EXPECT_EQ(tier.tier_stats().l2_hits, 0u);  // served from the L1
  tier.audit();
}

// ------------------------------------- reclamation / stale-fp audit --

TEST(CacheTier, NoStaleFingerprintsAfterDemotionThenL2Reclamation) {
  // Both budgets tiny, so every update demotes and the stripe share
  // evicts: the scenario the eager-purge invariant must survive.
  CacheConfig cc;
  cc.l1_bytes = 250;
  cc.l2_bytes = 350;  // three 100-byte payloads
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);

  for (int i = 0; i < 24; ++i) {
    const auto fp = static_cast<rabin::Fingerprint>(0x1000 + i);
    tier.update(payload_of(static_cast<char>('a' + (i % 26))),
                anchors_at({{0, fp}, {50, fp + 0x100}}), {});
    EXPECT_EQ(stale_entries(tier), 0u) << "after update " << i;
    tier.audit();
  }
  EXPECT_GT(tier.tier_stats().demotions, 0u);
  EXPECT_GT(tier.tier_stats().l2_evictions, 0u);
  EXPECT_GT(tier.tier_stats().l2_fingerprints_purged, 0u);
  // A fingerprint whose packet was reclaimed from the L2 is a clean
  // miss everywhere — not a stale hit, not an audit trip.
  EXPECT_FALSE(tier.find(0x1000).has_value());
  EXPECT_EQ(tier.stats().stale_hits, 0u);
}

// ------------------------------------------- per-host-pair admission --

TEST(CacheTier, ElephantPairEvictsItsOwnColdestNeverTheMouses) {
  constexpr std::uint64_t kMouse = 0x1111;
  constexpr std::uint64_t kElephant = 0x2222;
  CacheConfig cc;
  cc.l1_bytes = 250;
  cc.l2_bytes = 64 * 1024;
  cc.per_host_pair_bytes = 300;  // three 100-byte payloads per pair
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);

  const std::uint64_t id_m =
      tier.update(payload_of('m'), anchors_at({{0, 0xAA00}}),
                  meta_for(kMouse));
  // Elephant floods: each insert displaces the L1's LRU into the L2.
  std::vector<std::uint64_t> elephant_ids;
  for (int i = 0; i < 8; ++i) {
    const auto fp = static_cast<rabin::Fingerprint>(0xE000 + i);
    elephant_ids.push_back(tier.update(
        payload_of(static_cast<char>('0' + i)), anchors_at({{0, fp}}),
        meta_for(kElephant)));
    tier.audit();
  }

  // The elephant pair is pinned at its own budget ...
  EXPECT_GT(tier.tier_stats().host_evictions, 0u);
  EXPECT_LE(tier.stripe()->host_bytes(kElephant),
            cc.per_host_pair_bytes);
  // ... and the evictions hit its own coldest packets, oldest first.
  EXPECT_FALSE(tier.stripe()->contains(elephant_ids[0]));
  // The mouse's bytes were never touched: still resident, still a hit.
  EXPECT_TRUE(tier.stripe()->contains(id_m));
  EXPECT_EQ(tier.stripe()->host_bytes(kMouse), 100u);
  auto hit = tier.find(0xAA00);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->packet->id, id_m);
  EXPECT_EQ(stale_entries(tier), 0u);
  tier.audit();
}

TEST(CacheTier, AdmissionRejectsPacketsLargerThanAnyBudget) {
  {
    // Larger than the per-pair budget.
    CacheConfig cc;
    cc.l1_bytes = 100;
    cc.l2_bytes = 64 * 1024;
    cc.per_host_pair_bytes = 150;
    L2Store l2(cc, 1);
    CacheTier tier(cc, &l2);
    tier.update(payload_of('a', 200), anchors_at({{0, 0xA0}}),
                meta_for(7));
    tier.update(payload_of('b', 200), anchors_at({{0, 0xB0}}),
                meta_for(7));  // evicts 'a' -> demotion attempt
    EXPECT_EQ(tier.tier_stats().demotions, 1u);
    EXPECT_EQ(tier.tier_stats().demotions_rejected, 1u);
    EXPECT_EQ(tier.stripe()->size(), 0u);
    tier.audit();
  }
  {
    // Larger than the whole stripe share.
    CacheConfig cc;
    cc.l1_bytes = 100;
    cc.l2_bytes = 150;
    L2Store l2(cc, 1);
    CacheTier tier(cc, &l2);
    tier.update(payload_of('a', 200), anchors_at({{0, 0xA0}}), {});
    tier.update(payload_of('b', 200), anchors_at({{0, 0xB0}}), {});
    EXPECT_EQ(tier.tier_stats().demotions_rejected, 1u);
    EXPECT_EQ(tier.stripe()->size(), 0u);
    tier.audit();
  }
}

// ------------------------------------------ invalidation and flush --

TEST(CacheTier, InvalidateKillsThePacketInWhicheverTierHoldsIt) {
  CacheConfig cc;
  cc.l1_bytes = 250;
  cc.l2_bytes = 64 * 1024;
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);
  const std::uint64_t id_a =
      tier.update(payload_of('a'), anchors_at({{0, 0xA0}}), {});
  tier.update(payload_of('b'), anchors_at({{0, 0xB0}}), {});
  tier.update(payload_of('c'), anchors_at({{0, 0xC0}}), {});
  ASSERT_TRUE(tier.stripe()->contains(id_a));

  // L2-resident victim: the NACKed packet must die, not demote deeper.
  EXPECT_TRUE(tier.invalidate(0xA0));
  EXPECT_FALSE(tier.stripe()->contains(id_a));
  EXPECT_FALSE(tier.find(0xA0).has_value());
  // L1-resident victim.
  EXPECT_TRUE(tier.invalidate(0xC0));
  EXPECT_FALSE(tier.find(0xC0).has_value());
  // Unknown fingerprint.
  EXPECT_FALSE(tier.invalidate(0x9999));
  EXPECT_EQ(stale_entries(tier), 0u);
  tier.audit();
}

TEST(CacheTier, FlushClearsBothTiers) {
  CacheConfig cc;
  cc.l1_bytes = 250;
  cc.l2_bytes = 64 * 1024;
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);
  for (int i = 0; i < 6; ++i) {
    tier.update(payload_of(static_cast<char>('a' + i)),
                anchors_at({{0, static_cast<rabin::Fingerprint>(0xA0 + i)}}),
                {});
  }
  ASSERT_GT(tier.stripe()->size(), 0u);
  tier.flush();
  EXPECT_EQ(tier.store().size(), 0u);
  EXPECT_EQ(tier.fingerprint_count(), 0u);
  EXPECT_EQ(tier.stripe()->size(), 0u);
  EXPECT_EQ(tier.stripe()->bytes_used(), 0u);
  EXPECT_EQ(tier.stripe()->fingerprints(), 0u);
  EXPECT_FALSE(tier.find(0xA0).has_value());
  tier.audit();
}

// --------------------------------------------- eviction-policy seam --

/// Replays one admit/hit sequence under a given policy and hands the
/// stripe to `verify`: packet 1 ('a') takes four hits before packets
/// 2..4 arrive, so by the time the share overflows it is hot by
/// frequency but sits at the recency tail.
template <typename Verify>
void run_policy_scenario(EvictionPolicy policy, Verify&& verify) {
  CacheConfig cc;
  cc.l2_bytes = 350;  // three 100-byte payloads
  cc.eviction = policy;
  L2Store l2(cc, 1);
  L2Store::Stripe* s = l2.attach();
  const Bytes bufs[4] = {payload_of('a'), payload_of('b'), payload_of('c'),
                         payload_of('d')};
  const rabin::Fingerprint fps[4] = {0xA0, 0xB0, 0xC0, 0xD0};
  for (std::uint64_t i = 0; i < 4; ++i) {
    CachedPacket p;
    p.id = i + 1;
    p.payload = PayloadView{bufs[i].data(), bufs[i].size()};
    p.meta.host_key = 0x99;
    p.fps = {fps[i]};
    const DemotedFp owned{fps[i], 0};
    s->admit(p, std::span<const DemotedFp>(&owned, 1));
    if (i == 0) {
      bool enqueue = false;
      for (int h = 0; h < 4; ++h) ASSERT_TRUE(s->find(0xA0, enqueue));
    }
    s->end_packet();
  }
  s->audit();
  EXPECT_EQ(s->stats().l2_evictions, 1u);
  verify(*s);
}

TEST(L2EvictionPolicy, LruEvictsTheRecencyTailRegardlessOfHits) {
  run_policy_scenario(EvictionPolicy::kLru, [](const L2Store::Stripe& s) {
    EXPECT_FALSE(s.contains(1));  // 'a' was the tail
    EXPECT_TRUE(s.contains(2));
  });
}

TEST(L2EvictionPolicy, ZipfAwareSparesHotTailAndTakesColdNeighbour) {
  run_policy_scenario(
      EvictionPolicy::kZipfAware, [](const L2Store::Stripe& s) {
        EXPECT_TRUE(s.contains(1));   // hot 'a' gets its second chance
        EXPECT_FALSE(s.contains(2));  // zero-hit 'b' goes instead
      });
}

// ----------------------------------------------- tiered snapshotting --

TEST(CacheTier, TieredSnapshotRoundTripsBothTiers) {
  CacheConfig cc;
  cc.l1_bytes = 250;
  cc.l2_bytes = 64 * 1024;
  cc.per_host_pair_bytes = 4096;
  L2Store l2(cc, 1);
  CacheTier tier(cc, &l2);
  for (int i = 0; i < 6; ++i) {
    tier.update(payload_of(static_cast<char>('a' + i)),
                anchors_at({{0, static_cast<rabin::Fingerprint>(0xA0 + i)}}),
                meta_for(0x42 + static_cast<std::uint64_t>(i % 2)));
  }
  ASSERT_GT(tier.stripe()->size(), 0u);

  SnapshotWriter w;
  tier.save(w);
  const Bytes image = w.take();

  L2Store l2b(cc, 1);
  CacheTier replica(cc, &l2b);
  SnapshotReader r(image);
  ASSERT_TRUE(replica.load(r));
  ASSERT_TRUE(r.at_end());
  EXPECT_EQ(replica.store().size(), tier.store().size());
  EXPECT_EQ(replica.stripe()->size(), tier.stripe()->size());
  EXPECT_EQ(replica.stripe()->bytes_used(), tier.stripe()->bytes_used());
  // Both tiers answer lookups exactly as the original does.
  for (int i = 0; i < 6; ++i) {
    const auto fp = static_cast<rabin::Fingerprint>(0xA0 + i);
    auto a = tier.find(fp);
    auto b = replica.find(fp);
    ASSERT_EQ(a.has_value(), b.has_value()) << i;
    if (a.has_value()) {
      EXPECT_EQ(a->packet->id, b->packet->id) << i;
      EXPECT_EQ(a->packet->payload, util::BytesView(b->packet->payload)) << i;
    }
  }
  EXPECT_EQ(stale_entries(replica), 0u);
  replica.audit();

  // A BCT1 image must not load into an L2-less tier (config mismatch).
  CacheTier flat;
  SnapshotReader r2(image);
  EXPECT_FALSE(flat.load(r2));
  EXPECT_EQ(flat.store().size(), 0u);
}

// ------------------------------------- gateway-level pair isolation --

packet::PacketPtr pair_packet(std::uint32_t src, util::BytesView payload) {
  return packet::make_packet(src, testutil::kDstIp, packet::IpProto::kUdp,
                             Bytes(payload.begin(), payload.end()));
}

/// 100 mouse pairs plus one elephant pair through a real gateway pair:
/// the elephant floods unique content, every mouse re-sends its own
/// chunk each round.  The per-pair budget must keep every mouse's bytes
/// L2-resident, so mouse hit rates stay high — and the tier counters
/// must be visible in the gateways' obs snapshots.
TEST(TierIsolation, ElephantCannotStarveAHundredMousePairs) {
  constexpr int kMice = 100;
  constexpr int kRounds = 5;
  constexpr std::size_t kChunk = 1000;
  constexpr int kElephantPerRound = 60;

  core::GatewayConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.cache.l1_bytes = 32 * 1024;  // far smaller than one round
  cfg.cache.l2_bytes = 8 * 1024 * 1024;
  cfg.cache.per_host_pair_bytes = 64 * 1024;

  util::Rng rng(testutil::test_seed(214));
  std::vector<Bytes> chunks;
  for (int m = 0; m < kMice; ++m) {
    chunks.push_back(testutil::random_bytes(rng, kChunk));
  }

  // Runs the workload and returns {mouse data bytes, mouse wire bytes,
  // mice with at least one hit in the final round}.
  struct Outcome {
    std::uint64_t data = 0;
    std::uint64_t wire = 0;
    int mice_hit_last_round = 0;
    obs::Snapshot enc_snap;
    obs::Snapshot dec_snap;
  };
  auto run = [&](int mice, bool with_elephant) {
    gateway::EncoderGateway enc(cfg);
    gateway::DecoderGateway dec(cfg);
    Outcome out;
    util::Rng erng(99);
    int round_hits = 0;
    Bytes decoded_payload;
    dec.set_sink([&](packet::PacketPtr p) {
      decoded_payload = std::move(p->payload);
    });
    std::uint64_t wire_len = 0;
    enc.set_sink([&](packet::PacketPtr p) {
      wire_len = p->payload.size();
      dec.receive(std::move(p));
    });
    for (int round = 0; round < kRounds; ++round) {
      round_hits = 0;
      for (int m = 0; m < mice; ++m) {
        const std::uint32_t src = 0x0A010000u + static_cast<std::uint32_t>(m);
        enc.receive(pair_packet(src, chunks[static_cast<std::size_t>(m)]));
        EXPECT_EQ(decoded_payload, chunks[static_cast<std::size_t>(m)])
            << "mouse " << m << " round " << round;
        out.data += kChunk;
        out.wire += wire_len;
        if (wire_len < kChunk) ++round_hits;
      }
      if (with_elephant) {
        for (int i = 0; i < kElephantPerRound; ++i) {
          const Bytes noise = testutil::random_bytes(erng, 1400);
          enc.receive(pair_packet(0x0A02FFFFu, noise));
          EXPECT_EQ(decoded_payload, noise);
        }
      }
    }
    out.mice_hit_last_round = round_hits;
    out.enc_snap = enc.snapshot();
    out.dec_snap = dec.snapshot();
    if (enc.encoder() != nullptr) enc.encoder()->audit();
    return out;
  };

  const Outcome alone = run(1, /*with_elephant=*/false);
  const Outcome crowd = run(kMice, /*with_elephant=*/true);

  // The elephant cannot push any mouse's hit rate to zero: by the last
  // round every mouse's chunk is still being matched.
  EXPECT_EQ(crowd.mice_hit_last_round, kMice);

  // A mouse pair's wire ratio stays within 5% of its single-pair value
  // despite 100x the pairs plus the elephant flood.
  const double r_alone =
      static_cast<double>(alone.wire) / static_cast<double>(alone.data);
  const double r_crowd =
      static_cast<double>(crowd.wire) / static_cast<double>(crowd.data);
  EXPECT_LT(r_alone, 0.6);  // the workload really is redundant
  EXPECT_NEAR(r_crowd, r_alone, 0.05 * r_alone);

  // The tier counters are visible in the obs snapshots, on both sides.
  for (const obs::Snapshot* snap : {&crowd.enc_snap, &crowd.dec_snap}) {
    const char* side = snap == &crowd.enc_snap ? "encoder" : "decoder";
    const std::string prefix = std::string(side) + ".cache.";
    EXPECT_GT(snap->counter(prefix + "tier.demotions"), 0u) << side;
    EXPECT_GT(snap->counter(prefix + "tier.l2_hits"), 0u) << side;
    EXPECT_GT(snap->counter(prefix + "tier.promotions"), 0u) << side;
    EXPECT_GT(snap->counter(prefix + "tier.host_evictions"), 0u) << side;
    EXPECT_GE(snap->gauge(prefix + "l2_host_pairs"),
              static_cast<double>(kMice))
        << side;
    EXPECT_GT(snap->gauge(prefix + "l2_bytes_stored"), 0.0) << side;
  }
}

}  // namespace
}  // namespace bytecache::cache
