// Tests for the substrate variants: Tahoe congestion control and MAXP
// (winnowing) anchor selection.
#include <gtest/gtest.h>

#include "core/decoder.h"
#include "core/encoder.h"
#include "harness/experiment.h"
#include "rabin/window.h"
#include "tests/testutil.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

// ---------------------------------------------------------------- MAXP --

TEST(Maxp, GuaranteesCoverage) {
  // Winnowing property: at least one anchor in every run of 2p+1
  // consecutive window positions.
  rabin::RabinTables tables(16);
  Rng rng(1);
  const Bytes payload = testutil::random_bytes(rng, 4000);
  const std::size_t p = 31;
  const auto anchors = rabin::selected_anchors_maxp(tables, payload, p);
  ASSERT_FALSE(anchors.empty());
  std::size_t prev = 0;
  for (const auto& a : anchors) {
    ASSERT_LE(a.offset - prev, p) << "gap before " << a.offset;
    prev = a.offset;
  }
}

TEST(Maxp, DensityApproximatesOneOverWindow) {
  rabin::RabinTables tables(16);
  Rng rng(2);
  const Bytes payload = testutil::random_bytes(rng, 60'000);
  const std::size_t p = 31;
  const auto anchors = rabin::selected_anchors_maxp(tables, payload, p);
  const double density =
      static_cast<double>(anchors.size()) / (payload.size() - 16 + 1);
  EXPECT_NEAR(density, 2.0 / (p + 1), 0.02);
}

TEST(Maxp, ContentDefined) {
  // The same content selects the same anchors regardless of position.
  rabin::RabinTables tables(16);
  Rng rng(3);
  const Bytes chunk = testutil::random_bytes(rng, 1000);
  Bytes shifted = testutil::random_bytes(rng, 333);
  util::append(shifted, chunk);
  const auto a1 = rabin::selected_anchors_maxp(tables, chunk, 31);
  const auto a2 = rabin::selected_anchors_maxp(tables, shifted, 31);
  // Interior anchors of `chunk` (away from both boundaries) must recur at
  // offset + 333.
  std::size_t matched = 0, interior = 0;
  for (const auto& a : a1) {
    if (a.offset < 48 || a.offset + 64u > chunk.size()) continue;
    ++interior;
    for (const auto& b : a2) {
      if (b.offset == a.offset + 333 && b.fp == a.fp) {
        ++matched;
        break;
      }
    }
  }
  ASSERT_GT(interior, 0u);
  EXPECT_GE(matched + 2, interior);  // boundary effects allow tiny slack
}

TEST(Maxp, CodecRoundTripsWithMaxpSelection) {
  core::DreParams params;
  params.select_mode = core::SelectMode::kMaxp;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  core::Decoder dec(params);
  Rng rng(4);
  const Bytes object = workload::make_file1(rng, 150 * 1460);
  std::size_t encoded = 0;
  for (auto& pkt : testutil::segment_stream(object)) {
    const Bytes original = pkt->payload;
    if (enc.process(*pkt).encoded) ++encoded;
    ASSERT_FALSE(core::is_drop(dec.process(*pkt).status));
    ASSERT_EQ(pkt->payload, original);
  }
  EXPECT_GT(encoded, 100u);
}

TEST(Maxp, AnchorsRunsOfIdenticalBytes) {
  // The value-sampling pathology MAXP fixes: a long run of one byte has a
  // single fingerprint value that value sampling anchors either
  // everywhere-eligible or nowhere; winnowing's per-window maximum (ties
  // to the right) anchors it regardless, so runs stay compressible.
  core::DreParams params;
  params.select_mode = core::SelectMode::kMaxp;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  core::Decoder dec(params);
  Rng rng(5);
  Bytes payload = testutil::random_bytes(rng, 200);
  util::append(payload, Bytes(800, ' '));  // long space run
  util::append(payload, testutil::random_bytes(rng, 200));

  auto p1 = testutil::make_udp_packet(payload);
  enc.process(*p1);
  dec.process(*p1);
  auto p2 = testutil::make_udp_packet(payload);
  const Bytes original = p2->payload;
  const auto info = enc.process(*p2);
  EXPECT_TRUE(info.encoded);
  // The repeat must be nearly fully eliminated, run included.
  EXPECT_LT(info.sent_size, 200u);
  ASSERT_EQ(dec.process(*p2).status, core::DecodeStatus::kDecoded);
  EXPECT_EQ(p2->payload, original);
}

TEST(Maxp, EndToEndTransferUnderLoss) {
  Rng rng(6);
  const Bytes file = workload::make_file1(rng, 150'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.dre.select_mode = core::SelectMode::kMaxp;
  cfg.loss_rate = 0.03;
  auto r = harness::run_trial(cfg, file, 7);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.payload_bytes_out, r.payload_bytes_in);
}

// ---------------------------------------------------------- SAMPLEBYTE --

TEST(SampleByte, DeterministicAndContentDefined) {
  rabin::RabinTables tables(16);
  Rng rng(20);
  const Bytes chunk = testutil::random_bytes(rng, 1000);
  const auto a1 = rabin::selected_anchors_samplebyte(tables, chunk, 16, 8);
  const auto a2 = rabin::selected_anchors_samplebyte(tables, chunk, 16, 8);
  ASSERT_FALSE(a1.empty());
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].offset, a2[i].offset);
    EXPECT_EQ(a1[i].fp, a2[i].fp);
  }
}

TEST(SampleByte, DensityNearOneOverPeriod) {
  rabin::RabinTables tables(16);
  Rng rng(21);
  const Bytes payload = testutil::random_bytes(rng, 60'000);
  const auto anchors =
      rabin::selected_anchors_samplebyte(tables, payload, 16, 1);
  const double density =
      static_cast<double>(anchors.size()) / payload.size();
  EXPECT_NEAR(density, 1.0 / 16, 0.02);
}

TEST(SampleByte, SkipEnforcesSpacing) {
  rabin::RabinTables tables(16);
  Rng rng(22);
  const Bytes payload = testutil::random_bytes(rng, 10'000);
  const auto anchors =
      rabin::selected_anchors_samplebyte(tables, payload, 4, 32);
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    EXPECT_GE(anchors[i].offset - anchors[i - 1].offset, 32);
  }
}

TEST(SampleByte, CodecRoundTripsWithSampleByteSelection) {
  core::DreParams params;
  params.select_mode = core::SelectMode::kSampleByte;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  core::Decoder dec(params);
  Rng rng(23);
  const Bytes object = workload::make_file1(rng, 150 * 1460);
  std::size_t encoded = 0;
  for (auto& pkt : testutil::segment_stream(object)) {
    const Bytes original = pkt->payload;
    if (enc.process(*pkt).encoded) ++encoded;
    ASSERT_FALSE(core::is_drop(dec.process(*pkt).status));
    ASSERT_EQ(pkt->payload, original);
  }
  EXPECT_GT(encoded, 80u);  // less coverage than MODP/MAXP, still working
}

TEST(SampleByte, EndToEndUnderLoss) {
  Rng rng(24);
  const Bytes file = workload::make_file1(rng, 150'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.dre.select_mode = core::SelectMode::kSampleByte;
  cfg.loss_rate = 0.03;
  auto r = harness::run_trial(cfg, file, 25);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.payload_bytes_out, r.payload_bytes_in);
}

// --------------------------------------------------------------- Tahoe --

TEST(Tahoe, CompletesUnderLoss) {
  Rng rng(7);
  const Bytes file = workload::make_file1(rng, 200'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNone;
  cfg.tcp.algo = tcp::CongestionAlgo::kTahoe;
  cfg.loss_rate = 0.03;
  auto r = harness::run_trial(cfg, file, 8);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.tcp_fast_retransmits, 0u);
}

TEST(Tahoe, SlowerThanNewRenoUnderLoss) {
  // Tahoe restarts from one segment on every loss event; NewReno's fast
  // recovery keeps the pipe half full.
  Rng rng(8);
  const Bytes file = workload::make_file1(rng, 300'000);
  harness::ExperimentConfig newreno;
  newreno.policy = core::PolicyKind::kNone;
  newreno.loss_rate = 0.03;
  newreno.trials = 15;  // 5 is under-sampled: the gap is within noise there
  harness::ExperimentConfig tahoe = newreno;
  tahoe.tcp.algo = tcp::CongestionAlgo::kTahoe;
  auto a = harness::run_experiment(newreno, file);
  auto b = harness::run_experiment(tahoe, file);
  EXPECT_GT(b.duration_s.mean(), a.duration_s.mean());
}

TEST(Tahoe, EqualOnCleanLink) {
  Rng rng(9);
  const Bytes file = workload::make_file1(rng, 150'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNone;
  auto reno = harness::run_trial(cfg, file, 3);
  cfg.tcp.algo = tcp::CongestionAlgo::kTahoe;
  auto tahoe = harness::run_trial(cfg, file, 3);
  EXPECT_DOUBLE_EQ(reno.duration_s, tahoe.duration_s);  // no loss, no diff
}

TEST(Tahoe, DreStillWorksOnTopOfIt) {
  Rng rng(10);
  const Bytes file = workload::make_file1(rng, 150'000);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.tcp.algo = tcp::CongestionAlgo::kTahoe;
  cfg.loss_rate = 0.05;
  auto r = harness::run_trial(cfg, file, 11);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

}  // namespace
}  // namespace bytecache
