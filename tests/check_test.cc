// Tests for the invariant-audit subsystem (util/check.h and the deep
// audit() methods on the cache, codec, TCP and simulator layers).
//
// The audits are compiled in whenever the build defines BYTECACHE_AUDIT
// (every configuration except plain Release — see the top-level
// CMakeLists.txt); tests that need a *tripped* audit install a recording
// failure handler so the process survives to assert on the capture.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/byte_cache.h"
#include "cache/packet_store.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "gateway/pipeline.h"
#include "rabin/window.h"
#include "sim/simulator.h"
#include "tests/testutil.h"
#include "util/check.h"
#include "util/rng.h"

namespace bytecache {
namespace {

using cache::CachedPacket;
using cache::PacketMeta;
using cache::PacketStore;

/// Captures check failures instead of aborting, for the current scope.
class FailureRecorder {
 public:
  FailureRecorder() {
    prev_ = util::set_check_failure_handler(
        [this](const util::CheckFailure& f) {
          messages_.push_back(std::string(f.expr) + " | " + f.message);
        });
  }
  ~FailureRecorder() {
    util::set_check_failure_handler(std::move(prev_));
  }

  [[nodiscard]] const std::vector<std::string>& messages() const {
    return messages_;
  }
  [[nodiscard]] bool tripped() const { return !messages_.empty(); }

 private:
  util::CheckFailureHandler prev_;
  std::vector<std::string> messages_;
};

// ------------------------------------------------------------- macros --

TEST(CheckMacros, PassingCheckIsSilent) {
  FailureRecorder rec;
  BC_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_FALSE(rec.tripped());
}

TEST(CheckMacros, FailingCheckCapturesMessage) {
  FailureRecorder rec;
  const int value = 41;
  BC_CHECK(value == 42) << "expected the answer, got " << value;
  ASSERT_TRUE(rec.tripped());
  EXPECT_NE(rec.messages()[0].find("value == 42"), std::string::npos);
  EXPECT_NE(rec.messages()[0].find("got 41"), std::string::npos);
}

TEST(CheckMacros, CheckSwallowsTrailingStreamWithoutBraces) {
  FailureRecorder rec;
  // The macro must bind a dangling `<<` and an else-less if correctly.
  if (rec.tripped())
    BC_CHECK(false) << "unreachable";
  else
    BC_CHECK(true) << "also fine";
  EXPECT_FALSE(rec.tripped());
}

TEST(CheckMacros, AuditTierMatchesBuildConfiguration) {
  FailureRecorder rec;
  int evaluations = 0;
  BC_AUDIT(++evaluations > 0) << "counts only when audits are compiled in";
  if (util::kAuditEnabled) {
    EXPECT_EQ(evaluations, 1);
  } else {
    EXPECT_EQ(evaluations, 0);  // condition must not be evaluated
  }
  EXPECT_FALSE(rec.tripped());
}

TEST(CheckMacros, FailureCountIsMonotonic) {
  FailureRecorder rec;
  util::reset_check_failure_count();
  BC_CHECK(false) << "one";
  BC_CHECK(false) << "two";
  EXPECT_EQ(util::check_failure_count(), 2u);
}

// -------------------------------------------------------- store audits --

PacketMeta meta_at(std::uint64_t stream_index) {
  PacketMeta m;
  m.stream_index = stream_index;
  return m;
}

TEST(PacketStoreAudit, CleanThroughInsertLookupEraseEvict) {
  util::Rng rng(7);
  PacketStore store(cache::CacheConfig{.l1_bytes = 4096});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    const util::Bytes payload =
        testutil::random_bytes(rng, 256 + 16 * static_cast<std::size_t>(i));
    ids.push_back(store.insert(payload, meta_at(static_cast<std::uint64_t>(i))));
    store.audit();
  }
  // The 4 KiB budget forced evictions along the way.
  EXPECT_GT(store.evictions(), 0u);
  for (const std::uint64_t id : ids) {
    (void)store.lookup(id);  // touches the LRU list
    store.audit();
  }
  for (const std::uint64_t id : ids) {
    store.erase(id);
    store.audit();
  }
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
}

TEST(PacketStoreAudit, CatchesDuplicateIdRestore) {
  if (!util::kAuditEnabled) GTEST_SKIP() << "audits compiled out";
  PacketStore store;
  // Same id twice: breaks the index <-> LRU-list bijection.
  store.restore(7, util::Bytes{1, 2, 3}, cache::PacketMeta{});
  store.restore(7, util::Bytes{4, 5, 6}, cache::PacketMeta{});
  FailureRecorder rec;
  store.audit();
  ASSERT_TRUE(rec.tripped());
}

TEST(ByteCacheAudit, CatchesFingerprintBeyondIdHorizon) {
  if (!util::kAuditEnabled) GTEST_SKIP() << "audits compiled out";
  cache::ByteCache cache;
  // An id the store never assigned: every audit must flag it, because a
  // decoder holding such an entry can never resolve the region.
  cache.restore_fingerprint(0xDEADBEEFu, cache::FpEntry{99, 0});
  FailureRecorder rec;
  cache.audit();
  ASSERT_TRUE(rec.tripped());
  EXPECT_NE(rec.messages()[0].find("never assigned"), std::string::npos);
}

TEST(ByteCacheAudit, CatchesOffsetOutsidePayload) {
  if (!util::kAuditEnabled) GTEST_SKIP() << "audits compiled out";
  cache::ByteCache cache;
  cache.restore_packet(1, util::Bytes(64, 0xAA), cache::PacketMeta{});
  cache.restore_fingerprint(0x1234u, cache::FpEntry{1, 64});  // one past end
  FailureRecorder rec;
  cache.audit();
  ASSERT_TRUE(rec.tripped());
  EXPECT_NE(rec.messages()[0].find("outside payload"), std::string::npos);
}

TEST(ByteCacheAudit, StaleEntriesAreLegal) {
  // Lazy invalidation means a fingerprint may outlive its packet; the
  // audit must count, not flag, those entries.
  cache::ByteCache cache;
  cache.restore_packet(1, util::Bytes(64, 0xAA), cache::PacketMeta{});
  cache.restore_fingerprint(0x1234u, cache::FpEntry{1, 10});
  FailureRecorder rec;
  cache.audit();
  EXPECT_FALSE(rec.tripped());
  EXPECT_EQ(cache.table().audit(cache.store()), 0u);
}

// -------------------------------------------------------- codec audits --

TEST(CodecAudit, EncoderAndDecoderStayCleanOverAStream) {
  util::Rng rng(11);
  core::DreParams params;
  core::Encoder enc = testutil::test_encoder(core::PolicyKind::kNaive, params);
  core::Decoder dec(params);
  // Redundant traffic (repeated halves) so regions actually get encoded.
  const util::Bytes base = testutil::random_bytes(rng, 1200);
  for (int i = 0; i < 40; ++i) {
    util::Bytes payload = base;
    payload[0] = static_cast<std::uint8_t>(i);
    auto pkt = testutil::make_udp_packet(payload);
    enc.process(*pkt);
    enc.audit();
    dec.process(*pkt);
    dec.audit();
  }
  EXPECT_GT(enc.stats().encoded_packets, 0u);
  EXPECT_EQ(dec.stats().drops(), 0u);
}

// ---------------------------------------------------- simulator cadence --

TEST(SimulatorAudit, RunsAuditorsOnTheRequestedCadence) {
  sim::Simulator sim;
  int calls = 0;
  const auto id = sim.add_auditor([&calls] { ++calls; });
  sim.request_audit_interval(4);
  for (int i = 0; i < 12; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(calls, 3);  // every 4th of 12 events
  sim.remove_auditor(id);
  for (int i = 0; i < 8; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(calls, 3);  // removed auditors never fire
}

TEST(SimulatorAudit, SmallestNonzeroIntervalWins) {
  sim::Simulator sim;
  sim.request_audit_interval(512);
  sim.request_audit_interval(16);
  sim.request_audit_interval(0);    // no-op
  sim.request_audit_interval(256);  // larger: ignored
  EXPECT_EQ(sim.audit_interval(), 16u);
}

TEST(SimulatorAudit, PipelineRegistersAuditsWithTheSimulator) {
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.audit_interval_events = 16;
  util::Rng rng(3);
  {
    gateway::Pipeline pipe(sim, cfg);
    pipe.sender().start(testutil::random_bytes(rng, 40'000));
    sim.run();
    EXPECT_TRUE(pipe.sender().completed());
    EXPECT_GT(sim.audits_run(), 0u);
    // A transfer that completed under periodic audits is itself the
    // assertion: any violated invariant would have aborted the test.
    pipe.audit();
  }
  // The destroyed pipeline deregistered its auditor: further events run
  // without invoking it (the audit pass is skipped entirely).
  const std::uint64_t audits_before = sim.audits_run();
  for (int i = 0; i < 64; ++i) sim.after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.audits_run(), audits_before);
}

}  // namespace
}  // namespace bytecache
