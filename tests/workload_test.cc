#include <gtest/gtest.h>

#include <set>

#include "workload/analyzer.h"
#include "workload/generators.h"
#include "workload/text.h"

namespace bytecache::workload {
namespace {

using util::Bytes;
using util::Rng;

// ----------------------------------------------------------------- text --

TEST(Text, SentencesVary) {
  Rng rng(1);
  std::set<std::string> sentences;
  for (int i = 0; i < 200; ++i) sentences.insert(make_sentence(rng));
  EXPECT_GT(sentences.size(), 195u);
}

TEST(Text, SentenceShape) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::string s = make_sentence(rng);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(s.front())));
    EXPECT_NE(s.find(". "), std::string::npos);
  }
}

TEST(Text, RandomTextIsPrintableAndIncompressible) {
  Rng rng(3);
  const Bytes t = random_text(rng, 10000);
  EXPECT_EQ(t.size(), 10000u);
  for (std::uint8_t c : t) {
    EXPECT_TRUE(std::isprint(c)) << static_cast<int>(c);
  }
  const auto rep = avg_dependencies(t);
  EXPECT_LT(rep.percent_saved, 1.0);
}

// ----------------------------------------------------------- generators --

TEST(Generators, SizesExact) {
  Rng rng(4);
  EXPECT_EQ(make_ebook(rng, {.size = 50'000}).size(), 50'000u);
  EXPECT_EQ(make_video(rng, 12'345).size(), 12'345u);
  EXPECT_EQ(make_file1(rng, 100'000).size(), 100'000u);
  EXPECT_EQ(make_file2(rng, 100'000).size(), 100'000u);
}

TEST(Generators, Deterministic) {
  Rng a(5), b(5);
  EXPECT_EQ(make_file1(a, 50'000), make_file1(b, 50'000));
  Rng c(6);
  EXPECT_NE(make_file1(c, 50'000), make_file1(c, 50'000));  // stream advances
}

TEST(Generators, VideoIsNearlyIncompressible) {
  Rng rng(7);
  const Bytes video = make_video(rng, 300 * 1460);
  const auto rep = redundancy_percent(video, 1000);
  // Table I's video band: 0.009%–1% (sparse container headers only).
  EXPECT_LT(rep.percent_saved, 1.0);
}

TEST(Generators, EbookRedundancyInTableOneBand) {
  Rng rng(8);
  const EbookParams params{.size = 587'567};
  const Bytes ebook = make_ebook(rng, params);
  // Table I ebook row: 0.3% (k=10) to 1% (k=1000); allow a loose band.
  const auto rep10 = redundancy_percent(ebook, 10);
  const auto rep1000 = redundancy_percent(ebook, 1000);
  EXPECT_LT(rep10.percent_saved, 6.0);
  EXPECT_GT(rep1000.percent_saved, 0.05);
  EXPECT_GE(rep1000.percent_saved, rep10.percent_saved);  // monotone in k
}

TEST(Generators, WebPageHighRedundancy) {
  Rng rng(9);
  const Bytes page = make_web_page(rng, {});
  const auto rep = redundancy_percent(page, 1000);
  // Table I web-page row: 19%–52%.
  EXPECT_GT(rep.percent_saved, 15.0);
  EXPECT_LT(rep.percent_saved, 60.0);
}

TEST(Generators, WebPagesOfSameSiteShareBoilerplate) {
  Rng rng(10);
  WebPageParams params;
  const Bytes a = make_web_page(rng, params);
  const Bytes b = make_web_page(rng, params);
  ASSERT_NE(a, b);  // content differs
  // But they share a long common prefix (head/CSS boilerplate).
  std::size_t common = 0;
  while (common < std::min(a.size(), b.size()) && a[common] == b[common]) {
    ++common;
  }
  EXPECT_GT(common, 1000u);
}

TEST(Generators, File1HasAboutFourDependencies) {
  Rng rng(11);
  const Bytes f = make_file1(rng, 400 * 1460);
  const auto rep = avg_dependencies(f);
  EXPECT_NEAR(rep.avg_distinct_deps, 4.0, 1.0);
  EXPECT_GT(rep.percent_saved, 35.0);
}

TEST(Generators, File2HasAboutSevenDependencies) {
  Rng rng(12);
  const Bytes f = make_file2(rng, 400 * 1460);
  const auto rep = avg_dependencies(f);
  EXPECT_NEAR(rep.avg_distinct_deps, 7.0, 1.5);
  EXPECT_GT(rep.percent_saved, 35.0);
}

TEST(Generators, File2SpreadsDependenciesWiderThanFile1) {
  Rng rng(13);
  const auto r1 = avg_dependencies(make_file1(rng, 300 * 1460));
  const auto r2 = avg_dependencies(make_file2(rng, 300 * 1460));
  EXPECT_GT(r2.avg_distinct_deps, r1.avg_distinct_deps + 1.5);
}

TEST(Generators, DepFileCustomParameters) {
  Rng rng(14);
  DepFileParams p;
  p.size = 200 * 1460;
  p.near_chunks = 2;
  p.far_chunks = 0;
  p.chunk_len = 300;
  p.near_window_units = 4;
  const Bytes f = make_dep_file(rng, p);
  const auto rep = avg_dependencies(f);
  EXPECT_NEAR(rep.avg_distinct_deps, 2.0, 0.8);
}

// ------------------------------------------------------------ analyzer --

TEST(Analyzer, RedundancyGrowsWithCacheWindow) {
  Rng rng(15);
  // Redundancy referencing ~50 packets back: invisible at k=10.
  DepFileParams p;
  p.size = 300 * 1460;
  p.near_chunks = 0;
  p.far_chunks = 3;
  p.chunk_len = 200;
  p.far_window_units = 50;
  const Bytes f = make_dep_file(rng, p);
  const auto rep_small = redundancy_percent(f, 5);
  const auto rep_large = redundancy_percent(f, 1000);
  EXPECT_LT(rep_small.percent_saved, rep_large.percent_saved);
  EXPECT_GT(rep_large.percent_saved, 25.0);
}

TEST(Analyzer, EmptyObject) {
  const auto rep = redundancy_percent({}, 100);
  EXPECT_EQ(rep.percent_saved, 0.0);
  const auto dep = avg_dependencies({});
  EXPECT_EQ(dep.avg_distinct_deps, 0.0);
}

TEST(Analyzer, FullyDuplicatedObject) {
  Rng rng(16);
  const Bytes chunk = random_text(rng, 1460);
  Bytes object;
  for (int i = 0; i < 50; ++i) util::append(object, chunk);
  const auto rep = redundancy_percent(object, 1000);
  EXPECT_GT(rep.percent_saved, 80.0);  // everything after packet 1 repeats
}

}  // namespace
}  // namespace bytecache::workload
