// Tests of the encoding policies' admission semantics — the heart of the
// paper's Section V.
#include <gtest/gtest.h>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/policies.h"
#include "tests/testutil.h"
#include "util/rng.h"
#include "util/seqcmp.h"

namespace bytecache::core {
namespace {

using testutil::test_encoder;
using testutil::make_tcp_packet;
using testutil::make_udp_packet;
using testutil::random_bytes;
using util::Bytes;
using util::Rng;

PacketContext ctx_with_seq(std::uint32_t seq, std::uint64_t index = 0) {
  PacketContext ctx;
  ctx.tcp_seq = seq;
  ctx.stream_index = index;
  ctx.payload_size = 1000;
  return ctx;
}

cache::PacketMeta meta_with_seq(std::uint32_t seq,
                                std::uint64_t index = 0) {
  cache::PacketMeta m;
  m.tcp_seq = seq;
  m.has_tcp_seq = true;
  m.stream_index = index;
  return m;
}

// -------------------------------------------------------------- Naive --

TEST(NaivePolicy, AlwaysAllowsEverything) {
  NaivePolicy p;
  const auto d = p.before_encode(ctx_with_seq(100));
  EXPECT_TRUE(d.allow_encode);
  EXPECT_FALSE(d.flush_cache);
  EXPECT_TRUE(p.admit(ctx_with_seq(100), meta_with_seq(200)));  // succeeding!
  EXPECT_TRUE(p.admit(ctx_with_seq(100), meta_with_seq(100)));  // itself!
}

// --------------------------------------------------------- CacheFlush --

TEST(CacheFlushPolicy, FlushesOnSequenceDecrease) {
  CacheFlushPolicy p;
  EXPECT_FALSE(p.before_encode(ctx_with_seq(1000)).flush_cache);
  EXPECT_FALSE(p.before_encode(ctx_with_seq(2460)).flush_cache);
  const auto d = p.before_encode(ctx_with_seq(1000));  // retransmission
  EXPECT_TRUE(d.flush_cache);
  EXPECT_TRUE(d.is_retransmission);
}

TEST(CacheFlushPolicy, FlushesOnEqualSequence) {
  // Back-to-back retransmissions of the same segment carry equal sequence
  // numbers; both must trigger the flush (see policies.h for why the
  // paper's strict-decrease trigger is insufficient).
  CacheFlushPolicy p;
  p.before_encode(ctx_with_seq(1000));
  EXPECT_TRUE(p.before_encode(ctx_with_seq(1000)).flush_cache);
  EXPECT_TRUE(p.before_encode(ctx_with_seq(1000)).flush_cache);
}

TEST(CacheFlushPolicy, NoFlushOnMonotonicStream) {
  CacheFlushPolicy p;
  for (std::uint32_t seq = 1000; util::seq_lt(seq, 100000); seq += 1460) {
    EXPECT_FALSE(p.before_encode(ctx_with_seq(seq)).flush_cache);
  }
}

TEST(CacheFlushPolicy, SequenceWraparoundIsNotARetransmission) {
  CacheFlushPolicy p;
  p.before_encode(ctx_with_seq(0xFFFFFF00u));
  // Crossing the 2^32 wrap is *forward* progress.
  EXPECT_FALSE(p.before_encode(ctx_with_seq(0x00000100u)).flush_cache);
}

TEST(CacheFlushPolicy, NonTcpPacketsIgnored) {
  CacheFlushPolicy p;
  PacketContext udp;
  udp.payload_size = 500;
  EXPECT_FALSE(p.before_encode(udp).flush_cache);
  p.before_encode(ctx_with_seq(5000));
  EXPECT_FALSE(p.before_encode(udp).flush_cache);  // no seq, no verdict
}

TEST(CacheFlushPolicy, EndToEndRetransmissionGoesUnencoded) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kCacheFlush, params);
  Rng rng(1);
  const Bytes data = random_bytes(rng, 1000);

  auto p1 = make_tcp_packet(data, 1000);
  enc.process(*p1);
  // Retransmission of the same segment: would be encoded by naive, must
  // go out unencoded here.
  auto p2 = make_tcp_packet(data, 1000);
  const EncodeInfo info = enc.process(*p2);
  EXPECT_TRUE(info.flushed);
  EXPECT_FALSE(info.encoded);
  EXPECT_EQ(enc.stats().flushes, 1u);
}

// ------------------------------------------------------------- TcpSeq --

TEST(TcpSeqPolicy, AdmitsOnlyStrictlyPrecedingSegments) {
  TcpSeqPolicy p;
  EXPECT_TRUE(p.admit(ctx_with_seq(5000), meta_with_seq(1000)));
  EXPECT_FALSE(p.admit(ctx_with_seq(5000), meta_with_seq(5000)));  // itself
  EXPECT_FALSE(p.admit(ctx_with_seq(5000), meta_with_seq(9000)));  // later
}

TEST(TcpSeqPolicy, WrapAwareComparison) {
  TcpSeqPolicy p;
  // 0xFFFFFF00 precedes 0x100 across the wrap.
  EXPECT_TRUE(p.admit(ctx_with_seq(0x100), meta_with_seq(0xFFFFFF00u)));
  EXPECT_FALSE(p.admit(ctx_with_seq(0xFFFFFF00u), meta_with_seq(0x100)));
}

TEST(TcpSeqPolicy, RejectsWithoutTcpState) {
  TcpSeqPolicy p;
  PacketContext udp;
  udp.payload_size = 500;
  EXPECT_FALSE(p.admit(udp, meta_with_seq(1)));
  cache::PacketMeta no_seq;
  EXPECT_FALSE(p.admit(ctx_with_seq(5000), no_seq));
}

TEST(TcpSeqPolicy, NeverFlushes) {
  TcpSeqPolicy p;
  p.before_encode(ctx_with_seq(2000));
  const auto d = p.before_encode(ctx_with_seq(1000));
  EXPECT_FALSE(d.flush_cache);
  EXPECT_TRUE(d.is_retransmission);  // detected, but only for stats
  EXPECT_TRUE(d.allow_encode);
}

TEST(TcpSeqPolicy, EndToEndRetransmissionEncodedAgainstPredecessorOnly) {
  DreParams params;
  auto enc = test_encoder(PolicyKind::kTcpSeq, params);
  Decoder dec(params);
  Rng rng(2);
  const Bytes a = random_bytes(rng, 1000);
  const Bytes b = random_bytes(rng, 1000);

  auto p1 = make_tcp_packet(a, 1000);  // seq 1000
  enc.process(*p1);
  dec.process(*p1);
  auto p2 = make_tcp_packet(b, 2000);  // seq 2000
  enc.process(*p2);
  dec.process(*p2);

  // Retransmission of seq 1000 whose content matches ITSELF (cached with
  // equal seq): must NOT be encoded.
  auto p3 = make_tcp_packet(a, 1000);
  EXPECT_FALSE(enc.process(*p3).encoded);

  // A later segment repeating earlier content IS encoded.
  auto p4 = make_tcp_packet(a, 3000);
  const Bytes original = p4->payload;
  EXPECT_TRUE(enc.process(*p4).encoded);
  dec.process(*p3);
  EXPECT_EQ(dec.process(*p4).status, DecodeStatus::kDecoded);
  EXPECT_EQ(p4->payload, original);
}

// ---------------------------------------------------------- KDistance --

TEST(KDistancePolicy, EveryKthPacketIsReference) {
  KDistancePolicy p(4);
  int references = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto d = p.before_encode(ctx_with_seq(1000 + 100 * i, i));
    if (d.is_reference) {
      EXPECT_FALSE(d.allow_encode);
      ++references;
      EXPECT_EQ(i % 4, 0u) << i;
    }
  }
  EXPECT_EQ(references, 3);
}

TEST(KDistancePolicy, AdmitsOnlySinceLatestReference) {
  KDistancePolicy p(4);
  for (std::uint64_t i = 0; i <= 4; ++i) {
    p.before_encode(ctx_with_seq(1000, i));  // index 4 becomes a reference
  }
  cache::PacketMeta before_ref;
  before_ref.stream_index = 2;
  cache::PacketMeta the_ref;
  the_ref.stream_index = 4;
  cache::PacketMeta after_ref;
  after_ref.stream_index = 5;
  const auto ctx = ctx_with_seq(9999, 6);
  EXPECT_FALSE(p.admit(ctx, before_ref));
  EXPECT_TRUE(p.admit(ctx, the_ref));
  EXPECT_TRUE(p.admit(ctx, after_ref));
}

TEST(KDistancePolicy, KOneMeansNoEncoding) {
  KDistancePolicy p(1);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(p.before_encode(ctx_with_seq(0, i)).is_reference);
  }
}

TEST(KDistancePolicy, WorksWithoutTcp) {
  KDistancePolicy p(3);
  PacketContext udp;
  udp.payload_size = 500;
  udp.stream_index = 0;
  EXPECT_TRUE(p.before_encode(udp).is_reference);
  udp.stream_index = 1;
  EXPECT_TRUE(p.before_encode(udp).allow_encode);
}

TEST(KDistancePolicy, EndToEndCascadeBoundedByK) {
  // After any single loss, at most k-1 packets can be undecodable before
  // the next reference resynchronizes the caches.
  DreParams params;
  params.k_distance = 5;
  auto enc = test_encoder(PolicyKind::kKDistance, params);
  Decoder dec(params);
  Rng rng(3);
  // Highly redundant stream: every packet shares content with recent ones.
  const Bytes base = random_bytes(rng, 1460);
  std::vector<packet::PacketPtr> packets;
  for (int i = 0; i < 40; ++i) {
    Bytes payload = base;  // identical content: maximal dependency pressure
    payload[0] = static_cast<std::uint8_t>(i);  // small twist
    packets.push_back(make_tcp_packet(payload, 1000 + 1460 * i));
  }
  int undecodable = 0, max_run = 0, run = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    enc.process(*packets[i]);
    if (i == 7) {  // drop one packet on the "link"
      run = 0;
      continue;
    }
    const DecodeInfo dinfo = dec.process(*packets[i]);
    if (is_drop(dinfo.status)) {
      ++undecodable;
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_LE(undecodable, 4);  // k - 1
  EXPECT_LE(max_run, 4);
}

// ----------------------------------------------------------- Adaptive --

TEST(AdaptivePolicy, StartsAtKMax) {
  DreParams params;
  params.adaptive_k_max = 32;
  AdaptivePolicy p(params);
  p.before_encode(ctx_with_seq(1000, 0));
  EXPECT_EQ(p.current_k(), 32u);
  EXPECT_EQ(p.estimated_loss(), 0.0);
}

TEST(AdaptivePolicy, LossEstimateRisesOnRetransmissions) {
  DreParams params;
  AdaptivePolicy p(params);
  std::uint64_t idx = 0;
  p.before_encode(ctx_with_seq(1000, idx++));
  for (int i = 0; i < 20; ++i) {
    p.before_encode(ctx_with_seq(1000, idx++));  // repeated retransmission
  }
  EXPECT_GT(p.estimated_loss(), 0.3);
  EXPECT_LE(p.current_k(), params.adaptive_k_min + 1);
}

TEST(AdaptivePolicy, KRecoversWhenLossSubsides) {
  DreParams params;
  params.adaptive_alpha = 0.2;  // fast adaptation for the test
  AdaptivePolicy p(params);
  std::uint32_t seq = 1000;
  std::uint64_t idx = 0;
  p.before_encode(ctx_with_seq(seq, idx++));
  for (int i = 0; i < 10; ++i) p.before_encode(ctx_with_seq(seq, idx++));
  const std::size_t k_low = p.current_k();
  for (int i = 0; i < 100; ++i) {
    seq += 1460;
    p.before_encode(ctx_with_seq(seq, idx++));
  }
  EXPECT_GT(p.current_k(), k_low);
}

}  // namespace
}  // namespace bytecache::core
