// Randomized equivalence tests for the zero-allocation data plane.
//
// The fast paths (inlined scan, flat fingerprint table, pooled packet
// store, per-codec scratch buffers) are drop-in replacements for simpler
// reference implementations; these tests pin each one against its
// reference on random inputs so a behavioural drift cannot hide behind a
// performance win:
//   - template scan vs the type-erased scan vs full recomputation,
//   - RollingWindow vs RabinTables::of at every offset,
//   - FlatMap64 / FingerprintTable vs std::unordered_map,
//   - each selection scheme vs a naive reference across a parameter
//     sweep (maxp_p including powers of two, select_bits, SAMPLEBYTE
//     period/skip) — parameter-dependent paths like the MAXP ring sizing
//     only misbehave at non-default values,
//   - workspace-based anchor computation vs the by-value form,
//   - encoder bit-determinism across independent instances, and
//   - the eviction purge keeping the fingerprint table free of stale
//     entries under heavy churn.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/byte_cache.h"
#include "cache/flat_map.h"
#include "core/anchors.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/policies.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache {
namespace {

using testutil::test_encoder;
using testutil::random_bytes;
using testutil::segment_stream;
using util::Bytes;
using util::Rng;

struct OffsetFp {
  std::size_t offset;
  rabin::Fingerprint fp;

  friend bool operator==(const OffsetFp&, const OffsetFp&) = default;
};

// ----------------------------------------------------------- scanning --

TEST(ScanEquiv, TemplateVsErasedVsRecompute) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(101));
  for (int trial = 0; trial < 50; ++trial) {
    // Cover the degenerate sizes: empty, below, at, and above the window.
    const std::size_t n = trial < 4 ? static_cast<std::size_t>(trial * 8)
                                    : rng.uniform(1, 2000);
    const Bytes payload = random_bytes(rng, n);

    std::vector<OffsetFp> inlined;
    const std::size_t count_inlined =
        rabin::scan(tables, payload, [&](std::size_t off, rabin::Fingerprint fp) {
          inlined.push_back({off, fp});
        });

    std::vector<OffsetFp> erased;
    const std::size_t count_erased = rabin::scan_erased(
        tables, payload, [&](std::size_t off, rabin::Fingerprint fp) {
          erased.push_back({off, fp});
        });

    EXPECT_EQ(count_inlined, count_erased);
    EXPECT_EQ(inlined, erased);
    EXPECT_EQ(count_inlined, n < 16 ? 0 : n - 16 + 1);
    // Every reported fingerprint equals a from-scratch recomputation of
    // the window it covers.
    for (const OffsetFp& a : inlined) {
      EXPECT_EQ(a.fp, tables.of(util::BytesView(payload).subspan(a.offset, 16)))
          << "offset " << a.offset;
    }
  }
}

TEST(RollingWindowEquiv, MatchesRecomputeAtEveryOffset) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(102));
  const Bytes payload = random_bytes(rng, 700);
  rabin::RollingWindow win(tables);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const bool full = win.feed(payload[i]);
    EXPECT_EQ(full, i + 1 >= 16);
    EXPECT_EQ(full, win.full());
    if (full) {
      const std::size_t off = i + 1 - 16;
      EXPECT_EQ(win.fingerprint(),
                tables.of(util::BytesView(payload).subspan(off, 16)))
          << "offset " << off;
    }
  }
}

TEST(RollingWindowEquiv, ResetMatchesFreshWindow) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(103));
  const Bytes payload = random_bytes(rng, 64);
  rabin::RollingWindow reused(tables);
  for (std::uint8_t b : payload) reused.feed(b);
  reused.reset();
  EXPECT_FALSE(reused.full());
  rabin::RollingWindow fresh(tables);
  for (std::uint8_t b : payload) {
    reused.feed(b);
    fresh.feed(b);
    EXPECT_EQ(reused.fingerprint(), fresh.fingerprint());
  }
}

// ---------------------------------------------------------- flat table --

TEST(FlatMapEquiv, RandomOpsMatchUnorderedMap) {
  cache::FlatMap64<std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(testutil::test_seed(104));
  for (int op = 0; op < 20000; ++op) {
    // A small key pool (with the low bits zeroed, like real selected
    // fingerprints) forces overwrites, hits, and probe-chain collisions.
    const std::uint64_t key = rng.uniform(0, 300) << 4;
    switch (rng.uniform(0, 3)) {
      case 0:
      case 1: {  // put (biased: tables grow)
        const std::uint64_t value = rng.next_u64();
        flat.put(key, value);
        ref[key] = value;
        break;
      }
      case 2: {  // find
        const std::uint64_t* v = flat.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
      case 3: {  // erase
        ASSERT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content sweep: every surviving pair matches the reference.
  std::size_t visited = 0;
  flat.for_each([&](std::uint64_t key, std::uint64_t value) {
    ++visited;
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "key " << key << " not in reference";
    ASSERT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FingerprintTableEquiv, RandomOpsMatchReferenceModel) {
  cache::FingerprintTable table;
  std::unordered_map<std::uint64_t, cache::FpEntry> ref;
  Rng rng(testutil::test_seed(105));
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t fp = rng.uniform(0, 400) << 4;
    switch (rng.uniform(0, 4)) {
      case 0:
      case 1: {  // put
        cache::FpEntry e;
        e.packet_id = rng.uniform(1, 50);
        e.offset = static_cast<std::uint16_t>(rng.uniform(0, 1459));
        table.put(fp, e);
        ref[fp] = e;
        break;
      }
      case 2: {  // get
        auto got = table.get(fp);
        auto it = ref.find(fp);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got) {
          ASSERT_EQ(got->packet_id, it->second.packet_id);
          ASSERT_EQ(got->offset, it->second.offset);
        }
        break;
      }
      case 3: {  // erase
        table.erase(fp);
        ref.erase(fp);
        break;
      }
      case 4: {  // erase_if_owner: only removes a matching owner
        const std::uint64_t owner = rng.uniform(1, 50);
        auto it = ref.find(fp);
        const bool expect =
            it != ref.end() && it->second.packet_id == owner;
        ASSERT_EQ(table.erase_if_owner(fp, owner), expect);
        if (expect) ref.erase(it);
        break;
      }
    }
    ASSERT_EQ(table.size(), ref.size());
  }
}

// ---------------------------------------------------- selection sweeps --

/// Brute-force MAXP reference: for every window of `p` consecutive
/// positions, take the rightmost maximum-fingerprint position by direct
/// argmax over recomputed fingerprints (O(n*p); no monotonic queue, so
/// it shares no machinery with the implementation under test).
std::vector<rabin::Anchor> maxp_reference(const rabin::RabinTables& tables,
                                          util::BytesView payload,
                                          std::size_t p) {
  std::vector<rabin::Anchor> out;
  const std::size_t w = tables.window();
  if (payload.size() < w || p == 0) return out;
  std::vector<rabin::Fingerprint> fps;
  for (std::size_t i = 0; i + w <= payload.size(); ++i) {
    fps.push_back(tables.of(payload.subspan(i, w)));
  }
  std::size_t last = fps.size();  // sentinel: no anchor emitted yet
  for (std::size_t end = p - 1; end < fps.size(); ++end) {
    std::size_t best = end + 1 - p;
    for (std::size_t j = best + 1; j <= end; ++j) {
      if (fps[j] >= fps[best]) best = j;  // >=: rightmost wins ties
    }
    if (best != last) {
      last = best;
      out.push_back(rabin::Anchor{static_cast<std::uint16_t>(best), fps[best]});
    }
  }
  return out;
}

// Sweeps p across powers of two (where a ring sized bit_ceil(p) == p
// would be overwritten by the transient p+1-th candidate), their
// neighbours, and the default 31.
TEST(MaxpEquiv, MatchesBruteForceReferenceAcrossP) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(110));
  rabin::MaxpScratch scratch;  // reused across p values, like the codecs
  std::vector<rabin::Anchor> out;
  for (const std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{15},
                              std::size_t{16}, std::size_t{17},
                              std::size_t{31}, std::size_t{32},
                              std::size_t{33}, std::size_t{64},
                              std::size_t{65}}) {
    for (int trial = 0; trial < 20; ++trial) {
      // Narrow byte alphabet: repeated values produce fingerprint ties,
      // exercising the rightmost-wins rule.
      std::size_t n = rng.uniform(1, 1460);
      Bytes payload(n);
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.uniform(0, trial % 2 ? 3 : 255));
      }
      const auto expected = maxp_reference(tables, payload, p);
      rabin::selected_anchors_maxp_into(tables, payload, p, out, scratch);
      ASSERT_EQ(out, expected) << "p=" << p << " n=" << n;
      ASSERT_EQ(out, rabin::selected_anchors_maxp(tables, payload, p))
          << "p=" << p << " n=" << n;
    }
  }
}

TEST(ValueSamplingEquiv, MatchesRecomputeReferenceAcrossSelectBits) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(111));
  for (const unsigned bits : {0u, 1u, 2u, 4u, 8u, 12u}) {
    for (int trial = 0; trial < 10; ++trial) {
      const Bytes payload = random_bytes(rng, rng.uniform(1, 1460));
      std::vector<rabin::Anchor> expected;
      for (std::size_t i = 0; i + 16 <= payload.size(); ++i) {
        const auto fp = tables.of(util::BytesView(payload).subspan(i, 16));
        if (rabin::selected(fp, bits)) {
          expected.push_back(rabin::Anchor{static_cast<std::uint16_t>(i), fp});
        }
      }
      ASSERT_EQ(rabin::selected_anchors(tables, payload, bits), expected)
          << "bits=" << bits << " n=" << payload.size();
    }
  }
}

TEST(SampleByteEquiv, MatchesNaiveReferenceAcrossPeriodAndSkip) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(112));
  for (const unsigned period : {1u, 2u, 4u, 16u, 64u, 256u}) {
    for (const std::size_t skip :
         {std::size_t{0}, std::size_t{1}, std::size_t{8}, std::size_t{16},
          std::size_t{300}}) {
      for (int trial = 0; trial < 5; ++trial) {
        const Bytes payload = random_bytes(rng, rng.uniform(1, 1460));
        // Naive reference: per-byte hash + division, no membership bitmap.
        std::vector<rabin::Anchor> expected;
        for (std::size_t i = 0; i + 16 <= payload.size();) {
          std::uint64_t state = payload[i];
          if (util::splitmix64(state) % period == 0) {
            expected.push_back(rabin::Anchor{
                static_cast<std::uint16_t>(i),
                tables.of(util::BytesView(payload).subspan(i, 16))});
            i += skip > 0 ? skip : 1;
          } else {
            ++i;
          }
        }
        ASSERT_EQ(
            rabin::selected_anchors_samplebyte(tables, payload, period, skip),
            expected)
            << "period=" << period << " skip=" << skip;
      }
    }
  }
}

// ------------------------------------------------------------- anchors --

TEST(AnchorEquiv, WorkspaceMatchesByValueForEverySelectMode) {
  const rabin::RabinTables tables(16);
  Rng rng(testutil::test_seed(106));
  core::AnchorWorkspace ws;  // deliberately reused across payloads/modes
  for (int trial = 0; trial < 30; ++trial) {
    const Bytes payload = random_bytes(rng, rng.uniform(1, 1460));
    for (core::SelectMode mode :
         {core::SelectMode::kValueSampling, core::SelectMode::kMaxp,
          core::SelectMode::kSampleByte}) {
      core::DreParams params;
      params.select_mode = mode;
      // Sweep away from the defaults (select_bits=4, maxp_p=31,
      // period=16/skip=8) so parameter-dependent paths — notably the
      // power-of-two MAXP ring — are hit too.
      for (const unsigned variant : {0u, 1u, 2u}) {
        params.select_bits = 2 + 2 * variant;
        params.maxp_p = std::size_t{8} << variant;  // 8, 16, 32: powers of two
        params.samplebyte_period = 4u << variant;
        params.samplebyte_skip = variant * 8;
        const auto by_value = core::compute_anchors(tables, payload, params);
        const auto& via_ws =
            core::compute_anchors(tables, payload, params, ws);
        EXPECT_EQ(by_value, via_ws)
            << "mode " << static_cast<int>(mode) << " variant " << variant
            << " payload " << payload.size();
      }
    }
  }
}

// ------------------------------------------------------ codec identity --

// Two independent encoder instances fed the same stream must emit
// bit-identical packets (scratch-buffer reuse cannot leak state between
// packets or instances), and a fresh decoder must reconstruct the
// original bytes exactly.
TEST(CodecEquiv, EncodingBitIdenticalAcrossInstances) {
  Rng rng(testutil::test_seed(107));
  // A redundant stream: random chunks, many repeated, so real regions and
  // multi-region packets are produced.
  Bytes object;
  std::vector<Bytes> chunks;
  for (int i = 0; i < 8; ++i) {
    chunks.push_back(random_bytes(rng, 400 + 80 * static_cast<std::size_t>(i)));
  }
  for (int i = 0; i < 120; ++i) {
    const Bytes& c = chunks[rng.zipf(chunks.size(), 1.0)];
    object.insert(object.end(), c.begin(), c.end());
  }

  auto enc_a = test_encoder(core::PolicyKind::kNaive);
  auto enc_b = test_encoder(core::PolicyKind::kNaive);
  core::Decoder dec{core::DreParams{}};
  std::size_t encoded_packets = 0;
  for (const auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    auto copy_a = packet::make_packet(pkt->ip.src, pkt->ip.dst,
                                      pkt->proto(), Bytes(original));
    auto copy_b = packet::make_packet(pkt->ip.src, pkt->ip.dst,
                                      pkt->proto(), Bytes(original));
    const auto info_a = enc_a.process(*copy_a);
    const auto info_b = enc_b.process(*copy_b);
    ASSERT_EQ(info_a.encoded, info_b.encoded);
    ASSERT_EQ(copy_a->payload, copy_b->payload);
    encoded_packets += info_a.encoded ? 1 : 0;
    const auto dinfo = dec.process(*copy_a);
    ASSERT_FALSE(core::is_drop(dinfo.status));
    ASSERT_EQ(copy_a->payload, original);
  }
  EXPECT_GT(encoded_packets, 0u);  // the stream must exercise encoding
  enc_a.audit();
  dec.audit();
}

// ------------------------------------------------------ eviction purge --

/// Counts fingerprint entries whose packet is gone, independent of the
/// build's BC_AUDIT setting (the audit() form is a no-op in plain
/// Release).
template <typename CacheLike>  // ByteCache or the CacheTier facade
std::size_t stale_entries(const CacheLike& cache) {
  std::size_t stale = 0;
  cache.table().for_each(
      [&](rabin::Fingerprint, const cache::FpEntry& entry) {
        if (cache.store().peek(entry.packet_id) == nullptr) ++stale;
      });
  return stale;
}

TEST(EvictionPurge, NoStaleEntriesUnderChurn) {
  const rabin::RabinTables tables(16);
  cache::ByteCache cache(
      cache::CacheConfig{.l1_bytes = 8 * 1024});  // constant eviction
  Rng rng(testutil::test_seed(108));
  for (int i = 0; i < 400; ++i) {
    const Bytes payload = random_bytes(rng, rng.uniform(64, 1460));
    const auto anchors = rabin::selected_anchors(tables, payload, 4);
    cache::PacketMeta meta;
    meta.stream_index = static_cast<std::uint64_t>(i);
    cache.update(payload, anchors, meta);
    ASSERT_EQ(stale_entries(cache), 0u) << "after update " << i;
  }
  EXPECT_GT(cache.store().evictions(), 0u);
  EXPECT_GT(cache.stats().fingerprints_purged, 0u);
  EXPECT_EQ(cache.stats().stale_hits, 0u);
  cache.audit();  // BC_AUDIT asserts stale == 0 in audit-enabled builds
}

TEST(EvictionPurge, BoundedEncoderDecoderStayInSync) {
  core::DreParams params;
  cache::CacheConfig cc;
  cc.l1_bytes = 64 * 1024;  // far smaller than the stream
  auto enc = test_encoder(core::PolicyKind::kNaive, params, cc);
  core::Decoder dec{params, cc};
  Rng rng(testutil::test_seed(109));
  Bytes object;
  const Bytes chunk = random_bytes(rng, 4000);
  for (int i = 0; i < 80; ++i) {
    const Bytes noise = random_bytes(rng, rng.uniform(100, 3000));
    object.insert(object.end(), noise.begin(), noise.end());
    object.insert(object.end(), chunk.begin(), chunk.end());
  }
  for (const auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    enc.process(*pkt);
    const auto dinfo = dec.process(*pkt);
    ASSERT_FALSE(core::is_drop(dinfo.status));
    ASSERT_EQ(pkt->payload, original);
  }
  EXPECT_GT(enc.cache().store().evictions(), 0u);
  EXPECT_EQ(stale_entries(enc.cache()), 0u);
  EXPECT_EQ(stale_entries(dec.cache()), 0u);
  enc.audit();
  dec.audit();
}

}  // namespace
}  // namespace bytecache
