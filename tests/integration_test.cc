// Full-system integration tests reproducing the paper's core phenomena:
//   - Section IV: the naive encoder stalls TCP after a single loss;
//   - Section V: all three robust encoders survive loss;
//   - Section VI/VII: byte savings persist under loss, perceived loss
//     ordering (TcpSeq > CacheFlush), delays grow with loss.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/generators.h"

namespace bytecache::harness {
namespace {

using util::Bytes;
using util::Rng;

ExperimentConfig base_config(core::PolicyKind policy, double loss,
                             std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.policy = policy;
  cfg.loss_rate = loss;
  cfg.seed = seed;
  cfg.trials = 1;
  return cfg;
}

const Bytes& file1() {
  static const Bytes f = [] {
    Rng rng(101);
    return workload::make_file1(rng, 587'567);
  }();
  return f;
}

TEST(Integration, NaiveStallsAfterSingleLoss) {
  // Paper Fig. 6: with 1% loss, 49/50 naive transfers stall.  With any
  // loss at all, the first lost data packet wedges the connection.
  int stalls = 0;
  const int runs = 10;
  for (int i = 0; i < runs; ++i) {
    auto r = run_trial(base_config(core::PolicyKind::kNaive, 0.01),
                       file1(), 100 + i);
    if (r.stalled) ++stalls;
    EXPECT_TRUE(r.verified);  // what was delivered must still be correct
  }
  EXPECT_GE(stalls, runs - 2);  // occasionally a run survives by luck
}

TEST(Integration, NaiveCompletesWithoutLoss) {
  auto r = run_trial(base_config(core::PolicyKind::kNaive, 0.0), file1(), 1);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST(Integration, NaivePartialRetrievalMatchesLossReciprocal) {
  // Paper Section IV-C: at 1% loss the client retrieves on the order of
  // 1/p packets (~146 KB) before the stall.
  Summary retrieved;
  for (int i = 0; i < 12; ++i) {
    auto r = run_trial(base_config(core::PolicyKind::kNaive, 0.01),
                       file1(), 200 + i);
    retrieved.add(r.percent_retrieved);
  }
  EXPECT_GT(retrieved.mean(), 5.0);
  EXPECT_LT(retrieved.mean(), 70.0);
}

TEST(Integration, RobustPoliciesSurviveModerateLoss) {
  for (auto kind : {core::PolicyKind::kCacheFlush, core::PolicyKind::kTcpSeq,
                    core::PolicyKind::kKDistance,
                    core::PolicyKind::kAdaptive}) {
    for (double loss : {0.01, 0.05}) {
      auto r = run_trial(base_config(kind, loss), file1(), 33);
      EXPECT_TRUE(r.completed)
          << core::to_string(kind) << " at loss " << loss;
      EXPECT_TRUE(r.verified) << core::to_string(kind);
    }
  }
}

TEST(Integration, RobustPoliciesSurviveHeavyLoss) {
  Rng rng(102);
  const Bytes small = workload::make_file1(rng, 100'000);
  for (auto kind : {core::PolicyKind::kCacheFlush, core::PolicyKind::kTcpSeq,
                    core::PolicyKind::kKDistance}) {
    auto cfg = base_config(kind, 0.10);
    auto r = run_trial(cfg, small, 44);
    EXPECT_TRUE(r.completed) << core::to_string(kind);
    EXPECT_TRUE(r.verified) << core::to_string(kind);
  }
}

TEST(Integration, ByteSavingsAtZeroLoss) {
  // Paper Section VI: "In the absence of packet loss, data redundancy
  // elimination can reduce the number of sent bytes by 45%".
  auto point = run_ratio_point(base_config(core::PolicyKind::kCacheFlush, 0.0),
                               file1());
  EXPECT_LT(point.bytes_ratio, 0.75);
  EXPECT_GT(point.bytes_ratio, 0.35);
}

TEST(Integration, DelayReductionAtZeroLoss) {
  // Paper: "and the download time by 28%".
  auto point = run_ratio_point(base_config(core::PolicyKind::kCacheFlush, 0.0),
                               file1());
  EXPECT_LT(point.delay_ratio, 1.0);
  EXPECT_GT(point.delay_ratio, 0.4);
}

TEST(Integration, ByteSavingsPersistUnderTenPercentLoss) {
  // Paper: "the new encoding algorithms ... can offer byte savings even
  // with 10% packet loss".
  ExperimentConfig cfg = base_config(core::PolicyKind::kCacheFlush, 0.10);
  cfg.trials = 3;
  auto point = run_ratio_point(cfg, file1());
  EXPECT_LT(point.bytes_ratio, 1.0);
}

TEST(Integration, LossInflatesDelayRatio) {
  // Paper: 2% loss can double the download time vs no-DRE at equal loss.
  ExperimentConfig clean = base_config(core::PolicyKind::kTcpSeq, 0.0);
  clean.trials = 2;
  ExperimentConfig lossy = base_config(core::PolicyKind::kTcpSeq, 0.02);
  lossy.trials = 2;
  auto p0 = run_ratio_point(clean, file1());
  auto p2 = run_ratio_point(lossy, file1());
  EXPECT_LT(p0.delay_ratio, 1.0);
  EXPECT_GT(p2.delay_ratio, 1.0);
}

TEST(Integration, PerceivedLossExceedsActualWithDre) {
  ExperimentConfig cfg = base_config(core::PolicyKind::kTcpSeq, 0.05);
  cfg.trials = 3;
  auto agg = run_experiment(cfg, file1());
  EXPECT_GT(agg.perceived_loss.mean(), agg.actual_loss.mean() * 1.3);
}

TEST(Integration, TcpSeqPerceivedLossExceedsCacheFlush) {
  // Paper Fig. 13: the aggressive TcpSeq scheme suffers a markedly higher
  // perceived loss rate than CacheFlush.
  ExperimentConfig flush = base_config(core::PolicyKind::kCacheFlush, 0.05);
  flush.trials = 10;
  ExperimentConfig tcpseq = base_config(core::PolicyKind::kTcpSeq, 0.05);
  tcpseq.trials = 10;
  auto a = run_experiment(flush, file1());
  auto b = run_experiment(tcpseq, file1());
  EXPECT_GT(b.perceived_loss.mean(), a.perceived_loss.mean() * 0.95);
}

TEST(Integration, WithoutDrePerceivedEqualsActual) {
  ExperimentConfig cfg = base_config(core::PolicyKind::kNone, 0.05);
  cfg.trials = 2;
  auto agg = run_experiment(cfg, file1());
  EXPECT_NEAR(agg.perceived_loss.mean(), agg.actual_loss.mean(), 1e-9);
}

TEST(Integration, CorruptionHandledLikeLoss) {
  ExperimentConfig cfg = base_config(core::PolicyKind::kCacheFlush, 0.0);
  cfg.forward_link.corrupt_prob = 0.02;
  auto r = run_trial(cfg, file1(), 55);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.corrupted, 0u);
  EXPECT_GT(r.perceived_loss, 0.0);
}

TEST(Integration, NaiveSuffersFromReorderingAlone) {
  // Paper Section IV: "a packet corruption, a packet loss or a re-ordered
  // packet – all events which occur in the Internet – can result in cache
  // desynchronization ... and ultimately circular dependencies".  With
  // reordering as the ONLY impairment, the naive encoder must exhibit
  // undecodable packets, and usually wedges.
  int impaired = 0;
  for (int i = 0; i < 5; ++i) {
    ExperimentConfig cfg = base_config(core::PolicyKind::kNaive, 0.0);
    cfg.forward_link.reorder_prob = 0.05;
    cfg.forward_link.reorder_extra_delay = sim::ms(4);
    auto r = run_trial(cfg, file1(), 600 + i);
    EXPECT_TRUE(r.verified);
    if (r.stalled || r.decoder_drops > 0) ++impaired;
  }
  EXPECT_GE(impaired, 4);
}

TEST(Integration, NaiveSuffersFromCorruptionAlone) {
  int impaired = 0;
  for (int i = 0; i < 5; ++i) {
    ExperimentConfig cfg = base_config(core::PolicyKind::kNaive, 0.0);
    cfg.forward_link.corrupt_prob = 0.01;
    auto r = run_trial(cfg, file1(), 700 + i);
    EXPECT_TRUE(r.verified);  // never wrong bytes, even when corrupted
    if (r.stalled || r.decoder_drops > 0) ++impaired;
  }
  EXPECT_GE(impaired, 4);
}

TEST(Integration, RobustPoliciesShrugOffReorderingAndCorruption) {
  for (auto kind : {core::PolicyKind::kCacheFlush,
                    core::PolicyKind::kKDistance}) {
    ExperimentConfig cfg = base_config(kind, 0.0);
    cfg.forward_link.reorder_prob = 0.03;
    cfg.forward_link.corrupt_prob = 0.01;
    auto r = run_trial(cfg, file1(), 800);
    EXPECT_TRUE(r.completed) << core::to_string(kind);
    EXPECT_TRUE(r.verified) << core::to_string(kind);
  }
}

TEST(Integration, ReorderingSurvivedByRobustPolicies) {
  ExperimentConfig cfg = base_config(core::PolicyKind::kCacheFlush, 0.0);
  cfg.forward_link.reorder_prob = 0.05;
  cfg.forward_link.reorder_extra_delay = sim::ms(4);
  auto r = run_trial(cfg, file1(), 66);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST(Integration, BurstyLossSurvived) {
  ExperimentConfig cfg = base_config(core::PolicyKind::kKDistance, 0.05);
  cfg.bursty_loss = true;
  Rng rng(103);
  const Bytes small = workload::make_file1(rng, 150'000);
  auto r = run_trial(cfg, small, 77);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST(Integration, DeterministicTrials) {
  auto a = run_trial(base_config(core::PolicyKind::kCacheFlush, 0.05),
                     file1(), 999);
  auto b = run_trial(base_config(core::PolicyKind::kCacheFlush, 0.05),
                     file1(), 999);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.wire_bytes_forward, b.wire_bytes_forward);
  EXPECT_EQ(a.tcp_retransmissions, b.tcp_retransmissions);
}

}  // namespace
}  // namespace bytecache::harness
