// Unit tests for the resilience layer (DESIGN.md §9): the perceived-loss
// estimator, the degradation controller, the epoch synchronizer, the
// decoder's epoch enforcement, the encoder's resync handling, the
// resilient policy ladder, and control-message routing through the
// (sharded) gateways.
#include <gtest/gtest.h>

#include "core/control.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "core/flow.h"
#include "core/policies.h"
#include "gateway/gateways.h"
#include "gateway/sharded_gateways.h"
#include "resilience/degradation.h"
#include "resilience/epoch_sync.h"
#include "resilience/perceived_loss.h"
#include "tests/testutil.h"

namespace bytecache {
namespace {

using resilience::DegradationConfig;
using resilience::DegradationController;
using resilience::DegradationLevel;
using resilience::EpochSyncConfig;
using resilience::EpochSynchronizer;
using resilience::LossEstimatorConfig;
using resilience::PerceivedLossEstimator;

// ------------------------------------------------------------ epoch math --

TEST(EpochMath, NewerAndDistanceBasics) {
  EXPECT_TRUE(resilience::epoch_newer(1, 0));
  EXPECT_FALSE(resilience::epoch_newer(0, 1));
  EXPECT_FALSE(resilience::epoch_newer(5, 5));
  EXPECT_EQ(resilience::epoch_distance(7, 4), 3);
  EXPECT_EQ(resilience::epoch_distance(4, 4), 0);
}

TEST(EpochMath, WrapsAroundSixteenBits) {
  // 2 is three bumps after 0xFFFF on the 16-bit circle.
  EXPECT_TRUE(resilience::epoch_newer(2, 0xFFFF));
  EXPECT_FALSE(resilience::epoch_newer(0xFFFF, 2));
  EXPECT_EQ(resilience::epoch_distance(2, 0xFFFF), 3);
  // Half the circle away is "older", by convention of serial arithmetic.
  EXPECT_FALSE(resilience::epoch_newer(0x8000, 0));
}

// ------------------------------------------------------------- estimator --

TEST(PerceivedLoss, StartsAtZero) {
  PerceivedLossEstimator est;
  EXPECT_EQ(est.loss(42), 0.0);
  EXPECT_EQ(est.max_loss(), 0.0);
  EXPECT_EQ(est.flows(), 0u);
  EXPECT_EQ(est.flow(42), nullptr);
}

TEST(PerceivedLoss, ConvergesNearTheDropFraction) {
  PerceivedLossEstimator est(LossEstimatorConfig{.alpha = 0.05});
  // 10% of offered packets are later reported dropped.  The estimator
  // sees both the success sample and the failure sample for a dropped
  // packet, so it converges to p/(1+p) = 0.0909..., not p.
  for (int i = 0; i < 5000; ++i) {
    est.on_offered(1);
    if (i % 10 == 0) est.on_channel_drop(1);
  }
  EXPECT_NEAR(est.loss(1), 0.1 / 1.1, 0.03);
  EXPECT_EQ(est.max_loss(), est.loss(1));
  est.audit();
}

TEST(PerceivedLoss, FlowsAreIsolated) {
  PerceivedLossEstimator est;
  for (int i = 0; i < 200; ++i) {
    est.on_offered(1);
    est.on_offered(2);
    est.on_undecodable(2);
  }
  EXPECT_LT(est.loss(1), 0.01);
  EXPECT_GT(est.loss(2), 0.3);
  EXPECT_EQ(est.max_loss(), est.loss(2));
  EXPECT_EQ(est.flows(), 2u);
  est.audit();
}

TEST(PerceivedLoss, CountsAndFlowState) {
  PerceivedLossEstimator est;
  est.on_offered(7);
  est.on_channel_drop(7);
  est.on_undecodable(7, 3);
  EXPECT_EQ(est.total_offered(), 1u);
  EXPECT_EQ(est.total_channel_drops(), 1u);
  EXPECT_EQ(est.total_undecodable(), 3u);
  const resilience::FlowLossState* f = est.flow(7);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->offered, 1u);
  EXPECT_EQ(f->channel_drops, 1u);
  EXPECT_EQ(f->undecodable, 3u);
  est.audit();
}

// ------------------------------------------------------------ controller --

DegradationConfig quick_config() {
  DegradationConfig cfg;
  cfg.dwell_packets = 8;
  return cfg;
}

TEST(Degradation, StartsAtKDistance) {
  DegradationController c;
  EXPECT_EQ(c.level(), DegradationLevel::kKDistance);
  EXPECT_EQ(c.transitions(), 0u);
}

TEST(Degradation, WalksTheFullLadderUnderHeavyLoss) {
  DegradationController c(quick_config());
  for (int i = 0; i < 200; ++i) c.on_sample(0.5);
  EXPECT_EQ(c.level(), DegradationLevel::kPassthrough);
  EXPECT_EQ(c.degrades(), 4u);  // five rungs, one stop on each
  // Pass-through is the last rung; heavy loss cannot push further.
  for (int i = 0; i < 50; ++i) c.on_sample(0.9);
  EXPECT_EQ(c.level(), DegradationLevel::kPassthrough);
  c.audit();
}

TEST(Degradation, DisabledCodedRungIsSkippedBothDirections) {
  DegradationConfig cfg = quick_config();
  cfg.coded_rung = false;
  DegradationController c(cfg);
  // Down: the walk never lands on kCodedRepair — exactly the historical
  // four-level ladder (three degrades to the bottom).
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(c.on_sample(0.5), DegradationLevel::kCodedRepair);
  }
  EXPECT_EQ(c.level(), DegradationLevel::kPassthrough);
  EXPECT_EQ(c.degrades(), 3u);
  // Up: recovery steps over the disabled rung too.
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(c.on_sample(0.0), DegradationLevel::kCodedRepair);
  }
  EXPECT_EQ(c.level(), DegradationLevel::kKDistance);
  EXPECT_EQ(c.upgrades(), 3u);
  c.audit();
}

TEST(Degradation, CodedRungSitsBetweenTcpSeqAndCacheFlush) {
  DegradationConfig cfg = quick_config();
  DegradationController c(cfg);
  // Loss above TCP-seq's threshold but below the coded rung's parks the
  // controller on coded repair.
  for (int i = 0; i < 200; ++i) c.on_sample(0.08);
  EXPECT_EQ(c.level(), DegradationLevel::kCodedRepair);
  // Past the coded threshold: repairs can no longer mask it.
  for (int i = 0; i < 50; ++i) c.on_sample(0.2);
  EXPECT_EQ(c.level(), DegradationLevel::kCacheFlush);
  c.audit();
}

TEST(Degradation, UpgradesWithHysteresis) {
  DegradationConfig cfg = quick_config();
  DegradationController c(cfg);
  for (int i = 0; i < 50; ++i) c.on_sample(0.03);  // above 0.015
  EXPECT_EQ(c.level(), DegradationLevel::kTcpSeq);
  // Loss inside the hysteresis band: below the degrade threshold but not
  // below degrade_above[0] * upgrade_fraction -> stays put.
  for (int i = 0; i < 50; ++i) c.on_sample(0.010);
  EXPECT_EQ(c.level(), DegradationLevel::kTcpSeq);
  // Clearly recovered -> upgrades back.
  for (int i = 0; i < 50; ++i) c.on_sample(0.001);
  EXPECT_EQ(c.level(), DegradationLevel::kKDistance);
  EXPECT_EQ(c.upgrades(), 1u);
  c.audit();
}

TEST(Degradation, DwellBoundsTransitionRate) {
  DegradationConfig cfg = quick_config();
  cfg.dwell_packets = 16;
  DegradationController c(cfg);
  // Adversarial see-saw input: alternate extreme samples every packet.
  for (int i = 0; i < 320; ++i) c.on_sample(i % 2 == 0 ? 0.9 : 0.0);
  EXPECT_LE(c.transitions(), 320u / 16u);
  c.audit();
}

// ---------------------------------------------------------- synchronizer --

EpochSyncConfig tight_sync() {
  EpochSyncConfig cfg;
  cfg.resync_after = 3;
  cfg.backoff_initial_drops = 4;
  cfg.backoff_max_drops = 16;
  cfg.max_retries = 2;
  return cfg;
}

TEST(EpochSync, ArmsAfterConsecutiveUndecodable) {
  EpochSynchronizer s(tight_sync());
  EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_TRUE(s.on_undecodable(0));  // third in a row
  EXPECT_EQ(s.requests(), 1u);
}

TEST(EpochSync, ProgressResetsTheRun) {
  EpochSynchronizer s(tight_sync());
  EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_FALSE(s.on_undecodable(0));
  s.on_progress();  // a decode succeeded; not a desync
  EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_TRUE(s.on_undecodable(0));
}

TEST(EpochSync, BackoffDoublesBetweenRequests) {
  EpochSyncConfig cfg = tight_sync();
  cfg.max_retries = 100;
  EpochSynchronizer s(cfg);
  for (int i = 0; i < 3; ++i) (void)s.on_undecodable(0);
  EXPECT_EQ(s.requests(), 1u);
  // Still undecodable, but inside the 4-drop cooldown: suppressed.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_GT(s.suppressed(), 0u);
  EXPECT_TRUE(s.on_undecodable(0));  // cooldown elapsed, run still >= 3
  EXPECT_EQ(s.requests(), 2u);
  // Second backoff is 8 drops: 7 more suppressions, then the request.
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_TRUE(s.on_undecodable(0));
  EXPECT_EQ(s.requests(), 3u);
  s.audit();
}

TEST(EpochSync, RetryBudgetExhaustsAndRefillsOnAdoption) {
  EpochSynchronizer s(tight_sync());  // max_retries = 2
  for (int i = 0; i < 3; ++i) (void)s.on_undecodable(0);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(s.on_undecodable(0));
  EXPECT_TRUE(s.on_undecodable(0));
  EXPECT_EQ(s.retries_used(), 2u);
  // Budget spent: no amount of further drops yields another request.
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(s.on_undecodable(0));
  // The encoder's flush arrived: budget refills.
  s.on_epoch_adopted();
  EXPECT_EQ(s.retries_used(), 0u);
  for (int i = 0; i < 2; ++i) (void)s.on_undecodable(0);
  EXPECT_TRUE(s.on_undecodable(0));
  s.audit();
}

TEST(EpochSync, FailingEpochChangeStartsAFreshEpisode) {
  EpochSynchronizer s(tight_sync());  // max_retries = 2
  // Episode at epoch 0: request sent, then suppressed inside cooldown.
  for (int i = 0; i < 3; ++i) (void)s.on_undecodable(0);
  EXPECT_EQ(s.requests(), 1u);
  EXPECT_FALSE(s.on_undecodable(0));
  // Drops start failing at epoch 1 (the fresh epoch got re-poisoned, e.g.
  // its first packet was lost): the schedule restarts — no leftover
  // cooldown, but the consecutive-run arming starts over too.
  EXPECT_FALSE(s.on_undecodable(1));
  EXPECT_FALSE(s.on_undecodable(1));
  EXPECT_TRUE(s.on_undecodable(1));
  EXPECT_EQ(s.requests(), 2u);
  // The retry budget is NOT per-episode: it still bounds total begging
  // between adoptions.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(s.on_undecodable(2));
  EXPECT_EQ(s.requests(), 2u);
  s.audit();
}

// ------------------------------------------------------ control messages --

TEST(ControlMessages, NackRoundTrip) {
  core::ControlMessage m;
  m.type = core::ControlMessage::Type::kNack;
  m.fingerprints = {0x1111222233334444ull, 0xAAAABBBBCCCCDDDDull};
  auto p = core::ControlMessage::parse(m.serialize());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->type, core::ControlMessage::Type::kNack);
  EXPECT_EQ(p->fingerprints, m.fingerprints);
}

TEST(ControlMessages, ResyncRequestRoundTrip) {
  core::ControlMessage m;
  m.type = core::ControlMessage::Type::kResyncRequest;
  m.epoch = 0xBEEF;
  auto p = core::ControlMessage::parse(m.serialize());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->type, core::ControlMessage::Type::kResyncRequest);
  EXPECT_EQ(p->epoch, 0xBEEF);
}

TEST(ControlMessages, LossReportRoundTrip) {
  core::ControlMessage m;
  m.type = core::ControlMessage::Type::kLossReport;
  m.host_key = 0x0123456789ABCDEFull;
  m.count = 7;
  auto p = core::ControlMessage::parse(m.serialize());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->type, core::ControlMessage::Type::kLossReport);
  EXPECT_EQ(p->host_key, 0x0123456789ABCDEFull);
  EXPECT_EQ(p->count, 7);
}

TEST(ControlMessages, ParseRejectsWrongSizesAndTypes) {
  core::ControlMessage m;
  m.type = core::ControlMessage::Type::kLossReport;
  util::Bytes wire = m.serialize();
  wire.push_back(0);  // one byte too many for the claimed type
  EXPECT_FALSE(core::ControlMessage::parse(wire).has_value());
  wire = m.serialize();
  wire.pop_back();
  EXPECT_FALSE(core::ControlMessage::parse(wire).has_value());
  wire = m.serialize();
  wire[1] = 99;  // unknown type
  EXPECT_FALSE(core::ControlMessage::parse(wire).has_value());
  EXPECT_FALSE(core::ControlMessage::parse({}).has_value());
}

// ----------------------------------------------------- codec epoch tests --

core::DreParams resync_params() {
  core::DreParams p;
  p.epoch_resync = true;
  p.epoch_sync = tight_sync();
  return p;
}

/// Clones a (possibly encoded) packet so it can be replayed.
packet::PacketPtr clone(const packet::Packet& pkt) {
  auto p = packet::make_packet(pkt.ip.src, pkt.ip.dst,
                               static_cast<packet::IpProto>(pkt.ip.protocol),
                               util::Bytes(pkt.payload));
  return p;
}

/// A pair of similar payloads: processing `first` warms the cache so
/// `second` encodes against it.
struct SimilarPair {
  util::Bytes first;
  util::Bytes second;
};

SimilarPair similar_payloads(std::uint64_t seed) {
  util::Rng rng(seed);
  SimilarPair p;
  p.first = testutil::random_bytes(rng, 1000);
  p.second = p.first;  // fully redundant after the prefix
  for (int i = 0; i < 20; ++i) {
    p.second[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  return p;
}

TEST(CodecEpoch, EncoderEmitsV1WithoutResyncAndV2WithIt) {
  const SimilarPair pair = similar_payloads(1);
  for (const bool resync : {false, true}) {
    core::DreParams params;
    params.epoch_resync = resync;
    core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                                params));
    auto a = testutil::make_tcp_packet(pair.first, 1000);
    auto b = testutil::make_tcp_packet(pair.second, 3000);
    (void)enc.process(*a);
    const core::EncodeInfo info = enc.process(*b);
    ASSERT_TRUE(info.encoded);
    EXPECT_EQ(b->payload[0], resync ? core::kShimMagicV2 : core::kShimMagic);
    auto parsed = core::EncodedPayload::parse(b->payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->version, resync ? core::kWireVersion2 : 1);
  }
}

TEST(CodecEpoch, DecoderAdoptsVerifiedEpochAndDropsStalePackets) {
  const core::DreParams params = resync_params();
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  core::Decoder dec(params);

  const SimilarPair pair = similar_payloads(2);
  auto a = testutil::make_tcp_packet(pair.first, 1000);
  auto b = testutil::make_tcp_packet(pair.second, 3000);
  (void)enc.process(*a);
  ASSERT_TRUE(enc.process(*b).encoded);
  auto stale = clone(*b);  // epoch-0 encoding, replayed later

  EXPECT_EQ(dec.process(*a).status, core::DecodeStatus::kPassthrough);
  EXPECT_EQ(dec.process(*b).status, core::DecodeStatus::kDecoded);
  EXPECT_EQ(dec.epoch(), 0);

  // The encoder flushes twice; its next encoding carries epoch 2.
  enc.flush();
  enc.flush();
  const SimilarPair pair2 = similar_payloads(3);
  auto c = testutil::make_tcp_packet(pair2.first, 5000);
  auto d = testutil::make_tcp_packet(pair2.second, 7000);
  (void)enc.process(*c);
  ASSERT_TRUE(enc.process(*d).encoded);
  EXPECT_EQ(dec.process(*c).status, core::DecodeStatus::kPassthrough);
  EXPECT_EQ(dec.process(*d).status, core::DecodeStatus::kDecoded);
  EXPECT_EQ(dec.epoch(), 2);
  EXPECT_EQ(dec.stats().epoch_adoptions, 1u);

  // The leftover epoch-0 encoding is now a stale packet.
  EXPECT_EQ(dec.process(*stale).status, core::DecodeStatus::kStaleEpoch);
  EXPECT_EQ(dec.stats().drops_stale_epoch, 1u);
  dec.audit();
}

TEST(CodecEpoch, StaleReferenceIsRejectedNotCrcGambled) {
  const core::DreParams params = resync_params();
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  core::Decoder dec(params);

  // Cache a/b at epoch 0 on both sides, then advance the decoder's
  // ADOPTED epoch to 2 via a verified double-flush encoding.
  const SimilarPair pair = similar_payloads(4);
  auto a = testutil::make_tcp_packet(pair.first, 1000);
  auto b = testutil::make_tcp_packet(pair.second, 3000);
  (void)enc.process(*a);
  ASSERT_TRUE(enc.process(*b).encoded);
  EXPECT_EQ(dec.process(*a).status, core::DecodeStatus::kPassthrough);
  auto replay = clone(*b);  // epoch-0 encoding referencing a, for later
  EXPECT_EQ(dec.process(*b).status, core::DecodeStatus::kDecoded);
  enc.flush();
  enc.flush();
  const SimilarPair pair2 = similar_payloads(14);
  auto c = testutil::make_tcp_packet(pair2.first, 5000);
  auto d = testutil::make_tcp_packet(pair2.second, 7000);
  (void)enc.process(*c);
  ASSERT_TRUE(enc.process(*d).encoded);
  EXPECT_EQ(dec.process(*c).status, core::DecodeStatus::kPassthrough);
  EXPECT_EQ(dec.process(*d).status, core::DecodeStatus::kDecoded);
  ASSERT_EQ(dec.epoch(), 2);

  // A forged current-epoch encoding referencing the entry cached two
  // adopted flushes ago must be rejected even though the referenced bytes
  // are still in the decoder's cache and reconstruction would CRC-pass:
  // the encoder provably flushed that entry away, so using it is a
  // silent-corruption gamble.
  auto forged = core::EncodedPayload::parse(replay->payload);
  ASSERT_TRUE(forged.has_value());
  forged->epoch = 2;
  auto fpkt = packet::make_packet(replay->ip.src, replay->ip.dst,
                                  packet::IpProto::kDre, forged->serialize());
  const core::DecodeInfo info = dec.process(*fpkt);
  EXPECT_EQ(info.status, core::DecodeStatus::kStaleReference);
  EXPECT_NE(info.missing_fp, 0u);
  EXPECT_EQ(dec.stats().drops_stale_ref, 1u);
  dec.audit();
}

TEST(CodecEpoch, ImplausibleEpochJumpDeliversBytesButIsNotAdopted) {
  const core::DreParams params = resync_params();
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  core::Decoder dec(params);

  const SimilarPair pair = similar_payloads(15);
  auto a = testutil::make_tcp_packet(pair.first, 1000);
  auto b = testutil::make_tcp_packet(pair.second, 3000);
  (void)enc.process(*a);
  ASSERT_TRUE(enc.process(*b).encoded);
  EXPECT_EQ(dec.process(*a).status, core::DecodeStatus::kPassthrough);
  auto replay = clone(*b);
  EXPECT_EQ(dec.process(*b).status, core::DecodeStatus::kDecoded);
  ASSERT_EQ(dec.epoch(), 0);

  // The payload CRC does not cover the shim, so a bit flip in the epoch
  // field survives verification.  Simulate one: a far-future epoch on an
  // otherwise-valid packet.  The bytes must still be delivered (they are
  // provably correct), but the garbage epoch must NOT be adopted — else
  // all legitimate epoch-0 traffic would be stale-dropped until the
  // encoder's epoch caught up, thousands of flushes later.
  auto forged = core::EncodedPayload::parse(replay->payload);
  ASSERT_TRUE(forged.has_value());
  forged->epoch = 0x4000;  // far beyond adopt_window
  auto fpkt = packet::make_packet(replay->ip.src, replay->ip.dst,
                                  packet::IpProto::kDre, forged->serialize());
  EXPECT_EQ(dec.process(*fpkt).status, core::DecodeStatus::kDecoded);
  EXPECT_EQ(dec.epoch(), 0);
  EXPECT_EQ(dec.stats().epoch_rejections, 1u);

  // Legitimate epoch-0 traffic keeps decoding: no poisoning.
  auto replay2 = clone(*replay);
  EXPECT_EQ(dec.process(*replay2).status, core::DecodeStatus::kDecoded);
  EXPECT_EQ(dec.stats().drops_stale_epoch, 0u);
  dec.audit();
}

TEST(CodecEpoch, ResyncSignalCarriesTheFailingEpochAndEncoderHonorsIt) {
  const core::DreParams params = resync_params();
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  core::Decoder dec(params);

  const SimilarPair pair = similar_payloads(5);
  auto a = testutil::make_tcp_packet(pair.first, 1000);
  auto b = testutil::make_tcp_packet(pair.second, 3000);
  (void)enc.process(*a);  // "lost": never delivered to the decoder
  ASSERT_TRUE(enc.process(*b).encoded);

  // Replaying the undecodable encoding simulates TCP retransmitting into
  // a desynchronized cache.  After resync_after consecutive drops the
  // decoder asks for a resync naming the failing packet's epoch.
  core::DecodeInfo info;
  for (std::uint32_t i = 0; i < params.epoch_sync.resync_after; ++i) {
    auto copy = clone(*b);
    info = dec.process(*copy);
    EXPECT_EQ(info.status, core::DecodeStatus::kMissingFingerprint);
  }
  EXPECT_TRUE(info.resync);
  EXPECT_EQ(info.resync_epoch, 0);
  EXPECT_EQ(dec.stats().resync_signals, 1u);

  // A stale request (wrong epoch) is counted but not honored...
  enc.on_resync_request(42);
  EXPECT_EQ(enc.stats().flushes, 0u);
  // ...the decoder's real request is.
  enc.on_resync_request(info.resync_epoch);
  EXPECT_EQ(enc.epoch(), 1);
  EXPECT_EQ(enc.stats().flushes, 1u);
  EXPECT_EQ(enc.stats().resyncs_honored, 1u);
  EXPECT_EQ(enc.stats().resync_requests, 2u);
  enc.audit();

  // Post-flush traffic decodes again: the loop is broken.
  const SimilarPair pair2 = similar_payloads(6);
  auto c = testutil::make_tcp_packet(pair2.first, 5000);
  auto d = testutil::make_tcp_packet(pair2.second, 7000);
  (void)enc.process(*c);
  ASSERT_TRUE(enc.process(*d).encoded);
  EXPECT_EQ(dec.process(*c).status, core::DecodeStatus::kPassthrough);
  EXPECT_EQ(dec.process(*d).status, core::DecodeStatus::kDecoded);
  EXPECT_EQ(dec.epoch(), 1);
  dec.audit();
}

TEST(CodecEpoch, RestoredDecoderReAdoptsFromTraffic) {
  const core::DreParams params = resync_params();
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  core::Decoder dec(params);

  const SimilarPair pair = similar_payloads(7);
  auto a = testutil::make_tcp_packet(pair.first, 1000);
  auto b = testutil::make_tcp_packet(pair.second, 3000);
  (void)enc.process(*a);
  ASSERT_TRUE(enc.process(*b).encoded);
  EXPECT_EQ(dec.process(*a).status, core::DecodeStatus::kPassthrough);
  EXPECT_EQ(dec.process(*b).status, core::DecodeStatus::kDecoded);

  // Snapshot/restore drops the adopted epoch by design.
  const util::Bytes snap = dec.save_state();
  core::Decoder dec2(params);
  ASSERT_TRUE(dec2.load_state(snap));
  EXPECT_EQ(dec2.epoch(), 0);

  const SimilarPair pair2 = similar_payloads(8);
  auto c = testutil::make_tcp_packet(pair2.first, 5000);
  auto d = testutil::make_tcp_packet(pair2.second, 7000);
  (void)enc.process(*c);
  ASSERT_TRUE(enc.process(*d).encoded);
  EXPECT_EQ(dec2.process(*c).status, core::DecodeStatus::kPassthrough);
  EXPECT_EQ(dec2.process(*d).status, core::DecodeStatus::kDecoded);
  dec2.audit();
}

// ------------------------------------------------------ resilient policy --

TEST(ResilientPolicy, FactoryAndName) {
  EXPECT_EQ(core::policy_from_string("resilient"),
            core::PolicyKind::kResilient);
  EXPECT_EQ(core::to_string(core::PolicyKind::kResilient), "resilient");
  core::DreParams params;
  auto policy = core::make_policy(core::PolicyKind::kResilient, params);
  EXPECT_EQ(policy->name(), "resilient");
}

TEST(ResilientPolicy, DegradesToPassthroughUnderReportedLoss) {
  core::DreParams params;
  params.degradation.dwell_packets = 8;
  core::ResilientPolicy policy(params);
  const std::uint64_t host = core::host_key_of(1, 2);

  EXPECT_EQ(policy.worst_level(), DegradationLevel::kKDistance);

  core::PacketContext ctx;
  ctx.host_key = host;
  ctx.payload_size = 1000;
  // Heavy reported loss drives the pair down the whole ladder; at the
  // bottom rung the policy refuses to encode at all.
  core::PolicyDecision last;
  for (int i = 0; i < 400; ++i) {
    policy.estimator().on_undecodable(host);
    ctx.stream_index = static_cast<std::uint64_t>(i);
    last = policy.before_encode(ctx);
  }
  EXPECT_EQ(policy.level_of(host), DegradationLevel::kPassthrough);
  EXPECT_EQ(policy.worst_level(), DegradationLevel::kPassthrough);
  EXPECT_FALSE(last.allow_encode);
  EXPECT_GE(policy.transitions(), 3u);
  // An unrelated healthy pair still starts at the top.
  EXPECT_EQ(policy.level_of(core::host_key_of(3, 4)),
            DegradationLevel::kKDistance);
}

TEST(ResilientPolicy, HealthyFlowBehavesLikeKDistance) {
  core::DreParams params;
  params.k_distance = 4;
  core::ResilientPolicy policy(params);
  core::KDistancePolicy plain(params.k_distance);
  core::PacketContext ctx;
  ctx.host_key = core::host_key_of(1, 2);
  ctx.payload_size = 1000;
  // With zero loss the resilient policy's decisions match plain
  // k-distance packet for packet (same reference cadence).
  for (int i = 0; i < 40; ++i) {
    ctx.stream_index = static_cast<std::uint64_t>(i);
    const core::PolicyDecision a = policy.before_encode(ctx);
    const core::PolicyDecision b = plain.before_encode(ctx);
    EXPECT_EQ(a.allow_encode, b.allow_encode) << "packet " << i;
    EXPECT_EQ(a.is_reference, b.is_reference) << "packet " << i;
  }
}

// ------------------------------------------------------ gateway plumbing --

core::ControlMessage make_loss_report(std::uint32_t src, std::uint32_t dst) {
  core::ControlMessage m;
  m.type = core::ControlMessage::Type::kLossReport;
  m.host_key = core::host_key_of(src, dst);
  m.count = 1;
  return m;
}

TEST(GatewayResilience, EncoderGatewayDispatchesControlMessages) {
  core::GatewayConfig cfg;
  cfg.params = resync_params();
  cfg.policy = core::PolicyKind::kResilient;
  gateway::EncoderGateway gw(cfg);
  ASSERT_NE(gw.resilient(), nullptr);

  auto report = packet::make_packet(
      testutil::kDstIp, testutil::kSrcIp,
      static_cast<packet::IpProto>(core::kControlProto),
      make_loss_report(testutil::kSrcIp, testutil::kDstIp).serialize());
  gw.receive_control(*report);
  EXPECT_EQ(gw.stats().loss_reports, 1u);
  EXPECT_EQ(gw.resilient()->estimator().total_undecodable(), 1u);

  core::ControlMessage resync;
  resync.type = core::ControlMessage::Type::kResyncRequest;
  resync.epoch = 0;
  auto rpkt = packet::make_packet(
      testutil::kDstIp, testutil::kSrcIp,
      static_cast<packet::IpProto>(core::kControlProto), resync.serialize());
  gw.receive_control(*rpkt);
  EXPECT_EQ(gw.encoder()->stats().resyncs_honored, 1u);
  EXPECT_EQ(gw.encoder()->epoch(), 1);
}

TEST(GatewayResilience, ChannelDropsFeedTheEstimator) {
  core::GatewayConfig cfg;
  cfg.params = resync_params();
  cfg.policy = core::PolicyKind::kResilient;
  gateway::EncoderGateway gw(cfg);
  auto pkt = testutil::make_tcp_packet(util::Bytes(100, 'x'), 1000);
  gw.on_channel_drop(*pkt);
  gw.on_channel_drop(*pkt);
  EXPECT_EQ(gw.stats().channel_drops_seen, 2u);
  EXPECT_EQ(gw.resilient()->estimator().total_channel_drops(), 2u);
  EXPECT_GT(gw.resilient()->estimator().loss(
                core::host_key_of(pkt->ip.src, pkt->ip.dst)),
            0.0);
}

TEST(GatewayResilience, DecoderGatewayEmitsLossReportsAndResyncRequests) {
  core::DreParams params = resync_params();
  core::Encoder enc(params, core::make_policy(core::PolicyKind::kNaive,
                                              params));
  core::GatewayConfig cfg;
  cfg.params = params;
  gateway::DecoderGateway gw(cfg);
  std::vector<packet::PacketPtr> feedback;
  gw.set_feedback([&](packet::PacketPtr p) {
    feedback.push_back(std::move(p));
  });

  const SimilarPair pair = similar_payloads(9);
  auto a = testutil::make_tcp_packet(pair.first, 1000);
  auto b = testutil::make_tcp_packet(pair.second, 3000);
  (void)enc.process(*a);  // never delivered
  ASSERT_TRUE(enc.process(*b).encoded);

  for (std::uint32_t i = 0; i < params.epoch_sync.resync_after; ++i) {
    gw.receive(clone(*b));
  }
  EXPECT_EQ(gw.stats().dropped, params.epoch_sync.resync_after);
  EXPECT_EQ(gw.stats().loss_reports_sent, params.epoch_sync.resync_after);
  EXPECT_EQ(gw.stats().resyncs_sent, 1u);
  EXPECT_EQ(gw.stats().nacks_sent, 0u);  // nack_feedback is off

  // Every feedback packet is a parseable control message addressed back
  // to the encoder side (reverse of the data direction).
  std::size_t resyncs = 0;
  for (const auto& p : feedback) {
    EXPECT_EQ(p->ip.protocol, core::kControlProto);
    EXPECT_EQ(p->ip.src, testutil::kDstIp);
    EXPECT_EQ(p->ip.dst, testutil::kSrcIp);
    auto msg = core::ControlMessage::parse(p->payload);
    ASSERT_TRUE(msg.has_value());
    if (msg->type == core::ControlMessage::Type::kResyncRequest) ++resyncs;
  }
  EXPECT_EQ(resyncs, 1u);
}

TEST(GatewayResilience, LossReportsRouteToTheOwningShard) {
  core::GatewayConfig cfg;
  cfg.params = resync_params();
  cfg.policy = core::PolicyKind::kResilient;
  cfg.shards = 4;
  cfg.threaded = false;
  gateway::ShardedEncoderGateway gw(cfg);

  const std::uint32_t src = 0x0A000001, dst = 0x0A000101;
  auto report = packet::make_packet(
      dst, src, static_cast<packet::IpProto>(core::kControlProto),
      make_loss_report(src, dst).serialize());
  const std::size_t owner = gateway::shard_index_of(
      gateway::shard_key_of(*report), cfg.shards);
  gw.submit_control(std::move(report));

  for (std::size_t i = 0; i < cfg.shards; ++i) {
    const core::ResilientPolicy* rp = gw.shard(i).resilient();
    ASSERT_NE(rp, nullptr);
    EXPECT_EQ(rp->estimator().total_undecodable(), i == owner ? 1u : 0u)
        << "shard " << i;
  }
  // The shard key is the host key: control feedback and the data path
  // agree on ownership by construction.
  EXPECT_EQ(gateway::shard_key_of(*packet::make_packet(
                src, dst, packet::IpProto::kTcp, util::Bytes{})),
            core::host_key_of(src, dst));
}

}  // namespace
}  // namespace bytecache
