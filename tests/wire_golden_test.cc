// Golden wire vectors (ISSUE 4 satellite): byte-for-byte pinned copies of
// the v1 shim, the v2 shim, and each control message live in tests/data/.
// Any change to the serialized formats fails these tests loudly — wire
// drift must be an explicit decision (regenerate with BC_REGEN_GOLDEN=1),
// never an accident.  The v1 vectors also prove backward compatibility:
// a decoder with epoch_resync enabled must still decode pre-epoch traffic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "core/control.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "core/wire.h"
#include "fec/decoder.h"
#include "fec/wire.h"
#include "tests/testutil.h"
#include "util/rng.h"

#ifndef BC_TEST_DATA_DIR
#error "BC_TEST_DATA_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace bytecache {
namespace {

std::string data_path(const char* name) {
  return std::string(BC_TEST_DATA_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("BC_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::Bytes bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, util::BytesView bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "failed to write " << path;
}

/// Compares `produced` against the pinned vector, or rewrites the pin when
/// BC_REGEN_GOLDEN is set.  On mismatch the failure names the file and the
/// first divergent byte so drift is easy to localize.
void check_golden(const char* name, util::BytesView produced) {
  const std::string path = data_path(name);
  if (regen_requested()) {
    write_file(path, produced);
    return;
  }
  const util::Bytes pinned = read_file(path);
  ASSERT_FALSE(pinned.empty())
      << path << " is missing or empty; regenerate with BC_REGEN_GOLDEN=1";
  ASSERT_EQ(pinned.size(), produced.size())
      << "wire size drift in " << name
      << " — if intentional, regenerate goldens with BC_REGEN_GOLDEN=1";
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    ASSERT_EQ(pinned[i], produced[i])
        << "wire byte drift in " << name << " at offset " << i
        << " — if intentional, regenerate goldens with BC_REGEN_GOLDEN=1";
  }
}

/// Deterministic traffic: a fixed 1200-byte payload and a variant of it
/// differing in the first 64 bytes.  Seeds are constants on purpose —
/// golden vectors must not depend on BYTECACHE_TEST_SEED.
struct GoldenTraffic {
  util::Bytes first;
  util::Bytes second;
};

GoldenTraffic golden_traffic() {
  util::Rng rng(0x601D5EED);  // fixed
  GoldenTraffic t;
  t.first = testutil::random_bytes(rng, 1200);
  t.second = t.first;
  for (std::size_t i = 0; i < 64; ++i) {
    t.second[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  return t;
}

/// Encodes the golden traffic pair and returns (warmup payload, encoded
/// wire image).
struct GoldenWire {
  util::Bytes warmup;
  util::Bytes wire;
};

GoldenWire golden_wire(bool epoch_resync) {
  core::DreParams params;
  params.epoch_resync = epoch_resync;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  const GoldenTraffic t = golden_traffic();
  auto a = testutil::make_tcp_packet(t.first, 1000);
  (void)enc.process(*a);
  auto b = testutil::make_tcp_packet(t.second, 5000);
  const core::EncodeInfo info = enc.process(*b);
  EXPECT_TRUE(info.encoded);
  return GoldenWire{a->payload, b->payload};
}

TEST(WireGolden, V1EncodingMatchesPinnedVector) {
  const GoldenWire g = golden_wire(/*epoch_resync=*/false);
  ASSERT_FALSE(g.wire.empty());
  EXPECT_EQ(g.wire[0], core::kShimMagic);
  check_golden("golden_v1_warmup.bin", g.warmup);
  check_golden("golden_v1_wire.bin", g.wire);
}

TEST(WireGolden, V2EncodingMatchesPinnedVectorAndBumpsVersionByte) {
  const GoldenWire g = golden_wire(/*epoch_resync=*/true);
  ASSERT_FALSE(g.wire.empty());
  // The epoch-carrying format is a distinct magic + explicit version byte;
  // v1 parsers cannot silently misread it.
  EXPECT_EQ(g.wire[0], core::kShimMagicV2);
  EXPECT_EQ(g.wire[1], core::kWireVersion2);
  check_golden("golden_v2_warmup.bin", g.warmup);
  check_golden("golden_v2_wire.bin", g.wire);
}

TEST(WireGolden, PinnedV1VectorStillDecodesOnAnEpochAwareDecoder) {
  if (regen_requested()) GTEST_SKIP() << "regenerating goldens";
  const util::Bytes warmup = read_file(data_path("golden_v1_warmup.bin"));
  const util::Bytes wire = read_file(data_path("golden_v1_wire.bin"));
  ASSERT_FALSE(warmup.empty());
  ASSERT_FALSE(wire.empty());
  // Old traffic (v1, no epoch) against a NEW decoder with epoch_resync on:
  // must decode exactly as before — the epoch machinery only enforces on
  // v2 packets.
  core::DreParams params;
  params.epoch_resync = true;
  core::Decoder dec(params);
  auto w = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                               packet::IpProto::kTcp, util::Bytes(warmup));
  (void)dec.process(*w);
  auto p = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                               packet::IpProto::kDre, util::Bytes(wire));
  const core::DecodeInfo info = dec.process(*p);
  EXPECT_FALSE(core::is_drop(info.status));
  // Decoding restores the whole original TCP segment (header + data).
  EXPECT_EQ(p->payload,
            testutil::make_tcp_packet(golden_traffic().second, 5000)->payload);
  EXPECT_EQ(dec.stats().drops_stale_epoch, 0u);
}

TEST(WireGolden, PinnedV2VectorDecodesRoundTrip) {
  if (regen_requested()) GTEST_SKIP() << "regenerating goldens";
  const util::Bytes warmup = read_file(data_path("golden_v2_warmup.bin"));
  const util::Bytes wire = read_file(data_path("golden_v2_wire.bin"));
  ASSERT_FALSE(warmup.empty());
  ASSERT_FALSE(wire.empty());
  core::DreParams params;
  params.epoch_resync = true;
  core::Decoder dec(params);
  auto w = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                               packet::IpProto::kTcp, util::Bytes(warmup));
  (void)dec.process(*w);
  auto p = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                               packet::IpProto::kDre, util::Bytes(wire));
  const core::DecodeInfo info = dec.process(*p);
  EXPECT_FALSE(core::is_drop(info.status));
  EXPECT_EQ(info.version, core::kWireVersion2);
  EXPECT_EQ(p->payload,
            testutil::make_tcp_packet(golden_traffic().second, 5000)->payload);
}

// ---- v3 / coded-repair vectors (ISSUE 9, DESIGN.md §13) ---------------

/// Encodes the golden traffic pair with the coded-repair layer on: both
/// payloads come out v3-shimmed, and closing the 2-packet generation
/// emits two repair payloads alongside the second packet.
struct GoldenCoded {
  util::Bytes first;   // v3 literal-wrapped warmup payload
  util::Bytes wire;    // v3 encoded payload
  util::Bytes repair0;
  util::Bytes repair1;
};

GoldenCoded golden_coded() {
  core::DreParams params;
  params.epoch_resync = true;
  params.coded_repair = true;
  params.repair.generation_packets = 2;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  const GoldenTraffic t = golden_traffic();
  auto a = testutil::make_tcp_packet(t.first, 1000);
  (void)enc.process(*a);
  auto b = testutil::make_tcp_packet(t.second, 5000);
  const core::EncodeInfo info = enc.process(*b);
  EXPECT_TRUE(info.encoded);
  EXPECT_EQ(info.repairs.size(), 2u);  // the generation closed at b
  GoldenCoded g;
  g.first = a->payload;
  g.wire = b->payload;
  g.repair0 = info.repairs[0];
  g.repair1 = info.repairs[1];
  return g;
}

TEST(WireGolden, V3EncodingMatchesPinnedVectorAndCarriesGenerationTag) {
  const GoldenCoded g = golden_coded();
  ASSERT_FALSE(g.wire.empty());
  // v3 shares the v2 magic with a bumped version byte: v1/v2 parsers
  // reject it instead of misreading the generation tag as payload.
  EXPECT_EQ(g.first[0], core::kShimMagicV2);
  EXPECT_EQ(g.first[1], core::kWireVersion3);
  EXPECT_EQ(g.wire[0], core::kShimMagicV2);
  EXPECT_EQ(g.wire[1], core::kWireVersion3);
  std::uint16_t gen_id = 99;
  std::uint8_t gen_seq = 99;
  ASSERT_TRUE(core::peek_gen_tag(g.wire, gen_id, gen_seq));
  EXPECT_EQ(gen_id, 0);
  EXPECT_EQ(gen_seq, 1);  // second member of the first generation
  check_golden("golden_v3_warmup.bin", g.first);
  check_golden("golden_v3_wire.bin", g.wire);
}

TEST(WireGolden, RepairPacketsMatchPinnedVectors) {
  const GoldenCoded g = golden_coded();
  ASSERT_FALSE(g.repair0.empty());
  EXPECT_EQ(g.repair0[0], 0xD7);  // repair magic, distinct from any shim
  EXPECT_TRUE(fec::is_repair_payload(g.repair0));
  check_golden("golden_repair0.bin", g.repair0);
  check_golden("golden_repair1.bin", g.repair1);
  if (regen_requested()) return;
  fec::RepairPacket parsed;
  ASSERT_TRUE(fec::RepairPacket::parse_repair_into(
      read_file(data_path("golden_repair0.bin")), parsed));
  EXPECT_EQ(parsed.gen_id, 0);
  EXPECT_EQ(parsed.gen_size, 2);
  EXPECT_EQ(parsed.repair_index, 0);
  EXPECT_EQ(parsed.repair_total, 2);
}

TEST(WireGolden, PinnedV3VectorDecodesRoundTrip) {
  if (regen_requested()) GTEST_SKIP() << "regenerating goldens";
  const util::Bytes warmup = read_file(data_path("golden_v3_warmup.bin"));
  const util::Bytes wire = read_file(data_path("golden_v3_wire.bin"));
  ASSERT_FALSE(warmup.empty());
  ASSERT_FALSE(wire.empty());
  core::DreParams params;
  params.epoch_resync = true;
  params.coded_repair = true;
  core::Decoder dec(params);
  // Under coded repair every packet is shimmed, so the warmup arrives as
  // DRE traffic too.
  auto w = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                               packet::IpProto::kDre, util::Bytes(warmup));
  const core::DecodeInfo wi = dec.process(*w);
  EXPECT_FALSE(core::is_drop(wi.status));
  EXPECT_EQ(w->payload,
            testutil::make_tcp_packet(golden_traffic().first, 1000)->payload);
  auto p = packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                               packet::IpProto::kDre, util::Bytes(wire));
  const core::DecodeInfo info = dec.process(*p);
  EXPECT_FALSE(core::is_drop(info.status));
  EXPECT_EQ(info.version, core::kWireVersion3);
  EXPECT_EQ(p->payload,
            testutil::make_tcp_packet(golden_traffic().second, 5000)->payload);
}

TEST(WireGolden, PinnedRepairsReconstructThePinnedDataPacket) {
  if (regen_requested()) GTEST_SKIP() << "regenerating goldens";
  const util::Bytes warmup = read_file(data_path("golden_v3_warmup.bin"));
  const util::Bytes wire = read_file(data_path("golden_v3_wire.bin"));
  ASSERT_FALSE(warmup.empty());
  ASSERT_FALSE(wire.empty());
  // Lose the second member entirely; the two pinned repairs must rebuild
  // its exact wire image from the survivor alone.
  fec::RepairConfig cfg;
  cfg.generation_packets = 2;
  fec::RepairDecoder dec(cfg);
  std::vector<fec::RepairDecoder::Released> out;
  dec.on_data(0, 0,
              packet::make_packet(testutil::kSrcIp, testutil::kDstIp,
                                  packet::IpProto::kDre, util::Bytes(warmup)),
              out);
  dec.on_repair(read_file(data_path("golden_repair0.bin")), out);
  dec.on_repair(read_file(data_path("golden_repair1.bin")), out);
  dec.audit();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].reconstructed);
  ASSERT_TRUE(out[1].reconstructed);
  const auto expect = packet::make_packet(
      testutil::kSrcIp, testutil::kDstIp, packet::IpProto::kDre,
      util::Bytes(wire));
  EXPECT_EQ(packet::to_wire(*out[1].pkt), packet::to_wire(*expect));
}

TEST(WireGolden, ControlMessagesMatchPinnedVectors) {
  core::ControlMessage nack;
  nack.fingerprints = {0x1122334455667788ull, 0xAABBCCDDEEFF0011ull};
  check_golden("golden_control_nack.bin", nack.serialize());

  core::ControlMessage resync;
  resync.type = core::ControlMessage::Type::kResyncRequest;
  resync.epoch = 0xBEEF;
  check_golden("golden_control_resync.bin", resync.serialize());

  core::ControlMessage report;
  report.type = core::ControlMessage::Type::kLossReport;
  report.host_key = 0x0123456789ABCDEFull;
  report.count = 42;
  check_golden("golden_control_lossreport.bin", report.serialize());

  if (regen_requested()) return;
  // The pins must also parse back to the same semantic content.
  auto n = core::ControlMessage::parse(
      read_file(data_path("golden_control_nack.bin")));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->fingerprints, nack.fingerprints);
  auto s = core::ControlMessage::parse(
      read_file(data_path("golden_control_resync.bin")));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->epoch, 0xBEEF);
  auto l = core::ControlMessage::parse(
      read_file(data_path("golden_control_lossreport.bin")));
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->host_key, 0x0123456789ABCDEFull);
  EXPECT_EQ(l->count, 42);
}

}  // namespace
}  // namespace bytecache
