// Gateway and pipeline wiring tests.
#include <gtest/gtest.h>

#include "app/file_transfer.h"
#include "app/udp_stream.h"
#include "gateway/gateways.h"
#include "gateway/pipeline.h"
#include "tests/testutil.h"
#include "workload/generators.h"

namespace bytecache::gateway {
namespace {

using testutil::make_tcp_packet;
using testutil::random_bytes;
using util::Bytes;
using util::Rng;

core::GatewayConfig make_cfg(core::PolicyKind kind,
                             const core::DreParams& params = {}) {
  core::GatewayConfig cfg;
  cfg.params = params;
  cfg.policy = kind;
  return cfg;
}

// ------------------------------------------------------------ gateways --

TEST(EncoderGateway, DisabledIsTransparent) {
  EncoderGateway gw(make_cfg(core::PolicyKind::kNone));
  EXPECT_FALSE(gw.enabled());
  Rng rng(1);
  const Bytes data = random_bytes(rng, 500);
  packet::PacketPtr forwarded;
  gw.set_sink([&](packet::PacketPtr p) { forwarded = std::move(p); });
  auto pkt = make_tcp_packet(data, 1000);
  const Bytes original = pkt->payload;
  gw.receive(std::move(pkt));
  ASSERT_NE(forwarded, nullptr);
  EXPECT_EQ(forwarded->payload, original);
}

TEST(EncoderGateway, EncodesRepeatedContent) {
  EncoderGateway gw(make_cfg(core::PolicyKind::kNaive));
  ASSERT_TRUE(gw.enabled());
  Rng rng(2);
  const Bytes data = random_bytes(rng, 1000);
  std::vector<packet::PacketPtr> out;
  gw.set_sink([&](packet::PacketPtr p) { out.push_back(std::move(p)); });
  gw.receive(make_tcp_packet(data, 1000));
  gw.receive(make_tcp_packet(data, 2000));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->proto(), packet::IpProto::kTcp);
  EXPECT_EQ(out[1]->proto(), packet::IpProto::kDre);
  EXPECT_LT(out[1]->payload.size(), out[0]->payload.size());
}

TEST(EncoderGateway, ObserverSeesEncodeInfo) {
  EncoderGateway gw(make_cfg(core::PolicyKind::kNaive));
  Rng rng(3);
  const Bytes data = random_bytes(rng, 1000);
  std::vector<core::EncodeInfo> infos;
  gw.set_observer([&](const core::EncodeInfo& i) { infos.push_back(i); });
  gw.set_sink([](packet::PacketPtr) {});
  gw.receive(make_tcp_packet(data, 1000));
  gw.receive(make_tcp_packet(data, 2000));
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_FALSE(infos[0].encoded);
  EXPECT_TRUE(infos[1].encoded);
}

TEST(DecoderGateway, DropsUndecodable) {
  core::DreParams params;
  EncoderGateway enc(make_cfg(core::PolicyKind::kNaive, params));
  DecoderGateway dec(make_cfg(core::PolicyKind::kNaive, params));
  Rng rng(4);
  const Bytes data = random_bytes(rng, 1000);

  std::vector<packet::PacketPtr> encoded;
  enc.set_sink([&](packet::PacketPtr p) { encoded.push_back(std::move(p)); });
  enc.receive(make_tcp_packet(data, 1000));
  enc.receive(make_tcp_packet(data, 2000));
  ASSERT_EQ(encoded.size(), 2u);

  int delivered = 0;
  dec.set_sink([&](packet::PacketPtr) { ++delivered; });
  // First packet "lost": feed only the second (encoded) one.
  dec.receive(std::move(encoded[1]));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(dec.stats().dropped, 1u);
}

TEST(DecoderGateway, DisabledForwardsEverything) {
  DecoderGateway dec(make_cfg(core::PolicyKind::kNone));
  EXPECT_FALSE(dec.enabled());
  int delivered = 0;
  dec.set_sink([&](packet::PacketPtr) { ++delivered; });
  Rng rng(5);
  dec.receive(make_tcp_packet(random_bytes(rng, 100), 1));
  EXPECT_EQ(delivered, 1);
}

// ------------------------------------------------------------ pipeline --

TEST(Pipeline, TransfersFileWithoutDre) {
  sim::Simulator sim;
  PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kNone;
  Pipeline pipeline(sim, cfg);
  Rng rng(6);
  const Bytes file = workload::make_file1(rng, 100'000);
  app::FileTransfer transfer(sim, pipeline, file);
  transfer.run_to_completion();
  ASSERT_TRUE(transfer.done());
  EXPECT_TRUE(transfer.result().completed);
  EXPECT_TRUE(transfer.result().verified);
  EXPECT_EQ(transfer.result().delivered_bytes, file.size());
}

TEST(Pipeline, TransfersFileWithEachPolicyNoLoss) {
  for (auto kind : {core::PolicyKind::kNaive, core::PolicyKind::kCacheFlush,
                    core::PolicyKind::kTcpSeq, core::PolicyKind::kKDistance,
                    core::PolicyKind::kAdaptive}) {
    sim::Simulator sim;
    PipelineConfig cfg;
    cfg.policy = kind;
    Pipeline pipeline(sim, cfg);
    Rng rng(7);
    const Bytes file = workload::make_file1(rng, 150'000);
    app::FileTransfer transfer(sim, pipeline, file);
    transfer.run_to_completion();
    EXPECT_TRUE(transfer.result().completed)
        << core::to_string(kind);
    EXPECT_TRUE(transfer.result().verified) << core::to_string(kind);
  }
}

TEST(Pipeline, DreReducesWireBytesOnRedundantFile) {
  Rng rng(8);
  const Bytes file = workload::make_file1(rng, 200'000);

  auto wire_bytes = [&](core::PolicyKind kind) {
    sim::Simulator sim;
    PipelineConfig cfg;
    cfg.policy = kind;
    Pipeline pipeline(sim, cfg);
    app::FileTransfer transfer(sim, pipeline, file);
    transfer.run_to_completion();
    EXPECT_TRUE(transfer.result().completed);
    return pipeline.forward_link().stats().bytes_sent;
  };
  const auto without = wire_bytes(core::PolicyKind::kNone);
  const auto with = wire_bytes(core::PolicyKind::kCacheFlush);
  EXPECT_LT(static_cast<double>(with), 0.75 * static_cast<double>(without));
}

TEST(Pipeline, DreReducesDownloadTimeOnCleanLink) {
  Rng rng(9);
  const Bytes file = workload::make_file1(rng, 300'000);
  auto duration = [&](core::PolicyKind kind) {
    sim::Simulator sim;
    PipelineConfig cfg;
    cfg.policy = kind;
    Pipeline pipeline(sim, cfg);
    app::FileTransfer transfer(sim, pipeline, file);
    transfer.run_to_completion();
    EXPECT_TRUE(transfer.result().completed);
    return transfer.result().duration_s;
  };
  EXPECT_LT(duration(core::PolicyKind::kCacheFlush),
            duration(core::PolicyKind::kNone));
}

TEST(Pipeline, EndToEndBytesVerifiedUnderLoss) {
  for (auto kind : {core::PolicyKind::kCacheFlush, core::PolicyKind::kTcpSeq,
                    core::PolicyKind::kKDistance}) {
    sim::Simulator sim;
    PipelineConfig cfg;
    cfg.policy = kind;
    cfg.loss_rate = 0.03;
    cfg.seed = 11;
    Pipeline pipeline(sim, cfg);
    Rng rng(10);
    const Bytes file = workload::make_file1(rng, 150'000);
    app::FileTransfer transfer(sim, pipeline, file);
    transfer.run_to_completion();
    ASSERT_TRUE(transfer.done());
    EXPECT_TRUE(transfer.result().completed) << core::to_string(kind);
    // The invariant that matters most: NEVER deliver wrong bytes.
    EXPECT_TRUE(transfer.result().verified) << core::to_string(kind);
  }
}

// ---------------------------------------------------------- udp stream --

TEST(UdpStream, StreamsOverPipelineWithKDistance) {
  sim::Simulator sim;
  core::DreParams dre;
  dre.k_distance = 8;
  EncoderGateway enc(make_cfg(core::PolicyKind::kKDistance, dre));
  DecoderGateway dec(make_cfg(core::PolicyKind::kKDistance, dre));
  sim::LinkConfig lcfg;
  lcfg.queue_packets = 1 << 16;
  sim::Link link(sim, lcfg, std::make_unique<sim::BernoulliLoss>(0.05),
                 util::Rng(12));

  app::UdpStreamConfig ucfg;
  app::UdpSink sink(ucfg);
  app::UdpSource source(sim, ucfg, [&](packet::PacketPtr p) {
    enc.receive(std::move(p));
  });
  enc.set_sink([&](packet::PacketPtr p) { link.send(std::move(p)); });
  link.set_sink([&](packet::PacketPtr p) { dec.receive(std::move(p)); });
  dec.set_sink([&](packet::PacketPtr p) { sink.on_packet(*p); });

  Rng rng(13);
  // A redundant media-like stream.
  const Bytes media = workload::make_file1(rng, 200'000);
  bool sent_all = false;
  source.start(media, [&] { sent_all = true; });
  sim.run();
  EXPECT_TRUE(sent_all);
  EXPECT_GT(sink.datagrams_received(), source.datagrams_sent() / 2);
  // Perceived loss bounded: channel 5% plus a bounded cascade.
  EXPECT_LT(sink.loss_rate(), 0.30);
  EXPECT_GT(sink.loss_rate(), 0.01);
}

}  // namespace
}  // namespace bytecache::gateway
