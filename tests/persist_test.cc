// Cache persistence: snapshot / warm-restore of the gateway caches
// through the versioned save/load surface (cache/snapshot.h).
#include <gtest/gtest.h>

#include "cache/byte_cache.h"
#include "cache/cache_tier.h"
#include "cache/snapshot.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "harness/experiment.h"
#include "tests/testutil.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

Bytes save_bytes(const cache::ByteCache& cache) {
  cache::SnapshotWriter w;
  cache.save(w);
  return w.take();
}

/// Restores `snap` into `cache`, enforcing the historical contract:
/// trailing bytes after the snapshot block are a malformed input (the
/// cache ends up flushed, not half-restored).
bool load_bytes(util::BytesView snap, cache::ByteCache& cache) {
  cache::SnapshotReader r(snap);
  if (!cache.load(r)) return false;
  if (!r.at_end()) {
    cache.flush();
    return false;
  }
  return true;
}

TEST(Persist, EmptyCacheRoundTrips) {
  cache::ByteCache cache;
  const Bytes snap = save_bytes(cache);
  cache::ByteCache restored;
  ASSERT_TRUE(load_bytes(snap, restored));
  EXPECT_EQ(restored.store().size(), 0u);
  EXPECT_EQ(restored.fingerprint_count(), 0u);
}

TEST(Persist, ContentsAndMetaRoundTrip) {
  cache::ByteCache cache;
  cache::PacketMeta meta;
  meta.tcp_seq = 1234;
  meta.tcp_end_seq = 2234;
  meta.has_tcp_seq = true;
  meta.stream_index = 17;
  meta.epoch = 3;
  meta.src_uid = 99;
  meta.flow_key = 0xABCDEF;
  std::vector<rabin::Anchor> anchors = {{4, 0xF0}, {40, 0xE0}};
  cache.update(Bytes(128, 'p'), anchors, meta);

  cache::ByteCache restored;
  ASSERT_TRUE(load_bytes(save_bytes(cache), restored));
  auto hit = restored.find(0xF0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->offset, 4u);
  EXPECT_EQ(hit->packet->payload, Bytes(128, 'p'));
  EXPECT_EQ(hit->packet->meta.tcp_seq, 1234u);
  EXPECT_EQ(hit->packet->meta.tcp_end_seq, 2234u);
  EXPECT_TRUE(hit->packet->meta.has_tcp_seq);
  EXPECT_EQ(hit->packet->meta.stream_index, 17u);
  EXPECT_EQ(hit->packet->meta.epoch, 3u);
  EXPECT_EQ(hit->packet->meta.src_uid, 99u);
  EXPECT_EQ(hit->packet->meta.flow_key, 0xABCDEFu);
}

TEST(Persist, LruOrderSurvives) {
  cache::ByteCache cache;
  for (int i = 0; i < 5; ++i) {
    cache.update(Bytes(64, static_cast<std::uint8_t>('a' + i)),
                 {{0, static_cast<rabin::Fingerprint>(0x100 + i)}}, {});
  }
  // Touch 0xA0+0 so it becomes MRU.
  (void)cache.find(0x100);

  cache::ByteCache restored;
  ASSERT_TRUE(load_bytes(save_bytes(cache), restored));
  ASSERT_EQ(restored.store().entries().size(), 5u);
  EXPECT_EQ(restored.store().entries().front().payload[0], 'a');  // MRU
}

TEST(Persist, MalformedSnapshotsRejectedAndFlushed) {
  cache::ByteCache cache;
  cache.update(Bytes(64, 'x'), {{0, 0x10}}, {});
  Bytes snap = save_bytes(cache);

  cache::ByteCache victim;
  victim.update(Bytes(64, 'y'), {{0, 0x20}}, {});

  // Truncations must fail cleanly (and leave the cache empty, never
  // half-restored).
  for (std::size_t len : {0u, 3u, 8u, 20u}) {
    ASSERT_FALSE(load_bytes(
        util::BytesView(snap.data(), std::min(len, snap.size())), victim))
        << len;
    EXPECT_EQ(victim.store().size(), 0u);
  }
  // Bad magic.
  Bytes bad = snap;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(load_bytes(bad, victim));
  // Trailing garbage.
  Bytes trailing = snap;
  trailing.push_back(0);
  EXPECT_FALSE(load_bytes(trailing, victim));
}

TEST(Persist, FuzzDeserializeNeverCrashes) {
  Rng rng(1);
  cache::ByteCache cache;
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = testutil::random_bytes(rng, rng.uniform(0, 120));
    if (junk.size() >= 4 && rng.chance(0.5)) {
      junk[0] = 0x42;
      junk[1] = 0x43;
      junk[2] = 0x43;
      junk[3] = 0x31;
    }
    (void)load_bytes(junk, cache);
  }
}

TEST(Persist, WarmRestartKeepsGatewaysInLockstep) {
  // Encode half a stream, snapshot both sides, restart into fresh codec
  // objects, continue the stream: references into the pre-restart history
  // must still decode.
  core::DreParams params;
  auto enc = std::make_unique<core::Encoder>(
      params, core::make_policy(core::PolicyKind::kNaive, params));
  auto dec = std::make_unique<core::Decoder>(params);
  Rng rng(2);
  const Bytes object = workload::make_file1(rng, 200 * 1460);
  auto packets = testutil::segment_stream(object);

  const std::size_t half = packets.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    enc->process(*packets[i]);
    ASSERT_FALSE(core::is_drop(dec->process(*packets[i]).status));
  }
  const Bytes enc_snap = enc->save_state();
  const Bytes dec_snap = dec->save_state();

  // "Restart" both gateways.
  enc = std::make_unique<core::Encoder>(
      params, core::make_policy(core::PolicyKind::kNaive, params));
  dec = std::make_unique<core::Decoder>(params);
  ASSERT_TRUE(enc->load_state(enc_snap));
  ASSERT_TRUE(dec->load_state(dec_snap));

  std::size_t encoded_after = 0;
  for (std::size_t i = half; i < packets.size(); ++i) {
    const Bytes original = packets[i]->payload;
    if (enc->process(*packets[i]).encoded) ++encoded_after;
    ASSERT_FALSE(core::is_drop(dec->process(*packets[i]).status)) << i;
    ASSERT_EQ(packets[i]->payload, original) << i;
  }
  // Compression continued immediately (warm cache), including references
  // into pre-restart packets (File 1's far window reaches 36 units back).
  EXPECT_GT(encoded_after, (packets.size() - half) * 3 / 4);
}

TEST(Persist, EncoderRejectsGarbageState) {
  core::DreParams params;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  EXPECT_FALSE(enc.load_state(Bytes(5, 0)));
  Bytes junk(64, 0xAA);
  EXPECT_FALSE(enc.load_state(junk));
}

TEST(Persist, ColdVsWarmRestartCompressionGap) {
  // The operational motivation: a warm-restarted encoder keeps saving
  // bytes where a cold one must relearn the history.
  core::DreParams params;
  Rng rng(3);
  const Bytes object = workload::make_file1(rng, 150 * 1460);
  auto packets = testutil::segment_stream(object);
  const std::size_t half = packets.size() / 2;

  auto run_second_half = [&](bool warm) {
    core::Encoder first(params,
                        core::make_policy(core::PolicyKind::kNaive, params));
    for (std::size_t i = 0; i < half; ++i) {
      auto copy = packet::clone_packet(*packets[i]);
      first.process(*copy);
    }
    core::Encoder second(params,
                         core::make_policy(core::PolicyKind::kNaive, params));
    if (warm) {
      EXPECT_TRUE(second.load_state(first.save_state()));
    }
    for (std::size_t i = half; i < packets.size(); ++i) {
      auto copy = packet::clone_packet(*packets[i]);
      second.process(*copy);
    }
    return second.stats().bytes_out;
  };
  EXPECT_LT(run_second_half(true), run_second_half(false));
}

// ----------------------------------------------- snapshot validation --

/// A failed restore must leave the target empty and audit-clean.
void expect_rejected_clean(util::BytesView snap) {
  cache::ByteCache restored;
  EXPECT_FALSE(load_bytes(snap, restored));
  EXPECT_EQ(restored.store().size(), 0u);
  EXPECT_EQ(restored.fingerprint_count(), 0u);
  restored.audit();
}

TEST(Persist, RejectsDanglingFingerprint) {
  // A snapshot whose fingerprint table names a packet id the store does
  // not hold would break the table invariants the hit-expansion path
  // relies on; it must be rejected, not restored subtly wrong.
  cache::ByteCache bad;
  bad.restore_fingerprint(0xF00D, cache::FpEntry{/*packet_id=*/42,
                                                 /*offset=*/0});
  expect_rejected_clean(save_bytes(bad));
}

TEST(Persist, RejectsFingerprintOffsetBeyondPayload) {
  cache::ByteCache bad;
  bad.update(Bytes(64, 'x'), {{0, 0xBEEF}}, {});
  Bytes snap = save_bytes(bad);
  // The last fingerprint record's trailing u16 is its offset; point it
  // past the 64-byte payload.
  snap[snap.size() - 2] = 0;
  snap[snap.size() - 1] = 200;
  expect_rejected_clean(snap);
}

TEST(Persist, RejectsZeroAndDuplicatePacketIds) {
  // PacketStore::restore trusts its input, so the loader must screen
  // ids: 0 is the "absent" sentinel and duplicates would corrupt the id
  // index.  Craft the snapshots byte by byte.
  auto make_snapshot = [](const std::vector<std::uint64_t>& ids) {
    Bytes snap;
    util::put_u32(snap, 0x42434331);  // magic "BCC1"
    util::put_u32(snap, static_cast<std::uint32_t>(ids.size()));
    for (std::uint64_t id : ids) {
      util::put_u64(snap, id);
      util::put_u64(snap, 0);  // flow_key
      util::put_u64(snap, 0);  // src_uid
      util::put_u64(snap, 0);  // stream_index
      util::put_u32(snap, 0);  // tcp_seq
      util::put_u32(snap, 0);  // tcp_end_seq
      util::put_u32(snap, 0);  // epoch
      util::put_u8(snap, 0);   // has_tcp_seq
      util::put_u32(snap, 4);  // payload length
      util::append(snap, Bytes{'a', 'b', 'c', 'd'});
    }
    util::put_u32(snap, 0);  // fingerprint count
    return snap;
  };
  cache::ByteCache ok;
  EXPECT_TRUE(load_bytes(make_snapshot({5, 9}), ok));
  expect_rejected_clean(make_snapshot({0}));
  expect_rejected_clean(make_snapshot({5, 5}));
}

TEST(Persist, CorruptedSnapshotNeverRestoresInvalidState) {
  // Flip every byte of a real snapshot in turn (and try truncations):
  // each mutation must either restore an audit-clean cache or be
  // rejected with the cache left empty.
  cache::ByteCache cache;
  Rng rng(11);
  for (int i = 0; i < 6; ++i) {
    std::vector<rabin::Anchor> anchors = {
        {static_cast<std::uint16_t>(i * 3),
         static_cast<rabin::Fingerprint>(0x1000 + i)}};
    cache.update(testutil::random_bytes(rng, 96 + i * 17), anchors, {});
  }
  const Bytes snap = save_bytes(cache);

  for (std::size_t pos = 0; pos < snap.size(); ++pos) {
    Bytes mutated = snap;
    mutated[pos] ^= 0x40;
    cache::ByteCache restored;
    const bool ok = load_bytes(mutated, restored);
    if (!ok) {
      EXPECT_EQ(restored.store().size(), 0u) << "flip at " << pos;
      EXPECT_EQ(restored.fingerprint_count(), 0u) << "flip at " << pos;
    }
    restored.audit();
  }
  for (std::size_t len = 0; len < snap.size(); len += 13) {
    cache::ByteCache restored;
    EXPECT_FALSE(
        load_bytes(util::BytesView(snap.data(), len), restored))
        << "truncation to " << len;
    EXPECT_EQ(restored.store().size(), 0u);
    EXPECT_EQ(restored.fingerprint_count(), 0u);
    restored.audit();
  }
}

TEST(Persist, IntactSnapshotStillRoundTripsAfterValidation) {
  // The validation must not reject healthy snapshots: a cache with
  // cross-referencing fingerprints round-trips exactly.
  cache::ByteCache cache;
  Rng rng(12);
  for (int i = 0; i < 4; ++i) {
    std::vector<rabin::Anchor> anchors = {
        {0, static_cast<rabin::Fingerprint>(0x2000 + i)},
        {32, static_cast<rabin::Fingerprint>(0x3000 + i)}};
    cache.update(testutil::random_bytes(rng, 128), anchors, {});
  }
  cache::ByteCache restored;
  ASSERT_TRUE(load_bytes(save_bytes(cache), restored));
  EXPECT_EQ(restored.store().size(), cache.store().size());
  EXPECT_EQ(restored.fingerprint_count(), cache.fingerprint_count());
  EXPECT_EQ(save_bytes(restored), save_bytes(cache));
  restored.audit();
}

// --------------------------------------------- incremental snapshots --

cache::CacheConfig incr_config() {
  cache::CacheConfig cc;
  cc.snapshot_mode = cache::SnapshotMode::kIncremental;
  return cc;
}

void tier_update(cache::CacheTier& tier, util::BytesView payload,
                 std::vector<rabin::Anchor> anchors, std::uint64_t index) {
  cache::PacketMeta meta;
  meta.stream_index = index;
  tier.update(payload, anchors, meta);
}

TEST(PersistIncremental, DeltaChainRoundTrips) {
  cache::CacheTier live(incr_config());
  tier_update(live, Bytes(96, 'a'), {{0, 0xA1}}, 0);

  // Full boundary: the replica restores it and both sides agree on seq.
  cache::SnapshotWriter full;
  live.save(full);
  cache::CacheTier replica(incr_config());
  {
    cache::SnapshotReader r(full.buffer());
    ASSERT_TRUE(replica.load(r));
    EXPECT_TRUE(r.at_end());
  }
  EXPECT_EQ(replica.snapshot_seq(), live.snapshot_seq());

  // Two post-boundary operations ride one delta.
  tier_update(live, Bytes(96, 'b'), {{0, 0xB2}}, 1);
  tier_update(live, Bytes(96, 'c'), {{0, 0xC3}}, 2);
  cache::SnapshotWriter delta;
  live.save_incremental(delta);
  // A delta is a BCI1 block, not a full image.
  {
    cache::SnapshotReader peek(delta.buffer());
    EXPECT_EQ(peek.peek_u32(), 0x42434931u);
  }
  {
    cache::SnapshotReader r(delta.buffer());
    ASSERT_TRUE(replica.load(r));
    EXPECT_TRUE(r.at_end());
  }
  EXPECT_EQ(replica.snapshot_seq(), live.snapshot_seq());
  for (rabin::Fingerprint fp : {0xA1u, 0xB2u, 0xC3u}) {
    EXPECT_TRUE(replica.find(fp).has_value()) << std::hex << fp;
  }
  replica.audit();

  // Replaying the same delta twice must fail: it chains on the seq the
  // first application already consumed.
  {
    cache::SnapshotReader r(delta.buffer());
    EXPECT_FALSE(replica.load(r));
  }
}

TEST(PersistIncremental, CorruptedDeltaRejected) {
  // Extend the byte-flip fuzz to the incremental format: every one-byte
  // corruption of a delta must be rejected (the CRC or the structural
  // validation catches it) or — for flips confined to the payload the
  // CRC does not cover twice — replay to an audit-clean tier.
  cache::CacheTier live(incr_config());
  tier_update(live, Bytes(96, 'a'), {{0, 0xA1}}, 0);
  cache::SnapshotWriter full;
  live.save(full);

  tier_update(live, Bytes(96, 'b'), {{0, 0xB2}}, 1);
  tier_update(live, Bytes(128, 'c'), {{4, 0xC3}, {40, 0xD4}}, 2);
  cache::SnapshotWriter delta;
  live.save_incremental(delta);

  const Bytes& delta_bytes = delta.buffer();
  for (std::size_t pos = 0; pos < delta_bytes.size(); ++pos) {
    Bytes mutated = delta_bytes;
    mutated[pos] ^= 0x40;
    cache::CacheTier replica(incr_config());
    {
      cache::SnapshotReader r(full.buffer());
      ASSERT_TRUE(replica.load(r));
    }
    cache::SnapshotReader r(mutated);
    if (!replica.load(r)) {
      // Rejected: flushed, nothing half-applied.
      EXPECT_EQ(replica.store().size(), 0u) << "flip at " << pos;
    }
    replica.audit();
  }
  for (std::size_t len = 0; len < delta_bytes.size(); len += 7) {
    cache::CacheTier replica(incr_config());
    {
      cache::SnapshotReader r(full.buffer());
      ASSERT_TRUE(replica.load(r));
    }
    cache::SnapshotReader r(util::BytesView(delta_bytes.data(), len));
    EXPECT_FALSE(replica.load(r)) << "truncation to " << len;
    replica.audit();
  }
}

TEST(PersistIncremental, CodecLevelIncrementalRestartStaysInLockstep) {
  // The gateway-level form: full snapshot, more traffic, delta snapshot;
  // a replica restored from full+delta continues decoding the stream.
  core::DreParams params;
  cache::CacheConfig cc = incr_config();
  auto enc = std::make_unique<core::Encoder>(
      params, core::make_policy(core::PolicyKind::kNaive, params), cc);
  auto dec = std::make_unique<core::Decoder>(params, cc);
  Rng rng(21);
  const Bytes object = workload::make_file1(rng, 120 * 1460);
  auto packets = testutil::segment_stream(object);

  const std::size_t third = packets.size() / 3;
  for (std::size_t i = 0; i < third; ++i) {
    enc->process(*packets[i]);
    ASSERT_FALSE(core::is_drop(dec->process(*packets[i]).status));
  }
  const Bytes enc_full = enc->save_state();
  const Bytes dec_full = dec->save_state();
  for (std::size_t i = third; i < 2 * third; ++i) {
    enc->process(*packets[i]);
    ASSERT_FALSE(core::is_drop(dec->process(*packets[i]).status));
  }
  const Bytes enc_delta = enc->save_state_incremental();
  const Bytes dec_delta = dec->save_state_incremental();

  auto enc2 = std::make_unique<core::Encoder>(
      params, core::make_policy(core::PolicyKind::kNaive, params), cc);
  auto dec2 = std::make_unique<core::Decoder>(params, cc);
  ASSERT_TRUE(enc2->load_state(enc_full));
  ASSERT_TRUE(dec2->load_state(dec_full));
  ASSERT_TRUE(enc2->load_state(enc_delta));
  ASSERT_TRUE(dec2->load_state(dec_delta));

  for (std::size_t i = 2 * third; i < packets.size(); ++i) {
    const Bytes original = packets[i]->payload;
    enc2->process(*packets[i]);
    ASSERT_FALSE(core::is_drop(dec2->process(*packets[i]).status)) << i;
    ASSERT_EQ(packets[i]->payload, original) << i;
  }
  enc2->audit();
  dec2->audit();
}

}  // namespace
}  // namespace bytecache
