// Cache persistence: snapshot / warm-restore of the gateway caches.
#include <gtest/gtest.h>

#include "cache/persist.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "harness/experiment.h"
#include "tests/testutil.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

TEST(Persist, EmptyCacheRoundTrips) {
  cache::ByteCache cache;
  const Bytes snap = cache::serialize_cache(cache);
  cache::ByteCache restored;
  ASSERT_TRUE(cache::deserialize_cache(snap, restored));
  EXPECT_EQ(restored.store().size(), 0u);
  EXPECT_EQ(restored.fingerprint_count(), 0u);
}

TEST(Persist, ContentsAndMetaRoundTrip) {
  cache::ByteCache cache;
  cache::PacketMeta meta;
  meta.tcp_seq = 1234;
  meta.tcp_end_seq = 2234;
  meta.has_tcp_seq = true;
  meta.stream_index = 17;
  meta.epoch = 3;
  meta.src_uid = 99;
  meta.flow_key = 0xABCDEF;
  std::vector<rabin::Anchor> anchors = {{4, 0xF0}, {40, 0xE0}};
  cache.update(Bytes(128, 'p'), anchors, meta);

  cache::ByteCache restored;
  ASSERT_TRUE(
      cache::deserialize_cache(cache::serialize_cache(cache), restored));
  auto hit = restored.find(0xF0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->offset, 4u);
  EXPECT_EQ(hit->packet->payload, Bytes(128, 'p'));
  EXPECT_EQ(hit->packet->meta.tcp_seq, 1234u);
  EXPECT_EQ(hit->packet->meta.tcp_end_seq, 2234u);
  EXPECT_TRUE(hit->packet->meta.has_tcp_seq);
  EXPECT_EQ(hit->packet->meta.stream_index, 17u);
  EXPECT_EQ(hit->packet->meta.epoch, 3u);
  EXPECT_EQ(hit->packet->meta.src_uid, 99u);
  EXPECT_EQ(hit->packet->meta.flow_key, 0xABCDEFu);
}

TEST(Persist, LruOrderSurvives) {
  cache::ByteCache cache(/*byte_budget=*/0);
  for (int i = 0; i < 5; ++i) {
    cache.update(Bytes(64, static_cast<std::uint8_t>('a' + i)),
                 {{0, static_cast<rabin::Fingerprint>(0x100 + i)}}, {});
  }
  // Touch 0xA0+0 so it becomes MRU.
  (void)cache.find(0x100);

  cache::ByteCache restored;
  ASSERT_TRUE(
      cache::deserialize_cache(cache::serialize_cache(cache), restored));
  ASSERT_EQ(restored.store().entries().size(), 5u);
  EXPECT_EQ(restored.store().entries().front().payload[0], 'a');  // MRU
}

TEST(Persist, MalformedSnapshotsRejectedAndFlushed) {
  cache::ByteCache cache;
  cache.update(Bytes(64, 'x'), {{0, 0x10}}, {});
  Bytes snap = cache::serialize_cache(cache);

  cache::ByteCache victim;
  victim.update(Bytes(64, 'y'), {{0, 0x20}}, {});

  // Truncations must fail cleanly (and leave the cache empty, never
  // half-restored).
  for (std::size_t len : {0u, 3u, 8u, 20u}) {
    ASSERT_FALSE(cache::deserialize_cache(
        util::BytesView(snap.data(), std::min(len, snap.size())), victim))
        << len;
    EXPECT_EQ(victim.store().size(), 0u);
  }
  // Bad magic.
  Bytes bad = snap;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(cache::deserialize_cache(bad, victim));
  // Trailing garbage.
  Bytes trailing = snap;
  trailing.push_back(0);
  EXPECT_FALSE(cache::deserialize_cache(trailing, victim));
}

TEST(Persist, FuzzDeserializeNeverCrashes) {
  Rng rng(1);
  cache::ByteCache cache;
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = testutil::random_bytes(rng, rng.uniform(0, 120));
    if (junk.size() >= 4 && rng.chance(0.5)) {
      junk[0] = 0x42;
      junk[1] = 0x43;
      junk[2] = 0x43;
      junk[3] = 0x31;
    }
    (void)cache::deserialize_cache(junk, cache);
  }
}

TEST(Persist, WarmRestartKeepsGatewaysInLockstep) {
  // Encode half a stream, snapshot both sides, restart into fresh codec
  // objects, continue the stream: references into the pre-restart history
  // must still decode.
  core::DreParams params;
  auto enc = std::make_unique<core::Encoder>(
      params, core::make_policy(core::PolicyKind::kNaive, params));
  auto dec = std::make_unique<core::Decoder>(params);
  Rng rng(2);
  const Bytes object = workload::make_file1(rng, 200 * 1460);
  auto packets = testutil::segment_stream(object);

  const std::size_t half = packets.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    enc->process(*packets[i]);
    ASSERT_FALSE(core::is_drop(dec->process(*packets[i]).status));
  }
  const Bytes enc_snap = enc->save_state();
  const Bytes dec_snap = dec->save_state();

  // "Restart" both gateways.
  enc = std::make_unique<core::Encoder>(
      params, core::make_policy(core::PolicyKind::kNaive, params));
  dec = std::make_unique<core::Decoder>(params);
  ASSERT_TRUE(enc->load_state(enc_snap));
  ASSERT_TRUE(dec->load_state(dec_snap));

  std::size_t encoded_after = 0;
  for (std::size_t i = half; i < packets.size(); ++i) {
    const Bytes original = packets[i]->payload;
    if (enc->process(*packets[i]).encoded) ++encoded_after;
    ASSERT_FALSE(core::is_drop(dec->process(*packets[i]).status)) << i;
    ASSERT_EQ(packets[i]->payload, original) << i;
  }
  // Compression continued immediately (warm cache), including references
  // into pre-restart packets (File 1's far window reaches 36 units back).
  EXPECT_GT(encoded_after, (packets.size() - half) * 3 / 4);
}

TEST(Persist, EncoderRejectsGarbageState) {
  core::DreParams params;
  core::Encoder enc(params,
                    core::make_policy(core::PolicyKind::kNaive, params));
  EXPECT_FALSE(enc.load_state(Bytes(5, 0)));
  Bytes junk(64, 0xAA);
  EXPECT_FALSE(enc.load_state(junk));
}

TEST(Persist, ColdVsWarmRestartCompressionGap) {
  // The operational motivation: a warm-restarted encoder keeps saving
  // bytes where a cold one must relearn the history.
  core::DreParams params;
  Rng rng(3);
  const Bytes object = workload::make_file1(rng, 150 * 1460);
  auto packets = testutil::segment_stream(object);
  const std::size_t half = packets.size() / 2;

  auto run_second_half = [&](bool warm) {
    core::Encoder first(params,
                        core::make_policy(core::PolicyKind::kNaive, params));
    for (std::size_t i = 0; i < half; ++i) {
      auto copy = packet::clone_packet(*packets[i]);
      first.process(*copy);
    }
    core::Encoder second(params,
                         core::make_policy(core::PolicyKind::kNaive, params));
    if (warm) {
      EXPECT_TRUE(second.load_state(first.save_state()));
    }
    for (std::size_t i = half; i < packets.size(); ++i) {
      auto copy = packet::clone_packet(*packets[i]);
      second.process(*copy);
    }
    return second.stats().bytes_out;
  };
  EXPECT_LT(run_second_half(true), run_second_half(false));
}

}  // namespace
}  // namespace bytecache
