// Cross-cutting tests: flow keys, loss-process statistics, routing edge
// cases, epoch signalling, decoder stat breakdowns, harness deadlines,
// and structured parser fuzzing.
#include <gtest/gtest.h>

#include <set>

#include "app/file_transfer.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/flow.h"
#include "core/wire.h"
#include "gateway/multi_pipeline.h"
#include "harness/experiment.h"
#include "packet/udp.h"
#include "sim/loss_model.h"
#include "sim/simulator.h"
#include "tests/testutil.h"
#include "workload/analyzer.h"
#include "workload/generators.h"

namespace bytecache {
namespace {

using util::Bytes;
using util::Rng;

// ------------------------------------------------------------ flow key --

TEST(FlowKey, DirectionSensitive) {
  const auto fwd = core::flow_key_of(1, 2, 80, 40000);
  const auto rev = core::flow_key_of(2, 1, 40000, 80);
  EXPECT_NE(fwd, rev);  // the two directions are distinct flows
}

TEST(FlowKey, DistinctTuplesDistinctKeys) {
  std::set<std::uint64_t> keys;
  for (std::uint16_t port = 40000; port < 40100; ++port) {
    keys.insert(core::flow_key_of(0x0A000001, 0x0A000101, 80, port));
  }
  EXPECT_EQ(keys.size(), 100u);
  EXPECT_EQ(keys.count(0), 0u);  // 0 reserved for "no flow"
}

TEST(FlowKey, Deterministic) {
  EXPECT_EQ(core::flow_key_of(9, 8, 7, 6), core::flow_key_of(9, 8, 7, 6));
}

// -------------------------------------------------- loss model details --

TEST(GilbertElliott, BurstLengthMatchesParameters) {
  sim::GilbertElliottLoss::Params params;
  params.p_gb = 0.02;
  params.p_bg = 0.25;  // expected Bad-state dwell = 4 packets
  params.loss_good = 0.0;
  params.loss_bad = 1.0;  // every Bad packet lost: bursts = dwell times
  sim::GilbertElliottLoss ge(params);
  Rng rng(1);
  int bursts = 0;
  long long burst_len_total = 0;
  int current = 0;
  for (int i = 0; i < 500'000; ++i) {
    if (ge.drop(rng)) {
      ++current;
    } else if (current > 0) {
      ++bursts;
      burst_len_total += current;
      current = 0;
    }
  }
  ASSERT_GT(bursts, 100);
  const double mean_burst =
      static_cast<double>(burst_len_total) / bursts;
  EXPECT_NEAR(mean_burst, 1.0 / params.p_bg, 0.3);
}

TEST(GilbertElliott, ResetReturnsToGoodState) {
  sim::GilbertElliottLoss::Params params;
  params.p_gb = 1.0;  // jump straight to Bad
  params.p_bg = 0.0;  // and stay
  params.loss_bad = 1.0;
  sim::GilbertElliottLoss ge(params);
  Rng rng(2);
  (void)ge.drop(rng);
  EXPECT_TRUE(ge.drop(rng));  // stuck Bad
  ge.reset();
  // After reset the first transition happens from Good again; with
  // p_gb=1.0 it returns to Bad immediately, so instead verify via a
  // non-absorbing chain:
  sim::GilbertElliottLoss::Params p2 = params;
  p2.p_gb = 0.0;  // never leave Good
  sim::GilbertElliottLoss ge2(p2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(ge2.drop(rng));
}

// ----------------------------------------------- multi-pipeline routing --

TEST(MultiPipelineRouting, NonTcpAndUnknownPortsIgnoredGracefully) {
  sim::Simulator sim;
  gateway::PipelineConfig cfg;
  cfg.policy = core::PolicyKind::kNone;
  gateway::MultiPipeline pipeline(sim, cfg, 2);

  // A UDP packet through the forward path: no receiver claims it; the
  // pipeline must not crash or misdeliver.
  auto udp = packet::make_packet(cfg.tcp.src_ip, cfg.tcp.dst_ip,
                                 packet::IpProto::kUdp, Bytes(100, 'u'));
  pipeline.forward_link().send(std::move(udp));

  // A TCP packet to a port outside the flow range.
  packet::TcpHeader h;
  h.src_port = 80;
  h.dst_port = 50000;  // not a flow
  h.seq = 1;
  Bytes segment;
  h.serialize(segment, util::to_bytes("data"), cfg.tcp.src_ip,
              cfg.tcp.dst_ip);
  pipeline.forward_link().send(packet::make_packet(
      cfg.tcp.src_ip, cfg.tcp.dst_ip, packet::IpProto::kTcp,
      std::move(segment)));
  sim.run();
  EXPECT_EQ(pipeline.receiver(0).stats().segments_received, 0u);
  EXPECT_EQ(pipeline.receiver(1).stats().segments_received, 0u);
}

// ------------------------------------------------------ epoch signalling --

TEST(EpochFlag, FirstEncodedPacketAfterFlushCarriesIt) {
  core::DreParams params;
  auto enc = testutil::test_encoder(core::PolicyKind::kNaive, params);
  Rng rng(3);
  const Bytes data = testutil::random_bytes(rng, 800);

  auto p1 = testutil::make_udp_packet(data);
  enc.process(*p1);
  auto p2 = testutil::make_udp_packet(data);
  ASSERT_TRUE(enc.process(*p2).encoded);
  auto e2 = core::EncodedPayload::parse(p2->payload);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->flags & core::kFlagFlushEpoch, 0);
  EXPECT_EQ(e2->epoch, 0);

  enc.flush();
  auto p3 = testutil::make_udp_packet(data);
  enc.process(*p3);  // passthrough (cache cold)
  auto p4 = testutil::make_udp_packet(data);
  ASSERT_TRUE(enc.process(*p4).encoded);
  auto e4 = core::EncodedPayload::parse(p4->payload);
  ASSERT_TRUE(e4.has_value());
  EXPECT_NE(e4->flags & core::kFlagFlushEpoch, 0);
  EXPECT_EQ(e4->epoch, 1);

  auto p5 = testutil::make_udp_packet(data);
  ASSERT_TRUE(enc.process(*p5).encoded);
  auto e5 = core::EncodedPayload::parse(p5->payload);
  ASSERT_TRUE(e5.has_value());
  EXPECT_EQ(e5->flags & core::kFlagFlushEpoch, 0);  // only the first one
  EXPECT_EQ(e5->epoch, 1);
}

// ------------------------------------------------ decoder stat breakdown --

TEST(DecoderStats, EachDropKindCounted) {
  core::DreParams params;
  core::Decoder dec(params);
  Rng rng(4);

  // Malformed shim.
  auto junk = packet::make_packet(
      1, 2, static_cast<packet::IpProto>(packet::IpProto::kDre),
      Bytes(4, 0x00));
  dec.process(*junk);
  EXPECT_EQ(dec.stats().drops_malformed, 1u);

  // Missing fingerprint.
  auto enc = testutil::test_encoder(core::PolicyKind::kNaive, params);
  const Bytes data = testutil::random_bytes(rng, 600);
  auto lost = testutil::make_udp_packet(data);
  enc.process(*lost);
  auto dependent = testutil::make_udp_packet(data);
  ASSERT_TRUE(enc.process(*dependent).encoded);
  dec.process(*dependent);
  EXPECT_EQ(dec.stats().drops_missing_fp, 1u);

  EXPECT_EQ(dec.stats().drops(), 2u);
  EXPECT_EQ(dec.stats().decoded, 0u);
}

// -------------------------------------------------- harness give-up cap --

TEST(Harness, GiveUpBoundsStalledTrials) {
  Rng rng(5);
  const Bytes file = workload::make_file1(rng, 587'567);
  harness::ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNaive;
  cfg.loss_rate = 0.05;  // will stall
  cfg.give_up = sim::sec(30);
  auto r = harness::run_trial(cfg, file, 9);
  EXPECT_TRUE(r.stalled);
  EXPECT_LE(r.duration_s, 31.0);
}

// ------------------------------------------------------------ analyzer --

TEST(Analyzer, PercentEncodedConsistent) {
  Rng rng(6);
  const Bytes f = workload::make_file1(rng, 300 * 1460);
  const auto rep = workload::redundancy_percent(f, 1000);
  EXPECT_GT(rep.percent_encoded, 50.0);
  EXPECT_LE(rep.percent_encoded, 100.0);
  EXPECT_GT(rep.percent_saved, 0.0);
  EXPECT_LT(rep.percent_saved, rep.percent_encoded);
}

// ------------------------------------------------- structured fuzzing --

TEST(ParserFuzz, Ipv4HeaderNeverCrashes) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk = testutil::random_bytes(rng, rng.uniform(0, 40));
    if (!junk.empty() && rng.chance(0.7)) junk[0] = 0x45;
    (void)packet::Ipv4Header::parse(junk);
  }
}

TEST(ParserFuzz, TcpHeaderNeverCrashes) {
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk = testutil::random_bytes(rng, rng.uniform(0, 60));
    (void)packet::TcpHeader::parse_unchecked(junk);
    (void)packet::TcpHeader::parse(junk, 1, 2);
  }
}

TEST(ParserFuzz, UdpHeaderNeverCrashes) {
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk = testutil::random_bytes(rng, rng.uniform(0, 40));
    (void)packet::UdpHeader::parse(junk, 1, 2);
  }
}

TEST(ParserFuzz, FromWireNeverCrashes) {
  Rng rng(10);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk = testutil::random_bytes(rng, rng.uniform(0, 80));
    if (junk.size() >= 20 && rng.chance(0.7)) junk[0] = 0x45;
    (void)packet::from_wire(junk);
  }
}

// -------------------------------------------------------- store erase --

TEST(PacketStoreErase, RemovesAndAccounts) {
  cache::PacketStore store;
  const auto id = store.insert(Bytes(100, 'a'), {});
  const auto id2 = store.insert(Bytes(50, 'b'), {});
  EXPECT_TRUE(store.erase(id));
  EXPECT_FALSE(store.erase(id));  // already gone
  EXPECT_FALSE(store.contains(id));
  EXPECT_TRUE(store.contains(id2));
  EXPECT_EQ(store.bytes_used(), 50u);
  EXPECT_EQ(store.size(), 1u);
}

// ----------------------------------------------------- simulator scale --

TEST(SimulatorScale, MillionEventsInOrder) {
  sim::Simulator sim;
  Rng rng(11);
  std::uint64_t fired = 0;
  sim::SimTime last = 0;
  bool monotone = true;
  for (int i = 0; i < 1'000'000; ++i) {
    sim.at(static_cast<sim::SimTime>(rng.uniform(0, 1'000'000'000)),
           [&, t = sim.now()]() {
             if (sim.now() < last) monotone = false;
             last = sim.now();
             ++fired;
           });
  }
  sim.run();
  EXPECT_EQ(fired, 1'000'000u);
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace bytecache
