#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/metrics.h"
#include "harness/table.h"
#include "workload/generators.h"

namespace bytecache::harness {
namespace {

// ------------------------------------------------------------ metrics --

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.stddev(), 0.0);
}

// -------------------------------------------------------------- table --

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("+-------+-------+"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(Table, CsvForm) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

// ---------------------------------------------------------- experiment --

TEST(Experiment, TrialPopulatesAllMetrics) {
  util::Rng rng(1);
  const auto file = workload::make_file1(rng, 100'000);
  ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.02;
  auto r = run_trial(cfg, file, 7);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.duration_s, 0.0);
  EXPECT_GT(r.wire_bytes_forward, 0u);
  EXPECT_GT(r.packets_forward, 0u);
  EXPECT_GT(r.payload_bytes_in, 0u);
  EXPECT_GT(r.payload_bytes_out, 0u);
  EXPECT_LT(r.payload_bytes_out, r.payload_bytes_in);
  EXPECT_GT(r.encoded_packets, 0u);
  EXPECT_GT(r.avg_packet_size, 0.0);
  EXPECT_GT(r.actual_loss, 0.0);
  EXPECT_GE(r.perceived_loss, r.actual_loss);
}

TEST(Experiment, AggregateRunsRequestedTrials) {
  util::Rng rng(2);
  const auto file = workload::make_file1(rng, 50'000);
  ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kNone;
  cfg.trials = 4;
  auto agg = run_experiment(cfg, file);
  EXPECT_EQ(agg.trials.size(), 4u);
  EXPECT_EQ(agg.duration_s.count(), 4u);
  EXPECT_EQ(agg.completion_rate, 1.0);
}

TEST(Experiment, DifferentSeedsGiveDifferentLossyOutcomes) {
  util::Rng rng(3);
  const auto file = workload::make_file1(rng, 80'000);
  ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.loss_rate = 0.05;
  cfg.trials = 4;
  auto agg = run_experiment(cfg, file);
  EXPECT_GT(agg.duration_s.stddev(), 0.0);
}

TEST(Experiment, RatioPointBaselineIsNone) {
  util::Rng rng(4);
  const auto file = workload::make_file1(rng, 80'000);
  ExperimentConfig cfg;
  cfg.policy = core::PolicyKind::kCacheFlush;
  cfg.trials = 2;
  auto point = run_ratio_point(cfg, file);
  EXPECT_GT(point.bytes_ratio, 0.0);
  EXPECT_LT(point.bytes_ratio, 1.0);  // redundant file: DRE must win
  EXPECT_GT(point.delay_ratio, 0.0);
  // The baseline ran without DRE: its encoder stats are empty.
  EXPECT_EQ(point.without_dre.trials[0].encoded_packets, 0u);
}

}  // namespace
}  // namespace bytecache::harness
