// Parameterized property tests of the DRE codec.
//
// The central invariant, swept across policies, window sizes, selection
// densities, payload sizes, and loss patterns: the decoder either
// reconstructs a payload BIT-EXACTLY or drops the packet — it never
// delivers wrong bytes.
#include <gtest/gtest.h>

#include <tuple>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "tests/testutil.h"
#include "workload/generators.h"

namespace bytecache::core {
namespace {

using testutil::make_tcp_packet;
using testutil::random_bytes;
using testutil::segment_stream;
using util::Bytes;
using util::Rng;

// --------------------------------------------- policy x window x bits --

using CodecParams = std::tuple<PolicyKind, std::size_t, unsigned>;

class CodecSweep : public ::testing::TestWithParam<CodecParams> {
 protected:
  DreParams dre_params() const {
    DreParams p;
    p.window = std::get<1>(GetParam());
    p.select_bits = std::get<2>(GetParam());
    return p;
  }
  PolicyKind kind() const { return std::get<0>(GetParam()); }
};

TEST_P(CodecSweep, LosslessStreamRoundTripsBitExactly) {
  const DreParams params = dre_params();
  Encoder enc(params, make_policy(kind(), params));
  Decoder dec(params);
  Rng rng(std::get<1>(GetParam()) * 131 + std::get<2>(GetParam()));
  const Bytes object = workload::make_file1(rng, 120 * 1460);
  std::size_t encoded = 0;
  for (auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    if (enc.process(*pkt).encoded) ++encoded;
    const DecodeInfo info = dec.process(*pkt);
    ASSERT_FALSE(is_drop(info.status));
    ASSERT_EQ(pkt->payload, original);
  }
  if (kind() != PolicyKind::kNone) {
    EXPECT_GT(encoded, 0u);
  }
}

TEST_P(CodecSweep, EncoderNeverGrowsThePayload) {
  const DreParams params = dre_params();
  Encoder enc(params, make_policy(kind(), params));
  Rng rng(7);
  const Bytes object = workload::make_file2(rng, 80 * 1460);
  for (auto& pkt : segment_stream(object)) {
    const std::size_t before = pkt->payload.size();
    enc.process(*pkt);
    ASSERT_LE(pkt->payload.size(), before);
  }
}

TEST_P(CodecSweep, StatsAreConsistent) {
  const DreParams params = dre_params();
  Encoder enc(params, make_policy(kind(), params));
  Rng rng(8);
  const Bytes object = workload::make_file1(rng, 60 * 1460);
  for (auto& pkt : segment_stream(object)) enc.process(*pkt);
  const EncoderStats& s = enc.stats();
  EXPECT_LE(s.bytes_out, s.bytes_in);
  EXPECT_LE(s.encoded_packets, s.data_packets);
  EXPECT_LE(s.data_packets, s.packets);
  EXPECT_GE(s.regions, s.encoded_packets);  // >= 1 region per encoded pkt
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWindowBits, CodecSweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kNaive, PolicyKind::kCacheFlush,
                          PolicyKind::kTcpSeq, PolicyKind::kKDistance,
                          PolicyKind::kAdaptive),
        ::testing::Values(8u, 16u, 32u),
        ::testing::Values(2u, 4u, 6u)),
    [](const ::testing::TestParamInfo<CodecParams>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

// ----------------------------------------------------- payload sizes --

class PayloadSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizeSweep, RoundTripAndBoundaries) {
  const std::size_t size = GetParam();
  DreParams params;
  Encoder enc(params, make_policy(PolicyKind::kNaive, params));
  Decoder dec(params);
  Rng rng(size);
  const Bytes data = random_bytes(rng, size);

  // Twice the same payload: the second may be encoded (if big enough).
  auto p1 = testutil::make_udp_packet(data);
  enc.process(*p1);
  ASSERT_FALSE(is_drop(dec.process(*p1).status));
  auto p2 = testutil::make_udp_packet(data);
  const Bytes original = p2->payload;
  enc.process(*p2);
  const DecodeInfo info = dec.process(*p2);
  ASSERT_FALSE(is_drop(info.status));
  EXPECT_EQ(p2->payload, original);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizeSweep,
                         ::testing::Values(1u, 15u, 16u, 17u, 26u, 27u, 64u,
                                           256u, 1460u, 9000u, 65535u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "bytes" + std::to_string(i.param);
                         });

TEST(PayloadSizeLimits, OversizedPayloadPassesThrough) {
  DreParams params;
  Encoder enc(params, make_policy(PolicyKind::kNaive, params));
  Rng rng(1);
  const Bytes big = random_bytes(rng, 70'000);  // > 16-bit offsets
  auto p1 = testutil::make_udp_packet(big);
  auto p2 = testutil::make_udp_packet(big);
  EXPECT_FALSE(enc.process(*p1).data_packet);
  EXPECT_FALSE(enc.process(*p2).encoded);
  EXPECT_EQ(p2->payload.size(), 70'000u);
}

// ------------------------------------------------------ loss patterns --

struct LossPattern {
  const char* name;
  int period;  // drop every period-th packet (0 = none)
};

class LossPatternSweep
    : public ::testing::TestWithParam<std::tuple<PolicyKind, int>> {};

TEST_P(LossPatternSweep, NeverDeliversWrongBytes) {
  const PolicyKind kind = std::get<0>(GetParam());
  const int period = std::get<1>(GetParam());
  DreParams params;
  Encoder enc(params, make_policy(kind, params));
  Decoder dec(params);
  Rng rng(period * 7 + 1);
  const Bytes object = workload::make_file1(rng, 150 * 1460);
  int idx = 0;
  std::size_t delivered = 0, dropped = 0;
  for (auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    enc.process(*pkt);
    ++idx;
    if (period > 0 && idx % period == 0) {
      continue;  // lost on the link
    }
    const DecodeInfo info = dec.process(*pkt);
    if (is_drop(info.status)) {
      ++dropped;
    } else {
      ++delivered;
      ASSERT_EQ(pkt->payload, original) << "wrong bytes delivered!";
    }
  }
  EXPECT_GT(delivered, 0u);
  if (period == 0) {
    EXPECT_EQ(dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LossPatternSweep,
    ::testing::Combine(::testing::Values(PolicyKind::kNaive,
                                         PolicyKind::kCacheFlush,
                                         PolicyKind::kTcpSeq,
                                         PolicyKind::kKDistance),
                       ::testing::Values(0, 3, 7, 20)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, int>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_drop" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------- k-distance sweep --

class KDistanceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KDistanceSweep, CascadeBoundedByK) {
  const std::size_t k = GetParam();
  DreParams params;
  params.k_distance = k;
  Encoder enc(params, make_policy(PolicyKind::kKDistance, params));
  Decoder dec(params);
  Rng rng(k);
  // Maximally coupled stream: every packet repeats the same content.
  const Bytes base = random_bytes(rng, 1460);
  int max_run = 0, run = 0;
  for (int i = 0; i < 60; ++i) {
    Bytes payload = base;
    payload[4] = static_cast<std::uint8_t>(i);
    auto pkt = make_tcp_packet(payload, 1000 + 1460 * i);
    enc.process(*pkt);
    if (i == 13 || i == 29) {  // two losses
      run = 0;
      continue;
    }
    if (is_drop(dec.process(*pkt).status)) {
      run = std::max(run + 1, 1);
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_LE(max_run, static_cast<int>(k));
}

TEST_P(KDistanceSweep, ReferenceRateMatchesK) {
  const std::size_t k = GetParam();
  DreParams params;
  params.k_distance = k;
  Encoder enc(params, make_policy(PolicyKind::kKDistance, params));
  Rng rng(k + 100);
  const Bytes object = workload::make_file1(rng, 100 * 1460);
  for (auto& pkt : segment_stream(object)) enc.process(*pkt);
  const EncoderStats& s = enc.stats();
  const double expected =
      k <= 1 ? static_cast<double>(s.data_packets)
             : static_cast<double>(s.data_packets) / static_cast<double>(k);
  EXPECT_NEAR(static_cast<double>(s.references), expected,
              expected * 0.2 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, KDistanceSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 64u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "k" + std::to_string(i.param);
                         });

// -------------------------------------------------------- determinism --

TEST(CodecDeterminism, SameStreamSameOutput) {
  DreParams params;
  Rng rng(55);
  const Bytes object = workload::make_file2(rng, 80 * 1460);
  auto run_once = [&]() {
    Encoder enc(params, make_policy(PolicyKind::kTcpSeq, params));
    Bytes all;
    for (auto& pkt : segment_stream(object)) {
      enc.process(*pkt);
      util::append(all, pkt->payload);
    }
    return all;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------- eviction under load --

TEST(CodecEviction, TinyCacheNeverCorruptsStream) {
  // With a cache far too small, entries are constantly evicted on both
  // sides; decode failures are acceptable, wrong bytes are not.
  DreParams params;
  cache::CacheConfig cc;
  cc.l1_bytes = 8 * 1480;  // ~8 packets
  Encoder enc(params, make_policy(PolicyKind::kNaive, params), cc);
  Decoder dec(params, cc);
  Rng rng(66);
  const Bytes object = workload::make_file1(rng, 200 * 1460);
  std::size_t drops = 0;
  for (auto& pkt : segment_stream(object)) {
    const Bytes original = pkt->payload;
    enc.process(*pkt);
    const DecodeInfo info = dec.process(*pkt);
    if (is_drop(info.status)) {
      ++drops;
    } else {
      ASSERT_EQ(pkt->payload, original);
    }
  }
  EXPECT_GT(enc.cache().store().evictions(), 0u);
}

}  // namespace
}  // namespace bytecache::core
