// Correctness battery for the coded-repair layer (DESIGN.md §13): GF(256)
// field axioms over randomized operands, exhaustive mul/div round-trips,
// the reconstruction identity (encode G packets, drop any <= R subset,
// byte equality after repair — exhaustive for small G, randomized for
// large G), the reorder cache's in-order release discipline, and the
// bounded-liveness force-release paths.  Randomized tests log their seed
// (BYTECACHE_TEST_SEED overrides).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fec/decoder.h"
#include "fec/encoder.h"
#include "fec/gf256.h"
#include "fec/wire.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace bytecache {
namespace {

using fec::gf_axpy;
using fec::gf_div;
using fec::gf_inv;
using fec::gf_mul;
using fec::gf_scale;
using fec::RepairConfig;
using fec::RepairDecoder;
using fec::RepairEncoder;

// ---------------------------------------------------------------- GF(256) --

TEST(Gf256, MulDivRoundTripsForAllNonzeroElements) {
  // Exhaustive: every nonzero element has an inverse and division undoes
  // multiplication — 255 x 255 pairs, no sampling.
  for (unsigned a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    ASSERT_EQ(gf_mul(ua, gf_inv(ua)), 1) << "a=" << a;
    for (unsigned b = 1; b < 256; ++b) {
      const auto ub = static_cast<std::uint8_t>(b);
      ASSERT_EQ(gf_div(gf_mul(ua, ub), ub), ua) << "a=" << a << " b=" << b;
      ASSERT_NE(gf_mul(ua, ub), 0) << "zero divisor: " << a << "*" << b;
    }
  }
}

TEST(Gf256, FieldAxiomsOverRandomizedOperands) {
  util::Rng rng(testutil::test_seed(0xFEC01));
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = static_cast<std::uint8_t>(rng.next_u64());
    // Multiplicative identity, commutativity, associativity.
    ASSERT_EQ(gf_mul(a, 1), a);
    ASSERT_EQ(gf_mul(a, b), gf_mul(b, a));
    ASSERT_EQ(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
    // Addition is XOR: a + a = 0, and multiplication distributes.
    ASSERT_EQ(gf_mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf_mul(a, b) ^ gf_mul(a, c));
    // Zero annihilates.
    ASSERT_EQ(gf_mul(a, 0), 0);
  }
}

TEST(Gf256, AxpyAndScaleMatchScalarReference) {
  util::Rng rng(testutil::test_seed(0xFEC02));
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1500}}) {
    const util::Bytes src = testutil::random_bytes(rng, n);
    for (const unsigned c : {0u, 1u, 2u, 0x53u, 0xFFu}) {
      const auto uc = static_cast<std::uint8_t>(c);
      util::Bytes dst = testutil::random_bytes(rng, n);
      util::Bytes expect = dst;
      for (std::size_t i = 0; i < n; ++i) {
        expect[i] ^= gf_mul(uc, src[i]);
      }
      gf_axpy(dst.data(), src.data(), n, uc);
      ASSERT_EQ(dst, expect) << "axpy n=" << n << " c=" << c;

      util::Bytes buf = src;
      util::Bytes sexpect(n);
      for (std::size_t i = 0; i < n; ++i) sexpect[i] = gf_mul(uc, src[i]);
      gf_scale(buf.data(), n, uc);
      ASSERT_EQ(buf, sexpect) << "scale n=" << n << " c=" << c;
    }
  }
}

TEST(Gf256, CauchyCoefficientRowsAreDistinctAndNonzero) {
  // repair_coeff(r, j) = 1 / (x_r + y_j) with disjoint index sets: no
  // coefficient is zero and no two repair rows are proportional, the
  // ingredients of the any-R-losses recovery guarantee (the guarantee
  // itself is exercised end-to-end below).
  for (unsigned r = 0; r < fec::kMaxRepairPackets; ++r) {
    for (unsigned j = 0; j < fec::kMaxGenerationPackets; ++j) {
      ASSERT_NE(fec::repair_coeff(static_cast<std::uint8_t>(r),
                                  static_cast<std::uint8_t>(j)),
                0);
    }
  }
  for (unsigned r1 = 0; r1 < fec::kMaxRepairPackets; ++r1) {
    for (unsigned r2 = r1 + 1; r2 < fec::kMaxRepairPackets; ++r2) {
      // Rows r1, r2 differ in more than a scalar factor: the ratio of
      // their entries is not constant across columns.
      const std::uint8_t ratio0 =
          gf_div(fec::repair_coeff(static_cast<std::uint8_t>(r1), 0),
                 fec::repair_coeff(static_cast<std::uint8_t>(r2), 0));
      bool varies = false;
      for (unsigned j = 1; j < fec::kMaxGenerationPackets && !varies; ++j) {
        const std::uint8_t ratio =
            gf_div(fec::repair_coeff(static_cast<std::uint8_t>(r1),
                                     static_cast<std::uint8_t>(j)),
                   fec::repair_coeff(static_cast<std::uint8_t>(r2),
                                     static_cast<std::uint8_t>(j)));
        varies = ratio != ratio0;
      }
      ASSERT_TRUE(varies) << "rows " << r1 << " and " << r2
                          << " are proportional";
    }
  }
}

// ------------------------------------------------- encode/repair fixture --

/// Wire images of `n` distinct member packets (varying sizes so the
/// symbol padding paths are exercised), plus their packets for replay.
struct MemberSet {
  std::vector<packet::PacketPtr> pkts;
  std::vector<util::Bytes> wires;
};

MemberSet make_members(util::Rng& rng, std::size_t n) {
  MemberSet m;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 40 + rng.uniform(0, 1100);
    auto p = testutil::make_tcp_packet(
        testutil::random_bytes(rng, len),
        1000 + static_cast<std::uint32_t>(i) * 1460);
    m.wires.push_back(packet::to_wire(*p));
    m.pkts.push_back(std::move(p));
  }
  return m;
}

/// Runs one generation through the encoder, returning the emitted repair
/// payloads and the tags assigned to each member.
struct EncodedGeneration {
  std::vector<RepairEncoder::Tag> tags;
  std::vector<util::Bytes> repairs;
};

EncodedGeneration encode_generation(RepairEncoder& enc, const MemberSet& m) {
  EncodedGeneration g;
  for (const util::Bytes& w : m.wires) {
    enc.begin_packet();
    g.tags.push_back(enc.next_tag());
    enc.add_member(w);
    for (const util::Bytes& r : enc.emitted()) g.repairs.push_back(r);
  }
  if (enc.generation_open()) {
    enc.begin_packet();
    enc.close_generation();
    for (const util::Bytes& r : enc.emitted()) g.repairs.push_back(r);
  }
  return g;
}

/// Feeds the surviving members (in order) and then every repair into a
/// fresh decoder; returns the released packets.
std::vector<RepairDecoder::Released> decode_with_drops(
    const RepairConfig& cfg, const MemberSet& m, const EncodedGeneration& g,
    const std::vector<bool>& dropped) {
  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  for (std::size_t i = 0; i < m.pkts.size(); ++i) {
    if (dropped[i]) continue;
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  for (const util::Bytes& r : g.repairs) dec.on_repair(r, out);
  dec.audit();
  return out;
}

/// Asserts the released sequence is exactly the member set, in order,
/// byte-for-byte, with dropped members flagged as reconstructed.
void expect_full_recovery(const MemberSet& m,
                          const std::vector<RepairDecoder::Released>& out,
                          const std::vector<bool>& dropped) {
  ASSERT_EQ(out.size(), m.pkts.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NE(out[i].pkt, nullptr) << "member " << i;
    EXPECT_EQ(out[i].reconstructed, dropped[i]) << "member " << i;
    EXPECT_EQ(packet::to_wire(*out[i].pkt), m.wires[i])
        << "member " << i << " bytes diverge";
  }
}

// ------------------------------------------------ reconstruction identity --

TEST(RepairCode, ExhaustiveSmallGenerationEveryDropSubsetRecovers) {
  util::Rng rng(testutil::test_seed(0xFEC03));
  constexpr std::size_t kG = 6, kR = 2;
  RepairConfig cfg;
  cfg.generation_packets = kG;
  cfg.repair_packets = kR;
  const MemberSet m = make_members(rng, kG);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);
  ASSERT_EQ(g.repairs.size(), kR);
  enc.audit();

  // Every drop subset of size 0, 1 and 2 — exhaustive.
  for (unsigned mask = 0; mask < (1u << kG); ++mask) {
    if (__builtin_popcount(mask) > static_cast<int>(kR)) continue;
    std::vector<bool> dropped(kG);
    for (std::size_t i = 0; i < kG; ++i) dropped[i] = ((mask >> i) & 1) != 0;
    const auto out = decode_with_drops(cfg, m, g, dropped);
    expect_full_recovery(m, out, dropped);
  }
}

TEST(RepairCode, RandomLargeGenerationDropsUpToRRecover) {
  util::Rng rng(testutil::test_seed(0xFEC04));
  constexpr std::size_t kG = 48, kR = 8;
  RepairConfig cfg;
  cfg.generation_packets = kG;
  cfg.repair_packets = kR;
  const MemberSet m = make_members(rng, kG);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);
  ASSERT_EQ(g.repairs.size(), kR);

  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t losses = rng.uniform(1, kR);
    std::vector<std::size_t> idx(kG);
    for (std::size_t i = 0; i < kG; ++i) idx[i] = i;
    // Random loss subset via partial Fisher-Yates.
    for (std::size_t i = 0; i < losses; ++i) {
      std::swap(idx[i], idx[rng.uniform(i, kG - 1)]);
    }
    std::vector<bool> dropped(kG);
    for (std::size_t i = 0; i < losses; ++i) dropped[idx[i]] = true;
    const auto out = decode_with_drops(cfg, m, g, dropped);
    expect_full_recovery(m, out, dropped);
  }
}

TEST(RepairCode, RepairsArriveBeforeTheirMembers) {
  // Repairs first, then the surviving members: the incremental reduction
  // must handle either arrival order.
  util::Rng rng(testutil::test_seed(0xFEC05));
  constexpr std::size_t kG = 8, kR = 3;
  RepairConfig cfg;
  cfg.generation_packets = kG;
  cfg.repair_packets = kR;
  const MemberSet m = make_members(rng, kG);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);

  std::vector<bool> dropped(kG);
  dropped[0] = dropped[3] = dropped[7] = true;  // 3 = R losses
  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  for (const util::Bytes& r : g.repairs) dec.on_repair(r, out);
  for (std::size_t i = 0; i < kG; ++i) {
    if (dropped[i]) continue;
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  dec.audit();
  expect_full_recovery(m, out, dropped);
  EXPECT_EQ(dec.stats().reconstructed, 3u);
  EXPECT_EQ(dec.stats().forced_releases, 0u);
}

TEST(RepairCode, EarlyClosedShortGenerationStillRecovers) {
  // A generation closed early (retransmission / teardown) has fewer than
  // G members; its repairs must still cover it.
  util::Rng rng(testutil::test_seed(0xFEC06));
  RepairConfig cfg;  // G = 16 default
  cfg.repair_packets = 2;
  const MemberSet m = make_members(rng, 5);  // closes at 5 of 16
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);
  ASSERT_EQ(g.repairs.size(), 2u);
  EXPECT_EQ(enc.stats().early_closes, 1u);

  std::vector<bool> dropped(5);
  dropped[1] = dropped[4] = true;
  const auto out = decode_with_drops(cfg, m, g, dropped);
  expect_full_recovery(m, out, dropped);
}

// ----------------------------------------------------------- repair wire --

TEST(RepairWire, EmittedRepairsParseBackAndPinTheirCoefficients) {
  util::Rng rng(testutil::test_seed(0xFEC07));
  RepairConfig cfg;
  cfg.generation_packets = 4;
  cfg.repair_packets = 3;
  const MemberSet m = make_members(rng, 4);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);
  ASSERT_EQ(g.repairs.size(), 3u);
  for (std::size_t r = 0; r < g.repairs.size(); ++r) {
    ASSERT_TRUE(fec::is_repair_payload(g.repairs[r]));
    fec::RepairPacket p;
    ASSERT_TRUE(fec::RepairPacket::parse_repair_into(g.repairs[r], p));
    EXPECT_EQ(p.gen_size, 4);
    EXPECT_EQ(p.repair_index, r);
    EXPECT_EQ(p.repair_total, 3);
    ASSERT_EQ(p.coeffs.size(), 4u);
    for (std::size_t j = 0; j < p.coeffs.size(); ++j) {
      // The decoder reads coefficients off the wire; pin that they are
      // the Cauchy construction so either side can be upgraded alone.
      EXPECT_EQ(p.coeffs[j],
                fec::repair_coeff(static_cast<std::uint8_t>(r),
                                  static_cast<std::uint8_t>(j)));
    }
  }
}

TEST(RepairWire, GenSerialArithmeticWraps) {
  EXPECT_TRUE(fec::gen_newer(1, 0));
  EXPECT_FALSE(fec::gen_newer(0, 1));
  EXPECT_FALSE(fec::gen_newer(5, 5));
  EXPECT_TRUE(fec::gen_newer(2, 0xFFFF));
  EXPECT_EQ(fec::gen_distance(2, 0xFFFF), 3);
  EXPECT_FALSE(fec::gen_newer(0x8000, 0));
}

// ---------------------------------------------------------- reorder cache --

TEST(RepairDecoder, ReorderedArrivalsAreReleasedInOrder) {
  util::Rng rng(testutil::test_seed(0xFEC08));
  constexpr std::size_t kG = 12;
  RepairConfig cfg;
  cfg.generation_packets = kG;
  cfg.repair_packets = 2;
  const MemberSet m = make_members(rng, kG);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);

  // Shuffle all arrivals (no losses), feed out of order.
  std::vector<std::size_t> order(kG);
  for (std::size_t i = 0; i < kG; ++i) order[i] = i;
  for (std::size_t i = kG; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(0, i - 1)]);
  }
  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  for (const std::size_t i : order) {
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  dec.audit();
  const std::vector<bool> dropped(kG, false);
  expect_full_recovery(m, out, dropped);
  EXPECT_EQ(dec.stats().forced_releases, 0u);
  EXPECT_EQ(dec.stats().reconstructed, 0u);
  EXPECT_GT(dec.stats().resequenced, 0u);
}

TEST(RepairDecoder, DuplicateArrivalsAreSuppressedNotReplayed) {
  util::Rng rng(testutil::test_seed(0xFEC09));
  constexpr std::size_t kG = 4;
  RepairConfig cfg;
  cfg.generation_packets = kG;
  cfg.repair_packets = 1;
  const MemberSet m = make_members(rng, kG);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);

  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  for (std::size_t i = 0; i < kG; ++i) {
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  ASSERT_EQ(out.size(), kG);
  // Re-delivering an already-released member (in-flight duplication or a
  // spurious retransmission of the same wire image) must NOT surface it
  // again: replaying its cache ops would desync the core decoder.
  dec.on_data(g.tags[1].gen_id, g.tags[1].gen_seq,
              packet::clone_packet(*m.pkts[1]), out);
  EXPECT_EQ(out.size(), kG);
  EXPECT_EQ(dec.stats().duplicates, 1u);
  // Duplicate repairs are counted redundant, not re-solved.
  for (const util::Bytes& r : g.repairs) dec.on_repair(r, out);
  for (const util::Bytes& r : g.repairs) dec.on_repair(r, out);
  EXPECT_EQ(out.size(), kG);
  EXPECT_GT(dec.stats().repairs_redundant, 0u);
  dec.audit();
}

TEST(RepairDecoder, UnrecoverableGenerationIsForceReleasedPromptly) {
  util::Rng rng(testutil::test_seed(0xFEC0A));
  constexpr std::size_t kG = 8, kR = 2;
  RepairConfig cfg;
  cfg.generation_packets = kG;
  cfg.repair_packets = kR;
  // kG members fill generation 0; one more opens generation 1 — the
  // newer-traffic evidence the give-up heuristic requires.
  const MemberSet m = make_members(rng, kG + 1);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);
  ASSERT_EQ(g.repairs.size(), 2 * kR);  // both generations closed

  // R + 1 losses in generation 0: short of rows even with every repair.
  std::vector<bool> dropped(kG);
  dropped[1] = dropped[2] = dropped[5] = true;
  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  for (std::size_t i = 0; i < kG; ++i) {
    if (dropped[i]) continue;
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  for (std::size_t r = 0; r < kR; ++r) dec.on_repair(g.repairs[r], out);
  // All repairs seen, still unsolvable — but every arrival so far was
  // for generation 0 itself, so the decoder keeps waiting: the missing
  // members may merely be reordered behind the repairs.
  EXPECT_EQ(out.size(), 1u);  // seq 0 flowed through before the gap
  EXPECT_EQ(dec.stats().forced_releases, 0u);
  // The first packet of generation 1 proves the stream moved on: the
  // stuck generation is abandoned at once, not after the whole arrival
  // budget.  Survivors come out, gaps stay gaps for TCP to recover.
  dec.on_data(g.tags[kG].gen_id, g.tags[kG].gen_seq,
              packet::clone_packet(*m.pkts[kG]), out);
  dec.audit();
  EXPECT_EQ(out.size(), kG - 3 + 1);
  EXPECT_EQ(out.back().pkt->uid, m.pkts[kG]->uid);
  EXPECT_GE(dec.stats().forced_releases, 1u);
  EXPECT_EQ(dec.stats().generations_abandoned, 1u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(RepairDecoder, BlockedCursorReleasesAfterArrivalBudget) {
  util::Rng rng(testutil::test_seed(0xFEC0B));
  RepairConfig cfg;
  cfg.generation_packets = 4;
  cfg.repair_packets = 1;
  cfg.blocked_arrival_budget = 6;
  const MemberSet m = make_members(rng, 12);  // three generations of 4

  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);
  ASSERT_EQ(g.repairs.size(), 3u);  // one per generation
  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  // Generation 0 loses member 0 AND its only repair: unrecoverable, but
  // the decoder cannot prove it (the repair may still arrive).  Later
  // traffic keeps flowing; the arrival budget must unblock the cursor.
  for (std::size_t i = 1; i < 4; ++i) {
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  EXPECT_EQ(out.size(), 0u);  // gap at seq 0 holds everything
  for (std::size_t i = 4; i < 12; ++i) {
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
    // Generations 1 and 2 keep their repairs: they retire normally once
    // a repair announces their size and every member is out.
    if (i == 7) dec.on_repair(g.repairs[1], out);
  }
  dec.on_repair(g.repairs[2], out);
  dec.audit();
  // The budget fired: generation 0's survivors were force-released and
  // all later in-order traffic flowed out behind them.
  EXPECT_GE(dec.stats().forced_releases, 1u);
  EXPECT_EQ(out.size(), 11u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(RepairDecoder, DrainReleasesEverythingOldestFirst) {
  util::Rng rng(testutil::test_seed(0xFEC0C));
  RepairConfig cfg;
  cfg.generation_packets = 4;
  cfg.repair_packets = 1;
  const MemberSet m = make_members(rng, 8);
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);

  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  // Hold members back in both generations: gaps at seq 0 of each.
  for (const std::size_t i : {1ul, 2ul, 5ul, 7ul}) {
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(dec.buffered(), 4u);
  dec.drain(out);
  dec.audit();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].pkt->uid, m.pkts[1]->uid);
  EXPECT_EQ(out[1].pkt->uid, m.pkts[2]->uid);
  EXPECT_EQ(out[2].pkt->uid, m.pkts[5]->uid);
  EXPECT_EQ(out[3].pkt->uid, m.pkts[7]->uid);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(RepairDecoder, GenerationWindowOverflowForceReleasesOldest) {
  util::Rng rng(testutil::test_seed(0xFEC0D));
  RepairConfig cfg;
  cfg.generation_packets = 2;
  cfg.repair_packets = 1;
  cfg.gen_window = 2;
  cfg.blocked_arrival_budget = 1000;  // keep the budget out of the way
  const MemberSet m = make_members(rng, 10);  // five generations of 2
  RepairEncoder enc(cfg);
  const EncodedGeneration g = encode_generation(enc, m);

  RepairDecoder dec(cfg);
  std::vector<RepairDecoder::Released> out;
  // Every generation is gapped at seq 0; claiming generation k (>=
  // window) must evict generation k - window rather than grow.
  for (std::size_t i = 1; i < 10; i += 2) {
    dec.on_data(g.tags[i].gen_id, g.tags[i].gen_seq,
                packet::clone_packet(*m.pkts[i]), out);
  }
  dec.audit();
  EXPECT_GE(dec.stats().forced_releases, 3u);
  EXPECT_LE(dec.buffered(), 2u);
}

}  // namespace
}  // namespace bytecache
