#include <gtest/gtest.h>

#include <set>

#include "rabin/polynomial.h"
#include "rabin/rabin.h"
#include "rabin/window.h"
#include "util/rng.h"

namespace bytecache::rabin {
namespace {

using util::Bytes;
using util::Rng;

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

// --------------------------------------------------------- polynomial --

TEST(Polynomial, MulXReduces) {
  // x^63 * x = x^64 == q (mod x^64 + q).
  const std::uint64_t q = kDefaultPoly;
  EXPECT_EQ(mul_x(std::uint64_t{1} << 63, q), q);
  // Low-degree values just shift.
  EXPECT_EQ(mul_x(0b101, q), 0b1010u);
}

TEST(Polynomial, MulmodIdentityAndZero) {
  const std::uint64_t q = kDefaultPoly;
  for (std::uint64_t a : {std::uint64_t{1}, std::uint64_t{0xDEADBEEF},
                          std::uint64_t{0x8000000000000001ull}}) {
    EXPECT_EQ(mulmod(a, 1, q), a);
    EXPECT_EQ(mulmod(1, a, q), a);
    EXPECT_EQ(mulmod(a, 0, q), 0u);
  }
}

TEST(Polynomial, MulmodCommutativeAndDistributive) {
  const std::uint64_t q = kDefaultPoly;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const std::uint64_t c = rng.next_u64();
    EXPECT_EQ(mulmod(a, b, q), mulmod(b, a, q));
    // a*(b+c) == a*b + a*c over GF(2) (+ is XOR).
    EXPECT_EQ(mulmod(a, b ^ c, q), mulmod(a, b, q) ^ mulmod(a, c, q));
  }
}

TEST(Polynomial, MulmodAssociative) {
  const std::uint64_t q = kDefaultPoly;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const std::uint64_t c = rng.next_u64();
    EXPECT_EQ(mulmod(mulmod(a, b, q), c, q), mulmod(a, mulmod(b, c, q), q));
  }
}

TEST(Polynomial, DefaultPolyIsIrreducible) {
  EXPECT_TRUE(is_irreducible(kDefaultPoly));
}

TEST(Polynomial, ReducibleExamplesRejected) {
  // x^64 + x^2 = x^2 (x^62 + 1): q = 4 is clearly reducible (no constant
  // term means divisible by x).
  EXPECT_FALSE(is_irreducible(0x4));
  // (x+1) divides any polynomial with an even number of terms; x^64 + 1
  // has two terms.
  EXPECT_FALSE(is_irreducible(0x1));
}

TEST(Polynomial, FindIrreducibleFindsVerifiedModuli) {
  for (std::uint64_t seed : {1ull, 99ull, 123456789ull}) {
    const std::uint64_t q = find_irreducible(seed);
    EXPECT_TRUE(is_irreducible(q)) << std::hex << q;
    EXPECT_EQ(q & 1, 1u);  // constant term present
  }
}

TEST(Polynomial, FermatPropertyForElements) {
  // In GF(2^64), a^(2^64) == a for every a.
  const std::uint64_t q = kDefaultPoly;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t a = rng.next_u64();
    EXPECT_EQ(pow2k(a, 64, q), a);
  }
}

// -------------------------------------------------------------- rabin --

TEST(Rabin, OfMatchesRepeatedPush) {
  RabinTables t(16);
  const Bytes data = util::to_bytes("the quick brown fox");
  Fingerprint fp = kEmptyFingerprint;
  for (std::uint8_t b : data) fp = t.push(fp, b);
  EXPECT_EQ(t.of(data), fp);
}

TEST(Rabin, RollEqualsRecompute) {
  // The fundamental rolling property: after rolling, the fingerprint
  // equals the from-scratch fingerprint of the current window.
  Rng rng(4);
  for (std::size_t w : {4u, 16u, 64u}) {
    RabinTables t(w);
    const Bytes data = random_bytes(rng, 300);
    Fingerprint fp = t.of(util::BytesView(data.data(), w));
    for (std::size_t i = w; i < data.size(); ++i) {
      fp = t.roll(fp, data[i - w], data[i]);
      const Fingerprint expect =
          t.of(util::BytesView(data.data() + i - w + 1, w));
      ASSERT_EQ(fp, expect) << "w=" << w << " i=" << i;
    }
  }
}

TEST(Rabin, FingerprintDependsOnContentNotPosition) {
  RabinTables t(16);
  const Bytes a = util::to_bytes("ABCDEFGHIJKLMNOP");
  Bytes padded = util::to_bytes("xyz");
  util::append(padded, a);
  // Same 16 bytes anywhere must give the same fingerprint.
  EXPECT_EQ(t.of(a), t.of(util::BytesView(padded.data() + 3, 16)));
}

TEST(Rabin, DistinctContentDistinctFingerprints) {
  RabinTables t(16);
  Rng rng(5);
  std::set<Fingerprint> fps;
  for (int i = 0; i < 2000; ++i) {
    fps.insert(t.of(random_bytes(rng, 16)));
  }
  EXPECT_EQ(fps.size(), 2000u);  // collisions astronomically unlikely
}

TEST(Rabin, SelectionMask) {
  EXPECT_TRUE(selected(0x10, 4));
  EXPECT_TRUE(selected(0x0, 4));
  EXPECT_FALSE(selected(0x11, 4));
  EXPECT_TRUE(selected(0x11, 0));  // zero bits selects everything
}

TEST(Rabin, SelectionRateApproximatelyTwoToMinusK) {
  RabinTables t(16);
  Rng rng(6);
  const Bytes data = random_bytes(rng, 200000);
  std::size_t hits = 0;
  std::size_t total = scan(t, data, [&](std::size_t, Fingerprint fp) {
    if (selected(fp, 4)) ++hits;
  });
  const double rate = static_cast<double>(hits) / total;
  EXPECT_NEAR(rate, 1.0 / 16, 0.01);
}

// ------------------------------------------------------------- window --

TEST(RollingWindow, FullAfterWBytes) {
  RabinTables t(8);
  RollingWindow win(t);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(win.feed('a'));
  }
  EXPECT_TRUE(win.feed('a'));
  EXPECT_TRUE(win.full());
}

TEST(RollingWindow, ResetClears) {
  RabinTables t(4);
  RollingWindow win(t);
  for (int i = 0; i < 10; ++i) win.feed(static_cast<std::uint8_t>(i));
  win.reset();
  EXPECT_FALSE(win.full());
  EXPECT_EQ(win.fingerprint(), kEmptyFingerprint);
}

TEST(Scan, VisitsEveryWindowPosition) {
  RabinTables t(16);
  Bytes data(100, 'x');
  std::vector<std::size_t> offsets;
  const std::size_t n =
      scan(t, data, [&](std::size_t off, Fingerprint) { offsets.push_back(off); });
  EXPECT_EQ(n, 100 - 16 + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 84u);
}

TEST(Scan, ShortPayloadYieldsNothing) {
  RabinTables t(16);
  Bytes data(15, 'x');
  EXPECT_EQ(scan(t, data, [](std::size_t, Fingerprint) {}), 0u);
}

TEST(Scan, FingerprintsMatchFromScratch) {
  RabinTables t(16);
  Rng rng(7);
  const Bytes data = random_bytes(rng, 256);
  scan(t, data, [&](std::size_t off, Fingerprint fp) {
    ASSERT_EQ(fp, t.of(util::BytesView(data.data() + off, 16)));
  });
}

TEST(SelectedAnchors, RepeatedContentGetsIdenticalAnchors) {
  RabinTables t(16);
  Rng rng(8);
  const Bytes chunk = random_bytes(rng, 400);
  Bytes doubled = chunk;
  util::append(doubled, chunk);
  const auto anchors = selected_anchors(t, doubled, 4);
  // Every anchor in the first copy must appear in the second copy at
  // offset + 400 with the same fingerprint.
  std::size_t first_copy = 0;
  std::size_t matched = 0;
  for (const Anchor& a : anchors) {
    if (a.offset + 16 <= 400) {
      ++first_copy;
      for (const Anchor& b : anchors) {
        if (b.offset == a.offset + 400 && b.fp == a.fp) {
          ++matched;
          break;
        }
      }
    }
  }
  EXPECT_GT(first_copy, 0u);
  EXPECT_EQ(matched, first_copy);
}

}  // namespace
}  // namespace bytecache::rabin
