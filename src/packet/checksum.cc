#include "packet/checksum.h"

namespace bytecache::packet {

void ChecksumAccumulator::add(util::BytesView data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Pair the pending odd byte (it was the high half of a word).
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += static_cast<std::uint16_t>(data[i] << 8 | data[i + 1]);
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint16_t>(data[i] << 8);
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t v) {
  if (odd_) {
    // A pending odd byte occupies the high half of the current word: the
    // value's high byte completes that word and its low byte becomes the
    // new pending high half, exactly as add() would fold the same two
    // bytes.
    sum_ += static_cast<std::uint8_t>(v >> 8);
    sum_ += static_cast<std::uint64_t>(static_cast<std::uint8_t>(v)) << 8;
  } else {
    sum_ += v;
  }
}

void ChecksumAccumulator::add_u32(std::uint32_t v) {
  add_u16(static_cast<std::uint16_t>(v >> 16));
  add_u16(static_cast<std::uint16_t>(v));
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}

std::uint16_t internet_checksum(util::BytesView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

}  // namespace bytecache::packet
