// UDP header (RFC 768).
//
// The k-distance encoding policy is applicable to UDP streams (paper
// Section V-C); the UDP streaming example exercises it.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace bytecache::packet {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  /// Serializes header + `data` into `out` with the pseudo-header checksum.
  void serialize(util::Bytes& out, util::BytesView data, std::uint32_t src_ip,
                 std::uint32_t dst_ip) const;

  /// Parses and checksum-verifies from the front of `datagram`.
  static std::optional<UdpHeader> parse(util::BytesView datagram,
                                        std::uint32_t src_ip,
                                        std::uint32_t dst_ip);
};

}  // namespace bytecache::packet
