// TCP header (RFC 793), 20-byte fixed form (no options).
//
// The simulated TCP endpoints serialize real TCP headers into the IP
// payload so the DRE codec operates on genuine wire bytes, and the TcpSeq
// encoding policy can parse the sequence number out of any packet it sees
// (paper Fig. 7).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace bytecache::packet {

struct TcpHeader {
  static constexpr std::size_t kSize = 20;

  // Flag bits.
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t urgent = 0;

  [[nodiscard]] bool syn() const { return flags & kSyn; }
  [[nodiscard]] bool fin() const { return flags & kFin; }
  [[nodiscard]] bool rst() const { return flags & kRst; }
  [[nodiscard]] bool has_ack() const { return flags & kAck; }

  /// Serializes header + `data` into `out`, computing the transport
  /// checksum over the RFC 793 pseudo-header (src/dst IP, protocol, length).
  void serialize(util::Bytes& out, util::BytesView data, std::uint32_t src_ip,
                 std::uint32_t dst_ip) const;

  /// Parses a header from the front of `segment` (header + data) and
  /// verifies the checksum against the pseudo-header.  Returns nullopt on
  /// short input or checksum mismatch.
  static std::optional<TcpHeader> parse(util::BytesView segment,
                                        std::uint32_t src_ip,
                                        std::uint32_t dst_ip);

  /// Parses without checksum verification (used by the DRE encoder, which
  /// only needs the sequence number and must tolerate mid-rewrite packets).
  static std::optional<TcpHeader> parse_unchecked(util::BytesView segment);
};

}  // namespace bytecache::packet
