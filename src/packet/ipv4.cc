#include "packet/ipv4.h"

#include "packet/checksum.h"

namespace bytecache::packet {

void Ipv4Header::serialize(util::Bytes& out) const {
  const std::size_t start = out.size();
  util::put_u8(out, 0x45);  // version 4, IHL 5
  util::put_u8(out, tos);
  util::put_u16(out, total_length);
  util::put_u16(out, identification);
  util::put_u16(out, 0);  // flags/fragment offset: DF not modelled
  util::put_u8(out, ttl);
  util::put_u8(out, protocol);
  util::put_u16(out, 0);  // checksum placeholder
  util::put_u32(out, src);
  util::put_u32(out, dst);
  const std::uint16_t sum = internet_checksum(
      util::BytesView(out.data() + start, kSize));
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum);
}

std::optional<Ipv4Header> Ipv4Header::parse(util::BytesView in) {
  if (in.size() < kSize) return std::nullopt;
  if (in[0] != 0x45) return std::nullopt;  // only version 4, IHL 5
  if (internet_checksum(in.subspan(0, kSize)) != 0) return std::nullopt;
  Ipv4Header h;
  std::size_t off = 1;
  h.tos = util::get_u8(in, off);
  h.total_length = util::get_u16(in, off);
  h.identification = util::get_u16(in, off);
  off += 2;  // flags/fragment
  h.ttl = util::get_u8(in, off);
  h.protocol = util::get_u8(in, off);
  off += 2;  // checksum (verified above)
  h.src = util::get_u32(in, off);
  h.dst = util::get_u32(in, off);
  return h;
}

std::string ip_to_string(std::uint32_t addr) {
  return std::to_string(addr >> 24) + "." + std::to_string((addr >> 16) & 0xFF) +
         "." + std::to_string((addr >> 8) & 0xFF) + "." +
         std::to_string(addr & 0xFF);
}

}  // namespace bytecache::packet
