#include "packet/packet.h"

#include <atomic>

namespace bytecache::packet {
namespace {

std::atomic<std::uint64_t> g_next_uid{1};

}  // namespace

PacketPtr make_packet(std::uint32_t src, std::uint32_t dst, IpProto proto,
                      util::Bytes payload) {
  auto p = std::make_unique<Packet>();
  p->ip.src = src;
  p->ip.dst = dst;
  p->ip.protocol = static_cast<std::uint8_t>(proto);
  p->ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + payload.size());
  p->payload = std::move(payload);
  p->uid = g_next_uid.fetch_add(1, std::memory_order_relaxed);
  return p;
}

PacketPtr clone_packet(const Packet& p) {
  auto c = std::make_unique<Packet>(p);
  return c;
}

util::Bytes to_wire(const Packet& p) {
  util::Bytes out;
  out.reserve(p.wire_size());
  to_wire_into(p, out);
  return out;
}

void to_wire_into(const Packet& p, util::Bytes& out) {
  out.clear();
  Ipv4Header h = p.ip;
  h.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + p.payload.size());
  h.serialize(out);
  util::append(out, p.payload);
}

PacketPtr from_wire(util::BytesView wire) {
  auto h = Ipv4Header::parse(wire);
  if (!h) return nullptr;
  if (h->total_length != wire.size()) return nullptr;
  auto p = std::make_unique<Packet>();
  p->ip = *h;
  p->payload.assign(wire.begin() + Ipv4Header::kSize, wire.end());
  p->uid = g_next_uid.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace bytecache::packet
