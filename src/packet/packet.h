// The simulated IP packet.
//
// A Packet is an IPv4 header plus the raw transport payload bytes (TCP/UDP
// header + application data, exactly as serialized by the endpoints).  The
// DRE codec rewrites `payload` (and the protocol field) in place; the link
// charges wire_size() bytes of serialization time.
//
// `uid` is a simulation-unique identifier assigned at creation and
// preserved across gateways, used for tracing and dependency analysis; it
// is metadata, not wire bytes.
#pragma once

#include <cstdint>
#include <memory>

#include "packet/ipv4.h"
#include "util/bytes.h"

namespace bytecache::packet {

struct Packet {
  Ipv4Header ip;
  util::Bytes payload;

  /// Simulation-unique id (not on the wire).
  std::uint64_t uid = 0;

  /// Set by the loss model when the packet body was corrupted in flight.
  bool corrupted = false;

  /// Bytes this packet occupies on the wire.
  [[nodiscard]] std::size_t wire_size() const {
    return Ipv4Header::kSize + payload.size();
  }

  [[nodiscard]] IpProto proto() const {
    return static_cast<IpProto>(ip.protocol);
  }
};

using PacketPtr = std::unique_ptr<Packet>;

/// Allocates a packet with a fresh uid (process-wide monotonic counter).
[[nodiscard]] PacketPtr make_packet(std::uint32_t src, std::uint32_t dst,
                                    IpProto proto, util::Bytes payload);

/// Deep copy with the *same* uid (retransmissions at the TCP layer create
/// new packets via make_packet; copies model in-flight duplication only).
[[nodiscard]] PacketPtr clone_packet(const Packet& p);

/// Serializes the whole packet (IP header + payload) to wire bytes.
[[nodiscard]] util::Bytes to_wire(const Packet& p);

/// Serializes into `out`, clearing it first; reuses its capacity (the
/// per-datagram scratch of the real-I/O tunnels, net/gateway_tunnel.h).
void to_wire_into(const Packet& p, util::Bytes& out);

/// Parses wire bytes back into a Packet (fresh uid); returns nullptr if the
/// IP header is malformed.  Used by tests to prove wire round-tripping.
[[nodiscard]] PacketPtr from_wire(util::BytesView wire);

}  // namespace bytecache::packet
