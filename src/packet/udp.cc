#include "packet/udp.h"

#include "packet/checksum.h"

namespace bytecache::packet {
namespace {

std::uint16_t udp_checksum(const UdpHeader& h, util::BytesView data,
                           std::uint32_t src_ip, std::uint32_t dst_ip) {
  const auto len = static_cast<std::uint16_t>(UdpHeader::kSize + data.size());
  ChecksumAccumulator acc;
  acc.add_u32(src_ip);
  acc.add_u32(dst_ip);
  acc.add_u16(17);  // protocol UDP
  acc.add_u16(len);
  acc.add_u16(h.src_port);
  acc.add_u16(h.dst_port);
  acc.add_u16(len);
  acc.add_u16(0);  // checksum placeholder
  acc.add(data);
  std::uint16_t sum = acc.finish();
  return sum == 0 ? 0xFFFF : sum;  // RFC 768: 0 means "no checksum"
}

}  // namespace

void UdpHeader::serialize(util::Bytes& out, util::BytesView data,
                          std::uint32_t src_ip, std::uint32_t dst_ip) const {
  const auto len = static_cast<std::uint16_t>(kSize + data.size());
  util::put_u16(out, src_port);
  util::put_u16(out, dst_port);
  util::put_u16(out, len);
  util::put_u16(out, udp_checksum(*this, data, src_ip, dst_ip));
  util::append(out, data);
}

std::optional<UdpHeader> UdpHeader::parse(util::BytesView datagram,
                                          std::uint32_t src_ip,
                                          std::uint32_t dst_ip) {
  if (datagram.size() < kSize) return std::nullopt;
  std::size_t off = 0;
  UdpHeader h;
  h.src_port = util::get_u16(datagram, off);
  h.dst_port = util::get_u16(datagram, off);
  const std::uint16_t len = util::get_u16(datagram, off);
  if (len != datagram.size()) return std::nullopt;
  const std::uint16_t wire_sum = util::get_u16(datagram, off);
  if (wire_sum != 0 &&
      udp_checksum(h, datagram.subspan(kSize), src_ip, dst_ip) != wire_sum) {
    return std::nullopt;
  }
  return h;
}

}  // namespace bytecache::packet
