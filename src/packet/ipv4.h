// IPv4 header (RFC 791), 20-byte fixed form (no options).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.h"

namespace bytecache::packet {

/// IP protocol numbers used in this project.  kDre marks a DRE-encoded
/// payload: real byte-caching middleboxes rewrite the protocol field so the
/// peer gateway knows a shim header is present, and restore it on decode
/// (the original protocol travels inside the shim); passthrough packets are
/// untouched and cost zero extra bytes (DESIGN.md "Wire format").
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kDre = 253,  // RFC 3692 experimental value
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  std::uint32_t src = 0;
  std::uint32_t dst = 0;

  /// Serializes to 20 bytes (appends to `out`), computing the header
  /// checksum.
  void serialize(util::Bytes& out) const;

  /// Parses a header from the front of `in`; returns std::nullopt on short
  /// input, bad version/IHL, or checksum mismatch.
  static std::optional<Ipv4Header> parse(util::BytesView in);
};

/// Dotted-quad for logs/examples ("10.0.0.1").
[[nodiscard]] std::string ip_to_string(std::uint32_t addr);

/// Builds an address from four octets.
[[nodiscard]] constexpr std::uint32_t make_ip(std::uint8_t a, std::uint8_t b,
                                              std::uint8_t c, std::uint8_t d) {
  return std::uint32_t{a} << 24 | std::uint32_t{b} << 16 |
         std::uint32_t{c} << 8 | std::uint32_t{d};
}

}  // namespace bytecache::packet
