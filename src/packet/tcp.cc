#include "packet/tcp.h"

#include "packet/checksum.h"

namespace bytecache::packet {
namespace {

void write_header(util::Bytes& out, const TcpHeader& h,
                  std::uint16_t checksum) {
  util::put_u16(out, h.src_port);
  util::put_u16(out, h.dst_port);
  util::put_u32(out, h.seq);
  util::put_u32(out, h.ack);
  util::put_u8(out, 5 << 4);  // data offset 5 words, reserved 0
  util::put_u8(out, h.flags);
  util::put_u16(out, h.window);
  util::put_u16(out, checksum);
  util::put_u16(out, h.urgent);
}

std::uint16_t pseudo_checksum(const TcpHeader& h, util::BytesView data,
                              std::uint32_t src_ip, std::uint32_t dst_ip) {
  ChecksumAccumulator acc;
  acc.add_u32(src_ip);
  acc.add_u32(dst_ip);
  acc.add_u16(6);  // protocol TCP
  acc.add_u16(static_cast<std::uint16_t>(TcpHeader::kSize + data.size()));
  util::Bytes hdr;
  hdr.reserve(TcpHeader::kSize);
  write_header(hdr, h, 0);
  acc.add(hdr);
  acc.add(data);
  return acc.finish();
}

}  // namespace

void TcpHeader::serialize(util::Bytes& out, util::BytesView data,
                          std::uint32_t src_ip, std::uint32_t dst_ip) const {
  const std::uint16_t sum = pseudo_checksum(*this, data, src_ip, dst_ip);
  write_header(out, *this, sum);
  util::append(out, data);
}

std::optional<TcpHeader> TcpHeader::parse(util::BytesView segment,
                                          std::uint32_t src_ip,
                                          std::uint32_t dst_ip) {
  auto h = parse_unchecked(segment);
  if (!h) return std::nullopt;
  const auto data = segment.subspan(kSize);
  std::size_t off = 16;
  const std::uint16_t wire_sum = util::get_u16(segment, off);
  if (pseudo_checksum(*h, data, src_ip, dst_ip) != wire_sum) {
    return std::nullopt;
  }
  return h;
}

std::optional<TcpHeader> TcpHeader::parse_unchecked(util::BytesView segment) {
  if (segment.size() < kSize) return std::nullopt;
  std::size_t off = 0;
  TcpHeader h;
  h.src_port = util::get_u16(segment, off);
  h.dst_port = util::get_u16(segment, off);
  h.seq = util::get_u32(segment, off);
  h.ack = util::get_u32(segment, off);
  const std::uint8_t data_offset = segment[off++] >> 4;
  if (data_offset != 5) return std::nullopt;  // options not modelled
  h.flags = util::get_u8(segment, off);
  h.window = util::get_u16(segment, off);
  off += 2;  // checksum
  h.urgent = util::get_u16(segment, off);
  return h;
}

}  // namespace bytecache::packet
