// RFC 1071 Internet checksum (ones'-complement sum of 16-bit words).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace bytecache::packet {

/// Running ones'-complement accumulator, so the TCP/UDP pseudo-header and
/// payload can be summed in pieces.
class ChecksumAccumulator {
 public:
  void add(util::BytesView data);
  /// Equivalent to add()ing the value's two (resp. four) big-endian
  /// bytes — correct at any alignment, including with an odd byte
  /// pending from a previous add().
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);

  /// Final folded, complemented checksum in host order.
  [[nodiscard]] std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd byte is pending pairing
};

/// One-shot checksum of a buffer.
[[nodiscard]] std::uint16_t internet_checksum(util::BytesView data);

}  // namespace bytecache::packet
