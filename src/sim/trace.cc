#include "sim/trace.h"

#include <cstdio>

namespace bytecache::sim {

const char* to_string(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kSend: return "send";
    case TraceEvent::kQueueDrop: return "queue_drop";
    case TraceEvent::kLoss: return "loss";
    case TraceEvent::kCorrupt: return "corrupt";
    case TraceEvent::kDeliver: return "deliver";
    case TraceEvent::kEncode: return "encode";
    case TraceEvent::kReference: return "reference";
    case TraceEvent::kFlush: return "flush";
    case TraceEvent::kDecode: return "decode";
    case TraceEvent::kDecodeDrop: return "decode_drop";
    case TraceEvent::kNack: return "nack";
    case TraceEvent::kLossReport: return "loss_report";
    case TraceEvent::kResync: return "resync";
  }
  return "?";
}

std::size_t Trace::count(TraceEvent ev) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.event == ev) ++n;
  }
  return n;
}

std::string Trace::to_string() const {
  std::string out;
  char line[96];
  for (const TraceRecord& r : records_) {
    std::snprintf(line, sizeof line, "%10.3f ms  %-11s uid=%llu aux=%llu\n",
                  to_ms(r.time), sim::to_string(r.event),
                  static_cast<unsigned long long>(r.packet_uid),
                  static_cast<unsigned long long>(r.aux));
    out += line;
  }
  return out;
}

std::string Trace::to_csv() const {
  std::string out = "time_us,event,uid,aux\n";
  char line[96];
  for (const TraceRecord& r : records_) {
    std::snprintf(line, sizeof line, "%lld,%s,%llu,%llu\n",
                  static_cast<long long>(r.time / 1000),
                  sim::to_string(r.event),
                  static_cast<unsigned long long>(r.packet_uid),
                  static_cast<unsigned long long>(r.aux));
    out += line;
  }
  return out;
}

}  // namespace bytecache::sim
