#include "sim/loss_model.h"

#include <algorithm>

#include "util/check.h"

namespace bytecache::sim {

bool GilbertElliottLoss::drop(util::Rng& rng) {
  // Transition first, then sample loss in the new state.
  if (bad_) {
    if (rng.chance(params_.p_bg)) bad_ = false;
  } else {
    if (rng.chance(params_.p_gb)) bad_ = true;
  }
  return rng.chance(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliottLoss::average_loss() const {
  const double denom = params_.p_gb + params_.p_bg;
  if (denom <= 0.0) return params_.loss_good;
  const double pi_bad = params_.p_gb / denom;
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

std::unique_ptr<GilbertElliottLoss> GilbertElliottLoss::with_average_loss(
    double p) {
  // Keep the default burstiness and solve for p_gb such that
  // pi_bad * loss_bad = p.  High targets used to be silently clamped
  // (the old cap delivered at most ~47.5% regardless of p); instead the
  // Bad state is made lossier (loss_bad = p / 0.95, still a valid
  // probability for p <= 0.95), and when the required p_gb would exceed
  // 1 — not a probability — it is pinned at 1 and the bursts lengthened
  // (p_bg lowered) to hit the same stationary mix exactly.
  BC_CHECK(p >= 0.0 && p <= 0.95)
      << "with_average_loss(" << p << "): average loss must be in [0, 0.95]";
  Params params;
  params.loss_good = 0.0;
  params.loss_bad = std::max(0.5, p / 0.95);
  params.p_bg = 0.3;
  const double target_pi_bad = p / params.loss_bad;  // <= 0.95
  // pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = pi_bad * p_bg / (1 - pi_bad).
  params.p_gb = target_pi_bad * params.p_bg / (1.0 - target_pi_bad);
  if (params.p_gb > 1.0) {
    params.p_gb = 1.0;
    params.p_bg = (1.0 - target_pi_bad) / target_pi_bad;
  }
  return std::make_unique<GilbertElliottLoss>(params);
}

}  // namespace bytecache::sim
