#include "sim/loss_model.h"

#include <algorithm>

namespace bytecache::sim {

bool GilbertElliottLoss::drop(util::Rng& rng) {
  // Transition first, then sample loss in the new state.
  if (bad_) {
    if (rng.chance(params_.p_bg)) bad_ = false;
  } else {
    if (rng.chance(params_.p_gb)) bad_ = true;
  }
  return rng.chance(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliottLoss::average_loss() const {
  const double denom = params_.p_gb + params_.p_bg;
  if (denom <= 0.0) return params_.loss_good;
  const double pi_bad = params_.p_gb / denom;
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

std::unique_ptr<GilbertElliottLoss> GilbertElliottLoss::with_average_loss(
    double p) {
  // Keep p_bg (burst length ~3.3 packets) and loss_bad fixed; solve for
  // p_gb such that pi_bad * loss_bad = p.
  Params params;
  params.loss_good = 0.0;
  params.loss_bad = 0.5;
  params.p_bg = 0.3;
  const double target_pi_bad = std::clamp(p / params.loss_bad, 0.0, 0.95);
  // pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = pi_bad * p_bg / (1 - pi_bad).
  params.p_gb = target_pi_bad >= 1.0
                    ? 1.0
                    : target_pi_bad * params.p_bg / (1.0 - target_pi_bad);
  return std::make_unique<GilbertElliottLoss>(params);
}

}  // namespace bytecache::sim
