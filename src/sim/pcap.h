// pcap capture writer for simulated traffic.
//
// Serializes simulated packets (IPv4 header + payload, exactly the bytes
// the link charges for) into the classic libpcap file format with
// LINKTYPE_RAW (raw IP), so captures open directly in Wireshark/tcpdump.
// Timestamps come from the simulated clock.  Useful for debugging encoder
// behaviour and for demonstrating the wire format to downstream users.
#pragma once

#include <cstdint>
#include <string>

#include "packet/packet.h"
#include "sim/time.h"
#include "util/bytes.h"

namespace bytecache::sim {

class PcapWriter {
 public:
  static constexpr std::uint32_t kMagic = 0xA1B2C3D4;  // microsecond format
  static constexpr std::uint32_t kLinkTypeRaw = 101;   // raw IPv4/IPv6

  PcapWriter() { write_global_header(); }

  /// Appends one packet captured at simulated time `t`.
  void add(const packet::Packet& pkt, SimTime t);

  /// The capture bytes so far (global header + records).
  [[nodiscard]] const util::Bytes& data() const { return data_; }

  [[nodiscard]] std::size_t packet_count() const { return count_; }

  /// Writes the capture to a file; returns false on I/O error.
  bool save(const std::string& path) const;

 private:
  void write_global_header();
  void put_u32le(std::uint32_t v);
  void put_u16le(std::uint16_t v);

  util::Bytes data_;
  std::size_t count_ = 0;
};

}  // namespace bytecache::sim
