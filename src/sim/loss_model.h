// Packet loss processes for the wireless link.
//
// The paper's experiments vary a uniform random loss rate from 0 to 20%
// (Section III-C); BernoulliLoss models that.  GilbertElliottLoss adds the
// bursty (two-state Markov) losses typical of fading wireless channels and
// is used by the ablation benches to show the schemes' sensitivity to loss
// correlation.
#pragma once

#include <memory>

#include "util/rng.h"

namespace bytecache::sim {

class LossProcess {
 public:
  virtual ~LossProcess() = default;

  /// Samples whether the next packet is lost.
  virtual bool drop(util::Rng& rng) = 0;

  /// Returns the process to its initial state.
  virtual void reset() {}
};

/// Independent loss with fixed probability p.
class BernoulliLoss final : public LossProcess {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  bool drop(util::Rng& rng) override { return rng.chance(p_); }

 private:
  double p_;
};

/// Two-state Markov (Gilbert–Elliott) loss.
///
/// In the Good state packets are lost with probability `loss_good`, in the
/// Bad state with `loss_bad`; the chain moves G->B with `p_gb` and B->G
/// with `p_bg` per packet.  Average loss = loss in the stationary mix;
/// expected burst length while Bad = 1/p_bg packets.
class GilbertElliottLoss final : public LossProcess {
 public:
  struct Params {
    double p_gb = 0.01;
    double p_bg = 0.3;
    double loss_good = 0.0;
    double loss_bad = 0.5;
  };

  explicit GilbertElliottLoss(const Params& params) : params_(params) {}

  bool drop(util::Rng& rng) override;
  void reset() override { bad_ = false; }

  /// Stationary average loss rate of the chain.
  [[nodiscard]] double average_loss() const;

  /// Builds a GE process whose stationary average_loss() equals `p`
  /// exactly, keeping the default burstiness (useful for apples-to-apples
  /// sweeps vs Bernoulli).  `p` must be in [0, 0.95] (BC_CHECK); for
  /// targets above the default Bad-state loss rate the Bad state is made
  /// lossier rather than stretching the chain toward always-Bad.
  static std::unique_ptr<GilbertElliottLoss> with_average_loss(double p);

 private:
  Params params_;
  bool bad_ = false;
};

/// No loss at all.
class NoLoss final : public LossProcess {
 public:
  bool drop(util::Rng&) override { return false; }
};

}  // namespace bytecache::sim
