#include "sim/pcap.h"

#include <cstdio>

namespace bytecache::sim {

void PcapWriter::put_u32le(std::uint32_t v) {
  data_.push_back(static_cast<std::uint8_t>(v));
  data_.push_back(static_cast<std::uint8_t>(v >> 8));
  data_.push_back(static_cast<std::uint8_t>(v >> 16));
  data_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PcapWriter::put_u16le(std::uint16_t v) {
  data_.push_back(static_cast<std::uint8_t>(v));
  data_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PcapWriter::write_global_header() {
  put_u32le(kMagic);
  put_u16le(2);   // version major
  put_u16le(4);   // version minor
  put_u32le(0);   // thiszone
  put_u32le(0);   // sigfigs
  put_u32le(65535);  // snaplen
  put_u32le(kLinkTypeRaw);
}

void PcapWriter::add(const packet::Packet& pkt, SimTime t) {
  const util::Bytes wire = packet::to_wire(pkt);
  const auto usec = static_cast<std::uint64_t>(t / 1000);
  put_u32le(static_cast<std::uint32_t>(usec / 1'000'000));  // ts_sec
  put_u32le(static_cast<std::uint32_t>(usec % 1'000'000));  // ts_usec
  put_u32le(static_cast<std::uint32_t>(wire.size()));       // incl_len
  put_u32le(static_cast<std::uint32_t>(wire.size()));       // orig_len
  util::append(data_, wire);
  ++count_;
}

bool PcapWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(data_.data(), 1, data_.size(), f);
  std::fclose(f);
  return written == data_.size();
}

}  // namespace bytecache::sim
