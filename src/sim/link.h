// The rate-limited, lossy link (the "wireless" segment of paper Fig. 3).
//
// Models a point-to-point link with
//   - a FIFO tail-drop queue in front of a serializer limited to
//     `rate_bytes_per_sec` (the paper's 1 MB/s traffic shaper),
//   - fixed propagation delay,
//   - a pluggable loss process applied per packet,
//   - optional random corruption (real byte flips, caught downstream by
//     the DRE CRC or the TCP checksum), and
//   - optional reordering (an extra delay on selected packets, letting
//     later packets overtake them).
//
// Bytes are charged to the wire when serialized, regardless of whether the
// packet is subsequently lost — matching how the paper counts "bytes sent".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/fields.h"
#include "packet/packet.h"
#include "sim/loss_model.h"
#include "sim/pcap.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sim/time.h"
#include "util/rng.h"

namespace bytecache::sim {

struct LinkConfig {
  double rate_bytes_per_sec = 1'000'000.0;  // paper: 1 MB/s
  SimTime propagation_delay = us(500);
  std::size_t queue_packets = 64;   // tail-drop bound (serializing + queued)
  double corrupt_prob = 0.0;
  double reorder_prob = 0.0;
  SimTime reorder_extra_delay = ms(3);
};

struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t reordered = 0;
  std::uint64_t bytes_offered = 0;
  std::uint64_t bytes_sent = 0;  // serialized onto the wire
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const LinkStats*) {
  using S = LinkStats;
  return obs::field_table<S>(
      obs::Field<S>{"packets_offered", &S::packets_offered},
      obs::Field<S>{"packets_delivered", &S::packets_delivered},
      obs::Field<S>{"drops_loss", &S::drops_loss},
      obs::Field<S>{"drops_queue", &S::drops_queue},
      obs::Field<S>{"corrupted", &S::corrupted},
      obs::Field<S>{"reordered", &S::reordered},
      obs::Field<S>{"bytes_offered", &S::bytes_offered},
      obs::Field<S>{"bytes_sent", &S::bytes_sent});
}

using obs::merge_into;
using obs::reset;

class Link {
 public:
  using Sink = std::function<void(packet::PacketPtr)>;

  Link(Simulator& sim, const LinkConfig& config,
       std::unique_ptr<LossProcess> loss, util::Rng rng);

  /// Sets the receiver of delivered packets.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Offers a packet to the link.
  void send(packet::PacketPtr pkt);

  /// Replaces the loss process at runtime (e.g. an outage during a
  /// handover, or a channel whose quality changes mid-experiment).
  void set_loss(std::unique_ptr<LossProcess> loss) { loss_ = std::move(loss); }

  /// Optional event trace (not owned; may be null).
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Optional pcap capture of everything serialized onto the wire
  /// (not owned; may be null).
  void set_pcap(PcapWriter* pcap) { pcap_ = pcap; }

  /// Optional observer called with every packet the link drops (queue
  /// overflow at send time, channel loss at end of serialization).  The
  /// resilient pipeline points this at the encoder gateway so channel
  /// drops feed the perceived-loss estimator.
  void set_drop_observer(std::function<void(const packet::Packet&)> fn) {
    drop_observer_ = std::move(fn);
  }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

 private:
  void deliver(packet::PacketPtr pkt);

  Simulator& sim_;
  LinkConfig config_;
  std::unique_ptr<LossProcess> loss_;
  util::Rng rng_;
  Sink sink_;
  std::function<void(const packet::Packet&)> drop_observer_;
  LinkStats stats_;
  Trace* trace_ = nullptr;
  PcapWriter* pcap_ = nullptr;
  SimTime busy_until_ = 0;
  std::size_t in_system_ = 0;  // serializing + queued packets
};

}  // namespace bytecache::sim
