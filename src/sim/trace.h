// Structured event trace of a simulation run.
//
// Collects timestamped per-packet events (sent, queued-drop, lost,
// corrupted, delivered, encoded, decode-drop, ...) in memory; renders as
// a human-readable log or CSV.  The paper's root-cause analyses (Figures
// 4, 5, 14) are exactly this kind of trace; the dependency_graph example
// builds its Graphviz output from one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace bytecache::sim {

enum class TraceEvent : std::uint8_t {
  kSend,         // offered to a link
  kQueueDrop,    // tail drop at the link queue
  kLoss,         // lost by the channel
  kCorrupt,      // corrupted in flight
  kDeliver,      // delivered by a link
  kEncode,       // DRE-encoded by the encoder gateway
  kReference,    // sent as a k-distance reference
  kFlush,        // encoder cache flushed before this packet
  kDecode,       // reconstructed by the decoder gateway
  kDecodeDrop,   // undecodable at the decoder
  kNack,         // decoder NACK emitted
  kLossReport,   // decoder loss-report control message emitted
  kResync,       // decoder resync request emitted
};

[[nodiscard]] const char* to_string(TraceEvent ev);

struct TraceRecord {
  SimTime time = 0;
  TraceEvent event = TraceEvent::kSend;
  std::uint64_t packet_uid = 0;
  std::uint64_t aux = 0;  // event-specific (e.g. referenced uid, size)
};

class Trace {
 public:
  void record(SimTime t, TraceEvent ev, std::uint64_t uid,
              std::uint64_t aux = 0) {
    records_.push_back(TraceRecord{t, ev, uid, aux});
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  /// Count of records with the given event type.
  [[nodiscard]] std::size_t count(TraceEvent ev) const;

  /// Human-readable rendering (one line per record).
  [[nodiscard]] std::string to_string() const;

  /// "time_us,event,uid,aux" lines.
  [[nodiscard]] std::string to_csv() const;

  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace bytecache::sim
