#include "sim/link.h"

#include <algorithm>
#include <utility>

namespace bytecache::sim {

Link::Link(Simulator& sim, const LinkConfig& config,
           std::unique_ptr<LossProcess> loss, util::Rng rng)
    : sim_(sim), config_(config), loss_(std::move(loss)), rng_(rng) {}

void Link::send(packet::PacketPtr pkt) {
  ++stats_.packets_offered;
  stats_.bytes_offered += pkt->wire_size();
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEvent::kSend, pkt->uid,
                   pkt->wire_size());
  }

  if (in_system_ >= config_.queue_packets) {
    ++stats_.drops_queue;
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), TraceEvent::kQueueDrop, pkt->uid);
    }
    if (drop_observer_) drop_observer_(*pkt);
    return;
  }
  ++in_system_;
  if (pcap_ != nullptr) pcap_->add(*pkt, sim_.now());

  // Serialize after any packets already queued.
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime end = start + tx_time(pkt->wire_size(), config_.rate_bytes_per_sec);
  busy_until_ = end;
  stats_.bytes_sent += pkt->wire_size();

  // Decide the packet's fate now (deterministic given the seed) but apply
  // it at the end of serialization.
  const bool lost = loss_->drop(rng_);
  const bool corrupt = !lost && rng_.chance(config_.corrupt_prob);
  const bool reorder = !lost && rng_.chance(config_.reorder_prob);

  // Keep a raw pointer alive through the closure via shared ownership.
  auto shared = std::make_shared<packet::PacketPtr>(std::move(pkt));
  sim_.at(end, [this, shared, lost, corrupt, reorder, end]() {
    --in_system_;
    if (lost) {
      ++stats_.drops_loss;
      if (trace_ != nullptr) {
        trace_->record(sim_.now(), TraceEvent::kLoss, (*shared)->uid);
      }
      if (drop_observer_) drop_observer_(**shared);
      return;
    }
    packet::PacketPtr p = std::move(*shared);
    if (corrupt) {
      ++stats_.corrupted;
      if (trace_ != nullptr) {
        trace_->record(sim_.now(), TraceEvent::kCorrupt, p->uid);
      }
      p->corrupted = true;
      // Flip 1..3 payload bytes (or an IP header byte if no payload).
      if (!p->payload.empty()) {
        const std::size_t flips = 1 + rng_.uniform(0, 2);
        for (std::size_t i = 0; i < flips; ++i) {
          const std::size_t pos = rng_.uniform(0, p->payload.size() - 1);
          p->payload[pos] ^= static_cast<std::uint8_t>(rng_.uniform(1, 255));
        }
      }
    }
    SimTime extra = 0;
    if (reorder) {
      ++stats_.reordered;
      extra = config_.reorder_extra_delay;
    }
    sim_.at(end + config_.propagation_delay + extra,
            [this, sp = std::make_shared<packet::PacketPtr>(std::move(p))]() {
              deliver(std::move(*sp));
            });
  });
}

void Link::deliver(packet::PacketPtr pkt) {
  ++stats_.packets_delivered;
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), TraceEvent::kDeliver, pkt->uid);
  }
  if (sink_) sink_(std::move(pkt));
}

}  // namespace bytecache::sim
