// Simulated time: signed 64-bit nanoseconds.
#pragma once

#include <cstdint>

namespace bytecache::sim {

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime ns(std::int64_t v) { return v; }
constexpr SimTime us(std::int64_t v) { return v * 1'000; }
constexpr SimTime ms(std::int64_t v) { return v * 1'000'000; }
constexpr SimTime sec(std::int64_t v) { return v * 1'000'000'000; }

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) * 1e-6; }

/// Duration of `bytes` at `bytes_per_sec` (serialization delay).
constexpr SimTime tx_time(std::size_t bytes, double bytes_per_sec) {
  return static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_sec *
                              1e9);
}

}  // namespace bytecache::sim
