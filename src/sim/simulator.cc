#include "sim/simulator.h"

#include <utility>

namespace bytecache::sim {

void Simulator::at(SimTime t, Action action) {
  if (t < now_) t = now_;  // never schedule into the past
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out, so copy
  // the wrapper then pop.  Actions are small (captured pointers).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.action();
  if (audit_interval_ != 0 && !auditors_.empty() &&
      processed_ % audit_interval_ == 0) {
    ++audits_run_;
    for (const auto& [id, fn] : auditors_) fn();
  }
  return true;
}

Simulator::AuditorId Simulator::add_auditor(Action fn) {
  const AuditorId id = next_auditor_id_++;
  auditors_.emplace_back(id, std::move(fn));
  return id;
}

void Simulator::remove_auditor(AuditorId id) {
  for (auto it = auditors_.begin(); it != auditors_.end(); ++it) {
    if (it->first == id) {
      auditors_.erase(it);
      return;
    }
  }
}

void Simulator::request_audit_interval(std::uint64_t events) {
  if (events == 0) return;
  if (audit_interval_ == 0 || events < audit_interval_) {
    audit_interval_ = events;
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace bytecache::sim
