#include "sim/simulator.h"

#include <utility>

namespace bytecache::sim {

void Simulator::at(SimTime t, Action action) {
  if (t < now_) t = now_;  // never schedule into the past
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out, so copy
  // the wrapper then pop.  Actions are small (captured pointers).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.action();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace bytecache::sim
