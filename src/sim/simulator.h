// Deterministic discrete-event simulator.
//
// A single-threaded event loop over simulated time.  Events scheduled for
// the same instant run in scheduling order (a monotonic tiebreaker), so a
// given seed always produces the identical execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace bytecache::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now).
  void at(SimTime t, Action action);

  /// Schedules `action` after `delay` (>= 0).
  void after(SimTime delay, Action action) { at(now_ + delay, std::move(action)); }

  /// Runs the next event; false if none are pending.
  bool step();

  /// Runs until no events remain or stop() is called.
  void run();

  /// Runs events with time <= t (and advances now() to t).
  void run_until(SimTime t);

  /// Requests run() to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace bytecache::sim
