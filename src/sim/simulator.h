// Deterministic discrete-event simulator.
//
// A single-threaded event loop over simulated time.  Events scheduled for
// the same instant run in scheduling order (a monotonic tiebreaker), so a
// given seed always produces the identical execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace bytecache::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now).
  void at(SimTime t, Action action);

  /// Schedules `action` after `delay` (>= 0).
  void after(SimTime delay, Action action) { at(now_ + delay, std::move(action)); }

  /// Runs the next event; false if none are pending.
  bool step();

  /// Runs until no events remain or stop() is called.
  void run();

  /// Runs events with time <= t (and advances now() to t).
  void run_until(SimTime t);

  /// Requests run() to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // ---- Deep-audit hooks ------------------------------------------------
  //
  // Components register auditors (their audit() methods); step() invokes
  // every auditor after each `audit_interval` processed events, so any
  // simulation-driven test exercises the registered invariants for free.
  // Auditing is off until both an auditor and an interval are set; in
  // builds without BYTECACHE_AUDIT the audit() methods are no-ops anyway.

  using AuditorId = std::uint64_t;

  /// Registers `fn` to run on the audit cadence; returns a handle for
  /// remove_auditor (components deregister on destruction).
  AuditorId add_auditor(Action fn);
  void remove_auditor(AuditorId id);

  /// Requests auditing every `events` processed events (0 = no request).
  /// The smallest nonzero request across callers wins.
  void request_audit_interval(std::uint64_t events);

  [[nodiscard]] std::uint64_t audit_interval() const {
    return audit_interval_;
  }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      // Monotonic 64-bit scheduling tiebreaker, not a wrapping TCP
      // sequence number.  NOLINT(bc-rawseq)
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::pair<AuditorId, Action>> auditors_;
  AuditorId next_auditor_id_ = 1;
  std::uint64_t audit_interval_ = 0;
  std::uint64_t audits_run_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace bytecache::sim
