// The paper's experimental topology (Fig. 3), fully wired:
//
//   TcpSender --> EncoderGateway --> forward Link --> DecoderGateway --> TcpReceiver
//       ^                                                                    |
//       +------------------------- reverse Link <--------- ACKs ------------+
//
// The forward link is the rate-limited lossy "wireless" segment; the
// reverse link carries ACKs (by default fast and lossless, configurable).
#pragma once

#include <memory>

#include "core/factory.h"
#include "core/params.h"
#include "gateway/gateways.h"
#include "sim/link.h"
#include "sim/pcap.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tcp/config.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/rng.h"

namespace bytecache::gateway {

struct PipelineConfig {
  core::PolicyKind policy = core::PolicyKind::kNone;
  core::DreParams dre;
  cache::CacheConfig cache;
  tcp::TcpConfig tcp;
  sim::LinkConfig forward_link;
  sim::LinkConfig reverse_link{
      .rate_bytes_per_sec = 10'000'000.0,
      .propagation_delay = sim::us(500),
      .queue_packets = 1024,
  };
  double loss_rate = 0.0;       // forward-link Bernoulli loss
  bool bursty_loss = false;     // use a Gilbert–Elliott process instead
  double reverse_loss_rate = 0.0;
  std::uint64_t seed = 1;
  /// Deep-audit cadence: every N simulator events the pipeline audits the
  /// codec caches and both TCP endpoints (0 disables; no-op in builds
  /// without BYTECACHE_AUDIT).
  std::uint64_t audit_interval_events = 256;
  /// Latency-span decimation for the gateways (0 disables spans; see
  /// core::GatewayConfig::span_sample_every).
  std::uint32_t span_sample_every = 64;

  /// The gateway-construction view of this config (the pipeline fills in
  /// the registry pointer itself).
  [[nodiscard]] core::GatewayConfig gateway_config() const {
    core::GatewayConfig g;
    g.params = dre;
    g.policy = policy;
    g.cache = cache;
    g.span_sample_every = span_sample_every;
    return g;
  }
};

class Pipeline {
 public:
  Pipeline(sim::Simulator& sim, const PipelineConfig& config);
  ~Pipeline();

  /// Runs every component's deep invariant audit (see util/check.h); the
  /// simulator calls this on the configured event cadence.
  void audit() const;

  [[nodiscard]] tcp::TcpSender& sender() { return *sender_; }
  [[nodiscard]] tcp::TcpReceiver& receiver() { return *receiver_; }
  [[nodiscard]] EncoderGateway& encoder_gw() { return *encoder_gw_; }
  [[nodiscard]] DecoderGateway& decoder_gw() { return *decoder_gw_; }
  [[nodiscard]] sim::Link& forward_link() { return *forward_link_; }
  [[nodiscard]] sim::Link& reverse_link() { return *reverse_link_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  /// The pipeline-wide registry: both gateways as providers plus every
  /// link and TCP endpoint counter ("link.forward.*", "link.reverse.*",
  /// "tcp.sender.*", "tcp.receiver.*").  snapshot() is the single read
  /// surface the harness builds its experiment results from.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] obs::Snapshot snapshot() const { return metrics_.snapshot(); }

  /// Attaches an event trace to both links and both gateways.
  void attach_trace(sim::Trace* trace);

  /// Captures forward-direction wire traffic into `pcap`.
  void attach_pcap(sim::PcapWriter* pcap) { forward_link_->set_pcap(pcap); }

 private:
  PipelineConfig config_;
  sim::Simulator* sim_ = nullptr;
  sim::Simulator::AuditorId auditor_id_ = 0;
  obs::MetricsRegistry metrics_;  // must outlive the components below
  std::unique_ptr<EncoderGateway> encoder_gw_;
  std::unique_ptr<DecoderGateway> decoder_gw_;
  std::unique_ptr<sim::Link> forward_link_;
  std::unique_ptr<sim::Link> reverse_link_;
  std::unique_ptr<tcp::TcpSender> sender_;
  std::unique_ptr<tcp::TcpReceiver> receiver_;
};

}  // namespace bytecache::gateway
