#include "gateway/multi_pipeline.h"

#include "core/control.h"
#include "packet/tcp.h"

namespace bytecache::gateway {
namespace {

std::unique_ptr<sim::LossProcess> make_loss(double rate, bool bursty) {
  if (rate <= 0.0) return std::make_unique<sim::NoLoss>();
  if (bursty) return sim::GilbertElliottLoss::with_average_loss(rate);
  return std::make_unique<sim::BernoulliLoss>(rate);
}

}  // namespace

MultiPipeline::MultiPipeline(sim::Simulator& sim,
                             const PipelineConfig& config, std::size_t flows,
                             std::uint16_t base_port)
    : config_(config), base_port_(base_port), sim_(&sim) {
  PipelineConfig& cfg = config_;
  if (cfg.tcp.src_ip == 0) cfg.tcp.src_ip = packet::make_ip(10, 0, 0, 1);
  if (cfg.tcp.dst_ip == 0) cfg.tcp.dst_ip = packet::make_ip(10, 0, 1, 1);

  util::Rng root(cfg.seed);
  core::GatewayConfig gw_cfg = cfg.gateway_config();
  gw_cfg.metrics = &metrics_;  // both gateways become snapshot providers
  encoder_gw_ = std::make_unique<EncoderGateway>(gw_cfg);
  decoder_gw_ = std::make_unique<DecoderGateway>(gw_cfg);
  forward_link_ = std::make_unique<sim::Link>(
      sim, cfg.forward_link, make_loss(cfg.loss_rate, cfg.bursty_loss),
      root.fork(1));
  reverse_link_ = std::make_unique<sim::Link>(
      sim, cfg.reverse_link, make_loss(cfg.reverse_loss_rate, false),
      root.fork(2));
  obs::link_stats(metrics_, "link.forward", forward_link_->stats());
  obs::link_stats(metrics_, "link.reverse", reverse_link_->stats());

  for (std::size_t i = 0; i < flows; ++i) {
    tcp::TcpConfig tcp_cfg = cfg.tcp;
    tcp_cfg.dst_port = static_cast<std::uint16_t>(base_port_ + i);
    tcp_cfg.isn = cfg.tcp.isn + static_cast<std::uint32_t>(i) * 0x1000000;
    senders_.push_back(std::make_unique<tcp::TcpSender>(
        sim, tcp_cfg,
        [this](packet::PacketPtr p) { encoder_gw_->receive(std::move(p)); }));
    receivers_.push_back(std::make_unique<tcp::TcpReceiver>(
        sim, tcp_cfg,
        [this](packet::PacketPtr p) { reverse_link_->send(std::move(p)); }));
    // All flows share the dotted names; snapshot-time merging adds their
    // counters, giving the aggregate the harness reports.
    obs::link_stats(metrics_, "tcp.sender", senders_.back()->stats());
    obs::link_stats(metrics_, "tcp.receiver", receivers_.back()->stats());
  }

  encoder_gw_->set_sink(
      [this](packet::PacketPtr p) { forward_link_->send(std::move(p)); });
  forward_link_->set_sink(
      [this](packet::PacketPtr p) { decoder_gw_->receive(std::move(p)); });
  decoder_gw_->set_sink([this](packet::PacketPtr p) {
    if (auto flow = flow_of(*p, /*forward=*/true)) {
      receivers_[*flow]->on_packet(*p);
    }
  });
  if (cfg.dre.nack_feedback || cfg.dre.epoch_resync) {
    decoder_gw_->set_feedback(
        [this](packet::PacketPtr p) { reverse_link_->send(std::move(p)); });
  }
  if (cfg.dre.epoch_resync) {
    forward_link_->set_drop_observer(
        [this](const packet::Packet& p) { encoder_gw_->on_channel_drop(p); });
  }
  reverse_link_->set_sink([this](packet::PacketPtr p) {
    if (p->ip.protocol == core::kControlProto) {
      encoder_gw_->receive_control(*p);
      return;
    }
    encoder_gw_->observe_reverse(*p);
    if (auto flow = flow_of(*p, /*forward=*/false)) {
      senders_[*flow]->on_packet(*p);
    }
  });

  if (cfg.audit_interval_events != 0) {
    sim.request_audit_interval(cfg.audit_interval_events);
    auditor_id_ = sim.add_auditor([this] { audit(); });
  }
}

MultiPipeline::~MultiPipeline() {
  if (auditor_id_ != 0) sim_->remove_auditor(auditor_id_);
}

void MultiPipeline::audit() const {
  if (const core::Encoder* enc = encoder_gw_->encoder()) enc->audit();
  if (const core::Decoder* dec = decoder_gw_->decoder()) dec->audit();
  for (const auto& s : senders_) s->audit();
  for (const auto& r : receivers_) r->audit();
}

std::optional<std::size_t> MultiPipeline::flow_of(const packet::Packet& pkt,
                                                  bool forward) const {
  if (pkt.proto() != packet::IpProto::kTcp) return std::nullopt;
  auto h = packet::TcpHeader::parse_unchecked(pkt.payload);
  if (!h) return std::nullopt;
  const std::uint16_t port = forward ? h->dst_port : h->src_port;
  if (port < base_port_) return std::nullopt;
  const std::size_t idx = static_cast<std::size_t>(port - base_port_);
  if (idx >= senders_.size()) return std::nullopt;
  return idx;
}

}  // namespace bytecache::gateway
