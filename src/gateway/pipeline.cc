#include "gateway/pipeline.h"

#include "core/control.h"
#include "packet/ipv4.h"

namespace bytecache::gateway {
namespace {

std::unique_ptr<sim::LossProcess> make_loss(double rate, bool bursty) {
  if (rate <= 0.0) return std::make_unique<sim::NoLoss>();
  if (bursty) return sim::GilbertElliottLoss::with_average_loss(rate);
  return std::make_unique<sim::BernoulliLoss>(rate);
}

}  // namespace

void Pipeline::attach_trace(sim::Trace* trace) {
  forward_link_->set_trace(trace);
  reverse_link_->set_trace(trace);
  encoder_gw_->set_trace(trace, sim_);
  decoder_gw_->set_trace(trace, sim_);
}

Pipeline::Pipeline(sim::Simulator& sim, const PipelineConfig& config)
    : config_(config), sim_(&sim) {
  PipelineConfig& cfg = config_;
  if (cfg.tcp.src_ip == 0) cfg.tcp.src_ip = packet::make_ip(10, 0, 0, 1);
  if (cfg.tcp.dst_ip == 0) cfg.tcp.dst_ip = packet::make_ip(10, 0, 1, 1);

  util::Rng root(cfg.seed);
  core::GatewayConfig gw_cfg = cfg.gateway_config();
  gw_cfg.metrics = &metrics_;  // both gateways become snapshot providers
  encoder_gw_ = std::make_unique<EncoderGateway>(gw_cfg);
  decoder_gw_ = std::make_unique<DecoderGateway>(gw_cfg);
  forward_link_ = std::make_unique<sim::Link>(
      sim, cfg.forward_link, make_loss(cfg.loss_rate, cfg.bursty_loss),
      root.fork(1));
  reverse_link_ = std::make_unique<sim::Link>(
      sim, cfg.reverse_link, make_loss(cfg.reverse_loss_rate, false),
      root.fork(2));

  sender_ = std::make_unique<tcp::TcpSender>(
      sim, cfg.tcp,
      [this](packet::PacketPtr p) { encoder_gw_->receive(std::move(p)); });
  receiver_ = std::make_unique<tcp::TcpReceiver>(
      sim, cfg.tcp,
      [this](packet::PacketPtr p) { reverse_link_->send(std::move(p)); });

  // Every remaining component joins the registry as linked counters —
  // the increment sites stay plain field adds, read at snapshot time.
  obs::link_stats(metrics_, "link.forward", forward_link_->stats());
  obs::link_stats(metrics_, "link.reverse", reverse_link_->stats());
  obs::link_stats(metrics_, "tcp.sender", sender_->stats());
  obs::link_stats(metrics_, "tcp.receiver", receiver_->stats());

  encoder_gw_->set_sink(
      [this](packet::PacketPtr p) { forward_link_->send(std::move(p)); });
  forward_link_->set_sink(
      [this](packet::PacketPtr p) { decoder_gw_->receive(std::move(p)); });
  decoder_gw_->set_sink(
      [this](packet::PacketPtr p) { receiver_->on_packet(*p); });
  if (cfg.dre.nack_feedback || cfg.dre.epoch_resync) {
    decoder_gw_->set_feedback(
        [this](packet::PacketPtr p) { reverse_link_->send(std::move(p)); });
  }
  if (cfg.dre.epoch_resync) {
    // Channel drops on the constrained segment feed the encoder-side
    // perceived-loss estimator (the simulation's stand-in for the
    // transport-level loss signals a real gateway would observe).
    forward_link_->set_drop_observer(
        [this](const packet::Packet& p) { encoder_gw_->on_channel_drop(p); });
  }
  // The reverse path carries ACKs for the sender plus (optionally) DRE
  // control traffic for the encoder gateway; ACK-gated mode additionally
  // snoops the cumulative ACK as the packet passes the gateway.
  reverse_link_->set_sink([this](packet::PacketPtr p) {
    if (p->ip.protocol == core::kControlProto) {
      encoder_gw_->receive_control(*p);
      return;
    }
    encoder_gw_->observe_reverse(*p);
    sender_->on_packet(*p);
  });

  if (cfg.audit_interval_events != 0) {
    sim.request_audit_interval(cfg.audit_interval_events);
    auditor_id_ = sim.add_auditor([this] { audit(); });
  }
}

Pipeline::~Pipeline() {
  if (auditor_id_ != 0) sim_->remove_auditor(auditor_id_);
}

void Pipeline::audit() const {
  if (const core::Encoder* enc = encoder_gw_->encoder()) enc->audit();
  if (const core::Decoder* dec = decoder_gw_->decoder()) dec->audit();
  sender_->audit();
  receiver_->audit();
}

}  // namespace bytecache::gateway
