// Sharded multi-worker DRE gateways: the data plane scaled across cores.
//
// Traffic is partitioned by a stable flow-key hash into N shared-nothing
// shards, each owning a private EncoderGateway / DecoderGateway (and so
// a private ByteCache), driven by one worker thread per shard and fed
// through fixed-capacity SPSC rings (util/spsc_ring.h).  A shard's codec
// is touched by exactly one thread, so the allocation-free hot path runs
// unmodified and lock-free inside it; the wire format is untouched, and
// with one shard the packet sequence through the codec is exactly the
// single-gateway sequence, so N=1 is bit-identical to EncoderGateway /
// DecoderGateway (pinned by tests/sharded_gateway_test.cc).
#pragma once
//
// Shard key: the unordered IP endpoint pair, NOT the TCP ports — the
// DRE shim replaces the payload, so ports are not parseable at the
// decoder, and the paper's gains lean on inter-flow sharing, so every
// flow whose bytes may reference each other (the host pair) must share
// one cache.  Symmetry routes reverse-direction packets (cumulative
// ACKs, NACK control) to the shard owning the forward flow.  A flow
// maps to exactly one shard and every stage is FIFO, so per-flow order
// is preserved end to end; cross-shard order is unspecified, as between
// unrelated flows on any real network.
//
// Threading contract: one thread calls submit*()/drain*() (the
// "driver"); workers are internal.  With GatewayConfig::threaded == false no
// threads or rings exist and submit*() runs the codec inline — the
// deterministic mode for tests, and the building block for callers that
// run shards on their own threads via submit_to_shard() (each shard
// index then owned by one calling thread).  Statistics and audits
// require quiescence: call drain_until_idle() first.
//
// The contract is compiler-enforced under Clang (-Wthread-safety, see
// util/thread_annotations.h and DESIGN.md §11): the driver-only surface
// claims `driver_role_` (so the registry and the stall histogram are
// provably driver-thread state), workers claim their shard rings'
// consumer roles, and every ring end is pushed/popped only under the
// matching role capability.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "gateway/gateways.h"
#include "util/spsc_ring.h"
#include "util/thread_annotations.h"
#include "util/worker.h"

namespace bytecache::gateway {

/// Elements moved per ring operation on the burst paths: workers pop
/// commands in bursts of up to this many (one release store retires the
/// whole batch, and consecutive data packets flow through
/// receive_burst's prefetched loop), and drain() pops output likewise.
/// 32 amortizes the synchronizing stores ~30x while bounding the extra
/// latency a burst adds ahead of any one packet.
inline constexpr std::size_t kWorkerBurst = 32;

/// Stable, direction-symmetric shard key of a packet: a mixed hash of
/// the unordered {ip.src, ip.dst} pair.  Identical before and after DRE
/// encoding (the IP addresses survive; the protocol field does not
/// contribute).  Never returns 0.
[[nodiscard]] std::uint64_t shard_key_of(const packet::Packet& pkt);

/// Maps a shard key to a shard index in [0, shards).
[[nodiscard]] std::size_t shard_index_of(std::uint64_t key,
                                         std::size_t shards);

/// Sink invoked on a shard's worker thread with that shard's index;
/// installing it bypasses the output ring (see set_worker_sink).
using ShardPacketSink = std::function<void(std::size_t, packet::PacketPtr)>;

class ShardedEncoderGateway {
 public:
  /// Shard count, ring capacity, and threading come from `cfg` (see
  /// core::GatewayConfig); cfg.threaded == false means no worker threads
  /// — submit*() processes inline on the caller thread and sinks fire
  /// immediately (the deterministic, zero-thread mode).
  explicit ShardedEncoderGateway(const core::GatewayConfig& cfg);
  /// Stops the workers; output still in the rings is dropped (call
  /// drain_until_idle() first for a clean shutdown).
  ~ShardedEncoderGateway();

  ShardedEncoderGateway(const ShardedEncoderGateway&) = delete;
  ShardedEncoderGateway& operator=(const ShardedEncoderGateway&) = delete;

  /// Ordinary output: encoded packets are delivered by drain() on the
  /// driver thread, shard by shard (per-flow FIFO).  Set before the
  /// first submit.
  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Worker-side output: each shard's packets are handed to `sink` on
  /// that shard's worker thread, bypassing the output ring (the bench
  /// chains the decoder shard here).  The sink must be thread-safe
  /// across shard indices (typically it only touches per-shard state).
  /// Set before the first submit; drain() then has nothing to do.
  void set_worker_sink(ShardPacketSink sink);

  /// Routes a forward data packet to its shard.  Blocks (draining the
  /// output stage meanwhile, so a full pipeline cannot deadlock) until
  /// the shard's input ring accepts it.  Driver thread only.
  void submit(packet::PacketPtr pkt);

  /// Non-blocking form: false (packet untouched) if the shard's input
  /// ring is full.  Driver thread only.
  bool try_submit(packet::PacketPtr& pkt);

  /// Reverse-path DRE control packet (NACK feedback) or reverse data/ACK
  /// packet to observe (ack-gated policy).  Routed through the owning
  /// shard's input ring so control actions stay ordered with the shard's
  /// data stream.  Driver thread only.
  void submit_control(packet::PacketPtr pkt);
  void submit_reverse(packet::PacketPtr pkt);

  /// Pops every completed packet from the per-shard output rings into
  /// the sink; returns the number delivered.  Driver thread only.
  std::size_t drain();

  /// Drains until every shard has consumed its input and the output
  /// rings are empty — the quiescence point for stats/audit/shutdown.
  void drain_until_idle();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const EncoderGateway& shard(std::size_t i) const {
    return shards_[i]->gw;
  }
  [[nodiscard]] EncoderGateway& shard(std::size_t i) { return shards_[i]->gw; }

  /// Aggregates across shards (quiescent callers only).
  [[nodiscard]] EncoderGatewayStats stats() const;
  [[nodiscard]] core::EncoderStats encoder_stats() const;
  [[nodiscard]] cache::CacheStats cache_stats() const;

  /// The per-shard registries merged into one value set (quiescent
  /// callers only): counters and histograms add across shards, gauges
  /// combine per their MergeOp, plus the driver-side ring-stall span.
  /// With one shard this equals the plain gateway's snapshot (pinned by
  /// tests/obs_test.cc).
  [[nodiscard]] obs::Snapshot snapshot() const {
    util::ScopedRole driver(driver_role_);
    return metrics_.snapshot();
  }

  /// Deep invariant audit (BC_AUDIT; quiescent callers only): every
  /// shard's encoder and rings, plus the submit/complete accounting.
  void audit() const;

 private:
  struct Cmd {
    enum class Kind : std::uint8_t { kData, kControl, kReverse };
    packet::PacketPtr pkt;
    Kind kind = Kind::kData;
  };

  struct Shard {
    Shard(const core::GatewayConfig& cfg, cache::L2Store* l2)
        : in(cfg.ring_capacity), out(cfg.ring_capacity), gw(cfg, l2) {}
    util::SpscRing<Cmd> in;
    util::SpscRing<packet::PacketPtr> out;
    EncoderGateway gw;
    std::thread thread;
    std::atomic<std::uint64_t> submitted{0};  // driver-thread writes
    std::atomic<std::uint64_t> completed{0};  // worker writes
    std::atomic<bool> stop{false};
    std::atomic<bool> abort{false};  // destructor: drop instead of block
  };

  void enqueue(Shard& s, Cmd cmd) BC_REQUIRES(driver_role_);
  std::size_t drain_some() BC_REQUIRES(driver_role_);
  void run_worker(Shard& s);
  void process(Shard& s, Cmd& cmd);
  /// Worker side: runs `cmds[0..n)` in order, feeding each run of
  /// consecutive data packets through the gateway's burst entry point.
  void process_burst(Shard& s, Cmd* cmds, std::size_t n);
  [[nodiscard]] Shard& shard_for(const packet::Packet& pkt) {
    return *shards_[shard_index_of(shard_key_of(pkt), shards_.size())];
  }

  bool threaded_;
  // One store for the whole gateway, one stripe per shard (created
  // before — and so destroyed after — the shards whose codecs attach).
  std::unique_ptr<cache::L2Store> l2_;  // null unless cfg.cache.has_l2()
  std::vector<std::unique_ptr<Shard>> shards_;
  // The sinks are set before the first submit and then only read: sink_
  // on the driver thread (drain), worker_sink_ on the workers.  That
  // set-before-start phase is a time-based contract no single role
  // capability expresses, so they stay unguarded.
  PacketSink sink_;
  ShardPacketSink worker_sink_;
  /// The capability of the one thread allowed to call submit*/drain*
  /// (claimed inside those entry points; see util/thread_annotations.h).
  util::ThreadRole driver_role_;
  // Registry attachment and the stall histogram are driver-thread state:
  // providers are attached in the constructor, read at snapshot(), and
  // the stall span is recorded on the submit slow path — all driver-side.
  obs::MetricsRegistry metrics_ BC_GUARDED_BY(driver_role_);
  obs::Histogram* stall_hist_ BC_GUARDED_BY(driver_role_) =
      nullptr;  // "...ring_stall_ns"; may be off
};

class ShardedDecoderGateway {
 public:
  /// See ShardedEncoderGateway: shards/rings/threading come from `cfg`,
  /// the decoder is enabled iff cfg.decoder_enabled().
  explicit ShardedDecoderGateway(const core::GatewayConfig& cfg);
  ~ShardedDecoderGateway();

  ShardedDecoderGateway(const ShardedDecoderGateway&) = delete;
  ShardedDecoderGateway& operator=(const ShardedDecoderGateway&) = delete;

  /// Decoded output, delivered by drain() on the driver thread.
  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Worker-side decoded output (see ShardedEncoderGateway equivalent).
  void set_worker_sink(ShardPacketSink sink);

  /// Reverse-path sink for NACK control packets, delivered by drain()
  /// on the driver thread.
  void set_feedback(PacketSink feedback) { feedback_ = std::move(feedback); }

  /// Routes an incoming (possibly encoded) packet to its shard.  Blocks
  /// draining until the shard accepts it.  Driver thread only.
  void submit(packet::PacketPtr pkt);
  bool try_submit(packet::PacketPtr& pkt);

  /// Pushes a packet directly into shard `i`'s input, bypassing key
  /// derivation — for upstream stages that are themselves sharded with
  /// the same key (an encoder shard's worker feeds its decoder twin).
  /// Each shard index must be fed by exactly one thread.  In non-threaded
  /// mode the packet is decoded inline on the calling thread.
  void submit_to_shard(std::size_t i, packet::PacketPtr pkt);

  /// Delivers decoded packets (and NACK feedback) from the per-shard
  /// output rings; returns packets delivered.  Driver thread only.
  std::size_t drain();
  void drain_until_idle();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const DecoderGateway& shard(std::size_t i) const {
    return shards_[i]->gw;
  }
  [[nodiscard]] DecoderGateway& shard(std::size_t i) { return shards_[i]->gw; }

  [[nodiscard]] DecoderGatewayStats stats() const;
  [[nodiscard]] core::DecoderStats decoder_stats() const;
  [[nodiscard]] cache::CacheStats cache_stats() const;

  /// Cross-shard merged value set (see ShardedEncoderGateway).
  [[nodiscard]] obs::Snapshot snapshot() const {
    util::ScopedRole driver(driver_role_);
    return metrics_.snapshot();
  }

  void audit() const;

 private:
  struct Shard {
    Shard(const core::GatewayConfig& cfg, cache::L2Store* l2)
        : in(cfg.ring_capacity),
          out(cfg.ring_capacity),
          feedback(cfg.ring_capacity),
          gw(cfg, l2) {}
    util::SpscRing<packet::PacketPtr> in;
    util::SpscRing<packet::PacketPtr> out;
    util::SpscRing<packet::PacketPtr> feedback;
    DecoderGateway gw;
    std::thread thread;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> stop{false};
    std::atomic<bool> abort{false};
  };

  void enqueue(Shard& s, packet::PacketPtr pkt) BC_REQUIRES(driver_role_);
  std::size_t drain_some() BC_REQUIRES(driver_role_);
  void run_worker(Shard& s);

  bool threaded_;
  // See ShardedEncoderGateway::l2_: one store, one stripe per shard.
  std::unique_ptr<cache::L2Store> l2_;  // null unless cfg.cache.has_l2()
  std::vector<std::unique_ptr<Shard>> shards_;
  // Set before the first submit, then read-only (see ShardedEncoderGateway).
  PacketSink sink_;
  ShardPacketSink worker_sink_;
  PacketSink feedback_;
  /// See ShardedEncoderGateway::driver_role_.  submit_to_shard() is the
  /// one entry point exempt from it: each shard index is owned by its own
  /// calling thread, which claims that shard's ring producer role instead.
  util::ThreadRole driver_role_;
  obs::MetricsRegistry metrics_ BC_GUARDED_BY(driver_role_);
  obs::Histogram* stall_hist_ BC_GUARDED_BY(driver_role_) =
      nullptr;  // "...ring_stall_ns"; may be off
};

}  // namespace bytecache::gateway
