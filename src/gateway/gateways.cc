#include "gateway/gateways.h"

#include "core/flow.h"
#include "core/policies.h"
#include "packet/tcp.h"

namespace bytecache::gateway {

EncoderGateway::EncoderGateway(core::PolicyKind kind,
                               const core::DreParams& params)
    : encoder_(core::make_encoder(kind, params)) {
  if (encoder_ != nullptr) {
    resilient_ = dynamic_cast<core::ResilientPolicy*>(&encoder_->policy());
  }
}

void EncoderGateway::receive(packet::PacketPtr pkt) {
  ++stats_.packets;
  if (encoder_ != nullptr) {
    core::EncodeInfo info = encoder_->process(*pkt);
    if (trace_ != nullptr && sim_ != nullptr) {
      const sim::SimTime now = sim_->now();
      if (info.flushed) trace_->record(now, sim::TraceEvent::kFlush, pkt->uid);
      if (info.reference) {
        trace_->record(now, sim::TraceEvent::kReference, pkt->uid);
      }
      if (info.encoded) {
        trace_->record(now, sim::TraceEvent::kEncode, pkt->uid,
                       info.sent_size);
      }
    }
    if (observer_) observer_(info);
  }
  stats_.wire_bytes_out += pkt->wire_size();
  if (sink_) sink_(std::move(pkt));
}

void EncoderGateway::receive_control(const packet::Packet& pkt) {
  if (encoder_ == nullptr) return;
  auto msg = core::ControlMessage::parse(pkt.payload);
  if (!msg) return;
  switch (msg->type) {
    case core::ControlMessage::Type::kNack:
      for (rabin::Fingerprint fp : msg->fingerprints) {
        encoder_->on_nack(fp);
      }
      break;
    case core::ControlMessage::Type::kResyncRequest:
      encoder_->on_resync_request(msg->epoch);
      break;
    case core::ControlMessage::Type::kLossReport:
      ++stats_.loss_reports;
      if (resilient_ != nullptr) {
        resilient_->estimator().on_undecodable(msg->host_key, msg->count);
      }
      break;
  }
}

void EncoderGateway::on_channel_drop(const packet::Packet& pkt) {
  ++stats_.channel_drops_seen;
  if (resilient_ != nullptr) {
    resilient_->estimator().on_channel_drop(
        core::host_key_of(pkt.ip.src, pkt.ip.dst));
  }
}

void EncoderGateway::observe_reverse(const packet::Packet& pkt) {
  if (encoder_ == nullptr || !encoder_->params().ack_gated) return;
  if (pkt.proto() != packet::IpProto::kTcp) return;
  auto h = packet::TcpHeader::parse_unchecked(pkt.payload);
  if (h && h->has_ack()) {
    // The reverse packet's endpoints are swapped relative to the data
    // direction whose segments the gate admits.
    const std::uint64_t key = core::flow_key_of(pkt.ip.dst, pkt.ip.src,
                                                h->dst_port, h->src_port);
    encoder_->on_reverse_ack(key, h->ack);
  }
}

DecoderGateway::DecoderGateway(bool enabled, const core::DreParams& params)
    : decoder_(core::make_decoder(enabled, params)),
      nack_feedback_(params.nack_feedback),
      resilience_feedback_(params.epoch_resync) {}

void DecoderGateway::send_control(const packet::Packet& cause,
                                  const core::ControlMessage& msg,
                                  sim::TraceEvent event, std::uint64_t uid) {
  auto ctrl = packet::make_packet(
      cause.ip.dst, cause.ip.src,
      static_cast<packet::IpProto>(core::kControlProto), msg.serialize());
  if (trace_ != nullptr && sim_ != nullptr) {
    trace_->record(sim_->now(), event, uid);
  }
  feedback_(std::move(ctrl));
}

void DecoderGateway::receive(packet::PacketPtr pkt) {
  ++stats_.packets;
  if (decoder_ != nullptr) {
    const core::DecodeInfo info = decoder_->process(*pkt);
    if (trace_ != nullptr && sim_ != nullptr &&
        info.status == core::DecodeStatus::kDecoded) {
      trace_->record(sim_->now(), sim::TraceEvent::kDecode, pkt->uid,
                     info.restored_size);
    }
    if (core::is_drop(info.status)) {
      ++stats_.dropped;
      if (trace_ != nullptr && sim_ != nullptr) {
        trace_->record(sim_->now(), sim::TraceEvent::kDecodeDrop, pkt->uid,
                       static_cast<std::uint64_t>(info.status));
      }
      if (feedback_) {
        if (nack_feedback_ &&
            info.status == core::DecodeStatus::kMissingFingerprint) {
          core::ControlMessage nack;
          nack.fingerprints.push_back(info.missing_fp);
          ++stats_.nacks_sent;
          send_control(*pkt, nack, sim::TraceEvent::kNack, pkt->uid);
        }
        if (resilience_feedback_) {
          // Every undecodable drop is a perceived-loss sample for the
          // encoder-side estimator; the decoder only knows the host pair
          // of the dropped packet, so that is the report's granularity.
          core::ControlMessage report;
          report.type = core::ControlMessage::Type::kLossReport;
          report.host_key = core::host_key_of(pkt->ip.src, pkt->ip.dst);
          report.count = 1;
          ++stats_.loss_reports_sent;
          send_control(*pkt, report, sim::TraceEvent::kLossReport, pkt->uid);
          if (info.resync) {
            core::ControlMessage resync;
            resync.type = core::ControlMessage::Type::kResyncRequest;
            resync.epoch = info.resync_epoch;
            ++stats_.resyncs_sent;
            send_control(*pkt, resync, sim::TraceEvent::kResync, pkt->uid);
          }
        }
      }
      return;
    }
  }
  if (sink_) sink_(std::move(pkt));
}

}  // namespace bytecache::gateway
