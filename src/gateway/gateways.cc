#include "gateway/gateways.h"

#include "core/control.h"
#include "core/flow.h"
#include "packet/tcp.h"

namespace bytecache::gateway {

EncoderGateway::EncoderGateway(core::PolicyKind kind,
                               const core::DreParams& params)
    : encoder_(core::make_encoder(kind, params)) {}

void EncoderGateway::receive(packet::PacketPtr pkt) {
  ++stats_.packets;
  if (encoder_ != nullptr) {
    core::EncodeInfo info = encoder_->process(*pkt);
    if (trace_ != nullptr && sim_ != nullptr) {
      const sim::SimTime now = sim_->now();
      if (info.flushed) trace_->record(now, sim::TraceEvent::kFlush, pkt->uid);
      if (info.reference) {
        trace_->record(now, sim::TraceEvent::kReference, pkt->uid);
      }
      if (info.encoded) {
        trace_->record(now, sim::TraceEvent::kEncode, pkt->uid,
                       info.sent_size);
      }
    }
    if (observer_) observer_(info);
  }
  stats_.wire_bytes_out += pkt->wire_size();
  if (sink_) sink_(std::move(pkt));
}

void EncoderGateway::receive_control(const packet::Packet& pkt) {
  if (encoder_ == nullptr) return;
  auto msg = core::ControlMessage::parse(pkt.payload);
  if (!msg) return;
  for (rabin::Fingerprint fp : msg->fingerprints) {
    encoder_->on_nack(fp);
  }
}

void EncoderGateway::observe_reverse(const packet::Packet& pkt) {
  if (encoder_ == nullptr || !encoder_->params().ack_gated) return;
  if (pkt.proto() != packet::IpProto::kTcp) return;
  auto h = packet::TcpHeader::parse_unchecked(pkt.payload);
  if (h && h->has_ack()) {
    // The reverse packet's endpoints are swapped relative to the data
    // direction whose segments the gate admits.
    const std::uint64_t key = core::flow_key_of(pkt.ip.dst, pkt.ip.src,
                                                h->dst_port, h->src_port);
    encoder_->on_reverse_ack(key, h->ack);
  }
}

DecoderGateway::DecoderGateway(bool enabled, const core::DreParams& params)
    : decoder_(core::make_decoder(enabled, params)) {}

void DecoderGateway::receive(packet::PacketPtr pkt) {
  ++stats_.packets;
  if (decoder_ != nullptr) {
    const core::DecodeInfo info = decoder_->process(*pkt);
    if (trace_ != nullptr && sim_ != nullptr &&
        info.status == core::DecodeStatus::kDecoded) {
      trace_->record(sim_->now(), sim::TraceEvent::kDecode, pkt->uid,
                     info.restored_size);
    }
    if (core::is_drop(info.status)) {
      ++stats_.dropped;
      if (trace_ != nullptr && sim_ != nullptr) {
        trace_->record(sim_->now(), sim::TraceEvent::kDecodeDrop, pkt->uid,
                       static_cast<std::uint64_t>(info.status));
      }
      if (feedback_ &&
          info.status == core::DecodeStatus::kMissingFingerprint) {
        core::ControlMessage nack;
        nack.fingerprints.push_back(info.missing_fp);
        auto ctrl = packet::make_packet(
            pkt->ip.dst, pkt->ip.src,
            static_cast<packet::IpProto>(core::kControlProto),
            nack.serialize());
        ++stats_.nacks_sent;
        if (trace_ != nullptr && sim_ != nullptr) {
          trace_->record(sim_->now(), sim::TraceEvent::kNack, pkt->uid);
        }
        feedback_(std::move(ctrl));
      }
      return;
    }
  }
  if (sink_) sink_(std::move(pkt));
}

}  // namespace bytecache::gateway
