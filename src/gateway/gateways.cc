#include "gateway/gateways.h"

#include "core/flow.h"
#include "core/policies.h"
#include "core/wire.h"
#include "fec/wire.h"
#include "packet/tcp.h"

namespace bytecache::gateway {

namespace {

/// Registers the tier-movement counters and L2 occupancy gauges for one
/// codec's cache under `prefix` ("encoder.cache" / "decoder.cache").
/// Only called when an L2 is attached, so L1-only snapshots carry
/// exactly the pre-tier value set.
void link_tier_metrics(obs::MetricsRegistry& metrics, std::string prefix,
                       const cache::CacheTier& cache) {
  obs::link_stats(metrics, prefix + ".tier", cache.tier_stats());
  const cache::L2Store::Stripe& stripe = *cache.stripe();
  metrics.probe_gauge(
      prefix + ".l2_bytes_stored",
      [&stripe] { return static_cast<double>(stripe.bytes_used()); },
      obs::MergeOp::kSum);
  metrics.probe_gauge(
      prefix + ".l2_packets_stored",
      [&stripe] { return static_cast<double>(stripe.size()); },
      obs::MergeOp::kSum);
  metrics.probe_gauge(
      prefix + ".l2_fingerprints",
      [&stripe] { return static_cast<double>(stripe.fingerprints()); },
      obs::MergeOp::kSum);
  metrics.probe_gauge(
      prefix + ".l2_host_pairs",
      [&stripe] { return static_cast<double>(stripe.hosts().pairs()); },
      obs::MergeOp::kSum);
}

}  // namespace

EncoderGateway::EncoderGateway(const core::GatewayConfig& cfg,
                               cache::L2Store* shared_l2)
    : own_l2_(cfg.policy != core::PolicyKind::kNone && cfg.cache.has_l2() &&
                      shared_l2 == nullptr
                  ? std::make_unique<cache::L2Store>(cfg.cache, 1)
                  : nullptr),
      encoder_(core::make_encoder(
          cfg, shared_l2 != nullptr ? shared_l2 : own_l2_.get())) {
  if (encoder_ != nullptr) {
    resilient_ = dynamic_cast<core::ResilientPolicy*>(&encoder_->policy());
  }
  // Registry assembly is the cold path: linked counters read the stats
  // structs only at snapshot time, so the per-packet increments below
  // stay plain field adds.
  obs::link_stats(metrics_, "gateway.encoder", stats_);
  if (cfg.span_sample_every > 0) {
    encode_span_ = obs::SpanSampler(
        metrics_.histogram("gateway.encoder.encode_ns"),
        cfg.span_sample_every);
  }
  if (encoder_ != nullptr) {
    obs::link_stats(metrics_, "encoder", encoder_->stats());
    obs::link_stats(metrics_, "encoder.cache", encoder_->cache().stats());
    obs::link_stats(metrics_, "encoder.fec", encoder_->repair_stats());
    const cache::CacheTier& cache = encoder_->cache();
    if (cache.has_l2()) link_tier_metrics(metrics_, "encoder.cache", cache);
    metrics_.probe_gauge(
        "encoder.cache.bytes_stored",
        [&cache] { return static_cast<double>(cache.store().bytes_used()); },
        obs::MergeOp::kSum);
    metrics_.probe_gauge(
        "encoder.cache.packets_stored",
        [&cache] { return static_cast<double>(cache.store().size()); },
        obs::MergeOp::kSum);
    metrics_.probe_gauge(
        "encoder.cache.fingerprints",
        [&cache] { return static_cast<double>(cache.fingerprint_count()); },
        obs::MergeOp::kSum);
    metrics_.probe_counter("encoder.cache.evictions", [&cache] {
      return cache.store().evictions();
    });
    const core::Encoder& enc = *encoder_;
    metrics_.probe_gauge(
        "encoder.epoch", [&enc] { return static_cast<double>(enc.epoch()); },
        obs::MergeOp::kMax);
  }
  if (resilient_ != nullptr) {
    const core::ResilientPolicy& pol = *resilient_;
    const resilience::PerceivedLossEstimator& est = pol.estimator();
    metrics_.probe_counter("resilience.loss.offered",
                           [&est] { return est.total_offered(); });
    metrics_.probe_counter("resilience.loss.channel_drops",
                           [&est] { return est.total_channel_drops(); });
    metrics_.probe_counter("resilience.loss.undecodable",
                           [&est] { return est.total_undecodable(); });
    metrics_.probe_gauge(
        "resilience.loss.flows",
        [&est] { return static_cast<double>(est.flows()); },
        obs::MergeOp::kSum);
    // Worst-case values merge with kMax: the pipeline-wide perceived
    // loss is the worst shard's, exactly as the paper's Fig. 13 metric.
    metrics_.probe_gauge(
        "resilience.loss.perceived_max",
        [&est] { return est.max_loss(); }, obs::MergeOp::kMax);
    metrics_.probe_gauge(
        "resilience.degradation.worst_level",
        [&pol] { return static_cast<double>(pol.worst_level()); },
        obs::MergeOp::kMax);
    metrics_.probe_counter("resilience.degradation.transitions",
                           [&pol] { return pol.transitions(); });
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->add_provider([this] { return snapshot(); });
  }
}

void EncoderGateway::receive(packet::PacketPtr pkt) {
  ++stats_.packets;
  process_received(std::move(pkt));
}

void EncoderGateway::receive_burst(std::span<packet::PacketPtr> pkts) {
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (pkts[i] == nullptr) continue;
    // Pull the next packet's payload head while this one encodes; the
    // codec sequence and sink calls stay exactly receive()'s.
    if (i + 1 < pkts.size() && pkts[i + 1] != nullptr) {
      __builtin_prefetch(pkts[i + 1]->payload.data());
    }
    ++stats_.packets;
    process_received(std::move(pkts[i]));
  }
}

void EncoderGateway::process_received(packet::PacketPtr pkt) {
  std::span<const util::Bytes> repairs;
  if (encoder_ != nullptr) {
    const obs::SpanSampler::Token span = encode_span_.begin();
    core::EncodeInfo info = encoder_->process(*pkt);
    encode_span_.end(span);
    if (trace_ != nullptr && sim_ != nullptr) {
      const sim::SimTime now = sim_->now();
      if (info.flushed) trace_->record(now, sim::TraceEvent::kFlush, pkt->uid);
      if (info.reference) {
        trace_->record(now, sim::TraceEvent::kReference, pkt->uid);
      }
      if (info.encoded) {
        trace_->record(now, sim::TraceEvent::kEncode, pkt->uid,
                       info.sent_size);
      }
    }
    if (observer_) observer_(info);
    repairs = info.repairs;  // scratch stays valid until the next process()
  }
  stats_.wire_bytes_out += pkt->wire_size();
  repair_src_ = pkt->ip.src;
  repair_dst_ = pkt->ip.dst;
  repair_addr_known_ = true;
  if (sink_) sink_(std::move(pkt));
  // Repairs ride right behind the member that closed their generation;
  // injecting after the data packet keeps the data stream order intact.
  emit_repairs(repairs);
}

void EncoderGateway::emit_repairs(std::span<const util::Bytes> repairs) {
  for (const util::Bytes& payload : repairs) {
    auto rp = packet::make_packet(repair_src_, repair_dst_,
                                  packet::IpProto::kDre, payload);
    ++stats_.repair_packets_out;
    stats_.wire_bytes_out += rp->wire_size();
    if (sink_) sink_(std::move(rp));
  }
}

void EncoderGateway::flush_repairs() {
  if (encoder_ == nullptr || !repair_addr_known_) return;
  emit_repairs(encoder_->close_repair_generation());
}

bool EncoderGateway::switch_policy(core::PolicyKind kind) {
  if (encoder_ == nullptr) return false;
  auto policy = core::make_policy(kind, encoder_->params());
  if (policy == nullptr) return false;  // kNone: cannot un-build a codec
  encoder_->set_policy(std::move(policy));
  // The cached resilient view follows the active policy; the registry's
  // resilience.* probes were bound to the *construction-time* policy, so
  // they are only re-pointed, never re-registered (registration is
  // construction-only, like everything in the obs layer).
  resilient_ = dynamic_cast<core::ResilientPolicy*>(&encoder_->policy());
  return true;
}

void EncoderGateway::receive_control(const packet::Packet& pkt) {
  if (encoder_ == nullptr) return;
  auto msg = core::ControlMessage::parse(pkt.payload);
  if (!msg) return;
  switch (msg->type) {
    case core::ControlMessage::Type::kNack:
      for (rabin::Fingerprint fp : msg->fingerprints) {
        encoder_->on_nack(fp);
      }
      break;
    case core::ControlMessage::Type::kResyncRequest:
      encoder_->on_resync_request(msg->epoch);
      break;
    case core::ControlMessage::Type::kLossReport:
      ++stats_.loss_reports;
      if (resilient_ != nullptr) {
        resilient_->estimator().on_undecodable(msg->host_key, msg->count);
      }
      break;
  }
}

void EncoderGateway::on_channel_drop(const packet::Packet& pkt) {
  ++stats_.channel_drops_seen;
  if (resilient_ != nullptr) {
    resilient_->estimator().on_channel_drop(
        core::host_key_of(pkt.ip.src, pkt.ip.dst));
  }
}

void EncoderGateway::observe_reverse(const packet::Packet& pkt) {
  if (encoder_ == nullptr || !encoder_->params().ack_gated) return;
  if (pkt.proto() != packet::IpProto::kTcp) return;
  auto h = packet::TcpHeader::parse_unchecked(pkt.payload);
  if (h && h->has_ack()) {
    // The reverse packet's endpoints are swapped relative to the data
    // direction whose segments the gate admits.
    const std::uint64_t key = core::flow_key_of(pkt.ip.dst, pkt.ip.src,
                                                h->dst_port, h->src_port);
    encoder_->on_reverse_ack(key, h->ack);
  }
}

DecoderGateway::DecoderGateway(const core::GatewayConfig& cfg,
                               cache::L2Store* shared_l2)
    : own_l2_(cfg.decoder_enabled() && cfg.cache.has_l2() &&
                      shared_l2 == nullptr
                  ? std::make_unique<cache::L2Store>(cfg.cache, 1)
                  : nullptr),
      decoder_(core::make_decoder(
          cfg, shared_l2 != nullptr ? shared_l2 : own_l2_.get())),
      nack_feedback_(cfg.params.nack_feedback),
      resilience_feedback_(cfg.params.epoch_resync) {
  obs::link_stats(metrics_, "gateway.decoder", stats_);
  if (cfg.span_sample_every > 0) {
    decode_span_ = obs::SpanSampler(
        metrics_.histogram("gateway.decoder.decode_ns"),
        cfg.span_sample_every);
  }
  // Undecodable-run-length episodes are recorded unconditionally: the
  // cost is one counter update per packet only while drops are already
  // happening, never on the fast path.
  run_hist_ = &metrics_.histogram("gateway.decoder.undecodable_run");
  if (decoder_ != nullptr) {
    obs::link_stats(metrics_, "decoder", decoder_->stats());
    obs::link_stats(metrics_, "decoder.cache", decoder_->cache().stats());
    const cache::CacheTier& cache = decoder_->cache();
    if (cache.has_l2()) link_tier_metrics(metrics_, "decoder.cache", cache);
    metrics_.probe_gauge(
        "decoder.cache.bytes_stored",
        [&cache] { return static_cast<double>(cache.store().bytes_used()); },
        obs::MergeOp::kSum);
    metrics_.probe_gauge(
        "decoder.cache.packets_stored",
        [&cache] { return static_cast<double>(cache.store().size()); },
        obs::MergeOp::kSum);
    metrics_.probe_gauge(
        "decoder.cache.fingerprints",
        [&cache] { return static_cast<double>(cache.fingerprint_count()); },
        obs::MergeOp::kSum);
    metrics_.probe_counter("decoder.cache.evictions", [&cache] {
      return cache.store().evictions();
    });
    const core::Decoder& dec = *decoder_;
    metrics_.probe_gauge(
        "decoder.epoch", [&dec] { return static_cast<double>(dec.epoch()); },
        obs::MergeOp::kMax);
    if (cfg.params.coded_repair) {
      repair_ = std::make_unique<fec::RepairDecoder>(cfg.params.repair);
      obs::link_stats(metrics_, "decoder.fec", repair_->stats());
      const fec::RepairDecoder& rd = *repair_;
      metrics_.probe_gauge(
          "decoder.fec.buffered",
          [&rd] { return static_cast<double>(rd.buffered()); },
          obs::MergeOp::kSum);
    }
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->add_provider([this] { return snapshot(); });
  }
}

obs::Snapshot DecoderGateway::snapshot() const {
  if (drop_run_ > 0) {
    run_hist_->record(drop_run_);
    drop_run_ = 0;
  }
  return metrics_.snapshot();
}

void DecoderGateway::send_control(const packet::Packet& cause,
                                  const core::ControlMessage& msg,
                                  sim::TraceEvent event, std::uint64_t uid) {
  auto ctrl = packet::make_packet(
      cause.ip.dst, cause.ip.src,
      static_cast<packet::IpProto>(core::kControlProto), msg.serialize());
  if (trace_ != nullptr && sim_ != nullptr) {
    trace_->record(sim_->now(), event, uid);
  }
  feedback_(std::move(ctrl));
}

void DecoderGateway::receive(packet::PacketPtr pkt) {
  ++stats_.packets;
  process_received(std::move(pkt));
}

void DecoderGateway::receive_burst(std::span<packet::PacketPtr> pkts) {
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (pkts[i] == nullptr) continue;
    if (i + 1 < pkts.size() && pkts[i + 1] != nullptr) {
      __builtin_prefetch(pkts[i + 1]->payload.data());
    }
    ++stats_.packets;
    process_received(std::move(pkts[i]));
  }
}

void DecoderGateway::process_received(packet::PacketPtr pkt) {
  if (repair_ != nullptr) {
    if (fec::is_repair_payload(pkt->payload)) {
      repair_->on_repair(pkt->payload, fec_out_);
      deliver_released();
      return;  // a repair packet carries no user data of its own
    }
    std::uint16_t gen_id = 0;
    std::uint8_t gen_seq = 0;
    if (core::peek_gen_tag(pkt->payload, gen_id, gen_seq)) {
      repair_->on_data(gen_id, gen_seq, std::move(pkt), fec_out_);
      deliver_released();
      return;
    }
    // Untagged (the encoder was not on the coded rung when it sent
    // this): bypasses the reorder cache, like pre-v3 traffic.
  }
  deliver(std::move(pkt));
}

void DecoderGateway::deliver_released() {
  for (fec::RepairDecoder::Released& r : fec_out_) {
    if (r.pkt != nullptr) deliver(std::move(r.pkt));
  }
  fec_out_.clear();
}

void DecoderGateway::drain_repair_buffer() {
  if (repair_ == nullptr) return;
  repair_->drain(fec_out_);
  deliver_released();
}

void DecoderGateway::deliver(packet::PacketPtr pkt) {
  if (decoder_ != nullptr) {
    const obs::SpanSampler::Token span = decode_span_.begin();
    const core::DecodeInfo info = decoder_->process(*pkt);
    decode_span_.end(span);
    if (trace_ != nullptr && sim_ != nullptr &&
        info.status == core::DecodeStatus::kDecoded) {
      trace_->record(sim_->now(), sim::TraceEvent::kDecode, pkt->uid,
                     info.restored_size);
    }
    if (core::is_drop(info.status)) {
      ++stats_.dropped;
      ++drop_run_;
      if (trace_ != nullptr && sim_ != nullptr) {
        trace_->record(sim_->now(), sim::TraceEvent::kDecodeDrop, pkt->uid,
                       static_cast<std::uint64_t>(info.status));
      }
      if (feedback_) {
        if (nack_feedback_ &&
            info.status == core::DecodeStatus::kMissingFingerprint) {
          core::ControlMessage nack;
          nack.fingerprints.push_back(info.missing_fp);
          ++stats_.nacks_sent;
          send_control(*pkt, nack, sim::TraceEvent::kNack, pkt->uid);
        }
        if (resilience_feedback_) {
          // Every undecodable drop is a perceived-loss sample for the
          // encoder-side estimator; the decoder only knows the host pair
          // of the dropped packet, so that is the report's granularity.
          core::ControlMessage report;
          report.type = core::ControlMessage::Type::kLossReport;
          report.host_key = core::host_key_of(pkt->ip.src, pkt->ip.dst);
          report.count = 1;
          ++stats_.loss_reports_sent;
          send_control(*pkt, report, sim::TraceEvent::kLossReport, pkt->uid);
          if (info.resync) {
            core::ControlMessage resync;
            resync.type = core::ControlMessage::Type::kResyncRequest;
            resync.epoch = info.resync_epoch;
            ++stats_.resyncs_sent;
            send_control(*pkt, resync, sim::TraceEvent::kResync, pkt->uid);
          }
        }
      }
      return;
    }
    // A packet made it through: the undecodable episode (if any) ended.
    if (drop_run_ > 0) {
      run_hist_->record(drop_run_);
      drop_run_ = 0;
    }
  }
  if (sink_) sink_(std::move(pkt));
}

}  // namespace bytecache::gateway
