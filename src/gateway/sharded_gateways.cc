#include "gateway/sharded_gateways.h"

#include <array>
#include <chrono>

#include "core/flow.h"
#include "util/check.h"

namespace bytecache::gateway {

std::uint64_t shard_key_of(const packet::Packet& pkt) {
  // Unordered endpoint pair: forward data, reverse ACKs, and control
  // packets (NACK, resync request, loss report) of one host pair all
  // hash identically.  Delegates to core::host_key_of so control
  // messages keyed by host pair always route to the owning shard.
  return core::host_key_of(pkt.ip.src, pkt.ip.dst);
}

std::size_t shard_index_of(std::uint64_t key, std::size_t shards) {
  BC_CHECK(shards > 0) << "shard_index_of with zero shards";
  return static_cast<std::size_t>(key % shards);
}

namespace {

/// Blocking ring push for the worker-side output path: spins politely;
/// drops the element if the gateway is being torn down (`abort`).  The
/// caller is by contract the one producer of `ring` (a shard's worker, or
/// the shard-owning thread in submit_to_shard mode), so the producer role
/// is claimed here.
template <typename T>
void push_or_abort(util::SpscRing<T>& ring, T v,
                   const std::atomic<bool>& abort) {
  util::ScopedRole producer(ring.producer_role);
  util::Backoff backoff;
  while (!ring.try_push(v)) {
    if (abort.load(std::memory_order_acquire)) return;
    backoff.pause();
  }
}

}  // namespace

// --------------------------------------------------------------- encoder --

ShardedEncoderGateway::ShardedEncoderGateway(const core::GatewayConfig& cfg)
    : threaded_(cfg.threaded) {
  BC_CHECK(cfg.shards >= 1) << "a sharded gateway needs at least 1 shard";
  // Per-shard gateways get a copy of the config with no parent registry:
  // this gateway merges their registries itself (snapshot providers
  // below), so attaching each shard to cfg.metrics too would double
  // count.
  core::GatewayConfig shard_cfg = cfg;
  shard_cfg.metrics = nullptr;
  if (cfg.span_sample_every > 0) {
    stall_hist_ = &metrics_.histogram("gateway.encoder.ring_stall_ns");
  }
  // One L2 store spans the gateway; each shard's codec claims a stripe.
  if (cfg.policy != core::PolicyKind::kNone && cfg.cache.has_l2()) {
    l2_ = std::make_unique<cache::L2Store>(cfg.cache, cfg.shards);
  }
  shards_.reserve(cfg.shards);
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_cfg, l2_.get()));
    Shard& s = *shards_.back();
    metrics_.add_provider([&s] { return s.gw.snapshot(); });
    // The per-shard gateway's sink runs wherever the shard's codec runs:
    // on the worker (threaded) or on the driver thread (inline mode).
    s.gw.set_sink([this, &s, i](packet::PacketPtr pkt) {
      if (worker_sink_) {
        worker_sink_(i, std::move(pkt));
      } else if (threaded_) {
        push_or_abort(s.out, std::move(pkt), s.abort);
      } else if (sink_) {
        sink_(std::move(pkt));
      }
    });
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->add_provider([this] { return snapshot(); });
  }
  if (threaded_) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard* s = shards_[i].get();
      s->thread = std::thread([this, s] { run_worker(*s); });
    }
  }
}

ShardedEncoderGateway::~ShardedEncoderGateway() {
  for (auto& s : shards_) {
    s->abort.store(true, std::memory_order_release);
    s->stop.store(true, std::memory_order_release);
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void ShardedEncoderGateway::set_worker_sink(ShardPacketSink sink) {
  worker_sink_ = std::move(sink);
}

void ShardedEncoderGateway::process(Shard& s, Cmd& cmd) {
  switch (cmd.kind) {
    case Cmd::Kind::kData:
      s.gw.receive(std::move(cmd.pkt));
      break;
    case Cmd::Kind::kControl:
      s.gw.receive_control(*cmd.pkt);
      cmd.pkt.reset();
      break;
    case Cmd::Kind::kReverse:
      s.gw.observe_reverse(*cmd.pkt);
      cmd.pkt.reset();
      break;
  }
}

void ShardedEncoderGateway::process_burst(Shard& s, Cmd* cmds,
                                          std::size_t n) {
  // Runs of consecutive data packets go through the gateway's burst
  // entry point (next-payload prefetch, one codec loop); control and
  // reverse commands break the run and run singly, preserving exactly
  // the order a one-at-a-time pop loop would execute.
  std::array<packet::PacketPtr, kWorkerBurst> run;
  std::size_t i = 0;
  while (i < n) {
    if (cmds[i].kind != Cmd::Kind::kData) {
      process(s, cmds[i]);
      ++i;
      continue;
    }
    std::size_t len = 0;
    while (i + len < n && cmds[i + len].kind == Cmd::Kind::kData) {
      run[len] = std::move(cmds[i + len].pkt);
      ++len;
    }
    s.gw.receive_burst({run.data(), len});
    i += len;
  }
}

void ShardedEncoderGateway::run_worker(Shard& s) {
  // This thread is the one consumer of the shard's input ring for the
  // gateway's whole lifetime (the output side is claimed inside
  // push_or_abort by the shard gateway's sink).
  util::ScopedRole consumer(s.in.consumer_role);
  util::Backoff backoff;
  std::array<Cmd, kWorkerBurst> burst;
  for (;;) {
    std::size_t n = s.in.pop_burst(burst.data(), burst.size());
    if (n == 0 && s.stop.load(std::memory_order_acquire)) {
      // The driver stops submitting before setting `stop`; one final pop
      // catches a push that raced the flag.
      n = s.in.pop_burst(burst.data(), burst.size());
      if (n == 0) break;
    }
    if (n > 0) {
      backoff.reset();
      process_burst(s, burst.data(), n);
      // One release publishes the whole batch's completion (pairs with
      // drain_until_idle's acquire).
      s.completed.fetch_add(n, std::memory_order_release);
      continue;
    }
    backoff.pause();
  }
}

void ShardedEncoderGateway::enqueue(Shard& s, Cmd cmd) {
  if (!threaded_) {
    s.submitted.fetch_add(1, std::memory_order_relaxed);
    process(s, cmd);
    s.completed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The driver is the one producer of every shard's input ring.
  util::ScopedRole producer(s.in.producer_role);
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  if (s.in.try_push(cmd)) return;
  // Ring full: wait, keeping the output stage moving meanwhile — the
  // driver thread is also the drain consumer, so a full pipeline backs
  // up here instead of deadlocking.  Clock reads happen only on this
  // slow path, so the stall span costs nothing when rings keep up.
  const bool timed = stall_hist_ != nullptr;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  util::Backoff backoff;
  do {
    if (drain_some() == 0) backoff.pause();
  } while (!s.in.try_push(cmd));
  if (timed) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    stall_hist_->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }
}

void ShardedEncoderGateway::submit(packet::PacketPtr pkt) {
  util::ScopedRole driver(driver_role_);
  Shard& s = shard_for(*pkt);
  enqueue(s, Cmd{std::move(pkt), Cmd::Kind::kData});
}

bool ShardedEncoderGateway::try_submit(packet::PacketPtr& pkt) {
  util::ScopedRole driver(driver_role_);
  Shard& s = shard_for(*pkt);
  if (!threaded_) {
    enqueue(s, Cmd{std::move(pkt), Cmd::Kind::kData});
    return true;
  }
  util::ScopedRole producer(s.in.producer_role);
  Cmd cmd{std::move(pkt), Cmd::Kind::kData};
  if (s.in.try_push(cmd)) {
    s.submitted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  pkt = std::move(cmd.pkt);
  return false;
}

void ShardedEncoderGateway::submit_control(packet::PacketPtr pkt) {
  util::ScopedRole driver(driver_role_);
  Shard& s = shard_for(*pkt);
  enqueue(s, Cmd{std::move(pkt), Cmd::Kind::kControl});
}

void ShardedEncoderGateway::submit_reverse(packet::PacketPtr pkt) {
  util::ScopedRole driver(driver_role_);
  Shard& s = shard_for(*pkt);
  enqueue(s, Cmd{std::move(pkt), Cmd::Kind::kReverse});
}

std::size_t ShardedEncoderGateway::drain() {
  util::ScopedRole driver(driver_role_);
  return drain_some();
}

std::size_t ShardedEncoderGateway::drain_some() {
  std::size_t delivered = 0;
  std::array<packet::PacketPtr, kWorkerBurst> burst;
  for (auto& s : shards_) {
    // The driver is the one consumer of every shard's output ring.
    util::ScopedRole consumer(s->out.consumer_role);
    std::size_t n;
    while ((n = s->out.pop_burst(burst.data(), burst.size())) > 0) {
      delivered += n;
      for (std::size_t i = 0; i < n; ++i) {
        if (sink_) sink_(std::move(burst[i]));
        burst[i].reset();
      }
    }
  }
  return delivered;
}

void ShardedEncoderGateway::drain_until_idle() {
  util::ScopedRole driver(driver_role_);
  util::Backoff backoff;
  for (;;) {
    if (drain_some() > 0) backoff.reset();
    bool idle = true;
    for (auto& s : shards_) {
      // Acquire on `completed` orders the check after the worker's last
      // output push, so the final drain below observes everything.
      if (s->completed.load(std::memory_order_acquire) !=
          s->submitted.load(std::memory_order_relaxed)) {
        idle = false;
        break;
      }
    }
    if (idle) {
      drain_some();
      bool empty = true;
      for (auto& s : shards_) {
        if (!s->out.empty()) empty = false;
      }
      if (empty) return;
    }
    backoff.pause();
  }
}

EncoderGatewayStats ShardedEncoderGateway::stats() const {
  EncoderGatewayStats total;
  for (const auto& s : shards_) {
    merge_into(total, s->gw.stats());
  }
  return total;
}

core::EncoderStats ShardedEncoderGateway::encoder_stats() const {
  core::EncoderStats total;
  for (const auto& s : shards_) {
    if (s->gw.encoder() != nullptr) {
      core::merge_into(total, s->gw.encoder()->stats());
    }
  }
  return total;
}

cache::CacheStats ShardedEncoderGateway::cache_stats() const {
  cache::CacheStats total;
  for (const auto& s : shards_) {
    if (s->gw.encoder() != nullptr) {
      cache::merge_into(total, s->gw.encoder()->cache().stats());
    }
  }
  return total;
}

void ShardedEncoderGateway::audit() const {
  if (!util::kAuditEnabled) return;
  std::uint64_t packets = 0;
  for (const auto& s : shards_) {
    s->in.audit();
    s->out.audit();
    if (s->gw.encoder() != nullptr) s->gw.encoder()->audit();
    const std::uint64_t submitted =
        s->submitted.load(std::memory_order_acquire);
    const std::uint64_t completed =
        s->completed.load(std::memory_order_acquire);
    BC_AUDIT(completed <= submitted)
        << "shard completed " << completed << " of " << submitted
        << " submitted commands";
    packets += s->gw.stats().packets;
  }
  const EncoderGatewayStats total = stats();
  BC_AUDIT(total.packets == packets)
      << "aggregated packet count " << total.packets
      << " disagrees with per-shard sum " << packets;
}

// --------------------------------------------------------------- decoder --

ShardedDecoderGateway::ShardedDecoderGateway(const core::GatewayConfig& cfg)
    : threaded_(cfg.threaded) {
  BC_CHECK(cfg.shards >= 1) << "a sharded gateway needs at least 1 shard";
  // See ShardedEncoderGateway: shards attach to this registry, not the
  // parent's, to avoid double counting.
  core::GatewayConfig shard_cfg = cfg;
  shard_cfg.metrics = nullptr;
  if (cfg.span_sample_every > 0) {
    stall_hist_ = &metrics_.histogram("gateway.decoder.ring_stall_ns");
  }
  // One L2 store spans the gateway; each shard's codec claims a stripe.
  if (cfg.decoder_enabled() && cfg.cache.has_l2()) {
    l2_ = std::make_unique<cache::L2Store>(cfg.cache, cfg.shards);
  }
  shards_.reserve(cfg.shards);
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_cfg, l2_.get()));
    Shard& s = *shards_.back();
    metrics_.add_provider([&s] { return s.gw.snapshot(); });
    s.gw.set_sink([this, &s, i](packet::PacketPtr pkt) {
      if (worker_sink_) {
        worker_sink_(i, std::move(pkt));
      } else if (threaded_) {
        push_or_abort(s.out, std::move(pkt), s.abort);
      } else if (sink_) {
        sink_(std::move(pkt));
      }
    });
    s.gw.set_feedback([this, &s](packet::PacketPtr pkt) {
      if (threaded_) {
        push_or_abort(s.feedback, std::move(pkt), s.abort);
      } else if (feedback_) {
        feedback_(std::move(pkt));
      }
    });
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->add_provider([this] { return snapshot(); });
  }
  if (threaded_) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard* s = shards_[i].get();
      s->thread = std::thread([this, s] { run_worker(*s); });
    }
  }
}

ShardedDecoderGateway::~ShardedDecoderGateway() {
  for (auto& s : shards_) {
    s->abort.store(true, std::memory_order_release);
    s->stop.store(true, std::memory_order_release);
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void ShardedDecoderGateway::set_worker_sink(ShardPacketSink sink) {
  worker_sink_ = std::move(sink);
}

void ShardedDecoderGateway::run_worker(Shard& s) {
  // See ShardedEncoderGateway::run_worker: this thread owns the input
  // ring's consumer end; output/feedback producer ends are claimed in
  // push_or_abort.  The input ring holds bare packets, so every burst
  // goes straight through the gateway's prefetched loop.
  util::ScopedRole consumer(s.in.consumer_role);
  util::Backoff backoff;
  std::array<packet::PacketPtr, kWorkerBurst> burst;
  for (;;) {
    std::size_t n = s.in.pop_burst(burst.data(), burst.size());
    if (n == 0 && s.stop.load(std::memory_order_acquire)) {
      n = s.in.pop_burst(burst.data(), burst.size());
      if (n == 0) break;
    }
    if (n > 0) {
      backoff.reset();
      s.gw.receive_burst({burst.data(), n});
      s.completed.fetch_add(n, std::memory_order_release);
      continue;
    }
    backoff.pause();
  }
}

void ShardedDecoderGateway::enqueue(Shard& s, packet::PacketPtr pkt) {
  if (!threaded_) {
    s.submitted.fetch_add(1, std::memory_order_relaxed);
    s.gw.receive(std::move(pkt));
    s.completed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  util::ScopedRole producer(s.in.producer_role);
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  if (s.in.try_push(pkt)) return;
  // Slow path only: see ShardedEncoderGateway::enqueue.
  const bool timed = stall_hist_ != nullptr;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  util::Backoff backoff;
  do {
    if (drain_some() == 0) backoff.pause();
  } while (!s.in.try_push(pkt));
  if (timed) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    stall_hist_->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }
}

void ShardedDecoderGateway::submit(packet::PacketPtr pkt) {
  util::ScopedRole driver(driver_role_);
  Shard& s = *shards_[shard_index_of(shard_key_of(*pkt), shards_.size())];
  enqueue(s, std::move(pkt));
}

bool ShardedDecoderGateway::try_submit(packet::PacketPtr& pkt) {
  util::ScopedRole driver(driver_role_);
  Shard& s = *shards_[shard_index_of(shard_key_of(*pkt), shards_.size())];
  if (!threaded_) {
    enqueue(s, std::move(pkt));
    return true;
  }
  util::ScopedRole producer(s.in.producer_role);
  if (s.in.try_push(pkt)) {
    s.submitted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ShardedDecoderGateway::submit_to_shard(std::size_t i,
                                            packet::PacketPtr pkt) {
  // Deliberately NOT driver-scoped: each shard index is fed by its own
  // owning thread (e.g. the matching encoder shard's worker), which is by
  // contract the one producer of this shard's input ring.
  Shard& s = *shards_[i];
  if (!threaded_) {
    // Inline decode on the calling thread — the caller owns shard i's
    // threading (e.g. the matching encoder shard's worker).
    s.submitted.fetch_add(1, std::memory_order_relaxed);
    s.gw.receive(std::move(pkt));
    s.completed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  util::ScopedRole producer(s.in.producer_role);
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  util::Backoff backoff;
  while (!s.in.try_push(pkt)) {
    if (s.abort.load(std::memory_order_acquire)) return;
    backoff.pause();
  }
}

std::size_t ShardedDecoderGateway::drain() {
  util::ScopedRole driver(driver_role_);
  return drain_some();
}

std::size_t ShardedDecoderGateway::drain_some() {
  std::size_t delivered = 0;
  std::array<packet::PacketPtr, kWorkerBurst> burst;
  for (auto& s : shards_) {
    util::ScopedRole out_consumer(s->out.consumer_role);
    std::size_t n;
    while ((n = s->out.pop_burst(burst.data(), burst.size())) > 0) {
      delivered += n;
      for (std::size_t i = 0; i < n; ++i) {
        if (sink_) sink_(std::move(burst[i]));
        burst[i].reset();
      }
    }
    util::ScopedRole feedback_consumer(s->feedback.consumer_role);
    while ((n = s->feedback.pop_burst(burst.data(), burst.size())) > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (feedback_) feedback_(std::move(burst[i]));
        burst[i].reset();
      }
    }
  }
  return delivered;
}

void ShardedDecoderGateway::drain_until_idle() {
  util::ScopedRole driver(driver_role_);
  util::Backoff backoff;
  for (;;) {
    if (drain_some() > 0) backoff.reset();
    bool idle = true;
    for (auto& s : shards_) {
      if (s->completed.load(std::memory_order_acquire) !=
          s->submitted.load(std::memory_order_relaxed)) {
        idle = false;
        break;
      }
    }
    if (idle) {
      drain_some();
      bool empty = true;
      for (auto& s : shards_) {
        if (!s->out.empty() || !s->feedback.empty()) empty = false;
      }
      if (empty) return;
    }
    backoff.pause();
  }
}

DecoderGatewayStats ShardedDecoderGateway::stats() const {
  DecoderGatewayStats total;
  for (const auto& s : shards_) {
    merge_into(total, s->gw.stats());
  }
  return total;
}

core::DecoderStats ShardedDecoderGateway::decoder_stats() const {
  core::DecoderStats total;
  for (const auto& s : shards_) {
    if (s->gw.decoder() != nullptr) {
      core::merge_into(total, s->gw.decoder()->stats());
    }
  }
  return total;
}

cache::CacheStats ShardedDecoderGateway::cache_stats() const {
  cache::CacheStats total;
  for (const auto& s : shards_) {
    if (s->gw.decoder() != nullptr) {
      cache::merge_into(total, s->gw.decoder()->cache().stats());
    }
  }
  return total;
}

void ShardedDecoderGateway::audit() const {
  if (!util::kAuditEnabled) return;
  std::uint64_t packets = 0;
  for (const auto& s : shards_) {
    s->in.audit();
    s->out.audit();
    s->feedback.audit();
    if (s->gw.decoder() != nullptr) s->gw.decoder()->audit();
    const std::uint64_t submitted =
        s->submitted.load(std::memory_order_acquire);
    const std::uint64_t completed =
        s->completed.load(std::memory_order_acquire);
    BC_AUDIT(completed <= submitted)
        << "shard completed " << completed << " of " << submitted
        << " submitted packets";
    packets += s->gw.stats().packets;
  }
  const DecoderGatewayStats total = stats();
  BC_AUDIT(total.packets == packets)
      << "aggregated packet count " << total.packets
      << " disagrees with per-shard sum " << packets;
}

}  // namespace bytecache::gateway
