// Byte-caching gateways: the encoder/decoder as pipeline stages.
//
// The paper deploys the encoder at (or near) the server and the decoder at
// the client side of the resource-constrained segment (Fig. 3).  These
// wrappers adapt core::Encoder / core::Decoder to the packet-flow
// interface: receive a packet, transform it, hand it to the next stage —
// dropping undecodable packets at the decoder.
//
// Each gateway owns a shard-local obs::MetricsRegistry assembled at
// construction (DESIGN.md §10): every field of its own stats struct, of
// the codec's stats, and of the cache's stats is a linked counter; cache
// occupancy and resilience state are probes; per-packet encode/decode
// latency is a sampled span histogram.  snapshot() is therefore the
// single read surface for everything the gateway knows, and a parent
// registry passed via core::GatewayConfig::metrics sees this gateway as
// one provider.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "core/control.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/factory.h"
#include "fec/decoder.h"
#include "obs/fields.h"
#include "obs/span.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace bytecache::core {
class ResilientPolicy;
}  // namespace bytecache::core

namespace bytecache::gateway {

using PacketSink = std::function<void(packet::PacketPtr)>;

/// Dependency bookkeeping shared by the experiment harness.
struct EncoderGatewayStats {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes_out = 0;  // IP header + payload after encoding
  std::uint64_t channel_drops_seen = 0;  // link drop reports received
  std::uint64_t loss_reports = 0;        // kLossReport messages received
  std::uint64_t repair_packets_out = 0;  // coded-repair packets injected
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const EncoderGatewayStats*) {
  using S = EncoderGatewayStats;
  return obs::field_table<S>(
      obs::Field<S>{"packets", &S::packets},
      obs::Field<S>{"wire_bytes_out", &S::wire_bytes_out},
      obs::Field<S>{"channel_drops_seen", &S::channel_drops_seen},
      obs::Field<S>{"loss_reports", &S::loss_reports},
      obs::Field<S>{"repair_packets_out", &S::repair_packets_out});
}

/// Generic aggregation across the per-shard gateways of a sharded
/// gateway (gateway/sharded_gateways.h).
using obs::merge_into;
using obs::reset;

class EncoderGateway {
 public:
  /// `cfg.policy == kNone` builds a transparent gateway (no DRE, for
  /// baselines).  The shard/ring fields of `cfg` are ignored here.
  /// `shared_l2` is a gateway-spanning L2 store (sharded gateways pass
  /// one per side; not owned, must outlive this gateway); when null and
  /// cfg.cache.has_l2(), the gateway creates its own single-stripe store.
  explicit EncoderGateway(const core::GatewayConfig& cfg,
                          cache::L2Store* shared_l2 = nullptr);

  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Encodes (possibly in place) and forwards.
  void receive(packet::PacketPtr pkt);

  /// Burst form: consumes and processes every (non-null) packet of
  /// `pkts` in order, exactly as a receive() loop would — same codec
  /// sequence, same sink calls, same stats — while prefetching the next
  /// packet's payload head so back-to-back encodes overlap their
  /// first-touch misses.  The sharded workers drain their input rings
  /// into this (gateway/sharded_gateways.cc).
  void receive_burst(std::span<packet::PacketPtr> pkts);

  /// Called with the EncodeInfo of every processed packet (optional).
  void set_observer(std::function<void(const core::EncodeInfo&)> fn) {
    observer_ = std::move(fn);
  }

  /// Optional event trace with its clock (neither owned; may be null).
  void set_trace(sim::Trace* trace, const sim::Simulator* sim) {
    trace_ = trace;
    sim_ = sim;
  }

  /// Feeds a reverse-direction DRE control packet (NACK, resync request,
  /// or loss report — dispatched by core::ControlMessage::Type).
  void receive_control(const packet::Packet& pkt);

  /// Observes a reverse-direction data/ACK packet (ACK-gated mode reads
  /// the cumulative acknowledgment from it).
  void observe_reverse(const packet::Packet& pkt);

  /// Closes the open coded-repair generation (params.coded_repair) and
  /// injects its repair packets, so tail members get protection without
  /// waiting for G more packets — call at transfer end / idle.  No-op
  /// before the first forwarded packet (repairs inherit its addressing).
  void flush_repairs();

  /// The simulated link dropped `pkt` (loss or queue overflow).  A real
  /// deployment learns this from transport-level signals; the simulation
  /// reports it directly.  Feeds the resilient policy's perceived-loss
  /// estimator as a *channel* loss sample.
  void on_channel_drop(const packet::Packet& pkt);

  /// Runtime policy switch (the control channel's kSwitchPolicy,
  /// DESIGN.md §12.3): rebuilds the policy via core::make_policy with
  /// the params this gateway was constructed with, flushing the cache
  /// first (Encoder::set_policy).  False — and no change — for kNone,
  /// for a disabled gateway, and for policies the running DreParams
  /// cannot support.  Refreshes the resilient-policy view, so the
  /// loss-feedback paths follow the switch.
  bool switch_policy(core::PolicyKind kind);

  [[nodiscard]] bool enabled() const { return encoder_ != nullptr; }
  [[nodiscard]] const core::Encoder* encoder() const { return encoder_.get(); }
  [[nodiscard]] core::Encoder* encoder() { return encoder_.get(); }
  [[nodiscard]] const EncoderGatewayStats& stats() const { return stats_; }

  /// Everything this gateway knows, as one value set: gateway.encoder.*,
  /// encoder.*, encoder.cache.*, and (resilient policy) resilience.*.
  [[nodiscard]] obs::Snapshot snapshot() const { return metrics_.snapshot(); }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// The policy as a ResilientPolicy, or null for every other kind.
  [[nodiscard]] const core::ResilientPolicy* resilient() const {
    return resilient_;
  }

 private:
  void process_received(packet::PacketPtr pkt);
  void emit_repairs(std::span<const util::Bytes> repairs);

  // Declared before the encoder: the codec's stripe must outlive it.
  std::unique_ptr<cache::L2Store> own_l2_;  // null when external/absent
  std::unique_ptr<core::Encoder> encoder_;  // null when disabled
  PacketSink sink_;
  std::function<void(const core::EncodeInfo&)> observer_;
  sim::Trace* trace_ = nullptr;
  const sim::Simulator* sim_ = nullptr;
  EncoderGatewayStats stats_;
  obs::MetricsRegistry metrics_;
  obs::SpanSampler encode_span_;  // -> "gateway.encoder.encode_ns"
  // Borrowed view of encoder_'s policy when it is the resilient one —
  // the loss-feedback paths are meaningless for every other policy.
  core::ResilientPolicy* resilient_ = nullptr;
  // Addressing for injected repair packets: the host pair of the last
  // forwarded data packet (repairs follow the stream they protect).
  std::uint32_t repair_src_ = 0;
  std::uint32_t repair_dst_ = 0;
  bool repair_addr_known_ = false;
};

struct DecoderGatewayStats {
  std::uint64_t packets = 0;
  std::uint64_t dropped = 0;  // undecodable (perceived loss at the client)
  std::uint64_t nacks_sent = 0;
  std::uint64_t loss_reports_sent = 0;  // kLossReport control messages
  std::uint64_t resyncs_sent = 0;       // kResyncRequest control messages
};

/// Telemetry field table (see EncoderGatewayStats above).
[[nodiscard]] constexpr auto stats_fields(const DecoderGatewayStats*) {
  using S = DecoderGatewayStats;
  return obs::field_table<S>(
      obs::Field<S>{"packets", &S::packets},
      obs::Field<S>{"dropped", &S::dropped},
      obs::Field<S>{"nacks_sent", &S::nacks_sent},
      obs::Field<S>{"loss_reports_sent", &S::loss_reports_sent},
      obs::Field<S>{"resyncs_sent", &S::resyncs_sent});
}

class DecoderGateway {
 public:
  /// `cfg.decoder_enabled() == false` builds a transparent gateway.
  /// `shared_l2` mirrors EncoderGateway's: a store shared across this
  /// side's shards, or null to self-provision when cfg.cache.has_l2().
  explicit DecoderGateway(const core::GatewayConfig& cfg,
                          cache::L2Store* shared_l2 = nullptr);

  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Optional event trace with its clock (neither owned; may be null).
  void set_trace(sim::Trace* trace, const sim::Simulator* sim) {
    trace_ = trace;
    sim_ = sim;
  }

  /// Reverse-path sink for control packets.  What is sent over it is
  /// governed by the params the gateway was built with: NACKs when
  /// nack_feedback, loss reports and resync requests when epoch_resync.
  void set_feedback(PacketSink feedback) { feedback_ = std::move(feedback); }

  /// Decodes and forwards; drops undecodable packets (sending the
  /// configured control feedback on the reverse path).
  void receive(packet::PacketPtr pkt);

  /// Burst form (see EncoderGateway::receive_burst): consumes and
  /// processes every non-null packet of `pkts` in order with next-packet
  /// payload prefetch, observably identical to a receive() loop.
  void receive_burst(std::span<packet::PacketPtr> pkts);

  /// Releases everything the coded-repair reorder cache still holds
  /// (params.coded_repair), oldest generation first — teardown / idle,
  /// so tail packets are not stranded waiting for a generation to fill.
  void drain_repair_buffer();

  /// Data packets currently held by the coded-repair reorder cache.
  [[nodiscard]] std::size_t repair_buffered() const {
    return repair_ == nullptr ? 0 : repair_->buffered();
  }

  [[nodiscard]] bool enabled() const { return decoder_ != nullptr; }
  [[nodiscard]] const core::Decoder* decoder() const { return decoder_.get(); }
  [[nodiscard]] core::Decoder* decoder() { return decoder_.get(); }
  [[nodiscard]] const DecoderGatewayStats& stats() const { return stats_; }

  /// Everything this gateway knows: gateway.decoder.*, decoder.*,
  /// decoder.cache.*.  An open undecodable run is flushed into the run
  /// histogram first (a snapshot is an episode boundary).
  [[nodiscard]] obs::Snapshot snapshot() const;
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  void process_received(packet::PacketPtr pkt);
  void deliver(packet::PacketPtr pkt);
  void deliver_released();
  void send_control(const packet::Packet& cause,
                    const core::ControlMessage& msg, sim::TraceEvent event,
                    std::uint64_t uid);

  // Declared before the decoder: the codec's stripe must outlive it.
  std::unique_ptr<cache::L2Store> own_l2_;  // null when external/absent
  std::unique_ptr<core::Decoder> decoder_;
  PacketSink sink_;
  PacketSink feedback_;
  sim::Trace* trace_ = nullptr;
  const sim::Simulator* sim_ = nullptr;
  DecoderGatewayStats stats_;
  obs::MetricsRegistry metrics_;
  obs::SpanSampler decode_span_;  // -> "gateway.decoder.decode_ns"
  // Length of the current run of consecutive undecodable drops; flushed
  // into "gateway.decoder.undecodable_run" when a packet gets through —
  // the per-episode severity of a cache desync (resync episodes).
  obs::Histogram* run_hist_ = nullptr;
  mutable std::uint64_t drop_run_ = 0;  // snapshot() flushes an open run
  bool nack_feedback_ = false;     // params.nack_feedback
  bool resilience_feedback_ = false;  // params.epoch_resync
  // Coded-repair front end (params.coded_repair): re-sequences v3-tagged
  // arrivals and reconstructs losses before the core decoder sees them.
  std::unique_ptr<fec::RepairDecoder> repair_;  // null when off
  std::vector<fec::RepairDecoder::Released> fec_out_;  // release scratch
};

}  // namespace bytecache::gateway
