// Multiple TCP connections through one byte-caching gateway pair.
//
// The paper notes (Section IV-C) that a cache desynchronization affects
// "not only one TCP connection, but all subsequent connections going
// through the encoder and decoder", and its introduction credits byte
// caching with eliminating redundancy "both intra-flow and inter-flows".
// MultiPipeline shares a single encoder gateway, decoder gateway and link
// pair among N client-server connections, demultiplexing by TCP port:
//
//   sender[i] --\                                   /--> receiver[i]
//   sender[j] ---> EncoderGw -> lossy Link -> DecoderGw --> receiver[j]
//        ^                                                     |
//        +----------------- reverse Link <-- ACKs -------------+
#pragma once

#include <memory>
#include <vector>

#include "gateway/pipeline.h"

namespace bytecache::gateway {

class MultiPipeline {
 public:
  /// Builds `flows` connections sharing one gateway pair.  Flow i uses
  /// destination port base_port + i on the same server/client addresses.
  MultiPipeline(sim::Simulator& sim, const PipelineConfig& config,
                std::size_t flows, std::uint16_t base_port = 40000);
  ~MultiPipeline();

  /// Runs every component's deep invariant audit (see util/check.h); the
  /// simulator calls this on the configured event cadence.
  void audit() const;

  [[nodiscard]] std::size_t flow_count() const { return senders_.size(); }
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return *senders_[i]; }
  [[nodiscard]] tcp::TcpReceiver& receiver(std::size_t i) {
    return *receivers_[i];
  }
  [[nodiscard]] EncoderGateway& encoder_gw() { return *encoder_gw_; }
  [[nodiscard]] DecoderGateway& decoder_gw() { return *decoder_gw_; }
  [[nodiscard]] sim::Link& forward_link() { return *forward_link_; }
  [[nodiscard]] sim::Link& reverse_link() { return *reverse_link_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  /// Shared-topology registry: both gateways as providers, links as
  /// linked counters, and every flow's TCP endpoints under
  /// "tcp.sender.*" / "tcp.receiver.*" (counters add across flows).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] obs::Snapshot snapshot() const { return metrics_.snapshot(); }

 private:
  /// Flow index for a packet by its TCP destination port (forward
  /// direction) / source port (reverse); nullopt if out of range.
  [[nodiscard]] std::optional<std::size_t> flow_of(const packet::Packet& pkt,
                                                   bool forward) const;

  PipelineConfig config_;
  std::uint16_t base_port_;
  sim::Simulator* sim_ = nullptr;
  sim::Simulator::AuditorId auditor_id_ = 0;
  obs::MetricsRegistry metrics_;  // must outlive the components below
  std::unique_ptr<EncoderGateway> encoder_gw_;
  std::unique_ptr<DecoderGateway> decoder_gw_;
  std::unique_ptr<sim::Link> forward_link_;
  std::unique_ptr<sim::Link> reverse_link_;
  std::vector<std::unique_ptr<tcp::TcpSender>> senders_;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers_;
};

}  // namespace bytecache::gateway
