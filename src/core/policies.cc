#include "core/policies.h"

#include <algorithm>
#include <cmath>

#include "util/seqcmp.h"

namespace bytecache::core {
namespace {

/// A data segment whose sequence number does not advance past the
/// previous outgoing data segment *of the same flow* is a retransmission
/// (new data always advances).  Updates the per-flow tracker.
bool observe_retransmission(
    const PacketContext& ctx,
    std::unordered_map<std::uint64_t, std::uint32_t>& last_seq) {
  if (!ctx.tcp_seq) return false;
  auto it = last_seq.find(ctx.flow_key);
  const bool retx =
      it != last_seq.end() && !util::seq_gt(*ctx.tcp_seq, it->second);
  // Track the *previous* outgoing seq (not the maximum): during go-back-N
  // recovery the resend sequence itself is monotone, and only the jump
  // back that starts it should register as a retransmission.
  last_seq[ctx.flow_key] = *ctx.tcp_seq;
  return retx;
}

}  // namespace

// ---------------------------------------------------------------- Naive --

PolicyDecision NaivePolicy::before_encode(const PacketContext&) {
  return PolicyDecision{};
}

bool NaivePolicy::admit(const PacketContext&, const cache::PacketMeta&) const {
  return true;
}

// ----------------------------------------------------------- CacheFlush --

PolicyDecision CacheFlushPolicy::before_encode(const PacketContext& ctx) {
  PolicyDecision d;
  if (observe_retransmission(ctx, last_seq_)) {
    d.flush_cache = true;
    d.is_retransmission = true;
  }
  return d;
}

bool CacheFlushPolicy::admit(const PacketContext&,
                             const cache::PacketMeta&) const {
  // The flush itself provides the guarantee; anything still cached is safe.
  return true;
}

// --------------------------------------------------------------- TcpSeq --

PolicyDecision TcpSeqPolicy::before_encode(const PacketContext& ctx) {
  PolicyDecision d;
  d.is_retransmission = observe_retransmission(ctx, last_seq_);
  return d;
}

bool TcpSeqPolicy::admit(const PacketContext& ctx,
                         const cache::PacketMeta& stored) const {
  // Non-TCP traffic has no ordering oracle: never encode.
  if (!ctx.tcp_seq || !stored.has_tcp_seq) return false;
  // Sequence numbers of *different* connections are incomparable, and a
  // segment can only be "a succeeding segment or itself" within its own
  // flow — cross-flow references are admissible (that is the inter-flow
  // redundancy byte caching exists for).
  if (stored.flow_key != ctx.flow_key) return true;
  // Paper Fig. 7 line B.7: encode only against a strictly preceding
  // segment of the same flow.
  return util::seq_lt(stored.tcp_seq, *ctx.tcp_seq);
}

// ------------------------------------------------------------ KDistance --

KDistancePolicy::KDistancePolicy(std::size_t k) : k_(k) {}

PolicyDecision KDistancePolicy::before_encode(const PacketContext& ctx) {
  PolicyDecision d;
  if (k_ <= 1 || !sent_any_ || since_reference_ + 1 >= k_) {
    // This packet is a reference: sent unencoded.
    d.allow_encode = false;
    d.is_reference = true;
    last_reference_index_ = ctx.stream_index;
    since_reference_ = 0;
    sent_any_ = true;
  } else {
    ++since_reference_;
  }
  return d;
}

bool KDistancePolicy::admit(const PacketContext& ctx,
                            const cache::PacketMeta& stored) const {
  // Only the latest reference and packets after it (paper Fig. 9).
  if (stored.stream_index < last_reference_index_) return false;
  // For TCP traffic, additionally never encode against the segment itself
  // or a succeeding one of the same flow: a timeout-retransmitted segment
  // always matches its own cached earlier copy, and if that copy was lost
  // every retransmission until the next reference would be undecodable —
  // an RTO backoff ladder the paper's measured k-distance results clearly
  // do not exhibit.  (UDP has no retransmissions, so pure k-distance
  // applies.)
  if (ctx.tcp_seq && stored.has_tcp_seq && stored.flow_key == ctx.flow_key &&
      !util::seq_lt(stored.tcp_seq, *ctx.tcp_seq)) {
    return false;
  }
  return true;
}

// ------------------------------------------------------------- Adaptive --

AdaptivePolicy::AdaptivePolicy(const DreParams& params)
    : inner_(params.adaptive_k_max),
      alpha_(params.adaptive_alpha),
      k_min_(params.adaptive_k_min),
      k_max_(params.adaptive_k_max) {}

PolicyDecision AdaptivePolicy::before_encode(const PacketContext& ctx) {
  const bool retx = observe_retransmission(ctx, last_seq_);
  loss_estimate_ = (1.0 - alpha_) * loss_estimate_ + alpha_ * (retx ? 1.0 : 0.0);

  // k ~= 1/(2 * p): about half an expected channel loss per reference
  // interval; with no observed loss, compress as aggressively as allowed.
  std::size_t k = k_max_;
  if (loss_estimate_ > 1e-9) {
    k = static_cast<std::size_t>(std::lround(1.0 / (2.0 * loss_estimate_)));
    k = std::clamp(k, k_min_, k_max_);
  }
  inner_.set_k(k);

  PolicyDecision d = inner_.before_encode(ctx);
  d.is_retransmission = retx;
  return d;
}

bool AdaptivePolicy::admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const {
  return inner_.admit(ctx, stored);
}

// ------------------------------------------------------------ Resilient --

ResilientPolicy::ResilientPolicy(const DreParams& params)
    : estimator_config_(params.loss_estimator),
      degradation_config_(params.degradation),
      estimator_(params.loss_estimator),
      k_distance_(params.k_distance) {
  // A coded rung only exists when the wire can carry repairs a decoder
  // will use; otherwise the ladder is the historical four-level one.
  degradation_config_.coded_rung &= params.coded_repair;
}

resilience::DegradationController& ResilientPolicy::controller_for(
    std::uint64_t host_key) {
  // The returned reference is stable only until the next put() (the flat
  // map may rehash); before_encode consumes it immediately.
  if (resilience::DegradationController* c = controllers_.find(host_key)) {
    return *c;
  }
  controllers_.put(host_key,
                   resilience::DegradationController(degradation_config_));
  return *controllers_.find(host_key);
}

PolicyDecision ResilientPolicy::before_encode(const PacketContext& ctx) {
  estimator_.on_offered(ctx.host_key);
  current_ =
      controller_for(ctx.host_key).on_sample(estimator_.loss(ctx.host_key));
  switch (current_) {
    case resilience::DegradationLevel::kKDistance: {
      PolicyDecision d = k_distance_.before_encode(ctx);
      d.coded_repair = false;
      return d;
    }
    case resilience::DegradationLevel::kTcpSeq: {
      PolicyDecision d = tcp_seq_.before_encode(ctx);
      d.coded_repair = false;
      return d;
    }
    case resilience::DegradationLevel::kCodedRepair: {
      // TCP-seq encoding rules plus FEC over the encoded stream: the
      // encoder tags packets into generations and emits repairs, the
      // decoder reconstructs losses instead of resyncing.
      PolicyDecision d = tcp_seq_.before_encode(ctx);
      d.coded_repair = true;
      return d;
    }
    case resilience::DegradationLevel::kCacheFlush: {
      PolicyDecision d = cache_flush_.before_encode(ctx);
      d.coded_repair = false;
      return d;
    }
    case resilience::DegradationLevel::kPassthrough:
      break;
  }
  // Pass-through: the packet is sent unencoded (it still enters the
  // cache, keeping both ends warm for the upgrade back).
  PolicyDecision d;
  d.allow_encode = false;
  d.coded_repair = false;
  return d;
}

bool ResilientPolicy::admit(const PacketContext& ctx,
                            const cache::PacketMeta& stored) const {
  switch (current_) {
    case resilience::DegradationLevel::kKDistance:
      return k_distance_.admit(ctx, stored);
    case resilience::DegradationLevel::kTcpSeq:
    case resilience::DegradationLevel::kCodedRepair:
      return tcp_seq_.admit(ctx, stored);
    case resilience::DegradationLevel::kCacheFlush:
      return cache_flush_.admit(ctx, stored);
    case resilience::DegradationLevel::kPassthrough:
      break;
  }
  return false;  // pass-through never encodes
}

resilience::DegradationLevel ResilientPolicy::level_of(
    std::uint64_t host_key) const {
  const resilience::DegradationController* c = controllers_.find(host_key);
  return c == nullptr ? resilience::DegradationLevel::kKDistance
                      : c->level();
}

resilience::DegradationLevel ResilientPolicy::worst_level() const {
  auto worst = resilience::DegradationLevel::kKDistance;
  controllers_.for_each(
      [&](std::uint64_t, const resilience::DegradationController& c) {
        if (c.level() > worst) worst = c.level();
      });
  return worst;
}

std::uint64_t ResilientPolicy::transitions() const {
  std::uint64_t total = 0;
  controllers_.for_each(
      [&](std::uint64_t, const resilience::DegradationController& c) {
        total += c.transitions();
      });
  return total;
}

}  // namespace bytecache::core
