// An encoding field: the wire representation of one eliminated region.
//
// Exactly the paper's layout (Section III-B): "An encoding field consists
// of a Rabin fingerprint (8 bytes), the offset in Pnew (2 bytes), the
// offset in Pstored (2 bytes) and the length len (2 bytes)" — 14 bytes,
// which is why a region is only encoded when len > 14.
#pragma once

#include <cstdint>

#include "rabin/rabin.h"

namespace bytecache::core {

struct EncodedRegion {
  static constexpr std::size_t kWireBytes = 14;

  rabin::Fingerprint fp = 0;      // identifies the stored packet
  std::uint16_t offset_new = 0;   // start of the region in Pnew
  std::uint16_t offset_stored = 0;  // start of the region in Pstored
  std::uint16_t length = 0;       // bytes eliminated

  friend bool operator==(const EncodedRegion&, const EncodedRegion&) = default;
};

}  // namespace bytecache::core
