#include "core/wire.h"

namespace bytecache::core {

util::Bytes EncodedPayload::serialize() const {
  util::Bytes out;
  out.reserve(wire_size());
  util::put_u8(out, kShimMagic);
  util::put_u8(out, orig_proto);
  util::put_u8(out, flags);
  util::put_u8(out, static_cast<std::uint8_t>(regions.size()));
  util::put_u16(out, epoch);
  util::put_u16(out, orig_len);
  util::put_u32(out, crc);
  for (const EncodedRegion& r : regions) {
    util::put_u64(out, r.fp);
    util::put_u16(out, r.offset_new);
    util::put_u16(out, r.offset_stored);
    util::put_u16(out, r.length);
  }
  util::append(out, literals);
  return out;
}

std::optional<EncodedPayload> EncodedPayload::parse(util::BytesView wire) {
  if (wire.size() < kShimBytes) return std::nullopt;
  std::size_t off = 0;
  if (util::get_u8(wire, off) != kShimMagic) return std::nullopt;
  EncodedPayload p;
  p.orig_proto = util::get_u8(wire, off);
  p.flags = util::get_u8(wire, off);
  const std::size_t count = util::get_u8(wire, off);
  p.epoch = util::get_u16(wire, off);
  p.orig_len = util::get_u16(wire, off);
  p.crc = util::get_u32(wire, off);
  if (wire.size() < kShimBytes + count * EncodedRegion::kWireBytes) {
    return std::nullopt;
  }
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  p.regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EncodedRegion r;
    r.fp = util::get_u64(wire, off);
    r.offset_new = util::get_u16(wire, off);
    r.offset_stored = util::get_u16(wire, off);
    r.length = util::get_u16(wire, off);
    // Regions must be non-overlapping, in order, and inside the original.
    if (r.length == 0) return std::nullopt;
    if (r.offset_new < prev_end) return std::nullopt;
    if (static_cast<std::size_t>(r.offset_new) + r.length > p.orig_len) {
      return std::nullopt;
    }
    prev_end = static_cast<std::size_t>(r.offset_new) + r.length;
    covered += r.length;
    p.regions.push_back(r);
  }
  const std::size_t literal_len = wire.size() - off;
  if (covered > p.orig_len || p.orig_len - covered != literal_len) {
    return std::nullopt;
  }
  p.literals.assign(wire.begin() + off, wire.end());
  return p;
}

}  // namespace bytecache::core
