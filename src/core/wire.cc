#include "core/wire.h"

namespace bytecache::core {

void EncodedPayload::serialize_into(util::Bytes& out) const {
  out.clear();
  out.reserve(wire_size());
  if (version >= kWireVersion2) {
    util::put_u8(out, kShimMagicV2);
    util::put_u8(out, version);
  } else {
    util::put_u8(out, kShimMagic);
  }
  util::put_u8(out, orig_proto);
  util::put_u8(out, flags);
  util::put_u8(out, static_cast<std::uint8_t>(regions.size()));
  util::put_u16(out, epoch);
  util::put_u16(out, orig_len);
  util::put_u32(out, crc);
  if (version >= kWireVersion3) {
    util::put_u16(out, gen_id);
    util::put_u8(out, gen_seq);
  }
  for (const EncodedRegion& r : regions) {
    util::put_u64(out, r.fp);
    util::put_u16(out, r.offset_new);
    util::put_u16(out, r.offset_stored);
    util::put_u16(out, r.length);
  }
  util::append(out, literals);
}

util::Bytes EncodedPayload::serialize() const {
  util::Bytes out;
  serialize_into(out);
  return out;
}

bool EncodedPayload::parse_into(util::BytesView wire, EncodedPayload& p) {
  if (wire.empty()) return false;
  std::size_t off = 0;
  const std::uint8_t magic = util::get_u8(wire, off);
  std::size_t shim_bytes = 0;
  if (magic == kShimMagic) {
    p.version = 1;
    shim_bytes = kShimBytes;
  } else if (magic == kShimMagicV2) {
    if (wire.size() < kShimBytesV2) return false;
    p.version = util::get_u8(wire, off);
    // Only versions this build speaks: a future v4 may relayout the
    // shim, so guessing at its fields would be worse than dropping.
    if (p.version != kWireVersion2 && p.version != kWireVersion3) {
      return false;
    }
    shim_bytes = p.version == kWireVersion3 ? kShimBytesV3 : kShimBytesV2;
  } else {
    return false;
  }
  if (wire.size() < shim_bytes) return false;
  p.orig_proto = util::get_u8(wire, off);
  p.flags = util::get_u8(wire, off);
  const std::size_t count = util::get_u8(wire, off);
  p.epoch = util::get_u16(wire, off);
  p.orig_len = util::get_u16(wire, off);
  p.crc = util::get_u32(wire, off);
  if (p.version >= kWireVersion3) {
    p.gen_id = util::get_u16(wire, off);
    p.gen_seq = util::get_u8(wire, off);
  } else {
    p.gen_id = 0;
    p.gen_seq = 0;
  }
  if (wire.size() < shim_bytes + count * EncodedRegion::kWireBytes) {
    return false;
  }
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  p.regions.clear();
  p.regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EncodedRegion r;
    r.fp = util::get_u64(wire, off);
    r.offset_new = util::get_u16(wire, off);
    r.offset_stored = util::get_u16(wire, off);
    r.length = util::get_u16(wire, off);
    // Regions must be non-overlapping, in order, and inside the original.
    if (r.length == 0) return false;
    if (r.offset_new < prev_end) return false;
    if (static_cast<std::size_t>(r.offset_new) + r.length > p.orig_len) {
      return false;
    }
    prev_end = static_cast<std::size_t>(r.offset_new) + r.length;
    covered += r.length;
    p.regions.push_back(r);
  }
  const std::size_t literal_len = wire.size() - off;
  if (covered > p.orig_len || p.orig_len - covered != literal_len) {
    return false;
  }
  p.literals.assign(wire.begin() + off, wire.end());
  return true;
}

std::optional<EncodedPayload> EncodedPayload::parse(util::BytesView wire) {
  EncodedPayload p;
  if (!parse_into(wire, p)) return std::nullopt;
  return p;
}

bool peek_gen_tag(util::BytesView payload, std::uint16_t& gen_id,
                  std::uint8_t& gen_seq) {
  if (payload.size() < kShimBytesV3) return false;
  if (payload[0] != kShimMagicV2 || payload[1] != kWireVersion3) {
    return false;
  }
  std::size_t off = kShimBytesV2;
  gen_id = util::get_u16(payload, off);
  gen_seq = util::get_u8(payload, off);
  return true;
}

}  // namespace bytecache::core
