#include "core/control.h"

namespace bytecache::core {

util::Bytes ControlMessage::serialize() const {
  util::Bytes out;
  out.reserve(3 + fingerprints.size() * 8);
  util::put_u8(out, kControlMagic);
  util::put_u8(out, static_cast<std::uint8_t>(type));
  util::put_u8(out, static_cast<std::uint8_t>(fingerprints.size()));
  for (rabin::Fingerprint fp : fingerprints) util::put_u64(out, fp);
  return out;
}

std::optional<ControlMessage> ControlMessage::parse(util::BytesView wire) {
  if (wire.size() < 3) return std::nullopt;
  std::size_t off = 0;
  if (util::get_u8(wire, off) != kControlMagic) return std::nullopt;
  ControlMessage msg;
  const std::uint8_t type = util::get_u8(wire, off);
  if (type != static_cast<std::uint8_t>(Type::kNack)) return std::nullopt;
  msg.type = Type::kNack;
  const std::size_t count = util::get_u8(wire, off);
  if (wire.size() != 3 + count * 8) return std::nullopt;
  msg.fingerprints.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    msg.fingerprints.push_back(util::get_u64(wire, off));
  }
  return msg;
}

}  // namespace bytecache::core
