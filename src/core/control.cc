#include "core/control.h"

namespace bytecache::core {

util::Bytes ControlMessage::serialize() const {
  util::Bytes out;
  util::put_u8(out, kControlMagic);
  util::put_u8(out, static_cast<std::uint8_t>(type));
  switch (type) {
    case Type::kNack:
      util::put_u8(out, static_cast<std::uint8_t>(fingerprints.size()));
      for (rabin::Fingerprint fp : fingerprints) util::put_u64(out, fp);
      break;
    case Type::kResyncRequest:
      util::put_u16(out, epoch);
      break;
    case Type::kLossReport:
      util::put_u64(out, host_key);
      util::put_u16(out, count);
      break;
  }
  return out;
}

std::optional<ControlMessage> ControlMessage::parse(util::BytesView wire) {
  if (wire.size() < 2) return std::nullopt;
  std::size_t off = 0;
  if (util::get_u8(wire, off) != kControlMagic) return std::nullopt;
  ControlMessage msg;
  switch (util::get_u8(wire, off)) {
    case static_cast<std::uint8_t>(Type::kNack): {
      msg.type = Type::kNack;
      if (wire.size() < 3) return std::nullopt;
      const std::size_t count = util::get_u8(wire, off);
      if (wire.size() != 3 + count * 8) return std::nullopt;
      msg.fingerprints.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        msg.fingerprints.push_back(util::get_u64(wire, off));
      }
      return msg;
    }
    case static_cast<std::uint8_t>(Type::kResyncRequest):
      msg.type = Type::kResyncRequest;
      if (wire.size() != 4) return std::nullopt;
      msg.epoch = util::get_u16(wire, off);
      return msg;
    case static_cast<std::uint8_t>(Type::kLossReport):
      msg.type = Type::kLossReport;
      if (wire.size() != 12) return std::nullopt;
      msg.host_key = util::get_u64(wire, off);
      msg.count = util::get_u16(wire, off);
      return msg;
    default:
      return std::nullopt;
  }
}

}  // namespace bytecache::core
