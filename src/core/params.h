// Tunable parameters of the DRE codec.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fec/params.h"
#include "rabin/polynomial.h"
#include "resilience/degradation.h"
#include "resilience/epoch_sync.h"
#include "resilience/perceived_loss.h"

namespace bytecache::core {

/// How anchor positions are chosen from the fingerprint stream.
enum class SelectMode {
  kValueSampling,  // last select_bits bits zero (paper / Spring-Wetherall)
  kMaxp,           // per-window fingerprint maximum (Anand et al.;
                   // gap-free coverage)
  kSampleByte,     // EndRE SAMPLEBYTE: first-byte lookup + skip;
                   // fingerprints computed only at anchors (fastest)
};

struct DreParams {
  /// Rabin window width w (paper Section III-B: w = 16).
  std::size_t window = 16;

  /// Anchor selection scheme (both gateways must agree).
  SelectMode select_mode = SelectMode::kValueSampling;

  /// Fingerprint selection: keep fingerprints whose last `select_bits`
  /// bits are zero (paper: k = 4, i.e. 1/16 of positions).
  unsigned select_bits = 4;

  /// MAXP window: an anchor is guaranteed in every run of maxp_p window
  /// positions; expected density 2/(maxp_p+1).  31 approximates the 1/16
  /// of the default value sampling.
  std::size_t maxp_p = 31;

  /// SAMPLEBYTE: 256/period byte values are anchors; `skip` bytes are
  /// skipped after each anchor (EndRE uses p/2).
  unsigned samplebyte_period = 16;
  std::size_t samplebyte_skip = 8;

  /// A repeated region is substituted only if its length exceeds this
  /// (paper Fig. 2 line B.8: len > 14, the size of one encoding field).
  std::size_t min_region = 14;

  /// Modulus for Rabin fingerprints (verified irreducible).
  std::uint64_t poly = rabin::kDefaultPoly;

  /// k-distance policy: a reference (unencoded) packet every k packets
  /// (paper Section V-C; Table II uses k = 8).
  std::size_t k_distance = 8;

  /// Adaptive policy: EWMA weight for the loss estimate and k bounds.
  double adaptive_alpha = 0.05;
  std::size_t adaptive_k_min = 2;
  std::size_t adaptive_k_max = 64;

  /// Decoder->encoder NACK feedback (paper Section VIII, first potential
  /// approach / informed marking): on an undecodable packet the decoder
  /// names the missing fingerprint and the encoder stops referencing the
  /// packet that owns it.  Composes with any policy.
  bool nack_feedback = false;

  /// Epoch-stamped cache resynchronization (DESIGN.md §9): encoded
  /// packets use the v2 shim carrying the encoder's flush epoch; the
  /// decoder enforces epochs (adopts the newest, drops stale packets and
  /// stale references) and requests a resync — an encoder flush, i.e. an
  /// epoch bump — over the control channel with bounded retry/backoff
  /// instead of stalling on an undecodable retransmission.  Off by
  /// default: the v1 wire format stays bit-identical.  Composes with any
  /// policy.  Both gateways must agree.
  bool epoch_resync = false;
  resilience::EpochSyncConfig epoch_sync;

  /// Resilient policy (PolicyKind::kResilient): perceived-loss EWMA and
  /// degradation-ladder thresholds.
  resilience::LossEstimatorConfig loss_estimator;
  resilience::DegradationConfig degradation;

  /// Coded repair (DESIGN.md §13): encoded packets use the v3 shim
  /// carrying a generation tag, the encoder emits GF(256) repair
  /// payloads per generation of wire packets, and the decoder gateway
  /// re-sequences reordered arrivals and reconstructs up to
  /// repair.repair_packets lost packets per generation without a resync
  /// round-trip.  Off by default: v1/v2 wire bytes stay bit-identical.
  /// Both gateways must agree.
  bool coded_repair = false;
  fec::RepairConfig repair;

  /// ACK-gated references (paper Section VIII, second potential
  /// approach): the encoder may only reference TCP segments already
  /// covered by the peer's cumulative ACK.  Such references are always
  /// resolvable (an ACKed segment passed the decoder, which cached it),
  /// at the cost of one RTT of reference lag.  Composes with any policy.
  bool ack_gated = false;
};

}  // namespace bytecache::core
