// Redundant-region verification and boundary expansion.
//
// A selected fingerprint that hits the cache only *suggests* a repeat —
// different strings can share a Rabin fingerprint (paper Section III-A),
// so the w bytes are compared first; the match is then grown byte-by-byte
// in both directions to the maximal repeated region ("DETERMINE boundaries
// and length len of repeated area surrounding w", Fig. 2 line B.7).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace bytecache::core {

/// A verified maximal match between the new payload and a stored payload.
struct Match {
  std::size_t new_begin = 0;
  std::size_t stored_begin = 0;
  std::size_t length = 0;
};

/// Verifies that `window` bytes starting at new_off / stored_off are equal
/// and expands left/right as far as both payloads agree.
///
/// `min_new_begin` bounds the left expansion in the new payload so regions
/// never overlap an already-emitted region (the encoder's pointer skip).
/// Returns nullopt if the windows differ (fingerprint collision).
[[nodiscard]] std::optional<Match> expand_match(
    util::BytesView pnew, std::size_t new_off, util::BytesView stored,
    std::size_t stored_off, std::size_t window, std::size_t min_new_begin);

}  // namespace bytecache::core
