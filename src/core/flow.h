// Flow identity: a mixed hash of the TCP 4-tuple.
//
// Used to key per-connection policy state (retransmission detection,
// sequence comparisons, ACK gating) inside the shared encoder.  The
// reverse direction of a connection maps to the forward key by swapping
// the endpoints before hashing.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace bytecache::core {

/// Key of the flow (src -> dst, sport -> dport).  Never returns 0
/// (reserved for "no flow").
[[nodiscard]] inline std::uint64_t flow_key_of(std::uint32_t src_ip,
                                               std::uint32_t dst_ip,
                                               std::uint16_t src_port,
                                               std::uint16_t dst_port) {
  std::uint64_t key = (std::uint64_t{src_ip} << 32) | dst_ip;
  key ^= (std::uint64_t{src_port} << 16 | dst_port) * 0x9E3779B97F4A7C15ull;
  const std::uint64_t mixed = util::splitmix64(key);
  return mixed == 0 ? 1 : mixed;
}

/// Key of the *unordered* IP endpoint pair: both directions of every
/// connection between two hosts hash identically, so forward data,
/// reverse ACKs, and control packets all agree on it.  This is the
/// granularity of the sharded gateways (gateway/sharded_gateways.h) and
/// of the resilience layer's perceived-loss accounting — the decoder can
/// name only the IP pair of an undecodable packet, not its TCP ports,
/// because the transport header is inside the undecodable payload.
/// Never returns 0.
[[nodiscard]] inline std::uint64_t host_key_of(std::uint32_t ip_a,
                                               std::uint32_t ip_b) {
  const std::uint32_t lo = ip_a < ip_b ? ip_a : ip_b;
  const std::uint32_t hi = ip_a < ip_b ? ip_b : ip_a;
  std::uint64_t state = (std::uint64_t{hi} << 32) | lo;
  const std::uint64_t mixed = util::splitmix64(state);
  return mixed == 0 ? 1 : mixed;
}

}  // namespace bytecache::core
