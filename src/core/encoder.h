// The DRE encoder (paper Fig. 2 / Fig. 7).
//
// Processes outgoing IP packets in order.  For each data-bearing packet it
// (a) asks the policy whether encoding is allowed (and whether to flush),
// (b) scans the payload for selected Rabin fingerprints, looks them up in
// the byte cache, verifies and maximally expands each hit, substitutes
// regions longer than min_region with 14-byte encoding fields, and
// (c) always runs the cache-update procedure over the *original* payload
// so the decoder (doing the same on what it reconstructs) stays in sync.
//
// A packet is rewritten in place only if the encoded form is strictly
// smaller than the original (shim + field overhead could otherwise inflate
// small matches); the IP protocol field is rewritten to IpProto::kDre to
// signal the shim.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cache/cache_tier.h"
#include "cache/flat_map.h"
#include "core/anchors.h"
#include "fec/encoder.h"
#include "core/params.h"
#include "core/policy.h"
#include "core/region.h"
#include "core/wire.h"
#include "obs/fields.h"
#include "packet/packet.h"
#include "rabin/window.h"

namespace bytecache::core {

/// Per-packet outcome, for tracing and dependency analysis.
struct EncodeInfo {
  std::uint64_t uid = 0;        // simulation uid of the processed packet
  bool data_packet = false;     // considered by the codec at all
  bool encoded = false;         // payload replaced by the shim form
  bool reference = false;       // k-distance reference
  bool retransmission = false;  // policy classified as TCP retransmission
  bool flushed = false;         // cache flushed before this packet
  std::size_t regions = 0;
  std::size_t original_size = 0;  // payload bytes before encoding
  std::size_t sent_size = 0;      // payload bytes actually sent
  /// uids of the distinct cached packets this packet was encoded against.
  std::vector<std::uint64_t> deps;
  /// Coded repair payloads emitted while processing this packet
  /// (params.coded_repair): the caller sends them right after the packet
  /// itself.  Views into encoder-owned scratch — valid only until the
  /// next process() call, so burst callers must consume per packet.
  std::span<const util::Bytes> repairs;
};

struct EncoderStats {
  std::uint64_t packets = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t encoded_packets = 0;
  std::uint64_t references = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t flushes = 0;
  std::uint64_t regions = 0;
  std::uint64_t bytes_in = 0;   // payload bytes offered
  std::uint64_t bytes_out = 0;  // payload bytes sent
  std::uint64_t nacks_received = 0;
  std::uint64_t nack_invalidations = 0;
  std::uint64_t ack_gate_rejections = 0;  // matches skipped as un-ACKed
  std::uint64_t resync_requests = 0;      // decoder resync requests received
  std::uint64_t resyncs_honored = 0;      // ... that triggered a flush
  /// Sum over encoded packets of the number of distinct packets referenced
  /// (avg dependencies = dependency_links / encoded_packets; the paper's
  /// File 1 / File 2 differ on exactly this statistic).
  std::uint64_t dependency_links = 0;

  [[nodiscard]] std::uint64_t bytes_saved() const {
    return bytes_in - bytes_out;
  }
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const EncoderStats*) {
  using S = EncoderStats;
  return obs::field_table<S>(
      obs::Field<S>{"packets", &S::packets},
      obs::Field<S>{"data_packets", &S::data_packets},
      obs::Field<S>{"encoded_packets", &S::encoded_packets},
      obs::Field<S>{"references", &S::references},
      obs::Field<S>{"retransmissions", &S::retransmissions},
      obs::Field<S>{"flushes", &S::flushes},
      obs::Field<S>{"regions", &S::regions},
      obs::Field<S>{"bytes_in", &S::bytes_in},
      obs::Field<S>{"bytes_out", &S::bytes_out},
      obs::Field<S>{"nacks_received", &S::nacks_received},
      obs::Field<S>{"nack_invalidations", &S::nack_invalidations},
      obs::Field<S>{"ack_gate_rejections", &S::ack_gate_rejections},
      obs::Field<S>{"resync_requests", &S::resync_requests},
      obs::Field<S>{"resyncs_honored", &S::resyncs_honored},
      obs::Field<S>{"dependency_links", &S::dependency_links});
}

/// Generic aggregation across the per-shard encoders of a sharded
/// gateway (gateway/sharded_gateways.h).
using obs::merge_into;
using obs::reset;

class Encoder {
 public:
  /// `cache` sizes the tier (cache/cache_config.h; the default is the
  /// paper's unbounded flat cache).  `l2` is the gateway's shared L2
  /// store, or nullptr for an L1-only codec; when given, it must have an
  /// unclaimed stripe and outlive the encoder.
  Encoder(const DreParams& params, std::unique_ptr<EncodingPolicy> policy,
          const cache::CacheConfig& cache = {},
          cache::L2Store* l2 = nullptr);

  /// Processes one outgoing packet in place.
  EncodeInfo process(packet::Packet& pkt);

  /// Burst form: processes `pkts` in order, exactly as a process() loop
  /// would (same cache evolution, same wire bytes), writing out[i] for
  /// pkts[i].  While packet i encodes, packet i+1's payload head is
  /// prefetched, so back-to-back packets overlap their first-touch
  /// misses.  Requires out.size() >= pkts.size(); null entries are
  /// skipped (their EncodeInfo is left default).
  void encode_burst(std::span<packet::Packet* const> pkts,
                    std::span<EncodeInfo> out);

  [[nodiscard]] const EncoderStats& stats() const { return stats_; }
  [[nodiscard]] const fec::RepairEncoderStats& repair_stats() const {
    return repair_enc_.stats();
  }
  [[nodiscard]] const EncodingPolicy& policy() const { return *policy_; }
  [[nodiscard]] EncodingPolicy& policy() { return *policy_; }
  [[nodiscard]] const cache::CacheTier& cache() const { return cache_; }
  [[nodiscard]] std::uint16_t epoch() const { return epoch_; }
  [[nodiscard]] const DreParams& params() const { return params_; }

  /// Flushes the cache (also exposed for tests and manual control).
  /// This is the bare mechanism: it does NOT bump `stats().flushes` —
  /// callers that represent a flush *event* (policies, resync, the
  /// control channel) count it themselves.
  void flush();

  /// An operator-requested flush (the control channel's kFlushCache,
  /// DESIGN.md §12.3): flush() plus the `flushes` count every other
  /// flush-event caller keeps, so explicit flushes show up in the
  /// stats snapshot the operator reads next.
  void flush_counted();

  /// Replaces the encoding policy at runtime (the control channel's
  /// policy switch, DESIGN.md §12.3).  The new policy starts from its
  /// freshly-constructed state — the conservative post-restart behavior
  /// of load_state() — and the cache is flushed first so the decoder
  /// never sees references admitted under rules the operator just
  /// revoked.  `policy` must be non-null (kNone cannot be switched to).
  void set_policy(std::unique_ptr<EncodingPolicy> policy);

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): audits the cache and checks counter consistency (packet
  /// class counts nest, byte totals never grow through encoding).
  void audit() const;

  /// Snapshot of the cache plus the encoder's stream position/epoch, for
  /// warm gateway restarts (cache/snapshot.h).  Policy-internal state is
  /// NOT saved; after a restore the policies behave as freshly started
  /// (conservative: at worst some compression opportunities are skipped).
  [[nodiscard]] util::Bytes save_state();

  /// Incremental snapshot (CacheConfig::snapshot_mode == kIncremental):
  /// the same framing, but the cache part is the journaled delta since
  /// the last save boundary; falls back to a full image when no delta
  /// can be emitted.  load_state() reads either.
  [[nodiscard]] util::Bytes save_state_incremental();

  /// Restores a save_state() snapshot; false (cache flushed) if invalid.
  bool load_state(util::BytesView snapshot);

  /// Decoder NACK (params.nack_feedback): the packet owning `fp` is
  /// missing at the decoder; stop referencing it.
  void on_nack(rabin::Fingerprint fp);

  /// Reverse-path cumulative ACK for `flow_key` (params.ack_gated):
  /// raises that flow's highest-ACKed sequence number used for reference
  /// admission.  The caller derives the key from the *forward* direction
  /// of the connection (core/flow.h).
  void on_reverse_ack(std::uint64_t flow_key, std::uint32_t ack);

  /// Closes the open coded-repair generation (params.coded_repair) so
  /// its tail members get repair protection without waiting for G more
  /// packets — teardown, idle timers.  The returned payloads obey the
  /// same lifetime as EncodeInfo::repairs (valid until next process()).
  [[nodiscard]] std::span<const util::Bytes> close_repair_generation();

  /// Decoder resync request (params.epoch_resync): the decoder is stuck
  /// at `decoder_epoch`.  Honored — the cache is flushed, bumping the
  /// epoch — only when that *is* our current epoch: if the decoder is
  /// behind, a bump is already in flight towards it and flushing again
  /// for every straggling request would discard the cache over and over.
  void on_resync_request(std::uint16_t decoder_epoch);

 private:
  DreParams params_;
  rabin::RabinTables tables_;
  std::unique_ptr<EncodingPolicy> policy_;
  cache::CacheTier cache_;
  EncoderStats stats_;
  std::uint64_t stream_index_ = 0;
  std::uint16_t epoch_ = 0;
  bool epoch_bumped_ = false;  // next encoded packet carries the flag
  fec::RepairEncoder repair_enc_;  // idle unless params.coded_repair
  bool fec_was_active_ = false;    // rung turn-off closes the generation
  // ack-gated mode: per-flow highest cumulative ACK seen.  Flat map, not
  // unordered_map: on_reverse_ack runs once per reverse-path packet, and
  // a node-based map would pay one heap node per new flow on that path
  // (bc-hotpath-alloc).
  cache::FlatMap64<std::uint32_t> highest_ack_;

  // Per-packet scratch, reused across process() calls so the steady-state
  // hot path stays allocation-free: anchor buffers, the dependency-id
  // dedup list, the encoded form under construction (its region and
  // literal vectors keep their capacity), and the serialized wire bytes
  // that are swapped into the packet.
  AnchorWorkspace anchor_ws_;
  std::vector<cache::ProbeResult> probe_ws_;  // batched-probe results
  std::vector<std::uint64_t> dep_ids_;
  EncodedPayload enc_;
  util::Bytes wire_;
  util::Bytes fec_wire_;  // member wire-image scratch for add_member
};

}  // namespace bytecache::core
