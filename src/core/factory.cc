#include "core/factory.h"

#include "core/policies.h"

namespace bytecache::core {

std::unique_ptr<EncodingPolicy> make_policy(PolicyKind kind,
                                            const DreParams& params) {
  switch (kind) {
    case PolicyKind::kNone:
      return nullptr;
    case PolicyKind::kNaive:
      return std::make_unique<NaivePolicy>();
    case PolicyKind::kCacheFlush:
      return std::make_unique<CacheFlushPolicy>();
    case PolicyKind::kTcpSeq:
      return std::make_unique<TcpSeqPolicy>();
    case PolicyKind::kKDistance:
      return std::make_unique<KDistancePolicy>(params.k_distance);
    case PolicyKind::kAdaptive:
      return std::make_unique<AdaptivePolicy>(params);
    case PolicyKind::kResilient:
      return std::make_unique<ResilientPolicy>(params);
  }
  return nullptr;
}

std::unique_ptr<Encoder> make_encoder(const GatewayConfig& cfg,
                                      cache::L2Store* l2) {
  auto policy = make_policy(cfg.policy, cfg.params);
  if (policy == nullptr) return nullptr;
  return std::make_unique<Encoder>(cfg.params, std::move(policy), cfg.cache,
                                   l2);
}

std::unique_ptr<Decoder> make_decoder(const GatewayConfig& cfg,
                                      cache::L2Store* l2) {
  if (!cfg.decoder_enabled()) return nullptr;
  return std::make_unique<Decoder>(cfg.params, cfg.cache, l2);
}

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kNaive: return "naive";
    case PolicyKind::kCacheFlush: return "cache_flush";
    case PolicyKind::kTcpSeq: return "tcp_seq";
    case PolicyKind::kKDistance: return "k_distance";
    case PolicyKind::kAdaptive: return "adaptive";
    case PolicyKind::kResilient: return "resilient";
  }
  return "?";
}

std::optional<PolicyKind> policy_from_string(std::string_view name) {
  if (name == "none") return PolicyKind::kNone;
  if (name == "naive") return PolicyKind::kNaive;
  if (name == "cache_flush") return PolicyKind::kCacheFlush;
  if (name == "tcp_seq") return PolicyKind::kTcpSeq;
  if (name == "k_distance") return PolicyKind::kKDistance;
  if (name == "adaptive") return PolicyKind::kAdaptive;
  if (name == "resilient") return PolicyKind::kResilient;
  return std::nullopt;
}

}  // namespace bytecache::core
