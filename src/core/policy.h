// Encoding-policy interface.
//
// The four algorithms of the paper (Naive — Spring & Wetherall's original,
// Fig. 2 — plus the three loss-robust variants of Section V) differ only
// in *when a packet may be encoded* and *which cached packets it may
// reference*.  Everything else (fingerprinting, matching, wire format,
// cache update) is shared by the Encoder.  A policy answers two questions:
//
//   1. before_encode(): may this packet be encoded at all, and should the
//      cache be flushed first?  (Cache Flush flushes on a TCP sequence
//      non-increase; k-distance declares every k-th packet a reference.)
//   2. admit(): may this packet reference that cached packet?  (TcpSeq
//      requires stored.seq < new.seq; k-distance requires the stored
//      packet to be at or after the latest reference.)
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "cache/packet_store.h"

namespace bytecache::core {

/// What the encoder knows about the packet being processed.
struct PacketContext {
  /// TCP sequence number, if the payload is a TCP segment with data.
  std::optional<std::uint32_t> tcp_seq;

  /// 0-based position in the encoder's packet stream.
  std::uint64_t stream_index = 0;

  /// Payload (transport segment) size in bytes.
  std::size_t payload_size = 0;

  /// Identifies the TCP connection (hash of addresses and ports); 0 for
  /// non-TCP traffic.  Sequence-number comparisons are only meaningful
  /// within one flow, and byte caching serves many flows at once (the
  /// paper's inter-flow redundancy), so seq-based policies key their
  /// state by this.
  std::uint64_t flow_key = 0;

  /// Identifies the unordered IP endpoint pair (core::host_key_of);
  /// set for every data packet.  The resilience layer keys its
  /// perceived-loss estimate and degradation state by this — the same
  /// granularity the sharded gateways partition on, so feedback always
  /// reaches the shard owning the state.
  std::uint64_t host_key = 0;
};

/// Decision made once per outgoing packet, before matching.
struct PolicyDecision {
  /// False: send the packet unencoded (it still enters the cache).
  bool allow_encode = true;

  /// True: flush the encoder cache before processing this packet.
  bool flush_cache = false;

  /// True: this packet is a k-distance reference (stats only).
  bool is_reference = false;

  /// True: the policy classified this packet as a TCP retransmission.
  bool is_retransmission = false;

  /// False: the resilience ladder turned coded repair off for this host
  /// pair (only meaningful when DreParams::coded_repair is on; policies
  /// without a coded rung leave it true, so the knob alone decides).
  bool coded_repair = true;
};

class EncodingPolicy {
 public:
  virtual ~EncodingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once per data packet before matching.
  virtual PolicyDecision before_encode(const PacketContext& ctx) = 0;

  /// Per-candidate admission: may the packet described by `ctx` be encoded
  /// using `stored`?
  [[nodiscard]] virtual bool admit(const PacketContext& ctx,
                                   const cache::PacketMeta& stored) const = 0;
};

}  // namespace bytecache::core
