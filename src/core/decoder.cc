#include "core/decoder.h"

#include "cache/persist.h"
#include "core/anchors.h"
#include "core/wire.h"
#include "util/check.h"
#include "util/crc32.h"

namespace bytecache::core {

Decoder::Decoder(const DreParams& params)
    : params_(params),
      tables_(params.window, params.poly),
      cache_(params.cache_bytes) {}

void Decoder::flush() { cache_.flush(); }

void Decoder::audit() const {
  if (!util::kAuditEnabled) return;
  // Includes the "no entry references an id never stored" check via the
  // fingerprint-table audit against the store's id horizon.
  cache_.audit();
  for (const cache::CachedPacket& p : cache_.store().entries()) {
    BC_AUDIT(p.meta.stream_index < stream_index_)
        << "stored packet id " << p.id << " has stream index "
        << p.meta.stream_index << " but the decoder is only at "
        << stream_index_;
  }
  BC_AUDIT(stats_.passthrough + stats_.decoded + stats_.drops() ==
           stats_.packets)
      << "outcome counters (" << stats_.passthrough << " passthrough + "
      << stats_.decoded << " decoded + " << stats_.drops()
      << " drops) do not partition " << stats_.packets << " packets";
}

util::Bytes Decoder::save_state() const {
  util::Bytes out;
  util::put_u64(out, stream_index_);
  util::append(out, cache::serialize_cache(cache_));
  return out;
}

bool Decoder::load_state(util::BytesView snapshot) {
  if (snapshot.size() < 8) return false;
  std::size_t off = 0;
  const std::uint64_t stream_index = util::get_u64(snapshot, off);
  if (!cache::deserialize_cache(snapshot.subspan(off), cache_)) return false;
  stream_index_ = stream_index;
  return true;
}

void Decoder::cache_update(util::BytesView payload) {
  if (payload.size() < params_.window || payload.size() > 0xFFFF) return;
  const auto& anchors = compute_anchors(tables_, payload, params_, anchor_ws_);
  cache::PacketMeta meta;
  meta.stream_index = stream_index_++;
  cache_.update(payload, anchors, meta);
}

DecodeInfo Decoder::process(packet::Packet& pkt) {
  ++stats_.packets;
  stats_.bytes_received += pkt.payload.size();
  if (pkt.proto() != packet::IpProto::kDre) {
    DecodeInfo info;
    info.status = DecodeStatus::kPassthrough;
    info.received_size = pkt.payload.size();
    info.restored_size = pkt.payload.size();
    cache_update(pkt.payload);
    ++stats_.passthrough;
    stats_.bytes_restored += pkt.payload.size();
    return info;
  }
  DecodeInfo info = process_encoded(pkt);
  switch (info.status) {
    case DecodeStatus::kDecoded:
      ++stats_.decoded;
      stats_.bytes_restored += info.restored_size;
      break;
    case DecodeStatus::kMalformedShim:
      ++stats_.drops_malformed;
      break;
    case DecodeStatus::kMissingFingerprint:
      ++stats_.drops_missing_fp;
      break;
    case DecodeStatus::kBadRegionBounds:
      ++stats_.drops_bad_bounds;
      break;
    case DecodeStatus::kCrcMismatch:
      ++stats_.drops_crc;
      break;
    case DecodeStatus::kPassthrough:
      break;  // unreachable
  }
  return info;
}

DecodeInfo Decoder::process_encoded(packet::Packet& pkt) {
  DecodeInfo info;
  info.received_size = pkt.payload.size();

  const EncodedPayload& enc = enc_;
  if (!EncodedPayload::parse_into(pkt.payload, enc_)) {
    info.status = DecodeStatus::kMalformedShim;
    return info;
  }
  info.regions = enc.regions.size();
  info.epoch = enc.epoch;

  util::Bytes& out = reassembly_;
  out.clear();
  out.reserve(enc.orig_len);
  std::size_t lit = 0;  // cursor into literals
  std::size_t pos = 0;  // cursor into the reconstruction
  for (const EncodedRegion& r : enc.regions) {
    // Literal gap before the region.
    const std::size_t gap = r.offset_new - pos;
    out.insert(out.end(), enc.literals.begin() + lit,
               enc.literals.begin() + lit + gap);
    lit += gap;
    pos += gap;
    // The region itself, from the cache.
    auto hit = cache_.find(r.fp);
    if (!hit) {
      info.status = DecodeStatus::kMissingFingerprint;
      info.missing_fp = r.fp;
      return info;
    }
    const util::Bytes& stored = hit->packet->payload;
    if (static_cast<std::size_t>(r.offset_stored) + r.length > stored.size()) {
      info.status = DecodeStatus::kBadRegionBounds;
      return info;
    }
    out.insert(out.end(), stored.begin() + r.offset_stored,
               stored.begin() + r.offset_stored + r.length);
    pos += r.length;
  }
  out.insert(out.end(), enc.literals.begin() + lit, enc.literals.end());

  if (util::crc32(out) != enc.crc) {
    info.status = DecodeStatus::kCrcMismatch;
    return info;
  }

  pkt.payload.swap(out);
  pkt.ip.protocol = enc.orig_proto;
  pkt.ip.total_length = static_cast<std::uint16_t>(
      packet::Ipv4Header::kSize + pkt.payload.size());
  info.status = DecodeStatus::kDecoded;
  info.restored_size = pkt.payload.size();
  cache_update(pkt.payload);
  return info;
}

}  // namespace bytecache::core
