#include "core/decoder.h"

#include "cache/snapshot.h"
#include "core/anchors.h"
#include "core/flow.h"
#include "core/wire.h"
#include "util/check.h"
#include "util/crc32.h"

namespace bytecache::core {
namespace {

/// Drops that indicate the caches may be out of step (as opposed to a
/// malformed or corrupted packet that happens to parse) — these feed the
/// resync synchronizer.  CRC mismatches are included because a desync via
/// fingerprint aliasing (the entry exists but holds different bytes)
/// manifests exactly as a CRC failure.
constexpr bool is_desync_drop(DecodeStatus s) {
  return s == DecodeStatus::kMissingFingerprint ||
         s == DecodeStatus::kStaleReference ||
         s == DecodeStatus::kCrcMismatch;
}

}  // namespace

Decoder::Decoder(const DreParams& params, const cache::CacheConfig& cache,
                 cache::L2Store* l2)
    : params_(params),
      tables_(params.window, params.poly),
      cache_(cache, l2),
      sync_(params.epoch_sync) {}

void Decoder::flush() { cache_.flush(); }

void Decoder::audit() const {
  if (!util::kAuditEnabled) return;
  // Includes the "no entry references an id never stored" check via the
  // fingerprint-table audit against the store's id horizon.
  cache_.audit();
  for (const cache::CachedPacket& p : cache_.store().entries()) {
    BC_AUDIT(p.meta.stream_index < stream_index_)
        << "stored packet id " << p.id << " has stream index "
        << p.meta.stream_index << " but the decoder is only at "
        << stream_index_;
    BC_AUDIT(p.meta.epoch <= 0xFFFF)
        << "stored packet id " << p.id << " carries epoch " << p.meta.epoch
        << " outside the 16-bit wire range";
  }
  BC_AUDIT(stats_.passthrough + stats_.decoded + stats_.drops() ==
           stats_.packets)
      << "outcome counters (" << stats_.passthrough << " passthrough + "
      << stats_.decoded << " decoded + " << stats_.drops()
      << " drops) do not partition " << stats_.packets << " packets";
  BC_AUDIT(epoch_locked_ || epoch_ == 0)
      << "epoch " << epoch_ << " set without a v2 packet having been seen";
  sync_.audit();
}

util::Bytes Decoder::save_state() {
  util::Bytes out;
  util::put_u64(out, stream_index_);
  cache::SnapshotWriter w;
  cache_.save(w);
  util::append(out, w.buffer());
  return out;
}

util::Bytes Decoder::save_state_incremental() {
  util::Bytes out;
  util::put_u64(out, stream_index_);
  cache::SnapshotWriter w;
  cache_.save_incremental(w);
  util::append(out, w.buffer());
  return out;
}

bool Decoder::load_state(util::BytesView snapshot) {
  if (snapshot.size() < 8) return false;
  std::size_t off = 0;
  const std::uint64_t stream_index = util::get_u64(snapshot, off);
  cache::SnapshotReader r(snapshot.subspan(off));
  if (!cache_.load(r)) return false;
  if (!r.at_end()) {  // trailing bytes: not a snapshot we wrote
    cache_.flush();
    return false;
  }
  stream_index_ = stream_index;
  // The adopted epoch is deliberately not persisted: the encoder may have
  // flushed while we were down.  Re-adopt from the next v2 packet; stale
  // restored entries then fail the epoch-distance check and trigger a
  // clean resync instead of CRC-gambling.
  epoch_ = 0;
  epoch_locked_ = false;
  sync_.on_epoch_adopted();
  return true;
}

void Decoder::cache_update(util::BytesView payload, std::uint64_t host_key) {
  if (payload.size() < params_.window || payload.size() > 0xFFFF) return;
  const auto& anchors = compute_anchors(tables_, payload, params_, anchor_ws_);
  cache::PacketMeta meta;
  meta.stream_index = stream_index_++;
  meta.epoch = epoch_;
  meta.host_key = host_key;
  cache_.update(payload, anchors, meta);
}

void Decoder::decode_burst(std::span<packet::Packet* const> pkts,
                           std::span<DecodeInfo> out) {
  BC_CHECK(out.size() >= pkts.size())
      << "decode_burst result span too small: " << out.size() << " < "
      << pkts.size();
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (pkts[i] == nullptr) continue;
    if (i + 1 < pkts.size() && pkts[i + 1] != nullptr) {
      __builtin_prefetch(pkts[i + 1]->payload.data());
    }
    out[i] = process(*pkts[i]);
  }
}

DecodeInfo Decoder::process(packet::Packet& pkt) {
  ++stats_.packets;
  stats_.bytes_received += pkt.payload.size();
  if (pkt.proto() != packet::IpProto::kDre) {
    DecodeInfo info;
    info.status = DecodeStatus::kPassthrough;
    info.received_size = pkt.payload.size();
    info.restored_size = pkt.payload.size();
    cache_update(pkt.payload, host_key_of(pkt.ip.src, pkt.ip.dst));
    ++stats_.passthrough;
    stats_.bytes_restored += pkt.payload.size();
    return info;
  }
  DecodeInfo info = process_encoded(pkt);
  switch (info.status) {
    case DecodeStatus::kDecoded:
      ++stats_.decoded;
      stats_.bytes_restored += info.restored_size;
      break;
    case DecodeStatus::kMalformedShim:
      ++stats_.drops_malformed;
      break;
    case DecodeStatus::kMissingFingerprint:
      ++stats_.drops_missing_fp;
      break;
    case DecodeStatus::kBadRegionBounds:
      ++stats_.drops_bad_bounds;
      break;
    case DecodeStatus::kCrcMismatch:
      ++stats_.drops_crc;
      break;
    case DecodeStatus::kStaleEpoch:
      ++stats_.drops_stale_epoch;
      break;
    case DecodeStatus::kStaleReference:
      ++stats_.drops_stale_ref;
      break;
    case DecodeStatus::kPassthrough:
      break;  // unreachable
  }
  if (info.status == DecodeStatus::kDecoded) {
    sync_.on_progress();
  } else if (params_.epoch_resync && is_desync_drop(info.status)) {
    if (sync_.on_undecodable(info.epoch)) {
      info.resync = true;
      // Ask with the *failing packet's* epoch, not the adopted one: the
      // encoder honors a request naming its current epoch, and the
      // packet it just sent carries exactly that — whereas the adopted
      // epoch lags during the very desyncs this recovers from (e.g. a
      // warm restart that resumed at a later epoch than we ever saw).
      info.resync_epoch = info.epoch;
      ++stats_.resync_signals;
    }
  }
  return info;
}

DecodeInfo Decoder::process_encoded(packet::Packet& pkt) {
  DecodeInfo info;
  info.received_size = pkt.payload.size();

  const EncodedPayload& enc = enc_;
  if (!EncodedPayload::parse_into(pkt.payload, enc_)) {
    info.status = DecodeStatus::kMalformedShim;
    return info;
  }
  info.regions = enc.regions.size();
  info.version = enc.version;
  info.epoch = enc.epoch;

  if (enc.version >= kWireVersion2 && epoch_locked_ &&
      resilience::epoch_newer(epoch_, enc.epoch)) {
    // Behind the adopted epoch: a reordered or long-delayed leftover of a
    // pre-flush encoding.  Its references are meaningless now.  (A packet
    // *ahead* of the adopted epoch is decoded normally — the grace window
    // below admits its references — and its epoch is adopted only if the
    // CRC proves the packet authentic, so a corrupted epoch field cannot
    // poison the adopted state.)
    info.status = DecodeStatus::kStaleEpoch;
    return info;
  }

  util::Bytes& out = reassembly_;
  out.clear();
  out.reserve(enc.orig_len);
  std::size_t lit = 0;  // cursor into literals
  std::size_t pos = 0;  // cursor into the reconstruction
  for (std::size_t ri = 0; ri < enc.regions.size(); ++ri) {
    const EncodedRegion& r = enc.regions[ri];
    // Pull the *next* region's fingerprint-table slot while this region's
    // literal copy and payload splice do useful work over it.
    if (ri + 1 < enc.regions.size()) cache_.prefetch(enc.regions[ri + 1].fp);
    // Literal gap before the region.
    const std::size_t gap = r.offset_new - pos;
    out.insert(out.end(), enc.literals.begin() + lit,
               enc.literals.begin() + lit + gap);
    lit += gap;
    pos += gap;
    // The region itself, from the cache.
    auto hit = cache_.find(r.fp);
    if (!hit) {
      info.status = DecodeStatus::kMissingFingerprint;
      info.missing_fp = r.fp;
      return info;
    }
    if (enc.version >= kWireVersion2 && epoch_locked_) {
      // Reject references into entries cached two or more adopted flushes
      // ago: each adoption proves the encoder flushed, so an entry still
      // stamped >= 2 epochs behind predates a flush the encoder no longer
      // remembers — using it would be a silent-corruption gamble.  The
      // staleness is measured against the *adopted* (CRC-verified) epoch,
      // never the packet's own claim: entries the decoder cached between
      // an encoder flush and our adoption of it carry a lagging stamp at
      // distance <= 1, and packets running ahead of the adopted epoch
      // (multi-flush bursts we have not verified yet) must stay decodable
      // or adoption could never catch up.  The CRC backstops both graces.
      const std::uint16_t entry_epoch =
          static_cast<std::uint16_t>(hit->packet->meta.epoch);
      if (resilience::epoch_newer(epoch_, entry_epoch) &&
          resilience::epoch_distance(epoch_, entry_epoch) > 1) {
        info.status = DecodeStatus::kStaleReference;
        info.missing_fp = r.fp;
        return info;
      }
    }
    const cache::PayloadView stored = hit->packet->payload;
    if (static_cast<std::size_t>(r.offset_stored) + r.length > stored.size()) {
      info.status = DecodeStatus::kBadRegionBounds;
      return info;
    }
    out.insert(out.end(), stored.begin() + r.offset_stored,
               stored.begin() + r.offset_stored + r.length);
    pos += r.length;
  }
  out.insert(out.end(), enc.literals.begin() + lit, enc.literals.end());

  if (util::crc32(out) != enc.crc) {
    info.status = DecodeStatus::kCrcMismatch;
    return info;
  }

  if (enc.version >= kWireVersion2 &&
      (!epoch_locked_ || resilience::epoch_newer(enc.epoch, epoch_))) {
    // First verified v2 packet, or the encoder flushed: adopt.  Done
    // before the cache update below so the reconstruction is stamped
    // with the new epoch; entries already cached keep their old stamps
    // and age out of referenceability.  Jumps beyond the plausibility
    // window are NOT adopted (the payload was still delivered — the CRC
    // held — but an in-flight bit flip in the epoch field also survives
    // the CRC, which only covers the original payload; bounding the jump
    // keeps one such flip from poisoning the adopted state and stale-
    // dropping all legitimate traffic until the encoder catches up).
    if (!epoch_locked_ || resilience::epoch_distance(enc.epoch, epoch_) <=
                              params_.epoch_sync.adopt_window) {
      if (epoch_locked_) ++stats_.epoch_adoptions;
      epoch_ = enc.epoch;
      epoch_locked_ = true;
      sync_.on_epoch_adopted();
    } else {
      ++stats_.epoch_rejections;
    }
  }

  pkt.payload.swap(out);
  pkt.ip.protocol = enc.orig_proto;
  pkt.ip.total_length = static_cast<std::uint16_t>(
      packet::Ipv4Header::kSize + pkt.payload.size());
  info.status = DecodeStatus::kDecoded;
  info.restored_size = pkt.payload.size();
  cache_update(pkt.payload, host_key_of(pkt.ip.src, pkt.ip.dst));
  return info;
}

}  // namespace bytecache::core
