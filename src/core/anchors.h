// Anchor computation shared by the encoder and decoder.
//
// Both gateways MUST derive identical anchors from identical payload
// bytes — the cache-update procedures stay in lockstep only then — so the
// selection scheme lives in DreParams and this helper is the single place
// that interprets it.
#pragma once

#include <vector>

#include "core/params.h"
#include "rabin/window.h"
#include "util/bytes.h"

namespace bytecache::core {

/// Reusable per-codec anchor buffers: the output vector, the MAXP
/// selection scratch, and the SIMD scan-kernel fill buffers.  Encoder
/// and Decoder each own one, so steady-state anchor computation never
/// touches the allocator.
struct AnchorWorkspace {
  std::vector<rabin::Anchor> anchors;
  rabin::MaxpScratch maxp;
  rabin::ScanScratch scan;
};

/// Fills `ws.anchors` with the payload's selected anchors and returns a
/// reference to it.  The reference is invalidated by the next call with
/// the same workspace.
inline const std::vector<rabin::Anchor>& compute_anchors(
    const rabin::RabinTables& tables, util::BytesView payload,
    const DreParams& params, AnchorWorkspace& ws) {
  switch (params.select_mode) {
    case SelectMode::kMaxp:
      rabin::selected_anchors_maxp_into(tables, payload, params.maxp_p,
                                        ws.anchors, ws.maxp, ws.scan);
      return ws.anchors;
    case SelectMode::kSampleByte:
      rabin::selected_anchors_samplebyte_into(tables, payload,
                                              params.samplebyte_period,
                                              params.samplebyte_skip,
                                              ws.anchors, ws.scan);
      return ws.anchors;
    case SelectMode::kValueSampling:
      break;
  }
  rabin::selected_anchors_into(tables, payload, params.select_bits,
                               ws.anchors, ws.scan);
  return ws.anchors;
}

/// By-value convenience for callers without a long-lived workspace
/// (tests, one-shot analysis); the codecs use the workspace form.
[[nodiscard]] inline std::vector<rabin::Anchor> compute_anchors(
    const rabin::RabinTables& tables, util::BytesView payload,
    const DreParams& params) {
  AnchorWorkspace ws;
  compute_anchors(tables, payload, params, ws);
  return std::move(ws.anchors);
}

}  // namespace bytecache::core
