// Anchor computation shared by the encoder and decoder.
//
// Both gateways MUST derive identical anchors from identical payload
// bytes — the cache-update procedures stay in lockstep only then — so the
// selection scheme lives in DreParams and this helper is the single place
// that interprets it.
#pragma once

#include <vector>

#include "core/params.h"
#include "rabin/window.h"
#include "util/bytes.h"

namespace bytecache::core {

[[nodiscard]] inline std::vector<rabin::Anchor> compute_anchors(
    const rabin::RabinTables& tables, util::BytesView payload,
    const DreParams& params) {
  switch (params.select_mode) {
    case SelectMode::kMaxp:
      return rabin::selected_anchors_maxp(tables, payload, params.maxp_p);
    case SelectMode::kSampleByte:
      return rabin::selected_anchors_samplebyte(tables, payload,
                                                params.samplebyte_period,
                                                params.samplebyte_skip);
    case SelectMode::kValueSampling:
      break;
  }
  return rabin::selected_anchors(tables, payload, params.select_bits);
}

}  // namespace bytecache::core
