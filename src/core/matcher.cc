#include "core/matcher.h"

#include <cstring>

namespace bytecache::core {

std::optional<Match> expand_match(util::BytesView pnew, std::size_t new_off,
                                  util::BytesView stored,
                                  std::size_t stored_off, std::size_t window,
                                  std::size_t min_new_begin) {
  if (new_off + window > pnew.size() || stored_off + window > stored.size()) {
    return std::nullopt;
  }
  if (std::memcmp(pnew.data() + new_off, stored.data() + stored_off, window) !=
      0) {
    return std::nullopt;  // fingerprint collision
  }
  // Expand left.
  std::size_t nb = new_off;
  std::size_t sb = stored_off;
  while (nb > min_new_begin && sb > 0 && pnew[nb - 1] == stored[sb - 1]) {
    --nb;
    --sb;
  }
  // Expand right.
  std::size_t ne = new_off + window;
  std::size_t se = stored_off + window;
  while (ne < pnew.size() && se < stored.size() && pnew[ne] == stored[se]) {
    ++ne;
    ++se;
  }
  return Match{nb, sb, ne - nb};
}

}  // namespace bytecache::core
