// DRE control messages (decoder -> encoder feedback).
//
// Implements the first "potential approach" of the paper's Section VIII:
// "having the decoder – upon detecting a missing packet – sending a
// notification message to the encoder", in the spirit of Lumezanu et
// al.'s *informed marking*: the NACK carries the fingerprint whose packet
// the decoder does not have; the encoder stops using that packet for
// future encodings.  Control messages travel on the reverse path with
// their own IP protocol value and are tiny (3 + 8n bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rabin/rabin.h"
#include "util/bytes.h"

namespace bytecache::core {

inline constexpr std::uint8_t kControlMagic = 0xDC;

/// IP protocol value for DRE control traffic (RFC 3692 experimental).
inline constexpr std::uint8_t kControlProto = 254;

struct ControlMessage {
  enum class Type : std::uint8_t { kNack = 1 };

  Type type = Type::kNack;
  std::vector<rabin::Fingerprint> fingerprints;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<ControlMessage> parse(util::BytesView wire);
};

}  // namespace bytecache::core
