// DRE control messages (decoder -> encoder feedback).
//
// Implements the first "potential approach" of the paper's Section VIII:
// "having the decoder – upon detecting a missing packet – sending a
// notification message to the encoder", in the spirit of Lumezanu et
// al.'s *informed marking*, plus the feedback the resilience layer
// (DESIGN.md §9) needs.  Three message types share the magic byte:
//
//   kNack          — the fingerprint whose packet the decoder does not
//                    have; the encoder stops using that packet
//                    (3 + 8n bytes).
//   kResyncRequest — the decoder's adopted epoch; if it matches the
//                    encoder's current epoch the encoder flushes (bumping
//                    the epoch), breaking a cache desync (4 bytes).
//   kLossReport    — `count` undecodable packets of `host_key` were
//                    dropped; a failure sample for the encoder-side
//                    perceived-loss estimator (12 bytes).
//
// Control messages travel on the reverse path with their own IP protocol
// value.  Parsing is strict: any size mismatch for the claimed type is
// rejected.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rabin/rabin.h"
#include "util/bytes.h"

namespace bytecache::core {

inline constexpr std::uint8_t kControlMagic = 0xDC;

/// IP protocol value for DRE control traffic (RFC 3692 experimental).
inline constexpr std::uint8_t kControlProto = 254;

struct ControlMessage {
  enum class Type : std::uint8_t {
    kNack = 1,
    kResyncRequest = 2,
    kLossReport = 3,
  };

  Type type = Type::kNack;

  /// kNack: fingerprints whose owning packets are missing at the decoder.
  std::vector<rabin::Fingerprint> fingerprints;

  /// kResyncRequest: the epoch the decoder has adopted.
  std::uint16_t epoch = 0;

  /// kLossReport: the host pair (core::host_key_of) and how many of its
  /// packets were dropped as undecodable since the last report.
  std::uint64_t host_key = 0;
  std::uint16_t count = 0;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<ControlMessage> parse(util::BytesView wire);
};

}  // namespace bytecache::core
