// Construction of encoding policies and codecs by name, and the single
// configuration surface every gateway flavor is built from.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "cache/cache_config.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/params.h"
#include "core/policy.h"
#include "obs/metrics.h"

namespace bytecache::core {

enum class PolicyKind {
  kNone,        // DRE disabled (baseline runs)
  kNaive,       // Spring & Wetherall (paper Fig. 2)
  kCacheFlush,  // paper Section V-A
  kTcpSeq,      // paper Section V-B
  kKDistance,   // paper Section V-C
  kAdaptive,    // extension: loss-adaptive k-distance
  kResilient,   // extension: perceived-loss degradation ladder (DESIGN.md §9)
};

/// The one way to describe a gateway.  Plain EncoderGateway /
/// DecoderGateway, their sharded counterparts, and the codec factories
/// all take this struct, so an encoder-side and decoder-side pair built
/// from the same config is guaranteed consistent (same DreParams, and
/// the decoder is enabled exactly when the policy encodes).  Replaces
/// the former positional (kind, params) / (enabled, params, options)
/// constructor zoo.
struct GatewayConfig {
  DreParams params;
  PolicyKind policy = PolicyKind::kNaive;

  /// Cache geometry (cache/cache_config.h): the L1 byte budget, the
  /// optional shared L2 tier, per-host-pair admission budgets, the
  /// eviction policy, and the snapshot mode.  The default — everything
  /// zero — is the paper's unbounded flat cache.  Both gateway sides of
  /// a deployment must agree (the codecs run their caches in lockstep).
  cache::CacheConfig cache;

  /// Sharded gateways only: shared-nothing shard count (>= 1), SPSC ring
  /// capacity (rounded up to a power of two), and whether each shard
  /// gets its own worker thread (false = deterministic inline mode).
  std::size_t shards = 1;
  std::size_t ring_capacity = 1024;
  bool threaded = true;

  /// Telemetry (DESIGN.md §10).  `metrics` is an optional *parent*
  /// registry (not owned; must outlive the gateway): the gateway
  /// registers itself as a snapshot provider on it.  Each gateway always
  /// keeps its own registry regardless, so snapshot() works standalone.
  obs::MetricsRegistry* metrics = nullptr;
  /// Latency-span decimation: one in `span_sample_every` packets reads
  /// the clock (rounded up to a power of two); 0 disables spans — the
  /// telemetry-off configuration of the bench overhead gate.
  std::uint32_t span_sample_every = 64;

  /// The decoder side is transparent exactly when the encoder side is.
  [[nodiscard]] bool decoder_enabled() const {
    return policy != PolicyKind::kNone;
  }
};

/// Creates the policy; returns nullptr for kNone.
[[nodiscard]] std::unique_ptr<EncodingPolicy> make_policy(
    PolicyKind kind, const DreParams& params);

/// Creates an encoder running the configured policy; nullptr for kNone
/// (the gateways treat a null codec as transparent pass-through).  The
/// single construction point the sharded gateways use per shard, so
/// every shard of one gateway is configured identically.  `l2` is the
/// gateway's shared L2 store (cfg.cache.has_l2(); one unclaimed stripe
/// per codec), or nullptr for an L1-only codec.
[[nodiscard]] std::unique_ptr<Encoder> make_encoder(
    const GatewayConfig& cfg, cache::L2Store* l2 = nullptr);

/// Creates the matching decoder; nullptr when cfg.decoder_enabled() is
/// false.
[[nodiscard]] std::unique_ptr<Decoder> make_decoder(
    const GatewayConfig& cfg, cache::L2Store* l2 = nullptr);

[[nodiscard]] std::string_view to_string(PolicyKind kind);

[[nodiscard]] std::optional<PolicyKind> policy_from_string(
    std::string_view name);

}  // namespace bytecache::core
