// Construction of encoding policies and codecs by name.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/params.h"
#include "core/policy.h"

namespace bytecache::core {

enum class PolicyKind {
  kNone,        // DRE disabled (baseline runs)
  kNaive,       // Spring & Wetherall (paper Fig. 2)
  kCacheFlush,  // paper Section V-A
  kTcpSeq,      // paper Section V-B
  kKDistance,   // paper Section V-C
  kAdaptive,    // extension: loss-adaptive k-distance
  kResilient,   // extension: perceived-loss degradation ladder (DESIGN.md §9)
};

/// Creates the policy; returns nullptr for kNone.
[[nodiscard]] std::unique_ptr<EncodingPolicy> make_policy(
    PolicyKind kind, const DreParams& params);

/// Creates an encoder running `kind`'s policy; nullptr for kNone (the
/// gateways treat a null codec as transparent pass-through).  The single
/// construction point the sharded gateways use per shard, so every shard
/// of one gateway is configured identically.
[[nodiscard]] std::unique_ptr<Encoder> make_encoder(PolicyKind kind,
                                                    const DreParams& params);

/// Creates the matching decoder; nullptr when `enabled` is false.
[[nodiscard]] std::unique_ptr<Decoder> make_decoder(bool enabled,
                                                    const DreParams& params);

[[nodiscard]] std::string_view to_string(PolicyKind kind);

[[nodiscard]] std::optional<PolicyKind> policy_from_string(
    std::string_view name);

}  // namespace bytecache::core
