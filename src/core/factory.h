// Construction of encoding policies by name.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "core/params.h"
#include "core/policy.h"

namespace bytecache::core {

enum class PolicyKind {
  kNone,        // DRE disabled (baseline runs)
  kNaive,       // Spring & Wetherall (paper Fig. 2)
  kCacheFlush,  // paper Section V-A
  kTcpSeq,      // paper Section V-B
  kKDistance,   // paper Section V-C
  kAdaptive,    // extension: loss-adaptive k-distance
};

/// Creates the policy; returns nullptr for kNone.
[[nodiscard]] std::unique_ptr<EncodingPolicy> make_policy(
    PolicyKind kind, const DreParams& params);

[[nodiscard]] std::string_view to_string(PolicyKind kind);

[[nodiscard]] std::optional<PolicyKind> policy_from_string(
    std::string_view name);

}  // namespace bytecache::core
