// The DRE decoder.
//
// Performs the reciprocal of the encoder: reconstructs the original
// payload from literals plus cache lookups, verifies the CRC, restores the
// IP protocol field, and runs the identical cache-update procedure over
// the reconstructed payload so its cache tracks the encoder's.
//
// Any failure (missing fingerprint because the referenced packet was lost,
// region out of bounds, CRC mismatch after reorder/corruption) makes the
// packet *undecodable*: it is dropped, exactly as in the paper (Section IV
// t3: "the cache has no entry corresponding to r. As such, IPi cannot be
// decoded, and the packet is dropped").  These drops are what the paper
// calls the extra component of the *perceived* packet loss rate.
//
// With DreParams::epoch_resync (v2 wire format, DESIGN.md §9) the decoder
// additionally *enforces* the encoder's flush epoch: it adopts the newest
// epoch seen, drops packets from older epochs (kStaleEpoch) and packets
// whose references reach into entries cached two or more epochs ago
// (kStaleReference), and — via an embedded resilience::EpochSynchronizer —
// signals when a resync request should be sent back to the encoder
// (DecodeInfo::resync) instead of stalling on an undecodable
// retransmission loop.  Entries cached during the *previous* epoch stay
// referenceable (grace of one): packets the decoder caches between the
// encoder's flush and its own adoption of the new epoch carry the old
// stamp, yet the encoder re-cached the same payloads post-flush; the CRC
// remains the correctness backstop inside that window.
#pragma once

#include <cstdint>
#include <span>

#include "cache/cache_tier.h"
#include "core/anchors.h"
#include "core/params.h"
#include "core/wire.h"
#include "obs/fields.h"
#include "packet/packet.h"
#include "rabin/window.h"
#include "resilience/epoch_sync.h"

namespace bytecache::core {

enum class DecodeStatus {
  kPassthrough,         // not DRE-encoded; forwarded (and cached)
  kDecoded,             // reconstructed successfully
  kMalformedShim,       // shim/regions failed to parse
  kMissingFingerprint,  // referenced fingerprint absent (cache desync)
  kBadRegionBounds,     // region exceeds the stored payload
  kCrcMismatch,         // reconstruction does not match the original
  kStaleEpoch,          // v2: packet older than the adopted epoch
  kStaleReference,      // v2: reference into an entry >= 2 epochs old
};

/// True if the packet must be dropped.
[[nodiscard]] constexpr bool is_drop(DecodeStatus s) {
  return s != DecodeStatus::kPassthrough && s != DecodeStatus::kDecoded;
}

struct DecodeInfo {
  DecodeStatus status = DecodeStatus::kPassthrough;
  std::size_t regions = 0;
  std::size_t received_size = 0;  // payload bytes on the wire
  std::size_t restored_size = 0;  // payload bytes after reconstruction
  std::uint8_t version = 0;       // shim version, if encoded
  std::uint16_t epoch = 0;        // encoder epoch, if encoded

  /// On kMissingFingerprint / kStaleReference: the fingerprint that could
  /// not be resolved (what a NACK reports back to the encoder).
  rabin::Fingerprint missing_fp = 0;

  /// The synchronizer asks for a resync request carrying `resync_epoch`
  /// to be sent to the encoder (gateway/gateways.h does the sending).
  bool resync = false;
  std::uint16_t resync_epoch = 0;
};

struct DecoderStats {
  std::uint64_t packets = 0;
  std::uint64_t passthrough = 0;
  std::uint64_t decoded = 0;
  std::uint64_t drops_malformed = 0;
  std::uint64_t drops_missing_fp = 0;
  std::uint64_t drops_bad_bounds = 0;
  std::uint64_t drops_crc = 0;
  std::uint64_t drops_stale_epoch = 0;
  std::uint64_t drops_stale_ref = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_restored = 0;
  std::uint64_t epoch_adoptions = 0;  // v2 epoch changes after the first
  std::uint64_t epoch_rejections = 0; // implausible jumps not adopted
  std::uint64_t resync_signals = 0;   // resync requests asked for

  [[nodiscard]] std::uint64_t drops() const {
    return drops_malformed + drops_missing_fp + drops_bad_bounds +
           drops_crc + drops_stale_epoch + drops_stale_ref;
  }
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const DecoderStats*) {
  using S = DecoderStats;
  return obs::field_table<S>(
      obs::Field<S>{"packets", &S::packets},
      obs::Field<S>{"passthrough", &S::passthrough},
      obs::Field<S>{"decoded", &S::decoded},
      obs::Field<S>{"drops_malformed", &S::drops_malformed},
      obs::Field<S>{"drops_missing_fp", &S::drops_missing_fp},
      obs::Field<S>{"drops_bad_bounds", &S::drops_bad_bounds},
      obs::Field<S>{"drops_crc", &S::drops_crc},
      obs::Field<S>{"drops_stale_epoch", &S::drops_stale_epoch},
      obs::Field<S>{"drops_stale_ref", &S::drops_stale_ref},
      obs::Field<S>{"bytes_received", &S::bytes_received},
      obs::Field<S>{"bytes_restored", &S::bytes_restored},
      obs::Field<S>{"epoch_adoptions", &S::epoch_adoptions},
      obs::Field<S>{"epoch_rejections", &S::epoch_rejections},
      obs::Field<S>{"resync_signals", &S::resync_signals});
}

/// Generic aggregation across the per-shard decoders of a sharded
/// gateway (gateway/sharded_gateways.h).
using obs::merge_into;
using obs::reset;

class Decoder {
 public:
  /// `cache` sizes the tier (cache/cache_config.h) and `l2` is the
  /// gateway's shared L2 store (nullptr = L1 only); both mirror the
  /// encoder's so the two caches evolve in lockstep.
  explicit Decoder(const DreParams& params,
                   const cache::CacheConfig& cache = {},
                   cache::L2Store* l2 = nullptr);

  /// Processes one incoming packet in place.  If is_drop(result.status),
  /// the caller must discard the packet.
  DecodeInfo process(packet::Packet& pkt);

  /// Burst form: processes `pkts` in order, exactly as a process() loop
  /// would, writing out[i] for pkts[i] and prefetching packet i+1's
  /// payload head while packet i decodes (mirrors
  /// Encoder::encode_burst).  Requires out.size() >= pkts.size(); null
  /// entries are skipped.
  void decode_burst(std::span<packet::Packet* const> pkts,
                    std::span<DecodeInfo> out);

  [[nodiscard]] const DecoderStats& stats() const { return stats_; }
  [[nodiscard]] const cache::CacheTier& cache() const { return cache_; }
  [[nodiscard]] const DreParams& params() const { return params_; }

  /// The adopted encoder epoch (0 until the first v2 packet).
  [[nodiscard]] std::uint16_t epoch() const { return epoch_; }

  /// Resync pacing state (params.epoch_resync).
  [[nodiscard]] const resilience::EpochSynchronizer& synchronizer() const {
    return sync_;
  }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): audits the cache, checks that no fingerprint references a
  /// packet id the decoder never stored, that every stored packet's
  /// stream position precedes the decoder's, and that the drop counters
  /// partition the packet count.
  void audit() const;

  /// Flushes the cache (mirrors Encoder::flush; used by tests/examples).
  void flush();

  /// Snapshot / warm-restore of the decoder cache (pair with the
  /// encoder's snapshot taken at the same stream position).  The adopted
  /// epoch is not part of the snapshot: after a restore the decoder
  /// re-adopts from the next v2 packet it sees.
  [[nodiscard]] util::Bytes save_state();
  /// Incremental form (mirrors Encoder::save_state_incremental).
  [[nodiscard]] util::Bytes save_state_incremental();
  bool load_state(util::BytesView snapshot);

 private:
  DecodeInfo process_encoded(packet::Packet& pkt);
  void cache_update(util::BytesView payload, std::uint64_t host_key);

  DreParams params_;
  rabin::RabinTables tables_;
  cache::CacheTier cache_;
  DecoderStats stats_;
  std::uint64_t stream_index_ = 0;
  std::uint16_t epoch_ = 0;    // adopted encoder epoch (v2)
  bool epoch_locked_ = false;  // a v2 packet has been seen
  resilience::EpochSynchronizer sync_;

  // Per-packet scratch, reused across process() calls (mirrors the
  // encoder): anchor buffers, the parsed encoded form, and the
  // reconstruction buffer swapped into the packet.
  AnchorWorkspace anchor_ws_;
  EncodedPayload enc_;
  util::Bytes reassembly_;
};

}  // namespace bytecache::core
