// Wire format of a DRE-encoded payload.
//
// The paper does not specify framing; we define the minimal one (DESIGN.md
// "Wire format").  Encoded packets are marked by rewriting the IP protocol
// field to IpProto::kDre, so passthrough packets carry zero overhead.
// Three shim versions exist, distinguished by magic/version bytes:
//
// v1 (magic 0xD5, 12-byte shim) — the original format; its epoch field
// is advisory (the decoder ignores it):
//     magic(1) origproto(1) flags(1) region_count(1) epoch(2) orig_len(2)
//     crc32-of-original-payload(4)
//
// v2 (magic 0xD6, 13-byte shim) — emitted when DreParams::epoch_resync is
// on; inserts an explicit version byte (currently 2) after the magic, and
// the epoch becomes *enforced*: the decoder adopts the newest verified
// epoch, drops packets from older epochs, and rejects references into
// entries cached two or more epochs ago (DESIGN.md §9 "Resilience").
//
// v3 (magic 0xD6, version byte 3, 16-byte shim) — emitted when
// DreParams::coded_repair is on; the v2 layout plus a generation tag
// (gen_id u16, gen_seq u8) after the CRC, naming the packet's slot in
// the coded-repair generation (fec/decoder.h re-sequences and repairs
// by it); everything else is byte-identical to v2.
//
// Any shim is followed by region_count x 14-byte encoding fields
// (fp 8, off_new 2, off_stored 2, len 2), then the literal bytes (the
// original payload minus the regions, in order).  The CRC lets the
// decoder drop instead of delivering wrong bytes after a cache desync.
// Golden vectors of all versions: tests/data (wire_golden_test.cc).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/region.h"
#include "util/bytes.h"

namespace bytecache::core {

inline constexpr std::uint8_t kShimMagic = 0xD5;    // v1
inline constexpr std::uint8_t kShimMagicV2 = 0xD6;  // v2/v3 (explicit version)
inline constexpr std::size_t kShimBytes = 12;       // v1 shim size
inline constexpr std::size_t kShimBytesV2 = 13;     // v2 shim size
inline constexpr std::size_t kShimBytesV3 = 16;     // v3 shim size
inline constexpr std::uint8_t kWireVersion2 = 2;
inline constexpr std::uint8_t kWireVersion3 = 3;

/// Flag bits.
inline constexpr std::uint8_t kFlagFlushEpoch = 0x01;  // epoch was bumped

/// Parsed form of an encoded payload.
struct EncodedPayload {
  std::uint8_t version = 1;  // 1, 2 or 3
  std::uint8_t orig_proto = 0;
  std::uint8_t flags = 0;
  std::uint16_t epoch = 0;
  std::uint16_t orig_len = 0;
  std::uint32_t crc = 0;
  std::uint16_t gen_id = 0;  // v3 only: coded-repair generation tag
  std::uint8_t gen_seq = 0;
  std::vector<EncodedRegion> regions;
  util::Bytes literals;

  /// Shim size of this payload's version.
  [[nodiscard]] std::size_t shim_size() const {
    if (version >= kWireVersion3) return kShimBytesV3;
    return version == kWireVersion2 ? kShimBytesV2 : kShimBytes;
  }

  /// Size this payload occupies on the wire.
  [[nodiscard]] std::size_t wire_size() const {
    return shim_size() + regions.size() * EncodedRegion::kWireBytes +
           literals.size();
  }

  /// Serializes to wire bytes.
  [[nodiscard]] util::Bytes serialize() const;

  /// Serializes into `out`, clearing it first; reuses its capacity (the
  /// encoder's wire scratch buffer).
  void serialize_into(util::Bytes& out) const;

  /// Parses wire bytes; nullopt on malformed input (bad magic, unknown
  /// version, truncated shim/regions, region out of the original bounds,
  /// or literal byte count inconsistent with orig_len and the region
  /// lengths).
  static std::optional<EncodedPayload> parse(util::BytesView wire);

  /// Parse form that refills `out` in place, reusing the capacity of its
  /// region and literal vectors (the decoder's parse scratch).  Returns
  /// false on malformed input, in which case `out` is unspecified.
  static bool parse_into(util::BytesView wire, EncodedPayload& out);
};

/// Reads the generation tag out of a v3 payload without a full parse —
/// the decoder gateway's pre-classifier.  False when the payload is not
/// a (long-enough) v3 shim; validity is still parse_into's call.
[[nodiscard]] bool peek_gen_tag(util::BytesView payload, std::uint16_t& gen_id,
                                std::uint8_t& gen_seq);

}  // namespace bytecache::core
