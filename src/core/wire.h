// Wire format of a DRE-encoded payload.
//
// The paper does not specify framing; we define the minimal one (DESIGN.md
// "Wire format").  Encoded packets are marked by rewriting the IP protocol
// field to IpProto::kDre, so passthrough packets carry zero overhead.  An
// encoded payload is:
//
//     +--------+-----------+-------+--------------+-------+----------+
//     | magic  | origproto | flags | region_count | epoch | orig_len |
//     |  (1B)  |   (1B)    | (1B)  |     (1B)     | (2B)  |   (2B)   |
//     +--------+-----------+-------+--------------+-------+----------+
//     |                    crc32 of original payload (4B)            |
//     +---------------------------------------------------------------+
//     | region_count x encoding field (14B: fp 8, off_new 2,          |
//     |                                off_stored 2, len 2)           |
//     +---------------------------------------------------------------+
//     | literal bytes (original payload minus regions, in order)      |
//     +---------------------------------------------------------------+
//
// Shim = 12 bytes.  The CRC lets the decoder verify reconstruction and
// drop instead of delivering wrong bytes after a cache desync.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/region.h"
#include "util/bytes.h"

namespace bytecache::core {

inline constexpr std::uint8_t kShimMagic = 0xD5;
inline constexpr std::size_t kShimBytes = 12;

/// Flag bits.
inline constexpr std::uint8_t kFlagFlushEpoch = 0x01;  // epoch was bumped

/// Parsed form of an encoded payload.
struct EncodedPayload {
  std::uint8_t orig_proto = 0;
  std::uint8_t flags = 0;
  std::uint16_t epoch = 0;
  std::uint16_t orig_len = 0;
  std::uint32_t crc = 0;
  std::vector<EncodedRegion> regions;
  util::Bytes literals;

  /// Size this payload occupies on the wire.
  [[nodiscard]] std::size_t wire_size() const {
    return kShimBytes + regions.size() * EncodedRegion::kWireBytes +
           literals.size();
  }

  /// Serializes to wire bytes.
  [[nodiscard]] util::Bytes serialize() const;

  /// Serializes into `out`, clearing it first; reuses its capacity (the
  /// encoder's wire scratch buffer).
  void serialize_into(util::Bytes& out) const;

  /// Parses wire bytes; nullopt on malformed input (bad magic, truncated
  /// shim/regions, region out of the original bounds, or literal byte count
  /// inconsistent with orig_len and the region lengths).
  static std::optional<EncodedPayload> parse(util::BytesView wire);

  /// Parse form that refills `out` in place, reusing the capacity of its
  /// region and literal vectors (the decoder's parse scratch).  Returns
  /// false on malformed input, in which case `out` is unspecified.
  static bool parse_into(util::BytesView wire, EncodedPayload& out);
};

}  // namespace bytecache::core
