// The paper's encoding policies.
#pragma once

#include <memory>

#include "cache/flat_map.h"
#include "core/params.h"
#include "core/policy.h"
#include "resilience/degradation.h"
#include "resilience/perceived_loss.h"

namespace bytecache::core {

/// Spring & Wetherall's original algorithm (paper Fig. 2): encode against
/// anything cached.  Vulnerable to circular dependencies after one loss
/// (Section IV) — kept as the baseline whose failure the benches reproduce.
class NaivePolicy final : public EncodingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "naive"; }
  PolicyDecision before_encode(const PacketContext& ctx) override;
  [[nodiscard]] bool admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const override;
};

/// Cache Flush (paper Section V-A): flush the encoder cache upon detecting
/// a TCP retransmission, so retransmitted segments are never encoded using
/// a succeeding segment or themselves.
///
/// Deviation from the paper's one-line description: the paper triggers on
/// an observed *decrease* of the outgoing TCP sequence number; we trigger
/// on any *non-increase*, because back-to-back retransmissions of the same
/// segment carry equal sequence numbers and a strict-decrease trigger would
/// let the second retransmission be encoded against the (possibly lost)
/// first — recreating the circular dependency the flush exists to break.
class CacheFlushPolicy final : public EncodingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "cache_flush"; }
  PolicyDecision before_encode(const PacketContext& ctx) override;
  [[nodiscard]] bool admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const override;

 private:
  // Last outgoing data sequence number, per flow.
  std::unordered_map<std::uint64_t, std::uint32_t> last_seq_;
};

/// TCP Sequence Number encoding (paper Section V-B, Fig. 7): a repeated
/// region is encoded only if the stored packet's TCP sequence number is
/// strictly lower than the current packet's (line B.7), so a segment is
/// never encoded using a succeeding segment or itself, without flushing.
class TcpSeqPolicy final : public EncodingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "tcp_seq"; }
  PolicyDecision before_encode(const PacketContext& ctx) override;
  [[nodiscard]] bool admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const override;

 private:
  // Retransmission detection only, per flow.
  std::unordered_map<std::uint64_t, std::uint32_t> last_seq_;
};

/// k-distance encoding (paper Section V-C, Fig. 9): every k-th packet is a
/// reference sent unencoded; the following k-1 packets may be encoded using
/// the latest reference and any packet after it.  Bounds the loss cascade
/// to k packets and needs no TCP state, so it applies to UDP too.
///
/// For TCP traffic we additionally refuse to encode a segment against a
/// cached packet whose sequence number is not strictly lower (see
/// admit()) — otherwise timeout retransmissions self-reference their own
/// lost copies and each loss costs up to k-1 RTO backoffs, a pathology
/// absent from the paper's measurements.
class KDistancePolicy final : public EncodingPolicy {
 public:
  explicit KDistancePolicy(std::size_t k);

  [[nodiscard]] std::string_view name() const override { return "k_distance"; }
  PolicyDecision before_encode(const PacketContext& ctx) override;
  [[nodiscard]] bool admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const override;

  [[nodiscard]] std::size_t k() const { return k_; }

  /// Changes k on the fly (used by AdaptivePolicy).
  void set_k(std::size_t k) { k_ = k; }

 private:
  std::size_t k_;
  std::uint64_t since_reference_ = 0;
  std::uint64_t last_reference_index_ = 0;
  bool sent_any_ = false;
};

/// Adaptive k-distance (the tune-able scheme the paper's conclusion calls
/// for): estimates the packet loss rate from observed TCP retransmissions
/// (EWMA of the retransmitted-packet fraction) and sets k ~= 1/(2*p_hat),
/// clamped to [k_min, k_max] — i.e. about half an expected loss per
/// reference interval.  Falls back to k_max when no loss has been seen.
class AdaptivePolicy final : public EncodingPolicy {
 public:
  explicit AdaptivePolicy(const DreParams& params);

  [[nodiscard]] std::string_view name() const override { return "adaptive"; }
  PolicyDecision before_encode(const PacketContext& ctx) override;
  [[nodiscard]] bool admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const override;

  [[nodiscard]] double estimated_loss() const { return loss_estimate_; }
  [[nodiscard]] std::size_t current_k() const { return inner_.k(); }

 private:
  KDistancePolicy inner_;
  double alpha_;
  std::size_t k_min_;
  std::size_t k_max_;
  double loss_estimate_ = 0.0;
  std::unordered_map<std::uint64_t, std::uint32_t> last_seq_;  // per flow
};

/// Adaptive resilience (DESIGN.md §9): the paper's Section VII argument
/// as a runtime control loop.  A per-host-pair DegradationController
/// consumes the perceived-loss EWMA — fed by the encoder gateway from
/// link drop reports and decoder loss reports (ControlMessage
/// kLossReport) — and walks the pair along the ladder
///
///     k-distance -> TCP-seq -> coded repair -> Cache Flush -> pass-through
///
/// as the estimate crosses the configured thresholds.  Each rung
/// delegates to the corresponding paper policy, so a flow under a
/// resilient encoder behaves exactly like that policy until the loss
/// picture changes.  Pairs with policy-kind kResilient and, usually,
/// params.epoch_resync for the decoder-side recovery half.
class ResilientPolicy final : public EncodingPolicy {
 public:
  explicit ResilientPolicy(const DreParams& params);

  [[nodiscard]] std::string_view name() const override { return "resilient"; }
  PolicyDecision before_encode(const PacketContext& ctx) override;
  [[nodiscard]] bool admit(const PacketContext& ctx,
                           const cache::PacketMeta& stored) const override;

  /// The estimator the gateway feeds drop reports into.
  [[nodiscard]] resilience::PerceivedLossEstimator& estimator() {
    return estimator_;
  }
  [[nodiscard]] const resilience::PerceivedLossEstimator& estimator() const {
    return estimator_;
  }

  /// Current ladder rung of one host pair (kKDistance if never seen).
  [[nodiscard]] resilience::DegradationLevel level_of(
      std::uint64_t host_key) const;

  /// Most-degraded rung across all host pairs.
  [[nodiscard]] resilience::DegradationLevel worst_level() const;

  /// Ladder transitions across all host pairs.
  [[nodiscard]] std::uint64_t transitions() const;

 private:
  resilience::DegradationController& controller_for(std::uint64_t host_key);

  resilience::LossEstimatorConfig estimator_config_;
  resilience::DegradationConfig degradation_config_;
  resilience::PerceivedLossEstimator estimator_;
  // Flat map, not unordered_map: controller_for runs inside
  // before_encode on every packet, and a node-based map would pay one
  // heap node per new host pair on that path (bc-hotpath-alloc).
  cache::FlatMap64<resilience::DegradationController> controllers_;
  // The rung picked in before_encode(), read by admit() for the same
  // packet (the encoder always calls them in that order).
  resilience::DegradationLevel current_ =
      resilience::DegradationLevel::kKDistance;
  // One shared instance per rung: policy-internal per-flow state (retx
  // trackers, reference spacing) persists across rung changes.
  KDistancePolicy k_distance_;
  TcpSeqPolicy tcp_seq_;
  CacheFlushPolicy cache_flush_;
};

}  // namespace bytecache::core
